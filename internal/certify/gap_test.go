package certify

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// gapProblem is a small adequate instance with a known optimum, used by the
// accept-path cases below.
func gapProblem() *core.Problem {
	return &core.Problem{
		K:       3,
		Weights: []uint64{4, 2, 1},
		Actions: []core.Action{
			{Name: "t0", Set: core.SetOf(0), Cost: 2, Treatment: false},
			{Name: "rx01", Set: core.SetOf(0, 1), Cost: 5, Treatment: true},
			{Name: "rxAll", Set: core.Universe(3), Cost: 9, Treatment: true},
		},
	}
}

func TestLowerBoundSound(t *testing.T) {
	// On every solvable random instance the derived bound must not exceed
	// the true optimum, and must be positive whenever the optimum is.
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		p := randomProblem(rng, 2+rng.Intn(5), 2+rng.Intn(6))
		sol, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		lb := LowerBound(p)
		if !sol.Adequate() {
			if lb != core.Inf {
				t.Fatalf("inadequate instance got finite bound %d", lb)
			}
			continue
		}
		if lb > sol.Cost {
			t.Fatalf("lower bound %d exceeds optimum %d for %v", lb, sol.Cost, p)
		}
		if sol.Cost > 0 && lb == 0 {
			t.Fatalf("zero lower bound for instance with positive optimum %d", sol.Cost)
		}
	}
}

func TestLowerBoundInadequate(t *testing.T) {
	p := &core.Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []core.Action{
			{Name: "rx0", Set: core.SetOf(0), Cost: 1, Treatment: true},
			{Name: "t1", Set: core.SetOf(1), Cost: 1, Treatment: false},
		},
	}
	if lb := LowerBound(p); lb != core.Inf {
		t.Fatalf("object 1 is uncovered; want Inf bound, got %d", lb)
	}
	if rep := CheckInadequate(p); !rep.OK() {
		t.Fatalf("inadequacy witness should verify: %v", rep.Err())
	}
	// The same claim on a coverable instance must be refused.
	if rep := CheckInadequate(gapProblem()); rep.OK() {
		t.Fatal("inadequacy claim accepted for a coverable instance")
	}
}

func TestCertifyGapAccepts(t *testing.T) {
	p := gapProblem()
	sol, root := solveTree(t, p)
	lb := LowerBound(p)
	gap := GapFor(sol.Cost, lb)
	cert, err := CertifyGap(p, root, sol.Cost, gap)
	if err != nil {
		t.Fatalf("optimal tree at its own gap must certify: %v", err)
	}
	if cert.Cost() != sol.Cost || cert.LowerBound() != lb || cert.GapMilli() != gap {
		t.Fatalf("certificate fields %d/%d/%d, want %d/%d/%d",
			cert.Cost(), cert.LowerBound(), cert.GapMilli(), sol.Cost, lb, gap)
	}
	// Any looser claim also holds.
	if _, err := CertifyGap(p, root, sol.Cost, gap+500); err != nil {
		t.Fatalf("looser gap claim rejected: %v", err)
	}
	// A tighter claim than the achievable ratio must be refused.
	if gap > GapScale {
		if _, err := CertifyGap(p, root, sol.Cost, gap-1); err == nil {
			t.Fatal("accepted a gap claim below the achievable ratio")
		}
	}
}

func TestCertifyGapRejectsWrongCost(t *testing.T) {
	p := gapProblem()
	sol, root := solveTree(t, p)
	gap := GapFor(sol.Cost, LowerBound(p))
	for _, bad := range []uint64{sol.Cost - 1, sol.Cost + 1, 0, core.Inf} {
		if _, err := CertifyGap(p, root, bad, gap); err == nil {
			t.Fatalf("accepted tampered cost %d (true %d)", bad, sol.Cost)
		}
	}
}

// TestCertifyGapMutationFuzz tampers with solved trees, costs, and gap claims
// on random instances; every mutation that changes the priced quadruple must
// be rejected.
func TestCertifyGapMutationFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	accepted := 0
	for i := 0; i < 200; i++ {
		p := randomProblem(rng, 2+rng.Intn(4), 2+rng.Intn(5))
		sol, err := core.Solve(p)
		if err != nil || !sol.Adequate() {
			continue
		}
		root, err := sol.Tree(p)
		if err != nil {
			t.Fatal(err)
		}
		lb := LowerBound(p)
		gap := GapFor(sol.Cost, lb)
		if _, err := CertifyGap(p, root, sol.Cost, gap); err != nil {
			t.Fatalf("honest quadruple rejected: %v", err)
		}
		accepted++

		switch i % 4 {
		case 0: // tamper: understate the cost
			if sol.Cost > 0 {
				if _, err := CertifyGap(p, root, sol.Cost-1, gap); err == nil {
					t.Fatal("accepted understated cost")
				}
			}
		case 1: // tamper: claim a gap below the achievable ratio
			if gap > GapScale {
				if _, err := CertifyGap(p, root, sol.Cost, GapScale-1); err == nil {
					t.Fatal("accepted sub-optimal gap claim below GapScale")
				}
			}
		case 2: // tamper: swap the root's action for another index
			mut := *root
			mut.Action = (mut.Action + 1) % len(p.Actions)
			if _, err := CertifyGap(p, &mut, sol.Cost, gap); err == nil {
				// Only a genuine change must reject; re-price to check.
				if c, cerr := core.TreeCost(p, &mut); cerr != nil || c != sol.Cost {
					t.Fatal("accepted tree with swapped root action")
				}
			}
		case 3: // tamper: prune a subtree (drop the positive branch)
			if root.Pos != nil || root.Neg != nil {
				mut := *root
				mut.Pos, mut.Neg = nil, nil
				if _, err := CertifyGap(p, &mut, sol.Cost, gap); err == nil {
					if c, cerr := core.TreeCost(p, &mut); cerr != nil || c != sol.Cost {
						t.Fatal("accepted truncated tree")
					}
				}
			}
		}
	}
	if accepted < 50 {
		t.Fatalf("fuzz exercised only %d honest instances; want >= 50", accepted)
	}
}

func TestGapForEdges(t *testing.T) {
	for _, tc := range []struct {
		cost, lb, want uint64
	}{
		{0, 0, GapScale},               // zero cost is optimal regardless of bound
		{0, 17, GapScale},              //
		{5, 0, core.Inf},               // positive cost over a zero bound: no finite claim
		{core.Inf, 9, core.Inf},        // saturated cost
		{10, 10, GapScale},             // tight bound: exactly optimal
		{15, 10, 1500},                 // exact ratio
		{10, 3, 3334},                  // rounds up: 10000/3 = 3333.33…
		{1 << 60, 1, core.Inf},         // quotient leaves 64 bits
		{core.Inf, core.Inf, core.Inf}, // saturated cost never gets a finite claim
	} {
		if got := GapFor(tc.cost, tc.lb); got != tc.want {
			t.Errorf("GapFor(%d, %d) = %d, want %d", tc.cost, tc.lb, got, tc.want)
		}
	}
}

func TestGapForRoundTrip(t *testing.T) {
	// GapFor must return the smallest accepted gap: ratioLE holds at the
	// returned value and fails one milli-unit below it.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		cost := uint64(rng.Intn(1 << 20))
		lb := uint64(rng.Intn(1<<20) + 1)
		g := GapFor(cost, lb)
		if g == core.Inf {
			continue
		}
		if !ratioLE(cost, g, lb) {
			t.Fatalf("GapFor(%d,%d)=%d does not satisfy its own ratio", cost, lb, g)
		}
		if g > 0 && ratioLE(cost, g-1, lb) && cost != 0 {
			// g-1 accepted means GapFor was not minimal — unless cost is 0,
			// where GapScale is returned by convention.
			if !(cost == 0) {
				t.Fatalf("GapFor(%d,%d)=%d is not minimal: %d also accepted", cost, lb, g, g-1)
			}
		}
	}
}

func TestRatioLEOverflow(t *testing.T) {
	// Products past 64 bits must compare exactly, not wrap. cost·1000
	// overflows uint64 here; the 128-bit compare must still order correctly.
	big := uint64(1) << 62
	if !ratioLE(big, 2000, big) { // big·1000 ≤ 2000·big
		t.Fatal("128-bit compare rejected a true inequality")
	}
	if ratioLE(big, 999, big) { // big·1000 > 999·big
		t.Fatal("128-bit compare accepted a false inequality")
	}
}
