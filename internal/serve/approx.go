package serve

// Graceful degradation past the 2^k wall (docs/RESILIENCE.md): the approx
// engine serves instances the exact DP cannot afford — and backstops the
// fallback chain when every exact engine is faulting — with answers whose
// suboptimality is *certified*, never trusted. The flow mirrors the exact
// path's certify-before-cache contract exactly: the engine's claimed tree,
// cost, and gap go through certify.CertifyGap (independent re-pricing plus
// an independently recomputed lower bound) before a cacheEntry exists, and
// a failed certification is an engine fault like any other. Inadequacy
// claims are certified by their finite witness (certify.CheckInadequate).

import (
	"context"
	"fmt"
	"net/http"

	"repro/internal/approx"
	"repro/internal/certify"
	"repro/internal/core"
)

// oversizeError is an admission-control rejection that names the budget it
// enforces, so 422 bodies can tell the client which knob to turn. It
// unwraps to errOversize for the existing errors.Is seams.
type oversizeError struct {
	budget string // "k", "actions", "machine-dim", "approx-k", "approx-actions"
	limit  int
	got    int
	msg    string
}

func (e *oversizeError) Error() string { return e.msg }
func (e *oversizeError) Unwrap() error { return errOversize }

// oversizeBody is the structured 422 reply: the human-readable error plus
// the machine-readable budget that was exceeded and — when the instance is
// within the approx plane's own caps — the smallest approx= setting that
// would have been accepted, so clients can self-heal by re-asking.
type oversizeBody struct {
	Error      string `json:"error"`
	Budget     string `json:"budget"`
	Limit      int    `json:"limit"`
	Got        int    `json:"got"`
	ApproxHint string `json:"approx_hint,omitempty"`
}

// rejectOversize is the single 422-for-size seam: every admission reject
// goes through it so none can forget the counter or the structured body.
func (s *Server) rejectOversize(w http.ResponseWriter, e *oversizeError, p *core.Problem) {
	s.metrics.RejectOversize.Add(1)
	body := &oversizeBody{Error: e.msg, Budget: e.budget, Limit: e.limit, Got: e.got}
	if p != nil && s.admitApprox(p) == nil {
		// Any enabled approx setting admits this instance; "1" (anytime
		// until proven optimal or budgets run out) is the smallest.
		body.ApproxHint = "approx=1"
	}
	writeJSON(w, http.StatusUnprocessableEntity, body)
}

// admitApprox enforces the approx plane's own (much looser) budget: the
// greedy policies and branch-and-bound hold no 2^K state, so the caps exist
// to bound per-request CPU, not memory blowups.
func (s *Server) admitApprox(p *core.Problem) *oversizeError {
	if p.K > s.cfg.ApproxMaxK {
		return &oversizeError{budget: "approx-k", limit: s.cfg.ApproxMaxK, got: p.K,
			msg: fmt.Sprintf("%v: %d objects > approx max %d", errOversize, p.K, s.cfg.ApproxMaxK)}
	}
	if len(p.Actions) > s.cfg.ApproxMaxActions {
		return &oversizeError{budget: "approx-actions", limit: s.cfg.ApproxMaxActions, got: len(p.Actions),
			msg: fmt.Sprintf("%v: %d actions > approx max %d", errOversize, len(p.Actions), s.cfg.ApproxMaxActions)}
	}
	return nil
}

// cacheKey is the cache/singleflight key: canonical hash plus certify mode,
// plus the approx knob when one is in force. Approx-enabled requests get
// distinct slots from exact ones so a certified-gap answer (cached after an
// oversize route or an exact-engine fault) is never served to a request
// that demanded exactness — the same isolation the mode segment provides
// for certification levels.
func cacheKey(hash string, mode certify.Mode, ap approx.Spec) string {
	key := hash + "|" + mode.String()
	if ap.Enabled {
		key += "|approx=" + ap.Raw
	}
	return key
}

// solveApproxAttempt runs the approx engine once: anytime solve, then
// mandatory gap certification — even in certify=off mode. Exact answers can
// be spot-checked more cheaply than they were computed; an approximate
// answer's quality claim is only knowledge at all once it has been
// independently verified, so there is no off switch on this path.
func (s *Server) solveApproxAttempt(ctx context.Context, hash string, canon *core.Problem, mode certify.Mode, ap approx.Spec) (*cacheEntry, error) {
	res, err := approx.Solve(ctx, canon, approx.Options{
		Deadline:    ap.Deadline,
		TargetMilli: ap.TargetMilli,
		NodeBudget:  s.cfg.ApproxNodes,
	})
	if err != nil {
		return nil, err
	}
	if hook := s.cfg.ResultFault; hook != nil && hook("approx") {
		// Chaos: silently corrupt the answer before certification, exactly
		// as for the exact engines.
		if res.Cost >= core.Inf {
			res.Cost, res.Adequate = 42, true
		} else {
			res.Cost++
		}
	}
	ent := &cacheEntry{
		engine: "approx", hash: hash, canon: canon,
		key:    cacheKey(hash, mode, ap),
		approx: true, approxPolicy: res.Policy, approxExact: res.Exact,
	}
	if !res.Adequate {
		if rep := certify.CheckInadequate(canon); !rep.OK() {
			s.metrics.CertifyFail.Add(1)
			return nil, fmt.Errorf("serve: approx inadequate claim refused: %w", rep.Err())
		}
		s.metrics.CertifyPass.Add(1)
		ent.cost, ent.adequate = core.Inf, false
		ent.lowerBound, ent.gapMilli = core.Inf, certify.GapScale
	} else {
		cert, err := certify.CertifyGap(canon, res.Tree, res.Cost, res.GapMilli)
		if err != nil {
			s.metrics.CertifyFail.Add(1)
			return nil, fmt.Errorf("serve: approx answer refused: %w", err)
		}
		s.metrics.CertifyPass.Add(1)
		ent.cost, ent.adequate, ent.tree = cert.Cost(), true, cert.Root()
		ent.lowerBound, ent.gapMilli = cert.LowerBound(), cert.GapMilli()
	}
	s.metrics.ApproxServed.Add(1)
	if res.Exact {
		s.metrics.ApproxExact.Add(1)
	}
	s.metrics.observeGap(ent.gapMilli)
	ent.bytes = entryBytes(ent)
	return ent, nil
}
