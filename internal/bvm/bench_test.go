package bvm

import (
	"fmt"
	"testing"

	"repro/internal/stripe"
)

// BenchmarkExecPerRoute measures one Exec per D-operand route on the 2048-PE
// machine (r=3), the instruction mix every BVM program is built from. The
// committed baseline lives in BENCH_bvm.json (make bench-json); the route
// kernels must stay well ahead of the scalar perm-table path.
func BenchmarkExecPerRoute(b *testing.B) {
	routes := []struct {
		name string
		via  Route
	}{
		{"local", Local},
		{"S", RouteS},
		{"P", RouteP},
		{"L", RouteL},
		{"XS", RouteXS},
		{"XP", RouteXP},
		{"I", RouteI},
	}
	for _, rc := range routes {
		b.Run(rc.name, func(b *testing.B) {
			m, err := New(3, DefaultRegisters)
			if err != nil {
				b.Fatal(err)
			}
			in := Instr{Dst: R(0), FTT: TTD, GTT: TTB, F: A, D: Via(R(1), rc.via)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Exec(in)
				if len(m.Output) > 1<<20 {
					b.StopTimer()
					m.Output = m.Output[:0]
					b.StartTimer()
				}
			}
		})
	}
	// The big machine (r=4, 2^20 PEs) stresses the lateral exchange, whose
	// strides span whole words.
	for _, rc := range routes[1:6] {
		b.Run(fmt.Sprintf("%s-r4", rc.name), func(b *testing.B) {
			m, err := New(4, DefaultRegisters)
			if err != nil {
				b.Fatal(err)
			}
			in := Instr{Dst: R(0), FTT: TTD, GTT: TTB, F: A, D: Via(R(1), rc.via)}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Exec(in)
			}
		})
	}
}

// BenchmarkExecStriped measures the pool-striped Exec path against the
// scalar kernels on the r=4 machine (2^20 PEs, 16384 words per register) —
// the geometry the striping tier exists for. The scalar sub-benchmark is the
// baseline; the striped ones shard the same instruction across worker pools.
func BenchmarkExecStriped(b *testing.B) {
	mixes := []struct {
		name string
		in   Instr
	}{
		{"local", Instr{Dst: R(0), FTT: TTXorFD, GTT: TTB, F: R(1), D: Loc(R(2))}},
		{"routeL", Instr{Dst: R(0), FTT: TTD, GTT: TTB, F: A, D: Via(R(1), RouteL)}},
		{"gated", Instr{Dst: R(0), FTT: TTMuxB, GTT: TTMajority, F: R(1), D: Via(R(2), RouteS), Cond: IF(0, 2)}},
	}
	for _, mix := range mixes {
		b.Run(mix.name+"/scalar", func(b *testing.B) {
			m, err := New(4, 8)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Exec(mix.in)
			}
		})
		for _, workers := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/stripe%d", mix.name, workers), func(b *testing.B) {
				m, err := New(4, 8)
				if err != nil {
					b.Fatal(err)
				}
				m.SetStriped(stripe.New(workers), 0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					m.Exec(mix.in)
				}
			})
		}
	}
}

// BenchmarkExecActivation measures conditioned instructions, whose
// (IF/NF) <set> masks are rebuilt per Exec on the scalar path and served from
// the per-machine cache on the kernel path.
func BenchmarkExecActivation(b *testing.B) {
	cases := []struct {
		name string
		cond *Activation
	}{
		{"none", nil},
		{"IF0", IF(0)},
		{"NF07", NF(0, 7)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			m, err := New(3, DefaultRegisters)
			if err != nil {
				b.Fatal(err)
			}
			in := Instr{Dst: R(0), FTT: TTXorFD, GTT: TTB, F: R(1), D: Loc(R(2)), Cond: c.cond}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Exec(in)
			}
		})
	}
}
