package bitvec

import (
	"math/rand"
	"testing"
)

// partitions yields a few representative disjoint word partitions of a
// wc-word vector: single span, even halves, uneven thirds, and per-word.
func partitions(wc int) [][][2]int {
	cut := func(bounds ...int) [][2]int {
		var spans [][2]int
		prev := 0
		for _, b := range bounds {
			spans = append(spans, [2]int{prev, b})
			prev = b
		}
		spans = append(spans, [2]int{prev, wc})
		return spans
	}
	parts := [][][2]int{cut()}
	if wc >= 2 {
		parts = append(parts, cut(wc/2))
	}
	if wc >= 3 {
		parts = append(parts, cut(wc/3, 2*wc/3+1))
		perWord := make([][2]int, wc)
		for i := range perWord {
			perWord[i] = [2]int{i, i + 1}
		}
		parts = append(parts, perWord)
	}
	return parts
}

// TestRangeKernelsMatchFullVector pins every range kernel bit-identical to
// its full-vector counterpart under arbitrary disjoint word partitions.
func TestRangeKernelsMatchFullVector(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, n := range []int{64, 192, 2048, 2048 + 64} {
		a, b, c := randVec(rng, n), randVec(rng, n), randVec(rng, n)
		mask := randVec(rng, n)
		base := randVec(rng, n)
		wc := base.WordCount()
		for _, spans := range partitions(wc) {
			// Apply3: all fast-path truth tables plus generic ones.
			for _, tt := range []uint8{0x00, 0xFF, 0xF0, 0xCC, 0xAA, 0x0F, 0x33, 0xC0, 0xFC, 0x3C, 0x30, 0xD8, 0x96, 0xE8, 0x17, 0xB2} {
				want := base.Clone()
				want.Apply3(tt, a, b, c)
				got := base.Clone()
				for _, s := range spans {
					got.Apply3Range(tt, a, b, c, s[0], s[1])
				}
				if !got.Equal(want) {
					t.Fatalf("n=%d tt=%#02x spans=%v: Apply3Range mismatch", n, tt, spans)
				}
			}

			// MaskedCopy / CopyFrom / And.
			want := base.Clone()
			want.MaskedCopy(mask, a)
			got := base.Clone()
			for _, s := range spans {
				got.MaskedCopyRange(mask, a, s[0], s[1])
			}
			if !got.Equal(want) {
				t.Fatalf("n=%d spans=%v: MaskedCopyRange mismatch", n, spans)
			}
			want = base.Clone()
			want.CopyFrom(a)
			got = base.Clone()
			for _, s := range spans {
				got.CopyFromRange(a, s[0], s[1])
			}
			if !got.Equal(want) {
				t.Fatalf("n=%d spans=%v: CopyFromRange mismatch", n, spans)
			}
			want = base.Clone()
			want.And(a, b)
			got = base.Clone()
			for _, s := range spans {
				got.AndRange(a, b, s[0], s[1])
			}
			if !got.Equal(want) {
				t.Fatalf("n=%d spans=%v: AndRange mismatch", n, spans)
			}

			// Route kernels.
			for _, block := range []int{2, 8, 64} {
				for _, shift := range []int{0, 1, block / 2, block - 1} {
					want = base.Clone()
					want.RotateWithinBlocks(a, block, shift)
					got = base.Clone()
					for _, s := range spans {
						got.RotateWithinBlocksRange(a, block, shift, s[0], s[1])
					}
					if !got.Equal(want) {
						t.Fatalf("n=%d block=%d shift=%d spans=%v: RotateWithinBlocksRange mismatch", n, block, shift, spans)
					}
					sel := rng.Uint64()
					want = base.Clone()
					want.RotateWithinBlocksMasked(a, block, shift, sel)
					got = base.Clone()
					for _, s := range spans {
						got.RotateWithinBlocksMaskedRange(a, block, shift, sel, s[0], s[1])
					}
					if !got.Equal(want) {
						t.Fatalf("n=%d block=%d shift=%d spans=%v: RotateWithinBlocksMaskedRange mismatch", n, block, shift, spans)
					}
				}
			}
			for stride := 1; 2*stride <= n && n%(2*stride) == 0; stride *= 2 {
				want = base.Clone()
				want.StrideSwap(a, stride)
				got = base.Clone()
				for _, s := range spans {
					got.StrideSwapRange(a, stride, s[0], s[1])
				}
				if !got.Equal(want) {
					t.Fatalf("n=%d stride=%d spans=%v: StrideSwapRange mismatch", n, stride, spans)
				}
				sel := rng.Uint64()
				want = base.Clone()
				want.StrideSwapMasked(a, stride, sel)
				got = base.Clone()
				for _, s := range spans {
					got.StrideSwapMaskedRange(a, stride, sel, s[0], s[1])
				}
				if !got.Equal(want) {
					t.Fatalf("n=%d stride=%d spans=%v: StrideSwapMaskedRange mismatch", n, stride, spans)
				}
			}
			for _, in := range []bool{false, true} {
				want = base.Clone()
				want.ShiftUp1(a, in)
				got = base.Clone()
				for _, s := range spans {
					got.ShiftUp1Range(a, in, s[0], s[1])
				}
				if !got.Equal(want) {
					t.Fatalf("n=%d in=%v spans=%v: ShiftUp1Range mismatch", n, in, spans)
				}
			}
		}
	}
}

// TestRangeKernelsRespectSpanBounds verifies a range call leaves words
// outside [lo, hi) untouched.
func TestRangeKernelsRespectSpanBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	n := 64 * 8
	a, b, c := randVec(rng, n), randVec(rng, n), randVec(rng, n)
	base := randVec(rng, n)
	lo, hi := 2, 5
	got := base.Clone()
	got.Apply3Range(0x96, a, b, c, lo, hi)
	for wi := 0; wi < base.WordCount(); wi++ {
		in := wi >= lo && wi < hi
		if !in && got.words[wi] != base.words[wi] {
			t.Fatalf("word %d outside [%d,%d) modified", wi, lo, hi)
		}
	}
}

func TestRangeChecksBounds(t *testing.T) {
	v := New(128)
	src := New(128)
	for _, r := range [][2]int{{-1, 1}, {1, 0}, {0, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("range [%d,%d) not rejected", r[0], r[1])
				}
			}()
			v.CopyFromRange(src, r[0], r[1])
		}()
	}
}
