package parttsolve

import "fmt"

// This file models processor allocation when the problem needs more virtual
// PEs than the machine has — the paper's 2^20-PE machine against the
// N·2^k = 2^30-PE appetite of a 15-candidate instance. The standard folding
// (Brent's scheduling) assigns virtual PE v to physical PE v >> d, where
// d = DimBits - physDim: each physical PE serves a contiguous block of 2^d
// virtual cells, exchanges over the folded low dimensions become local
// memory moves, and every SIMD step dilates by the fold factor 2^d.
// On the lockstep simulator the computation itself is unchanged (it already
// sweeps all virtual cells per step), so folding is exact cost accounting,
// not an approximation.

// FoldFactor returns 2^d, the number of virtual cells per physical PE when
// the result's machine is folded onto 2^physDim physical PEs.
func (r *Result) FoldFactor(physDim int) (int, error) {
	if physDim < 1 {
		return 0, fmt.Errorf("parttsolve: physical machine of 2^%d PEs invalid", physDim)
	}
	if physDim >= r.DimBits {
		return 1, nil
	}
	d := r.DimBits - physDim
	if d > 30 {
		return 0, fmt.Errorf("parttsolve: fold factor 2^%d too large", d)
	}
	return 1 << uint(d), nil
}

// VirtualizedSteps returns the parallel step count (dimension + local) on a
// machine of 2^physDim physical PEs.
func (r *Result) VirtualizedSteps(physDim int) (int, error) {
	f, err := r.FoldFactor(physDim)
	if err != nil {
		return 0, err
	}
	return r.Steps() * f, nil
}

// VirtualizedSpeedup returns T1/Tp for a sequential baseline of t1 operation
// units against this run folded onto 2^physDim PEs, using the same units for
// both sides (the caller picks the cost model; see experiments E9/E15).
func (r *Result) VirtualizedSpeedup(t1 float64, physDim int) (float64, error) {
	steps, err := r.VirtualizedSteps(physDim)
	if err != nil {
		return 0, err
	}
	return t1 / float64(steps), nil
}
