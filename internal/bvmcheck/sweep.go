package bvmcheck

import (
	"fmt"

	"repro/internal/bvm"
)

// Communication-discipline analysis. The §4–§6 algorithms traverse hypercube
// dimensions in ASCEND or DESCEND order, one FetchPartner exchange per
// dimension. The checker recovers those dimension-exchange events from the
// instruction stream:
//
//   - High dimensions (dim >= r) pair cycles across lateral links that exist
//     only at in-cycle position u = dim - r: the idiom's signature is a
//     lateral-routed D operand under a single-position IF mask, and the
//     event's dimension is r + u.
//   - Low dimensions (dim < r) pair PEs inside a cycle by rotating copies
//     both ways and selecting by position bit: the signature is a local D
//     operand under an IF mask whose position set is exactly the positions
//     with address bit dim clear.
//
// Adjacent events on the same dimension coalesce into one logical exchange
// (one FetchPartner emits one selection instruction per routed bit plane, and
// a high-dimension fetch repeats its grab every rotation step). The coalesced
// event sequence is then segmented into sweeps — maximal runs with a constant
// step of +1 (ascending) or -1 (descending). A new sweep may restart at any
// dimension, but a run that jumps *forward* past a dimension (step >= 2 in
// its own direction, or at program start where ASCEND order is the paper's
// convention) is flagged: that is the off-by-one that leaves one hypercube
// axis uncombined. Because identical adjacent exchanges coalesce, a
// duplicated FetchPartner on the same dimension is reported as part of the
// same event rather than as a separate repeat.

// Sweep is one maximal monotone run of dimension exchanges.
type Sweep struct {
	// Start and End are the instruction indices of the first and last
	// exchange event in the run.
	Start int `json:"start"`
	End   int `json:"end"`
	// Dims lists the dimensions in traversal order.
	Dims []int `json:"dims"`
	// Direction is +1 (ascending), -1 (descending), or 0 (single exchange).
	Direction int `json:"direction"`
}

type dimEvent struct {
	index int // instruction index of the (first coalesced) event
	last  int // instruction index of the last coalesced event
	dim   int
}

// dimEvents extracts the coalesced dimension-exchange events.
func dimEvents(p *bvm.Program, cfg Config) []dimEvent {
	r, Q := cfg.Top.R, cfg.Top.Q
	var events []dimEvent
	add := func(i, dim int) {
		if n := len(events); n > 0 && events[n-1].dim == dim {
			events[n-1].last = i
			return
		}
		events = append(events, dimEvent{index: i, last: i, dim: dim})
	}
	for i, in := range p.Instrs {
		c := in.Cond
		if c == nil || c.Negate {
			continue
		}
		switch in.D.Via {
		case bvm.RouteL:
			// High-dimension lateral grab at in-cycle position u.
			if len(c.Positions) == 1 {
				if u := c.Positions[0]; u >= 0 && u < Q {
					add(i, r+u)
				}
			}
		case bvm.Local:
			// Low-dimension select: position set = {p : p>>dim & 1 == 0}.
			if dim, ok := matchClearSet(c.Positions, r, Q); ok {
				add(i, dim)
			}
		}
	}
	return events
}

// matchClearSet reports whether positions is exactly the set of in-cycle
// positions with bit dim clear, for some dim < r.
func matchClearSet(positions []int, r, Q int) (int, bool) {
	if len(positions) != Q/2 {
		return 0, false
	}
	set := make(map[int]bool, len(positions))
	for _, p := range positions {
		if p < 0 || p >= Q || set[p] {
			return 0, false
		}
		set[p] = true
	}
	for dim := 0; dim < r; dim++ {
		match := true
		for p := 0; p < Q; p++ {
			if set[p] != (p>>uint(dim)&1 == 0) {
				match = false
				break
			}
		}
		if match {
			return dim, true
		}
	}
	return 0, false
}

// analyzeSweeps segments the dimension events into monotone sweeps and flags
// forward skips. Assumes the program is well-formed.
func analyzeSweeps(p *bvm.Program, cfg Config) ([]Diag, []Sweep) {
	events := dimEvents(p, cfg)
	if len(events) == 0 {
		return nil, nil
	}
	var diags []Diag
	var sweeps []Sweep
	cur := Sweep{Start: events[0].index, End: events[0].last, Dims: []int{events[0].dim}}
	anyRunCompleted := false
	closeRun := func() {
		if len(cur.Dims) >= 2 {
			anyRunCompleted = true
		}
		sweeps = append(sweeps, cur)
	}
	for _, ev := range events[1:] {
		prev := cur.Dims[len(cur.Dims)-1]
		delta := ev.dim - prev
		step := 1
		if delta < 0 {
			step = -1
		}
		switch {
		case delta == cur.Direction || (cur.Direction == 0 && (delta == 1 || delta == -1)):
			// Contiguous step: extend the run.
			cur.Dims = append(cur.Dims, ev.dim)
			cur.End = ev.last
			cur.Direction = step
			continue
		case cur.Direction != 0 && step == cur.Direction,
			cur.Direction == 0 && !anyRunCompleted && delta > 0:
			// Jumping forward in the run's own direction (or forward at
			// program start, where ASCEND is the paper's convention) skips
			// dimensions instead of restarting a sweep.
			dir := "ascending"
			if step < 0 {
				dir = "descending"
			}
			diags = append(diags, Diag{
				Index: ev.index, Severity: SevWarning, Category: CatSweep,
				Message: fmt.Sprintf("%s sweep jumps from dimension %d to %d, skipping %d dimension(s)",
					dir, prev, ev.dim, abs(delta)-1),
				Instr: p.Instrs[ev.index].String(),
			})
		}
		closeRun()
		cur = Sweep{Start: ev.index, End: ev.last, Dims: []int{ev.dim}}
	}
	closeRun()
	return diags, sweeps
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
