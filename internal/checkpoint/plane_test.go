package checkpoint

import (
	"bytes"
	"context"
	"errors"
	"testing"
)

// testPlane is a small but non-trivial slice: mixed finite/Inf costs, a
// choice track, and nonzero checksums.
func testPlane(withChoice bool) *Plane {
	p := &Plane{
		Level:     3,
		Lo:        7,
		Hi:        12,
		FrozenSum: 0xdeadbeefcafef00d,
		WeightSum: 0x0123456789abcdef,
		C:         []uint64{41, ^uint64(0), 0, 7, 1 << 60},
	}
	if withChoice {
		p.Choice = []int32{0, -1, 2, 1, 3}
	}
	return p
}

func planesEqual(a, b *Plane) bool {
	if a.Level != b.Level || a.Lo != b.Lo || a.Hi != b.Hi ||
		a.FrozenSum != b.FrozenSum || a.WeightSum != b.WeightSum ||
		len(a.C) != len(b.C) || len(a.Choice) != len(b.Choice) {
		return false
	}
	for i := range a.C {
		if a.C[i] != b.C[i] {
			return false
		}
	}
	for i := range a.Choice {
		if a.Choice[i] != b.Choice[i] {
			return false
		}
	}
	return true
}

func TestPlaneRoundTrip(t *testing.T) {
	for _, withChoice := range []bool{true, false} {
		want := testPlane(withChoice)
		img, err := EncodePlane(want)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodePlane(img)
		if err != nil {
			t.Fatal(err)
		}
		if !planesEqual(want, got) {
			t.Fatalf("choice=%v: round trip changed the plane: %+v -> %+v", withChoice, want, got)
		}
	}
}

func TestEncodePlaneRejectsBadShape(t *testing.T) {
	cases := map[string]func(*Plane){
		"negative level":  func(p *Plane) { p.Level = -1 },
		"inverted range":  func(p *Plane) { p.Lo, p.Hi = p.Hi, p.Lo },
		"short costs":     func(p *Plane) { p.C = p.C[:2] },
		"short choices":   func(p *Plane) { p.Choice = p.Choice[:1] },
		"oversized range": func(p *Plane) { p.Lo, p.Hi = 0, MaxPlaneCells+1 },
	}
	for name, mutate := range cases {
		p := testPlane(true)
		mutate(p)
		if _, err := EncodePlane(p); err == nil {
			t.Errorf("%s: encode accepted a malformed plane", name)
		}
	}
}

// TestDecodePlaneRejectsDamage drives the transport-integrity contract
// deterministically: every truncation, every single bit flip, and frame
// duplication must either fail with ErrCorrupt or decode to exactly the
// original values. A wrong frontier is the one forbidden outcome.
func TestDecodePlaneRejectsDamage(t *testing.T) {
	want := testPlane(true)
	img, err := EncodePlane(want)
	if err != nil {
		t.Fatal(err)
	}
	check := func(what string, data []byte) {
		t.Helper()
		got, err := DecodePlane(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("%s: error does not wrap ErrCorrupt: %v", what, err)
			}
			return
		}
		if !planesEqual(want, got) {
			t.Fatalf("%s: decoded a DIFFERENT plane without error", what)
		}
	}
	for n := 0; n < len(img); n++ {
		check("truncation", img[:n])
	}
	for i := 0; i < len(img); i++ {
		for b := 0; b < 8; b++ {
			flipped := append([]byte(nil), img...)
			flipped[i] ^= 1 << b
			check("bit flip", flipped)
		}
	}
	// A duplicated image (or any appended frame) is trailing garbage.
	check("duplicated image", append(append([]byte(nil), img...), img...))
	check("appended frame", AppendFrame(append([]byte(nil), img...), []byte("extra")))
}

func TestScanCtxStopsAtBudget(t *testing.T) {
	p := testProblem()
	hash, err := ProblemHash(p)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	w, err := NewWriter(nil, dir, p, hash, "seq", 0)
	if err != nil {
		t.Fatal(err)
	}
	solveTo(t, p, w)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	snaps, _, err := ScanCtx(ctx, nil, dir)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expired ScanCtx err = %v, want context.Canceled", err)
	}
	if len(snaps) != 0 {
		t.Fatalf("expired ScanCtx still loaded %d snapshots", len(snaps))
	}
	// With budget left the same directory scans normally.
	snaps, discard, err := ScanCtx(context.Background(), nil, dir)
	if err != nil || len(snaps) != 1 || len(discard) != 0 {
		t.Fatalf("live ScanCtx = %d snaps, %d discard, err %v", len(snaps), len(discard), err)
	}
}

// FuzzDecodePlane asserts the decode contract over arbitrary input: any
// error wraps ErrCorrupt, and anything accepted survives a re-encode
// round trip unchanged.
func FuzzDecodePlane(f *testing.F) {
	for _, withChoice := range []bool{true, false} {
		img, err := EncodePlane(testPlane(withChoice))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(img)
		f.Add(img[:len(img)/2])
		f.Add(append(append([]byte(nil), img...), img...))
	}
	f.Add([]byte("TTPL"))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePlane(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		img, err := EncodePlane(p)
		if err != nil {
			t.Fatalf("accepted plane does not re-encode: %v", err)
		}
		q, err := DecodePlane(img)
		if err != nil || !planesEqual(p, q) {
			t.Fatalf("re-encode round trip diverged: %v", err)
		}
	})
}

// FuzzDecodePlaneBitFlip is the targeted half of the contract: corrupt one
// known-good image at a fuzzer-chosen bit and demand ErrCorrupt or the
// exact original — never a third outcome.
func FuzzDecodePlaneBitFlip(f *testing.F) {
	want := testPlane(true)
	img, err := EncodePlane(want)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint(0), uint(0))
	f.Add(uint(len(img)-1), uint(7))
	f.Add(uint(5), uint(3))
	f.Fuzz(func(t *testing.T, pos, bit uint) {
		flipped := append([]byte(nil), img...)
		flipped[pos%uint(len(img))] ^= 1 << (bit % 8)
		got, err := DecodePlane(flipped)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("bit flip error does not wrap ErrCorrupt: %v", err)
			}
			return
		}
		if !bytes.Equal(flipped, img) && !planesEqual(want, got) {
			t.Fatalf("bit flip at %d:%d decoded a different plane", pos, bit)
		}
	})
}
