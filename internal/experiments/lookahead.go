package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// LookaheadDepth is experiment E17: the anytime spectrum between the myopic
// greedy and the exact DP. The paper's motivation for parallel hardware is
// that the exact DP is exponential; this table quantifies what bounded
// lookahead buys when neither the DP nor a 2^k-PE machine is available.
func LookaheadDepth() (*Table, error) {
	t := &Table{
		ID:         "E17",
		Title:      "bounded-lookahead policies vs the exact DP",
		PaperClaim: "(context) the TT problem is NP-hard; bounded lookahead is the sequential fallback",
		Header:     []string{"workload", "k", "optimal", "d=0", "d=1", "d=2", "gap@0 %", "gap@2 %"},
	}
	cases := []struct {
		name string
		p    *core.Problem
	}{
		{"medical-10", workload.MedicalDiagnosis(31, 10)},
		{"fault-12", workload.FaultLocation(32, 12, 4)},
		{"laboratory-10", workload.LaboratoryAnalysis(33, 10)},
		{"logistics-11", workload.Logistics(34, 11, 4)},
		{"random-10", workload.Random(35, 10, 8, 6)},
	}
	for _, c := range cases {
		sol, err := core.Solve(c.p)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		costs := make([]uint64, 3)
		for d := 0; d <= 2; d++ {
			costs[d], err = core.LookaheadCost(c.p, d)
			if err != nil {
				return nil, fmt.Errorf("%s depth %d: %w", c.name, d, err)
			}
		}
		gap := func(c uint64) string {
			return fmt.Sprintf("%.1f", 100*(float64(c)-float64(sol.Cost))/float64(sol.Cost))
		}
		t.AddRow(c.name, c.p.K, sol.Cost, costs[0], costs[1], costs[2],
			gap(costs[0]), gap(costs[2]))
	}
	t.Notes = append(t.Notes,
		"depth 0 prices horizons greedily; each extra level expands the recurrence exactly one step further",
		"depth >= k reproduces the DP exactly (property-tested)")
	return t, nil
}
