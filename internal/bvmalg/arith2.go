package bvmalg

import "repro/internal/bvm"

// Additional bit-serial arithmetic: subtraction and equality. Like addition,
// each runs one dual-assignment instruction per bit plane with the running
// borrow/flag in register B.

// ttBorrow is the borrow-propagation g table for x - y scanning LSB→MSB:
// borrow' = majority(NOT x_b, y_b, borrow).
var ttBorrow = bvm.TT(func(f, d, b bool) bool {
	nf := !f
	return (nf && d) || (nf && b) || (d && b)
})

// SubWord computes dst = x - y modulo 2^width (borrow ripple through B);
// afterwards B holds the final borrow, i.e. B = (x < y). Width+1
// instructions. dst may alias x or y.
func SubWord(m *bvm.Machine, dst, x, y Word) {
	sameWidth(dst, x)
	sameWidth(dst, y)
	setB(m, false)
	for b := 0; b < dst.Width; b++ {
		m.Exec(bvm.Instr{
			Dst: dst.Bit(b),
			FTT: bvm.TTParity, // diff = x ^ y ^ borrow
			GTT: ttBorrow,
			F:   x.Bit(b), D: bvm.Loc(y.Bit(b)),
		})
	}
}

// EqualWord leaves B = (x == y) on every PE. Width+1 instructions.
func EqualWord(m *bvm.Machine, x, y Word) {
	sameWidth(x, y)
	setB(m, true)
	eq := bvm.TT(func(f, d, b bool) bool { return b && f == d })
	for b := 0; b < x.Width; b++ {
		m.Exec(bvm.Instr{Dst: bvm.A, FTT: bvm.TTF, GTT: eq, F: x.Bit(b), D: bvm.Loc(y.Bit(b))})
	}
}

// NotWord sets dst = bitwise complement of x. Width instructions.
func NotWord(m *bvm.Machine, dst, x Word) {
	sameWidth(dst, x)
	for b := 0; b < dst.Width; b++ {
		m.Not(dst.Bit(b), x.Bit(b))
	}
}
