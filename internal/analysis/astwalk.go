package analysis

import "go/ast"

// WithStack walks the AST rooted at n in depth-first order, calling fn with
// each node and the stack of its ancestors (outermost first, n itself last).
// Returning false from fn prunes the subtree below the current node.
func WithStack(n ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(n, func(node ast.Node) bool {
		if node == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, node)
		if !fn(node, stack) {
			// Pruned: Inspect will not descend, and will not send the nil
			// pop for this node either — unwind it ourselves.
			stack = stack[:len(stack)-1]
			return false
		}
		return true
	})
}

// CallsInExecutedCode reports every CallExpr in the subtree of n that is
// executed when n's statement runs: it descends into immediately-invoked
// function literals, go statements, and defer statements, but not into
// function-literal values that are merely created (assigned or passed along),
// whose bodies run at some other time.
func CallsInExecutedCode(n ast.Node, fn func(call *ast.CallExpr)) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch v := node.(type) {
		case *ast.CallExpr:
			fn(v)
			return true
		case *ast.FuncLit:
			// A literal reached here was not the Fun of a CallExpr we just
			// visited in invoked position... distinguish by parent: handled
			// below via the CallExpr case descending naturally. We prune all
			// literals and re-enter only the invoked ones explicitly.
			return false
		}
		return true
	})
	// Second pass: immediately-invoked literals (func(){...}(), go func(){}(),
	// defer func(){}() all parse as CallExpr{Fun: FuncLit}); their bodies are
	// executed code, recursively.
	ast.Inspect(n, func(node ast.Node) bool {
		if call, ok := node.(*ast.CallExpr); ok {
			if lit, ok := call.Fun.(*ast.FuncLit); ok {
				CallsInExecutedCode(lit.Body, fn)
			}
		}
		if _, ok := node.(*ast.FuncLit); ok {
			// Bodies of non-invoked literals stay pruned; invoked ones were
			// handled via their enclosing CallExpr above.
			return false
		}
		return true
	})
}
