package serve

import (
	"context"
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
)

// solveCluster runs one solve on the distributed plane: dial the configured
// ttworker fleet, shard the level sweep across it, and merge only verified
// planes. The dial is best-effort — the solve proceeds with whatever subset
// of the fleet answered, and cluster.Solve degrades further as workers fail,
// down to its quorum floor. Any failure here (no reachable workers, quorum
// lost, a slice out of retries) is an ordinary engine fault: the breaker
// counts it and the chain falls back to the in-process engines.
func (s *Server) solveCluster(ctx context.Context, hash string, canon *core.Problem, frontier *core.Frontier, ck core.Checkpointer) (*core.Solution, error) {
	if len(s.cfg.ClusterWorkers) == 0 {
		return nil, fmt.Errorf("serve: cluster engine selected but no workers configured")
	}
	conns, err := cluster.Dial(ctx, s.cfg.ClusterWorkers, s.cfg.ClusterDialTimeout, s.log)
	if err != nil {
		return nil, err
	}
	s.metrics.ClusterSolves.Add(1)
	sol, stats, err := cluster.Solve(ctx, canon, conns, cluster.Options{
		PlaneDeadline: s.cfg.ClusterDeadline,
		Quorum:        s.cfg.ClusterQuorum,
		AuditFraction: s.cfg.ClusterAudit,
		Seed:          certifySeed(hash),
		Hash:          hash,
		Frontier:      frontier,
		Checkpointer:  ck,
		Logger:        s.log,
	})
	s.metrics.ClusterPlanes.Add(stats.Planes)
	s.metrics.ClusterPlanesRejected.Add(stats.PlanesRejected)
	s.metrics.ClusterReassigned.Add(stats.Reassigned)
	s.metrics.ClusterStragglers.Add(stats.Stragglers)
	s.metrics.ClusterWorkersLost.Add(stats.WorkersLost)
	for _, v := range stats.Violations {
		s.log.Warn("cluster plane violation", "node", v.Node, "kind", string(v.Kind), "detail", v.Detail)
	}
	return sol, err
}
