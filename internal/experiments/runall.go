package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment names one runnable reproduction unit.
type Experiment struct {
	ID   string
	Name string
	Run  func(w io.Writer) error
}

func tableExp(id, name string, f func() (*Table, error)) Experiment {
	return Experiment{ID: id, Name: name, Run: func(w io.Writer) error {
		t, err := f()
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, t.Render())
		return err
	}}
}

func textExp(id, name string, f func() (string, error)) Experiment {
	return Experiment{ID: id, Name: name, Run: func(w io.Writer) error {
		s, err := f()
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, s)
		return err
	}}
}

// All returns every experiment in index order.
func All() []Experiment {
	return []Experiment{
		textExp("E1", "fig1", Fig1Tree),
		textExp("E2", "fig2", func() (string, error) { return Fig2Layout(2) }),
		textExp("E3", "fig3", Fig3CycleID),
		textExp("E4", "fig4-5", Fig45ProcessorID),
		textExp("E5", "fig6", Fig6Broadcast),
		textExp("E6", "fig7", Fig7AscendMin),
		textExp("E7", "fig8-9", Fig89RBroadcast),
		tableExp("E8", "steps", StepsScaling),
		tableExp("E9", "speedup", Speedup),
		tableExp("E10", "slowdown", Slowdown),
		tableExp("E11", "links", Links),
		tableExp("E12", "capacity", Capacity),
		tableExp("E13", "crossval", CrossValidation),
		tableExp("E14", "greedy", GreedyGap),
		tableExp("E15", "virtualization", Virtualization),
		tableExp("E16", "robustness", PriorRobustness),
		tableExp("E17", "lookahead", LookaheadDepth),
		tableExp("E18", "budget", InstructionBudget),
		tableExp("E19", "benes", BenesRouting),
		tableExp("E20", "sorting", SortingOnCCC),
		tableExp("E21", "width", WidthScaling),
		tableExp("A1", "ablation-gather", AblationGather),
		tableExp("A2", "ablation-wavefront", AblationWavefront),
		tableExp("A3", "ablation-controlbits", AblationControlBits),
		tableExp("A4", "ablation-engines", AblationEngines),
	}
}

// Lookup finds an experiment by ID or name (case-sensitive); nil if absent.
func Lookup(key string) *Experiment {
	for _, e := range All() {
		if e.ID == key || e.Name == key {
			exp := e
			return &exp
		}
	}
	return nil
}

// Names returns the sorted set of valid -run keys.
func Names() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// RunAll executes every experiment, writing each section to w.
func RunAll(w io.Writer) error {
	for _, e := range All() {
		if err := e.Run(w); err != nil {
			return fmt.Errorf("experiments: %s (%s): %w", e.ID, e.Name, err)
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	return nil
}
