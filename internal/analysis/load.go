package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked analysis unit: a package's production
// files plus (optionally) its in-package _test.go files.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Files     []*ast.File
	TestFiles map[*ast.File]bool
	Pkg       *types.Package
	Info      *types.Info
}

// LoadConfig tunes Load.
type LoadConfig struct {
	Dir          string // module directory the patterns are resolved in ("" = cwd)
	IncludeTests bool   // also parse and type-check in-package _test.go files
}

// listPkg is the subset of `go list -json` output the driver needs.
type listPkg struct {
	ImportPath  string
	Dir         string
	Standard    bool
	DepOnly     bool
	ForTest     string
	Export      string
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
	Module      *struct{ Path string }
	Error       *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") with the go command, type-checks every
// matched package from source against compiled export data for its
// dependencies, and returns the units ready for analysis.
//
// Dependencies — including the standard library — are imported from export
// data produced by `go list -export`, which the go command materializes from
// the build cache; nothing is fetched, so Load works in the same offline
// environments the build does.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-export", "-deps", "-json"}
	if cfg.IncludeTests {
		// -test compiles the test variants too, so export data exists for
		// test-only imports (testing, net/http/httptest, ...).
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list failed: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil && !p.Standard && !p.DepOnly {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		path := p.ImportPath
		// Test variants list as "pkg [other.test]"; their export data is for
		// the variant build, which only exists when the plain build has none.
		if i := strings.IndexByte(path, ' '); i >= 0 {
			path = path[:i]
		}
		if p.Export != "" {
			if _, have := exports[path]; !have || !strings.Contains(p.ImportPath, " ") {
				exports[path] = p.Export
			}
		}
		if p.Standard || p.DepOnly || p.ForTest != "" ||
			strings.Contains(p.ImportPath, " ") || strings.HasSuffix(p.ImportPath, ".test") {
			continue
		}
		q := p
		targets = append(targets, &q)
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 && len(t.CgoFiles) == 0 {
			continue
		}
		u := &Package{
			Path:      t.ImportPath,
			Fset:      fset,
			TestFiles: map[*ast.File]bool{},
			Info:      newInfo(),
		}
		names := append([]string{}, t.GoFiles...)
		names = append(names, t.CgoFiles...)
		nonTest := len(names)
		if cfg.IncludeTests {
			names = append(names, t.TestGoFiles...)
		}
		for i, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			u.Files = append(u.Files, f)
			if i >= nonTest {
				u.TestFiles[f] = true
			}
		}
		conf := types.Config{Importer: imp, Error: func(error) {}}
		pkg, err := conf.Check(t.ImportPath, fset, u.Files, u.Info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", t.ImportPath, err)
		}
		u.Pkg = pkg
		pkgs = append(pkgs, u)
	}
	return pkgs, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
