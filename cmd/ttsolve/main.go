// Command ttsolve solves a test-and-treatment instance given as JSON, with a
// choice of solver engines: the sequential DP, the parallel ASCEND algorithm
// on the lockstep/goroutine/CCC engines, or the instruction-level BVM
// program.
//
// Usage:
//
//	ttsolve [-engine seq|lockstep|goroutine|ccc|bvm] [-certify off|fast|audit] [-approx off|RATIO|DEADLINE] [-tree] [-greedy] [file.json]
//
// Reading from stdin when no file is given. The instance format:
//
//	{
//	  "weights": [8, 4, 2, 1],
//	  "actions": [
//	    {"name": "swab", "objects": [0, 1], "cost": 2, "treatment": false},
//	    {"name": "rest", "objects": [0],   "cost": 3, "treatment": true}
//	  ]
//	}
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/approx"
	"repro/internal/bvmtt"
	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/parttsolve"
	"repro/internal/simulate"
)

// run buffers all report output and surfaces the flush error: when stdout is
// a full disk or closed pipe the command must exit nonzero, not silently
// truncate (fmt.Fprintf return values are otherwise unchecked).
func run(args []string, stdin io.Reader, stdout io.Writer) error {
	out := bufio.NewWriter(stdout)
	err := solve(args, stdin, out)
	if ferr := out.Flush(); err == nil && ferr != nil {
		err = fmt.Errorf("ttsolve: writing output: %w", ferr)
	}
	return err
}

func solve(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("ttsolve", flag.ContinueOnError)
	engine := fs.String("engine", "seq", "solver: seq, lockstep, goroutine, ccc, or bvm")
	showTree := fs.Bool("tree", false, "print the optimal procedure tree (seq engine)")
	showDOT := fs.Bool("dot", false, "print the optimal tree as Graphviz DOT (seq engine)")
	showStats := fs.Bool("stats", false, "print procedure-tree statistics (seq engine)")
	mcTrials := fs.Int("simulate", 0, "Monte-Carlo trials validating the tree's expected cost (seq engine)")
	policyOut := fs.String("policy", "", "write the reachable-state policy as JSON to this file (seq engine)")
	explain := fs.Bool("explain", false, "print the per-action M[U,i] pricing table (seq engine)")
	showGreedy := fs.Bool("greedy", false, "also report the greedy heuristic's cost")
	approxFlag := fs.String("approx", "off", "anytime solve with a certified gap instead of the exact DP: a target ratio >= 1 (1.5 = within 50%) or a deadline like 200ms")
	certifyFlag := fs.String("certify", "off", "certify the answer before reporting it: off, fast, or audit; simulated-machine engines also run their ABFT layer")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mode, err := certify.ParseMode(*certifyFlag)
	if err != nil {
		return fmt.Errorf("ttsolve: %w", err)
	}

	in := stdin
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	p, err := instio.Read(in)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "instance: %d objects, %d tests, %d treatments\n",
		p.K, p.NumTests(), p.NumTreatments())

	ap, err := approx.ParseSpec(*approxFlag)
	if err != nil {
		return fmt.Errorf("ttsolve: %w", err)
	}
	if ap.Enabled {
		return solveApprox(p, ap, *showTree, stdout)
	}

	var (
		cost    uint64
		cplane  []uint64
		choices []int32
	)
	switch *engine {
	case "seq":
		sol, err := core.Solve(p)
		if err != nil {
			return err
		}
		cost, cplane, choices = sol.Cost, sol.C, sol.Choice
		if *explain {
			fmt.Fprintln(stdout, "action pricing at the full universe (M[U,i]):")
			for _, row := range core.Explain(p, sol, core.Universe(p.K)) {
				mark := " "
				if row.Optimal {
					mark = "*"
				}
				val := "excluded"
				if row.Applicable {
					val = fmt.Sprintf("%d", row.M)
				}
				fmt.Fprintf(stdout, "  %s %-18s %s\n", mark, row.Name, val)
			}
		}
		if *policyOut != "" && sol.Adequate() {
			pol, err := core.NewPolicy(p, sol)
			if err != nil {
				return err
			}
			data, err := json.MarshalIndent(pol, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(*policyOut, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "policy with %d reachable states written to %s\n", pol.States(), *policyOut)
		}
		if (*showTree || *showDOT || *showStats || *mcTrials > 0) && sol.Adequate() {
			tree, err := sol.Tree(p)
			if err != nil {
				return err
			}
			if *showTree {
				fmt.Fprint(stdout, tree.Render(p))
			}
			if *showDOT {
				fmt.Fprint(stdout, tree.DOT(p, "procedure"))
			}
			if *showStats {
				st, err := core.Stats(p, tree)
				if err != nil {
					return err
				}
				fmt.Fprintf(stdout, "stats: %v\n", st)
			}
			if *mcTrials > 0 {
				est, err := simulate.EstimateCost(p, tree, 1, *mcTrials)
				if err != nil {
					return err
				}
				fmt.Fprintf(stdout, "monte-carlo (%d trials): %.1f ± %.1f\n",
					est.Trials, est.Mean, est.StdErr)
			}
		}
	case "lockstep", "goroutine", "ccc":
		kind := map[string]parttsolve.EngineKind{
			"lockstep": parttsolve.Lockstep, "goroutine": parttsolve.Goroutine, "ccc": parttsolve.CCC,
		}[*engine]
		res, err := parttsolve.SolveOpts(context.Background(), p, kind,
			parttsolve.Options{Verify: mode != certify.ModeOff})
		if err != nil {
			return err
		}
		cost, cplane, choices = res.Cost, res.C, res.Choice
		fmt.Fprintf(stdout, "parallel machine: %d PEs, %d dimension steps", res.PEs, res.DimSteps)
		if res.CCCSteps > 0 {
			fmt.Fprintf(stdout, ", %d CCC steps", res.CCCSteps)
		}
		fmt.Fprintln(stdout)
		if res.Repairs > 0 {
			fmt.Fprintf(stdout, "ABFT: %d round repairs\n", res.Repairs)
		}
	case "bvm":
		res, err := bvmtt.SolveOpts(context.Background(), p,
			bvmtt.Options{Verify: mode != certify.ModeOff})
		if err != nil {
			return err
		}
		cost, cplane = res.Cost, res.C
		fmt.Fprintf(stdout, "BVM: %d PEs, %d-bit words, %d instructions (%d loading)\n",
			res.PEs, res.Width, res.Instructions, res.LoadInstructions)
		if res.Repairs > 0 {
			fmt.Fprintf(stdout, "ABFT: %d round repairs\n", res.Repairs)
		}
	default:
		return fmt.Errorf("ttsolve: unknown engine %q", *engine)
	}

	if mode != certify.ModeOff {
		rep := certify.Check(p, cost, nil, cplane, choices, mode, 0)
		if !rep.OK() {
			fmt.Fprintf(stdout, "certify: FAILED (%d violations)\n", len(rep.Violations))
			for _, v := range rep.Violations {
				fmt.Fprintf(stdout, "  %s\n", v)
			}
			return fmt.Errorf("ttsolve: answer failed %s certification", mode)
		}
		if rep.Checked > 0 {
			fmt.Fprintf(stdout, "certify: PASS (%s, %d cells audited)\n", mode, rep.Checked)
		} else {
			fmt.Fprintf(stdout, "certify: PASS (%s)\n", mode)
		}
	}
	if cost == core.Inf {
		fmt.Fprintln(stdout, "result: INADEQUATE — no successful procedure exists")
	} else {
		fmt.Fprintf(stdout, "minimum expected cost C(U) = %d\n", cost)
	}
	if *showGreedy {
		g, err := core.GreedyCost(p)
		if err != nil {
			fmt.Fprintf(stdout, "greedy: failed (%v)\n", err)
		} else {
			fmt.Fprintf(stdout, "greedy heuristic cost = %d\n", g)
		}
	}
	return nil
}

// solveApprox runs the bounded-suboptimality plane (internal/approx): the
// anytime greedy-plus-branch-and-bound pipeline, then mandatory independent
// gap certification — an approximate answer is only reported once the
// certifier has re-priced the tree and re-derived the lower bound itself.
func solveApprox(p *core.Problem, ap approx.Spec, showTree bool, stdout io.Writer) error {
	res, err := approx.Solve(context.Background(), p, approx.Options{
		Deadline:    ap.Deadline,
		TargetMilli: ap.TargetMilli,
	})
	if err != nil {
		return fmt.Errorf("ttsolve: %w", err)
	}
	if !res.Adequate {
		if rep := certify.CheckInadequate(p); !rep.OK() {
			return fmt.Errorf("ttsolve: inadequacy claim failed certification: %w", rep.Err())
		}
		fmt.Fprintf(stdout, "certify: PASS (inadequacy witness: object %d has no covering treatment)\n", res.Uncovered)
		fmt.Fprintln(stdout, "result: INADEQUATE — no successful procedure exists")
		return nil
	}
	cert, err := certify.CertifyGap(p, res.Tree, res.Cost, res.GapMilli)
	if err != nil {
		return fmt.Errorf("ttsolve: approx answer failed gap certification: %w", err)
	}
	fmt.Fprintf(stdout, "certify: PASS (gap, cost re-priced, bound re-derived)\n")
	fmt.Fprintf(stdout, "approx cost = %d (policy %s, %d B&B nodes)\n", cert.Cost(), res.Policy, res.Nodes)
	fmt.Fprintf(stdout, "lower bound = %d, certified gap = %d.%03d×\n",
		cert.LowerBound(), cert.GapMilli()/certify.GapScale, cert.GapMilli()%certify.GapScale)
	if res.Exact {
		fmt.Fprintln(stdout, "branch-and-bound completed: this cost is the proven optimum")
	}
	if showTree {
		fmt.Fprint(stdout, res.Tree.Render(p))
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
