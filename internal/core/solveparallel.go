package core

import (
	"context"
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/stripe"
)

// ctxStride is how many subsets a solver processes between context polls: a
// power of two large enough to keep the poll off the hot path and small
// enough that cancellation lands within microseconds of the deadline.
const ctxStride = 1 << 12

// solveParallelRangeHook, when non-nil, is called by each worker at the start
// of every dispatched range. Test-only: it lets the fault-injection tests
// panic inside a worker and prove the pool shuts down instead of deadlocking.
var solveParallelRangeHook func(start Set)

// SolveParallel is the sequential DP parallelized across host CPU cores —
// not the paper's machine (that is internal/parttsolve) but the natural way
// to run the backward induction on modern shared-memory hardware. Subsets
// are processed level by level in popcount order: every C(S) at level j
// depends only on strictly smaller sets, so all sets of one level are
// independent and can be sharded across workers. Results are identical to
// Solve (same recurrence, same tie-breaking by lowest action index).
//
// No level is ever materialized: each level is split into equal rank ranges
// of the Gosper sequence, the range starts are computed directly by
// combinadic unranking, and a worker pool reused across all levels streams
// through its ranges by iterating Gosper's hack locally.
func SolveParallel(p *Problem, workers int) (*Solution, error) {
	return SolveParallelCtx(context.Background(), p, workers)
}

// SolveParallelCtx is SolveParallel with cancellation: the context is polled
// at every level barrier and every ctxStride subsets inside each Gosper
// range, so a deadline or client disconnect stops the O(N·2^K) sweep
// promptly instead of after it completes. On cancellation the context's
// error is returned and the partially filled solution is discarded. A panic
// in a worker (for any range) is recovered, converted to an error, and shuts
// the pool down cleanly instead of deadlocking the level barrier.
func SolveParallelCtx(ctx context.Context, p *Problem, workers int) (*Solution, error) {
	return SolveParallelCheckpointedCtx(ctx, p, workers, nil, nil)
}

// SolveParallelCheckpointedCtx is SolveParallelCtx with durable-solve
// plumbing: a non-nil frontier restores the (C, Choice) tables for every
// level <= f.Level and restarts the sweep mid-induction at f.Level+1, and a
// non-nil ck fires at every completed level barrier j < K (the natural
// preemption point: all sets of the level are final, none of the next level
// started). Results are bit-identical to Solve whether or not the sweep was
// interrupted. Resuming requires a frontier with choices.
//
// Levels are swept on the process-wide stripe pool (internal/stripe) rather
// than a per-call goroutine pool, so concurrent solves share one bounded
// worker set; `workers` still controls how many ranges each level is split
// into (the unit of load balancing), not how many goroutines exist.
func SolveParallelCheckpointedCtx(ctx context.Context, p *Problem, workers int, f *Frontier, ck Checkpointer) (*Solution, error) {
	return SolveParallelPooledCtx(ctx, p, workers, stripe.Shared(), f, ck)
}

// SolveParallelPooledCtx is SolveParallelCheckpointedCtx on an explicit
// stripe pool — the entry point for callers that own a sized pool (the
// serving layer). A nil pool selects the shared process-wide one.
func SolveParallelPooledCtx(ctx context.Context, p *Problem, workers int, pool *stripe.Pool, f *Frontier, ck Checkpointer) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if pool == nil {
		pool = stripe.Shared()
	}
	size := 1 << uint(p.K)
	sol := &Solution{
		C:      getU64(p.K),
		Choice: getI32(p.K),
		PSum:   getU64(p.K),
	}
	// Pooled tables come back dirty; see SolveCtx for the write-before-read
	// argument. Index 0 is reset, everything else is assigned by the sweep.
	sol.C[0], sol.PSum[0], sol.Choice[0] = 0, 0, -1
	for s := 1; s < size; s++ {
		if s&(ctxStride-1) == 0 {
			// The setup scan is O(2^K) too: poll so a request abandoned
			// during table fill stops here, not after the scan completes.
			if err := ctx.Err(); err != nil {
				sol.Release()
				return nil, err
			}
		}
		low := s & -s
		sol.PSum[s] = satAdd(sol.PSum[s&(s-1)], p.Weights[bits.TrailingZeros(uint(low))])
	}
	// Ops accounting matches Solve: (N+1) per non-empty subset.
	sol.Ops = int64(size-1) * int64(len(p.Actions)+1)
	startLevel := 1
	if f != nil {
		if err := f.Validate(p.K); err != nil {
			sol.Release()
			return nil, err
		}
		if !f.HasChoice() {
			sol.Release()
			return nil, fmt.Errorf("core: cost-only frontier cannot seed a choice-producing resume")
		}
		copy(sol.C, f.C)
		copy(sol.Choice, f.Choice)
		sol.C[0], sol.Choice[0] = 0, -1
		startLevel = f.Level + 1
	}

	// gosperRange is one unit of work: `count` consecutive sets of one
	// popcount level, starting at `start` in increasing numeric order.
	type gosperRange struct {
		start uint32
		count uint64
	}
	// stop is closed at the first failure (context cancellation seen by any
	// goroutine, or a recovered worker panic); failErr records why. Ranges
	// already in flight notice it at their next stride poll and bail out.
	stop := make(chan struct{})
	var stopOnce sync.Once
	var failErr error
	fail := func(err error) {
		stopOnce.Do(func() {
			failErr = err
			close(stop)
		})
	}
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	runRange := func(jb gosperRange) {
		defer func() {
			if r := recover(); r != nil {
				fail(fmt.Errorf("core: SolveParallel worker panicked: %v", r))
			}
		}()
		if stopped() {
			return
		}
		if h := solveParallelRangeHook; h != nil {
			h(Set(jb.start))
		}
		v := jb.start
		for i := uint64(0); i < jb.count; i++ {
			if i&(ctxStride-1) == ctxStride-1 {
				if stopped() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
			}
			s := Set(v)
			best, bestIdx := Inf, int32(-1)
			for ai, a := range p.Actions {
				inter := s & a.Set
				diff := s &^ a.Set
				if inter == 0 || (!a.Treatment && diff == 0) {
					continue
				}
				cost := satMul(a.Cost, sol.PSum[s])
				if a.Treatment {
					cost = satAdd(cost, sol.C[diff])
				} else {
					cost = satAdd(cost, satAdd(sol.C[inter], sol.C[diff]))
				}
				if cost < best {
					best, bestIdx = cost, int32(ai)
				}
			}
			sol.C[s], sol.Choice[s] = best, bestIdx
			// Gosper: next higher number with the same popcount.
			c := v & -v
			r := v + c
			v = (r^v)>>2/c | r
		}
	}

	ranges := make([]gosperRange, 0, workers)
	for level := startLevel; level <= p.K; level++ {
		total := binomial(p.K, level)
		chunk := (total + uint64(workers) - 1) / uint64(workers)
		ranges = ranges[:0]
		for lo := uint64(0); lo < total; lo += chunk {
			n := min(chunk, total-lo)
			ranges = append(ranges, gosperRange{start: nthSubset(lo, level), count: n})
		}
		if !stopped() {
			// Run is the level barrier: level j+1 reads level j's C values
			// only after every range of level j has merged.
			pool.Run(len(ranges), func(i int) { runRange(ranges[i]) })
		}
		if stopped() {
			sol.Release()
			return nil, failErr
		}
		if err := ctx.Err(); err != nil {
			sol.Release()
			return nil, err
		}
		if ck != nil && level < p.K {
			if err := ck.CheckpointLevel(level, sol); err != nil {
				return nil, fmt.Errorf("core: checkpoint at level %d: %w", level, err)
			}
		}
	}
	sol.Cost = sol.C[size-1]
	return sol, nil
}

// Binomial returns C(n, k) for the instance sizes the DP supports (n <= 32).
// Exported for the distributed solve plane (internal/cluster), whose
// coordinator and workers both partition levels into Gosper rank ranges.
func Binomial(n, k int) uint64 { return binomial(n, k) }

// NthSubset returns the subset of popcount j with rank predecessors in the
// level's Gosper order — the combinadic unranking that lets a slice of a
// level start anywhere without enumerating the level. Exported alongside
// Binomial for internal/cluster.
func NthSubset(rank uint64, j int) Set { return Set(nthSubset(rank, j)) }

// binomial returns C(n, k) for the instance sizes the DP supports (n <= 32).
func binomial(n, k int) uint64 {
	if k < 0 || k > n {
		return 0
	}
	c := uint64(1)
	for i := 0; i < k; i++ {
		c = c * uint64(n-i) / uint64(i+1)
	}
	return c
}

// nthSubset returns the subset of popcount j with `rank` predecessors in
// increasing numeric order (equivalently, in the Gosper sequence): the
// combinadic unranking that lets level ranges start anywhere without
// enumerating the level. For fixed popcount, numeric order is colex order,
// so the highest element e of the rank-m subset is the largest e with
// C(e, j) <= m.
func nthSubset(rank uint64, j int) uint32 {
	var set uint32
	for ; j > 0; j-- {
		e := j - 1
		for binomial(e+1, j) <= rank {
			e++
		}
		set |= 1 << uint(e)
		rank -= binomial(e, j)
	}
	return set
}

// subsetsOfSize enumerates all k-bit subsets with exactly j set bits in
// increasing numeric order (Gosper's hack). SolveParallel streams ranges of
// the same sequence instead of calling this; it remains the reference
// enumeration for tests.
func subsetsOfSize(k, j int) []Set {
	if j < 0 || j > k {
		panic(fmt.Sprintf("core: %d-subsets of %d elements", j, k))
	}
	if j == 0 {
		return []Set{0}
	}
	out := make([]Set, 0, binomial(k, j))
	v := uint32(1)<<uint(j) - 1
	limit := uint32(1) << uint(k)
	for v < limit {
		out = append(out, Set(v))
		// Gosper: next higher number with the same popcount.
		c := v & -v
		r := v + c
		v = (r^v)>>2/c | r
	}
	return out
}
