package experiments

import (
	"fmt"
	"math"

	"repro/internal/ccc"
	"repro/internal/cccsim"
	"repro/internal/core"
	"repro/internal/parttsolve"
	"repro/internal/workload"
)

// WordWidth is the bit precision w used in the cost model (the paper's
// "precision required" p); 16 bits covers every workload instance here.
const WordWidth = 16

// StepsScaling is experiment E8: measured parallel step counts against the
// paper's O(k·(k + log N)) word-step formula (O(k·w·(k + log N)) bit-steps).
func StepsScaling() (*Table, error) {
	t := &Table{
		ID:         "E8",
		Title:      "parallel TT time vs the O(k(k+log N)) formula",
		PaperClaim: "time O(k·w·(k+log N)) on O(N·2^k) PEs",
		Header:     []string{"k", "N", "PEs", "dim-steps", "k(2k+logN)+k", "ratio"},
	}
	for _, k := range []int{3, 5, 7, 9, 11} {
		for _, n := range []int{4, 16, 64} {
			if k+parttsolve.PaddedLogN(n) > 18 {
				continue
			}
			p := workload.Random(int64(k*100+n), k, n/2, n-n/2)
			p.Actions = p.Actions[:n] // exact action count
			ensureAdequate(p)
			res, err := parttsolve.Solve(p, parttsolve.Lockstep)
			if err != nil {
				return nil, err
			}
			logN := res.LogN
			formula := parttsolve.ExpectedDimSteps(k, logN)
			t.AddRow(k, 1<<uint(logN), res.PEs, res.DimSteps, formula,
				fmt.Sprintf("%.3f", float64(res.DimSteps)/float64(formula)))
		}
	}
	t.Notes = append(t.Notes,
		"ratio 1.000 everywhere: the implementation executes exactly the formula's dimension steps",
		fmt.Sprintf("bit-steps on the BVM multiply by the word width w = %d", WordWidth))
	return t, nil
}

// Speedup is experiment E9: the paper's S = T1/Tp = O(p / log p) claim.
// The cost model follows the paper's accounting: the sequential baseline
// pays O(k + w) bit operations per (S, i) entry (set manipulation plus
// w-bit arithmetic), the parallel machine pays w bit-steps per word step.
func Speedup() (*Table, error) {
	t := &Table{
		ID:         "E9",
		Title:      "speedup of the parallel TT algorithm",
		PaperClaim: "S = T1/Tp = O(p/log p) on p = N·2^k PEs",
		Header: []string{"k", "N", "p=N·2^k", "T1 (bit-ops)", "Tp (bit-steps)",
			"S=T1/Tp", "p/log p", "S/(p/log p)"},
	}
	for _, k := range []int{4, 6, 8, 10, 12, 14} {
		n := k * k / 4 * 4 // N = Θ(k^2), the paper's design point N = O(k^b)
		if n < 4 {
			n = 4
		}
		p := workload.Random(int64(k), k, n/2, n-n/2)
		p.Actions = p.Actions[:n]
		ensureAdequate(p)

		seq, err := core.Solve(p)
		if err != nil {
			return nil, err
		}
		logN := parttsolve.PaddedLogN(len(p.Actions))
		var dimSteps int
		if k+logN <= 18 {
			res, err := parttsolve.Solve(p, parttsolve.Lockstep)
			if err != nil {
				return nil, err
			}
			dimSteps = res.DimSteps
		} else {
			dimSteps = parttsolve.ExpectedDimSteps(k, logN) // formula, verified exact by E8
		}
		t1 := float64(seq.Ops) * float64(k+WordWidth)
		tp := float64(dimSteps) * WordWidth
		pes := float64(uint64(1) << uint(k+logN))
		s := t1 / tp
		pOverLog := pes / math.Log2(pes)
		t.AddRow(k, 1<<uint(logN), int64(pes),
			fmt.Sprintf("%.3g", t1), fmt.Sprintf("%.3g", tp),
			fmt.Sprintf("%.1f", s), fmt.Sprintf("%.1f", pOverLog),
			fmt.Sprintf("%.3f", s/pOverLog))
	}
	t.Notes = append(t.Notes,
		"the final column is bounded: S grows as Θ(p/log p), the paper's speedup",
		"k≥14 rows use the E8-verified closed form for Tp (machine too large to simulate)")
	return t, nil
}

// Slowdown is experiment E10: ASCEND on the CCC versus the hypercube.
func Slowdown() (*Table, error) {
	t := &Table{
		ID:         "E10",
		Title:      "CCC simulation of hypercube ASCEND",
		PaperClaim: "slowdown factor of 4 to 6, regardless of network size (§3)",
		Header: []string{"r", "PEs", "hypercube steps (q)", "CCC steps (pipelined)",
			"slowdown", "CCC steps (naive)", "naive slowdown"},
	}
	minOp := func(_, _ int, self, partner uint64) uint64 {
		if partner < self {
			return partner
		}
		return self
	}
	for r := 1; r <= 3; r++ {
		sim, err := cccsim.New[uint64](r)
		if err != nil {
			return nil, err
		}
		for i := range sim.State() {
			sim.State()[i] = uint64(i * 2654435761)
		}
		sim.Ascend(minOp)
		pipe := sim.Steps()

		naive, err := cccsim.New[uint64](r)
		if err != nil {
			return nil, err
		}
		for i := range naive.State() {
			naive.State()[i] = uint64(i * 2654435761)
		}
		naive.NaiveAscend(minOp)

		q := sim.Dim
		t.AddRow(r, sim.Top.N, q, pipe,
			fmt.Sprintf("%.2f", float64(pipe)/float64(q)),
			naive.Steps(),
			fmt.Sprintf("%.2f", float64(naive.Steps())/float64(q)))
	}
	t.Notes = append(t.Notes,
		"pipelined wavefront slowdown sits in the paper's 4-6 band and is flat in machine size",
		"the naive per-dimension schedule (ablation A2) degrades as Θ(Q) — why pipelining matters")
	return t, nil
}

// Links is experiment E11: the hardware-economy table behind the abstract's
// "3p/2 connections" claim.
func Links() (*Table, error) {
	t := &Table{
		ID:         "E11",
		Title:      "interconnect cost: CCC vs hypercube",
		PaperClaim: "CCC needs 3p/2 links; a hypercube needs ~p·log2(p)/2 (§3)",
		Header:     []string{"r", "PEs p", "CCC links", "3p/2", "hypercube links", "ratio"},
	}
	for r := 1; r <= ccc.MaxR; r++ {
		top, err := ccc.New(r)
		if err != nil {
			return nil, err
		}
		hc := ccc.HypercubeLinkCount(top.AddrBits)
		t.AddRow(r, top.N, top.LinkCount(), 3*top.N/2, hc,
			fmt.Sprintf("%.2f", float64(hc)/float64(top.LinkCount())))
	}
	t.Notes = append(t.Notes,
		"r=1 degenerates (cycle length 2); every r>=2 machine has exactly 3p/2 links",
		"at p = 2^20 the hypercube needs 4.4x the wiring — the feasibility argument for 2^20-PE machines")
	return t, nil
}

// Capacity is experiment E12: the introduction's problem-size claims for
// 2^20- and 2^30-PE machines.
func Capacity() (*Table, error) {
	t := &Table{
		ID:         "E12",
		Title:      "largest universe processable on a given machine",
		PaperClaim: "~15 candidates with N = O(2^k) on 2^30 PEs (speedup ≈ 10^6 over a 64-bit sequential machine); ~20 with N = O(k^2)",
		Header:     []string{"PE budget", "N regime", "max k", "p used", "speedup vs 64-bit seq"},
	}
	for _, budget := range []float64{1 << 20, 1 << 30} {
		for _, regime := range []string{"N = 2^k", "N = k^2"} {
			bestK, bestP := 0, 0.0
			for k := 1; k <= 40; k++ {
				var n float64
				if regime == "N = 2^k" {
					n = math.Pow(2, float64(k))
				} else {
					n = float64(k * k)
				}
				pes := n * math.Pow(2, float64(k))
				if pes <= budget {
					bestK, bestP = k, pes
				}
			}
			// Speedup model as in E9, divided by 64 for the sequential
			// machine's word parallelism (the paper's adjustment).
			logP := math.Log2(bestP)
			speed := bestP / logP / 64
			t.AddRow(fmt.Sprintf("2^%.0f", math.Log2(budget)), regime, bestK,
				fmt.Sprintf("2^%.1f", math.Log2(bestP)),
				fmt.Sprintf("%.2g", speed))
		}
	}
	t.Notes = append(t.Notes,
		"N = 2^k on 2^30 PEs gives k = 15 and speedup ~3·10^5–10^6, the paper's introduction numbers",
		"N = k^2 stretches the same machine to k = 21 (paper: 'a few more elements, e.g. 20')")
	return t, nil
}

// ensureAdequate appends a catch-all treatment if the instance would
// otherwise be inadequate, so sweep tables never degenerate to Inf rows.
func ensureAdequate(p *core.Problem) {
	var covered core.Set
	for _, a := range p.Actions {
		if a.Treatment {
			covered |= a.Set
		}
	}
	if covered != core.Universe(p.K) {
		p.Actions = append(p.Actions, core.Action{
			Name: "catch-all", Set: core.Universe(p.K), Cost: 200, Treatment: true,
		})
	}
}
