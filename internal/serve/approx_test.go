package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/certify"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/workload"
)

func post422Body(t *testing.T, ts *httptest.Server, query string, body []byte) *oversizeBody {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/solve"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	var ob oversizeBody
	if err := json.NewDecoder(resp.Body).Decode(&ob); err != nil {
		t.Fatal(err)
	}
	return &ob
}

// TestOversize422StructuredBody pins the structured rejection contract: the
// body names the exceeded budget, its limit, the offending value, and — when
// the approx plane could serve the instance — the smallest approx= setting
// that would have been accepted.
func TestOversize422StructuredBody(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxK: 6})
	p := workload.Random(3, 8, 4, 4) // K=8 > MaxK=6, well inside approx caps
	ob := post422Body(t, ts, "", instanceJSON(t, p))
	if ob.Budget != "k" || ob.Limit != 6 || ob.Got != 8 {
		t.Fatalf("budget/limit/got = %q/%d/%d, want k/6/8", ob.Budget, ob.Limit, ob.Got)
	}
	if ob.Error == "" || !strings.Contains(ob.Error, "8") {
		t.Fatalf("error text %q does not name the offending value", ob.Error)
	}
	if ob.ApproxHint != "approx=1" {
		t.Fatalf("approx_hint %q, want approx=1", ob.ApproxHint)
	}

	// Actions budget, same contract.
	q := workload.Random(4, 5, 70, 10) // 85 actions > MaxActions default 64
	ob = post422Body(t, ts, "", instanceJSON(t, q))
	if ob.Budget != "actions" || ob.ApproxHint != "approx=1" {
		t.Fatalf("actions reject: budget %q hint %q", ob.Budget, ob.ApproxHint)
	}
}

// TestOversize422NoHintWhenApproxCannotServe: the hint must be withheld when
// the instance is past the approx plane's own caps — advertising a knob that
// would also reject is worse than silence.
func TestOversize422NoHintWhenApproxCannotServe(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxK: 6, ApproxMaxK: 7})
	ob := post422Body(t, ts, "", instanceJSON(t, workload.Random(3, 9, 4, 4)))
	if ob.Budget != "k" {
		t.Fatalf("budget %q, want k", ob.Budget)
	}
	if ob.ApproxHint != "" {
		t.Fatalf("approx_hint %q, want absent: approx caps also reject K=9", ob.ApproxHint)
	}
}

// TestApproxServesOversized is the tentpole's acceptance path: an instance
// past the exact K-cap, submitted with approx enabled, returns 200 with a
// procedure tree and a certified gap instead of a 422.
func TestApproxServesOversized(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxK: 6})
	p := workload.Oversized(3, 10) // K=10 > MaxK=6

	// approx=off (the default): still a 422.
	if _, status := postSolve(t, ts, "", instanceJSON(t, p)); status != http.StatusUnprocessableEntity {
		t.Fatalf("approx off: status %d, want 422", status)
	}
	if _, status := postSolve(t, ts, "?approx=off", instanceJSON(t, p)); status != http.StatusUnprocessableEntity {
		t.Fatalf("approx=off: status %d, want 422", status)
	}

	sr, status := postSolve(t, ts, "?approx=1.5", instanceJSON(t, p))
	if status != http.StatusOK {
		t.Fatalf("approx=1.5: status %d, want 200", status)
	}
	if sr.SolvedBy != "approx" || sr.Approx != "1.5" {
		t.Fatalf("solved_by %q approx %q, want approx/1.5", sr.SolvedBy, sr.Approx)
	}
	if !sr.Adequate || sr.Cost == nil || sr.GapMilli == nil || sr.LowerBound == nil {
		t.Fatalf("missing quality claim: %+v", sr)
	}
	if *sr.GapMilli < certify.GapScale {
		t.Fatalf("gap %d below GapScale — certifier math is broken", *sr.GapMilli)
	}
	if sr.FirstAction == "" {
		t.Fatal("approx answer has no first action")
	}
	// The certified claim must be internally consistent: cost ≤ gap·lb.
	if got := certify.GapFor(*sr.Cost, *sr.LowerBound); got > *sr.GapMilli {
		t.Fatalf("reported gap %d below the cost/bound ratio %d", *sr.GapMilli, got)
	}
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if *sr.Cost < want.Cost || *sr.LowerBound > want.Cost {
		t.Fatalf("served cost %d / bound %d bracket the optimum %d wrongly", *sr.Cost, *sr.LowerBound, want.Cost)
	}

	// approx=1 demands proven optimality; K=10 fits the default node budget,
	// so branch-and-bound completes and the served cost is the true optimum.
	sr, status = postSolve(t, ts, "?approx=1", instanceJSON(t, p))
	if status != http.StatusOK {
		t.Fatalf("approx=1: status %d, want 200", status)
	}
	if !sr.ApproxExact || *sr.Cost != want.Cost {
		t.Fatalf("approx cost %d exact=%v, want optimum %d proven", *sr.Cost, sr.ApproxExact, want.Cost)
	}
	if got := s.Metrics().ApproxServed.Load(); got != 2 {
		t.Fatalf("approx_served = %d, want 2", got)
	}
	if got := s.Metrics().ApproxExact.Load(); got == 0 {
		t.Fatal("approx_exact = 0 after a proven-optimal answer")
	}

	// A deadline-form knob also routes and serves.
	sr, status = postSolve(t, ts, "?approx=200ms", instanceJSON(t, p))
	if status != http.StatusOK || sr.SolvedBy != "approx" || sr.Approx != "200ms" {
		t.Fatalf("approx=200ms: status %d solved_by %q approx %q", status, sr.SolvedBy, sr.Approx)
	}

	// Stats surface the gap aggregates.
	snap := s.Metrics().Snapshot()
	if snap["approx_served"].(int64) < 3 {
		t.Fatalf("stats approx_served %v, want >= 3", snap["approx_served"])
	}
	if snap["approx_gap_milli_max"].(uint64) < certify.GapScale {
		t.Fatalf("stats approx_gap_milli_max %v, want >= %d", snap["approx_gap_milli_max"], certify.GapScale)
	}
}

func TestApproxBadSpecIs400(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := workload.MedicalDiagnosis(3, 5)
	for _, q := range []string{"?approx=0.5", "?approx=1001", "?approx=-3ms", "?approx=soon"} {
		if _, status := postSolve(t, ts, q, instanceJSON(t, p)); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, status)
		}
	}
}

// TestApproxCacheIsolation: answers solved under an approx knob live in
// distinct cache slots from exact answers for the same instance, so an
// exactness-demanding request can never be served from the approx plane's
// cache (and vice versa).
func TestApproxCacheIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	p := workload.MedicalDiagnosis(3, 6) // fits the exact budget
	body := instanceJSON(t, p)

	sr, status := postSolve(t, ts, "?approx=2", body)
	if status != http.StatusOK || sr.Cached {
		t.Fatalf("first approx-enabled request: status %d cached %v", status, sr.Cached)
	}
	sr, _ = postSolve(t, ts, "?approx=2", body)
	if !sr.Cached {
		t.Fatal("identical approx-enabled request missed the cache")
	}
	sr, status = postSolve(t, ts, "", body)
	if status != http.StatusOK || sr.Cached {
		t.Fatalf("exact request after approx ones: status %d cached %v — served from the approx slot", status, sr.Cached)
	}
	if hits := s.Metrics().CacheHits.Load(); hits != 1 {
		t.Fatalf("cache_hits = %d, want exactly the approx-to-approx hit", hits)
	}
}

// TestApproxFallbackRung: with approx enabled and every exact engine
// faulting, the chain's terminal rung serves a certified-gap answer instead
// of a 500 — and without the knob the same storm is still a 500.
func TestApproxFallbackRung(t *testing.T) {
	s, ts := newTestServer(t, Config{
		EngineFault: chaos.FailFirst("seq", 1<<30, errInjected),
		Retries:     -1,
	})
	p := workload.MedicalDiagnosis(9, 7)
	if _, status := postSolve(t, ts, "?engine=seq", instanceJSON(t, p)); status != http.StatusInternalServerError {
		t.Fatalf("no approx knob: status %d, want 500", status)
	}
	sr, status := postSolve(t, ts, "?engine=seq&approx=3", instanceJSON(t, p))
	if status != http.StatusOK {
		t.Fatalf("approx fallback: status %d, want 200", status)
	}
	if sr.Engine != "seq" || sr.SolvedBy != "approx" {
		t.Fatalf("engine %q solved_by %q, want seq/approx", sr.Engine, sr.SolvedBy)
	}
	if sr.GapMilli == nil || sr.LowerBound == nil {
		t.Fatalf("fallback answer carries no certified claim: %+v", sr)
	}
	if s.Metrics().ApproxFallback.Load() == 0 {
		t.Fatal("approx_fallback counter not incremented")
	}
}

// TestApproxCorruptionRefused: a chaos hook corrupting the approx engine's
// answers must be caught by the mandatory gap certification — the corrupted
// answer never reaches the cache or the client.
func TestApproxCorruptionRefused(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxK:        6,
		ResultFault: func(engine string) bool { return engine == "approx" },
		Retries:     -1,
	})
	p := workload.Oversized(5, 9)
	if _, status := postSolve(t, ts, "?approx=1.2", instanceJSON(t, p)); status != http.StatusInternalServerError {
		t.Fatalf("corrupted approx answer: status %d, want 500", status)
	}
	if s.Metrics().CertifyFail.Load() == 0 {
		t.Fatal("certify_fail not incremented for corrupted approx answer")
	}
	if s.Metrics().ApproxServed.Load() != 0 {
		t.Fatal("corrupted answer counted as served")
	}
	if s.cache.len() != 0 {
		t.Fatal("corrupted answer reached the cache")
	}
}

// TestExactPathBytesUnchanged: requests that never enable approx must not
// carry any of the new response fields — the exact path's wire format is
// byte-for-byte what it was before the approx plane existed.
func TestExactPathBytesUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json",
		bytes.NewReader(instanceJSON(t, workload.MedicalDiagnosis(3, 5))))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, field := range []string{"approx", "gap_milli", "lower_bound"} {
		if bytes.Contains(raw, []byte(`"`+field+`"`)) {
			t.Fatalf("exact response leaked field %q: %s", field, raw)
		}
	}
}

// TestApproxInadequateWitness: an uncoverable instance routed to the approx
// plane reports inadequate with the witness-certified claim, not an error.
func TestApproxInadequateWitness(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxK: 6})
	p := workload.Oversized(7, 9)
	// Remove every treatment covering object 0: drop the catch-all and the
	// pair treatment fix-0.
	var acts []core.Action
	for _, a := range p.Actions {
		if a.Treatment && a.Set.Has(0) {
			continue
		}
		acts = append(acts, a)
	}
	p.Actions = acts
	sr, status := postSolve(t, ts, "?approx=1", instanceJSON(t, p))
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200", status)
	}
	if sr.Adequate || sr.Cost != nil {
		t.Fatalf("want inadequate with no cost, got %+v", sr)
	}
	if sr.SolvedBy != "approx" || sr.GapMilli == nil || *sr.GapMilli != certify.GapScale {
		t.Fatalf("inadequacy witness is exact: want gap %d from approx, got %+v", certify.GapScale, sr)
	}
}
