package bvmcheck

import (
	"repro/internal/analysis/sarif"
)

// SARIF converts the report to a SARIF 2.1.0 log, sharing the encoder with
// cmd/ttlint so both linters feed the same CI ingestion. Rules are diagnostic
// categories; the artifact is the program listing, with Disassemble's 0-based
// instruction indices mapped to SARIF's 1-based lines (program-level
// diagnostics, Index -1, carry no region).
func (r *Report) SARIF() *sarif.Log {
	log, run := sarif.NewLog("bvmcheck", "", "")
	for _, cat := range []string{
		CatBadRegister, CatBadDestination, CatBadRoute, CatBadActivation,
		CatReadBeforeWrite, CatDeadStore, CatSweep, CatPressure, CatABFTWindow,
	} {
		run.AddRule(cat, "")
	}
	for _, d := range r.Diags {
		level := sarif.LevelNote
		switch d.Severity {
		case SevWarning:
			level = sarif.LevelWarning
		case SevError:
			level = sarif.LevelError
		}
		msg := d.Message
		if d.Instr != "" {
			msg += " [" + d.Instr + "]"
		}
		run.AddResult(d.Category, level, msg, r.Program, d.Index+1, 1)
	}
	return log
}
