package approx

import (
	"fmt"
	"math"

	"repro/internal/core"
)

// The information-gain greedy: the second classic policy from the
// sequential-testing literature. Where the ratio rule (core.GreedyTree)
// buys mass resolved per unit cost, this one buys entropy reduction per
// unit cost — on skewed priors the two disagree, and the portfolio keeps
// whichever tree prices cheaper.

// greedyGain builds a valid procedure tree by repeatedly applying the
// action with the highest information gain per unit of expected cost at the
// current candidate set. Gain is measured on the normalized weight
// distribution within s: a test splits s into two observed halves; a
// treatment resolves its covered part outright (the cured-exit branch) and
// leaves the rest. Zero-progress actions are disqualified; like the ratio
// greedy, a zero-weight remainder falls back to any intersecting treatment
// so massless candidates are still discharged.
func (st *state) greedyGain() (*core.Node, error) {
	var build func(s core.Set) (*core.Node, error)
	build = func(s core.Set) (*core.Node, error) {
		if s == 0 {
			return nil, nil
		}
		ps := st.psum(s)
		hs := st.entropy(s, ps)
		bestIdx := -1
		bestScore := math.Inf(-1)
		for i, a := range st.p.Actions {
			inter := s & a.Set
			diff := s &^ a.Set
			if inter == 0 || (!a.Treatment && diff == 0) {
				continue
			}
			if st.psum(inter) == 0 || (!a.Treatment && st.psum(diff) == 0) {
				continue // splits only zero-weight mass: no progress
			}
			// Residual entropy after the action: both test outcomes are
			// observed; a treatment's cured-exit branch carries none.
			var after float64
			if a.Treatment {
				after = float64(st.psum(diff)) / float64(ps) * st.entropy(diff, st.psum(diff))
			} else {
				after = float64(st.psum(inter))/float64(ps)*st.entropy(inter, st.psum(inter)) +
					float64(st.psum(diff))/float64(ps)*st.entropy(diff, st.psum(diff))
			}
			gain := hs - after
			var score float64
			if a.Cost == 0 {
				score = math.Inf(1)
			} else {
				score = gain / float64(a.Cost)
			}
			if score > bestScore {
				bestIdx, bestScore = i, score
			}
		}
		if bestIdx < 0 {
			for i, a := range st.p.Actions {
				if a.Treatment && s&a.Set != 0 {
					bestIdx = i
					break
				}
			}
		}
		if bestIdx < 0 {
			return nil, fmt.Errorf("approx: gain greedy stuck at set %v (inadequate instance?)", s)
		}
		a := st.p.Actions[bestIdx]
		n := &core.Node{Action: bestIdx, Set: s}
		var err error
		if !a.Treatment {
			if n.Pos, err = build(s & a.Set); err != nil {
				return nil, err
			}
		}
		if n.Neg, err = build(s &^ a.Set); err != nil {
			return nil, err
		}
		return n, nil
	}
	return build(core.Universe(st.p.K))
}

// entropy is the Shannon entropy (bits) of the normalized weight
// distribution on s, whose total mass ps the caller already holds; 0 for
// massless sets.
func (st *state) entropy(s core.Set, ps uint64) float64 {
	if ps == 0 {
		return 0
	}
	total := float64(ps)
	var h float64
	for _, j := range s.Objects() {
		if w := st.p.Weights[j]; w > 0 {
			q := float64(w) / total
			h -= q * math.Log2(q)
		}
	}
	return h
}
