// Package simulate executes test-and-treatment procedures against concrete
// faults: deterministically (producing a step-by-step transcript of tests
// run, responses observed, and treatments attempted) and statistically (a
// Monte-Carlo estimator that samples the faulty object from the prior
// weights and averages realized path costs). The estimator is a third,
// fully independent check on the DP and TreeCost: it never looks at the
// recurrence, only at the operational semantics of a procedure.
package simulate

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/core"
)

// Outcome classifies one executed step.
type Outcome int

const (
	// TestPositive: the test responded (fault is in the test set).
	TestPositive Outcome = iota
	// TestNegative: the test did not respond.
	TestNegative
	// TreatmentCured: the treatment covered the fault; the procedure ends.
	TreatmentCured
	// TreatmentFailed: the treatment missed; the procedure continues.
	TreatmentFailed
)

func (o Outcome) String() string {
	switch o {
	case TestPositive:
		return "positive"
	case TestNegative:
		return "negative"
	case TreatmentCured:
		return "cured"
	case TreatmentFailed:
		return "failed"
	}
	return fmt.Sprintf("Outcome(%d)", int(o))
}

// Step is one executed action in a transcript.
type Step struct {
	Action  int // index into Problem.Actions
	Outcome Outcome
	Cost    uint64
}

// Execute walks the procedure tree for a given faulty object, returning the
// transcript and total path cost. It errors if the tree strands the fault.
func Execute(p *core.Problem, root *core.Node, fault int) ([]Step, uint64, error) {
	if fault < 0 || fault >= p.K {
		return nil, 0, fmt.Errorf("simulate: fault %d outside universe of %d", fault, p.K)
	}
	var steps []Step
	var total uint64
	n := root
	for n != nil {
		if !n.Set.Has(fault) {
			return nil, 0, fmt.Errorf("simulate: fault %d reached node whose candidate set %v excludes it", fault, n.Set)
		}
		a := p.Actions[n.Action]
		total = core.SatAdd(total, a.Cost)
		switch {
		case a.Treatment && a.Set.Has(fault):
			steps = append(steps, Step{n.Action, TreatmentCured, a.Cost})
			return steps, total, nil
		case a.Treatment:
			steps = append(steps, Step{n.Action, TreatmentFailed, a.Cost})
			n = n.Neg
		case a.Set.Has(fault):
			steps = append(steps, Step{n.Action, TestPositive, a.Cost})
			n = n.Pos
		default:
			steps = append(steps, Step{n.Action, TestNegative, a.Cost})
			n = n.Neg
		}
	}
	return nil, 0, fmt.Errorf("simulate: fault %d was never treated", fault)
}

// TranscriptString renders a transcript for humans.
func TranscriptString(p *core.Problem, steps []Step) string {
	out := ""
	for i, s := range steps {
		a := p.Actions[s.Action]
		name := a.Name
		if name == "" {
			name = fmt.Sprintf("T%d", s.Action+1)
		}
		out += fmt.Sprintf("%2d. %-18s cost %3d  -> %s\n", i+1, name, s.Cost, s.Outcome)
	}
	return out
}

// Sampler draws objects proportionally to their weights.
type Sampler struct {
	cum   []uint64
	total uint64
}

// NewSampler builds a sampler over the problem's weights. At least one
// weight must be positive.
func NewSampler(p *core.Problem) (*Sampler, error) {
	s := &Sampler{cum: make([]uint64, p.K)}
	for j, w := range p.Weights {
		s.total += w
		s.cum[j] = s.total
	}
	if s.total == 0 {
		return nil, fmt.Errorf("simulate: all weights are zero")
	}
	return s, nil
}

// Draw returns an object sampled with probability weight/total.
func (s *Sampler) Draw(rng *rand.Rand) int {
	x := uint64(rng.Int63n(int64(s.total)))
	return sort.Search(len(s.cum), func(i int) bool { return s.cum[i] > x })
}

// Estimate is the result of a Monte-Carlo run.
type Estimate struct {
	Trials int
	// Mean is the estimated Cost(Tree) = Σ_j P_j · pathcost(j), i.e. the
	// sample mean of path costs scaled by the total weight, matching the
	// paper's (unnormalized) cost definition.
	Mean float64
	// StdErr is the standard error of Mean.
	StdErr float64
}

// EstimateCost Monte-Carlo-estimates a procedure tree's expected cost by
// sampling faults from the prior. It is independent of the DP: only the
// operational walk is used.
func EstimateCost(p *core.Problem, root *core.Node, seed int64, trials int) (*Estimate, error) {
	if trials < 1 {
		return nil, fmt.Errorf("simulate: trials %d < 1", trials)
	}
	smp, err := NewSampler(p)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	var sum, sumSq float64
	for i := 0; i < trials; i++ {
		fault := smp.Draw(rng)
		_, cost, err := Execute(p, root, fault)
		if err != nil {
			return nil, err
		}
		c := float64(cost)
		sum += c
		sumSq += c * c
	}
	n := float64(trials)
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	scale := float64(smp.total)
	return &Estimate{
		Trials: trials,
		Mean:   mean * scale,
		StdErr: scale * math.Sqrt(variance/n),
	}, nil
}
