package approx

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
)

// AND/OR branch-and-bound over candidate sets. Each candidate set is an OR
// node (choose one action); a test's two outcome subproblems are its AND
// children. Depth-first search with:
//
//   - incumbent pruning: a subproblem whose lower bound reaches the budget
//     inherited from the incumbent is cut off, and the bound it returns is
//     still a true lower bound on C(S);
//   - memoization: exact values are final; pruned values are stored as
//     reusable lower bounds (they never depended on the incumbent, only
//     the decision to stop did);
//   - action ordering by optimistic estimate, so the likely-best child is
//     explored first and tightens the local budget for its siblings;
//   - bound propagation: a test's second child is solved under the budget
//     left after the first child's exact value, and the first under the
//     budget left after the second's lower bound.
//
// The search is interruptible at every expansion (context, deadline, node
// budget); interruption poisons exactness, never soundness — values
// returned after a stop are still valid lower bounds.
type bb struct {
	st        *state
	memo      map[core.Set]bbEntry
	memoLimit int
	nodes     int64
	budget    int64
	ctx       context.Context
	deadline  time.Time
	stopped   bool
}

// bbEntry is one memoized subproblem. When exact, val is C(S) and choice
// the minimizing action (so the optimal tree is extractable afterwards);
// otherwise val is a lower bound on C(S) and choice is -1.
type bbEntry struct {
	val    uint64
	choice int32
	exact  bool
}

// solve returns (value, exact) for candidate set s under budget ub: exact
// means value = C(S) and requires value < ub; otherwise value is a lower
// bound on C(S). The asymmetry is the classic B&B contract — once a
// subproblem provably cannot beat the budget, its precise value is
// irrelevant to every caller.
func (b *bb) solve(s core.Set, ub uint64) (uint64, bool) {
	if s == 0 {
		return 0, true
	}
	if e, ok := b.memo[s]; ok {
		if e.exact {
			return e.val, e.val < ub
		}
		if e.val >= ub {
			return e.val, false
		}
	}
	lb := b.st.lower(s)
	if e, ok := b.memo[s]; ok && e.val > lb {
		lb = e.val // an earlier deeper search proved a tighter bound
	}
	if lb >= ub {
		b.store(s, bbEntry{val: lb, choice: -1})
		return lb, false
	}
	b.checkStop()
	if b.stopped {
		return lb, false
	}
	b.nodes++

	ps := b.st.psum(s)
	type cand struct {
		idx  int
		base uint64 // action cost paid at s: t_i·p(s)
		est  uint64 // optimistic total: base + child lower bounds
	}
	cands := make([]cand, 0, len(b.st.p.Actions))
	minOver := core.Inf // min lower bound among actions not searched to exactness
	for i, a := range b.st.p.Actions {
		inter := s & a.Set
		diff := s &^ a.Set
		if inter == 0 || (!a.Treatment && diff == 0) {
			continue
		}
		base := core.SatMul(a.Cost, ps)
		est := core.SatAdd(base, b.st.lower(diff))
		if !a.Treatment {
			est = core.SatAdd(est, b.st.lower(inter))
		}
		if e, ok := b.memo[s&a.Set]; ok && !a.Treatment && e.exact {
			// Cheap ordering refinement: a child already solved exactly
			// sharpens this action's estimate for free.
			est = core.SatAdd(base, core.SatAdd(e.val, b.st.lower(diff)))
		}
		cands = append(cands, cand{idx: i, base: base, est: est})
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].est < cands[j].est })

	best := core.Inf
	bestIdx := int32(-1)
	localUB := ub
	for _, c := range cands {
		if b.stopped {
			// Unexplored actions contribute their optimistic estimates as
			// bounds; the aggregate below stays a true lower bound.
			minOver = min(minOver, c.est)
			continue
		}
		if c.est >= localUB {
			minOver = min(minOver, c.est)
			continue
		}
		a := b.st.p.Actions[c.idx]
		inter := s & a.Set
		diff := s &^ a.Set
		if a.Treatment {
			sub, exact := b.solve(diff, budgetLeft(localUB, c.base))
			total := core.SatAdd(c.base, sub)
			if !exact {
				minOver = min(minOver, total)
				continue
			}
			if total < localUB {
				best, bestIdx, localUB = total, int32(c.idx), total
			} else {
				minOver = min(minOver, total)
			}
			continue
		}
		rem := budgetLeft(localUB, c.base)
		c1, ex1 := b.solve(inter, budgetLeft(rem, b.st.lower(diff)))
		if !ex1 {
			minOver = min(minOver, core.SatAdd(c.base, core.SatAdd(c1, b.st.lower(diff))))
			continue
		}
		c2, ex2 := b.solve(diff, budgetLeft(rem, c1))
		total := core.SatAdd(c.base, core.SatAdd(c1, c2))
		if !ex2 {
			minOver = min(minOver, total)
			continue
		}
		if total < localUB {
			best, bestIdx, localUB = total, int32(c.idx), total
		} else {
			minOver = min(minOver, total)
		}
	}

	if bestIdx >= 0 && best <= minOver && !b.stopped {
		// Every other action was either searched to exactness (and lost) or
		// pruned with a bound that was ≥ the budget in force — which was
		// never below the final best — so best is C(S).
		b.store(s, bbEntry{val: best, choice: bestIdx, exact: true})
		return best, true
	}
	// No action beat the budget (or the search was interrupted): the least
	// of the per-action bounds, floored by the set's own bound, is a valid
	// lower bound on C(S). When no action applies at all, minOver stays Inf
	// and so is C(S) — but that cannot be pruned-away knowledge, so it is
	// stored as a bound, which Inf correctly is.
	v := max(lb, minOver)
	if best < v {
		v = best
	}
	b.store(s, bbEntry{val: v, choice: -1})
	return v, false
}

// checkStop polls the external budgets: context, wall deadline, node count.
// The deadline is only consulted every 1024 expansions to keep time.Now off
// the hot path.
func (b *bb) checkStop() {
	if b.stopped {
		return
	}
	if b.budget > 0 && b.nodes >= b.budget {
		b.stopped = true
		return
	}
	if b.nodes&1023 == 0 {
		if b.ctx.Err() != nil {
			b.stopped = true
			return
		}
		if !b.deadline.IsZero() && time.Now().After(b.deadline) {
			b.stopped = true
		}
	}
}

func (b *bb) store(s core.Set, e bbEntry) {
	if _, ok := b.memo[s]; !ok && len(b.memo) >= b.memoLimit {
		return
	}
	b.memo[s] = e
}

// budgetLeft is the budget a child inherits after its siblings' committed
// cost: saturating subtraction, where an exhausted budget (0) makes any
// child bound an immediate cutoff.
func budgetLeft(ub, spent uint64) uint64 {
	if ub == core.Inf {
		return core.Inf
	}
	if spent >= ub {
		return 0
	}
	return ub - spent
}

// extract rebuilds the optimal tree from the memo's exact choices; it is
// only called after solve returned exact for the root, so every subproblem
// on the optimal path has an exact entry with a recorded choice.
func (b *bb) extract(s core.Set) (*core.Node, error) {
	if s == 0 {
		return nil, nil
	}
	e, ok := b.memo[s]
	if !ok || !e.exact || e.choice < 0 {
		return nil, fmt.Errorf("approx: no exact memo entry for set %v", s)
	}
	a := b.st.p.Actions[e.choice]
	n := &core.Node{Action: int(e.choice), Set: s}
	var err error
	if !a.Treatment {
		if n.Pos, err = b.extract(s & a.Set); err != nil {
			return nil, err
		}
	}
	if n.Neg, err = b.extract(s &^ a.Set); err != nil {
		return nil, err
	}
	return n, nil
}
