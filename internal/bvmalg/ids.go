// Package bvmalg is the BVM algorithm library of the paper's §4: cycle-ID,
// processor-ID, broadcasting and the two kinds of propagation, together with
// the bit-serial word arithmetic (ripple-carry addition, comparison,
// minimum) that the test-and-treatment program (internal/bvmtt) is built
// from. Every routine here emits real BVM instructions through
// bvm.Machine.Exec, so instruction counts are meaningful machine time.
//
// Conventions: multi-bit numbers are stored least-significant-bit-first
// across consecutive registers (type Word). Routines clobber the A and B
// accumulators, assume the enable register E is all ones on entry unless
// stated otherwise, and take explicit scratch register ranges so callers
// control allocation.
package bvmalg

import (
	"fmt"

	"repro/internal/bvm"
)

// CycleID computes the cycle-ID pattern into dst (paper §4.1): PE (i, j)
// ends up holding bit j of its cycle number i — equivalently, a 1 exactly
// when the PE is at the 1-end of its lateral link.
//
// The algorithm is the paper's: fill A with ones, feed a zero in at PE (0,0)
// through the input chain, and alternately AND with the lateral neighbor and
// shift (first along the input chain, then along cycle predecessors). It
// executes 4Q instructions, O(log n). It consumes Q-1 external input bits,
// which must be zero; the machine's input queue supplies zeros when empty,
// so callers simply must not have stale pending input.
func CycleID(m *bvm.Machine, dst bvm.RegRef) {
	Q := m.Top.Q
	m.SetConst(bvm.A, true)
	m.Mov(bvm.A, bvm.Via(bvm.A, bvm.RouteI)) // a zero enters at PE (0,0)
	for i := 1; i < Q; i++ {
		m.And(bvm.A, bvm.A, bvm.Via(bvm.A, bvm.RouteL))
		m.Mov(bvm.A, bvm.Via(bvm.A, bvm.RouteI))
	}
	m.Mov(bvm.A, bvm.Via(bvm.A, bvm.RouteP))
	for i := 1; i < Q; i++ {
		m.And(bvm.A, bvm.A, bvm.Via(bvm.A, bvm.RouteL))
		m.Mov(bvm.A, bvm.Via(bvm.A, bvm.RouteP))
	}
	m.Mov(dst, bvm.Loc(bvm.A))
}

// ProcessorID computes the processor-ID (paper §4.2): after the call,
// register base+b holds bit b of each PE's own flat address, for
// b = 0..Q+r-1 (bits 0..r-1 are the in-cycle position, bits r..r+Q-1 the
// cycle number). It uses registers base..base+Q+r-1 for output and scratch
// register tmp, and costs O(Q^2) = O(log^2 n) instructions like the paper's
// version.
//
// Structure follows the paper: (1) generate the cycle-ID; (2) build the
// "diagonal" planes by repeated successor shifts, so plane i holds cycle bit
// (p+i) mod Q at position p; (3) align each plane by an in-cycle broadcast
// from position 0, where plane t already holds bit t; (4) write the position
// bits with constant stores under IF activation sets (we use one masked
// store per bit instead of the paper's per-position loop — same effect,
// fewer instructions).
func ProcessorID(m *bvm.Machine, base int) {
	Q, r := m.Top.Q, m.Top.R
	cycleBase := base + r

	// (1)+(2): diagonal planes.
	CycleID(m, bvm.R(cycleBase))
	for i := 1; i < Q; i++ {
		m.Mov(bvm.R(cycleBase+i), bvm.Via(bvm.R(cycleBase+i-1), bvm.RouteS))
	}

	// (3): align plane t by propagating its position-0 value around the
	// cycle: position s copies from position s-1, s = 1..Q-1 in order.
	for t := 0; t < Q; t++ {
		for s := 1; s < Q; s++ {
			m.Mov(bvm.R(cycleBase+t), bvm.Via(bvm.R(cycleBase+t), bvm.RouteP), bvm.IF(s))
		}
	}

	// (4): position bits via masked constant stores.
	for j := 0; j < r; j++ {
		ones := make([]int, 0, Q/2)
		for p := 0; p < Q; p++ {
			if p>>j&1 == 1 {
				ones = append(ones, p)
			}
		}
		m.SetConst(bvm.R(base+j), false)
		m.SetConst(bvm.R(base+j), true, bvm.IF(ones...))
	}
}

// Word names a bit-serial number: Width consecutive registers starting at
// Base, least significant bit first.
type Word struct {
	Base  int
	Width int
}

// Bit returns the register holding bit b of the word.
func (w Word) Bit(b int) bvm.RegRef {
	if b < 0 || b >= w.Width {
		panic(fmt.Sprintf("bvmalg: bit %d out of word width %d", b, w.Width))
	}
	return bvm.R(w.Base + b)
}

// MaxValue is the word's saturation value (all ones), used as the infinity
// sentinel by the test-and-treatment program.
func (w Word) MaxValue() uint64 {
	if w.Width >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(w.Width) - 1
}
