// Package bvm simulates the Boolean Vector Machine (paper §2), the
// cube-connected-cycles SIMD machine on which the parallel test-and-treatment
// algorithm is realized.
//
// Logically the BVM is a bit array: each row is a register, each column a
// processing element (PE). Our machine carries L general registers R[0..L-1]
// plus the special registers A, B (the instruction accumulators) and E (the
// enable register). Every instruction has the paper's form
//
//	{A or R[j]}, B = f, g (F, D, B)  (IF or NF) <set>;
//
// performing two simultaneous assignments: the destination register receives
// f(F, D, B) and B receives g(F, D, B), where f and g are arbitrary Boolean
// functions of three one-bit arguments (8-bit truth tables), F is a local
// register operand and D is a register operand optionally routed through a
// neighbor: S (cycle successor), P (cycle predecessor), L (lateral), XS/XP
// (the even successor/predecessor exchanges), or I (the global input chain
// that threads all PEs in flat address order, with an external bit entering
// at PE (0,0) and the bit of PE (2^Q-1, Q-1) leaving the machine).
//
// (IF or NF) <set> activates or deactivates PEs by in-cycle position;
// deactivated PEs, and PEs whose E bit is 0, keep their old register values.
// Register E itself is always written: it ignores both masks, which is how a
// fully disabled machine can be re-enabled (paper §2).
//
// The simulator is cycle-faithful in the sense that every machine state
// change goes through Exec and is counted, so instruction counts reported by
// the experiment harness correspond one-to-one to BVM instructions.
package bvm

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/ccc"
	"repro/internal/stripe"
)

// DefaultRegisters is the register count of the machine the paper describes
// ("Our BVM has L = 256 registers").
const DefaultRegisters = 256

// RegKind distinguishes the register namespaces.
type RegKind uint8

const (
	KindR RegKind = iota // general register R[j]
	KindA                // accumulator A
	KindB                // accumulator B (written by the g half of an instruction)
	KindE                // enable register
)

// RegRef names one register.
type RegRef struct {
	Kind  RegKind
	Index int
}

// A, B and E are the special registers.
var (
	A = RegRef{Kind: KindA}
	B = RegRef{Kind: KindB}
	E = RegRef{Kind: KindE}
)

// R returns a reference to general register j.
func R(j int) RegRef { return RegRef{Kind: KindR, Index: j} }

func (r RegRef) String() string {
	switch r.Kind {
	case KindA:
		return "A"
	case KindB:
		return "B"
	case KindE:
		return "E"
	default:
		return fmt.Sprintf("R[%d]", r.Index)
	}
}

// Route selects how the D operand reaches the PE.
type Route uint8

const (
	Local   Route = iota // D read from the PE's own register
	RouteS               // from the cycle successor
	RouteP               // from the cycle predecessor
	RouteL               // from the lateral neighbor
	RouteXS              // from the even-successor exchange partner
	RouteXP              // from the even-predecessor exchange partner
	RouteI               // from the input chain predecessor (external bit at PE 0)

	numRoutes = int(RouteI) + 1
)

func (r Route) String() string {
	switch r {
	case Local:
		return ""
	case RouteS:
		return ".S"
	case RouteP:
		return ".P"
	case RouteL:
		return ".L"
	case RouteXS:
		return ".XS"
	case RouteXP:
		return ".XP"
	case RouteI:
		return ".I"
	}
	return fmt.Sprintf(".Route(%d)", uint8(r))
}

// Operand is a register optionally routed through a neighbor.
type Operand struct {
	Reg RegRef
	Via Route
}

// Loc is a local (unrouted) operand.
func Loc(r RegRef) Operand { return Operand{Reg: r} }

// Via is an operand routed through a neighbor.
func Via(r RegRef, route Route) Operand { return Operand{Reg: r, Via: route} }

func (o Operand) String() string { return o.Reg.String() + o.Via.String() }

// Activation is the (IF or NF) <set> clause: IF activates exactly the PEs
// whose in-cycle position is in Positions; NF activates the complement.
type Activation struct {
	Negate    bool
	Positions []int
}

// IF returns an activation of the given in-cycle positions.
func IF(positions ...int) *Activation { return &Activation{Positions: positions} }

// NF returns an activation of all positions except the given ones.
func NF(positions ...int) *Activation { return &Activation{Negate: true, Positions: positions} }

// Truth tables for f and g. The minterm index is F<<2 | D<<1 | B.
const (
	TTZero uint8 = 0x00
	TTOne  uint8 = 0xFF
	TTF    uint8 = 0b11110000 // f = F
	TTD    uint8 = 0b11001100 // f = D
	TTB    uint8 = 0b10101010 // f = B
)

// TT builds a truth table from a Boolean function of (F, D, B).
func TT(fn func(f, d, b bool) bool) uint8 {
	var t uint8
	for m := 0; m < 8; m++ {
		if fn(m&4 != 0, m&2 != 0, m&1 != 0) {
			t |= 1 << uint(m)
		}
	}
	return t
}

// Common derived tables.
var (
	TTAndFD    = TT(func(f, d, b bool) bool { return f && d })
	TTOrFD     = TT(func(f, d, b bool) bool { return f || d })
	TTXorFD    = TT(func(f, d, b bool) bool { return f != d })
	TTAndNotFD = TT(func(f, d, b bool) bool { return f && !d })
	TTNotF     = TT(func(f, d, b bool) bool { return !f })
	TTNotD     = TT(func(f, d, b bool) bool { return !d })
	// TTMuxB selects D where B=1, else F — the workhorse of bit-serial
	// conditional moves (B holds the select bit).
	TTMuxB = TT(func(f, d, b bool) bool {
		if b {
			return d
		}
		return f
	})
	// TTMajority and TTParity implement a full adder: sum = F^D^B,
	// carry-out = majority(F, D, B).
	TTMajority = TT(func(f, d, b bool) bool { return (f && d) || (f && b) || (d && b) })
	TTParity   = TT(func(f, d, b bool) bool { return f != d != b })
)

// Instr is one BVM instruction.
type Instr struct {
	Dst  RegRef // A, E, or R[j]; B is written by G
	FTT  uint8  // truth table for the Dst assignment
	GTT  uint8  // truth table for the B assignment (TTB leaves B unchanged)
	F    RegRef // local operand F
	D    Operand
	Cond *Activation // nil means all PEs active
}

// Machine is one BVM instance.
type Machine struct {
	Top *ccc.Topology
	L   int

	regs []*bitvec.Vector
	a, b *bitvec.Vector
	e    *bitvec.Vector

	// perms holds the scalar perm tables, retained as the differential-test
	// reference for the word-parallel route kernels (see route.go).
	perms map[Route][]int32

	// Route kernel constants: per-position and odd-position repeating word
	// selectors (internal/ccc.PosSelector / ParitySelector).
	posSel []uint64
	oddSel uint64

	// Activation machinery: onesMask is the shared all-active mask, actCache
	// memoizes composed (IF/NF <set>) masks keyed by position bitmask (bit 31
	// = negate); it is seeded with one mask per in-cycle position. eAllOnes
	// tracks whether E is entirely 1, enabling the unmasked write fast path.
	onesMask *bitvec.Vector
	actCache map[uint32]*bitvec.Vector
	eAllOnes bool

	// refExec, when true, forces the scalar reference execution path.
	refExec bool

	// stripePool, when non-nil, shards Exec's word-plane work across the
	// pool whenever the machine has at least stripeMin words per register
	// (see SetStriped in stripe.go).
	stripePool *stripe.Pool
	stripeMin  int

	// InstrCount is the number of executed instructions; the experiment
	// harness treats it as the machine's time in cycles.
	InstrCount int64
	// routeTally counts instructions per D-operand route (RouteCount builds
	// the map-shaped view).
	routeTally [numRoutes]int64

	inputs   []bool // pending external input bits for RouteI
	inputPos int
	// Output collects the bits shifted out of PE (2^Q-1, Q-1) by RouteI
	// instructions.
	Output []bool

	// scratch vectors reused across Exec calls
	sF, sD, sRes, sResB, sMask, sGate *bitvec.Vector

	// rec, when non-nil, captures executed instructions (see program.go).
	rec *Program
	// tracer, when non-nil, observes every executed instruction.
	tracer Tracer
	// injected faults (see fault.go)
	stuck     []stuckFault
	brokenLat map[int]bool
}

// New builds a machine on the CCC with parameter r and the given register
// count (use DefaultRegisters for the paper's machine).
func New(r, registers int) (*Machine, error) {
	top, err := ccc.New(r)
	if err != nil {
		return nil, err
	}
	if registers < 1 {
		return nil, fmt.Errorf("bvm: register count %d < 1", registers)
	}
	m := &Machine{
		Top:      top,
		L:        registers,
		regs:     make([]*bitvec.Vector, registers),
		a:        bitvec.New(top.N),
		b:        bitvec.New(top.N),
		e:        bitvec.New(top.N),
		perms:    make(map[Route][]int32),
		posSel:   make([]uint64, top.Q),
		oddSel:   top.ParitySelector(true),
		onesMask: bitvec.New(top.N),
		actCache: make(map[uint32]*bitvec.Vector),
		sF:       bitvec.New(top.N),
		sD:       bitvec.New(top.N),
		sRes:     bitvec.New(top.N),
		sResB:    bitvec.New(top.N),
		sMask:    bitvec.New(top.N),
		sGate:    bitvec.New(top.N),
	}
	for j := range m.regs {
		m.regs[j] = bitvec.New(top.N)
	}
	m.perms[RouteS] = top.Perm(ccc.KindSucc)
	m.perms[RouteP] = top.Perm(ccc.KindPred)
	m.perms[RouteL] = top.Perm(ccc.KindLateral)
	m.perms[RouteXS] = top.Perm(ccc.KindXS)
	m.perms[RouteXP] = top.Perm(ccc.KindXP)
	m.onesMask.Fill(true)
	// One precomputed activation mask per in-cycle position; composed
	// (IF/NF) sets are built from these patterns and memoized on first use.
	for p := 0; p < top.Q; p++ {
		m.posSel[p] = top.PosSelector(p)
		pv := bitvec.New(top.N)
		pv.FillWord(m.posSel[p])
		m.actCache[1<<uint(p)] = pv
	}
	m.e.Fill(true) // all PEs enabled at reset
	m.eAllOnes = true
	return m, nil
}

// N returns the number of PEs.
func (m *Machine) N() int { return m.Top.N }

func (m *Machine) reg(r RegRef) *bitvec.Vector {
	switch r.Kind {
	case KindA:
		return m.a
	case KindB:
		return m.b
	case KindE:
		return m.e
	default:
		if r.Index < 0 || r.Index >= m.L {
			panic(fmt.Sprintf("bvm: register R[%d] out of range [0,%d)", r.Index, m.L))
		}
		return m.regs[r.Index]
	}
}

// PushInput appends external input bits consumed by RouteI instructions, one
// bit per instruction, least recently pushed first. If the queue runs dry,
// RouteI reads zeros.
func (m *Machine) PushInput(bits ...bool) { m.inputs = append(m.inputs, bits...) }

func (m *Machine) nextInput() bool {
	if m.inputPos < len(m.inputs) {
		b := m.inputs[m.inputPos]
		m.inputPos++
		return b
	}
	return false
}

// Exec executes one instruction on all PEs simultaneously.
func (m *Machine) Exec(in Instr) {
	if in.Dst.Kind == KindB {
		panic("bvm: B cannot be the f destination; it is written by g")
	}
	if m.stripePool != nil && !m.refExec && m.sD.WordCount() >= m.stripeMin {
		m.execStriped(in)
	} else {
		m.execScalar(in)
	}
	m.applyFaults()
	m.InstrCount++
	m.routeTally[in.D.Via]++
	if m.rec != nil {
		m.rec.Instrs = append(m.rec.Instrs, in)
	}
	if m.tracer != nil {
		m.tracer(m.InstrCount, in, m)
	}
}

// execScalar is the single-threaded execution path (both the word-parallel
// kernels and, under SetReferenceExec, the scalar per-bit reference).
func (m *Machine) execScalar(in Instr) {
	vF := m.reg(in.F)
	srcD := m.reg(in.D.Reg)

	var vD *bitvec.Vector
	switch in.D.Via {
	case Local:
		vD = srcD
	case RouteI:
		m.Output = append(m.Output, srcD.Get(m.Top.N-1))
		m.routeI(m.sD, srcD, m.nextInput())
		vD = m.sD
	default:
		m.routeD(m.sD, srcD, in.D.Via)
		if in.D.Via == RouteL && len(m.brokenLat) > 0 {
			for pe := range m.brokenLat {
				m.sD.Set(pe, false)
			}
		}
		vD = m.sD
	}

	m.sRes.Apply3(in.FTT, vF, vD, m.b)
	// g = B leaves B unchanged on every PE (active PEs write back the old
	// value, inactive ones keep it), so the whole g half can be skipped.
	writeB := in.GTT != TTB || m.refExec
	if writeB {
		m.sResB.Apply3(in.GTT, vF, vD, m.b)
	}

	switch {
	case m.refExec:
		m.activationMaskInto(in.Cond, m.sMask)
		// Both halves gate on activation AND the pre-instruction enable
		// register.
		m.sGate.And(m.sMask, m.e)
		m.writeBack(in, m.sGate, writeB)
	case in.Cond == nil && m.eAllOnes:
		// All PEs active and enabled: masked copies degenerate to copies.
		if in.Dst.Kind == KindE {
			m.e.CopyFrom(m.sRes)
			m.noteEWrite()
		} else {
			m.reg(in.Dst).CopyFrom(m.sRes)
		}
		if writeB {
			m.b.CopyFrom(m.sResB)
		}
	default:
		m.sGate.And(m.activationMask(in.Cond), m.e)
		m.writeBack(in, m.sGate, writeB)
	}
}

// writeBack commits the f (and optionally g) results under the gate mask.
func (m *Machine) writeBack(in Instr, gate *bitvec.Vector, writeB bool) {
	if in.Dst.Kind == KindE {
		// E is always enabled and, per the paper, is written even on
		// deactivated/disabled PEs.
		m.e.CopyFrom(m.sRes)
		m.noteEWrite()
	} else {
		m.reg(in.Dst).MaskedCopy(gate, m.sRes)
	}
	if writeB {
		m.b.MaskedCopy(gate, m.sResB)
	}
}

// noteEWrite re-derives the all-enabled fast-path flag after any write that
// can touch E (instruction destination, host Poke, snapshot restore, or a
// stuck-bit fault on E).
func (m *Machine) noteEWrite() { m.eAllOnes = m.e.AllOnes() }

// --- immediate-mode assembler conveniences ---
// Each helper emits exactly one instruction; the g half defaults to TTB,
// which leaves B unchanged.

func onlyCond(cond []*Activation) *Activation {
	switch len(cond) {
	case 0:
		return nil
	case 1:
		return cond[0]
	}
	panic("bvm: at most one activation clause per instruction")
}

// SetConst sets dst to a constant bit on active+enabled PEs.
func (m *Machine) SetConst(dst RegRef, bit bool, cond ...*Activation) {
	tt := TTZero
	if bit {
		tt = TTOne
	}
	m.Exec(Instr{Dst: dst, FTT: tt, GTT: TTB, F: A, D: Loc(A), Cond: onlyCond(cond)})
}

// Mov copies src into dst.
func (m *Machine) Mov(dst RegRef, src Operand, cond ...*Activation) {
	m.Exec(Instr{Dst: dst, FTT: TTD, GTT: TTB, F: A, D: src, Cond: onlyCond(cond)})
}

// And sets dst = f AND d.
func (m *Machine) And(dst, f RegRef, d Operand, cond ...*Activation) {
	m.Exec(Instr{Dst: dst, FTT: TTAndFD, GTT: TTB, F: f, D: d, Cond: onlyCond(cond)})
}

// Or sets dst = f OR d.
func (m *Machine) Or(dst, f RegRef, d Operand, cond ...*Activation) {
	m.Exec(Instr{Dst: dst, FTT: TTOrFD, GTT: TTB, F: f, D: d, Cond: onlyCond(cond)})
}

// Xor sets dst = f XOR d.
func (m *Machine) Xor(dst, f RegRef, d Operand, cond ...*Activation) {
	m.Exec(Instr{Dst: dst, FTT: TTXorFD, GTT: TTB, F: f, D: d, Cond: onlyCond(cond)})
}

// AndNot sets dst = f AND NOT d.
func (m *Machine) AndNot(dst, f RegRef, d Operand, cond ...*Activation) {
	m.Exec(Instr{Dst: dst, FTT: TTAndNotFD, GTT: TTB, F: f, D: d, Cond: onlyCond(cond)})
}

// Not sets dst = NOT f.
func (m *Machine) Not(dst, f RegRef, cond ...*Activation) {
	m.Exec(Instr{Dst: dst, FTT: TTNotF, GTT: TTB, F: f, D: Loc(A), Cond: onlyCond(cond)})
}

// MuxB sets dst = (B ? d : f): a conditional move selected by register B.
func (m *Machine) MuxB(dst, f RegRef, d Operand, cond ...*Activation) {
	m.Exec(Instr{Dst: dst, FTT: TTMuxB, GTT: TTB, F: f, D: d, Cond: onlyCond(cond)})
}

// MovB copies src into B (using the g half; the f half rewrites dst with its
// own value, so dst is any scratch-safe register — A by convention).
func (m *Machine) MovB(src Operand, cond ...*Activation) {
	m.Exec(Instr{Dst: A, FTT: TTF, GTT: TTD, F: A, D: src, Cond: onlyCond(cond)})
}

// AddStep performs one ripple-carry full-adder step:
// dst = f XOR d XOR B and B = majority(f, d, B). Chaining AddStep over the
// bit planes of two numbers (with B cleared first) adds them LSB-first.
func (m *Machine) AddStep(dst, f RegRef, d Operand, cond ...*Activation) {
	m.Exec(Instr{Dst: dst, FTT: TTParity, GTT: TTMajority, F: f, D: d, Cond: onlyCond(cond)})
}

// --- host access (not counted as machine instructions) ---

// Peek returns a copy of a register's contents. Host-side; not counted.
func (m *Machine) Peek(r RegRef) *bitvec.Vector { return m.reg(r).Clone() }

// PeekBit returns one PE's bit of a register. Host-side; not counted.
func (m *Machine) PeekBit(r RegRef, pe int) bool { return m.reg(r).Get(pe) }

// Poke overwrites a register. Host-side DMA used to load problem data in
// tests and benchmarks; a hardware BVM would stream data through the I chain
// (see LoadViaInput), which is measured separately.
func (m *Machine) Poke(r RegRef, v *bitvec.Vector) {
	m.reg(r).CopyFrom(v)
	if r.Kind == KindE {
		m.noteEWrite()
	}
}

// PokeBit sets one PE's bit of a register. Host-side; not counted.
func (m *Machine) PokeBit(r RegRef, pe int, bit bool) {
	m.reg(r).Set(pe, bit)
	if r.Kind == KindE {
		m.noteEWrite()
	}
}

// LoadViaInput streams an n-bit pattern into dst through the input chain, the
// way a hardware BVM ingests data: n RouteI instructions, last pattern bit
// first. It costs n instructions.
func (m *Machine) LoadViaInput(dst RegRef, pattern *bitvec.Vector) {
	n := m.Top.N
	if pattern.Len() != n {
		panic(fmt.Sprintf("bvm: pattern length %d != %d PEs", pattern.Len(), n))
	}
	for i := n - 1; i >= 0; i-- {
		m.PushInput(pattern.Get(i))
	}
	for i := 0; i < n; i++ {
		m.Mov(dst, Via(dst, RouteI))
	}
}

// ReadViaOutput streams a register out of the machine through the I chain,
// the way a hardware BVM emits results: n RouteI shifts of the register
// itself, collecting the bit of PE (2^Q-1, Q-1) each cycle. Returns the
// register's former contents; the register is left shifted (clobbered) and
// the machine's Output log grows by n bits. Costs n instructions.
func (m *Machine) ReadViaOutput(src RegRef) *bitvec.Vector {
	n := m.Top.N
	out := bitvec.New(n)
	for i := 0; i < n; i++ {
		m.Mov(src, Via(src, RouteI))
	}
	// The bit of PE n-1 emerges first; after n shifts the whole register has
	// drained, most significant position first.
	emitted := m.Output[len(m.Output)-n:]
	for i := 0; i < n; i++ {
		out.Set(n-1-i, emitted[i])
	}
	return out
}

// ResetCounters zeroes the instruction counters (not the register state).
func (m *Machine) ResetCounters() {
	m.InstrCount = 0
	m.routeTally = [numRoutes]int64{}
}

// RouteCount returns the per-route instruction tally as a map (routes with a
// zero count are omitted). The tally itself is a fixed array bumped once per
// Exec; the map is materialized only when asked for.
func (m *Machine) RouteCount() map[Route]int64 {
	out := make(map[Route]int64, numRoutes)
	for r, n := range m.routeTally {
		if n != 0 {
			out[Route(r)] = n
		}
	}
	return out
}

// Uint reads, per PE, the unsigned number stored LSB-first across the width
// consecutive registers starting at base. Host-side; not counted.
func (m *Machine) Uint(base, width, pe int) uint64 {
	var x uint64
	for b := 0; b < width; b++ {
		if m.regs[base+b].Get(pe) {
			x |= 1 << uint(b)
		}
	}
	return x
}

// SetUint stores, for one PE, an unsigned number LSB-first across width
// consecutive registers starting at base. Host-side; not counted.
func (m *Machine) SetUint(base, width, pe int, x uint64) {
	for b := 0; b < width; b++ {
		m.regs[base+b].Set(pe, x>>uint(b)&1 == 1)
	}
}
