package simulate

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

func solved(t *testing.T, p *core.Problem) (*core.Solution, *core.Node) {
	t.Helper()
	sol, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := sol.Tree(p)
	if err != nil {
		t.Fatal(err)
	}
	return sol, tree
}

// TestExecuteWeightedSumEqualsTreeCost: summing per-fault path costs weighted
// by priors must reconstruct TreeCost exactly — Execute and TreeCost are
// independent implementations of the same semantics.
func TestExecuteWeightedSumEqualsTreeCost(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := workload.Random(seed, 5, 4, 3)
		sol, tree := solved(t, p)
		var total uint64
		for j := 0; j < p.K; j++ {
			_, cost, err := Execute(p, tree, j)
			if err != nil {
				t.Fatalf("seed %d fault %d: %v", seed, j, err)
			}
			total = core.SatAdd(total, core.SatMul(cost, p.Weights[j]))
		}
		if total != sol.Cost {
			t.Fatalf("seed %d: weighted execute sum %d != C(U) %d", seed, total, sol.Cost)
		}
	}
}

func TestExecuteTranscript(t *testing.T) {
	p := workload.MedicalDiagnosis(1, 6)
	_, tree := solved(t, p)
	steps, cost, err := Execute(p, tree, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 || cost == 0 {
		t.Fatal("empty transcript")
	}
	last := steps[len(steps)-1]
	if last.Outcome != TreatmentCured {
		t.Fatalf("transcript does not end in a cure: %v", last.Outcome)
	}
	text := TranscriptString(p, steps)
	if !strings.Contains(text, "cured") {
		t.Errorf("transcript text missing cure:\n%s", text)
	}
}

func TestExecuteErrors(t *testing.T) {
	p := workload.Random(3, 4, 3, 2)
	_, tree := solved(t, p)
	if _, _, err := Execute(p, tree, -1); err == nil {
		t.Error("negative fault accepted")
	}
	if _, _, err := Execute(p, tree, p.K); err == nil {
		t.Error("out-of-universe fault accepted")
	}
	// A truncated tree strands faults.
	bad := &core.Node{Action: tree.Action, Set: tree.Set}
	if p.Actions[bad.Action].Treatment {
		// ensure the stranded branch is exercised
		missing := core.Universe(p.K) &^ p.Actions[bad.Action].Set
		if missing != 0 {
			if _, _, err := Execute(p, bad, missing.Objects()[0]); err == nil {
				t.Error("stranded fault accepted")
			}
		}
	} else {
		if _, _, err := Execute(p, bad, 0); err == nil {
			t.Error("truncated tree accepted")
		}
	}
}

func TestSamplerDistribution(t *testing.T) {
	p := &core.Problem{
		K:       3,
		Weights: []uint64{6, 3, 1},
		Actions: []core.Action{{Set: core.Universe(3), Cost: 1, Treatment: true}},
	}
	smp, err := NewSampler(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[smp.Draw(rng)]++
	}
	want := []float64{0.6, 0.3, 0.1}
	for j, c := range counts {
		got := float64(c) / n
		if math.Abs(got-want[j]) > 0.01 {
			t.Errorf("object %d frequency %.3f, want %.1f", j, got, want[j])
		}
	}
}

func TestSamplerRejectsZeroWeights(t *testing.T) {
	p := &core.Problem{K: 2, Weights: []uint64{0, 0},
		Actions: []core.Action{{Set: core.Universe(2), Cost: 1, Treatment: true}}}
	if _, err := NewSampler(p); err == nil {
		t.Fatal("zero-weight sampler accepted")
	}
}

// TestEstimateCostConvergesToTreeCost: the Monte-Carlo estimate must land
// within a few standard errors of the analytic expected cost.
func TestEstimateCostConvergesToTreeCost(t *testing.T) {
	p := workload.MedicalDiagnosis(5, 8)
	sol, tree := solved(t, p)
	est, err := EstimateCost(p, tree, 42, 60000)
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(est.Mean - float64(sol.Cost))
	if diff > 5*est.StdErr+1e-9 {
		t.Fatalf("MC estimate %.1f ± %.1f vs analytic %d: off by %.1f (> 5 SE)",
			est.Mean, est.StdErr, sol.Cost, diff)
	}
	if est.StdErr <= 0 {
		t.Fatal("zero standard error on a non-degenerate tree")
	}
}

func TestEstimateCostGreedyAboveOptimal(t *testing.T) {
	p := workload.FaultLocation(9, 8, 4)
	sol, _ := solved(t, p)
	gt, err := core.GreedyTree(p)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EstimateCost(p, gt, 7, 40000)
	if err != nil {
		t.Fatal(err)
	}
	// The greedy tree's estimated cost must not be significantly below the
	// optimum.
	if est.Mean < float64(sol.Cost)-5*est.StdErr {
		t.Fatalf("greedy MC estimate %.1f significantly below optimum %d", est.Mean, sol.Cost)
	}
}

func TestEstimateCostErrors(t *testing.T) {
	p := workload.Random(1, 3, 2, 2)
	_, tree := solved(t, p)
	if _, err := EstimateCost(p, tree, 1, 0); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestOutcomeString(t *testing.T) {
	want := map[Outcome]string{
		TestPositive: "positive", TestNegative: "negative",
		TreatmentCured: "cured", TreatmentFailed: "failed",
	}
	for o, s := range want {
		if o.String() != s {
			t.Errorf("%d.String() = %q", int(o), o.String())
		}
	}
}

func BenchmarkExecute(b *testing.B) {
	p := workload.MedicalDiagnosis(5, 10)
	sol, _ := core.Solve(p)
	tree, _ := sol.Tree(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Execute(p, tree, i%p.K); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimateCost(b *testing.B) {
	p := workload.MedicalDiagnosis(5, 10)
	sol, _ := core.Solve(p)
	tree, _ := sol.Tree(p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateCost(p, tree, int64(i), 1000); err != nil {
			b.Fatal(err)
		}
	}
}
