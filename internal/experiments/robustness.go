package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/workload"
)

// PriorRobustness is experiment E16: how much does an optimal procedure lose
// when the a-priori weights it was optimized for drift? This is the question
// a fielded test-and-treatment policy faces (the paper's "sizable population
// of complex objects maintained at reasonable cost" is never stationary).
// For each perturbation level we re-draw weights within ±level of the
// originals, evaluate the stale tree under the new weights, and compare with
// re-optimizing.
func PriorRobustness() (*Table, error) {
	t := &Table{
		ID:         "E16",
		Title:      "robustness of optimal procedures to prior drift",
		PaperClaim: "(deployment study) optimal trees are reused across prior drift in practice",
		Header:     []string{"workload", "drift", "stale tree (avg)", "re-optimized (avg)", "regret %"},
	}
	cases := []struct {
		name string
		p    *core.Problem
	}{
		{"medical-10", workload.MedicalDiagnosis(21, 10)},
		{"logistics-10", workload.Logistics(22, 10, 4)},
		{"biology-10", workload.SystematicBiology(23, 10)},
	}
	const trials = 20
	for _, c := range cases {
		sol, err := core.Solve(c.p)
		if err != nil {
			return nil, err
		}
		tree, err := sol.Tree(c.p)
		if err != nil {
			return nil, err
		}
		for _, drift := range []float64{0.25, 0.5, 1.0} {
			rng := rand.New(rand.NewSource(int64(drift * 1000)))
			var staleSum, freshSum float64
			for trial := 0; trial < trials; trial++ {
				w2 := perturb(rng, c.p.Weights, drift)
				stale, err := core.TreeCostWithWeights(c.p, tree, w2)
				if err != nil {
					return nil, err
				}
				q := c.p.Clone()
				q.Weights = w2
				fresh, err := core.Solve(q)
				if err != nil {
					return nil, err
				}
				staleSum += float64(stale)
				freshSum += float64(fresh.Cost)
			}
			staleAvg := staleSum / trials
			freshAvg := freshSum / trials
			t.AddRow(c.name, fmt.Sprintf("±%.0f%%", drift*100),
				fmt.Sprintf("%.0f", staleAvg), fmt.Sprintf("%.0f", freshAvg),
				fmt.Sprintf("%.1f", 100*(staleAvg-freshAvg)/freshAvg))
		}
	}
	t.Notes = append(t.Notes,
		"regret is the average extra cost of keeping the stale optimal tree instead of re-running the DP",
		"small regret at moderate drift: procedures tolerate prevalence shifts; re-optimize after large ones")
	return t, nil
}

// perturb multiplies each weight by a factor drawn uniformly from
// [1-drift, 1+drift], clamped to stay a positive integer.
func perturb(rng *rand.Rand, w []uint64, drift float64) []uint64 {
	out := make([]uint64, len(w))
	for j, v := range w {
		f := 1 + drift*(2*rng.Float64()-1)
		nv := uint64(float64(v)*f + 0.5)
		if nv < 1 {
			nv = 1
		}
		out[j] = nv
	}
	return out
}
