package cluster

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/checkpoint"
)

// The wire protocol: every message is one checkpoint CRC frame whose payload
// is a 1-byte type followed by the body. TCP (or net.Pipe in tests) provides
// ordering; the frame CRC provides integrity — a truncated or bit-flipped
// frame surfaces as checkpoint.ErrCorrupt at the receiver, never as a
// plausible message.
//
// Session shape, coordinator side:
//
//	→ Hello {hash, problem, frontier?}     (once, opens the session)
//	← HelloOK {id, hash}
//	→ Assign {id, level, lo, hi}           (any number, level barriers apply)
//	← Plane  assignID ++ EncodePlane(...)
//	→ Merged EncodePlane(full level)       (after each level j < K)
//	→ Ping   / ← Pong                      (liveness, any time)
//	→ Done                                 (closes the session)
const (
	msgHello byte = iota + 1
	msgHelloOK
	msgAssign
	msgPlane
	msgMerged
	msgPing
	msgPong
	msgDone
)

// maxFrame bounds one wire frame: a merged plane of the widest admissible
// level (C(26,13) cells at 12 bytes each) plus framing slack fits in 256 MiB,
// and a corrupt length field cannot make a receiver allocate more.
const maxFrame = 256 << 20

// writeTimeout bounds every single conn write; a peer that stops draining
// its socket surfaces as a write error, not a wedged event loop.
const writeTimeout = 30 * time.Second

// helloBody opens a session: the canonical instance bytes, their hash, and
// optionally a checkpoint image of an already-merged frontier to resume from.
// The worker re-derives the hash and re-validates the image, trusting nothing.
type helloBody struct {
	Hash     string `json:"hash"`
	Problem  []byte `json:"problem"`            // instio wire form
	Frontier []byte `json:"frontier,omitempty"` // checkpoint.Encode image
}

// helloOKBody acknowledges a Hello: the worker's self-declared ID and the
// hash it derived, echoed so the coordinator can catch a mismatched worker.
type helloOKBody struct {
	ID   string `json:"id"`
	Hash string `json:"hash"`
}

// assignBody hands one level slice to a worker. ID is a per-session
// monotonic assignment number: the returned plane echoes it, which is how
// late planes from reassigned slices are recognized as stale.
type assignBody struct {
	ID    uint64 `json:"id"`
	Level int    `json:"level"`
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
}

// writeMsg frames and sends one message under the write timeout.
func writeMsg(c net.Conn, typ byte, body []byte) error {
	payload := make([]byte, 0, 1+len(body))
	payload = append(payload, typ)
	payload = append(payload, body...)
	if err := c.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil {
		return err
	}
	_, err := c.Write(checkpoint.AppendFrame(nil, payload))
	return err
}

// readMsg reads one framed message. A zero deadline blocks indefinitely —
// the caller's own deadlines (plane, heartbeat) decide when silence is
// failure. Framing defects wrap checkpoint.ErrCorrupt.
func readMsg(c net.Conn, deadline time.Duration) (byte, []byte, error) {
	if deadline > 0 {
		if err := c.SetReadDeadline(time.Now().Add(deadline)); err != nil {
			return 0, nil, err
		}
	}
	var hdr [4]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > maxFrame {
		return 0, nil, fmt.Errorf("%w: wire frame of %d bytes", checkpoint.ErrCorrupt, n)
	}
	data := make([]byte, 8+n)
	copy(data, hdr[:])
	if _, err := io.ReadFull(c, data[4:]); err != nil {
		return 0, nil, err
	}
	payload, _, err := checkpoint.NextFrame(data)
	if err != nil {
		return 0, nil, err
	}
	return payload[0], payload[1:], nil
}

// writeJSON marshals body and sends it as one message of the given type.
func writeJSON(c net.Conn, typ byte, body any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return writeMsg(c, typ, b)
}
