package bvmtt

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

func randomProblem(rng *rand.Rand, k, nActions int) *core.Problem {
	p := &core.Problem{K: k, Weights: make([]uint64, k)}
	for j := range p.Weights {
		p.Weights[j] = uint64(rng.Intn(5) + 1)
	}
	u := uint32(core.Universe(k))
	for i := 0; i < nActions; i++ {
		p.Actions = append(p.Actions, core.Action{
			Set:       core.Set(rng.Intn(int(u))+1) & core.Set(u),
			Cost:      uint64(rng.Intn(8) + 1),
			Treatment: rng.Intn(2) == 0,
		})
	}
	p.Actions = append(p.Actions, core.Action{Set: core.Universe(k), Cost: 20, Treatment: true})
	return p
}

// TestBVMTTMatchesDP is the fidelity core of experiment E13: the
// instruction-level BVM program must reproduce the sequential DP's entire
// C plane on the 64-PE machine.
func TestBVMTTMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 12; trial++ {
		k := rng.Intn(3) + 2 // 2..4: machines of 64 PEs
		p := randomProblem(rng, k, rng.Intn(3)+2)
		seq, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != seq.Cost {
			t.Fatalf("trial %d: BVM C(U)=%d, DP %d", trial, res.Cost, seq.Cost)
		}
		for s := range res.C {
			if res.C[s] != seq.C[s] {
				t.Fatalf("trial %d: C[%b] BVM %d, DP %d", trial, s, res.C[s], seq.C[s])
			}
		}
		if res.Instructions <= res.LoadInstructions || res.LoadInstructions == 0 {
			t.Fatalf("trial %d: implausible instruction split %d/%d",
				trial, res.Instructions, res.LoadInstructions)
		}
	}
}

func TestBVMTTHandComputed(t *testing.T) {
	p := &core.Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []core.Action{
			{Name: "treat-both", Set: core.SetOf(0, 1), Cost: 3, Treatment: true},
			{Name: "treat-0", Set: core.SetOf(0), Cost: 1, Treatment: true},
			{Name: "treat-1", Set: core.SetOf(1), Cost: 1, Treatment: true},
			{Name: "test-0", Set: core.SetOf(0), Cost: 1},
		},
	}
	res, err := Solve(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 3 {
		t.Fatalf("C(U) = %d, want 3", res.Cost)
	}
	if res.PEs != 64 || res.LogN != 4 {
		t.Fatalf("machine: PEs=%d logN=%d, want 64/4", res.PEs, res.LogN)
	}
}

func TestPhaseBreakdownSumsToTotal(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(9)), 3, 3)
	res, err := Solve(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 5 {
		t.Fatalf("phases = %d, want 5", len(res.Phases))
	}
	var total int64
	names := []string{"processor-id", "load", "p(S)", "tp-multiply", "rounds"}
	for i, ph := range res.Phases {
		if ph.Name != names[i] {
			t.Errorf("phase %d = %q, want %q", i, ph.Name, names[i])
		}
		if ph.Instructions <= 0 {
			t.Errorf("phase %q has %d instructions", ph.Name, ph.Instructions)
		}
		total += ph.Instructions
	}
	if total != res.Instructions {
		t.Fatalf("phase sum %d != total %d", total, res.Instructions)
	}
	if res.Phases[1].Instructions != res.LoadInstructions {
		t.Fatalf("load phase %d != LoadInstructions %d", res.Phases[1].Instructions, res.LoadInstructions)
	}
}

func TestBVMTTInadequate(t *testing.T) {
	p := &core.Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []core.Action{
			{Set: core.SetOf(0), Cost: 1, Treatment: true},
			{Set: core.SetOf(0), Cost: 1},
		},
	}
	res, err := Solve(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != core.Inf {
		t.Fatalf("inadequate instance: cost %d, want Inf", res.Cost)
	}
}

func TestBVMTT2048PE(t *testing.T) {
	if testing.Short() {
		t.Skip("2048-PE bit-level run in -short mode")
	}
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng, 6, 10) // k=6, N<=16 → dim 10 → 2048-PE machine
	seq, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PEs != 2048 {
		t.Fatalf("PEs = %d, want 2048", res.PEs)
	}
	for s := range res.C {
		if res.C[s] != seq.C[s] {
			t.Fatalf("C[%b]: BVM %d, DP %d", s, res.C[s], seq.C[s])
		}
	}
}

func TestSuggestWidth(t *testing.T) {
	p := &core.Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []core.Action{{Set: core.SetOf(0, 1), Cost: 3, Treatment: true}},
	}
	w := SuggestWidth(p)
	// Bound = 3·2 = 6 → need 2^w-1 > 6 plus margin.
	if w < 4 || w > 6 {
		t.Fatalf("SuggestWidth = %d", w)
	}
}

func TestSolveRejectsBadInput(t *testing.T) {
	good := randomProblem(rand.New(rand.NewSource(2)), 2, 2)
	if _, err := Solve(good, 1); err == nil {
		t.Error("width 1 accepted")
	}
	if _, err := Solve(good, 40); err == nil {
		t.Error("width 40 accepted")
	}
	if _, err := Solve(&core.Problem{K: 0}, 8); err == nil {
		t.Error("invalid problem accepted")
	}
	big := randomProblem(rand.New(rand.NewSource(3)), 10, 8) // dim 13 > MaxDim
	if _, err := Solve(big, 8); err == nil {
		t.Error("oversized instance accepted")
	}
	sat := randomProblem(rand.New(rand.NewSource(4)), 2, 2)
	sat.Actions[0].Cost = 200
	if _, err := Solve(sat, 4); err == nil {
		t.Error("cost saturating the word width accepted")
	}
}

func BenchmarkBVMTT64PE(b *testing.B) {
	p := randomProblem(rand.New(rand.NewSource(5)), 3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDataObliviousInstructionCount: SIMD programs are data-oblivious — two
// instances with identical shape (k, N, width) but different weights and
// costs must execute exactly the same number of instructions.
func TestDataObliviousInstructionCount(t *testing.T) {
	a := randomProblem(rand.New(rand.NewSource(100)), 3, 3)
	b := randomProblem(rand.New(rand.NewSource(200)), 3, 3)
	// Same shape is guaranteed by the generator (same k, same action count);
	// force identical width explicitly.
	ra, err := Solve(a, 14)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Solve(b, 14)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Instructions != rb.Instructions {
		t.Fatalf("instruction counts differ: %d vs %d — program is data-dependent",
			ra.Instructions, rb.Instructions)
	}
	// And repeated runs are deterministic.
	ra2, err := Solve(a, 14)
	if err != nil {
		t.Fatal(err)
	}
	if ra2.Instructions != ra.Instructions || ra2.Cost != ra.Cost {
		t.Fatal("run-to-run nondeterminism")
	}
}

// TestBVMTTFullCapacity2048 exercises the largest exact-fit instance of the
// 2048-PE machine: k = 7 objects with 16 actions uses all 11 address bits.
func TestBVMTTFullCapacity2048(t *testing.T) {
	if testing.Short() {
		t.Skip("full-capacity 2048-PE run in -short mode")
	}
	rng := rand.New(rand.NewSource(12))
	p := randomProblem(rng, 7, 15) // +1 catch-all = 16 = 2^4 actions
	if got := len(p.Actions); got != 16 {
		t.Fatalf("action count %d, want 16", got)
	}
	seq, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PEs != 2048 || res.LogN != 4 {
		t.Fatalf("machine %d PEs logN %d, want 2048/4", res.PEs, res.LogN)
	}
	for s := range res.C {
		if res.C[s] != seq.C[s] {
			t.Fatalf("C[%b]: BVM %d, DP %d", s, res.C[s], seq.C[s])
		}
	}
}
