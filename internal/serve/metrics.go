package serve

import (
	"expvar"
	"sync"
	"sync/atomic"
	"time"
)

// latencyHist is a fixed-bucket exponential latency histogram (thresholds
// 1ms, 4ms, 16ms, ... ×4 up to 16s, plus overflow), lock-free on the
// observe path.
type latencyHist struct {
	counts  [histBuckets + 1]atomic.Int64
	n       atomic.Int64
	totalNS atomic.Int64
}

const (
	histBuckets = 8
	histBaseNS  = int64(time.Millisecond)
)

func histLabel(i int) string {
	labels := [histBuckets + 1]string{
		"<1ms", "<4ms", "<16ms", "<64ms", "<256ms", "<1s", "<4s", "<16s", ">=16s",
	}
	return labels[i]
}

func (h *latencyHist) observe(d time.Duration) {
	ns := int64(d)
	bucket := histBuckets
	for i, bound := 0, histBaseNS; i < histBuckets; i, bound = i+1, bound*4 {
		if ns < bound {
			bucket = i
			break
		}
	}
	h.counts[bucket].Add(1)
	h.n.Add(1)
	h.totalNS.Add(ns)
}

func (h *latencyHist) snapshot() map[string]any {
	buckets := make(map[string]int64, histBuckets+1)
	for i := range h.counts {
		if v := h.counts[i].Load(); v > 0 {
			buckets[histLabel(i)] = v
		}
	}
	out := map[string]any{"count": h.n.Load(), "buckets": buckets}
	if n := h.n.Load(); n > 0 {
		out["mean_ms"] = float64(h.totalNS.Load()) / float64(n) / 1e6
	}
	return out
}

// Metrics is the server's counter set, exported at /v1/stats (per server)
// and through the process-wide expvar page at /debug/vars.
type Metrics struct {
	Requests       atomic.Int64 // HTTP requests to /v1/ endpoints
	Solves         atomic.Int64 // solver runs actually executed
	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64
	Coalesced      atomic.Int64 // requests collapsed onto an in-flight solve
	RejectOversize atomic.Int64 // 422: over the K/action budget
	RejectBusy     atomic.Int64 // 503: admission queue full
	RejectDraining atomic.Int64 // 503: shed because the server is draining
	Timeouts       atomic.Int64 // 504: solver deadline exceeded
	ClientGone     atomic.Int64 // client disconnected before the answer
	Failures       atomic.Int64 // 5xx

	// Shared-lattice batch solving (batch.go).
	BatchRequests atomic.Int64 // POST /v1/solve/batch requests admitted past parsing
	BatchGroups   atomic.Int64 // shared-lattice groups solved by one enumerate-once sweep
	BatchRepriced atomic.Int64 // instances priced by riding another instance's enumeration
	BatchFallback atomic.Int64 // batch instances that fell back to a per-instance solve

	// Self-healing path (resilience.go).
	EngineFailures atomic.Int64 // solve attempts that failed for non-context reasons
	Retries        atomic.Int64 // backoff retries taken after a failed attempt
	Fallbacks      atomic.Int64 // downgrades to the next engine in the chain
	BreakerRejects atomic.Int64 // attempts skipped because a breaker was open

	// Certification (resilience.go): every answer is checked by the
	// engine-independent certifier before it is cached or returned.
	CertifyPass atomic.Int64 // answers that passed certification
	CertifyFail atomic.Int64 // answers refused: certification found a violation

	// Bounded-suboptimality plane (approx.go, docs/RESILIENCE.md).
	ApproxServed   atomic.Int64  // answers produced by the approx engine (all gap-certified)
	ApproxExact    atomic.Int64  // of those, proven optimal (branch-and-bound completed)
	ApproxFallback atomic.Int64  // exact-engine requests degraded to approx by the fallback chain
	approxGapMax   atomic.Uint64 // worst certified gap served, milli-units
	approxGapSum   atomic.Uint64 // sum of certified gaps served, milli-units (mean = sum/served)

	// Route plane (route.go) and eval validation.
	PolicyPublishes atomic.Int64 // compiled policy artifacts published
	RouteSessions   atomic.Int64 // route sessions started
	RouteSteps      atomic.Int64 // route steps served (solo and batch members)
	RouteDone       atomic.Int64 // sessions that reached a treating leaf
	RouteBadCursor  atomic.Int64 // cursors rejected: malformed, tampered, or bound to an evicted artifact
	EvalMalformed   atomic.Int64 // 422: /v1/eval policy parsed but encodes no valid procedure

	// Durable checkpoints (resilience.go).
	CheckpointLevels     atomic.Int64 // level frontiers durably written
	CheckpointErrors     atomic.Int64 // persistence failures (swallowed, solve continues)
	CheckpointsResumed   atomic.Int64 // interrupted solves finished from disk at startup
	CheckpointsDiscarded atomic.Int64 // corrupt/torn checkpoint files deleted at startup

	// Distributed solve plane (cluster.go, internal/cluster).
	ClusterSolves         atomic.Int64 // solves dispatched to the worker fleet
	ClusterPlanes         atomic.Int64 // level planes verified and merged
	ClusterPlanesRejected atomic.Int64 // planes refused: corrupt framing or failed verification
	ClusterReassigned     atomic.Int64 // level slices reassigned after a fault
	ClusterStragglers     atomic.Int64 // assignments expired by the plane deadline
	ClusterWorkersLost    atomic.Int64 // workers removed mid-solve (conn, heartbeat, strikes)

	mu        sync.Mutex
	perEngine map[string]*latencyHist
}

func newMetrics() *Metrics {
	return &Metrics{perEngine: make(map[string]*latencyHist)}
}

// observeGap records one gap-certified approx answer's certified ratio.
// Inadequate answers report GapScale (their witness is exact); saturated
// gaps are clamped so one pathological instance cannot wreck the sum.
func (m *Metrics) observeGap(gapMilli uint64) {
	const clamp = 1 << 32
	if gapMilli > clamp {
		gapMilli = clamp
	}
	m.approxGapSum.Add(gapMilli)
	for {
		cur := m.approxGapMax.Load()
		if gapMilli <= cur || m.approxGapMax.CompareAndSwap(cur, gapMilli) {
			return
		}
	}
}

// observe records one completed solver run for an engine.
func (m *Metrics) observe(engine string, d time.Duration) {
	m.mu.Lock()
	h, ok := m.perEngine[engine]
	if !ok {
		h = &latencyHist{}
		m.perEngine[engine] = h
	}
	m.mu.Unlock()
	h.observe(d)
}

// Snapshot renders every counter and histogram as a JSON-ready map.
func (m *Metrics) Snapshot() map[string]any {
	engines := make(map[string]any)
	m.mu.Lock()
	for name, h := range m.perEngine {
		engines[name] = h.snapshot()
	}
	m.mu.Unlock()
	return map[string]any{
		"requests":                m.Requests.Load(),
		"solves":                  m.Solves.Load(),
		"cache_hits":              m.CacheHits.Load(),
		"cache_misses":            m.CacheMisses.Load(),
		"coalesced":               m.Coalesced.Load(),
		"reject_oversize":         m.RejectOversize.Load(),
		"reject_busy":             m.RejectBusy.Load(),
		"reject_draining":         m.RejectDraining.Load(),
		"timeouts":                m.Timeouts.Load(),
		"client_gone":             m.ClientGone.Load(),
		"failures":                m.Failures.Load(),
		"batch_requests":          m.BatchRequests.Load(),
		"batch_groups":            m.BatchGroups.Load(),
		"batch_repriced":          m.BatchRepriced.Load(),
		"batch_fallback":          m.BatchFallback.Load(),
		"engine_failures":         m.EngineFailures.Load(),
		"retries":                 m.Retries.Load(),
		"fallbacks":               m.Fallbacks.Load(),
		"breaker_rejects":         m.BreakerRejects.Load(),
		"certify_pass":            m.CertifyPass.Load(),
		"certify_fail":            m.CertifyFail.Load(),
		"approx_served":           m.ApproxServed.Load(),
		"approx_exact":            m.ApproxExact.Load(),
		"approx_fallback":         m.ApproxFallback.Load(),
		"approx_gap_milli_max":    m.approxGapMax.Load(),
		"approx_gap_milli_sum":    m.approxGapSum.Load(),
		"policy_publishes":        m.PolicyPublishes.Load(),
		"route_sessions":          m.RouteSessions.Load(),
		"route_steps":             m.RouteSteps.Load(),
		"route_done":              m.RouteDone.Load(),
		"route_bad_cursor":        m.RouteBadCursor.Load(),
		"eval_malformed":          m.EvalMalformed.Load(),
		"checkpoint_levels":       m.CheckpointLevels.Load(),
		"checkpoint_errors":       m.CheckpointErrors.Load(),
		"checkpoints_resumed":     m.CheckpointsResumed.Load(),
		"checkpoints_discarded":   m.CheckpointsDiscarded.Load(),
		"cluster_solves":          m.ClusterSolves.Load(),
		"cluster_planes":          m.ClusterPlanes.Load(),
		"cluster_planes_rejected": m.ClusterPlanesRejected.Load(),
		"cluster_reassigned":      m.ClusterReassigned.Load(),
		"cluster_stragglers":      m.ClusterStragglers.Load(),
		"cluster_workers_lost":    m.ClusterWorkersLost.Load(),
		"engine_latency":          engines,
	}
}

// meanSolveSeconds is the observed mean solve latency across all engines,
// 0 when nothing has been observed yet. Feeds the Retry-After estimate.
func (m *Metrics) meanSolveSeconds() float64 {
	var n, totalNS int64
	m.mu.Lock()
	for _, h := range m.perEngine {
		n += h.n.Load()
		totalNS += h.totalNS.Load()
	}
	m.mu.Unlock()
	if n == 0 {
		return 0
	}
	return float64(totalNS) / float64(n) / 1e9
}

// publishStats exposes a server's stats payload as the process-wide
// "ttserve" expvar. expvar names are global and re-publishing panics, so
// only the first server in a process is published — the normal case for
// cmd/ttserve; test servers beyond the first keep their per-server /v1/stats
// endpoint.
var publishExpvar sync.Once

func publishStats(payload func() map[string]any) {
	publishExpvar.Do(func() {
		expvar.Publish("ttserve", expvar.Func(func() any { return payload() }))
	})
}
