package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomProblem builds a random, usually adequate instance.
func randomProblem(rng *rand.Rand, k, nActions int) *Problem {
	p := &Problem{K: k, Weights: make([]uint64, k)}
	for j := range p.Weights {
		p.Weights[j] = uint64(rng.Intn(20) + 1)
	}
	u := uint32(Universe(k))
	for i := 0; i < nActions; i++ {
		p.Actions = append(p.Actions, Action{
			Set:       Set(rng.Intn(int(u))+1) & Set(u),
			Cost:      uint64(rng.Intn(30) + 1),
			Treatment: rng.Intn(2) == 0,
		})
	}
	// Guarantee adequacy with a catch-all treatment.
	p.Actions = append(p.Actions, Action{Name: "catch-all", Set: Universe(k), Cost: 500, Treatment: true})
	return p
}

func TestSetBasics(t *testing.T) {
	s := SetOf(0, 2, 5)
	if !s.Has(0) || !s.Has(2) || !s.Has(5) || s.Has(1) {
		t.Fatal("membership wrong")
	}
	if s.Size() != 3 {
		t.Fatalf("Size = %d", s.Size())
	}
	if got := s.String(); got != "{0,2,5}" {
		t.Fatalf("String = %q", got)
	}
	objs := s.Objects()
	if len(objs) != 3 || objs[0] != 0 || objs[1] != 2 || objs[2] != 5 {
		t.Fatalf("Objects = %v", objs)
	}
	if Universe(4) != 0b1111 {
		t.Fatal("Universe wrong")
	}
	if (Set(0)).String() != "{}" {
		t.Fatal("empty set string")
	}
}

func TestValidateErrors(t *testing.T) {
	good := &Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []Action{{Set: SetOf(0, 1), Cost: 1, Treatment: true}},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
	cases := map[string]*Problem{
		"zero K":          {K: 0, Weights: nil, Actions: good.Actions},
		"huge K":          {K: MaxK + 1, Weights: make([]uint64, MaxK+1), Actions: good.Actions},
		"weight mismatch": {K: 2, Weights: []uint64{1}, Actions: good.Actions},
		"no actions":      {K: 2, Weights: []uint64{1, 1}},
		"no treatments": {K: 2, Weights: []uint64{1, 1},
			Actions: []Action{{Set: SetOf(0), Cost: 1}}},
		"action outside universe": {K: 2, Weights: []uint64{1, 1},
			Actions: []Action{{Set: SetOf(3), Cost: 1, Treatment: true}}},
		"oversized weight": {K: 2, Weights: []uint64{maxInput + 1, 1}, Actions: good.Actions},
		"oversized cost": {K: 2, Weights: []uint64{1, 1},
			Actions: []Action{{Set: SetOf(0, 1), Cost: maxInput + 1, Treatment: true}}},
	}
	for name, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid problem", name)
		}
	}
}

func TestProblemCounts(t *testing.T) {
	p := &Problem{K: 3, Weights: []uint64{1, 2, 3}, Actions: []Action{
		{Set: SetOf(0), Cost: 1},
		{Set: SetOf(1), Cost: 1, Treatment: true},
		{Set: SetOf(2), Cost: 1, Treatment: true},
	}}
	if p.NumTests() != 1 || p.NumTreatments() != 2 {
		t.Fatalf("counts: %d tests %d treatments", p.NumTests(), p.NumTreatments())
	}
	if p.TotalWeight() != 6 {
		t.Fatalf("TotalWeight = %d", p.TotalWeight())
	}
	c := p.Clone()
	c.Weights[0] = 99
	c.Actions[0].Cost = 99
	if p.Weights[0] != 1 || p.Actions[0].Cost != 1 {
		t.Fatal("Clone not deep")
	}
}

// TestSolveHandComputed verifies the DP against a fully hand-worked k=2
// instance.
func TestSolveHandComputed(t *testing.T) {
	p := &Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []Action{
			{Name: "treat-both", Set: SetOf(0, 1), Cost: 3, Treatment: true},
			{Name: "treat-0", Set: SetOf(0), Cost: 1, Treatment: true},
			{Name: "treat-1", Set: SetOf(1), Cost: 1, Treatment: true},
			{Name: "test-0", Set: SetOf(0), Cost: 1},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// C({0}): treat-both 3·1=3, treat-0 1·1=1 → 1. Same for {1}.
	if sol.C[0b01] != 1 || sol.C[0b10] != 1 {
		t.Fatalf("singletons: C=%d,%d want 1,1", sol.C[0b01], sol.C[0b10])
	}
	// C(U): treat-both 6; treat-0 2+C({1})=3; treat-1 3; test 2+1+1=4 → 3.
	if sol.Cost != 3 {
		t.Fatalf("C(U) = %d, want 3", sol.Cost)
	}
	if sol.C[0] != 0 {
		t.Fatal("C(empty) != 0")
	}
	chosen := p.Actions[sol.Choice[0b11]]
	if !chosen.Treatment || chosen.Set.Size() != 1 {
		t.Fatalf("optimal root should be a singleton treatment, got %+v", chosen)
	}
}

func TestSolveSingletonUniverse(t *testing.T) {
	p := &Problem{
		K:       1,
		Weights: []uint64{5},
		Actions: []Action{
			{Name: "a", Set: SetOf(0), Cost: 7, Treatment: true},
			{Name: "b", Set: SetOf(0), Cost: 3, Treatment: true},
			{Name: "useless-test", Set: SetOf(0), Cost: 1},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 15 { // min(7,3)·5
		t.Fatalf("Cost = %d, want 15", sol.Cost)
	}
}

func TestInadequateInstance(t *testing.T) {
	// Object 2 is covered by no treatment.
	p := &Problem{
		K:       3,
		Weights: []uint64{1, 1, 1},
		Actions: []Action{
			{Set: SetOf(0, 1), Cost: 1, Treatment: true},
			{Set: SetOf(0, 2), Cost: 1},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Adequate() {
		t.Fatal("inadequate instance reported adequate")
	}
	if _, err := sol.Tree(p); err == nil {
		t.Fatal("Tree succeeded on inadequate instance")
	}
	if !strings.Contains(sol.String(), "inadequate") {
		t.Errorf("String = %q", sol.String())
	}
}

// TestZeroCostTreatmentDegeneracy: a free full-universe treatment makes the
// whole problem free — the DP must find cost 0, not loop.
func TestZeroCostTreatmentDegeneracy(t *testing.T) {
	p := &Problem{
		K:       3,
		Weights: []uint64{4, 5, 6},
		Actions: []Action{
			{Set: Universe(3), Cost: 0, Treatment: true},
			{Set: SetOf(0), Cost: 9},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 0 {
		t.Fatalf("Cost = %d, want 0", sol.Cost)
	}
}

func TestSelfReferenceExclusion(t *testing.T) {
	// A test whose set contains all of U never splits and must be excluded:
	// with only that test and one treatment, the treatment must be chosen.
	p := &Problem{
		K:       2,
		Weights: []uint64{1, 2},
		Actions: []Action{
			{Name: "full-test", Set: SetOf(0, 1), Cost: 1},
			{Name: "t", Set: SetOf(0, 1), Cost: 10, Treatment: true},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 30 {
		t.Fatalf("Cost = %d, want 30 (treatment only)", sol.Cost)
	}
	if sol.Choice[0b11] != 1 {
		t.Fatalf("Choice = %d, want the treatment", sol.Choice[0b11])
	}
}

func TestSolveMatchesMemoAndExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		k := rng.Intn(3) + 2 // 2..4
		p := randomProblem(rng, k, rng.Intn(6)+2)
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		memo, err := SolveMemo(p)
		if err != nil {
			t.Fatal(err)
		}
		if memo != sol.Cost {
			t.Fatalf("trial %d: Solve=%d SolveMemo=%d", trial, sol.Cost, memo)
		}
		exh, err := SolveExhaustive(p)
		if err != nil {
			t.Fatal(err)
		}
		if exh != sol.Cost {
			t.Fatalf("trial %d: Solve=%d SolveExhaustive=%d", trial, sol.Cost, exh)
		}
	}
}

// TestMemoAndExhaustiveHonorCancellation: the Ctx variants must notice an
// already-cancelled context and return its error instead of sweeping.
func TestMemoAndExhaustiveHonorCancellation(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(3)), 4, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveMemoCtx(ctx, p); err != context.Canceled {
		t.Fatalf("SolveMemoCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := SolveExhaustiveCtx(ctx, p); err != context.Canceled {
		t.Fatalf("SolveExhaustiveCtx on cancelled ctx: err = %v, want context.Canceled", err)
	}
}

func TestExhaustiveRejectsLargeK(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(1)), 9, 3)
	if _, err := SolveExhaustive(p); err == nil {
		t.Fatal("exhaustive accepted K=9")
	}
}

// TestTreeCostMatchesDP: the independently evaluated cost of the extracted
// optimal tree must equal C(U) exactly.
func TestTreeCostMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 80; trial++ {
		k := rng.Intn(5) + 2 // 2..6
		p := randomProblem(rng, k, rng.Intn(8)+2)
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := sol.Tree(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := TreeCost(p, tree)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != sol.Cost {
			t.Fatalf("trial %d: TreeCost=%d, C(U)=%d", trial, got, sol.Cost)
		}
		if d := tree.Depth(); d < 1 || d > 2*k+2 {
			t.Fatalf("trial %d: implausible depth %d", trial, d)
		}
		if tree.CountNodes() < 1 {
			t.Fatal("empty tree")
		}
	}
}

func TestTreeCostRejectsBadTree(t *testing.T) {
	p := &Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []Action{
			{Set: SetOf(0), Cost: 1, Treatment: true},
			{Set: SetOf(1), Cost: 1, Treatment: true},
		},
	}
	// Tree that treats only object 0.
	bad := &Node{Action: 0, Set: Universe(2)}
	if _, err := TreeCost(p, bad); err == nil {
		t.Fatal("TreeCost accepted a tree that strands object 1")
	}
}

func TestRenderShowsStructure(t *testing.T) {
	p := &Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []Action{
			{Name: "probe", Set: SetOf(0), Cost: 1},
			{Name: "fix0", Set: SetOf(0), Cost: 2, Treatment: true},
			{Name: "fix1", Set: SetOf(1), Cost: 2, Treatment: true},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := sol.Tree(p)
	if err != nil {
		t.Fatal(err)
	}
	out := tree.Render(p)
	for _, want := range []string{"treat", "==> treats"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestGreedyValidAndNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	beats := 0
	for trial := 0; trial < 100; trial++ {
		k := rng.Intn(5) + 2
		p := randomProblem(rng, k, rng.Intn(8)+2)
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		g, err := GreedyCost(p)
		if err != nil {
			t.Fatalf("trial %d: greedy failed: %v", trial, err)
		}
		if g < sol.Cost {
			beats++
			t.Errorf("trial %d: greedy %d beat optimal %d", trial, g, sol.Cost)
		}
	}
	if beats > 0 {
		t.Fatalf("greedy beat the optimum %d times", beats)
	}
}

func TestGreedyOptimalOnEasyInstance(t *testing.T) {
	// One obviously dominant treatment: greedy must find the optimum.
	p := &Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []Action{
			{Set: SetOf(0, 1), Cost: 1, Treatment: true},
			{Set: SetOf(0), Cost: 50, Treatment: true},
		},
	}
	sol, _ := Solve(p)
	g, err := GreedyCost(p)
	if err != nil {
		t.Fatal(err)
	}
	if g != sol.Cost {
		t.Fatalf("greedy %d != optimal %d", g, sol.Cost)
	}
}

func TestBinaryTestingRecoversIdentification(t *testing.T) {
	// 4 equally likely objects, two unit-cost bit tests, expensive singleton
	// treatments: optimum is test both bits then treat = (1+1+100) per object.
	tests := []Action{
		{Name: "bit0", Set: SetOf(0, 1), Cost: 1},
		{Name: "bit1", Set: SetOf(0, 2), Cost: 1},
	}
	p := BinaryTesting([]uint64{1, 1, 1, 1}, tests, 100)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Cost != 408 {
		t.Fatalf("Cost = %d, want 408", sol.Cost)
	}
	tree, err := sol.Tree(p)
	if err != nil {
		t.Fatal(err)
	}
	if p.Actions[tree.Action].Treatment || tree.Depth() != 3 {
		t.Fatalf("expected test-test-treat structure, depth %d", tree.Depth())
	}
}

// Property: scaling every weight by a constant scales C(U) by the same
// constant (cost is linear in the weight vector).
func TestPropertyWeightLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64, scale8 uint8) bool {
		scale := uint64(scale8%7) + 1
		p := randomProblem(rand.New(rand.NewSource(seed)), 3, 5)
		sol1, err := Solve(p)
		if err != nil {
			return false
		}
		q := p.Clone()
		for j := range q.Weights {
			q.Weights[j] *= scale
		}
		sol2, err := Solve(q)
		if err != nil {
			return false
		}
		return sol2.Cost == sol1.Cost*scale
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: adding an action never increases the optimal cost.
func TestPropertyActionMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	f := func(seed int64, setBits uint8, cost8 uint8, treat bool) bool {
		p := randomProblem(rand.New(rand.NewSource(seed)), 4, 4)
		sol1, err := Solve(p)
		if err != nil {
			return false
		}
		extra := Action{
			Set:       Set(setBits)&Universe(4) | 1,
			Cost:      uint64(cost8%50) + 1,
			Treatment: treat,
		}
		q := p.Clone()
		q.Actions = append(q.Actions, extra)
		sol2, err := Solve(q)
		if err != nil {
			return false
		}
		return sol2.Cost <= sol1.Cost
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: any valid procedure tree costs at least C(U) — here the greedy
// tree serves as the arbitrary valid tree.
func TestPropertyDPIsLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	f := func(seed int64) bool {
		p := randomProblem(rand.New(rand.NewSource(seed)), 4, 6)
		sol, err := Solve(p)
		if err != nil {
			return false
		}
		g, err := GreedyCost(p)
		if err != nil {
			return false
		}
		return g >= sol.Cost
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSaturatingArithmetic(t *testing.T) {
	if SatAdd(Inf, 1) != Inf || SatAdd(1, Inf) != Inf {
		t.Error("SatAdd does not absorb Inf")
	}
	if SatAdd(^uint64(0)-1, 5) != Inf {
		t.Error("SatAdd overflow not saturated")
	}
	if SatMul(Inf, 2) != Inf || SatMul(0, Inf) != 0 {
		t.Error("SatMul Inf handling wrong")
	}
	if SatMul(1<<33, 1<<33) != Inf {
		t.Error("SatMul overflow not saturated")
	}
	if SatMul(3, 4) != 12 || SatAdd(3, 4) != 7 {
		t.Error("plain arithmetic broken")
	}
}

func TestOpsCounting(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(3)), 4, 5)
	sol, _ := Solve(p)
	// (2^k - 1) subsets × (N evaluations + 1 final min).
	want := int64((1<<4 - 1) * (len(p.Actions) + 1))
	if sol.Ops != want {
		t.Fatalf("Ops = %d, want %d", sol.Ops, want)
	}
}

func BenchmarkSolveK12(b *testing.B) {
	p := randomProblem(rand.New(rand.NewSource(1)), 12, 24)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveK16(b *testing.B) {
	p := randomProblem(rand.New(rand.NewSource(2)), 16, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	p := randomProblem(rand.New(rand.NewSource(3)), 16, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := GreedyCost(p); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTreeCostCtxCancelled: pricing honors its context — an already-ended
// context fails at entry, and a long walk is interrupted at a poll stride.
func TestTreeCostCtxCancelled(t *testing.T) {
	p := &Problem{
		K:       1,
		Weights: []uint64{1},
		Actions: []Action{
			{Set: SetOf(), Cost: 1}, // test matching nothing: walk goes Neg
			{Set: SetOf(0), Cost: 1, Treatment: true},
		},
	}
	// A handcrafted chain longer than one poll stride: TreeCost's walk
	// follows Neg links without shrinking the set (such a tree is invalid —
	// certify would reject it — but pricing must stay interruptible even on
	// adversarial shapes, which is exactly when it matters).
	leaf := &Node{Action: 1, Set: SetOf(0)}
	root := leaf
	for i := 0; i < 5000; i++ {
		root = &Node{Action: 0, Set: SetOf(0), Neg: root}
	}
	if _, err := TreeCost(p, root); err != nil {
		t.Fatalf("uncancelled pricing failed: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TreeCostCtx(ctx, p, root); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled pricing returned %v, want context.Canceled", err)
	}
}
