package bvmalg

import (
	"math/rand"
	"testing"

	"repro/internal/bvm"
)

func TestSubWord(t *testing.T) {
	m := newMachine(t, 2)
	x, y, dst := Word{0, 10}, Word{10, 10}, Word{20, 10}
	rng := rand.New(rand.NewSource(21))
	xs, ys := randWords(rng, m.N(), 1024), randWords(rng, m.N(), 1024)
	loadWords(m, x, xs)
	loadWords(m, y, ys)
	SubWord(m, dst, x, y)
	borrow := m.Peek(bvm.B)
	for pe, got := range readWords(m, dst) {
		want := (xs[pe] - ys[pe]) & 0x3ff
		if got != want {
			t.Fatalf("PE %d: %d-%d = %d, want %d", pe, xs[pe], ys[pe], got, want)
		}
		if borrow.Get(pe) != (xs[pe] < ys[pe]) {
			t.Fatalf("PE %d: borrow %v for %d-%d", pe, borrow.Get(pe), xs[pe], ys[pe])
		}
	}
	// Aliasing dst = x.
	loadWords(m, x, xs)
	SubWord(m, x, x, y)
	for pe, got := range readWords(m, x) {
		if want := (xs[pe] - ys[pe]) & 0x3ff; got != want {
			t.Fatalf("aliased PE %d: got %d want %d", pe, got, want)
		}
	}
}

func TestEqualWord(t *testing.T) {
	m := newMachine(t, 2)
	x, y := Word{0, 8}, Word{8, 8}
	rng := rand.New(rand.NewSource(22))
	xs, ys := randWords(rng, m.N(), 256), randWords(rng, m.N(), 256)
	for pe := 0; pe < m.N(); pe += 4 {
		ys[pe] = xs[pe] // force equal pairs
	}
	loadWords(m, x, xs)
	loadWords(m, y, ys)
	EqualWord(m, x, y)
	b := m.Peek(bvm.B)
	for pe := 0; pe < m.N(); pe++ {
		if b.Get(pe) != (xs[pe] == ys[pe]) {
			t.Fatalf("PE %d: equal(%d,%d) = %v", pe, xs[pe], ys[pe], b.Get(pe))
		}
	}
}

func TestNotWord(t *testing.T) {
	m := newMachine(t, 1)
	x, dst := Word{0, 6}, Word{6, 6}
	vals := []uint64{0, 63, 21, 42, 1, 2, 3, 4}
	loadWords(m, x, vals)
	NotWord(m, dst, x)
	for pe, got := range readWords(m, dst) {
		if want := ^vals[pe] & 63; got != want {
			t.Fatalf("PE %d: ^%d = %d, want %d", pe, vals[pe], got, want)
		}
	}
}

// TestSubAddInverse: (x + y) - y == x for all PEs (words compose).
func TestSubAddInverse(t *testing.T) {
	m := newMachine(t, 2)
	x, y, tmp := Word{0, 9}, Word{9, 9}, Word{18, 9}
	rng := rand.New(rand.NewSource(23))
	xs, ys := randWords(rng, m.N(), 512), randWords(rng, m.N(), 512)
	loadWords(m, x, xs)
	loadWords(m, y, ys)
	AddWord(m, tmp, x, y)
	SubWord(m, tmp, tmp, y)
	for pe, got := range readWords(m, tmp) {
		if got != xs[pe] {
			t.Fatalf("PE %d: (x+y)-y = %d, want %d", pe, got, xs[pe])
		}
	}
}
