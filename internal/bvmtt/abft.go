package bvmtt

import (
	"math/bits"

	"repro/internal/bitvec"
	"repro/internal/bvm"
	"repro/internal/bvmalg"
	"repro/internal/certify"
	"repro/internal/core"
)

// This file is the BVM engine's algorithm-based fault tolerance layer
// (docs/RESILIENCE.md, "Silent data corruption"). The bit-level simulation is
// ~three orders of magnitude slower than host arithmetic, so a host-side
// shadow DP — one sequential sweep amortized over the level barriers — costs
// almost nothing next to the program it guards. At every barrier the layer
// keeps a running FNV checksum of the frozen region of the machine's M word
// plane and compares it to the checksum of the trusted host mirror; the new
// level, the still-at-infinity future region, the mark register, and the
// PS/TP planes are verified directly against host recomputation (the
// probability-conservation identity p(S∩T)+p(S−T) = p(S) holds exactly for
// the host's sums, so any machine PS deviation is corruption). Word
// saturation is handled by clamping: every machine word must equal the
// host's uint64 value clamped to the all-ones word infinity — min and
// saturating +/× all commute with that monotone clamp, so the comparison is
// exact, not approximate.
//
// On a violation the machine is rebuilt by host pokes from the mirror — the
// frontier-restore machinery extended to every recomputable plane, including
// the streamed-in problem planes — and the round re-runs once. A fault that
// re-asserts itself (a stuck PE bit is re-forced after every instruction, a
// broken lateral zeroes every route through it) fails the second check and
// the solve refuses with a certify.LevelError rather than return a wrong
// answer.

// machineHook, when non-nil, runs on every machine bvmtt builds, before any
// instruction executes. ttserve's -chaos-bvm-fault flag and the chaos tests
// use it to inject the fault kernels of internal/bvm/fault.go into real
// solves.
var machineHook func(*bvm.Machine)

// SetMachineHook installs (or, with nil, clears) the machine hook and
// returns a restore func. Install before serving traffic; the hook is read
// by every solve without synchronization.
func SetMachineHook(h func(*bvm.Machine)) (restore func()) {
	prev := machineHook
	machineHook = h
	return func() { machineHook = prev }
}

// abftCorruptHook, when non-nil (tests only), runs after every completed
// round with the live machine, so tests can model transient host-visible
// corruption as well as the persistent fault kernels.
var abftCorruptHook func(round int, m *bvm.Machine)

// abft is the host-side trusted shadow of a verified BVM solve.
type abft struct {
	actions []core.Action // real actions
	paddedA []core.Action // the padded table streamed into the machine
	psum    []uint64      // host p(S), uint64
	c       []uint64      // trusted mirror of C, core.Inf semantics
	k, logN int
	width   int
	inf     uint64 // the width-bit all-ones infinity
	nReal   int
}

func newABFT(p *core.Problem, paddedA []core.Action, logN, width int, inf uint64) *abft {
	size := 1 << uint(p.K)
	a := &abft{
		actions: p.Actions,
		paddedA: paddedA,
		psum:    make([]uint64, size),
		c:       make([]uint64, size),
		k:       p.K,
		logN:    logN,
		width:   width,
		inf:     inf,
		nReal:   len(p.Actions),
	}
	for s := 1; s < size; s++ {
		low := s & -s
		a.psum[s] = core.SatAdd(a.psum[s&(s-1)], p.Weights[bits.TrailingZeros(uint(low))])
	}
	for s := 1; s < size; s++ {
		a.c[s] = core.Inf
	}
	return a
}

// clamp maps a host uint64 cost onto the machine's word range: the machine's
// saturating width-bit arithmetic computes exactly the clamp of the true
// value (the clamp is monotone, so it commutes with min, + and ×).
func (a *abft) clamp(v uint64) uint64 {
	if v >= a.inf {
		return a.inf
	}
	return v
}

// seed absorbs a restored frontier into the mirror (checkpoint.Decode has
// already re-derived every entry from the recurrence).
func (a *abft) seed(f *core.Frontier) {
	for s := range a.c {
		if bits.OnesCount(uint(s)) <= f.Level {
			a.c[s] = f.C[s]
		}
	}
}

// advance computes the true level-j values into the mirror from the
// recurrence over the already-trusted lower levels, in host arithmetic.
func (a *abft) advance(j int) {
	size := 1 << uint(a.k)
	v := uint32(1)<<uint(j) - 1
	for v < uint32(size) {
		s := core.Set(v)
		best := core.Inf
		for _, act := range a.actions {
			inter := s & act.Set
			diff := s &^ act.Set
			cost := core.SatMul(act.Cost, a.psum[s])
			if act.Treatment {
				if inter == 0 {
					cost = core.Inf
				} else {
					cost = core.SatAdd(cost, a.c[diff])
				}
			} else {
				if inter == 0 || diff == 0 {
					cost = core.Inf
				} else {
					cost = core.SatAdd(cost, core.SatAdd(a.c[inter], a.c[diff]))
				}
			}
			if cost < best {
				best = cost
			}
		}
		a.c[v] = best
		c := v & -v
		r := v + c
		v = (r^v)>>2/c | r
	}
}

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnv(h, v uint64) uint64 {
	for b := 0; b < 8; b++ {
		h = (h ^ (v >> uint(8*b) & 0xff)) * fnvPrime
	}
	return h
}

// frozenChecksums returns the running checksums of the frozen region
// (popcount < j) of the machine's M plane and of the host mirror, in PE
// order. Equal sums mean the frozen prefix is intact without comparing it
// cell by cell; verify falls back to localization only on mismatch.
func (a *abft) frozenChecksums(m *bvm.Machine, lay layout, j int) (machine, host uint64) {
	machine, host = fnvOffset, fnvOffset
	for pe := 0; pe < m.N(); pe++ {
		s := pe >> uint(a.logN)
		if bits.OnesCount(uint(s)) >= j {
			continue
		}
		machine = fnv(machine, m.Uint(lay.m.Base, a.width, pe))
		host = fnv(host, a.clamp(a.c[s]))
	}
	return machine, host
}

// verify checks the machine against the mirror at barrier j: the frozen
// M-plane region by running checksum (localized on mismatch), the new level
// and future region directly, the mark register against the #S = j
// predicate, and the PS/TP planes against the host weights. Violations are
// capped at 8 — one is already fatal.
func (a *abft) verify(m *bvm.Machine, lay layout, j int) *certify.Report {
	r := &certify.Report{}
	msum, hsum := a.frozenChecksums(m, lay, j)
	checkFrozen := msum != hsum
	mark := m.Peek(bvm.R(lay.mark))
	iMask := 1<<uint(a.logN) - 1
	for pe := 0; pe < m.N() && len(r.Violations) < 8; pe++ {
		s := pe >> uint(a.logN)
		i := pe & iMask
		pc := bits.OnesCount(uint(s))
		set := core.Set(s)
		if mark.Get(pe) != (pc == j) {
			r.Violations = append(r.Violations, certify.Violation{
				Kind: certify.BadStructure, Set: set, Action: i,
				Detail: "mark register off the #S=j wavefront"})
		}
		if ps := m.Uint(lay.ps.Base, a.width, pe); ps != a.clamp(a.psum[s]) {
			r.Violations = append(r.Violations, certify.Violation{
				Kind: certify.BadConservation, Set: set, Action: i, Got: ps, Want: a.clamp(a.psum[s]),
				Detail: "machine p(S) plane disagrees with the host weights"})
		}
		wantTP := a.clamp(core.SatMul(a.paddedA[i].Cost, a.psum[s]))
		if tp := m.Uint(lay.tp.Base, a.width, pe); tp != wantTP {
			r.Violations = append(r.Violations, certify.Violation{
				Kind: certify.BadCell, Set: set, Action: i, Got: tp, Want: wantTP,
				Detail: "machine t_i·p(S) plane disagrees with the host recomputation"})
		}
		switch {
		case pc > j:
			if v := m.Uint(lay.m.Base, a.width, pe); v != a.inf {
				r.Violations = append(r.Violations, certify.Violation{
					Kind: certify.BadCell, Set: set, Action: i, Got: v, Want: a.inf,
					Detail: "not-yet-active cell disturbed"})
			}
		case pc == j || checkFrozen:
			if v := m.Uint(lay.m.Base, a.width, pe); v != a.clamp(a.c[s]) {
				detail := "cell disagrees with the host recurrence"
				if pc < j {
					detail = "frozen cell disagrees with the checksummed mirror"
				}
				r.Violations = append(r.Violations, certify.Violation{
					Kind: certify.BadCell, Set: set, Action: i, Got: v, Want: a.clamp(a.c[s]),
					Detail: detail})
			}
		}
	}
	if checkFrozen && r.OK() {
		// The checksums disagreed but no cell did: the checksum itself was
		// computed from a state that changed under us — report it rather
		// than certify a machine we could not pin down.
		r.Violations = append(r.Violations, certify.Violation{
			Kind: certify.BadCell, Action: -1, Got: msum, Want: hsum,
			Detail: "frozen M-plane checksum mismatch without a localizable cell"})
	}
	return r
}

// repair rebuilds every recomputable machine plane from the trusted mirror
// as if round j-1 had just completed: the M plane and mark register (the
// frontier-restore poke), the PS/TP planes, and the streamed-in problem
// planes (processor IDs, T_i membership, kind/padding flags, costs). Only
// state a re-run recomputes anyway (R, Q, scratch, E) is left alone. Host
// pokes execute no instructions, so a stuck bit — re-forced after every
// instruction — survives repair and is caught by the re-verify.
func (a *abft) repair(m *bvm.Machine, lay layout, q, j int) {
	n := m.N()
	iMask := 1<<uint(a.logN) - 1
	mark := bitvec.New(n)
	for pe := 0; pe < n; pe++ {
		s := pe >> uint(a.logN)
		i := pe & iMask
		pc := bits.OnesCount(uint(s))
		mark.Set(pe, pc == j-1)
		w := a.inf
		if pc <= j-1 {
			w = a.clamp(a.c[s])
		}
		m.SetUint(lay.m.Base, a.width, pe, w)
		m.SetUint(lay.ps.Base, a.width, pe, a.clamp(a.psum[s]))
		m.SetUint(lay.tp.Base, a.width, pe, a.clamp(core.SatMul(a.paddedA[i].Cost, a.psum[s])))
		m.SetUint(lay.cost.Base, a.width, pe, a.paddedA[i].Cost)
	}
	m.Poke(bvm.R(lay.mark), mark)
	m.Poke(bvm.R(lay.rcv), bitvec.New(n))
	pokePlane := func(reg int, bit func(pe int) bool) {
		v := bitvec.New(n)
		for pe := 0; pe < n; pe++ {
			v.Set(pe, bit(pe))
		}
		m.Poke(bvm.R(reg), v)
	}
	for b := 0; b < q; b++ {
		b := b
		pokePlane(lay.addr+b, func(pe int) bool { return pe>>uint(b)&1 == 1 })
	}
	for e := 0; e < a.k; e++ {
		e := e
		pokePlane(lay.tmem+e, func(pe int) bool { return a.paddedA[pe&iMask].Set.Has(e) })
	}
	pokePlane(lay.istreat, func(pe int) bool { return a.paddedA[pe&iMask].Treatment })
	pokePlane(lay.padded, func(pe int) bool { return pe&iMask >= a.nReal })
}

// wordRegs lists a word's register indices for mark annotations.
func wordRegs(w bvmalg.Word) []int {
	regs := make([]int, w.Width)
	for b := range regs {
		regs[b] = w.Base + b
	}
	return regs
}
