package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/instio"
)

// routeProblem is a small adequate instance whose optimal procedure mixes
// tests and treatments, so routed sessions take real multi-step walks.
func routeProblem() *core.Problem {
	return &core.Problem{
		K:       4,
		Weights: []uint64{5, 3, 2, 1},
		Actions: []core.Action{
			{Name: "tA", Set: core.SetOf(0, 1), Cost: 2},
			{Name: "tB", Set: core.SetOf(0, 2), Cost: 3},
			{Name: "r0", Set: core.SetOf(0), Cost: 4, Treatment: true},
			{Name: "r1", Set: core.SetOf(1), Cost: 4, Treatment: true},
			{Name: "r2", Set: core.SetOf(2), Cost: 4, Treatment: true},
			{Name: "r3", Set: core.SetOf(3), Cost: 4, Treatment: true},
			{Name: "rAll", Set: core.SetOf(0, 1, 2, 3), Cost: 20, Treatment: true},
		},
	}
}

// postJSON posts v (marshaled) and decodes the reply into out (if non-nil),
// returning the status code.
func postJSON(t *testing.T, url string, v any, out any) int {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// publishPolicy publishes an instance and returns the policy response.
func publishPolicy(t *testing.T, ts *httptest.Server, query string, p *core.Problem) *PolicyResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/policy"+query, "application/json", bytes.NewReader(instanceJSON(t, p)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("publish: status %d: %s", resp.StatusCode, b)
	}
	var pr PolicyResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return &pr
}

// outcomeFor simulates the physical world for a session whose faulty
// object is obj: a test is positive iff obj is in its set; a treatment
// cures iff it covers obj.
func outcomeFor(pr *PolicyResponse, action int32, obj int) bool {
	for _, o := range pr.Actions[action].Objects {
		if o == obj {
			return true
		}
	}
	return false
}

func TestPolicyPublishAndRouteSolo(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := routeProblem()
	pr := publishPolicy(t, ts, "", p)
	if pr.Version != 1 || pr.K != p.K || pr.Nodes == 0 || len(pr.Actions) != len(p.Actions) {
		t.Fatalf("publish response: %+v", pr)
	}
	// Route one session per object; each must end at a leaf treating it and
	// pay, summed over objects, exactly the certified optimum.
	var total uint64
	for obj := 0; obj < p.K; obj++ {
		var rr RouteResponse
		if st := postJSON(t, ts.URL+"/v1/route", RouteRequest{Policy: pr.Policy}, &rr); st != http.StatusOK {
			t.Fatalf("start: status %d", st)
		}
		var cost uint64
		for steps := 0; ; steps++ {
			if steps > pr.Nodes {
				t.Fatalf("object %d: session exceeded node count", obj)
			}
			cost += pr.Actions[rr.Action].Cost
			out := outcomeFor(pr, rr.Action, obj)
			treating := pr.Actions[rr.Action].Treatment && out
			var next RouteResponse
			if st := postJSON(t, ts.URL+"/v1/route", RouteRequest{Cursor: rr.Cursor, Outcome: &out}, &next); st != http.StatusOK {
				t.Fatalf("object %d step: status %d", obj, st)
			}
			if next.Done {
				if !treating {
					t.Fatalf("object %d: done after an action that did not treat it", obj)
				}
				break
			}
			rr = next
		}
		total += cost * p.Weights[obj]
	}
	if total != pr.Cost {
		t.Fatalf("routed total %d != certified optimum %d", total, pr.Cost)
	}
}

func TestPolicyVersioningAndList(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := routeProblem()
	pr1 := publishPolicy(t, ts, "", p)
	pr2 := publishPolicy(t, ts, "", p)
	if pr1.Policy != pr2.Policy || pr1.Version != 1 || pr2.Version != 2 {
		t.Fatalf("versions: %d then %d", pr1.Version, pr2.Version)
	}
	resp, err := http.Get(ts.URL + "/v1/policies")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Policies []struct {
			Policy  string `json:"policy"`
			Version uint32 `json:"version"`
		} `json:"policies"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Policies) != 2 {
		t.Fatalf("listed %d policies, want 2", len(list.Policies))
	}
	// Starting with version pinned reaches the pinned artifact.
	var rr RouteResponse
	if st := postJSON(t, ts.URL+"/v1/route", RouteRequest{Policy: pr1.Policy, Version: 1}, &rr); st != http.StatusOK || rr.Version != 1 {
		t.Fatalf("pinned start: status %d version %d", st, rr.Version)
	}
}

func TestRouteRequestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	pr := publishPolicy(t, ts, "", routeProblem())
	var rr RouteResponse
	if st := postJSON(t, ts.URL+"/v1/route", RouteRequest{Policy: pr.Policy}, &rr); st != http.StatusOK {
		t.Fatalf("start: %d", st)
	}
	yes := true
	cases := []struct {
		name string
		req  RouteRequest
		want int
	}{
		{"empty", RouteRequest{}, http.StatusBadRequest},
		{"unknown policy", RouteRequest{Policy: "nope"}, http.StatusNotFound},
		{"unknown version", RouteRequest{Policy: pr.Policy, Version: 99}, http.StatusNotFound},
		{"step without outcome", RouteRequest{Cursor: rr.Cursor}, http.StatusBadRequest},
		{"start and step at once", RouteRequest{Policy: pr.Policy, Cursor: rr.Cursor, Outcome: &yes}, http.StatusBadRequest},
		{"garbage cursor", RouteRequest{Cursor: "not-a-cursor", Outcome: &yes}, http.StatusBadRequest},
	}
	for _, c := range cases {
		if st := postJSON(t, ts.URL+"/v1/route", c.req, nil); st != c.want {
			t.Errorf("%s: status %d, want %d", c.name, st, c.want)
		}
	}
}

func TestRouteCursorTamperRejected(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	pr := publishPolicy(t, ts, "", routeProblem())
	var rr RouteResponse
	if st := postJSON(t, ts.URL+"/v1/route", RouteRequest{Policy: pr.Policy}, &rr); st != http.StatusOK {
		t.Fatalf("start: %d", st)
	}
	yes := true
	before := s.Metrics().RouteBadCursor.Load()
	for i := 0; i < len(rr.Cursor); i += 7 {
		mut := []byte(rr.Cursor)
		if mut[i] == 'A' {
			mut[i] = 'B'
		} else {
			mut[i] = 'A'
		}
		if string(mut) == rr.Cursor {
			continue
		}
		if st := postJSON(t, ts.URL+"/v1/route", RouteRequest{Cursor: string(mut), Outcome: &yes}, nil); st != http.StatusBadRequest {
			t.Fatalf("tampered cursor at %d: status %d, want 400", i, st)
		}
	}
	if s.Metrics().RouteBadCursor.Load() == before {
		t.Fatal("bad-cursor counter did not move")
	}
	// The untouched cursor still works afterwards.
	if st := postJSON(t, ts.URL+"/v1/route", RouteRequest{Cursor: rr.Cursor, Outcome: &yes}, nil); st != http.StatusOK {
		t.Fatalf("original cursor: status %d", st)
	}
}

func TestRouteImpossibleOutcome(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// K=1 with a single full-cover treatment: the root treats the only
	// object, so a negative outcome is impossible.
	p := &core.Problem{
		K:       1,
		Weights: []uint64{1},
		Actions: []core.Action{{Name: "fix", Set: core.SetOf(0), Cost: 1, Treatment: true}},
	}
	pr := publishPolicy(t, ts, "", p)
	var rr RouteResponse
	if st := postJSON(t, ts.URL+"/v1/route", RouteRequest{Policy: pr.Policy}, &rr); st != http.StatusOK {
		t.Fatalf("start: %d", st)
	}
	no := false
	if st := postJSON(t, ts.URL+"/v1/route", RouteRequest{Cursor: rr.Cursor, Outcome: &no}, nil); st != http.StatusConflict {
		t.Fatalf("impossible outcome: status %d, want 409", st)
	}
	yes := true
	var done RouteResponse
	if st := postJSON(t, ts.URL+"/v1/route", RouteRequest{Cursor: rr.Cursor, Outcome: &yes}, &done); st != http.StatusOK || !done.Done {
		t.Fatalf("possible outcome: status %d done=%v", st, done.Done)
	}
}

func TestRouteEvictedPolicyGone(t *testing.T) {
	// A policy budget that fits exactly one artifact: publishing a second
	// policy evicts the first, and its outstanding cursors answer 410.
	// Probe the artifact size first (it depends on the encoding).
	_, probeTS := newTestServer(t, Config{})
	probe := publishPolicy(t, probeTS, "", routeProblem())
	_, ts := newTestServer(t, Config{PolicyBytes: probe.Bytes + probe.Bytes/2})
	pA := routeProblem()
	prA := publishPolicy(t, ts, "", pA)
	var rr RouteResponse
	if st := postJSON(t, ts.URL+"/v1/route", RouteRequest{Policy: prA.Policy}, &rr); st != http.StatusOK {
		t.Fatalf("start: %d", st)
	}
	pB := routeProblem()
	pB.Weights = []uint64{1, 2, 3, 4} // different instance, different hash
	prB := publishPolicy(t, ts, "", pB)
	if prB.Policy == prA.Policy {
		t.Fatal("expected a distinct policy id")
	}
	yes := true
	if st := postJSON(t, ts.URL+"/v1/route", RouteRequest{Cursor: rr.Cursor, Outcome: &yes}, nil); st != http.StatusGone {
		t.Fatalf("evicted policy cursor: status %d, want 410", st)
	}
	if st := postJSON(t, ts.URL+"/v1/route", RouteRequest{Policy: prA.Policy}, nil); st != http.StatusNotFound {
		t.Fatalf("evicted policy start: status %d, want 404", st)
	}
}

func TestRouteBatchLifecycle(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	p := routeProblem()
	pr := publishPolicy(t, ts, "", p)
	const n = 64
	var br RouteBatchResponse
	if st := postJSON(t, ts.URL+"/v1/route/batch", RouteBatchRequest{Policy: pr.Policy, Sessions: n}, &br); st != http.StatusOK {
		t.Fatalf("batch start: %d", st)
	}
	if len(br.Cursors) != n || len(br.Errors) != 0 {
		t.Fatalf("batch start: %d cursors, errors %v", len(br.Cursors), br.Errors)
	}
	// Session i diagnoses object i%K. Step all sessions in lockstep until
	// every one is done; a "wrong leaf" is a session that finishes on an
	// action not treating its object.
	type sess struct {
		cursor string
		action int32
		done   bool
	}
	live := make([]sess, n)
	for i := range live {
		live[i] = sess{cursor: br.Cursors[i], action: br.Actions[i]}
	}
	for round := 0; ; round++ {
		if round > pr.Nodes {
			t.Fatal("sessions did not converge")
		}
		var cursors []string
		var outcomes []bool
		var idx []int
		for i := range live {
			if live[i].done {
				continue
			}
			idx = append(idx, i)
			cursors = append(cursors, live[i].cursor)
			outcomes = append(outcomes, outcomeFor(pr, live[i].action, i%p.K))
		}
		if len(idx) == 0 {
			break
		}
		var step RouteBatchResponse
		if st := postJSON(t, ts.URL+"/v1/route/batch", RouteBatchRequest{Cursors: cursors, Outcomes: outcomes}, &step); st != http.StatusOK {
			t.Fatalf("batch step: %d", st)
		}
		if len(step.Errors) != 0 {
			t.Fatalf("batch step errors: %v", step.Errors)
		}
		for j, i := range idx {
			if step.Done[j] {
				obj := i % p.K
				if !pr.Actions[live[i].action].Treatment || !outcomeFor(pr, live[i].action, obj) {
					t.Fatalf("session %d: wrong leaf (action %d)", i, live[i].action)
				}
				live[i].done = true
				continue
			}
			live[i].cursor = step.Cursors[j]
			live[i].action = step.Actions[j]
		}
	}
	if got := s.Metrics().RouteDone.Load(); got != n {
		t.Fatalf("route_done %d, want %d", got, n)
	}
}

func TestRouteBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{RouteMaxBatch: 8})
	pr := publishPolicy(t, ts, "", routeProblem())
	var br RouteBatchResponse
	if st := postJSON(t, ts.URL+"/v1/route/batch", RouteBatchRequest{Policy: pr.Policy, Sessions: 2}, &br); st != http.StatusOK {
		t.Fatalf("start: %d", st)
	}
	cases := []struct {
		name string
		req  RouteBatchRequest
		want int
	}{
		{"empty", RouteBatchRequest{}, http.StatusBadRequest},
		{"mixed", RouteBatchRequest{Policy: pr.Policy, Sessions: 1, Cursors: br.Cursors[:1], Outcomes: []bool{true}}, http.StatusBadRequest},
		{"mismatched arrays", RouteBatchRequest{Cursors: br.Cursors[:2], Outcomes: []bool{true}}, http.StatusBadRequest},
		{"over budget", RouteBatchRequest{Policy: pr.Policy, Sessions: 9}, http.StatusUnprocessableEntity},
		{"unknown policy", RouteBatchRequest{Policy: "nope", Sessions: 1}, http.StatusNotFound},
	}
	for _, c := range cases {
		if st := postJSON(t, ts.URL+"/v1/route/batch", c.req, nil); st != c.want {
			t.Errorf("%s: status %d, want %d", c.name, st, c.want)
		}
	}
	// Per-member faults do not fail the batch: one good cursor, one bad.
	req := RouteBatchRequest{Cursors: []string{br.Cursors[0], "junk"}, Outcomes: []bool{true, true}}
	var step RouteBatchResponse
	if st := postJSON(t, ts.URL+"/v1/route/batch", req, &step); st != http.StatusOK {
		t.Fatalf("partial batch: %d", st)
	}
	if len(step.Errors) != 2 || step.Errors[0] != "" || step.Errors[1] == "" {
		t.Fatalf("partial batch errors: %v", step.Errors)
	}
}

func TestPublishRejectsInadequateAndDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	inadequate := &core.Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []core.Action{{Set: core.SetOf(0), Cost: 1, Treatment: true}},
	}
	resp, err := http.Post(ts.URL+"/v1/policy", "application/json", bytes.NewReader(instanceJSON(t, inadequate)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("inadequate publish: status %d, want 422", resp.StatusCode)
	}
	s.SetDraining(true)
	resp, err = http.Post(ts.URL+"/v1/policy", "application/json", bytes.NewReader(instanceJSON(t, routeProblem())))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining publish: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

// --- satellite: /v1/solve/batch 503s carry Retry-After on both shed paths ---

func postBatchRaw(t *testing.T, ts *httptest.Server, ps []*core.Problem) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := instio.WriteBatch(&buf, ps, ""); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/solve/batch", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	io.Copy(io.Discard, resp.Body)
	return resp
}

func TestBatchShedCarriesRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxPending: 1})
	// Capacity shed: fill the admission quota so acquire returns errBusy.
	s.pending.Add(int64(s.cfg.MaxPending))
	resp := postBatchRaw(t, ts, []*core.Problem{routeProblem()})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("busy batch: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("busy batch 503 is missing Retry-After")
	}
	s.pending.Add(-int64(s.cfg.MaxPending))

	// Draining shed: same contract through the same helper.
	s.SetDraining(true)
	resp = postBatchRaw(t, ts, []*core.Problem{routeProblem()})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining batch: status %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("draining batch Retry-After %q, want 1", ra)
	}
}

// --- satellite: /v1/eval structural validation and context plumbing ---

// TestEvalMalformedPolicy422 pins the fix for the /v1/eval hole: a policy
// whose choices do not strictly shrink the candidate set used to drive
// Policy.Tree into unbounded recursion (a remote crash); other structural
// defects were priced rather than rejected. All of them must be 422s now.
func TestEvalMalformedPolicy422(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	cases := map[string]string{
		// The old stack-overflow reproducer: the test covers the universe,
		// so the positive branch recurses on the same set forever.
		"non-shrinking test": `{
			"policy": {"k": 2,
				"actions": [{"objects": [0, 1], "cost": 1}, {"objects": [0, 1], "cost": 5, "treatment": true}],
				"choices": {"3": 0}},
			"weights": [1, 1]}`,
		// Missing state: the walk needs a choice for set {1} and there is none.
		"missing choice": `{
			"policy": {"k": 2,
				"actions": [{"objects": [0], "cost": 1, "treatment": true}],
				"choices": {"3": 0}},
			"weights": [1, 1]}`,
	}
	for name, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Errorf("%s: status %d, want 422 (%s)", name, resp.StatusCode, b)
		}
	}
	if s.Metrics().EvalMalformed.Load() == 0 {
		t.Fatal("eval_malformed counter did not move")
	}
	// A well-formed eval still works.
	good := `{
		"policy": {"k": 1,
			"actions": [{"objects": [0], "cost": 3, "treatment": true}],
			"choices": {"1": 0}},
		"weights": [2]}`
	resp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	var er EvalResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || er.Cost != 6 {
		t.Fatalf("good eval: status %d cost %d", resp.StatusCode, er.Cost)
	}
}

// TestEvalHonorsRequestContext pins the other half of the eval fix: the
// handler prices under the request context, so an abandoned request is not
// priced at all.
func TestEvalHonorsRequestContext(t *testing.T) {
	s := New(Config{Logger: testLogger()})
	defer s.Close()
	body := `{
		"policy": {"k": 1,
			"actions": [{"objects": [0], "cost": 3, "treatment": true}],
			"choices": {"1": 0}},
		"weights": [2]}`
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	req := httptest.NewRequest(http.MethodPost, "/v1/eval", strings.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled eval: status %d, want 503", rec.Code)
	}
	if s.Metrics().ClientGone.Load() == 0 {
		t.Fatal("client_gone counter did not move")
	}
}

// --- satellite: cache_bytes accounting parity between solo and batch ---

// TestCacheBytesBatchParity solves the same instances through /v1/solve on
// one server and through a single /v1/solve/batch (with a duplicated
// member) on another: the shared LRU must account identical bytes — each
// member charged exactly once, duplicates refreshing rather than
// re-charging.
func TestCacheBytesBatchParity(t *testing.T) {
	pA := routeProblem()
	pB := routeProblem()
	pB.Weights = []uint64{1, 2, 3, 4}

	solo, tsSolo := newTestServer(t, Config{})
	for _, p := range []*core.Problem{pA, pB} {
		if _, st := postSolve(t, tsSolo, "", instanceJSON(t, p)); st != http.StatusOK {
			t.Fatalf("solo solve: %d", st)
		}
	}
	soloBytes := cacheBytes(solo)
	if soloBytes == 0 {
		t.Fatal("solo path cached nothing")
	}

	batch, tsBatch := newTestServer(t, Config{})
	resp := postBatchRaw(t, tsBatch, []*core.Problem{pA, pB, pA}) // pA duplicated
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch solve: %d", resp.StatusCode)
	}
	if got := cacheBytes(batch); got != soloBytes {
		t.Fatalf("cache_bytes drift: batch %d vs solo %d", got, soloBytes)
	}
	// Re-solving a member solo must refresh, not re-charge.
	if _, st := postSolve(t, tsBatch, "", instanceJSON(t, pA)); st != http.StatusOK {
		t.Fatalf("re-solve: %d", st)
	}
	if got := cacheBytes(batch); got != soloBytes {
		t.Fatalf("cache_bytes drift after refresh: %d vs %d", got, soloBytes)
	}
}

func cacheBytes(s *Server) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.totalBytes
}

// statsHasRouteGauges keeps /v1/stats honest about the new plane.
func TestStatsExposeRouteGauges(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	publishPolicy(t, ts, "", routeProblem())
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"policies", "policy_bytes", "policy_publishes", "route_sessions", "route_steps", "route_bad_cursor", "eval_malformed"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("stats missing %q", key)
		}
	}
	if n, ok := stats["policies"].(float64); !ok || n != 1 {
		t.Errorf("stats policies = %v, want 1", stats["policies"])
	}
}
