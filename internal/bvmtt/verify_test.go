package bvmtt_test

import (
	"testing"

	"repro/internal/bvm"
	"repro/internal/bvmcheck"
	"repro/internal/bvmtt"
	"repro/internal/core"
)

// TestSolveRecordedVerifiesClean records the whole §6 test-and-treatment
// program and puts it through the static checker: well-formed, lint-clean,
// and with a static cost estimate that matches the dynamic counters of both
// the original run and a fresh replay.
func TestSolveRecordedVerifiesClean(t *testing.T) {
	p := &core.Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []core.Action{
			{Name: "treat-both", Set: core.SetOf(0, 1), Cost: 3, Treatment: true},
			{Name: "treat-0", Set: core.SetOf(0), Cost: 1, Treatment: true},
			{Name: "treat-1", Set: core.SetOf(1), Cost: 1, Treatment: true},
			{Name: "test-0", Set: core.SetOf(0), Cost: 1},
		},
	}
	res, err := bvmtt.SolveRecorded(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 3 {
		t.Fatalf("C(U) = %d, want 3 (recording must not perturb the run)", res.Cost)
	}
	if res.Program == nil {
		t.Fatal("SolveRecorded returned no program")
	}
	if int64(res.Program.Len()) != res.Instructions {
		t.Fatalf("recording has %d instructions, counters say %d", res.Program.Len(), res.Instructions)
	}

	cfg, err := bvmcheck.DefaultConfig(res.MachineR)
	if err != nil {
		t.Fatal(err)
	}
	if err := bvmcheck.Verify(res.Program, cfg); err != nil {
		t.Errorf("Verify: %v", err)
	}
	rep := bvmcheck.Lint(res.Program, cfg)
	if n := len(rep.Errors()); n != 0 {
		t.Errorf("%d lint errors:\n%s", n, rep)
	}
	if n := len(rep.Warnings()); n != 0 {
		t.Errorf("%d lint warnings:\n%s", n, rep)
	}

	cost := bvmcheck.EstimateCost(res.Program, cfg)
	if cost.Instructions != res.Instructions {
		t.Errorf("static cost %d instructions, run counted %d", cost.Instructions, res.Instructions)
	}
	// Replay on a fresh machine: input bits read as zeros, so values differ,
	// but the unit-cost SIMD counters must agree exactly.
	m, err := bvm.New(res.MachineR, bvm.DefaultRegisters)
	if err != nil {
		t.Fatal(err)
	}
	res.Program.Replay(m)
	if err := cost.CheckAgainst(m); err != nil {
		t.Error(err)
	}
}

// TestSolveDoesNotRecord pins the default path: recording is opt-in.
func TestSolveDoesNotRecord(t *testing.T) {
	p := &core.Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []core.Action{{Set: core.Universe(2), Cost: 2, Treatment: true}},
	}
	res, err := bvmtt.Solve(p, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.Program != nil {
		t.Error("Solve recorded a program; only SolveRecorded should")
	}
}
