// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark baselines can be committed
// (BENCH_bvm.json) and diffed. Only result lines are parsed; everything else
// (pass/fail chatter, pkg headers) is ignored.
//
// Usage:
//
//	go test -run '^$' -bench . ./... | go run ./cmd/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

func main() {
	var results []Result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8   12345   678.9 ns/op [...]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		results = append(results, Result{Name: name, Iterations: iters, NsPerOp: ns})
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	// Write through an explicit buffer and check the Flush: stdout is
	// normally a redirect to BENCH.json, and a full disk that only surfaces
	// at flush time must not silently truncate the committed baseline.
	out := bufio.NewWriter(os.Stdout)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := out.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
