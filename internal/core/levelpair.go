package core

import (
	"context"
	"fmt"
	"math/bits"
)

// Level-pair DP: the cache-resident restructure of the exact solver's table
// layout (ISSUE 7 tentpole b). The classic sweeps in solve.go and
// solveparallel.go keep three full 2^K arrays resident — C, Choice, and PSum,
// 24 bytes per subset — although the recurrence itself only ever *needs*
// C: PSum[S] is a pure function of S recomputable in O(popcount) saturating
// adds, and Choice is write-only during the sweep, consulted solely by tree
// extraction afterwards (which visits at most 2K-1 of the 2^K entries).
//
// SolveLevelPair therefore sweeps cost-only: one 2^K cost plane, p(S)
// recomputed on the fly, no Choice plane at all. The sweep runs in
// level-synchronous Gosper order, so the plane being written is a contiguous
// run of the combinadic sequence and the treatment-heavy reads C[S−T_i] land
// in the recently written neighbor levels — the "two hot planes" working set;
// only sparse test reads C[S∩T_i] reach cold levels. Table memory drops 3x
// and per-subset table traffic drops from three streams to one, which is
// what the BenchmarkSolveLevelPair entries in BENCH_bvm.json track against
// the classic layout.
//
// Bit-identity: satAdd saturates to Inf exactly when the true integer sum
// exceeds Inf, so a saturating sum is min(Σ, Inf) regardless of association
// order — recomputed p(S) equals PSum[S] bit for bit, and every C value
// equals Solve's (same recurrence, same strict-< tie-breaking). ChoiceFor
// reconstructs any Choice entry on demand by re-running one set's argmin,
// reproducing Solve's Choice exactly.

// psumOf recomputes p(S) — the total weight of S — from scratch, adding
// weights from the highest element down (the same association order the PSum
// table construction uses; any order yields the same saturated value).
func psumOf(weights []uint64, s Set) uint64 {
	var sum uint64
	v := uint32(s)
	for v != 0 {
		e := bits.Len32(v) - 1
		sum = satAdd(sum, weights[e])
		v &^= 1 << uint(e)
	}
	return sum
}

// SolveLevelPair is the cost-only level-pair sweep. The returned Solution
// carries the full C plane (and Cost, Ops) but nil Choice and PSum; extract
// trees with TreeFromCosts, or reconstruct individual argmins with ChoiceFor.
func SolveLevelPair(p *Problem) (*Solution, error) {
	return SolveLevelPairCtx(context.Background(), p)
}

// SolveLevelPairCtx is SolveLevelPair with cancellation, polled every
// ctxStride subsets like every other solver entry point.
func SolveLevelPairCtx(ctx context.Context, p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	size := 1 << uint(p.K)
	sol := &Solution{C: getU64(p.K)}
	// Pooled table, dirty contents: C[0] is the only cell read before being
	// assigned (treatments covering all of S read C[∅]).
	sol.C[0] = 0
	sol.Ops = int64(size-1) * int64(len(p.Actions)+1)
	polled := 0
	for level := 1; level <= p.K; level++ {
		v := uint32(1)<<uint(level) - 1
		limit := uint32(1) << uint(p.K)
		for ; v < limit; polled++ {
			if polled&(ctxStride-1) == ctxStride-1 {
				if err := ctx.Err(); err != nil {
					sol.Release()
					return nil, err
				}
			}
			s := Set(v)
			ps := psumOf(p.Weights, s)
			best := Inf
			for _, a := range p.Actions {
				inter := s & a.Set
				diff := s &^ a.Set
				if inter == 0 || (!a.Treatment && diff == 0) {
					continue // would not shrink S: excluded
				}
				cost := satMul(a.Cost, ps)
				if a.Treatment {
					cost = satAdd(cost, sol.C[diff])
				} else {
					cost = satAdd(cost, satAdd(sol.C[inter], sol.C[diff]))
				}
				if cost < best {
					best = cost
				}
			}
			sol.C[s] = best
			// Gosper: next higher number with the same popcount.
			c := v & -v
			r := v + c
			v = (r^v)>>2/c | r
		}
	}
	sol.Cost = sol.C[size-1]
	return sol, nil
}

// ChoiceFor reconstructs the minimizing action index for set s from a
// finished cost plane, reproducing Solve's Choice[s] exactly: the recurrence
// is re-evaluated in action order with strict < comparison, so the first
// minimizer (lowest action index) wins, as in every table-building sweep.
// Returns -1 for the empty set or an infinite C[s].
func ChoiceFor(p *Problem, c []uint64, s Set) int32 {
	if s == 0 {
		return -1
	}
	ps := psumOf(p.Weights, s)
	best, bestIdx := Inf, int32(-1)
	for ai, a := range p.Actions {
		inter := s & a.Set
		diff := s &^ a.Set
		if inter == 0 || (!a.Treatment && diff == 0) {
			continue
		}
		cost := satMul(a.Cost, ps)
		if a.Treatment {
			cost = satAdd(cost, c[diff])
		} else {
			cost = satAdd(cost, satAdd(c[inter], c[diff]))
		}
		if cost < best {
			best, bestIdx = cost, int32(ai)
		}
	}
	return bestIdx
}

// TreeFromCosts extracts an optimal procedure tree from a cost-only plane,
// reconstructing each visited node's Choice on demand — at most 2K-1 argmin
// re-evaluations, O(N·K) total, against the 2^K-entry plane the classic
// layout keeps resident for the same answer. The tree is identical to
// Solution.Tree's on a table-building solver's output.
func TreeFromCosts(p *Problem, c []uint64) (*Node, error) {
	sol := &Solution{C: c, Cost: c[len(c)-1]}
	if !sol.Adequate() {
		return nil, fmt.Errorf("core: inadequate instance has no procedure tree")
	}
	return buildNodeFromCosts(p, c, Universe(p.K))
}

func buildNodeFromCosts(p *Problem, c []uint64, set Set) (*Node, error) {
	if set == 0 {
		return nil, nil
	}
	idx := ChoiceFor(p, c, set)
	if idx < 0 {
		return nil, fmt.Errorf("core: no action recorded for set %v", set)
	}
	a := p.Actions[idx]
	n := &Node{Action: int(idx), Set: set}
	var err error
	if a.Treatment {
		n.Neg, err = buildNodeFromCosts(p, c, set&^a.Set)
		if err != nil {
			return nil, err
		}
		return n, nil
	}
	if n.Pos, err = buildNodeFromCosts(p, c, set&a.Set); err != nil {
		return nil, err
	}
	if n.Neg, err = buildNodeFromCosts(p, c, set&^a.Set); err != nil {
		return nil, err
	}
	return n, nil
}
