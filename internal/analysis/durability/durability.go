// Package durability proves the best-effort-durability contract from PR 4:
// in the serving layer, checkpoint persistence is an optimization, never a
// correctness input — a full disk, a torn rename, or any other durability
// error may be counted and logged but must not become the error (or the
// answer) a solve returns. The solver core deliberately has the opposite
// contract (it aborts on checkpointer errors so chaos kills are clean), so
// this analyzer fires only in packages that import the checkpoint package
// and wrap it best-effort — the boundary where the two contracts meet and
// where a refactor can silently let an ENOSPC take down answers.
package durability

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the durability pass.
var Analyzer = &analysis.Analyzer{
	Name: "durability",
	Doc: "errors from checkpoint-package calls (durable persistence) must be " +
		"logged/counted, never returned: durability failures cost durability, " +
		"not answers (best-effort checkpointing, PR 4)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	checkpointPkg := importedCheckpoint(pass)
	if checkpointPkg == nil || pass.Pkg.Name() == "checkpoint" {
		return nil
	}
	ifaces := checkpointInterfaces(checkpointPkg)
	for _, file := range pass.Files {
		if pass.TestFiles[file] {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if implementsCheckpointIface(pass, fd, ifaces) {
				// Middleware standing in for the store itself (a fault-injecting
				// checkpoint.FS, say) is below the durability boundary: its whole
				// job is to surface these errors to the layer that decides.
				continue
			}
			checkFunc(pass, checkpointPkg, fd)
		}
	}
	return nil
}

// checkpointInterfaces lists the interface types the checkpoint package
// exports (checkpoint.FS in the real tree).
func checkpointInterfaces(pkg *types.Package) []*types.Interface {
	var out []*types.Interface
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok {
			continue
		}
		if iface, ok := tn.Type().Underlying().(*types.Interface); ok && !iface.Empty() {
			out = append(out, iface)
		}
	}
	return out
}

// implementsCheckpointIface reports whether fd is a method on a type whose
// method set satisfies one of the checkpoint package's interfaces.
func implementsCheckpointIface(pass *analysis.Pass, fd *ast.FuncDecl, ifaces []*types.Interface) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(ifaces) == 0 {
		return false
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	for _, iface := range ifaces {
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			return true
		}
	}
	return false
}

func importedCheckpoint(pass *analysis.Pass) *types.Package {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Name() == "checkpoint" {
			return imp
		}
	}
	return nil
}

// taint is one assignment of a durability-call error into a variable.
type taint struct {
	pos     token.Pos
	tainted bool
}

// checkFunc tracks, per error variable, whether its most recent assignment
// (lexically) came from a durability call, and flags returns of tainted
// values — including wrapped ones (fmt.Errorf("...%w", err)).
func checkFunc(pass *analysis.Pass, checkpointPkg *types.Package, fd *ast.FuncDecl) {
	assigns := map[types.Object][]taint{}

	// Pass 1: record every assignment to every variable, noting durability
	// taint on the RHS.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		rhsTainted := false
		for _, rhs := range as.Rhs {
			if exprHasDurabilityCall(pass, checkpointPkg, rhs) {
				rhsTainted = true
			}
		}
		for _, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil || !isErrorType(obj.Type()) {
				continue
			}
			assigns[obj] = append(assigns[obj], taint{pos: as.Pos(), tainted: rhsTainted})
		}
		return true
	})

	// Pass 2: inspect returns.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			// Direct: return w.Discard()
			if exprHasDurabilityCall(pass, checkpointPkg, res) {
				pass.Reportf(ret.Pos(), "durability error is returned: a checkpoint failure must cost durability, not the answer — count it, log it, return nil (best-effort checkpointing, PR 4)")
				continue
			}
			// Indirect: return err / return fmt.Errorf("...: %w", err) where
			// err's latest prior assignment was a durability call.
			for _, id := range identsIn(res) {
				obj := pass.ObjectOf(id)
				if obj == nil || !isErrorType(obj.Type()) {
					continue
				}
				if latestTaint(assigns[obj], id.Pos()) {
					pass.Reportf(ret.Pos(), "durability error %q flows into this return: a checkpoint failure must cost durability, not the answer (best-effort checkpointing, PR 4)", id.Name)
				}
			}
		}
		return true
	})
}

// latestTaint reports whether the lexically-latest assignment before pos is
// tainted.
func latestTaint(ts []taint, pos token.Pos) bool {
	best := taint{pos: token.NoPos}
	for _, t := range ts {
		if t.pos < pos && t.pos > best.pos {
			best = t
		}
	}
	return best.pos != token.NoPos && best.tainted
}

// codecFuncs is the checkpoint package's pure encode/decode surface — the
// serializers the cluster wire protocol shares with the on-disk format.
// Their errors mean corrupt bytes, a correctness signal that MUST propagate
// (quarantine-over-trust, PR 5), not a failed durable write; only the
// persistence surface (Writer, Scan, Load, FS) carries the best-effort
// contract this analyzer enforces.
var codecFuncs = map[string]bool{
	"ProblemHash": true,
	"Encode":      true,
	"Decode":      true,
	"EncodePlane": true,
	"DecodePlane": true,
	"AppendFrame": true,
	"NextFrame":   true,
}

// exprHasDurabilityCall reports whether e contains, in executed position, a
// call into the checkpoint package's persistence surface (functions or
// methods on its types, minus the pure codec functions).
func exprHasDurabilityCall(pass *analysis.Pass, checkpointPkg *types.Package, e ast.Expr) bool {
	found := false
	analysis.CallsInExecutedCode(e, func(call *ast.CallExpr) {
		if found {
			return
		}
		obj := analysis.CalleeObj(pass.TypesInfo, call)
		if obj != nil && obj.Pkg() == checkpointPkg && !codecFuncs[obj.Name()] {
			found = true
		}
	})
	return found
}

func identsIn(e ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
