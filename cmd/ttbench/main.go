// Command ttbench regenerates the paper's figures and quantitative claims
// (the experiment index E1–E14 plus ablations A1/A3/A4 of DESIGN.md).
//
// Usage:
//
//	ttbench -list
//	ttbench -run all            # the full report (EXPERIMENTS.md source)
//	ttbench -run speedup        # one experiment by name ...
//	ttbench -run E10            # ... or by index
//	ttbench -run all -o report.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/experiments"
)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ttbench", flag.ContinueOnError)
	which := fs.String("run", "", "experiment name/ID, or 'all'")
	list := fs.Bool("list", false, "list available experiments")
	outFile := fs.String("o", "", "write the report to a file instead of stdout")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprintf(stdout, "experiments: all, %s\n", strings.Join(experiments.Names(), ", "))
		return nil
	}
	if *which == "" {
		return fmt.Errorf("ttbench: -run or -list required")
	}
	exp := experiments.Lookup(*which)
	if *which != "all" && exp == nil {
		return fmt.Errorf("ttbench: unknown experiment %q (try -list)", *which)
	}
	w := io.Writer(stdout)
	var f *os.File
	var buf *bufio.Writer
	if *outFile != "" {
		var err error
		if f, err = os.Create(*outFile); err != nil {
			return err
		}
		buf = bufio.NewWriter(f)
		w = buf
	}
	var runErr error
	if *which == "all" {
		runErr = experiments.RunAll(w)
	} else {
		runErr = exp.Run(w)
	}
	// A full disk surfaces at Flush or Close, not (necessarily) at the
	// buffered writes — losing those errors silently truncates the report.
	if buf != nil {
		if err := buf.Flush(); runErr == nil && err != nil {
			runErr = fmt.Errorf("ttbench: writing %s: %w", *outFile, err)
		}
	}
	if f != nil {
		if err := f.Close(); runErr == nil && err != nil {
			runErr = fmt.Errorf("ttbench: closing %s: %w", *outFile, err)
		}
	}
	return runErr
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
