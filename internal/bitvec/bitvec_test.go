package bitvec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 200} {
		v := New(n)
		if v.Len() != n {
			t.Fatalf("Len = %d, want %d", v.Len(), n)
		}
		if v.Count() != 0 {
			t.Fatalf("n=%d: new vector has %d set bits", n, v.Count())
		}
		if v.Any() {
			t.Fatalf("n=%d: Any on zero vector", n)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestSetGet(t *testing.T) {
	v := New(130)
	positions := []int{0, 1, 63, 64, 65, 127, 128, 129}
	for _, p := range positions {
		v.Set(p, true)
	}
	for _, p := range positions {
		if !v.Get(p) {
			t.Errorf("bit %d not set", p)
		}
		if v.Bit(p) != 1 {
			t.Errorf("Bit(%d) = %d, want 1", p, v.Bit(p))
		}
	}
	if got := v.Count(); got != len(positions) {
		t.Fatalf("Count = %d, want %d", got, len(positions))
	}
	v.Set(64, false)
	if v.Get(64) {
		t.Error("bit 64 still set after clear")
	}
	v.SetBit(64, 3) // low bit only
	if !v.Get(64) {
		t.Error("SetBit(64, 3) did not set bit")
	}
}

func TestGetOutOfRangePanics(t *testing.T) {
	v := New(10)
	for _, i := range []int{-1, 10, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Get(%d) did not panic", i)
				}
			}()
			v.Get(i)
		}()
	}
}

func TestFill(t *testing.T) {
	v := New(70)
	v.Fill(true)
	if v.Count() != 70 {
		t.Fatalf("Count after Fill(true) = %d, want 70", v.Count())
	}
	// Tail bits beyond Len must stay zero (invariant used by Count/Equal).
	if v.words[1]>>6 != 0 {
		t.Fatal("tail bits not masked after Fill")
	}
	v.Fill(false)
	if v.Any() {
		t.Fatal("bits remain after Fill(false)")
	}
}

func TestFromStringRoundTrip(t *testing.T) {
	s := "0110 1001 1100"
	v, err := FromString(s)
	if err != nil {
		t.Fatal(err)
	}
	if v.Len() != 12 {
		t.Fatalf("Len = %d, want 12", v.Len())
	}
	if got, want := v.String(), "011010011100"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if _, err := FromString("01x"); err == nil {
		t.Fatal("FromString accepted invalid rune")
	}
}

func TestMustFromStringPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFromString did not panic on bad input")
		}
	}()
	MustFromString("012")
}

func TestCloneIndependence(t *testing.T) {
	v := MustFromString("1010")
	c := v.Clone()
	c.Set(0, false)
	if !v.Get(0) {
		t.Fatal("mutating clone changed original")
	}
	if !c.Equal(MustFromString("0010")) {
		t.Fatalf("clone = %s", c)
	}
}

func TestEqualDifferentLengths(t *testing.T) {
	if New(5).Equal(New(6)) {
		t.Fatal("vectors of different length compared equal")
	}
}

func TestBooleanOps(t *testing.T) {
	a := MustFromString("1100")
	b := MustFromString("1010")
	v := New(4)
	v.And(a, b)
	if v.String() != "1000" {
		t.Errorf("And = %s", v)
	}
	v.Or(a, b)
	if v.String() != "1110" {
		t.Errorf("Or = %s", v)
	}
	v.Xor(a, b)
	if v.String() != "0110" {
		t.Errorf("Xor = %s", v)
	}
	v.AndNot(a, b)
	if v.String() != "0100" {
		t.Errorf("AndNot = %s", v)
	}
	v.Not(a)
	if v.String() != "0011" {
		t.Errorf("Not = %s", v)
	}
}

func TestNotMasksTail(t *testing.T) {
	v := New(3)
	v.Not(New(3))
	if v.Count() != 3 {
		t.Fatalf("Not produced %d bits, want 3", v.Count())
	}
	if v.words[0] != 0b111 {
		t.Fatalf("tail not masked: %b", v.words[0])
	}
}

func TestOnesIndices(t *testing.T) {
	v := New(200)
	want := []int{0, 5, 63, 64, 120, 199}
	for _, p := range want {
		v.Set(p, true)
	}
	got := v.OnesIndices()
	if len(got) != len(want) {
		t.Fatalf("OnesIndices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("OnesIndices = %v, want %v", got, want)
		}
	}
}

// TestApply3AllTruthTables exercises every one of the 256 possible Boolean
// functions of three inputs against a bit-by-bit reference model.
func TestApply3AllTruthTables(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 131
	a, b, c := randVec(rng, n), randVec(rng, n), randVec(rng, n)
	v := New(n)
	for tt := 0; tt < 256; tt++ {
		v.Apply3(uint8(tt), a, b, c)
		for i := 0; i < n; i++ {
			m := a.Bit(i)<<2 | b.Bit(i)<<1 | c.Bit(i)
			want := uint64(tt) >> m & 1
			if v.Bit(i) != want {
				t.Fatalf("tt=%#02x bit %d: got %d want %d", tt, i, v.Bit(i), want)
			}
		}
	}
}

func TestApply3Aliasing(t *testing.T) {
	a := MustFromString("1100")
	b := MustFromString("1010")
	// v aliases a: v = a XOR b. XOR truth table: out=1 when x!=y, any z.
	const xorTT = 0b00111100 // minterms 2,3,4,5 (x^y independent of z)
	a.Apply3(xorTT, a, b, b)
	if a.String() != "0110" {
		t.Fatalf("aliased Apply3 = %s, want 0110", a)
	}
}

func TestMaskedCopy(t *testing.T) {
	v := MustFromString("0000")
	src := MustFromString("1111")
	mask := MustFromString("0101")
	v.MaskedCopy(mask, src)
	if v.String() != "0101" {
		t.Fatalf("MaskedCopy = %s, want 0101", v)
	}
	// Unmasked positions must be preserved, not cleared.
	v2 := MustFromString("1000")
	v2.MaskedCopy(mask, MustFromString("0100"))
	if v2.String() != "1100" {
		t.Fatalf("MaskedCopy preserved = %s, want 1100", v2)
	}
}

func TestGather(t *testing.T) {
	src := MustFromString("10110")
	v := New(5)
	perm := []int32{4, 3, 2, 1, 0}
	v.Gather(src, perm)
	if v.String() != "01101" {
		t.Fatalf("Gather reverse = %s, want 01101", v)
	}
	// Broadcast gather: all read bit 2.
	v.Gather(src, []int32{2, 2, 2, 2, 2})
	if v.String() != "11111" {
		t.Fatalf("Gather broadcast = %s", v)
	}
}

func TestGatherPanics(t *testing.T) {
	v := New(4)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Gather with wrong perm length did not panic")
			}
		}()
		v.Gather(New(4), []int32{0})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Gather aliasing did not panic")
			}
		}()
		v.Gather(v, []int32{0, 1, 2, 3})
	}()
}

func TestUint64RoundTrip(t *testing.T) {
	v := New(100)
	v.SetUint64(37, 13, 0x1abc&0x1fff)
	if got := v.Uint64(37, 13); got != 0x1abc {
		t.Fatalf("Uint64 = %#x, want %#x", got, 0x1abc)
	}
	// Bits outside the window must be untouched.
	if v.Bit(36) != 0 || v.Bit(50) != 0 {
		t.Fatal("SetUint64 wrote outside its window")
	}
	// Overwrite with a narrower value clears old bits in the window.
	v.SetUint64(37, 13, 1)
	if got := v.Uint64(37, 13); got != 1 {
		t.Fatalf("Uint64 after overwrite = %#x, want 1", got)
	}
}

func TestCopyFrom(t *testing.T) {
	a := MustFromString("1100")
	b := New(4)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom mismatch")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("CopyFrom length mismatch did not panic")
			}
		}()
		b.CopyFrom(New(5))
	}()
}

// Property: De Morgan duality holds for vector ops at arbitrary lengths.
func TestPropertyDeMorgan(t *testing.T) {
	f := func(aw, bw []uint64, nSeed uint8) bool {
		n := int(nSeed)%150 + 1
		a, b := vecFromWords(aw, n), vecFromWords(bw, n)
		lhs, rhs, na, nb := New(n), New(n), New(n), New(n)
		lhs.And(a, b)
		lhs.Not(lhs) // NOT(a AND b)
		na.Not(a)
		nb.Not(b)
		rhs.Or(na, nb) // NOT a OR NOT b
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Xor is its own inverse: (a XOR b) XOR b == a.
func TestPropertyXorInvolution(t *testing.T) {
	f := func(aw, bw []uint64, nSeed uint8) bool {
		n := int(nSeed)%150 + 1
		a, b := vecFromWords(aw, n), vecFromWords(bw, n)
		v := New(n)
		v.Xor(a, b)
		v.Xor(v, b)
		return v.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Count(a) + Count(b) == Count(a OR b) + Count(a AND b).
func TestPropertyInclusionExclusion(t *testing.T) {
	f := func(aw, bw []uint64, nSeed uint8) bool {
		n := int(nSeed)%150 + 1
		a, b := vecFromWords(aw, n), vecFromWords(bw, n)
		or, and := New(n), New(n)
		or.Or(a, b)
		and.And(a, b)
		return a.Count()+b.Count() == or.Count()+and.Count()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: String/FromString round-trips.
func TestPropertyStringRoundTrip(t *testing.T) {
	f := func(aw []uint64, nSeed uint8) bool {
		n := int(nSeed)%150 + 1
		a := vecFromWords(aw, n)
		b, err := FromString(a.String())
		return err == nil && b.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a gather by the identity permutation is a copy.
func TestPropertyGatherIdentity(t *testing.T) {
	f := func(aw []uint64, nSeed uint8) bool {
		n := int(nSeed)%150 + 1
		a := vecFromWords(aw, n)
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		v := New(n)
		v.Gather(a, perm)
		return v.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func randVec(rng *rand.Rand, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		v.Set(i, rng.Intn(2) == 1)
	}
	return v
}

func vecFromWords(words []uint64, n int) *Vector {
	v := New(n)
	for i := 0; i < n; i++ {
		if len(words) == 0 {
			break
		}
		w := words[(i/wordBits)%len(words)]
		v.Set(i, w>>(uint(i)%wordBits)&1 == 1)
	}
	return v
}

func BenchmarkGather(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	n := 1 << 16
	src := randVec(rng, n)
	perm := make([]int32, n)
	for i := range perm {
		perm[i] = int32((i + 1) % n)
	}
	v := New(n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Gather(src, perm)
	}
}
