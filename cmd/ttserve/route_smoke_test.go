package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/serve"
)

// routeSmokeProblem is a small adequate instance whose optimal procedure
// mixes tests and treatments, so routed sessions take real multi-step walks
// rather than terminating at the root.
func routeSmokeProblem() *core.Problem {
	return &core.Problem{
		K:       4,
		Weights: []uint64{5, 3, 2, 1},
		Actions: []core.Action{
			{Name: "tA", Set: core.SetOf(0, 1), Cost: 2},
			{Name: "tB", Set: core.SetOf(0, 2), Cost: 3},
			{Name: "r0", Set: core.SetOf(0), Cost: 4, Treatment: true},
			{Name: "r1", Set: core.SetOf(1), Cost: 4, Treatment: true},
			{Name: "r2", Set: core.SetOf(2), Cost: 4, Treatment: true},
			{Name: "r3", Set: core.SetOf(3), Cost: 4, Treatment: true},
			{Name: "rAll", Set: core.SetOf(0, 1, 2, 3), Cost: 20, Treatment: true},
		},
	}
}

// TestRouteSmoke is the `make route-smoke` sequence: boot the real service
// through its own run loop, publish a policy from a real solve over HTTP,
// then drive 10k sessions to completion through /v1/route/batch — every
// session must end on a treatment leaf that covers its simulated object
// (zero wrong leaves), with sessions carried entirely in signed cursors.
func TestRouteSmoke(t *testing.T) {
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-route-max-batch", "2000"}, io.Discard, ready, stop)
	}()
	var url string
	select {
	case addr := <-ready:
		url = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	// Publish: the instance is solved by the default engine, certified, and
	// compiled — the only path that can mint a route policy.
	p := routeSmokeProblem()
	var buf bytes.Buffer
	if err := instio.Write(&buf, p, ""); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/policy", "application/json", bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var pr serve.PolicyResponse
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("publish: status %d: %s", resp.StatusCode, b)
	}
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	t.Logf("published policy %s v%d: cost %d, %d nodes, %d bytes (engine %s)",
		pr.Policy, pr.Version, pr.Cost, pr.Nodes, pr.Bytes, pr.SolvedBy)

	// outcome simulates the physical world for a session whose faulty object
	// is obj: a test is positive iff obj is in its set; a treatment cures iff
	// it covers obj.
	outcome := func(action int32, obj int) bool {
		for _, o := range pr.Actions[action].Objects {
			if o == obj {
				return true
			}
		}
		return false
	}
	postBatch := func(req *serve.RouteBatchRequest) *serve.RouteBatchResponse {
		t.Helper()
		body, err := json.Marshal(req)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(url+"/v1/route/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b, _ := io.ReadAll(resp.Body)
			t.Fatalf("route batch: status %d: %s", resp.StatusCode, b)
		}
		var br serve.RouteBatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
		for i, e := range br.Errors {
			if e != "" {
				t.Fatalf("batch member %d failed: %s", i, e)
			}
		}
		return &br
	}

	const sessions = 10_000
	const chunk = 2000
	completed, wrongLeaves, steps := 0, 0, 0
	for off := 0; off < sessions; off += chunk {
		br := postBatch(&serve.RouteBatchRequest{Policy: pr.Policy, Sessions: chunk})
		type live struct {
			cursor string
			action int32
			obj    int
		}
		cur := make([]live, 0, chunk)
		for i := 0; i < chunk; i++ {
			cur = append(cur, live{br.Cursors[i], br.Actions[i], int(br.Sessions[i]) % p.K})
		}
		for round := 0; len(cur) > 0; round++ {
			if round > pr.Nodes {
				t.Fatalf("chunk at %d did not converge after %d rounds", off, round)
			}
			req := serve.RouteBatchRequest{
				Cursors:  make([]string, len(cur)),
				Outcomes: make([]bool, len(cur)),
			}
			for i, l := range cur {
				req.Cursors[i] = l.cursor
				req.Outcomes[i] = outcome(l.action, l.obj)
			}
			sr := postBatch(&req)
			steps += len(cur)
			next := cur[:0]
			for i, l := range cur {
				if sr.Done[i] {
					// The session ended on the action it just reported; a
					// correct leaf is a treatment covering its object.
					if !pr.Actions[l.action].Treatment || !outcome(l.action, l.obj) {
						wrongLeaves++
					}
					completed++
					continue
				}
				next = append(next, live{sr.Cursors[i], sr.Actions[i], l.obj})
			}
			cur = next
		}
	}
	if completed != sessions {
		t.Fatalf("completed %d of %d sessions", completed, sessions)
	}
	if wrongLeaves != 0 {
		t.Fatalf("%d sessions ended on a wrong leaf", wrongLeaves)
	}
	t.Logf("routed %d sessions in %d total steps, zero wrong leaves", sessions, steps)

	// Graceful shutdown: the run loop drains and returns nil.
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never shut down")
	}
}
