// Assembler: write a Boolean Vector Machine program in the paper's own
// instruction syntax, parse it, run it, and inspect the machine — the
// workflow a BVM programmer of 1985 would have used. The program below is
// the paper's §4.1 cycle-ID for the 8-PE machine, written out by hand.
//
//	go run ./examples/assembler
package main

import (
	"fmt"
	"log"

	"repro/internal/bvm"
)

const cycleIDSource = `
; cycle-ID for the r=1 machine (Q = 2): fill with ones, feed a zero in at
; PE (0,0), then alternately AND with the lateral neighbor and shift —
; first along the input chain, then along cycle predecessors.
A, B = 1, B (A, A, B);
A, B = D, B (A, A.I, B);
A, B = F&D, B (A, A.L, B);
A, B = D, B (A, A.I, B);
A, B = D, B (A, A.P, B);
A, B = F&D, B (A, A.L, B);
A, B = D, B (A, A.P, B);
R[0], B = D, B (A, A, B);
`

func main() {
	prog, err := bvm.ParseProgram("cycle-ID", cycleIDSource)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parsed %d instructions; disassembly round-trip:\n\n%s\n",
		prog.Len(), prog.Disassemble())

	m, err := bvm.New(1, bvm.DefaultRegisters)
	if err != nil {
		log.Fatal(err)
	}
	prog.Replay(m)

	fmt.Println("machine state after the run:")
	fmt.Print(m.DumpRegisters(0, bvm.R(0)))
	fmt.Printf("\nroute profile: %s\n", prog.ProfileString())

	// Verify against the specification: PE (i,j) holds bit j of cycle i.
	v := m.Peek(bvm.R(0))
	ok := true
	for x := 0; x < m.N(); x++ {
		c, p := m.Top.Split(x)
		if v.Get(x) != (c>>uint(p)&1 == 1) {
			ok = false
		}
	}
	fmt.Printf("matches the cycle-ID specification: %v\n", ok)
	if !ok {
		log.Fatal("hand-written program incorrect")
	}
}
