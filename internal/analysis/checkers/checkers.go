// Package checkers is the registry of this repo's analyzers — the single
// list both cmd/ttlint and any future driver consume.
package checkers

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/certorder"
	"repro/internal/analysis/ctxflow"
	"repro/internal/analysis/durability"
	"repro/internal/analysis/flushcheck"
	"repro/internal/analysis/panicsafe"
)

// All lists every analyzer in the suite, in reporting order.
var All = []*analysis.Analyzer{
	certorder.Analyzer,
	ctxflow.Analyzer,
	durability.Analyzer,
	flushcheck.Analyzer,
	panicsafe.Analyzer,
}

// Select resolves a comma-separated analyzer list ("" = all).
func Select(names string) ([]*analysis.Analyzer, error) {
	if strings.TrimSpace(names) == "" {
		return All, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			var known []string
			for _, k := range All {
				known = append(known, k.Name)
			}
			return nil, fmt.Errorf("unknown analyzer %q (known: %s)", n, strings.Join(known, ", "))
		}
		out = append(out, a)
	}
	return out, nil
}
