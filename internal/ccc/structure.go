package ccc

import "fmt"

// Route structure constants.
//
// Every SIMD operand route of the machine is a *structured* permutation of
// the flat address space, which is what makes word-parallel simulation
// possible (internal/bitvec holds the kernels; internal/bvm composes them):
//
//   - Succ and Pred rotate each aligned Q-block of flat addresses by +1 and
//     -1 respectively: Succ(c·Q+p) = c·Q + (p+1) mod Q.
//   - XS complements flat address bit 0: XS(x) = x XOR 1 (positions are
//     paired (0,1), (2,3), ... inside each cycle).
//   - XP is the parity-split rotation: odd positions read their successor,
//     even positions their predecessor.
//   - Lateral complements flat address bit pos+R: Lateral(x) = x XOR
//     LateralStride(pos) where pos = x mod Q, because flipping bit pos of
//     the cycle number moves the address by 2^pos cycles of Q PEs each.
//
// Since Q = 2^R is at most 16 (MaxR = 4), Q always divides the 64-bit word
// size, so the block rotations and the sub-word lateral strides never
// straddle words unaligned — TestRouteStructure pins these identities
// against the Neighbor definitions.

// LateralStride returns the flat-address distance between lateral partners
// at in-cycle position pos: Q·2^pos. Lateral(x) = x XOR LateralStride(pos)
// for every x with x mod Q == pos.
func (t *Topology) LateralStride(pos int) int {
	if pos < 0 || pos >= t.Q {
		panic(fmt.Sprintf("ccc: position %d out of range [0,%d)", pos, t.Q))
	}
	return t.Q << uint(pos)
}

// PosSelector returns a 64-bit repeating mask pattern whose bit i is set iff
// a flat address congruent to i mod 64 has in-cycle position pos. Because Q
// divides 64 the selector is exact for every word of a packed bit vector.
func (t *Topology) PosSelector(pos int) uint64 {
	if pos < 0 || pos >= t.Q {
		panic(fmt.Sprintf("ccc: position %d out of range [0,%d)", pos, t.Q))
	}
	var sel uint64
	for i := pos; i < 64; i += t.Q {
		sel |= 1 << uint(i)
	}
	return sel
}

// ParitySelector returns the 64-bit repeating mask pattern selecting flat
// addresses whose in-cycle position is odd (odd=true) or even (odd=false).
// Position parity is flat-address bit 0 because Q is even for every
// supported geometry.
func (t *Topology) ParitySelector(odd bool) uint64 {
	var sel uint64
	for p := 0; p < t.Q; p++ {
		if (p%2 == 1) == odd {
			sel |= t.PosSelector(p)
		}
	}
	return sel
}
