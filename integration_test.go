package repro_test

// End-to-end integration: generate a domain instance, round-trip it through
// the JSON wire format, solve it with every engine (sequential DP, parallel
// on three engines, instruction-level BVM), extract the optimal procedure
// from the PARALLEL machine's output alone, evaluate it independently, and
// Monte-Carlo-validate the expected cost — the full life of an instance
// through the repository.

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/bvmtt"
	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/parttsolve"
	"repro/internal/simulate"
	"repro/internal/workload"
)

func TestEndToEndPipeline(t *testing.T) {
	cases := map[string]*core.Problem{
		"medical":   workload.MedicalDiagnosis(5, 4),
		"fault":     workload.FaultLocation(6, 4, 2),
		"logistics": workload.Logistics(7, 4, 2),
	}
	for name, generated := range cases {
		t.Run(name, func(t *testing.T) {
			// Wire-format round trip.
			var buf bytes.Buffer
			if err := instio.Write(&buf, generated, "integration"); err != nil {
				t.Fatal(err)
			}
			p, err := instio.Read(&buf)
			if err != nil {
				t.Fatal(err)
			}

			// Every engine agrees.
			seq, err := core.Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			for _, kind := range []parttsolve.EngineKind{
				parttsolve.Lockstep, parttsolve.Goroutine, parttsolve.CCC,
			} {
				par, err := parttsolve.Solve(p, kind)
				if err != nil {
					t.Fatalf("%v: %v", kind, err)
				}
				if par.Cost != seq.Cost {
					t.Fatalf("%v: %d != %d", kind, par.Cost, seq.Cost)
				}
			}
			bv, err := bvmtt.Solve(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			if bv.Cost != seq.Cost {
				t.Fatalf("bvm: %d != %d", bv.Cost, seq.Cost)
			}

			// Tree from the parallel machine's own output.
			par, err := parttsolve.Solve(p, parttsolve.Lockstep)
			if err != nil {
				t.Fatal(err)
			}
			fromMachine := &core.Solution{Cost: par.Cost, C: par.C, Choice: par.Choice}
			tree, err := fromMachine.Tree(p)
			if err != nil {
				t.Fatal(err)
			}
			if tc, err := core.TreeCost(p, tree); err != nil || tc != seq.Cost {
				t.Fatalf("machine-built tree: cost %d err %v, want %d", tc, err, seq.Cost)
			}

			// Operational validation: Monte-Carlo within 5 standard errors.
			est, err := simulate.EstimateCost(p, tree, 7, 30000)
			if err != nil {
				t.Fatal(err)
			}
			if diff := math.Abs(est.Mean - float64(seq.Cost)); diff > 5*est.StdErr+1e-9 {
				t.Fatalf("MC %.1f ± %.1f vs analytic %d", est.Mean, est.StdErr, seq.Cost)
			}

			// Bounded-lookahead and greedy bracket the optimum from above.
			for _, d := range []int{0, 2} {
				la, err := core.LookaheadCost(p, d)
				if err != nil {
					t.Fatal(err)
				}
				if la < seq.Cost {
					t.Fatalf("lookahead depth %d beat the optimum", d)
				}
			}
		})
	}
}

// TestSoakAllEngines runs a broader randomized cross-engine sweep; skipped
// in -short mode.
func TestSoakAllEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("soak in -short mode")
	}
	for seed := int64(0); seed < 15; seed++ {
		p := workload.Random(seed, int(3+seed%3), 3, 2)
		seq, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		memo, err := core.SolveMemo(p)
		if err != nil || memo != seq.Cost {
			t.Fatalf("seed %d: memo %d err %v", seed, memo, err)
		}
		hostPar, err := core.SolveParallel(p, 0)
		if err != nil || hostPar.Cost != seq.Cost {
			t.Fatalf("seed %d: host-parallel %d err %v", seed, hostPar.Cost, err)
		}
		par, err := parttsolve.Solve(p, parttsolve.Lockstep)
		if err != nil || par.Cost != seq.Cost {
			t.Fatalf("seed %d: parallel %d err %v", seed, par.Cost, err)
		}
		bv, err := bvmtt.Solve(p, 0)
		if err != nil || bv.Cost != seq.Cost {
			t.Fatalf("seed %d: bvm %d err %v", seed, bv.Cost, err)
		}
	}
}
