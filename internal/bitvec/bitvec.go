// Package bitvec provides packed boolean vectors.
//
// A Vector holds n bits in 64-bit words. It is the storage substrate for the
// Boolean Vector Machine's registers (internal/bvm): one Vector per register
// row, one bit per processing element. The package supplies the word-parallel
// primitives the BVM instruction cycle needs — arbitrary three-input Boolean
// combination via an 8-bit truth table, masked assignment for the
// enable/activate machinery, and permutation gathers for neighbor operands.
//
// All vectors maintain the invariant that bits at positions >= Len() in the
// final word are zero, so Count and Equal never see garbage.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Vector is a fixed-length sequence of bits.
// The zero value is an empty vector of length 0; use New for a sized one.
type Vector struct {
	n     int
	words []uint64
}

// New returns a zeroed Vector of n bits. It panics if n is negative.
func New(n int) *Vector {
	if n < 0 {
		panic(fmt.Sprintf("bitvec: negative length %d", n))
	}
	return &Vector{n: n, words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromString parses a vector from a string of '0' and '1' runes, most
// significant position last; that is, s[i] is bit i. Whitespace is ignored.
func FromString(s string) (*Vector, error) {
	s = strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' {
			return -1
		}
		return r
	}, s)
	v := New(len(s))
	for i, r := range s {
		switch r {
		case '0':
		case '1':
			v.Set(i, true)
		default:
			return nil, fmt.Errorf("bitvec: invalid rune %q at position %d", r, i)
		}
	}
	return v, nil
}

// MustFromString is FromString that panics on error; for tests and literals.
func MustFromString(s string) *Vector {
	v, err := FromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// Len returns the number of bits in the vector.
func (v *Vector) Len() int { return v.n }

// Get reports whether bit i is set. It panics if i is out of range.
func (v *Vector) Get(i int) bool {
	v.check(i)
	return v.words[i/wordBits]>>(uint(i)%wordBits)&1 == 1
}

// Bit returns bit i as a uint64 (0 or 1). It panics if i is out of range.
func (v *Vector) Bit(i int) uint64 {
	v.check(i)
	return v.words[i/wordBits] >> (uint(i) % wordBits) & 1
}

// Set sets bit i to b. It panics if i is out of range.
func (v *Vector) Set(i int, b bool) {
	v.check(i)
	if b {
		v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
	} else {
		v.words[i/wordBits] &^= 1 << (uint(i) % wordBits)
	}
}

// SetBit sets bit i to the low bit of bit01. It panics if i is out of range.
func (v *Vector) SetBit(i int, bit01 uint64) { v.Set(i, bit01&1 == 1) }

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: index %d out of range [0,%d)", i, v.n))
	}
}

// Fill sets every bit to b.
func (v *Vector) Fill(b bool) {
	var w uint64
	if b {
		w = ^uint64(0)
	}
	for i := range v.words {
		v.words[i] = w
	}
	v.maskTail()
}

// Clone returns an independent copy of v.
func (v *Vector) Clone() *Vector {
	c := New(v.n)
	copy(c.words, v.words)
	return c
}

// CopyFrom overwrites v with src. The lengths must match.
func (v *Vector) CopyFrom(src *Vector) {
	v.sameLen(src)
	copy(v.words, src.words)
}

// Equal reports whether v and o have the same length and bits.
func (v *Vector) Equal(o *Vector) bool {
	if v.n != o.n {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (v *Vector) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether at least one bit is set.
func (v *Vector) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// OnesIndices returns the positions of all set bits, in increasing order.
func (v *Vector) OnesIndices() []int {
	idx := make([]int, 0, v.Count())
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			idx = append(idx, wi*wordBits+b)
			w &= w - 1
		}
	}
	return idx
}

// And sets v = a AND b. All three must have equal length; v may alias a or b.
func (v *Vector) And(a, b *Vector) {
	v.sameLen(a)
	v.sameLen(b)
	for i := range v.words {
		v.words[i] = a.words[i] & b.words[i]
	}
}

// Or sets v = a OR b.
func (v *Vector) Or(a, b *Vector) {
	v.sameLen(a)
	v.sameLen(b)
	for i := range v.words {
		v.words[i] = a.words[i] | b.words[i]
	}
}

// Xor sets v = a XOR b.
func (v *Vector) Xor(a, b *Vector) {
	v.sameLen(a)
	v.sameLen(b)
	for i := range v.words {
		v.words[i] = a.words[i] ^ b.words[i]
	}
}

// AndNot sets v = a AND NOT b.
func (v *Vector) AndNot(a, b *Vector) {
	v.sameLen(a)
	v.sameLen(b)
	for i := range v.words {
		v.words[i] = a.words[i] &^ b.words[i]
	}
}

// Not sets v = NOT a.
func (v *Vector) Not(a *Vector) {
	v.sameLen(a)
	for i := range v.words {
		v.words[i] = ^a.words[i]
	}
	v.maskTail()
}

// Apply3 sets v[i] = tt(a[i], b[i], c[i]) for every i, where tt is an 8-bit
// truth table: output bit for inputs (x,y,z) is bit x<<2|y<<1|z of tt.
// This is the workhorse of the BVM instruction cycle, which allows any
// Boolean function of three one-bit operands. v may alias any input.
//
// The hottest tables (constants, copies, the two-input connectives, the B
// mux, and the full-adder pair) run as dedicated word loops; everything else
// goes through a branchless three-level mux network over the spread truth
// table — both orders of magnitude cheaper than evaluating minterms
// per word.
func (v *Vector) Apply3(tt uint8, a, b, c *Vector) {
	v.sameLen(a)
	v.sameLen(b)
	v.sameLen(c)
	switch tt {
	case 0x00: // constant 0
		for i := range v.words {
			v.words[i] = 0
		}
	case 0xFF: // constant 1
		for i := range v.words {
			v.words[i] = ^uint64(0)
		}
	case 0xF0: // F
		copy(v.words, a.words)
	case 0xCC: // D
		copy(v.words, b.words)
	case 0xAA: // B
		copy(v.words, c.words)
	case 0x0F: // ~F
		for i := range v.words {
			v.words[i] = ^a.words[i]
		}
	case 0x33: // ~D
		for i := range v.words {
			v.words[i] = ^b.words[i]
		}
	case 0xC0: // F & D
		for i := range v.words {
			v.words[i] = a.words[i] & b.words[i]
		}
	case 0xFC: // F | D
		for i := range v.words {
			v.words[i] = a.words[i] | b.words[i]
		}
	case 0x3C: // F ^ D
		for i := range v.words {
			v.words[i] = a.words[i] ^ b.words[i]
		}
	case 0x30: // F & ~D
		for i := range v.words {
			v.words[i] = a.words[i] &^ b.words[i]
		}
	case 0xD8: // B ? D : F
		for i := range v.words {
			cw := c.words[i]
			v.words[i] = b.words[i]&cw | a.words[i]&^cw
		}
	case 0x96: // F ^ D ^ B
		for i := range v.words {
			v.words[i] = a.words[i] ^ b.words[i] ^ c.words[i]
		}
	case 0xE8: // majority(F, D, B)
		for i := range v.words {
			aw, bw := a.words[i], b.words[i]
			v.words[i] = aw&bw | c.words[i]&(aw|bw)
		}
	default:
		v.apply3Generic(tt, a, b, c)
	}
	v.maskTail()
}

// apply3Generic evaluates an arbitrary truth table as a three-level mux
// network: each minterm bit is spread to a full word once, then every word
// needs 7 word-muxes regardless of the table's weight.
func (v *Vector) apply3Generic(tt uint8, a, b, c *Vector) {
	var e [8]uint64
	for m := 0; m < 8; m++ {
		if tt>>uint(m)&1 == 1 {
			e[m] = ^uint64(0)
		}
	}
	for i := range v.words {
		aw, bw, cw := a.words[i], b.words[i], c.words[i]
		u0 := e[0]&^cw | e[1]&cw // a=0, b=0
		u1 := e[2]&^cw | e[3]&cw // a=0, b=1
		u2 := e[4]&^cw | e[5]&cw // a=1, b=0
		u3 := e[6]&^cw | e[7]&cw // a=1, b=1
		t0 := u0&^bw | u1&bw
		t1 := u2&^bw | u3&bw
		v.words[i] = t0&^aw | t1&aw
	}
}

// MaskedCopy sets v[i] = src[i] wherever mask[i] is 1, leaving other bits of v
// untouched. This implements the BVM activate/enable semantics, where
// deactivated or disabled PEs keep their old register contents.
func (v *Vector) MaskedCopy(mask, src *Vector) {
	v.sameLen(mask)
	v.sameLen(src)
	for i := range v.words {
		m := mask.words[i]
		v.words[i] = v.words[i]&^m | src.words[i]&m
	}
}

// Gather sets v[i] = src[perm[i]] for every i. perm must have length v.Len()
// and every entry must index into src. v must not alias src.
func (v *Vector) Gather(src *Vector, perm []int32) {
	if len(perm) != v.n {
		panic(fmt.Sprintf("bitvec: perm length %d != vector length %d", len(perm), v.n))
	}
	if v == src {
		panic("bitvec: Gather dst aliases src")
	}
	for i := range v.words {
		v.words[i] = 0
	}
	for i, p := range perm {
		if src.words[p/wordBits]>>(uint32(p)%wordBits)&1 == 1 {
			v.words[i/wordBits] |= 1 << (uint(i) % wordBits)
		}
	}
}

// String renders the vector as a string of '0'/'1' with s[i] = bit i,
// matching FromString.
func (v *Vector) String() string {
	var sb strings.Builder
	sb.Grow(v.n)
	for i := 0; i < v.n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

// Uint64 returns bits [lo, lo+width) of v packed into a uint64 with bit lo as
// the least significant bit. width must be at most 64.
func (v *Vector) Uint64(lo, width int) uint64 {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitvec: invalid width %d", width))
	}
	var x uint64
	for b := 0; b < width; b++ {
		x |= v.Bit(lo+b) << uint(b)
	}
	return x
}

// SetUint64 stores the low width bits of x into positions [lo, lo+width).
func (v *Vector) SetUint64(lo, width int, x uint64) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("bitvec: invalid width %d", width))
	}
	for b := 0; b < width; b++ {
		v.SetBit(lo+b, x>>uint(b))
	}
}

func (v *Vector) sameLen(o *Vector) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, o.n))
	}
}

func (v *Vector) maskTail() {
	if r := v.n % wordBits; r != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (1 << uint(r)) - 1
	}
}
