package parttsolve_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/parttsolve"
)

// ExampleSolve runs the paper's parallel algorithm and reports the machine
// accounting alongside the result.
func ExampleSolve() {
	problem := &core.Problem{
		K:       3,
		Weights: []uint64{4, 2, 1},
		Actions: []core.Action{
			{Name: "t01", Set: core.SetOf(0, 1), Cost: 1},
			{Name: "fix0", Set: core.SetOf(0), Cost: 3, Treatment: true},
			{Name: "fix12", Set: core.SetOf(1, 2), Cost: 5, Treatment: true},
		},
	}
	res, err := parttsolve.Solve(problem, parttsolve.Lockstep)
	if err != nil {
		panic(err)
	}
	seq, _ := core.Solve(problem)
	fmt.Println("C(U):", res.Cost, "matches DP:", res.Cost == seq.Cost)
	fmt.Printf("machine: %d PEs (one per (S,i) pair), %d dimension steps\n",
		res.PEs, res.DimSteps)
	fmt.Println("formula k+k(2k+logN):", parttsolve.ExpectedDimSteps(problem.K, res.LogN))
	// Output:
	// C(U): 36 matches DP: true
	// machine: 32 PEs (one per (S,i) pair), 27 dimension steps
	// formula k+k(2k+logN): 27
}
