package bvm

import "fmt"

// Fault injection: the simulator can model two hardware failure modes of a
// real BVM — a stuck register bit in one PE and a broken (stuck-at-zero)
// lateral link. The test suite uses these to demonstrate that the
// cross-validation experiments are sensitive: an injected fault perturbs the
// TT program's output away from the sequential DP, and the §4 identity
// programs (cycle-ID, processor-ID) detect link faults directly.

// FaultKind names an injected failure mode.
type FaultKind int

const (
	// StuckBit forces one PE's bit of one register to a constant after
	// every instruction.
	StuckBit FaultKind = iota
	// BrokenLateral makes one PE's lateral link read zero.
	BrokenLateral
)

type stuckFault struct {
	reg RegRef
	pe  int
	val bool
}

// InjectStuckBit makes register reg of PE pe read as val forever (the bit is
// re-forced after every instruction). Returns an undo function.
func (m *Machine) InjectStuckBit(reg RegRef, pe int, val bool) func() {
	if pe < 0 || pe >= m.Top.N {
		panic(fmt.Sprintf("bvm: PE %d out of range", pe))
	}
	f := stuckFault{reg: reg, pe: pe, val: val}
	m.stuck = append(m.stuck, f)
	m.reg(reg).Set(pe, val)
	if reg.Kind == KindE {
		m.noteEWrite()
	}
	idx := len(m.stuck) - 1
	return func() { m.stuck[idx].pe = -1 }
}

// InjectBrokenLateral makes PE pe (and, physically, its partner — a link has
// two ends) read 0 over the lateral route. Returns an undo function.
func (m *Machine) InjectBrokenLateral(pe int) func() {
	if pe < 0 || pe >= m.Top.N {
		panic(fmt.Sprintf("bvm: PE %d out of range", pe))
	}
	if m.brokenLat == nil {
		m.brokenLat = make(map[int]bool)
	}
	partner := m.Top.Lateral(pe)
	m.brokenLat[pe] = true
	m.brokenLat[partner] = true
	return func() {
		delete(m.brokenLat, pe)
		delete(m.brokenLat, partner)
	}
}

// applyFaults enforces injected faults on the post-instruction state.
func (m *Machine) applyFaults() {
	for _, f := range m.stuck {
		if f.pe >= 0 {
			m.reg(f.reg).Set(f.pe, f.val)
			if f.reg.Kind == KindE {
				m.noteEWrite()
			}
		}
	}
}

// Faulty reports whether any fault is currently active.
func (m *Machine) Faulty() bool {
	for _, f := range m.stuck {
		if f.pe >= 0 {
			return true
		}
	}
	return len(m.brokenLat) > 0
}
