package hypercube

import "fmt"

// Benes permutation routing. The paper (§2) notes that "since the BVM
// communication network resembles the Benes permutation network, it can
// accomplish any permutation within O(log n) time if the control bits are
// precalculated". This file reproduces that claim operationally: the control
// bits for an arbitrary permutation are precalculated by the classical
// looping algorithm, and the routing is then executed as 2·dim - 1 exchange
// stages over hypercube dimensions 0, 1, .., dim-1, .., 1, 0 — each stage a
// single ASCEND/DESCEND-style dimension step, so the same schedule runs on
// the CCC (internal/cccsim) at its usual constant slowdown.

// BenesStage is one exchange stage: PEs whose Swap bit is set exchange their
// payload with their partner across Dim (the bit is always set consistently
// on both ends of a pair).
type BenesStage struct {
	Dim  int
	Swap []bool
}

// BenesControlBits precalculates the switch settings that realize dest:
// the element starting at PE i must end at PE dest[i]. dest must be a
// permutation of [0, 2^dim).
func BenesControlBits(dim int, dest []int) ([]BenesStage, error) {
	n := 1 << dim
	if len(dest) != n {
		return nil, fmt.Errorf("hypercube: dest length %d != 2^%d", len(dest), dim)
	}
	seen := make([]bool, n)
	for _, d := range dest {
		if d < 0 || d >= n || seen[d] {
			return nil, fmt.Errorf("hypercube: dest is not a permutation")
		}
		seen[d] = true
	}
	// Stage layout: dims 0, 1, .., dim-1, dim-2, .., 0. The recursion at
	// depth lv contributes its input stage at index lv and its output stage
	// at index 2(dim-1)-lv; the innermost level (lv = dim-1) has a single
	// stage. Control bits from both subnets at a level merge into the same
	// stage vectors (they act on disjoint PEs).
	total := 2*dim - 1
	stages := make([]BenesStage, total)
	for i := range stages {
		d := i
		if i >= dim {
			d = 2*(dim-1) - i
		}
		stages[i] = BenesStage{Dim: d, Swap: make([]bool, n)}
	}
	// pes[i] is the flat PE hosting sub-network slot i; the sub-networks at
	// depth lv occupy PEs agreeing on address bits < lv.
	pes := make([]int, n)
	for i := range pes {
		pes[i] = i
	}
	benesRecurse(dim, 0, pes, dest, stages)
	return stages, nil
}

// benesRecurse fills in the switch settings for one sub-network. pes maps
// sub-slot -> flat PE; dest maps sub-slot -> sub-destination (both length
// 2^(dim-lv)).
func benesRecurse(dim, lv int, pes []int, dest []int, stages []BenesStage) {
	n := len(dest)
	inStage := &stages[lv]
	if n == 2 {
		// Single switch: swap iff element at slot 0 wants slot 1.
		if dest[0] == 1 {
			inStage.Swap[pes[0]] = true
			inStage.Swap[pes[1]] = true
		}
		return
	}
	outStage := &stages[2*(dim-1)-lv]

	// Looping algorithm: color each element top (0) or bottom (1) such that
	// the two elements of every input pair {2i, 2i+1} and of every output
	// pair {d, d^1} get different colors.
	const uncolored = -1
	color := make([]int, n)
	for i := range color {
		color[i] = uncolored
	}
	// elemAtDest[d] = input slot of the element destined to d.
	elemAtDest := make([]int, n)
	for i, d := range dest {
		elemAtDest[d] = i
	}
	for start := 0; start < n; start++ {
		if color[start] != uncolored {
			continue
		}
		// Walk the constraint cycle alternating colors.
		e, c := start, 0
		for color[e] == uncolored {
			color[e] = c
			// Input-pair partner must take the other color...
			partner := e ^ 1
			if color[partner] == uncolored {
				color[partner] = 1 - c
			}
			// ...and the element sharing the partner's output pair must
			// differ from the partner, i.e. equal c. Continue the walk there.
			e = elemAtDest[dest[partner]^1]
		}
	}

	// Input switches: the top-colored element of each pair must sit at the
	// even slot after the stage.
	for p := 0; p < n/2; p++ {
		if color[2*p] == 1 { // even slot holds a bottom element: swap
			inStage.Swap[pes[2*p]] = true
			inStage.Swap[pes[2*p+1]] = true
		}
	}
	// Output switches: the element destined to the even output must come
	// from the top subnet.
	for p := 0; p < n/2; p++ {
		if color[elemAtDest[2*p]] == 1 { // even output fed from bottom: swap
			outStage.Swap[pes[2*p]] = true
			outStage.Swap[pes[2*p+1]] = true
		}
	}

	// Build the two sub-problems. After the input stage, the top element of
	// input pair i sits at slot 2i, the bottom at 2i+1; inside the subnet
	// they occupy sub-slot i. Destinations halve the same way.
	half := n / 2
	topPEs, botPEs := make([]int, half), make([]int, half)
	topDest, botDest := make([]int, half), make([]int, half)
	for p := 0; p < half; p++ {
		topPEs[p] = pes[2*p]
		botPEs[p] = pes[2*p+1]
		a, b := 2*p, 2*p+1
		if color[a] == 1 {
			a, b = b, a // a = top element, b = bottom element
		}
		topDest[p] = dest[a] >> 1
		botDest[p] = dest[b] >> 1
	}
	benesRecurse(dim, lv+1, topPEs, topDest, stages)
	benesRecurse(dim, lv+1, botPEs, botDest, stages)
}

// RoutePermutation routes values through a Benes network on the lockstep
// hypercube machine: out[dest[i]] = values[i]. Returns the routed slice and
// the number of exchange stages (2·dim - 1).
func RoutePermutation(dim int, values []uint64, dest []int) ([]uint64, int, error) {
	stages, err := BenesControlBits(dim, dest)
	if err != nil {
		return nil, 0, err
	}
	m := New[uint64](dim)
	if len(values) != m.N {
		return nil, 0, fmt.Errorf("hypercube: values length %d != 2^%d", len(values), dim)
	}
	copy(m.State(), values)
	for _, st := range stages {
		swap := st.Swap
		m.Step(st.Dim, func(_, addr int, self, partner uint64) uint64 {
			if swap[addr] {
				return partner
			}
			return self
		})
	}
	out := make([]uint64, m.N)
	copy(out, m.State())
	return out, len(stages), nil
}
