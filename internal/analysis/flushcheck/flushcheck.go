// Package flushcheck proves the buffered-writer discipline: a function that
// creates a buffered writer owns its flush, and the flush's error must be
// looked at. Dropping it silently truncates output on a full disk or closed
// pipe — the exact bug fixed three separate times in this repo (ttbench -o
// and benchjson in PR 3, then ttsolve/ttgen/bvmrun in PR 4), which is what
// earned it an analyzer.
package flushcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the flushcheck pass.
var Analyzer = &analysis.Analyzer{
	Name: "flushcheck",
	Doc: "a bufio/tabwriter/gzip/zlib writer created in a function must have its " +
		"Flush/Close error checked or returned; unflushed or error-dropped buffers " +
		"silently truncate output on a full disk",
	Run: run,
}

// finisher names the method whose error completes a writer of the given
// constructor.
var constructors = map[string]map[string]string{
	"bufio":     {"NewWriter": "Flush", "NewWriterSize": "Flush"},
	"tabwriter": {"NewWriter": "Flush"},
	"gzip":      {"NewWriter": "Close", "NewWriterLevel": "Close"},
	"zlib":      {"NewWriter": "Close", "NewWriterLevel": "Close"},
}

// tracked is one buffered writer created in the function under analysis.
type tracked struct {
	obj     types.Object // the local variable holding the writer
	created token.Pos
	method  string // Flush or Close
	escaped bool   // stored/returned somewhere we cannot see the flush
	// finishes records each Flush/Close call site and whether its error was
	// consumed.
	finishes []finish
}

type finish struct {
	pos     token.Pos
	checked bool
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

// checkFunc analyzes one function body, nested literals included — the
// deferred-flush idiom (defer func() { err = w.Flush() }()) lives in a
// literal and must count.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	writers := map[types.Object]*tracked{}

	// Pass 1: find creations.
	analysis.WithStack(body, func(n ast.Node, stack []ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			method := constructorOf(pass, call)
			if method == "" {
				continue
			}
			if len(as.Lhs) <= i && len(as.Rhs) != 1 {
				continue
			}
			lhs := as.Lhs[0]
			if len(as.Rhs) == len(as.Lhs) {
				lhs = as.Lhs[i]
			}
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := pass.ObjectOf(id)
			if obj == nil {
				continue
			}
			writers[obj] = &tracked{obj: obj, created: call.Pos(), method: method}
		}
		return true
	})
	if len(writers) == 0 {
		return
	}

	// Pass 2: classify every other use of each writer variable.
	analysis.WithStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(id)
		w, ok := writers[obj]
		if !ok {
			return true
		}
		classifyUse(pass, w, id, stack)
		return true
	})

	for _, w := range writers {
		if w.escaped {
			continue
		}
		if len(w.finishes) == 0 {
			pass.Reportf(w.created, "buffered writer is never %sed: output is silently truncated on early return or a full disk", verb(w.method))
			continue
		}
		anyChecked := false
		for _, f := range w.finishes {
			if f.checked {
				anyChecked = true
			}
		}
		if anyChecked {
			continue
		}
		for _, f := range w.finishes {
			pass.Reportf(f.pos, "%s error is dropped: a full disk or closed pipe truncates output silently here", w.method)
		}
	}
}

// constructorOf reports the finisher method when call creates a tracked
// buffered writer, or "".
func constructorOf(pass *analysis.Pass, call *ast.CallExpr) string {
	obj := analysis.CalleeObj(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if methods, ok := constructors[obj.Pkg().Name()]; ok {
		return methods[obj.Name()]
	}
	return ""
}

// classifyUse inspects one appearance of the writer variable: a finisher
// call (was its error consumed?), or an escape (returned or stored where the
// flush happens out of sight). Plain argument passing is not an escape — an
// io.Writer consumer writes, it does not own the buffer's lifecycle.
func classifyUse(pass *analysis.Pass, w *tracked, id *ast.Ident, stack []ast.Node) {
	if len(stack) < 2 {
		return
	}
	parent := stack[len(stack)-2]

	// w.Flush() / w.Close(): find the enclosing call and how its value is used.
	if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == id && sel.Sel.Name == w.method {
		if len(stack) >= 3 {
			if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == sel {
				w.finishes = append(w.finishes, finish{pos: call.Pos(), checked: errorConsumed(stack[:len(stack)-3])})
				return
			}
		}
	}

	switch p := parent.(type) {
	case *ast.ReturnStmt:
		w.escaped = true
	case *ast.CompositeLit:
		w.escaped = true
	case *ast.KeyValueExpr:
		w.escaped = true
	case *ast.SendStmt:
		if p.Value == id {
			w.escaped = true
		}
	case *ast.AssignStmt:
		// Appearing on the RHS of an assignment to a non-local (field, index,
		// or previously-declared writer var we already track) escapes; plain
		// re-binding to another local ident keeps tracking via that object's
		// own creation entry, so treat any aliasing as escape to stay sound.
		for _, rhs := range p.Rhs {
			if containsIdent(rhs, id) {
				w.escaped = true
			}
		}
	}
}

// errorConsumed reports whether the call whose ancestor stack is given has
// its result used: assigned to a non-blank variable, returned, compared, or
// passed along — anything but a bare statement or a blank assign.
func errorConsumed(stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	switch p := stack[len(stack)-1].(type) {
	case *ast.ExprStmt:
		return false
	case *ast.DeferStmt, *ast.GoStmt:
		return false
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
				return true
			}
		}
		return false
	default:
		// if err := w.Flush(); ... / return w.Flush() / f(w.Flush()) /
		// w.Flush() != nil — all consume the value.
		return true
	}
}

func containsIdent(e ast.Expr, id *ast.Ident) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if n == id {
			found = true
		}
		return !found
	})
	return found
}

func verb(method string) string {
	if method == "Close" {
		return "Clos"
	}
	return "Flush"
}
