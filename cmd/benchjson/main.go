// Command benchjson converts `go test -bench` text output on stdin into a
// stable JSON document on stdout, so benchmark baselines can be committed
// (BENCH_bvm.json) and diffed. Only result lines are parsed; everything else
// (pass/fail chatter, pkg headers) is ignored.
//
// Usage:
//
//	go test -run '^$' -bench . ./... | go run ./cmd/benchjson > BENCH.json
//	go run ./cmd/benchjson -diff BENCH_bvm.json new.json -threshold 25
//
// In -diff mode the two JSON baselines are compared benchmark by benchmark
// and a delta table is printed; any benchmark slower than the old baseline by
// more than the threshold percentage is a regression, and the exit status is
// nonzero when at least one exists — the CI bench gate.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit status.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	if len(args) > 0 && (args[0] == "-diff" || args[0] == "--diff") {
		var files []string
		threshold := 25.0
		rest := args[1:]
		for i := 0; i < len(rest); i++ {
			switch rest[i] {
			case "-threshold", "--threshold":
				i++
				if i >= len(rest) {
					fmt.Fprintln(stderr, "benchjson: -threshold needs a percentage")
					return 2
				}
				v, err := strconv.ParseFloat(rest[i], 64)
				if err != nil || v < 0 {
					fmt.Fprintf(stderr, "benchjson: bad -threshold %q\n", rest[i])
					return 2
				}
				threshold = v
			default:
				files = append(files, rest[i])
			}
		}
		if len(files) != 2 {
			fmt.Fprintln(stderr, "usage: benchjson -diff old.json new.json [-threshold pct]")
			return 2
		}
		return diff(files[0], files[1], threshold, stdout, stderr)
	}
	if len(args) > 0 {
		fmt.Fprintf(stderr, "benchjson: unknown arguments %v\nusage: benchjson [-diff old.json new.json [-threshold pct]]\n", args)
		return 2
	}
	return convert(stdin, stdout, stderr)
}

// convert parses `go test -bench` text into the sorted JSON baseline form.
func convert(stdin io.Reader, stdout, stderr io.Writer) int {
	var results []Result
	sc := bufio.NewScanner(stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8   12345   678.9 ns/op [...]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i] // strip the GOMAXPROCS suffix
			}
		}
		iters, err1 := strconv.ParseInt(fields[1], 10, 64)
		ns, err2 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil {
			continue
		}
		results = append(results, Result{Name: name, Iterations: iters, NsPerOp: ns})
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	// Write through an explicit buffer and check the Flush: stdout is
	// normally a redirect to BENCH.json, and a full disk that only surfaces
	// at flush time must not silently truncate the committed baseline.
	out := bufio.NewWriter(stdout)
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	if err := out.Flush(); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 1
	}
	return 0
}

// loadBaseline reads one committed benchmark JSON file into a by-name map
// plus the sorted name list (first occurrence wins on duplicates).
func loadBaseline(path string) (map[string]Result, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var results []Result
	if err := json.NewDecoder(f).Decode(&results); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	byName := make(map[string]Result, len(results))
	names := make([]string, 0, len(results))
	for _, r := range results {
		if _, dup := byName[r.Name]; dup {
			continue
		}
		byName[r.Name] = r
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return byName, names, nil
}

// diff compares two baselines and prints a delta table; benchmarks slower
// than threshold percent are regressions and make the exit status 1.
// Benchmarks present on only one side are reported (REMOVED/NEW) but never
// gate — a PR adding or retiring a benchmark should not trip the perf gate.
func diff(oldPath, newPath string, threshold float64, stdout, stderr io.Writer) int {
	oldBy, oldNames, err := loadBaseline(oldPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	newBy, newNames, err := loadBaseline(newPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	w := bufio.NewWriter(stdout)
	nameW := len("benchmark")
	for _, n := range append(append([]string{}, oldNames...), newNames...) {
		nameW = max(nameW, len(n))
	}
	fmt.Fprintf(w, "%-*s  %14s  %14s  %9s\n", nameW, "benchmark", "old ns/op", "new ns/op", "delta")
	regressions := 0
	for _, name := range oldNames {
		o := oldBy[name]
		n, ok := newBy[name]
		if !ok {
			fmt.Fprintf(w, "%-*s  %14.1f  %14s  %9s\n", nameW, name, o.NsPerOp, "-", "REMOVED")
			continue
		}
		pct := 0.0
		if o.NsPerOp > 0 {
			pct = (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		}
		flag := ""
		if pct > threshold {
			flag = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(w, "%-*s  %14.1f  %14.1f  %+8.1f%%%s\n", nameW, name, o.NsPerOp, n.NsPerOp, pct, flag)
	}
	added := 0
	for _, name := range newNames {
		if _, ok := oldBy[name]; !ok {
			fmt.Fprintf(w, "%-*s  %14s  %14.1f  %9s\n", nameW, name, "-", newBy[name].NsPerOp, "NEW")
			added++
		}
	}
	fmt.Fprintf(w, "\n%d benchmarks compared, %d regressions over +%.0f%%, %d new\n",
		len(oldNames), regressions, threshold, added)
	if err := w.Flush(); err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return 2
	}
	if regressions > 0 {
		return 1
	}
	return 0
}
