package bvmcheck_test

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/bvm"
	"repro/internal/bvmalg"
	"repro/internal/bvmcheck"
)

func cfg2(t *testing.T) bvmcheck.Config {
	t.Helper()
	cfg, err := bvmcheck.DefaultConfig(2)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func record(t *testing.T, r int, name string, f func(m *bvm.Machine)) *bvm.Program {
	t.Helper()
	m, err := bvm.New(r, bvm.DefaultRegisters)
	if err != nil {
		t.Fatal(err)
	}
	m.StartRecording(name)
	f(m)
	return m.StopRecording()
}

func parse(t *testing.T, name, src string) *bvm.Program {
	t.Helper()
	p, err := bvm.ParseProgram(name, src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	return p
}

func diagsOf(rep *bvmcheck.Report, cat string) []bvmcheck.Diag {
	var out []bvmcheck.Diag
	for _, d := range rep.Diags {
		if d.Category == cat {
			out = append(out, d)
		}
	}
	return out
}

func TestVerifyAcceptsWellFormed(t *testing.T) {
	p := parse(t, "ok", `
		R[1], B = 1, B (A, A, B);
		R[2], B = F&D, B (R[1], R[1].L, B) IF {0,2};
		A, B = D, maj(F,D,B) (R[2], R[1].S, B);
	`)
	if err := bvmcheck.Verify(p, cfg2(t)); err != nil {
		t.Fatalf("Verify rejected a well-formed program: %v", err)
	}
}

func TestVerifyRejections(t *testing.T) {
	cfg := cfg2(t)
	cases := []struct {
		name string
		prog *bvm.Program
		cat  string
		// noPanic marks defects Exec tolerates (the machine resolves unknown
		// register kinds as general registers) but Verify still rejects.
		noPanic bool
	}{
		{"register index past L", parse(t, "p", "A, B = D, B (A, R[256], B);"), bvmcheck.CatBadRegister, false},
		{"destination past L", parse(t, "p", "R[999], B = 1, B (A, A, B);"), bvmcheck.CatBadRegister, false},
		{"negative index", &bvm.Program{Instrs: []bvm.Instr{
			{Dst: bvm.R(-1), FTT: bvm.TTOne, GTT: bvm.TTB, F: bvm.A, D: bvm.Loc(bvm.A)},
		}}, bvmcheck.CatBadRegister, false},
		{"B as destination", &bvm.Program{Instrs: []bvm.Instr{
			{Dst: bvm.B, FTT: bvm.TTOne, GTT: bvm.TTB, F: bvm.A, D: bvm.Loc(bvm.A)},
		}}, bvmcheck.CatBadDestination, false},
		{"unknown route", &bvm.Program{Instrs: []bvm.Instr{
			{Dst: bvm.R(0), FTT: bvm.TTD, GTT: bvm.TTB, F: bvm.A, D: bvm.Operand{Reg: bvm.R(1), Via: bvm.Route(9)}},
		}}, bvmcheck.CatBadRoute, false},
		{"activation position past Q", parse(t, "p", "A, B = D, B (A, R[0], B) IF {4};"), bvmcheck.CatBadActivation, false},
		{"unknown register kind", &bvm.Program{Instrs: []bvm.Instr{
			{Dst: bvm.RegRef{Kind: bvm.RegKind(7)}, FTT: bvm.TTOne, GTT: bvm.TTB, F: bvm.A, D: bvm.Loc(bvm.A)},
		}}, bvmcheck.CatBadRegister, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := bvmcheck.Verify(c.prog, cfg)
			if err == nil {
				t.Fatal("Verify accepted a malformed program")
			}
			ve, ok := err.(*bvmcheck.VerifyError)
			if !ok {
				t.Fatalf("error type %T, want *VerifyError", err)
			}
			found := false
			for _, d := range ve.Diags {
				if d.Category == c.cat {
					found = true
				}
			}
			if !found {
				t.Fatalf("diagnostics %v lack category %s", ve.Diags, c.cat)
			}
			// Every verification error must be a condition Exec panics on.
			if c.noPanic {
				return
			}
			m, merr := bvm.New(2, bvm.DefaultRegisters)
			if merr != nil {
				t.Fatal(merr)
			}
			func() {
				defer func() {
					if recover() == nil {
						t.Error("Verify flagged an error but Replay did not panic")
					}
				}()
				c.prog.Replay(m)
			}()
		})
	}
}

func TestLintWarningsAreNotVerifyErrors(t *testing.T) {
	// Duplicate activation positions and no-effect activations are legal.
	p := parse(t, "warn", `
		R[0], B = 1, B (A, A, B) IF {1,1};
		R[0], B = 0, B (A, A, B) IF {};
	`)
	cfg := cfg2(t)
	if err := bvmcheck.Verify(p, cfg); err != nil {
		t.Fatalf("warnings failed Verify: %v", err)
	}
	rep := bvmcheck.Lint(p, cfg)
	if len(diagsOf(rep, bvmcheck.CatBadActivation)) != 2 {
		t.Fatalf("want 2 bad-activation warnings, got diags:\n%s", rep)
	}
}

func TestReadBeforeWrite(t *testing.T) {
	cfg := cfg2(t)
	p := parse(t, "rbw", `
		R[0], B = F&D, B (R[1], R[2], B);
		R[1], B = 1, B (A, A, B);
	`)
	rep := bvmcheck.Lint(p, cfg)
	got := diagsOf(rep, bvmcheck.CatReadBeforeWrite)
	if len(got) != 2 {
		t.Fatalf("want read-before-write for R[1] and R[2], got:\n%s", rep)
	}
	for _, d := range got {
		if d.Index != 0 {
			t.Errorf("diag at index %d, want 0", d.Index)
		}
	}
	// The streaming self-shift idiom is exempt.
	p = parse(t, "stream", "R[3], B = D, B (A, R[3].I, B);")
	if n := len(diagsOf(bvmcheck.Lint(p, cfg), bvmcheck.CatReadBeforeWrite)); n != 0 {
		t.Errorf("self-shift stream flagged read-before-write %d times", n)
	}
	// The identity f half (payload in g) is exempt.
	p = parse(t, "setb", "A, B = F, 1 (A, A, B);")
	if n := len(diagsOf(bvmcheck.Lint(p, cfg), bvmcheck.CatReadBeforeWrite)); n != 0 {
		t.Errorf("identity f half flagged read-before-write %d times", n)
	}
}

func TestDeadStore(t *testing.T) {
	cfg := cfg2(t)
	p := parse(t, "dead", `
		R[1], B = 1, B (A, A, B);
		R[1], B = 0, B (A, A, B);
		R[2], B = D, B (A, R[1], B);
	`)
	rep := bvmcheck.Lint(p, cfg)
	got := diagsOf(rep, bvmcheck.CatDeadStore)
	if len(got) != 1 || got[0].Index != 0 {
		t.Fatalf("want one dead store at index 0, got:\n%s", rep)
	}
	// A masked overwrite preserves the old value: not a kill.
	p = parse(t, "masked", `
		R[1], B = 1, B (A, A, B);
		R[1], B = 0, B (A, A, B) IF {0};
		R[2], B = D, B (A, R[1], B);
	`)
	if n := len(diagsOf(bvmcheck.Lint(p, cfg), bvmcheck.CatDeadStore)); n != 0 {
		t.Errorf("masked overwrite produced %d dead-store diags", n)
	}
	// A discarded f half beside a live g half is ISA idiom, not a bug.
	p = parse(t, "scrap", `
		A, B = F^D, F|D (R[1], R[2], B);
		A, B = D, B (R[1], B, B);
	`)
	if n := len(diagsOf(bvmcheck.Lint(p, cfg), bvmcheck.CatDeadStore)); n != 0 {
		t.Errorf("scrap f destination produced %d dead-store diags", n)
	}
	// Once the program writes E, later writes may be disabled: no kills.
	p = parse(t, "egated", `
		E, B = 0, B (A, A, B);
		R[1], B = 1, B (A, A, B);
		R[1], B = 0, B (A, A, B);
	`)
	if n := len(diagsOf(bvmcheck.Lint(p, cfg), bvmcheck.CatDeadStore)); n != 0 {
		t.Errorf("E-gated overwrite produced %d dead-store diags", n)
	}
}

func TestSweepDiscipline(t *testing.T) {
	cfg := cfg2(t)
	fetch := func(m *bvm.Machine, dims ...int) {
		pairs := []bvmalg.Pair{{Src: bvm.R(0), Shadow: bvm.R(1)}}
		m.SetConst(bvm.R(0), true)
		m.SetConst(bvm.R(1), false)
		for _, d := range dims {
			bvmalg.FetchPartner(m, d, pairs, 10)
		}
	}
	clean := [][]int{
		{0, 1, 2, 3, 4, 5}, // full ASCEND
		{5, 4, 3, 2, 1, 0}, // full DESCEND
		{2, 3, 4, 5, 0, 1}, // ASCEND restart (the TT program's shape)
		{0, 1, 2, 2, 3},    // repeated exchange coalesces
		{0, 1, 0, 2, 1, 0}, // bitonic-style interleave: restarts, no skips
	}
	for _, dims := range clean {
		p := record(t, 2, "sweep", func(m *bvm.Machine) { fetch(m, dims...) })
		rep := bvmcheck.Lint(p, cfg)
		if n := len(diagsOf(rep, bvmcheck.CatSweep)); n != 0 {
			t.Errorf("dims %v: %d sweep diags, want 0:\n%s", dims, n, rep)
		}
	}
	bad := [][]int{
		{0, 2, 1},    // ascending skip at program start
		{0, 1, 3, 4}, // ascending skip mid-run
		{5, 4, 2, 1}, // descending skip mid-run
	}
	for _, dims := range bad {
		p := record(t, 2, "sweep", func(m *bvm.Machine) { fetch(m, dims...) })
		rep := bvmcheck.Lint(p, cfg)
		if n := len(diagsOf(rep, bvmcheck.CatSweep)); n != 1 {
			t.Errorf("dims %v: %d sweep diags, want 1:\n%s", dims, n, rep)
		}
	}
	// Sweep structure is reported.
	p := record(t, 2, "sweep", func(m *bvm.Machine) { fetch(m, 2, 3, 4, 5, 0, 1) })
	rep := bvmcheck.Lint(p, cfg)
	if len(rep.Sweeps) != 2 {
		t.Fatalf("sweeps = %+v, want 2 runs", rep.Sweeps)
	}
	if got := rep.Sweeps[0].Dims; len(got) != 4 || got[0] != 2 || got[3] != 5 {
		t.Errorf("first sweep dims = %v, want [2 3 4 5]", got)
	}
	if rep.Sweeps[0].Direction != 1 || rep.Sweeps[1].Direction != 1 {
		t.Errorf("sweep directions = %d, %d, want ascending", rep.Sweeps[0].Direction, rep.Sweeps[1].Direction)
	}
}

func TestCostMatchesDynamicReplay(t *testing.T) {
	cfg := cfg2(t)
	progs := []*bvm.Program{
		record(t, 2, "cycle-id", func(m *bvm.Machine) { bvmalg.CycleID(m, bvm.R(0)) }),
		record(t, 2, "processor-id", func(m *bvm.Machine) { bvmalg.ProcessorID(m, 0) }),
		record(t, 2, "min-reduce", func(m *bvm.Machine) {
			val := bvmalg.Word{Base: 10, Width: 4}
			sh := bvmalg.Word{Base: 14, Width: 4}
			bvmalg.SetWordConst(m, val, 5)
			bvmalg.MinReduce(m, val, 0, m.Top.AddrBits, sh, 30)
		}),
	}
	for _, p := range progs {
		cost := bvmcheck.EstimateCost(p, cfg)
		if cost.Instructions != int64(p.Len()) {
			t.Fatalf("%s: static instruction count %d != %d", p.Name, cost.Instructions, p.Len())
		}
		m, err := bvm.New(2, bvm.DefaultRegisters)
		if err != nil {
			t.Fatal(err)
		}
		p.Replay(m)
		if err := cost.CheckAgainst(m); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if cost.BitOps != cost.Instructions*int64(cfg.Top.N) {
			t.Errorf("%s: bit-ops %d != instructions × PEs", p.Name, cost.BitOps)
		}
	}
	// And a deliberate mismatch is caught.
	m, err := bvm.New(2, bvm.DefaultRegisters)
	if err != nil {
		t.Fatal(err)
	}
	progs[0].Replay(m)
	m.Mov(bvm.A, bvm.Loc(bvm.A)) // one extra dynamic instruction
	if err := bvmcheck.EstimateCost(progs[0], cfg).CheckAgainst(m); err == nil {
		t.Error("CheckAgainst missed an instruction-count mismatch")
	}
}

func TestReportJSON(t *testing.T) {
	p := parse(t, "j", `
		R[1], B = 1, B (A, A, B);
		R[300], B = D, B (A, R[1], B);
	`)
	rep := bvmcheck.Lint(p, cfg2(t))
	raw, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Program string `json:"program"`
		Diags   []struct {
			Index    int    `json:"index"`
			Severity string `json:"severity"`
			Category string `json:"category"`
		} `json:"diags"`
		Cost struct {
			Instructions int64            `json:"instructions"`
			ByRoute      map[string]int64 `json:"by_route"`
		} `json:"cost"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("report JSON does not parse: %v\n%s", err, raw)
	}
	if decoded.Program != "j" || decoded.Cost.Instructions != 2 {
		t.Errorf("decoded %+v", decoded)
	}
	if len(decoded.Diags) == 0 || decoded.Diags[0].Severity != "error" {
		t.Errorf("diags = %+v, want leading error", decoded.Diags)
	}
	if !strings.Contains(string(raw), `"by_route"`) {
		t.Error("cost lacks by_route")
	}
}

func TestLintSkipsDataflowOnMalformed(t *testing.T) {
	p := parse(t, "bad", "R[999], B = D, B (A, R[998], B);")
	rep := bvmcheck.Lint(p, cfg2(t))
	if len(rep.Errors()) == 0 {
		t.Fatal("no errors on malformed program")
	}
	if n := len(diagsOf(rep, bvmcheck.CatReadBeforeWrite)); n != 0 {
		t.Error("dataflow ran on malformed program")
	}
	if !strings.Contains(rep.String(), "skipped") {
		t.Error("report does not mention skipped analyses")
	}
}
