package hypercube

import "fmt"

// This file implements the paper's §4 dataflow algorithms in their hypercube
// ASCEND form: broadcasting (one PE to all) and the two kinds of propagation
// between "i-PE groups" (the sets of PEs whose addresses contain exactly i
// one bits). The BVM instruction-level realizations live in internal/bvmalg;
// these word-level versions are the reference semantics they are tested
// against, and the source of the Figure 6 schedule.

// Transmission records one sender-to-receiver transfer during a pass; Figure 6
// of the paper lists exactly these for a 16-PE broadcast.
type Transmission struct {
	Dim  int
	From int
	To   int
}

func (tr Transmission) String() string {
	return fmt.Sprintf("%04b -> %04b", tr.From, tr.To)
}

// Broadcast copies the value held by PE src to every PE of a 2^dim machine,
// following the paper's Broadcasting() ASCEND algorithm: a SENDER bit marks
// PEs that already hold the value; at dimension t, each PE at the 1-end of
// its dimension-t link whose partner is a sender copies the value and the
// sender bit. (The paper broadcasts from PE 0; src generalizes by symmetry —
// "1-end" is interpreted relative to src, i.e. the end whose address differs
// from src in bit t.) It returns the final values and the transmission
// schedule grouped by dimension.
func Broadcast[T any](dim int, values []T, src int) ([]T, []Transmission) {
	n := 1 << dim
	if len(values) != n {
		panic(fmt.Sprintf("hypercube: values length %d != 2^%d", len(values), dim))
	}
	if src < 0 || src >= n {
		panic(fmt.Sprintf("hypercube: source PE %d out of range", src))
	}
	type st struct {
		v      T
		sender bool
	}
	m := New[st](dim)
	state := m.State()
	for i, v := range values {
		state[i] = st{v: v}
	}
	state[src].sender = true
	var sched []Transmission
	m.Ascend(func(t, addr int, self, partner st) st {
		if !self.sender && partner.sender && (addr^src)&(1<<t) != 0 {
			sched = append(sched, Transmission{Dim: t, From: addr ^ 1<<t, To: addr})
			return st{v: partner.v, sender: true}
		}
		return self
	})
	out := make([]T, n)
	for i, s := range m.State() {
		out[i] = s.v
		if !s.sender {
			panic(fmt.Sprintf("hypercube: broadcast failed to reach PE %d", i))
		}
	}
	return out, sched
}

// Propagation1 implements the paper's first kind of propagation: data flows
// from the g-PE group (addresses with exactly g one bits) to the (g+1)-PE
// group. PE j in the (g+1)-group combines, into its own state, the states of
// every PE k in the g-group with k ⊂ j (as bit sets). Sender marks are NOT
// forwarded during the pass, so data moves exactly one group up.
//
// combine(self, incoming) must be insensitive to the order of incoming
// values (the paper uses logical OR / min). Values of PEs outside the two
// groups are left unchanged.
func Propagation1[T any](dim int, values []T, g int, combine func(self, incoming T) T) []T {
	n := 1 << dim
	if len(values) != n {
		panic(fmt.Sprintf("hypercube: values length %d != 2^%d", len(values), dim))
	}
	if g < 0 || g >= dim {
		panic(fmt.Sprintf("hypercube: group %d out of range [0,%d)", g, dim))
	}
	type st struct {
		v      T
		sender bool
	}
	m := New[st](dim)
	state := m.State()
	for i, v := range values {
		state[i] = st{v: v, sender: popcount(i) == g}
	}
	m.Ascend(func(t, addr int, self, partner st) st {
		// 1-END(PE[j], t) && SENDER(PE[j#t]): j has bit t set, partner is a
		// sender (so j has exactly g+1 bits and k = j minus bit t ⊆ j).
		if addr&(1<<t) != 0 && partner.sender {
			self.v = combine(self.v, partner.v)
		}
		return self
	})
	out := make([]T, n)
	for i, s := range m.State() {
		out[i] = s.v
	}
	return out
}

// Propagation2 implements the paper's second kind of propagation: data flows
// from the g-PE group to every higher group in a single ASCEND pass, because
// a receiver immediately becomes a legal sender (the sender mark travels with
// the data and marks are merged by OR). After the pass, every PE j with
// popcount(j) >= g holds the combination of the states of all g-group PEs
// k ⊆ j.
func Propagation2[T any](dim int, values []T, g int, combine func(self, incoming T) T) []T {
	n := 1 << dim
	if len(values) != n {
		panic(fmt.Sprintf("hypercube: values length %d != 2^%d", len(values), dim))
	}
	if g < 0 || g >= dim {
		panic(fmt.Sprintf("hypercube: group %d out of range [0,%d)", g, dim))
	}
	type st struct {
		v      T
		sender bool
	}
	m := New[st](dim)
	state := m.State()
	for i, v := range values {
		state[i] = st{v: v, sender: popcount(i) == g}
	}
	m.Ascend(func(t, addr int, self, partner st) st {
		if addr&(1<<t) != 0 && partner.sender {
			self.v = combine(self.v, partner.v)
			self.sender = true
		}
		return self
	})
	out := make([]T, n)
	for i, s := range m.State() {
		out[i] = s.v
	}
	return out
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}
