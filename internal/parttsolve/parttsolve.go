// Package parttsolve implements the paper's parallel test-and-treatment
// algorithm (§5–§7) in its ASCEND form, at word level.
//
// One PE is assigned to every (S, i) pair — S a subset of the universe, i an
// action index — with PE address S·2^logN + i, exactly the paper's §7 layout
// (the S bits are the high-order address bits, the action index the low
// ones). The number of actions is padded to a power of two with treatments
// T = U of infinite cost, as §6 prescribes. Each round j = 1..k then runs:
//
//  1. a propagation of the first kind advancing the active-group mark from
//     the (j-1)-PE group to the j-PE group (the paper's §7 solution to the
//     PE-allocation problem: no PE ever computes its popcount);
//  2. R[S,i] = Q[S,i] = M[S,i] locally;
//  3. one ASCEND pass over the S-dimensions carrying both broadcast loops:
//     R[S,i] = R[S−{e},i] where e ∈ S∩T_i and Q[S,i] = Q[S−{e},i] where
//     e ∈ S−T_i, which leaves R[S,i] = M[S−T_i,i] and Q[S,i] = M[S∩T_i,i]
//     (§6's correctness argument);
//  4. M = TP + R (+ Q for tests) on the active group;
//  5. the ASCEND minimization over the action-index dimensions, after which
//     every PE of an active S holds C(S).
//
// All cost arithmetic is the saturating uint64 arithmetic of internal/core,
// so results are bit-identical to the sequential DP.
//
// The algorithm runs on three interchangeable engines: the lockstep
// hypercube machine (internal/hypercube), a goroutine-per-PE hypercube where
// the PEs genuinely run concurrently, and the cube-connected-cycles
// simulator (internal/cccsim), which executes the same ASCEND passes on a
// 3-link-per-PE machine and exposes the paper's slowdown-4-to-6 step counts.
package parttsolve

import (
	"context"
	"fmt"
	"math/bits"

	"repro/internal/ccc"
	"repro/internal/cccsim"
	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/hypercube"
)

// debugChecks enables per-round invariant verification (set by tests).
var debugChecks = false

// Cell is the per-PE state: the paper's M, TP, R and Q arrays plus the
// subset weight p(S) and the group-propagation control bits.
type Cell struct {
	M, TP, R, Q uint64
	PS          uint64 // p(S)
	MI          int32  // action index achieving M (argmin, lowest index on ties)
	Mark        bool   // member of the currently active #S = j group
	Rcv         bool   // receiver scratch for the group propagation
}

// Engine is the execution substrate: both hypercube.Machine[Cell] and
// cccsim.Simulator[Cell] satisfy it, and goroutineEngine adapts the
// goroutine executor.
type Engine interface {
	State() []Cell
	AscendRange(lo, hi int, op hypercube.Op[Cell])
}

// EngineKind selects the execution substrate.
type EngineKind int

const (
	// Lockstep runs on the deterministic word-level hypercube machine.
	Lockstep EngineKind = iota
	// Goroutine runs one goroutine per PE with channel exchanges.
	Goroutine
	// CCC runs on the cube-connected-cycles simulator; the PE count is
	// padded up to the nearest legal CCC size (Q·2^Q) with extra dummy
	// actions.
	CCC
)

func (k EngineKind) String() string {
	switch k {
	case Lockstep:
		return "lockstep"
	case Goroutine:
		return "goroutine"
	case CCC:
		return "ccc"
	}
	return fmt.Sprintf("EngineKind(%d)", int(k))
}

// Result reports the parallel solution and its cost accounting.
type Result struct {
	// Cost is C(U); Inf for inadequate instances.
	Cost uint64
	// C[s] is C(S) for every subset, extracted from the M plane.
	C []uint64
	// Choice[s] is the action index achieving C[s] (lowest on ties), or -1
	// where C[s] is infinite or s is empty — extracted from the machine, so
	// procedure trees can be built from the parallel run alone.
	Choice []int32
	// PEs is the machine size 2^DimBits = 2^k · N' (N' = padded action count).
	PEs     int
	DimBits int
	LogN    int // bits of the padded action index
	// DimSteps counts hypercube dimension steps (the paper's parallel time
	// unit at word level); LocalSteps counts whole-machine local updates.
	DimSteps   int
	LocalSteps int
	// CCCSteps is the CCC instruction count (rotations + combines) when the
	// engine is CCC; 0 otherwise.
	CCCSteps int
	Engine   EngineKind
	// Repairs counts ABFT round repairs: barriers where verification failed,
	// the machine was rebuilt from the trusted mirror, and the round re-ran
	// successfully. Always 0 unless Options.Verify is set.
	Repairs int
}

// Steps returns total parallel word-level steps (dimension + local).
func (r *Result) Steps() int { return r.DimSteps + r.LocalSteps }

// Solve runs the parallel algorithm. The instance must validate (same rules
// as core.Solve).
func Solve(p *core.Problem, kind EngineKind) (*Result, error) {
	return SolveCtx(context.Background(), p, kind)
}

// SolveCtx is Solve with cancellation: the context is polled before the
// machine is built and at every round barrier j = 1..k (each round is one
// full set of ASCEND passes, the natural preemption point of the simulated
// machine), so deadlines stop a long simulation between rounds.
func SolveCtx(ctx context.Context, p *core.Problem, kind EngineKind) (*Result, error) {
	return SolveCheckpointedCtx(ctx, p, kind, nil, nil)
}

// Options bundles the optional plumbing of a parallel solve.
type Options struct {
	// Frontier resumes from a restored level frontier (must carry choices).
	Frontier *core.Frontier
	// Checkpointer fires after every completed round j < K.
	Checkpointer core.Checkpointer
	// Verify enables the ABFT layer (abft.go): a host-side shadow DP checks
	// the machine's full architectural state at every round barrier, repairs
	// one transient corruption per round by rebuilding the machine from the
	// trusted mirror, and refuses with a certify.LevelError when a fault
	// persists through the repair. With a healthy machine the result is
	// bit-identical to an unverified run (Repairs = 0).
	Verify bool
}

// SolveCheckpointedCtx is SolveCtx with durable-solve plumbing. A non-nil
// frontier skips rounds 1..f.Level by restoring the machine state those
// rounds would have produced — the M and MI planes for every completed group
// and the #S = f.Level group mark; everything else (p(S), TP, the R/Q
// scratch) is recomputed, so the restored machine is indistinguishable from
// one that ran the skipped rounds. A non-nil ck fires after every round
// j < k with the (C, Choice) planes extracted from the machine. Results are
// bit-identical to an uninterrupted run.
func SolveCheckpointedCtx(ctx context.Context, p *core.Problem, kind EngineKind, f *core.Frontier, ck core.Checkpointer) (*Result, error) {
	return SolveOpts(ctx, p, kind, Options{Frontier: f, Checkpointer: ck})
}

// SolveOpts runs the parallel algorithm with the full option set.
func SolveOpts(ctx context.Context, p *core.Problem, kind EngineKind, opt Options) (*Result, error) {
	f, ck := opt.Frontier, opt.Checkpointer
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	k := p.K
	if f != nil {
		if err := f.Validate(k); err != nil {
			return nil, err
		}
		if !f.HasChoice() {
			return nil, fmt.Errorf("parttsolve: cost-only frontier cannot seed a choice-producing resume")
		}
	}
	logN := 1
	for 1<<uint(logN) < len(p.Actions) {
		logN++
	}
	dim := k + logN
	if kind == CCC {
		// Pad to a legal CCC machine size by widening the action index.
		top, err := ccc.ForPEs(1 << uint(dim))
		if err != nil {
			return nil, fmt.Errorf("parttsolve: instance needs %d PEs: %w", 1<<uint(dim), err)
		}
		logN = top.AddrBits - k
		if logN < 1 {
			return nil, fmt.Errorf("parttsolve: universe of %d objects cannot fit CCC machine of %d PEs", k, top.N)
		}
		dim = top.AddrBits
	}
	if dim > 26 {
		return nil, fmt.Errorf("parttsolve: machine of 2^%d PEs too large to simulate", dim)
	}

	// Pad the action list with infinite-cost treatments T = U (paper §6).
	actions := append([]core.Action(nil), p.Actions...)
	for len(actions) < 1<<uint(logN) {
		actions = append(actions, core.Action{Set: core.Universe(k), Cost: 0, Treatment: true})
	}
	padded := make([]bool, len(actions))
	for i := len(p.Actions); i < len(actions); i++ {
		padded[i] = true
	}

	var eng Engine
	var cccEng *cccsim.Simulator[Cell]
	switch kind {
	case Lockstep:
		eng = hypercube.New[Cell](dim)
	case Goroutine:
		eng = &goroutineEngine{dim: dim, state: make([]Cell, 1<<uint(dim))}
	case CCC:
		r := 0
		for rr := 1; rr <= ccc.MaxR; rr++ {
			if t, _ := ccc.New(rr); t != nil && t.AddrBits == dim {
				r = rr
			}
		}
		var err error
		cccEng, err = cccsim.New[Cell](r)
		if err != nil {
			return nil, err
		}
		eng = cccEng
	default:
		return nil, fmt.Errorf("parttsolve: unknown engine %v", kind)
	}

	res := &Result{PEs: 1 << uint(dim), DimBits: dim, LogN: logN, Engine: kind}
	state := eng.State()
	iMask := 1<<uint(logN) - 1

	// Initialization: M[∅,i] = 0, M[S,i] = INF otherwise; the ∅ group is the
	// initial group mark; PS accumulates below.
	for addr := range state {
		s := addr >> uint(logN)
		state[addr] = Cell{M: core.Inf, MI: -1, Mark: s == 0}
		if s == 0 {
			state[addr].M = 0
		}
	}

	// p(S) by one ASCEND over the S-dimensions: a PE whose S contains element
	// e takes its partner's running sum plus P_e.
	weights := p.Weights
	eng.AscendRange(logN, dim, func(d, addr int, self, partner Cell) Cell {
		e := d - logN
		if addr>>uint(logN+e)&1 == 1 {
			self.PS = core.SatAdd(partner.PS, weights[e])
		}
		return self
	})
	res.DimSteps += k

	// TP[S,i] = t_i · p(S) (local).
	local(eng, res, func(addr int, c *Cell) {
		c.TP = core.SatMul(actions[addr&iMask].Cost, c.PS)
	})

	startRound := 1
	if f != nil {
		// Restore the machine to its state after round f.Level: every PE of a
		// completed group (#S <= f.Level) holds C(S) and its argmin — the
		// min-reduce of step (5) is an all-reduce over the action dimensions,
		// so the whole group agrees — and the group mark is the #S = f.Level
		// predicate the next first-kind propagation advances from.
		local(eng, res, func(addr int, c *Cell) {
			s := addr >> uint(logN)
			pc := popcount(s)
			if pc <= f.Level {
				c.M, c.MI = f.C[s], f.Choice[s]
			}
			c.Mark = pc == f.Level
		})
		startRound = f.Level + 1
	}

	var ab *abft
	if opt.Verify {
		ab = newABFT(p, actions, logN)
		if f != nil {
			ab.seed(f)
		}
	}

	// runRound executes one complete round j (steps 1–5). It is re-runnable:
	// everything it reads — the frozen M/MI prefix, PS, TP, the mark plane —
	// is exactly what the ABFT repair rebuilds from the trusted mirror.
	runRound := func(j int) error {
		// (1) Advance the group mark: propagation of the first kind over the
		// S-dimensions.
		eng.AscendRange(logN, dim, func(d, addr int, self, partner Cell) Cell {
			e := d - logN
			if addr>>uint(logN+e)&1 == 1 && partner.Mark {
				self.Rcv = true
			}
			return self
		})
		res.DimSteps += k
		local(eng, res, func(addr int, c *Cell) {
			c.Mark, c.Rcv = c.Rcv, false
		})
		if debugChecks {
			if err := CheckGroupInvariant(eng.State(), logN, j); err != nil {
				return err
			}
		}

		// (2) Q = R = M locally.
		local(eng, res, func(addr int, c *Cell) {
			c.R, c.Q = c.M, c.M
		})

		// (3) The two broadcast loops share one ASCEND over the S-dimensions.
		eng.AscendRange(logN, dim, func(d, addr int, self, partner Cell) Cell {
			e := d - logN
			if addr>>uint(logN+e)&1 == 0 {
				return self // partner would be S ∪ {e}: no flow downward
			}
			a := actions[addr&iMask]
			if a.Set.Has(e) {
				self.R = partner.R // e ∈ S∩T_i
			} else {
				self.Q = partner.Q // e ∈ S−T_i
			}
			return self
		})
		res.DimSteps += k

		// (4) Combine on the active group. Actions that would not shrink S
		// need no special case: their R (or Q) still holds the initial
		// M[S,i] = INF, the paper's infinity-initialization argument.
		local(eng, res, func(addr int, c *Cell) {
			if !c.Mark {
				return
			}
			if padded[addr&iMask] {
				c.M = core.Inf // dummy padding action (paper: cost INF)
				c.MI = -1
				return
			}
			if actions[addr&iMask].Treatment {
				c.M = core.SatAdd(c.TP, c.R)
			} else {
				c.M = core.SatAdd(c.TP, core.SatAdd(c.R, c.Q))
			}
			c.MI = int32(addr & iMask)
			if c.M == core.Inf {
				c.MI = -1
			}
		})

		// (5) ASCEND minimization over the action-index dimensions,
		// carrying the argmin alongside (lowest index on ties, matching the
		// sequential DP's first-minimizer rule).
		eng.AscendRange(0, logN, func(d, addr int, self, partner Cell) Cell {
			if partner.M < self.M || (partner.M == self.M && partner.MI >= 0 &&
				(self.MI < 0 || partner.MI < self.MI)) {
				self.M, self.MI = partner.M, partner.MI
			}
			return self
		})
		res.DimSteps += logN
		if abftCorruptHook != nil {
			abftCorruptHook(j, eng.State())
		}
		return nil
	}

	// repair rebuilds the machine from the ABFT mirror as if round j-1 had
	// just completed — the same reconstruction a frontier restore performs,
	// extended to every recomputable plane (PS, TP, scratch), so only a fault
	// that re-asserts itself during the re-run can survive.
	repair := func(j int) {
		local(eng, res, func(addr int, c *Cell) {
			s := addr >> uint(logN)
			pc := popcount(s)
			if pc <= j-1 {
				c.M, c.MI = ab.c[s], ab.choice[s]
			} else {
				c.M, c.MI = core.Inf, -1
			}
			c.Mark = pc == j-1
			c.Rcv = false
			c.R, c.Q = 0, 0
			c.PS = ab.psum[s]
			c.TP = core.SatMul(actions[addr&iMask].Cost, ab.psum[s])
		})
	}

	for j := startRound; j <= k; j++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if ab != nil {
			ab.advance(j)
		}
		if err := runRound(j); err != nil {
			return nil, err
		}
		if ab != nil {
			if rep := ab.verify(eng.State(), j); !rep.OK() {
				repair(j)
				if err := runRound(j); err != nil {
					return nil, err
				}
				if rep = ab.verify(eng.State(), j); !rep.OK() {
					return nil, &certify.LevelError{Engine: kind.String(), Level: j, Report: rep}
				}
				res.Repairs++
			}
		}
		if ck != nil && j < k {
			if err := ck.CheckpointLevel(j, extractPlanes(eng, k, logN)); err != nil {
				return nil, fmt.Errorf("parttsolve: checkpoint at level %d: %w", j, err)
			}
		}
	}

	sol := extractPlanes(eng, k, logN)
	res.C, res.Choice = sol.C, sol.Choice
	res.Cost = res.C[len(res.C)-1]
	if cccEng != nil {
		res.CCCSteps = cccEng.Steps()
	}
	return res, nil
}

// extractPlanes reads the (C, Choice) tables off the machine: PE (S, 0)
// holds C(S) in M and the achieving action in MI after the round that
// activated S (and on every later round — completed groups are never
// rewritten).
func extractPlanes(eng Engine, k, logN int) *core.Solution {
	state := eng.State()
	sol := &core.Solution{
		C:      make([]uint64, 1<<uint(k)),
		Choice: make([]int32, 1<<uint(k)),
	}
	for s := range sol.C {
		sol.C[s] = state[s<<uint(logN)].M
		sol.Choice[s] = state[s<<uint(logN)].MI
		if s == 0 || sol.C[s] == core.Inf {
			sol.Choice[s] = -1
		}
	}
	return sol
}

// local applies a per-PE update to the whole machine and counts one local
// SIMD step.
func local(eng Engine, res *Result, f func(addr int, c *Cell)) {
	state := eng.State()
	for addr := range state {
		f(addr, &state[addr])
	}
	res.LocalSteps++
}

// goroutineEngine adapts hypercube.AscendGoroutines to the Engine interface.
type goroutineEngine struct {
	dim   int
	state []Cell
}

func (g *goroutineEngine) State() []Cell { return g.state }

func (g *goroutineEngine) AscendRange(lo, hi int, op hypercube.Op[Cell]) {
	g.state = hypercube.AscendGoroutines(g.dim, lo, hi, g.state, op)
}

// ExpectedDimSteps returns the dimension-step count the algorithm performs
// for a universe of k objects and padded action bits logN: one k-dim p(S)
// pass plus, per round, a k-dim group pass, a k-dim broadcast pass and a
// logN-dim minimization — the measurable form of the paper's
// O(k·(k + log N)) parallel time.
func ExpectedDimSteps(k, logN int) int {
	return k + k*(2*k+logN)
}

// PaddedLogN returns the action-index width Solve will use for a problem
// with n actions on a non-CCC engine.
func PaddedLogN(n int) int {
	logN := 1
	for 1<<uint(logN) < n {
		logN++
	}
	return logN
}

// popcount is used by the self-check tests.
func popcount(x int) int { return bits.OnesCount(uint(x)) }

// CheckGroupInvariant verifies (for tests) that after round j the mark
// plane equals the #S = j predicate. Exposed so the test suite can assert
// the paper's PE-allocation claim directly.
func CheckGroupInvariant(state []Cell, logN, j int) error {
	for addr, c := range state {
		want := popcount(addr>>uint(logN)) == j
		if c.Mark != want {
			return fmt.Errorf("parttsolve: PE %d mark=%v, want %v at round %d", addr, c.Mark, want, j)
		}
	}
	return nil
}
