// Package chaos is the repository's fault-injection harness: small,
// deterministic wreckers that the resilience tests aim at the durable-solve
// stack. It can kill a solve at any level barrier (Kill), run a checkpoint
// store on a failing disk (FaultFS: ENOSPC, short writes, rename failures),
// and make a serving engine fail or panic on demand (FailFirst, PanicFirst —
// shaped for serve.Config.EngineFault). Production code never imports this
// package; it exists so the tests in this directory and in internal/serve can
// prove the recovery claims of docs/RESILIENCE.md instead of asserting them.
package chaos

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/core"
)

// ErrKilled is the sentinel a Kill checkpointer aborts a solve with. Tests
// treat it as the moral equivalent of SIGKILL: the solve stops between two
// level barriers, with every checkpoint up to and including Level already
// durable.
var ErrKilled = errors.New("chaos: killed after checkpoint")

// Kill is a core.Checkpointer that delegates to Inner (typically a
// checkpoint.Writer) and then, after the checkpoint for Level has been
// persisted, returns ErrKilled. Because the core/parttsolve/bvmtt solvers
// abort on a checkpointer error, this simulates a process dying immediately
// after its last durable write — the worst moment that still has to resume
// exactly.
type Kill struct {
	Inner core.Checkpointer // may be nil: kill without persisting anything
	Level int               // level barrier to die at
}

// CheckpointLevel implements core.Checkpointer.
func (k *Kill) CheckpointLevel(level int, sol *core.Solution) error {
	if k.Inner != nil {
		if err := k.Inner.CheckpointLevel(level, sol); err != nil {
			return err
		}
	}
	if level == k.Level {
		return fmt.Errorf("%w (level %d)", ErrKilled, level)
	}
	return nil
}

// FailFirst returns an engine-fault hook (for serve.Config.EngineFault) that
// fails the named engine's first n solve attempts with err, then heals. Other
// engines pass through untouched — the shape needed to prove a fallback chain
// works and a circuit breaker closes again after recovery.
func FailFirst(engine string, n int64, err error) func(string) error {
	var calls atomic.Int64
	return func(e string) error {
		if e != engine {
			return nil
		}
		if calls.Add(1) <= n {
			return err
		}
		return nil
	}
}

// CorruptFirst returns a result-corruption hook (for serve.Config.ResultFault)
// that silently corrupts the named engine's first n answers, then heals — the
// shape needed to prove certify-before-cache keeps wrong answers out of the
// cache and off the wire.
func CorruptFirst(engine string, n int64) func(string) bool {
	var calls atomic.Int64
	return func(e string) bool {
		return e == engine && calls.Add(1) <= n
	}
}

// PanicFirst is FailFirst with a panic instead of an error return: the first
// n solve attempts on the named engine panic with msg. It proves the serving
// layer's per-solve panic isolation (a crashing engine must translate to a
// failed attempt, not a crashed process).
func PanicFirst(engine string, n int64, msg string) func(string) error {
	var calls atomic.Int64
	return func(e string) error {
		if e == engine && calls.Add(1) <= n {
			panic(msg)
		}
		return nil
	}
}
