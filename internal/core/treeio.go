package core

import (
	"fmt"
	"strings"
)

// This file exports procedure trees for external tooling: Graphviz DOT (for
// figures in the style of the paper's Figure 1) and a compact single-line
// s-expression form used by tests and logs.

// DOT renders the tree in Graphviz format. Test nodes are boxes with +/-
// labeled edges; treatment nodes are double octagons (the paper's double
// arc) whose failure edge is dashed; treated sets appear as leaf ellipses.
func (n *Node) DOT(p *Problem, graphName string) string {
	var sb strings.Builder
	if graphName == "" {
		graphName = "procedure"
	}
	fmt.Fprintf(&sb, "digraph %q {\n  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n", graphName)
	id := 0
	var emit func(n *Node) int
	emit = func(n *Node) int {
		me := id
		id++
		a := p.Actions[n.Action]
		name := a.Name
		if name == "" {
			name = fmt.Sprintf("T%d", n.Action+1)
		}
		if a.Treatment {
			fmt.Fprintf(&sb, "  n%d [shape=doubleoctagon, label=\"%s\\ncost %d on %v\"];\n",
				me, name, a.Cost, n.Set)
			leaf := id
			id++
			fmt.Fprintf(&sb, "  n%d [shape=ellipse, label=\"treated %v\"];\n", leaf, n.Set&a.Set)
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"cured\"];\n", me, leaf)
			if n.Neg != nil {
				c := emit(n.Neg)
				fmt.Fprintf(&sb, "  n%d -> n%d [label=\"failed\", style=dashed];\n", me, c)
			}
			return me
		}
		fmt.Fprintf(&sb, "  n%d [shape=box, label=\"%s\\ncost %d on %v\"];\n", me, name, a.Cost, n.Set)
		if n.Pos != nil {
			c := emit(n.Pos)
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"+\"];\n", me, c)
		}
		if n.Neg != nil {
			c := emit(n.Neg)
			fmt.Fprintf(&sb, "  n%d -> n%d [label=\"-\"];\n", me, c)
		}
		return me
	}
	if n != nil {
		emit(n)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// SExpr renders the tree as a one-line s-expression: (action pos neg) with _
// for absent branches. Stable and compact; used for golden comparisons.
func (n *Node) SExpr(p *Problem) string {
	if n == nil {
		return "_"
	}
	a := p.Actions[n.Action]
	name := a.Name
	if name == "" {
		name = fmt.Sprintf("T%d", n.Action+1)
	}
	if a.Treatment {
		return fmt.Sprintf("(%s! %s)", name, n.Neg.SExpr(p))
	}
	return fmt.Sprintf("(%s %s %s)", name, n.Pos.SExpr(p), n.Neg.SExpr(p))
}

// TreeCostWithWeights evaluates a procedure tree under a different weight
// vector than the one it was optimized for — the misspecified-prior
// robustness question (how much does an optimal policy lose when prevalences
// drift?). The tree's validity does not depend on weights, only its cost.
func TreeCostWithWeights(p *Problem, root *Node, weights []uint64) (uint64, error) {
	if len(weights) != p.K {
		return 0, fmt.Errorf("core: %d weights for %d objects", len(weights), p.K)
	}
	shifted := p.Clone()
	shifted.Weights = append([]uint64(nil), weights...)
	return TreeCost(shifted, root)
}
