package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bvm"
)

func TestDemos(t *testing.T) {
	cases := map[string]string{
		"layout":       "Reg. A",
		"cycle-id":     "cycle\\pos",
		"processor-id": "processor-ID planes",
		"broadcast":    "0000 -> 0001",
		"disasm":       "program cycle-ID",
		"trace":        "register A after each instruction",
		"info":         "links",
	}
	for demo, want := range cases {
		var out strings.Builder
		if err := run([]string{demo}, &out); err != nil {
			t.Fatalf("%s: %v", demo, err)
		}
		if !strings.Contains(out.String(), want) {
			t.Errorf("%s: output missing %q", demo, want)
		}
	}
}

func TestInfoWithR(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-r", "3", "info"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n=2048") {
		t.Errorf("info -r 3 output: %s", out.String())
	}
}

func TestLintFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prog.bvm")
	src := "; a comment\nR[1], B = 1, B (A, A, B);\nR[2], B = D, B (A, R[1].L, B) IF {0,2};\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"lint", path}, &out); err != nil {
		t.Fatalf("lint on a clean program failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "0 errors") {
		t.Errorf("lint output: %s", out.String())
	}

	bad := filepath.Join(t.TempDir(), "bad.bvm")
	if err := os.WriteFile(bad, []byte("R[300], B = D, B (A, R[1], B);\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err := run([]string{"lint", bad}, &out)
	if err == nil {
		t.Fatal("lint accepted a program with errors")
	}
	if !strings.Contains(out.String(), "bad-register") {
		t.Errorf("lint output lacks the diagnostic: %s", out.String())
	}
}

func TestLintJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prog.bvm")
	if err := os.WriteFile(path, []byte("A, B = D, B (A, R[0].S, B);\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"lint", "-json", path}, &out); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Program string `json:"program"`
		Cost    struct {
			Instructions int64 `json:"instructions"`
		} `json:"cost"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("lint -json output does not parse: %v\n%s", err, out.String())
	}
	if rep.Cost.Instructions != 1 {
		t.Errorf("decoded report: %+v", rep)
	}
}

// TestLintSARIF: -sarif output is a well-formed single-run SARIF log whose
// results carry the diagnostic category as ruleId and the listing line as the
// region, and nothing else pollutes the stream.
func TestLintSARIF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.bvm")
	if err := os.WriteFile(path, []byte("R[300], B = D, B (A, R[1], B);\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"lint", "-sarif", path}, &out)
	if err == nil {
		t.Fatal("lint accepted a program with errors")
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name string `json:"name"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					Physical struct {
						Region *struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("lint -sarif output does not parse: %v\n%s", err, out.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 || log.Runs[0].Tool.Driver.Name != "bvmcheck" {
		t.Fatalf("unexpected SARIF envelope: %s", out.String())
	}
	found := false
	for _, res := range log.Runs[0].Results {
		if res.RuleID == "bad-register" && res.Level == "error" {
			found = true
			if len(res.Locations) == 0 || res.Locations[0].Physical.Region == nil ||
				res.Locations[0].Physical.Region.StartLine != 1 {
				t.Errorf("bad-register result lacks its listing line: %+v", res)
			}
		}
	}
	if !found {
		t.Fatalf("no bad-register error in SARIF results: %s", out.String())
	}
}

// TestCheckSARIF: check -sarif emits only the SARIF document (banners and
// cross-check lines are suppressed so the stream stays machine-readable).
func TestCheckSARIF(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"check", "-sarif", "tt"}, &out); err != nil {
		t.Fatalf("check -sarif tt: %v\n%s", err, out.String())
	}
	var log map[string]any
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("check -sarif output is not pure JSON: %v\n%s", err, out.String())
	}
	if log["version"] != "2.1.0" {
		t.Fatalf("SARIF version = %v", log["version"])
	}
}

func TestDisasmPipesIntoLint(t *testing.T) {
	var listing strings.Builder
	if err := run([]string{"disasm"}, &listing); err != nil {
		t.Fatal(err)
	}
	// The listing (with its comment lines) must re-parse and lint clean.
	p, err := bvm.ParseProgram("disasm", listing.String())
	if err != nil {
		t.Fatalf("disasm output does not re-parse: %v", err)
	}
	if p.Len() == 0 {
		t.Fatal("disasm output parsed to an empty program")
	}
}

func TestCheckPrograms(t *testing.T) {
	for _, prog := range []string{"cycle-id", "min-reduce", "tt"} {
		var out strings.Builder
		if err := run([]string{"check", prog}, &out); err != nil {
			t.Fatalf("check %s: %v\n%s", prog, err, out.String())
		}
		if !strings.Contains(out.String(), "0 errors · 0 warnings") {
			t.Errorf("check %s is not clean: %s", prog, out.String())
		}
		if !strings.Contains(out.String(), "cost cross-check: static estimate matches dynamic replay") {
			t.Errorf("check %s lacks the cost cross-check: %s", prog, out.String())
		}
	}
}

func TestCheckTTWithInstance(t *testing.T) {
	path := filepath.Join(t.TempDir(), "inst.json")
	inst := `{"weights": [1, 1], "actions": [
		{"name": "treat-all", "objects": [0, 1], "cost": 4, "treatment": true},
		{"name": "test-0", "objects": [0], "cost": 1}
	]}`
	if err := os.WriteFile(path, []byte(inst), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := run([]string{"check", "-i", path, "tt"}, &out); err != nil {
		t.Fatalf("check tt -i: %v\n%s", err, out.String())
	}
	// Weighted cost: both states need the weight-2 universe treated at
	// action cost 4, and the 1-cost test cannot beat applying it directly.
	if !strings.Contains(out.String(), "tt solved: C(U)=8") {
		t.Errorf("check tt -i output: %s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("no demo accepted")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown demo accepted")
	}
	if err := run([]string{"lint"}, &out); err == nil {
		t.Error("lint with no file accepted")
	}
	if err := run([]string{"check", "bogus"}, &out); err == nil {
		t.Error("check of unknown program accepted")
	}
	if err := run([]string{"info", "extra"}, &out); err == nil {
		t.Error("demo with stray arguments accepted")
	}
	if err := run([]string{"-r", "9", "info"}, &out); err == nil {
		t.Error("bad r accepted")
	}
}

// TestRunToFullDevice pins the flush error path: a demo listing sent to
// /dev/full must exit nonzero instead of silently truncating.
func TestRunToFullDevice(t *testing.T) {
	f, err := os.OpenFile("/dev/full", os.O_WRONLY, 0)
	if err != nil {
		t.Skip("/dev/full not available")
	}
	defer f.Close()
	err = run([]string{"layout"}, f)
	if err == nil {
		t.Fatal("writing the listing to /dev/full reported success")
	}
	if !strings.Contains(err.Error(), "bvmrun: writing output") {
		t.Fatalf("error does not name the output write: %v", err)
	}
}
