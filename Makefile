# Development targets. CI (.github/workflows/ci.yml) runs build, vet,
# staticcheck, test, race, and a short fuzz pass on every push.

GO ?= go

.PHONY: build test race vet lint fuzz-short golden

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# staticcheck is not vendored; install with
#   go install honnef.co/go/tools/cmd/staticcheck@2025.1
# The target degrades to a notice when the binary is absent so offline
# checkouts still make.
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

fuzz-short:
	$(GO) test ./internal/bvm/ -fuzz FuzzParseProgramRoundTrip -fuzztime 30s

# Regenerate the bvmcheck golden reports after an intentional format change.
golden:
	$(GO) test ./internal/bvmcheck/ -run TestGoldenSeededDefects -update
