// Package bvmcheck statically verifies, lints, and cost-analyzes recorded
// Boolean Vector Machine programs (internal/bvm.Program) before they run.
//
// The BVM instruction set is small but easy to misuse: a register index past
// the machine's L, an activation position outside the cycle, or an ASCEND
// loop that visits hypercube dimensions out of order all surface only as a
// runtime panic — or worse, a silently wrong bit pattern. bvmcheck analyzes
// the instruction stream without executing it, in four passes:
//
//  1. Well-formedness (Verify): every register index within [0, L), every
//     neighbor route one of the machine's links, every activation position
//     within the cycle length Q, B never the f-destination. These are
//     exactly the conditions under which Machine.Exec panics, so a program
//     that passes Verify replays without crashing on any machine of the
//     checked geometry. All 256 truth tables are legal by construction
//     (the paper allows arbitrary Boolean functions of F, D, B); the named
//     tables are display sugar only.
//
//  2. Def-use and liveness (Lint): BVM programs are straight-line code, so
//     dataflow is exact. The analysis is truth-table aware — an operand is
//     "read" only if the f or g truth table actually depends on that input,
//     so SetConst-style instructions (f = constant) do not count as reads of
//     their placeholder operands. It flags registers read before any write
//     (programs that silently rely on pre-program machine state are not
//     self-contained under Program.Replay) and dead stores (a full,
//     unconditional write overwritten later with no intervening read), and
//     reports register footprint and peak live-register pressure against
//     the machine's L.
//
//  3. Communication discipline (Lint): the §4–§6 algorithms are ASCEND /
//     DESCEND sweeps over hypercube dimensions built from the FetchPartner
//     idiom. The checker recovers the dimension-exchange events from the
//     instruction stream and verifies each sweep is a contiguous monotone
//     run, flagging sweeps that skip ahead over a dimension — the classic
//     off-by-one that leaves one hypercube axis uncombined.
//
//  4. ABFT mark discipline (Lint): the bvmtt ABFT layer brackets its plane
//     verifications with checksum/barrier marks (bvm.MarkABFTChecksum /
//     bvm.MarkABFTBarrier). The checker warns when an instruction writes a
//     checksummed register inside the window — a stale checksum makes the
//     barrier verify worthless — and when marks are unpaired.
//
//  5. Static cost (EstimateCost): instruction count, per-route traffic, and
//     bit-step totals predicted from the instruction stream alone. Because
//     the machine is SIMD with unit-cost instructions, the static estimate
//     must match the dynamic counters (Machine.InstrCount / RouteCount) of
//     a replay exactly; Cost.CheckAgainst asserts that.
//
// Diagnostics carry the instruction index as printed by Program.Disassemble,
// so lint output lines up with disassembly listings, and the whole report
// marshals to JSON for tooling.
package bvmcheck

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/bvm"
	"repro/internal/ccc"
)

// Severity ranks diagnostics. Errors are conditions under which Machine.Exec
// panics; warnings are legal-but-suspect constructions; infos are metrics.
type Severity int

const (
	SevInfo Severity = iota
	SevWarning
	SevError
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	default:
		return "info"
	}
}

// MarshalJSON renders the severity as its lowercase name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic categories.
const (
	CatBadRegister     = "bad-register"       // register index outside [0, L) or unknown kind
	CatBadDestination  = "bad-destination"    // B as the f-half destination
	CatBadRoute        = "bad-route"          // D routed through a link the machine does not have
	CatBadActivation   = "bad-activation"     // activation position outside [0, Q), duplicates, empty sets
	CatReadBeforeWrite = "read-before-write"  // register read before the program ever writes it
	CatDeadStore       = "dead-store"         // full write overwritten with no intervening read
	CatSweep           = "out-of-order-sweep" // dimension sweep skips ahead non-contiguously
	CatPressure        = "register-pressure"  // informational liveness metrics
	CatABFTWindow      = "abft-window"        // write to a checksummed register before its barrier, or unpaired marks
)

// Diag is one diagnostic. Index is the instruction index exactly as printed
// by Program.Disassemble; program-level diagnostics use index -1.
type Diag struct {
	Index    int      `json:"index"`
	Severity Severity `json:"severity"`
	Category string   `json:"category"`
	Message  string   `json:"message"`
	Instr    string   `json:"instr,omitempty"`
}

func (d Diag) String() string {
	idx := "   -"
	if d.Index >= 0 {
		idx = fmt.Sprintf("%4d", d.Index)
	}
	return fmt.Sprintf("%s  %-7s %-18s %s", idx, d.Severity, d.Category, d.Message)
}

// Config is the static machine description a program is checked against: the
// CCC topology it is meant to run on plus the register file size L.
type Config struct {
	Top       *ccc.Topology
	Registers int
}

// ConfigFor describes an existing machine.
func ConfigFor(m *bvm.Machine) Config { return Config{Top: m.Top, Registers: m.L} }

// DefaultConfig is the paper's machine at CCC parameter r: L = 256 registers.
func DefaultConfig(r int) (Config, error) {
	top, err := ccc.New(r)
	if err != nil {
		return Config{}, err
	}
	return Config{Top: top, Registers: bvm.DefaultRegisters}, nil
}

// MachineInfo is the geometry a report was checked against.
type MachineInfo struct {
	R         int `json:"r"`
	Q         int `json:"q"`
	AddrBits  int `json:"addr_bits"`
	PEs       int `json:"pes"`
	Registers int `json:"registers"`
}

// Report is the full lint result for one program.
type Report struct {
	Program      string      `json:"program"`
	Instructions int         `json:"instructions"`
	Machine      MachineInfo `json:"machine"`
	Diags        []Diag      `json:"diags"`
	Cost         Cost        `json:"cost"`
	Liveness     Liveness    `json:"liveness"`
	Sweeps       []Sweep     `json:"sweeps,omitempty"`
}

// Errors returns the error-severity diagnostics.
func (r *Report) Errors() []Diag { return r.filter(SevError) }

// Warnings returns the warning-severity diagnostics.
func (r *Report) Warnings() []Diag { return r.filter(SevWarning) }

func (r *Report) filter(sev Severity) []Diag {
	var out []Diag
	for _, d := range r.Diags {
		if d.Severity == sev {
			out = append(out, d)
		}
	}
	return out
}

// JSON renders the report machine-readably, indented for human diffing.
func (r *Report) JSON() ([]byte, error) { return json.MarshalIndent(r, "", "  ") }

// String renders the report as a lint listing whose indices match the
// program's Disassemble output, followed by cost and liveness summaries.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; bvmcheck %s — %d instructions · %d errors · %d warnings\n",
		r.Program, r.Instructions, len(r.Errors()), len(r.Warnings()))
	for _, d := range r.Diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
		if d.Instr != "" {
			fmt.Fprintf(&sb, "      > %s\n", d.Instr)
		}
	}
	fmt.Fprintf(&sb, "; cost: %d instructions (%s) · %d routed · %d bit-ops · %d link-bits\n",
		r.Cost.Instructions, r.Cost.routeSummary(), r.Cost.Routed, r.Cost.BitOps, r.Cost.LinkBits)
	highest := "-"
	if r.Liveness.HighestRegister >= 0 {
		highest = fmt.Sprintf("R[%d]", r.Liveness.HighestRegister)
	}
	fmt.Fprintf(&sb, "; registers: footprint %d · peak live %d · highest %s · machine L=%d\n",
		r.Liveness.Footprint, r.Liveness.PeakLive, highest, r.Machine.Registers)
	return sb.String()
}

// Lint runs every analysis pass and returns the full report. The dataflow
// and sweep passes are skipped (with an info diagnostic) when well-formedness
// errors are present, since register indices are not trustworthy then.
func Lint(p *bvm.Program, cfg Config) *Report {
	rep := &Report{
		Program:      p.Name,
		Instructions: p.Len(),
		Machine: MachineInfo{
			R: cfg.Top.R, Q: cfg.Top.Q, AddrBits: cfg.Top.AddrBits,
			PEs: cfg.Top.N, Registers: cfg.Registers,
		},
		Cost: EstimateCost(p, cfg),
	}
	rep.Diags = checkWellFormed(p, cfg)
	if len(rep.Errors()) > 0 {
		rep.Diags = append(rep.Diags, Diag{
			Index: -1, Severity: SevInfo, Category: CatPressure,
			Message: "dataflow and sweep analyses skipped: program is not well-formed",
		})
		rep.Liveness = Liveness{PeakLiveIndex: -1, HighestRegister: -1}
		return rep
	}
	liveDiags, live := analyzeLiveness(p, cfg)
	rep.Diags = append(rep.Diags, liveDiags...)
	rep.Liveness = live
	sweepDiags, sweeps := analyzeSweeps(p, cfg)
	rep.Diags = append(rep.Diags, sweepDiags...)
	rep.Sweeps = sweeps
	rep.Diags = append(rep.Diags, analyzeABFT(p, cfg)...)
	return rep
}

// VerifyError aggregates the error-level diagnostics that made a program
// fail verification.
type VerifyError struct {
	Program string
	Diags   []Diag
}

func (e *VerifyError) Error() string {
	msg := fmt.Sprintf("bvmcheck: program %q: %d error(s)", e.Program, len(e.Diags))
	if len(e.Diags) > 0 {
		msg += ": " + e.Diags[0].Message
		if e.Diags[0].Index >= 0 {
			msg += fmt.Sprintf(" (instruction %d)", e.Diags[0].Index)
		}
	}
	return msg
}

// Verify checks well-formedness only: it returns nil exactly when the program
// replays on a machine of the given geometry without panicking. Warnings do
// not fail verification; use Lint for the full analysis.
func Verify(p *bvm.Program, cfg Config) error {
	var errs []Diag
	for _, d := range checkWellFormed(p, cfg) {
		if d.Severity == SevError {
			errs = append(errs, d)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return &VerifyError{Program: p.Name, Diags: errs}
}
