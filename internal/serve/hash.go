package serve

import (
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/core"
)

// Canonicalize returns a copy of p with the action list order-normalized:
// actions sorted by (set, kind, cost, name). The TT cost function is
// invariant under action permutation, so two requests that differ only in
// action order share one canonical instance — and one cache slot. Weights
// are positional (weight j belongs to object j) and are left untouched.
func Canonicalize(p *core.Problem) *core.Problem {
	c := p.Clone()
	sort.SliceStable(c.Actions, func(i, j int) bool {
		a, b := c.Actions[i], c.Actions[j]
		if a.Set != b.Set {
			return a.Set < b.Set
		}
		if a.Treatment != b.Treatment {
			return !a.Treatment // tests before treatments
		}
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		return a.Name < b.Name
	})
	return c
}

// Hash returns the canonical instance hash: SHA-256 over the instio wire
// form of the canonicalized instance. It delegates to the checkpoint
// package's ProblemHash so cache keys and checkpoint-file hashes are the
// same function by construction — a crash-resumed checkpoint lands in the
// cache slot future requests for the instance will look up.
func Hash(canon *core.Problem) (string, error) {
	return checkpoint.ProblemHash(canon)
}
