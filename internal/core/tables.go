package core

import (
	"math/bits"
	"sync"
)

// DP table pooling: every solver allocates its 2^K tables through per-size
// free lists so a serving process reaches a no-alloc steady state instead of
// handing the GC three fresh 2^K slices per request. Tables come back dirty
// and the solvers are written to tolerate that: each pass assigns every cell
// it will later read (index 0 is reset explicitly), so no zeroing pass is
// needed. SolveMemo is the deliberate exception — its `known` bitmap requires
// zeroed memory — and keeps plain allocation.
//
// Pooling is transparent to callers that never call Release: an unreleased
// Solution is simply garbage-collected like before. Callers on the request
// path (internal/serve) call Solution.Release once the tables have been
// consumed (tree extracted, certification done) to recycle them.

// tableK returns the pool index for a table of the given length, or -1 when
// the length is not a poolable 2^k size.
func tableK(n int) int {
	if n <= 0 || n&(n-1) != 0 {
		return -1
	}
	k := bits.TrailingZeros(uint(n))
	if k > MaxK {
		return -1
	}
	return k
}

var (
	u64Pools [MaxK + 1]sync.Pool
	i32Pools [MaxK + 1]sync.Pool
)

// getU64 returns a length-2^k uint64 table with arbitrary contents.
func getU64(k int) []uint64 {
	if v := u64Pools[k].Get(); v != nil {
		return *(v.(*[]uint64))
	}
	return make([]uint64, 1<<uint(k))
}

// getI32 returns a length-2^k int32 table with arbitrary contents.
func getI32(k int) []int32 {
	if v := i32Pools[k].Get(); v != nil {
		return *(v.(*[]int32))
	}
	return make([]int32, 1<<uint(k))
}

func putU64(t []uint64) {
	if k := tableK(len(t)); k >= 0 {
		u64Pools[k].Put(&t)
	}
}

func putI32(t []int32) {
	if k := tableK(len(t)); k >= 0 {
		i32Pools[k].Put(&t)
	}
}

// Release returns the solution's DP tables to the per-size pools and clears
// the slice fields. The solution (and any alias of its tables, including a
// Frontier built from them) must not be used afterwards. Safe on nil and on
// solutions with partial table sets (cost-only sweeps have no Choice/PSum).
func (s *Solution) Release() {
	if s == nil {
		return
	}
	putU64(s.C)
	putI32(s.Choice)
	putU64(s.PSum)
	s.C, s.Choice, s.PSum = nil, nil, nil
}
