// Diagnosis: the paper's flagship medical application at a realistic size.
// Builds a 12-disease instance with skewed prevalence, cheap symptom checks,
// expensive lab assays and per-disease drugs; solves it optimally; and shows
// how the optimal policy interleaves cheap treatments with tests — the
// behaviour that distinguishes test-and-treatment from pure binary testing.
//
//	go run ./examples/diagnosis
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	problem := workload.MedicalDiagnosis(2024, 12)
	fmt.Printf("diagnosis instance: %d diseases, %d tests, %d treatments\n",
		problem.K, problem.NumTests(), problem.NumTreatments())

	sol, err := core.Solve(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal expected cost: %d  (DP over %d candidate sets, %d ops)\n",
		sol.Cost, len(sol.C), sol.Ops)

	tree, err := sol.Tree(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("procedure: %d nodes, depth %d\n", tree.CountNodes(), tree.Depth())

	// Classify the actions on the most likely path (object 0, the most
	// prevalent disease).
	fmt.Println("\npath for the most likely disease:")
	n := tree
	for n != nil {
		a := problem.Actions[n.Action]
		kind := "test "
		if a.Treatment {
			kind = "treat"
		}
		fmt.Printf("  %s %-14s cost %2d  candidates %v\n", kind, a.Name, a.Cost, n.Set)
		if a.Treatment && a.Set.Has(0) {
			break
		}
		if !a.Treatment && a.Set.Has(0) {
			n = n.Pos
		} else {
			n = n.Neg
		}
	}

	greedy, err := core.GreedyCost(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngreedy heuristic: %d (optimal saves %.1f%%)\n",
		greedy, 100*(float64(greedy)-float64(sol.Cost))/float64(greedy))

	// What would ignoring the diagnosis entirely cost?
	blind := core.SatMul(80, problem.TotalWeight()) // broad-spectrum on everyone
	fmt.Printf("blind broad-spectrum treatment: %d (optimal saves %.1f%%)\n",
		blind, 100*(float64(blind)-float64(sol.Cost))/float64(blind))
}
