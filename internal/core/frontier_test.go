package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// captureCk snapshots every frontier it receives (deep copies, since the
// solver hands over its live tables).
type captureCk struct {
	frontiers []*Frontier
	failAt    int // level at which to return errCkFail; 0 disables
}

var errCkFail = errors.New("checkpointer failed")

func (c *captureCk) CheckpointLevel(level int, sol *Solution) error {
	f := &Frontier{Level: level, C: append([]uint64(nil), sol.C...)}
	if sol.Choice != nil {
		f.Choice = append([]int32(nil), sol.Choice...)
	}
	c.frontiers = append(c.frontiers, f)
	if c.failAt != 0 && level == c.failAt {
		return errCkFail
	}
	return nil
}

func sameSolution(t *testing.T, want, got *Solution, label string) {
	t.Helper()
	if got.Cost != want.Cost {
		t.Fatalf("%s: cost %d, want %d", label, got.Cost, want.Cost)
	}
	for s := range want.C {
		if got.C[s] != want.C[s] {
			t.Fatalf("%s: C[%d] = %d, want %d", label, s, got.C[s], want.C[s])
		}
		if got.Choice[s] != want.Choice[s] {
			t.Fatalf("%s: Choice[%d] = %d, want %d", label, s, got.Choice[s], want.Choice[s])
		}
	}
	if got.Ops != want.Ops {
		t.Fatalf("%s: Ops = %d, want %d", label, got.Ops, want.Ops)
	}
}

func TestSolveCheckpointedMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		k := rng.Intn(6) + 2
		p := randomProblem(rng, k, rng.Intn(6)+2)
		want, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveCheckpointedCtx(context.Background(), p, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, want, got, "level-ordered sweep")
	}
}

// TestResumeAtEveryLevel kills the sweep at every level barrier and resumes
// from the captured frontier, for both the sequential and parallel engines,
// requiring bit-identical tables and Ops against an uninterrupted Solve.
func TestResumeAtEveryLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := randomProblem(rng, 6, 5)
	want, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	ck := &captureCk{}
	if _, err := SolveCheckpointedCtx(context.Background(), p, nil, ck); err != nil {
		t.Fatal(err)
	}
	if len(ck.frontiers) != p.K-1 {
		t.Fatalf("captured %d frontiers, want %d", len(ck.frontiers), p.K-1)
	}
	for _, f := range ck.frontiers {
		seq, err := SolveCheckpointedCtx(context.Background(), p, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		sameSolution(t, want, seq, "seq resume")
		par, err := SolveParallelCheckpointedCtx(context.Background(), p, 3, f, nil)
		if err != nil {
			t.Fatal(err)
		}
		if par.Cost != want.Cost {
			t.Fatalf("parallel resume at level %d: cost %d, want %d", f.Level, par.Cost, want.Cost)
		}
		for s := range want.C {
			if par.C[s] != want.C[s] || par.Choice[s] != want.Choice[s] {
				t.Fatalf("parallel resume at level %d: table mismatch at %d", f.Level, s)
			}
		}
	}
}

func TestParallelCheckpointsMatchSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := randomProblem(rng, 5, 4)
	seqCk, parCk := &captureCk{}, &captureCk{}
	if _, err := SolveCheckpointedCtx(context.Background(), p, nil, seqCk); err != nil {
		t.Fatal(err)
	}
	if _, err := SolveParallelCheckpointedCtx(context.Background(), p, 2, nil, parCk); err != nil {
		t.Fatal(err)
	}
	if len(seqCk.frontiers) != len(parCk.frontiers) {
		t.Fatalf("seq fired %d checkpoints, parallel %d", len(seqCk.frontiers), len(parCk.frontiers))
	}
	for i, sf := range seqCk.frontiers {
		pf := parCk.frontiers[i]
		if sf.Level != pf.Level {
			t.Fatalf("checkpoint %d: levels %d vs %d", i, sf.Level, pf.Level)
		}
		// Compare only the trusted frontier region: above it the engines'
		// scratch values legitimately differ.
		for s := range sf.C {
			if popcountInt(s) > sf.Level {
				continue
			}
			if sf.C[s] != pf.C[s] || sf.Choice[s] != pf.Choice[s] {
				t.Fatalf("checkpoint level %d: frontier mismatch at subset %d", sf.Level, s)
			}
		}
	}
}

func popcountInt(x int) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestCheckpointerErrorAbortsSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomProblem(rng, 5, 4)
	for name, run := range map[string]func(ck Checkpointer) error{
		"seq": func(ck Checkpointer) error {
			_, err := SolveCheckpointedCtx(context.Background(), p, nil, ck)
			return err
		},
		"parallel": func(ck Checkpointer) error {
			_, err := SolveParallelCheckpointedCtx(context.Background(), p, 2, nil, ck)
			return err
		},
	} {
		err := run(&captureCk{failAt: 2})
		if !errors.Is(err, errCkFail) {
			t.Errorf("%s: checkpointer error not propagated: %v", name, err)
		}
	}
}

func TestFrontierValidate(t *testing.T) {
	size := 1 << 4
	good := &Frontier{Level: 2, C: make([]uint64, size), Choice: make([]int32, size)}
	if err := good.Validate(4); err != nil {
		t.Fatalf("valid frontier rejected: %v", err)
	}
	cases := []*Frontier{
		nil,
		{Level: -1, C: make([]uint64, size)},
		{Level: 5, C: make([]uint64, size)},
		{Level: 2, C: make([]uint64, size-1)},
		{Level: 2, C: make([]uint64, size), Choice: make([]int32, 3)},
	}
	for i, f := range cases {
		if err := f.Validate(4); err == nil {
			t.Errorf("case %d: invalid frontier accepted", i)
		}
	}
	bad := &Frontier{Level: 1, C: make([]uint64, size)}
	bad.C[0] = 7
	if err := bad.Validate(4); err == nil {
		t.Error("nonzero C(∅) accepted")
	}
	costOnly := &Frontier{Level: 1, C: make([]uint64, size)}
	rng := rand.New(rand.NewSource(1))
	p := randomProblem(rng, 4, 3)
	if _, err := SolveCheckpointedCtx(context.Background(), p, costOnly, nil); err == nil {
		t.Error("cost-only frontier accepted by a choice-producing resume")
	}
}
