package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/workload"
)

// TestChaosSmoke is the `make chaos-smoke` sequence: build the real binary,
// start it with durable checkpointing and an artificial per-level delay,
// SIGKILL it in the middle of a solve, restart it against the same checkpoint
// directory, and verify the new process finishes the interrupted solve from
// disk — the retried request is a cache hit with the right cost, and the
// consumed checkpoint file is gone.
func TestChaosSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a real server process")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ttserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building ttserve: %v\n%s", err, out)
	}
	ckDir := filepath.Join(dir, "checkpoints")

	p := workload.MedicalDiagnosis(11, 10)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := instio.Write(&body, p, ""); err != nil {
		t.Fatal(err)
	}

	// First life: every level barrier pauses 250ms, so a K=10 solve is slow
	// enough to kill mid-sweep but checkpoints several levels first.
	victim, url := startServer(t, bin,
		"-checkpoint-dir", ckDir, "-chaos-level-delay", "250ms", "-timeout", "30s")
	go http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body.Bytes()))

	deadline := time.Now().Add(15 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint file ever appeared")
		}
		if len(checkpointFiles(t, ckDir)) > 0 {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	// SIGKILL: no drain, no cleanup — the process dies mid-solve and only
	// the durable frontier survives.
	if err := victim.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	victim.Wait()
	if len(checkpointFiles(t, ckDir)) == 0 {
		t.Fatal("checkpoint did not survive the kill")
	}

	// Second life: no chaos. Startup recovery must finish the interrupted
	// solve before the listener is ready, so the very first request hits the
	// cache.
	successor, url2 := startServer(t, bin, "-checkpoint-dir", ckDir)
	defer func() {
		successor.Process.Signal(os.Interrupt)
		successor.Wait()
	}()

	stats := getStats(t, url2)
	if n, _ := stats["checkpoints_resumed"].(float64); n < 1 {
		t.Fatalf("checkpoints_resumed = %v, want >= 1 (stats: %v)", stats["checkpoints_resumed"], stats)
	}
	resp := postSolve(t, url2, body.Bytes(), http.StatusOK)
	if !resp.Cached {
		t.Fatalf("retried request was not served from the recovered cache: %+v", resp)
	}
	if !resp.Adequate || resp.Cost == nil || *resp.Cost != want.Cost {
		t.Fatalf("recovered cost %+v, want %d", resp.Cost, want.Cost)
	}
	if files := checkpointFiles(t, ckDir); len(files) != 0 {
		t.Fatalf("consumed checkpoint files still on disk: %v", files)
	}
}

// startServer launches the built binary on a random port and returns the
// running command plus its base URL, parsed from the ready log line.
func startServer(t *testing.T, bin string, extra ...string) (*exec.Cmd, string) {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if strings.Contains(line, "ttserve listening") {
				for _, f := range strings.Fields(line) {
					if a, ok := strings.CutPrefix(f, "addr="); ok {
						addrCh <- a
					}
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, "http://" + addr
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("server never logged its listen address")
		return nil, ""
	}
}

func checkpointFiles(t *testing.T, dir string) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*"+checkpoint.Ext))
	if err != nil {
		t.Fatal(err)
	}
	return files
}

func getStats(t *testing.T, url string) map[string]any {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}
