package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"testing"
	"time"

	"repro/internal/approx"
	"repro/internal/chaos"
	"repro/internal/checkpoint"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/workload"
)

// startClusterFleet boots n in-process honest cluster workers on loopback
// listeners and returns their addresses.
func startClusterFleet(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		id := fmt.Sprintf("w%d", i)
		done := make(chan struct{})
		go func() {
			defer close(done)
			_ = cluster.Serve(ln, func() cluster.Machine { return cluster.NewHonestMachine(id) }, testLogger())
		}()
		t.Cleanup(func() {
			_ = ln.Close()
			<-done
		})
		addrs[i] = ln.Addr().String()
	}
	return addrs
}

// TestClusterEngineThroughServer runs the distributed engine end to end
// behind the normal serving path: admission, certify-before-cache, and the
// response envelope all see "cluster" as just another engine.
func TestClusterEngineThroughServer(t *testing.T) {
	addrs := startClusterFleet(t, 3)
	s, ts := newTestServer(t, Config{ClusterWorkers: addrs})
	p := workload.MedicalDiagnosis(7, 8)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	sr, status := postSolve(t, ts, "?engine=cluster&tree=1", instanceJSON(t, p))
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if sr.SolvedBy != "cluster" {
		t.Fatalf("solved_by %q, want cluster", sr.SolvedBy)
	}
	if sr.Cost == nil || *sr.Cost != want.Cost {
		t.Fatalf("cluster cost %v, want %d", sr.Cost, want.Cost)
	}
	if sr.Tree == "" {
		t.Fatal("cluster solve returned no procedure tree")
	}
	if s.metrics.ClusterSolves.Load() == 0 || s.metrics.ClusterPlanes.Load() == 0 {
		t.Fatalf("cluster counters solves=%d planes=%d, want both > 0",
			s.metrics.ClusterSolves.Load(), s.metrics.ClusterPlanes.Load())
	}
	if s.metrics.CertifyPass.Load() == 0 {
		t.Fatal("cluster answer was not certified")
	}
}

// TestClusterFallbackOnDeadFleet: an unreachable fleet is an engine fault,
// not an outage — the chain degrades to the in-process engines and the
// answer is still right.
func TestClusterFallbackOnDeadFleet(t *testing.T) {
	s, ts := newTestServer(t, Config{
		ClusterWorkers: []string{"127.0.0.1:1"}, // nothing listens here
		Retries:        -1,
	})
	p := workload.MedicalDiagnosis(3, 6)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	sr, status := postSolve(t, ts, "?engine=cluster", instanceJSON(t, p))
	if status != http.StatusOK || sr.SolvedBy != "parallel" {
		t.Fatalf("status %d solved_by %q, want 200/parallel", status, sr.SolvedBy)
	}
	if sr.Cost == nil || *sr.Cost != want.Cost {
		t.Fatalf("fallback cost %v, want %d", sr.Cost, want.Cost)
	}
	if s.metrics.Fallbacks.Load() == 0 {
		t.Fatal("dead fleet did not count as a fallback")
	}
}

// TestClusterUnconfiguredFailsClosed: selecting the cluster engine on a
// server with no fleet and no fallback is a refusal, not a hang.
func TestClusterUnconfiguredFailsClosed(t *testing.T) {
	_, ts := newTestServer(t, Config{DisableFallback: true, Retries: -1})
	p := workload.MedicalDiagnosis(3, 6)
	_, status := postSolve(t, ts, "?engine=cluster", instanceJSON(t, p))
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", status)
	}
}

// TestBackoffDelayClamp pins the retry pacing contract: every delay is at
// least the attempt's base and never exceeds the 1s ceiling, no matter how
// high the attempt count climbs.
func TestBackoffDelayClamp(t *testing.T) {
	for attempt := 0; attempt <= 30; attempt++ {
		base := 10 * time.Millisecond << uint(min(attempt, 6))
		for trial := 0; trial < 50; trial++ {
			d := backoffDelay(attempt)
			if d > time.Second {
				t.Fatalf("attempt %d: delay %v exceeds the 1s clamp", attempt, d)
			}
			if d < min(base, time.Second) {
				t.Fatalf("attempt %d: delay %v below base %v", attempt, d, base)
			}
		}
	}
}

// TestRetryLatencyBounded: a permanently failing engine with fallback
// disabled must exhaust its retries within the sum of the clamped backoffs —
// the serve path may be unlucky, never unbounded.
func TestRetryLatencyBounded(t *testing.T) {
	const retries = 3
	s, _ := newTestServer(t, Config{
		Retries:          retries,
		DisableFallback:  true,
		BreakerThreshold: -1, // keep every attempt live: the backoff sum is under test
		EngineFault:      func(string) error { return errors.New("permanently down") },
	})
	canon := Canonicalize(workload.MedicalDiagnosis(3, 6))
	hash, err := Hash(canon)
	if err != nil {
		t.Fatal(err)
	}
	// Worst case: retries sleeps of backoffDelay(0..retries-1), each at most
	// twice its base — everything else is compute.
	var budget time.Duration
	for a := 0; a < retries; a++ {
		budget += min(2*(10*time.Millisecond<<uint(a)), time.Second)
	}
	budget += 2 * time.Second // compute + scheduling headroom
	start := time.Now()
	_, err = s.solveResilient(context.Background(), hash, canon, "seq", s.certifyMode, approx.Spec{Raw: "off"})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("permanently failing engine returned an answer")
	}
	if elapsed > budget {
		t.Fatalf("retry loop took %v, want <= %v", elapsed, budget)
	}
	if got := s.metrics.Retries.Load(); got != retries {
		t.Fatalf("retries = %d, want %d", got, retries)
	}
}

// TestRecoverTimeoutBoundsSlowScan: a slow checkpoint disk must not stall
// startup forever. With RecoverTimeout set, recovery stops gracefully —
// no error, unfinished files left on disk for the next start — and without
// it the same directory recovers fully.
func TestRecoverTimeoutBoundsSlowScan(t *testing.T) {
	dir := t.TempDir()
	plant := func(seed int64) {
		canon := Canonicalize(workload.MedicalDiagnosis(seed, 6))
		hash, err := Hash(canon)
		if err != nil {
			t.Fatal(err)
		}
		w, err := checkpoint.NewWriter(nil, dir, canon, hash, "seq", 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := core.SolveCheckpointedCtx(context.Background(), canon, nil, &chaos.Kill{Inner: w, Level: 2}); !errors.Is(err, chaos.ErrKilled) {
			t.Fatal(err)
		}
	}
	plant(4)
	plant(5)

	slow, _ := newTestServer(t, Config{
		CheckpointDir:  dir,
		CheckpointFS:   &chaos.FaultFS{ReadDelay: 300 * time.Millisecond},
		RecoverTimeout: 100 * time.Millisecond,
	})
	start := time.Now()
	resumed, _, err := slow.RecoverCheckpoints(context.Background())
	if err != nil {
		t.Fatalf("budget expiry must be graceful, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("bounded recovery took %v", elapsed)
	}
	if resumed != 0 {
		t.Fatalf("resumed %d solves inside a 100ms budget", resumed)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("%d checkpoints left on disk, want both untouched", len(ents))
	}

	// The same directory, unhurried: both interrupted solves finish.
	fresh, _ := newTestServer(t, Config{CheckpointDir: dir})
	resumed, discarded, err := fresh.RecoverCheckpoints(context.Background())
	if err != nil || resumed != 2 || discarded != 0 {
		t.Fatalf("full recovery = %d resumed, %d discarded, err %v; want 2/0/nil", resumed, discarded, err)
	}
}
