package bvm

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseInstrBasic(t *testing.T) {
	in, err := ParseInstr("R[5], B = F&D, B (R[3], R[2].L, B) IF {0,2};")
	if err != nil {
		t.Fatal(err)
	}
	want := Instr{Dst: R(5), FTT: TTAndFD, GTT: TTB, F: R(3), D: Via(R(2), RouteL),
		Cond: &Activation{Positions: []int{0, 2}}}
	if !reflect.DeepEqual(*in, want) {
		t.Fatalf("parsed %+v, want %+v", *in, want)
	}
}

func TestParseInstrVariants(t *testing.T) {
	cases := []string{
		"A, B = 1, B (A, A, B);",
		"A, B = D, B (A, A.I, B)",                 // no semicolon
		"  12  A, B = D, maj(F,D,B) (A, A.P, B);", // listing index
		"E, B = ~F, 0 (B, B.XS, B) NF {1};",
		"R[0], B = B?D:F, F^D^B (R[1], R[2].XP, B);",
		"A, B = tt:5b, D (A, A.S, B) IF {};",
	}
	for _, c := range cases {
		if _, err := ParseInstr(c); err != nil {
			t.Errorf("%q: %v", c, err)
		}
	}
}

func TestParseInstrErrors(t *testing.T) {
	cases := []string{
		"",                                // empty
		"A = F (A, A, B);",                // missing ', B' dst
		"A, B = F (A, A, B);",             // one tt
		"A, B = F, D A, A, B;",            // missing parens
		"A, B = F, D (A, A);",             // two operands
		"A, B = F, D (A, A, A);",          // third operand not B
		"A, B = F, D (Q, A, B);",          // bad register
		"A, B = F, D (A, A.Z, B);",        // bad route
		"A, B = WAT, D (A, A, B);",        // bad tt
		"A, B = tt:zz, D (A, A, B);",      // bad hex
		"A, B = F, D (A, A, B) WHEN {1};", // bad cond keyword
		"A, B = F, D (A, A, B) IF 1,2;",   // unbraced set
		"A, B = F, D (A, A, B) IF {x};",   // bad position
		"R[x], B = F, D (A, A, B);",       // bad index
	}
	for _, c := range cases {
		if _, err := ParseInstr(c); err == nil {
			t.Errorf("%q: accepted", c)
		}
	}
}

// TestDisassembleParsesBack: a recorded real program round-trips through
// text exactly.
func TestDisassembleParsesBack(t *testing.T) {
	m := newMachine(t, 1)
	m.StartRecording("roundtrip")
	m.SetConst(A, true)
	m.Mov(A, Via(A, RouteI))
	m.And(A, A, Via(A, RouteL))
	m.Mov(R(7), Loc(A), IF(0))
	m.AddStep(R(3), R(1), Loc(R(2)))
	m.MuxB(R(4), R(4), Via(R(5), RouteXS), NF(1))
	prog := m.StopRecording()

	parsed, err := ParseProgram("roundtrip", prog.Disassemble())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Instrs) != len(prog.Instrs) {
		t.Fatalf("parsed %d instructions, want %d", len(parsed.Instrs), len(prog.Instrs))
	}
	for i := range prog.Instrs {
		if !reflect.DeepEqual(parsed.Instrs[i], prog.Instrs[i]) {
			t.Fatalf("instruction %d: parsed %+v, want %+v", i, parsed.Instrs[i], prog.Instrs[i])
		}
	}

	// And the parsed program executes identically.
	m1 := newMachine(t, 1)
	prog.Replay(m1)
	m2 := newMachine(t, 1)
	parsed.Replay(m2)
	if !m1.Snapshot().Equal(m2.Snapshot()) {
		t.Fatal("replay of parsed program diverges")
	}
}

func TestParseProgramCommentsAndErrors(t *testing.T) {
	src := `
; a comment
A, B = 1, B (A, A, B);

A, B = D, B (A, A.S, B);
`
	p, err := ParseProgram("p", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("parsed %d instructions, want 2", p.Len())
	}

	if _, err := ParseProgram("bad", "A, B = F (A, A, B);"); err == nil {
		t.Fatal("bad program accepted")
	}
	if _, err := ParseProgram("bad", "garbage"); err == nil {
		t.Fatal("garbage accepted")
	}
	// Error mentions the line number.
	_, err = ParseProgram("bad", "A, B = 1, B (A, A, B);\nnope")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("error without line number: %v", err)
	}
}
