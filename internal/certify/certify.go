// Package certify is the engine-independent answer verifier behind the
// silent-corruption defense (docs/RESILIENCE.md, "Silent data corruption").
// A stuck PE bit or a broken lateral route in a simulated machine produces a
// *wrong* answer, not an error — so nothing in the retry/breaker/checkpoint
// stack notices. This package re-derives what an engine claims from first
// principles, using only the recurrence
//
//	C(∅)  = 0
//	C(S)  = min_i M[S,i]
//	M[S,i] = t_i·p(S) + C(S∩T_i) + C(S−T_i)   (tests)
//	M[S,i] = t_i·p(S) + C(S−T_i)              (treatments)
//
// and the definition of a successful TT procedure, and reports typed
// Violations instead of trusting the engine.
//
// Three checks, in increasing cost:
//
//   - Tree: structural validity of a returned procedure tree (every object
//     terminated exactly once, tests/treatments used legally, child sets
//     exactly S∩T_i / S−T_i) plus a bottom-up re-pricing compared to the
//     reported C(U). O(K²) — far cheaper than re-solving.
//   - Table: shape invariants of a full cost table and a recomputation of the
//     top cell C(U) from its own entries. O(N).
//   - Monotone and Cells: full monotonicity scan and a seeded spot-audit of
//     sampled DP cells (S,i) against direct recomputation. O(K·2^K) /
//     O(sample·N·K) — audit mode only.
//
// Check dispatches on Mode; serve runs it on every answer before caching.
package certify

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
)

// Mode selects how much of an answer is re-verified before it is trusted.
type Mode int

const (
	// ModeOff trusts engines blindly (the pre-certify behavior).
	ModeOff Mode = iota
	// ModeFast re-prices the returned procedure tree (or, for cost-only
	// answers, recomputes the top DP cell) — cheap enough for every request.
	ModeFast
	// ModeAudit adds the full-table monotonicity scan and a spot-audit of
	// sampled DP cells against the recurrence.
	ModeAudit
)

// ParseMode parses the -certify flag values "off", "fast", and "audit".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "off":
		return ModeOff, nil
	case "fast", "":
		return ModeFast, nil
	case "audit":
		return ModeAudit, nil
	}
	return ModeOff, fmt.Errorf("certify: unknown mode %q (want off, fast, or audit)", s)
}

func (m Mode) String() string {
	switch m {
	case ModeOff:
		return "off"
	case ModeFast:
		return "fast"
	case ModeAudit:
		return "audit"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Kind classifies a Violation.
type Kind string

const (
	// BadStructure: the tree is malformed — action out of range, node set
	// empty or outside the universe, a child's candidate set is not exactly
	// S∩T_i / S−T_i, a test that does not split its set, a treatment that
	// treats nothing, or a treatment node with a positive subtree.
	BadStructure Kind = "structure"
	// BadTermination: some object's induced path never reaches a treatment
	// covering it.
	BadTermination Kind = "termination"
	// BadPrice: the bottom-up re-priced tree cost disagrees with the
	// reported C(U).
	BadPrice Kind = "price"
	// BadShape: the cost table has the wrong geometry or C(∅) ≠ 0.
	BadShape Kind = "table-shape"
	// BadCell: a DP cell disagrees with direct recomputation from the
	// recurrence over the table's own proper-subset entries.
	BadCell Kind = "cell"
	// BadChoice: a recorded argmin is not the lowest-index minimizer.
	BadChoice Kind = "choice"
	// BadMonotone: C(S−{j}) > C(S) for some S and j ∈ S — impossible for a
	// true cost function, since a procedure for S restricted to a subset is
	// valid and no more expensive.
	BadMonotone Kind = "monotone"
	// BadConservation: p(S∩T_i) + p(S−T_i) ≠ p(S) for a probability plane.
	BadConservation Kind = "conservation"
)

// Violation is one certification failure, locating the disagreement.
type Violation struct {
	Kind   Kind
	Set    core.Set // the candidate set involved (0 when not applicable)
	Action int      // action index involved, -1 when not applicable
	Got    uint64   // the engine's value
	Want   uint64   // the independently recomputed value
	Node   string   // worker the value came from ("" for in-process engines)
	Detail string
}

func (v Violation) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s at S=%v", v.Kind, v.Set)
	if v.Action >= 0 {
		fmt.Fprintf(&sb, " action=%d", v.Action)
	}
	if v.Node != "" {
		fmt.Fprintf(&sb, " node=%s", v.Node)
	}
	if v.Got != v.Want {
		fmt.Fprintf(&sb, " got=%s want=%s", costStr(v.Got), costStr(v.Want))
	}
	if v.Detail != "" {
		fmt.Fprintf(&sb, ": %s", v.Detail)
	}
	return sb.String()
}

func costStr(c uint64) string {
	if c == core.Inf {
		return "inf"
	}
	return fmt.Sprintf("%d", c)
}

// Report collects the violations found by one or more checks.
type Report struct {
	Violations []Violation
	Checked    int // DP cells audited by Cells (0 for other checks)
}

// OK reports whether no violation was found.
func (r *Report) OK() bool { return r == nil || len(r.Violations) == 0 }

// Err returns nil for a clean report and an *Error otherwise, so callers can
// fail a solve attempt with errors.As-matchable evidence.
func (r *Report) Err() error {
	if r.OK() {
		return nil
	}
	return &Error{Report: r}
}

func (r *Report) add(v Violation) { r.Violations = append(r.Violations, v) }

// merge appends o's findings into r.
func (r *Report) merge(o *Report) {
	if o == nil {
		return
	}
	r.Violations = append(r.Violations, o.Violations...)
	r.Checked += o.Checked
}

// Error wraps a failed Report as an error.
type Error struct{ Report *Report }

func (e *Error) Error() string {
	n := len(e.Report.Violations)
	return fmt.Sprintf("certify: %d violation(s); first: %s", n, e.Report.Violations[0])
}

// LevelError is returned by an engine whose in-run ABFT invariants failed at
// a level barrier and whose localized recompute could not repair the damage
// (a persistent hardware-model fault rather than a transient upset).
type LevelError struct {
	Engine string
	Level  int
	Report *Report
}

func (e *LevelError) Error() string {
	n := len(e.Report.Violations)
	return fmt.Sprintf("certify: %s engine failed ABFT at level %d after recompute: %d violation(s); first: %s",
		e.Engine, e.Level, n, e.Report.Violations[0])
}

// Tree certifies a returned procedure tree against the problem and the
// reported optimum: structural validity, per-object termination, and a
// bottom-up re-pricing compared to reported. It is deliberately independent
// of the DP tables and of core.TreeCost's path-walk formulation, so a bug or
// fault that corrupts both the answer and the table cannot also corrupt the
// audit. The problem is assumed Validate()-clean.
func Tree(p *core.Problem, root *core.Node, reported uint64) *Report {
	r, total, priced := treeChecks(p, root)
	if !priced {
		return r // structure is broken; the price is meaningless
	}
	if total != reported {
		r.add(Violation{Kind: BadPrice, Set: core.Universe(p.K), Action: -1, Got: reported, Want: total,
			Detail: "bottom-up re-priced tree cost disagrees with reported C(U)"})
	}
	return r
}

// TreeStructure runs the structural and termination checks of Tree without a
// reported optimum to compare against: it certifies that root is a
// well-formed, successful TT procedure for p, nothing more. This is the gate
// for caller-supplied trees (serve's /v1/eval) whose cost is about to be
// *computed* rather than verified — a malformed tree must be rejected before
// any pricing walk trusts its shape.
func TreeStructure(p *core.Problem, root *core.Node) *Report {
	r, _, _ := treeChecks(p, root)
	return r
}

// treeChecks is the shared body of Tree and TreeStructure: root/universe
// validation, the recursive structure check, and the per-object termination
// walk. It returns the bottom-up price and whether that price is meaningful
// (the structural recursion found no violation).
func treeChecks(p *core.Problem, root *core.Node) (r *Report, total uint64, priced bool) {
	r = &Report{}
	if root == nil {
		r.add(Violation{Kind: BadStructure, Action: -1, Detail: "nil procedure tree"})
		return r, 0, false
	}
	u := core.Universe(p.K)
	if root.Set != u {
		r.add(Violation{Kind: BadStructure, Set: root.Set, Action: -1,
			Detail: fmt.Sprintf("root candidate set is not the universe %v", u)})
		return r, 0, false
	}
	total = priceNode(p, root, r)
	if !r.OK() {
		return r, 0, false
	}
	// Belt and braces on termination: the structural recursion already
	// guarantees every object is treated exactly once (child sets partition,
	// leaves are full-cover treatments), but walk each object's induced path
	// anyway so a violated guarantee is reported as what it is.
	for j := 0; j < p.K; j++ {
		n, treated := root, false
		for n != nil {
			a := p.Actions[n.Action]
			if a.Treatment {
				if a.Set.Has(j) {
					treated = true
					break
				}
				n = n.Neg
			} else if a.Set.Has(j) {
				n = n.Pos
			} else {
				n = n.Neg
			}
		}
		if !treated {
			r.add(Violation{Kind: BadTermination, Set: core.SetOf(j), Action: -1,
				Detail: fmt.Sprintf("object %d is never treated", j)})
		}
	}
	return r, total, true
}

// priceNode recursively validates one node's structure and returns the
// expected cost of the subtree: t_i·p(S) plus the children's costs. On a
// structural violation it records it and stops descending that branch (the
// returned price is then unused — Tree discards it when the report is dirty).
// Structure checks run before recursion, so child sets strictly shrink and
// the walk terminates even on adversarial trees.
func priceNode(p *core.Problem, n *core.Node, r *Report) uint64 {
	if n.Action < 0 || n.Action >= len(p.Actions) {
		r.add(Violation{Kind: BadStructure, Set: n.Set, Action: n.Action, Detail: "action index out of range"})
		return 0
	}
	if n.Set == 0 || n.Set&^core.Universe(p.K) != 0 {
		r.add(Violation{Kind: BadStructure, Set: n.Set, Action: n.Action, Detail: "candidate set empty or outside the universe"})
		return 0
	}
	a := p.Actions[n.Action]
	inter := n.Set & a.Set
	diff := n.Set &^ a.Set
	cost := core.SatMul(a.Cost, psum(p, n.Set))
	if a.Treatment {
		if inter == 0 {
			r.add(Violation{Kind: BadStructure, Set: n.Set, Action: n.Action, Detail: "treatment treats nothing in its candidate set"})
			return 0
		}
		if n.Pos != nil {
			r.add(Violation{Kind: BadStructure, Set: n.Set, Action: n.Action, Detail: "treatment node has a positive subtree"})
			return 0
		}
		if diff == 0 {
			if n.Neg != nil {
				r.add(Violation{Kind: BadStructure, Set: n.Set, Action: n.Action, Detail: "full-cover treatment has a negative subtree"})
				return 0
			}
			return cost
		}
		if n.Neg == nil || n.Neg.Set != diff {
			r.add(Violation{Kind: BadStructure, Set: n.Set, Action: n.Action,
				Detail: fmt.Sprintf("negative subtree must cover exactly S−T = %v", diff)})
			return 0
		}
		return core.SatAdd(cost, priceNode(p, n.Neg, r))
	}
	if inter == 0 || diff == 0 {
		r.add(Violation{Kind: BadStructure, Set: n.Set, Action: n.Action, Detail: "test does not split its candidate set"})
		return 0
	}
	if n.Pos == nil || n.Pos.Set != inter {
		r.add(Violation{Kind: BadStructure, Set: n.Set, Action: n.Action,
			Detail: fmt.Sprintf("positive subtree must cover exactly S∩T = %v", inter)})
		return 0
	}
	if n.Neg == nil || n.Neg.Set != diff {
		r.add(Violation{Kind: BadStructure, Set: n.Set, Action: n.Action,
			Detail: fmt.Sprintf("negative subtree must cover exactly S−T = %v", diff)})
		return 0
	}
	return core.SatAdd(cost, core.SatAdd(priceNode(p, n.Pos, r), priceNode(p, n.Neg, r)))
}

// psum computes p(S) directly from the weights in O(|S|), independent of any
// engine's PSum plane.
func psum(p *core.Problem, s core.Set) uint64 {
	var t uint64
	for _, j := range s.Objects() {
		t = core.SatAdd(t, p.Weights[j])
	}
	return t
}

// Table checks the cheap shape invariants of a full cost table: geometry,
// C(∅) = 0, and the top cell C(U) recomputed as min_i M[U,i] from the
// table's own entries. This is the fast-mode fallback for answers that carry
// no procedure tree (cost-only engines, inadequate instances).
func Table(p *core.Problem, c []uint64) *Report {
	r := &Report{}
	size := 1 << uint(p.K)
	if len(c) != size {
		r.add(Violation{Kind: BadShape, Action: -1,
			Detail: fmt.Sprintf("table has %d entries for a %d-object universe", len(c), p.K)})
		return r
	}
	if c[0] != 0 {
		r.add(Violation{Kind: BadShape, Action: -1, Got: c[0], Want: 0, Detail: "C(∅) must be 0"})
	}
	u := core.Universe(p.K)
	best, _ := recompute(p, c, u, psum(p, u))
	if c[u] != best {
		r.add(Violation{Kind: BadCell, Set: u, Action: -1, Got: c[u], Want: best,
			Detail: "top cell disagrees with min_i M[U,i] over the table's own entries"})
	}
	return r
}

// Monotone scans the whole table for monotonicity: C(S−{j}) ≤ C(S) for every
// S and every j ∈ S. A true cost function is monotone (an optimal procedure
// for S, restricted to a subset, is a valid procedure for the subset and
// costs no more), so any inversion is corruption. O(K·2^K), audit mode only.
func Monotone(p *core.Problem, c []uint64) *Report {
	r := &Report{}
	size := 1 << uint(p.K)
	if len(c) != size {
		r.add(Violation{Kind: BadShape, Action: -1,
			Detail: fmt.Sprintf("table has %d entries for a %d-object universe", len(c), p.K)})
		return r
	}
	for s := 1; s < size; s++ {
		for x := uint32(s); x != 0; x &= x - 1 {
			sub := s &^ int(x&-x)
			if c[sub] > c[s] {
				r.add(Violation{Kind: BadMonotone, Set: core.Set(s), Action: -1, Got: c[s], Want: c[sub],
					Detail: fmt.Sprintf("C(%v) < C of its subset %v", core.Set(s), core.Set(sub))})
				if len(r.Violations) >= 8 {
					return r // corruption established; don't flood
				}
			}
		}
	}
	return r
}

// Cells spot-audits sample subsets drawn from a seeded PRNG: for each subset
// S it recomputes every cell M[S,i] from the recurrence over the table's own
// proper-subset entries (including the probability-conservation identity
// p(S∩T_i) + p(S−T_i) = p(S)) and requires C[S] to equal their minimum —
// and, when a choice plane is given, the recorded argmin to be the
// lowest-index minimizer. A table that passes this for all subsets is *the*
// DP table; sampling trades certainty for cost.
func Cells(p *core.Problem, c []uint64, choice []int32, sample int, seed int64) *Report {
	r := &Report{}
	size := 1 << uint(p.K)
	if len(c) != size || (choice != nil && len(choice) != size) {
		r.add(Violation{Kind: BadShape, Action: -1,
			Detail: fmt.Sprintf("table has %d costs / %d choices for a %d-object universe", len(c), len(choice), p.K)})
		return r
	}
	if sample > size-1 {
		sample = size - 1
	}
	rng := rand.New(rand.NewSource(seed))
	for n := 0; n < sample; n++ {
		s := core.Set(1 + rng.Intn(size-1))
		ps := psum(p, s)
		best, bestIdx := recompute(p, c, s, ps)
		r.Checked += len(p.Actions)
		if c[s] != best {
			r.add(Violation{Kind: BadCell, Set: s, Action: -1, Got: c[s], Want: best,
				Detail: "cell disagrees with direct recomputation from the recurrence"})
		} else if choice != nil && choice[s] != bestIdx {
			r.add(Violation{Kind: BadChoice, Set: s, Action: int(choice[s]), Got: uint64(choice[s]), Want: uint64(bestIdx),
				Detail: "recorded argmin is not the lowest-index minimizer"})
		}
		for i, a := range p.Actions {
			inter, diff := s&a.Set, s&^a.Set
			if core.SatAdd(psum(p, inter), psum(p, diff)) != ps {
				r.add(Violation{Kind: BadConservation, Set: s, Action: i, Want: ps,
					Got:    core.SatAdd(psum(p, inter), psum(p, diff)),
					Detail: "p(S∩T) + p(S−T) ≠ p(S)"})
			}
		}
		if len(r.Violations) >= 8 {
			return r
		}
	}
	return r
}

// recompute evaluates C(S) = min_i M[S,i] from the recurrence, reading the
// pieces from the supplied table, with the same exclusion rules and
// lowest-index tie-breaking as every engine.
func recompute(p *core.Problem, c []uint64, s core.Set, ps uint64) (best uint64, bestIdx int32) {
	best, bestIdx = core.Inf, -1
	for i, a := range p.Actions {
		inter := s & a.Set
		diff := s &^ a.Set
		cost := core.SatMul(a.Cost, ps)
		if a.Treatment {
			if inter == 0 {
				cost = core.Inf
			} else {
				cost = core.SatAdd(cost, c[diff])
			}
		} else {
			if inter == 0 || diff == 0 {
				cost = core.Inf
			} else {
				cost = core.SatAdd(cost, core.SatAdd(c[inter], c[diff]))
			}
		}
		if cost < best {
			best, bestIdx = cost, int32(i)
		}
	}
	return best, bestIdx
}

// auditSample is the number of subsets Cells draws in audit mode.
const auditSample = 256

// Check certifies a full answer under mode and returns the (possibly clean)
// report. root may be nil for cost-only answers; c and choice may be nil when
// the engine kept no table (then only the tree check can run). seed
// determines the audit sample — pass anything deterministic per answer.
func Check(p *core.Problem, cost uint64, root *core.Node, c []uint64, choice []int32, mode Mode, seed int64) *Report {
	r := &Report{}
	if mode == ModeOff {
		return r
	}
	if root != nil {
		r.merge(Tree(p, root, cost))
	} else if c != nil {
		r.merge(Table(p, c))
		if cost != c[len(c)-1] {
			r.add(Violation{Kind: BadPrice, Set: core.Universe(p.K), Action: -1, Got: cost, Want: c[len(c)-1],
				Detail: "reported cost disagrees with the table's top cell"})
		}
	} else if cost != core.Inf {
		// A finite claimed optimum with neither a tree nor a table is
		// unverifiable; refuse to certify rather than rubber-stamp.
		r.add(Violation{Kind: BadStructure, Action: -1, Got: cost, Want: cost,
			Detail: "finite cost with no tree or table to certify against"})
	}
	if mode == ModeAudit && c != nil {
		r.merge(Monotone(p, c))
		r.merge(Cells(p, c, choice, auditSample, seed))
	}
	return r
}
