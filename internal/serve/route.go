package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/approx"
	"repro/internal/certify"
	"repro/internal/instio"
	"repro/internal/policy"
)

// The route plane: POST /v1/policy compiles a certified solve into an
// immutable policy artifact; POST /v1/route and /v1/route/batch walk it one
// outcome at a time. Sessions are stateless on the server — all state rides
// in an opaque, MAC-signed cursor the client replays — so a step is cursor
// verify + lock-free artifact lookup + bounds-checked array read + cursor
// re-sign, with no allocation proportional to session count. Publishing
// goes through the full solve admission path (it may run a solve); stepping
// is served even while draining, since a step costs less than the health
// check that would reject it.

// PolicyAction is one action of a published policy, in artifact order —
// the indices /v1/route responses refer to.
type PolicyAction struct {
	Name      string `json:"name,omitempty"`
	Objects   []int  `json:"objects"`
	Cost      uint64 `json:"cost"`
	Treatment bool   `json:"treatment,omitempty"`
}

// PolicyResponse is the /v1/policy reply.
type PolicyResponse struct {
	Policy      string         `json:"policy"`  // canonical instance hash; the route id
	Version     uint32         `json:"version"` // store-assigned, monotonic per id
	K           int            `json:"k"`
	Cost        uint64         `json:"cost"` // certified optimum C(U)
	Nodes       int            `json:"nodes"`
	Bytes       int64          `json:"bytes"`
	Actions     []PolicyAction `json:"actions"`
	CertifyMode string         `json:"certify_mode"`
	SolvedBy    string         `json:"solved_by"`
	Cached      bool           `json:"cached"`
	ElapsedMS   float64        `json:"elapsed_ms"`
}

// handlePolicyPublish solves (or serves from cache) an instance and
// publishes its procedure tree as a compiled route-plane artifact. The
// compile gate demands a certify.Certificate, so an uncertified tree cannot
// be published no matter which path produced it.
func (s *Server) handlePolicyPublish(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	if s.draining.Load() {
		s.rejectShed(w, true)
		return
	}
	q := r.URL.Query()
	engine := q.Get("engine")
	if engine == "" {
		engine = s.cfg.DefaultEngine
	}
	if !validEngine(engine) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown engine %q", engine))
		return
	}
	mode := s.certifyMode
	if cm := q.Get("certify"); cm != "" {
		var err error
		if mode, err = certify.ParseMode(cm); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	p, err := instio.Read(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := s.admit(p, engine); err != nil {
		s.metrics.RejectOversize.Add(1)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	canon := Canonicalize(p)
	hash, err := Hash(canon)
	if err != nil {
		s.metrics.Failures.Add(1)
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancel()
	start := time.Now()
	ent, cached, _, err := s.solveShared(ctx, hash, canon, engine, mode, approx.Spec{Raw: "off"}, s.cfg.DefaultTimeout)
	if err != nil {
		s.solveError(w, err)
		return
	}
	if !ent.adequate {
		httpError(w, http.StatusUnprocessableEntity, "inadequate instance has no policy to publish")
		return
	}
	if ent.tree == nil {
		httpError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("engine %q recorded no procedure tree; publish with a tree-producing engine", ent.engine))
		return
	}
	// Compile-after-certify: even when the cached answer already passed a
	// certify mode, publication re-runs the full tree certifier to mint the
	// capability the compiler demands. A policy can only ever be built from
	// a triple the certifier vouched for.
	cert, err := certify.Certify(ent.canon, ent.tree, ent.cost)
	if err != nil {
		s.metrics.CertifyFail.Add(1)
		s.metrics.Failures.Add(1)
		httpError(w, http.StatusInternalServerError, fmt.Sprintf("served answer failed publish certification: %v", err))
		return
	}
	art, err := policy.Compile(cert, ent.hash)
	if err != nil {
		s.metrics.Failures.Add(1)
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	art, err = s.policies.Publish(art)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	s.metrics.PolicyPublishes.Add(1)
	resp := &PolicyResponse{
		Policy:      art.ID,
		Version:     art.Version,
		K:           art.K,
		Cost:        art.Cost,
		Nodes:       len(art.Nodes),
		Bytes:       art.Bytes(),
		CertifyMode: mode.String(),
		SolvedBy:    ent.engine,
		Cached:      cached,
		ElapsedMS:   float64(time.Since(start).Microseconds()) / 1000,
	}
	for _, a := range art.Actions {
		resp.Actions = append(resp.Actions, PolicyAction{
			Name: a.Name, Objects: a.Set.Objects(), Cost: a.Cost, Treatment: a.Treatment,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePolicyList(w http.ResponseWriter, _ *http.Request) {
	s.metrics.Requests.Add(1)
	writeJSON(w, http.StatusOK, map[string]any{"policies": s.policies.List()})
}

// RouteRequest drives one session. Exactly one of the two forms:
// start — Policy (and optional Version, 0 = latest) names the artifact;
// step — Cursor is the token from the previous response and Outcome is the
// result of the action it asked for (test positive / treatment cured).
type RouteRequest struct {
	Policy  string `json:"policy,omitempty"`
	Version uint32 `json:"version,omitempty"`
	Cursor  string `json:"cursor,omitempty"`
	Outcome *bool  `json:"outcome,omitempty"`
}

// RouteResponse is one step's reply. When Done is false, Action is the
// index (into the published action list) to perform next and Cursor is the
// token to replay with its outcome; when Done is true the procedure has
// treated the fault and the session is over (Action is -1, Cursor empty).
type RouteResponse struct {
	Policy     string `json:"policy"`
	Version    uint32 `json:"version"`
	Session    uint32 `json:"session"`
	Step       uint32 `json:"step"`
	Done       bool   `json:"done"`
	Action     int32  `json:"action"` // -1 when done
	ActionName string `json:"action_name,omitempty"`
	Treatment  bool   `json:"treatment,omitempty"`
	Cursor     string `json:"cursor,omitempty"`
}

// routeFault is a per-step failure with its HTTP mapping; batch members
// carry the message instead of failing the whole request.
type routeFault struct {
	status int
	msg    string
}

func (f *routeFault) Error() string { return f.msg }

var (
	faultBadCursor  = &routeFault{http.StatusBadRequest, "cursor rejected"}
	faultEvicted    = &routeFault{http.StatusGone, "policy version no longer resident; restart the session"}
	faultImpossible = &routeFault{http.StatusConflict, "reported outcome is impossible under the policy"}
)

// routeStart opens a session at an artifact's root.
func (s *Server) routeStart(art *policy.Artifact) RouteResponse {
	s.metrics.RouteSessions.Add(1)
	sid := s.routeSID.Add(1)
	resp := RouteResponse{
		Policy:  art.ID,
		Version: art.Version,
		Session: sid,
		Action:  art.Nodes[art.Root].Action,
		Cursor:  s.keyring.Sign(policy.Cursor{Artifact: art.Key(), Node: art.Root, Session: sid}),
	}
	if act, ok := art.ActionAt(art.Root); ok {
		resp.ActionName, resp.Treatment = act.Name, act.Treatment
	}
	return resp
}

// routeStep advances one session by one verified cursor + outcome.
func (s *Server) routeStep(cursor string, outcome bool) (RouteResponse, *routeFault) {
	c, err := s.keyring.Verify(cursor)
	if err != nil {
		s.metrics.RouteBadCursor.Add(1)
		return RouteResponse{}, faultBadCursor
	}
	art, ok := s.policies.ByKey(c.Artifact)
	if !ok {
		s.metrics.RouteBadCursor.Add(1)
		return RouteResponse{}, faultEvicted
	}
	next, ok := art.Step(c.Node, outcome)
	if !ok {
		s.metrics.RouteBadCursor.Add(1)
		return RouteResponse{}, faultBadCursor
	}
	if next == policy.None {
		return RouteResponse{}, faultImpossible
	}
	s.metrics.RouteSteps.Add(1)
	resp := RouteResponse{Policy: art.ID, Version: art.Version, Session: c.Session, Step: c.Step + 1}
	if next == policy.Done {
		s.metrics.RouteDone.Add(1)
		resp.Done = true
		resp.Action = -1
		return resp, nil
	}
	resp.Action = art.Nodes[next].Action
	if act, ok := art.ActionAt(next); ok {
		resp.ActionName, resp.Treatment = act.Name, act.Treatment
	}
	resp.Cursor = s.keyring.Sign(policy.Cursor{
		Artifact: c.Artifact, Node: next, Session: c.Session, Step: c.Step + 1,
	})
	return resp, nil
}

func (s *Server) handleRoute(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	var req RouteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parsing route request: %v", err))
		return
	}
	switch {
	case req.Cursor != "":
		if req.Policy != "" {
			httpError(w, http.StatusBadRequest, "a route request is either a start (policy) or a step (cursor), not both")
			return
		}
		if req.Outcome == nil {
			httpError(w, http.StatusBadRequest, "a step needs the outcome of the previous action")
			return
		}
		resp, fault := s.routeStep(req.Cursor, *req.Outcome)
		if fault != nil {
			httpError(w, fault.status, fault.msg)
			return
		}
		writeJSON(w, http.StatusOK, &resp)
	case req.Policy != "":
		art, ok := s.policies.Get(req.Policy, req.Version)
		if !ok {
			httpError(w, http.StatusNotFound, "no such policy resident")
			return
		}
		resp := s.routeStart(art)
		writeJSON(w, http.StatusOK, &resp)
	default:
		httpError(w, http.StatusBadRequest, "route request names neither a policy nor a cursor")
	}
}

// RouteBatchRequest steps (or starts) many sessions in one request.
// Start form: Policy (+Version) and Sessions > 0. Step form: parallel
// Cursors/Outcomes arrays. Both are bounded by Config.RouteMaxBatch.
type RouteBatchRequest struct {
	Policy   string   `json:"policy,omitempty"`
	Version  uint32   `json:"version,omitempty"`
	Sessions int      `json:"sessions,omitempty"`
	Cursors  []string `json:"cursors,omitempty"`
	Outcomes []bool   `json:"outcomes,omitempty"`
}

// RouteBatchResponse carries one slot per requested session, parallel to
// the request arrays. A failed member has its message in Errors[i] and
// zero values elsewhere; Errors is omitted entirely when every member
// succeeded.
type RouteBatchResponse struct {
	Policy   string   `json:"policy,omitempty"`
	Version  uint32   `json:"version,omitempty"`
	Sessions []uint32 `json:"sessions"`
	Steps    []uint32 `json:"steps"`
	Actions  []int32  `json:"actions"` // -1 = done (or failed)
	Done     []bool   `json:"done"`
	Cursors  []string `json:"cursors"`
	Errors   []string `json:"errors,omitempty"`
}

func (s *Server) handleRouteBatch(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	var req RouteBatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parsing route batch request: %v", err))
		return
	}
	starting := req.Sessions > 0 || req.Policy != ""
	stepping := len(req.Cursors) > 0 || len(req.Outcomes) > 0
	if starting == stepping {
		httpError(w, http.StatusBadRequest, "a route batch either starts sessions (policy+sessions) or steps cursors, not both")
		return
	}
	n := req.Sessions
	if stepping {
		if len(req.Cursors) != len(req.Outcomes) {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("%d cursors with %d outcomes", len(req.Cursors), len(req.Outcomes)))
			return
		}
		n = len(req.Cursors)
	}
	if n <= 0 || n > s.cfg.RouteMaxBatch {
		s.metrics.RejectOversize.Add(1)
		httpError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("batch of %d sessions outside [1, %d]", n, s.cfg.RouteMaxBatch))
		return
	}
	resp := &RouteBatchResponse{
		Sessions: make([]uint32, n),
		Steps:    make([]uint32, n),
		Actions:  make([]int32, n),
		Done:     make([]bool, n),
		Cursors:  make([]string, n),
	}
	if starting {
		art, ok := s.policies.Get(req.Policy, req.Version)
		if !ok {
			httpError(w, http.StatusNotFound, "no such policy resident")
			return
		}
		resp.Policy, resp.Version = art.ID, art.Version
		for i := 0; i < n; i++ {
			one := s.routeStart(art)
			resp.Sessions[i] = one.Session
			resp.Actions[i] = one.Action
			resp.Cursors[i] = one.Cursor
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	var failed bool
	for i := range req.Cursors {
		one, fault := s.routeStep(req.Cursors[i], req.Outcomes[i])
		if fault != nil {
			if !failed {
				failed = true
				resp.Errors = make([]string, n)
			}
			resp.Errors[i] = fault.msg
			resp.Actions[i] = -1
			continue
		}
		resp.Policy, resp.Version = one.Policy, one.Version
		resp.Sessions[i] = one.Session
		resp.Steps[i] = one.Step
		resp.Actions[i] = one.Action
		resp.Done[i] = one.Done
		resp.Cursors[i] = one.Cursor
	}
	writeJSON(w, http.StatusOK, resp)
}
