package core

import "fmt"

// TreeStats summarizes a procedure tree operationally: what a fielded policy
// costs in actions, not just in expected cost units.
type TreeStats struct {
	// Nodes and Depth describe the tree itself.
	Nodes, Depth int
	// TestNodes and TreatmentNodes partition the nodes by action kind.
	TestNodes, TreatmentNodes int
	// ExpectedActions is the weight-averaged number of actions executed,
	// scaled by the total weight (divide by p(U) for the true expectation).
	ExpectedActions uint64
	// WorstPathCost is the maximum total cost over any object's path.
	WorstPathCost uint64
	// WorstPathLen is the maximum number of actions on any object's path.
	WorstPathLen int
}

// Stats computes TreeStats for a valid procedure tree on problem p.
func Stats(p *Problem, root *Node) (*TreeStats, error) {
	if root == nil {
		return nil, fmt.Errorf("core: nil procedure tree")
	}
	st := &TreeStats{Nodes: root.CountNodes(), Depth: root.Depth()}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if p.Actions[n.Action].Treatment {
			st.TreatmentNodes++
		} else {
			st.TestNodes++
		}
		walk(n.Pos)
		walk(n.Neg)
	}
	walk(root)

	for j := 0; j < p.K; j++ {
		var pathCost uint64
		length := 0
		n := root
		treated := false
		for n != nil {
			a := p.Actions[n.Action]
			pathCost = satAdd(pathCost, a.Cost)
			length++
			if a.Treatment && a.Set.Has(j) {
				treated = true
				break
			}
			if a.Treatment || !a.Set.Has(j) {
				n = n.Neg
			} else {
				n = n.Pos
			}
		}
		if !treated {
			return nil, fmt.Errorf("core: object %d is never treated", j)
		}
		st.ExpectedActions = satAdd(st.ExpectedActions, satMul(uint64(length), p.Weights[j]))
		if pathCost > st.WorstPathCost {
			st.WorstPathCost = pathCost
		}
		if length > st.WorstPathLen {
			st.WorstPathLen = length
		}
	}
	return st, nil
}

func (st *TreeStats) String() string {
	return fmt.Sprintf("%d nodes (%d tests, %d treatments), depth %d, worst path %d actions / cost %d",
		st.Nodes, st.TestNodes, st.TreatmentNodes, st.Depth, st.WorstPathLen, st.WorstPathCost)
}

// ActionEval is one row of an Explain table: how one action prices out at a
// candidate set.
type ActionEval struct {
	Action     int
	Name       string
	Applicable bool
	M          uint64 // M[S,i]; Inf when excluded
	Optimal    bool
}

// Explain prices every action at candidate set s against a finished
// solution — the paper's M[S,i] row made inspectable, for debugging and for
// teaching why the optimal procedure does what it does.
func Explain(p *Problem, sol *Solution, s Set) []ActionEval {
	out := make([]ActionEval, len(p.Actions))
	for i, a := range p.Actions {
		name := a.Name
		if name == "" {
			name = fmt.Sprintf("T%d", i+1)
		}
		ev := ActionEval{Action: i, Name: name, M: Inf}
		inter := s & a.Set
		diff := s &^ a.Set
		if inter != 0 && (a.Treatment || diff != 0) {
			ev.Applicable = true
			cost := satMul(a.Cost, sol.PSum[s])
			if a.Treatment {
				ev.M = satAdd(cost, sol.C[diff])
			} else {
				ev.M = satAdd(cost, satAdd(sol.C[inter], sol.C[diff]))
			}
		}
		ev.Optimal = s != 0 && sol.Choice[s] == int32(i)
		out[i] = ev
	}
	return out
}
