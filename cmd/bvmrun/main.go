// Command bvmrun runs Boolean Vector Machine demonstrations — the machine
// layout and the §4 algorithm figures of the paper — and fronts the static
// checker in internal/bvmcheck.
//
// Usage:
//
//	bvmrun [-r 2] <demo>
//	bvmrun [-r 2] lint  [-json|-sarif] <file.bvm | ->
//	bvmrun [-r 2] check [-json|-sarif] [-i instance.json] [-w width] <program>
//
// Demos:
//
//	layout        Figure 2: the registers × PEs bit array
//	cycle-id      Figure 3: the cycle-ID pattern
//	processor-id  Figures 4-5: processor-ID generation stages
//	broadcast     Figure 6: the 16-PE broadcast schedule
//	disasm        instruction listing of the cycle-ID program (§4.1)
//	trace         instruction-by-instruction state trace of cycle-id (8 PEs)
//	info          machine geometry and link census
//
// lint parses a BVM assembly listing (bvmrun disasm output parses back
// exactly; "-" reads stdin) and prints the bvmcheck report: well-formedness
// errors, dataflow and sweep warnings, and the static cost estimate. The
// diagnostic indices match the listing's own line numbers. With -json the
// report is machine-readable. The exit status is nonzero when the program
// has errors.
//
// check records one of the built-in programs (cycle-id, processor-id,
// broadcast, min-reduce, or the full §6 program tt — optionally on an
// instance from -i) and lints the recording, then cross-checks the static
// cost estimate against the dynamic counters of a fresh replay.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bvm"
	"repro/internal/bvmalg"
	"repro/internal/bvmcheck"
	"repro/internal/bvmtt"
	"repro/internal/ccc"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/instio"
)

// run buffers all demo/report output and surfaces the flush error: a full
// disk or closed pipe must exit nonzero, not silently truncate a listing.
func run(args []string, stdout io.Writer) error {
	out := bufio.NewWriter(stdout)
	err := dispatch(args, out)
	if ferr := out.Flush(); err == nil && ferr != nil {
		err = fmt.Errorf("bvmrun: writing output: %w", ferr)
	}
	return err
}

func dispatch(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bvmrun", flag.ContinueOnError)
	r := fs.Int("r", 2, "CCC parameter r (machine has 2^r·2^(2^r) PEs)")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("bvmrun: want a command (layout, cycle-id, processor-id, broadcast, disasm, trace, info, lint, check)")
	}
	cmd, rest := fs.Arg(0), fs.Args()[1:]
	switch cmd {
	case "lint":
		return runLint(*r, rest, stdout)
	case "check":
		return runCheck(*r, rest, stdout)
	}
	if len(rest) != 0 {
		return fmt.Errorf("bvmrun: demo %s takes no arguments", cmd)
	}
	var (
		out string
		err error
	)
	switch cmd {
	case "layout":
		out, err = experiments.Fig2Layout(*r)
	case "cycle-id":
		out, err = experiments.Fig3CycleID()
	case "processor-id":
		out, err = experiments.Fig45ProcessorID()
	case "broadcast":
		out, err = experiments.Fig6Broadcast()
	case "disasm":
		m, e := bvm.New(*r, bvm.DefaultRegisters)
		if e != nil {
			return e
		}
		m.StartRecording("cycle-ID")
		bvmalg.CycleID(m, bvm.R(0))
		prog := m.StopRecording()
		// The profile line is a comment so the listing pipes into `lint -`.
		out = prog.Disassemble() + "; route profile: " + prog.ProfileString() + "\n"
	case "trace":
		m, e := bvm.New(1, bvm.DefaultRegisters)
		if e != nil {
			return e
		}
		var sb strings.Builder
		sb.WriteString("cycle-ID on the 8-PE machine, register A after each instruction:\n")
		m.SetTracer(func(step int64, in bvm.Instr, mm *bvm.Machine) {
			fmt.Fprintf(&sb, "%2d  %-38s A=", step, in.String())
			v := mm.Peek(bvm.A)
			for pe := 0; pe < mm.N(); pe++ {
				if v.Get(pe) {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			sb.WriteByte('\n')
		})
		bvmalg.CycleID(m, bvm.R(0))
		m.SetTracer(nil)
		sb.WriteString("final (cycle-ID in R[0]):\n")
		sb.WriteString(m.DumpRegisters(0, bvm.R(0)))
		out = sb.String()
	case "info":
		top, e := ccc.New(*r)
		if e != nil {
			return e
		}
		out = fmt.Sprintf("%v\nhypercube of the same size would need %d links (%.2fx)\n",
			top, ccc.HypercubeLinkCount(top.AddrBits),
			float64(ccc.HypercubeLinkCount(top.AddrBits))/float64(top.LinkCount()))
	default:
		return fmt.Errorf("bvmrun: unknown command %q", cmd)
	}
	if err != nil {
		return err
	}
	_, err = io.WriteString(stdout, out)
	return err
}

// emitReport prints a lint report (text, JSON, or SARIF) and returns a
// nonzero-exit error when the program has error-level diagnostics.
func emitReport(rep *bvmcheck.Report, asJSON, asSARIF bool, stdout io.Writer) error {
	switch {
	case asSARIF:
		if err := rep.SARIF().Encode(stdout); err != nil {
			return err
		}
	case asJSON:
		raw, err := rep.JSON()
		if err != nil {
			return err
		}
		if _, err := stdout.Write(append(raw, '\n')); err != nil {
			return err
		}
	default:
		if _, err := io.WriteString(stdout, rep.String()); err != nil {
			return err
		}
	}
	if n := len(rep.Errors()); n > 0 {
		return fmt.Errorf("bvmrun: program %s has %d error(s)", rep.Program, n)
	}
	return nil
}

// runLint parses an assembly listing and reports on it.
func runLint(r int, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bvmrun lint", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	asSARIF := fs.Bool("sarif", false, "emit the report as SARIF 2.1.0")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("bvmrun lint: want one assembly file (or - for stdin)")
	}
	path := fs.Arg(0)
	var (
		src  []byte
		err  error
		name = path
	)
	if path == "-" {
		src, err = io.ReadAll(os.Stdin)
		name = "stdin"
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	prog, err := bvm.ParseProgram(name, string(src))
	if err != nil {
		return err
	}
	cfg, err := bvmcheck.DefaultConfig(r)
	if err != nil {
		return err
	}
	return emitReport(bvmcheck.Lint(prog, cfg), *asJSON, *asSARIF, stdout)
}

// defaultInstance is the hand-computed problem from the test suite: 2
// objects, C(U) = 3.
func defaultInstance() *core.Problem {
	return &core.Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []core.Action{
			{Name: "treat-both", Set: core.SetOf(0, 1), Cost: 3, Treatment: true},
			{Name: "treat-0", Set: core.SetOf(0), Cost: 1, Treatment: true},
			{Name: "treat-1", Set: core.SetOf(1), Cost: 1, Treatment: true},
			{Name: "test-0", Set: core.SetOf(0), Cost: 1},
		},
	}
}

// runCheck records a built-in program, lints it, and cross-checks the static
// cost model against a dynamic replay.
func runCheck(r int, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bvmrun check", flag.ContinueOnError)
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	asSARIF := fs.Bool("sarif", false, "emit the report as SARIF 2.1.0")
	instPath := fs.String("i", "", "instance file for the tt program (JSON; - for stdin)")
	width := fs.Int("w", 0, "cost-word width for the tt program (0 = auto)")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("bvmrun check: want one program (cycle-id, processor-id, broadcast, min-reduce, tt)")
	}

	var (
		prog    *bvm.Program
		machR   = r
		recErr  error
		recordR = func(f func(m *bvm.Machine)) {
			m, err := bvm.New(r, bvm.DefaultRegisters)
			if err != nil {
				recErr = err
				return
			}
			m.StartRecording(fs.Arg(0))
			f(m)
			prog = m.StopRecording()
		}
	)
	switch fs.Arg(0) {
	case "cycle-id":
		recordR(func(m *bvm.Machine) { bvmalg.CycleID(m, bvm.R(0)) })
	case "processor-id":
		recordR(func(m *bvm.Machine) { bvmalg.ProcessorID(m, 0) })
	case "broadcast":
		recordR(func(m *bvm.Machine) {
			w := bvmalg.Word{Base: 10, Width: 4}
			sh := bvmalg.Word{Base: 14, Width: 4}
			bvmalg.ProcessorID(m, 0)
			bvmalg.SetWordConst(m, w, 9)
			bvmalg.MarkPE0(m, bvm.R(20))
			bvmalg.BroadcastWord(m, w, bvm.R(20), 0, sh, bvm.R(21), bvm.R(22), 30)
		})
	case "min-reduce":
		recordR(func(m *bvm.Machine) {
			w := bvmalg.Word{Base: 10, Width: 4}
			sh := bvmalg.Word{Base: 14, Width: 4}
			bvmalg.SetWordConst(m, w, 5)
			bvmalg.MinReduce(m, w, 0, m.Top.AddrBits, sh, 30)
		})
	case "tt":
		inst := defaultInstance()
		if *instPath != "" {
			var err error
			if inst, err = instio.ReadFile(*instPath); err != nil {
				return err
			}
		}
		res, err := bvmtt.SolveRecorded(inst, *width)
		if err != nil {
			return err
		}
		prog, machR = res.Program, res.MachineR
		cu := fmt.Sprintf("%d", res.Cost)
		if res.Cost == core.Inf {
			cu = "inf"
		}
		if !*asJSON && !*asSARIF {
			fmt.Fprintf(stdout, "; tt solved: C(U)=%s on %d PEs (r=%d, width %d)\n",
				cu, res.PEs, res.MachineR, res.Width)
		}
	default:
		return fmt.Errorf("bvmrun check: unknown program %q", fs.Arg(0))
	}
	if recErr != nil {
		return recErr
	}

	cfg, err := bvmcheck.DefaultConfig(machR)
	if err != nil {
		return err
	}
	rep := bvmcheck.Lint(prog, cfg)
	if err := emitReport(rep, *asJSON, *asSARIF, stdout); err != nil {
		return err
	}

	// Cross-check: replay the recording on a fresh machine and require the
	// static estimate to match the dynamic counters exactly.
	m, err := bvm.New(machR, bvm.DefaultRegisters)
	if err != nil {
		return err
	}
	prog.Replay(m)
	if err := rep.Cost.CheckAgainst(m); err != nil {
		return fmt.Errorf("static/dynamic cost mismatch: %w", err)
	}
	if !*asJSON && !*asSARIF {
		fmt.Fprintf(stdout, "; cost cross-check: static estimate matches dynamic replay (%d instructions, %d routed)\n",
			rep.Cost.Instructions, rep.Cost.Routed)
	}
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
