package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/parttsolve"
	"repro/internal/workload"
)

// Virtualization is experiment E15: processor allocation when the instance
// wants more PEs than the machine has. The paper faces this with its
// 2^20-PE machine ("processor allocation and other control issues have been
// faced"); folding virtual PEs onto physical ones (Brent's scheduling)
// dilates time by the fold factor and trades speedup linearly for hardware,
// keeping efficiency flat.
func Virtualization() (*Table, error) {
	t := &Table{
		ID:         "E15",
		Title:      "PE virtualization: speedup vs physical machine size",
		PaperClaim: "the BVM design fixes the PE count (2^20 implementable); larger instances fold onto it",
		Header: []string{"physical PEs", "fold", "Tp (bit-steps)", "S=T1/Tp",
			"S/(p_phys/log p_phys)"},
	}
	const k = 10
	p := workload.Random(99, k, 16, 15)
	seq, err := core.Solve(p)
	if err != nil {
		return nil, err
	}
	res, err := parttsolve.Solve(p, parttsolve.Lockstep)
	if err != nil {
		return nil, err
	}
	t1 := float64(seq.Ops) * float64(k+WordWidth)
	for phys := res.DimBits; phys >= res.DimBits-8; phys -= 2 {
		steps, err := res.VirtualizedSteps(phys)
		if err != nil {
			return nil, err
		}
		tp := float64(steps) * WordWidth
		s := t1 / tp
		pPhys := math.Pow(2, float64(phys))
		t.AddRow(fmt.Sprintf("2^%d", phys),
			func() string { f, _ := res.FoldFactor(phys); return fmt.Sprintf("%d", f) }(),
			fmt.Sprintf("%.3g", tp), fmt.Sprintf("%.1f", s),
			fmt.Sprintf("%.3f", s/(pPhys/math.Log2(pPhys))))
	}
	t.Notes = append(t.Notes,
		"halving the machine halves the speedup: the final column (efficiency against p/log p) degrades only through the log factor",
		fmt.Sprintf("instance: k=%d, %d actions → %d virtual PEs", k, len(p.Actions), res.PEs))
	return t, nil
}
