package chaos

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// readN reads exactly n bytes from c or fails the test.
func readN(t *testing.T, c net.Conn, n int) string {
	t.Helper()
	buf := make([]byte, n)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("reading %d bytes: %v", n, err)
	}
	return string(buf)
}

// expectSilence asserts nothing arrives on c within d.
func expectSilence(t *testing.T, c net.Conn, d time.Duration) {
	t.Helper()
	if err := c.SetReadDeadline(time.Now().Add(d)); err != nil {
		t.Fatal(err)
	}
	n, err := c.Read(make([]byte, 64))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("expected silence, read %d bytes (err %v)", n, err)
	}
}

func TestDelayConn(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	const delay = 50 * time.Millisecond
	f := DelayConn(a, delay)
	start := time.Now()
	go f.Write([]byte("ping"))
	if got := readN(t, b, 4); got != "ping" {
		t.Fatalf("read %q, want ping", got)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Fatalf("delayed write arrived after %v, want >= %v", elapsed, delay)
	}
}

func TestPartitionConn(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	f := PartitionConn(a, 1)
	go f.Write([]byte("one"))
	if got := readN(t, b, 3); got != "one" {
		t.Fatalf("read %q, want one", got)
	}
	// The partitioned write reports full success without blocking — the
	// sender cannot tell anything is wrong — and nothing arrives.
	if n, err := f.Write([]byte("two")); n != 3 || err != nil {
		t.Fatalf("partitioned write = (%d, %v), want silent success", n, err)
	}
	expectSilence(t, b, 100*time.Millisecond)
	if f.Writes() != 2 {
		t.Fatalf("Writes() = %d, want 2", f.Writes())
	}
}

func TestPartitionConnImmediate(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	f := PartitionConn(a, 0)
	if n, err := f.Write([]byte("lost")); n != 4 || err != nil {
		t.Fatalf("write = (%d, %v), want silent success", n, err)
	}
	expectSilence(t, b, 100*time.Millisecond)
}

func TestFaultyConnDuplicateAt(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	f := &FaultyConn{Conn: a, DuplicateAt: 2}
	go func() {
		f.Write([]byte("aa"))
		f.Write([]byte("bb"))
	}()
	if got := readN(t, b, 6); got != "aabbbb" {
		t.Fatalf("read %q, want aabbbb (frame 2 duplicated)", got)
	}
}

func TestFaultyConnTruncateAt(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	f := &FaultyConn{Conn: a, TruncateAt: 2}
	go func() {
		f.Write([]byte("aaaa"))
		if n, err := f.Write([]byte("bbbb")); n != 4 || err != nil {
			t.Errorf("truncated write = (%d, %v), want claimed success", n, err)
		}
		f.Write([]byte("cccc")) // after the tear the link is dead
	}()
	if got := readN(t, b, 4); got != "aaaa" {
		t.Fatalf("read %q, want aaaa", got)
	}
	// Only the first half of frame 2 arrives, then the wire goes quiet.
	if got := readN(t, b, 2); got != "bb" {
		t.Fatalf("read %q, want torn prefix bb", got)
	}
	expectSilence(t, b, 100*time.Millisecond)
}
