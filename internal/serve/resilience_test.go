package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"syscall"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/workload"
)

var errInjected = errors.New("injected engine fault")

// TestFallbackOnEngineFailure: a persistently failing bvm engine must not
// fail the request — the chain degrades to parallel, the response reports
// both the asked-for and the solving engine, and the failures are counted.
func TestFallbackOnEngineFailure(t *testing.T) {
	s, ts := newTestServer(t, Config{
		EngineFault: chaos.FailFirst("bvm", 1<<30, errInjected),
		Retries:     -1, // no retries: the fallback itself is under test
	})
	p := workload.MedicalDiagnosis(3, 6)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	sr, status := postSolve(t, ts, "?engine=bvm", instanceJSON(t, p))
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if sr.Engine != "bvm" || sr.SolvedBy != "parallel" {
		t.Fatalf("engine %q solved_by %q, want bvm/parallel", sr.Engine, sr.SolvedBy)
	}
	if sr.Cost == nil || *sr.Cost != want.Cost {
		t.Fatalf("fallback cost %v, want %d", sr.Cost, want.Cost)
	}
	if s.metrics.Fallbacks.Load() == 0 || s.metrics.EngineFailures.Load() == 0 {
		t.Fatalf("fallbacks=%d engine_failures=%d, want both > 0",
			s.metrics.Fallbacks.Load(), s.metrics.EngineFailures.Load())
	}
}

// TestBreakerOpensAndRecovers drives the full breaker lifecycle: consecutive
// bvm failures open its breaker (visible in stats), requests then skip bvm
// without attempting it, and after the cooldown a half-open probe against the
// healed engine closes it again.
func TestBreakerOpensAndRecovers(t *testing.T) {
	fail := chaos.FailFirst("bvm", 2, errInjected)
	s, ts := newTestServer(t, Config{
		EngineFault:      fail,
		Retries:          -1,
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Millisecond,
	})
	// Two distinct instances, two bvm failures: breaker opens.
	for seed := int64(0); seed < 2; seed++ {
		if _, status := postSolve(t, ts, "?engine=bvm", instanceJSON(t, workload.MedicalDiagnosis(seed, 5))); status != http.StatusOK {
			t.Fatalf("request %d: status %d", seed, status)
		}
	}
	br := s.breaker("bvm")
	if snap := br.snapshot(); snap["state"] != "open" || snap["opens"].(int64) != 1 {
		t.Fatalf("after 2 failures: %v", snap)
	}
	// While open, bvm is skipped outright: solved_by degrades with no attempt.
	attempts := s.metrics.Solves.Load()
	sr, status := postSolve(t, ts, "?engine=bvm", instanceJSON(t, workload.MedicalDiagnosis(2, 5)))
	if status != http.StatusOK || sr.SolvedBy != "parallel" {
		t.Fatalf("open-breaker request: status %d solved_by %q", status, sr.SolvedBy)
	}
	if s.metrics.BreakerRejects.Load() == 0 {
		t.Fatal("open breaker did not reject")
	}
	if got := s.metrics.Solves.Load() - attempts; got != 1 {
		t.Fatalf("%d attempts while breaker open, want 1 (parallel only)", got)
	}
	// After the cooldown the hook has healed (it failed only twice): the
	// half-open probe succeeds and the breaker closes.
	time.Sleep(50 * time.Millisecond)
	sr, status = postSolve(t, ts, "?engine=bvm", instanceJSON(t, workload.MedicalDiagnosis(3, 5)))
	if status != http.StatusOK || sr.SolvedBy != "bvm" {
		t.Fatalf("post-cooldown request: status %d solved_by %q", status, sr.SolvedBy)
	}
	if snap := br.snapshot(); snap["state"] != "closed" {
		t.Fatalf("breaker did not close after successful probe: %v", snap)
	}
}

// TestPanicIsolationAndRetry: an engine that panics is one failed attempt —
// recovered, retried, and (here) healed on the second try, never a crashed
// process.
func TestPanicIsolationAndRetry(t *testing.T) {
	s, ts := newTestServer(t, Config{
		EngineFault: chaos.PanicFirst("seq", 1, "chaos panic"),
		Retries:     1,
	})
	p := workload.MedicalDiagnosis(5, 6)
	sr, status := postSolve(t, ts, "?engine=seq", instanceJSON(t, p))
	if status != http.StatusOK || sr.SolvedBy != "seq" {
		t.Fatalf("status %d solved_by %q", status, sr.SolvedBy)
	}
	if s.metrics.Retries.Load() != 1 || s.metrics.EngineFailures.Load() != 1 {
		t.Fatalf("retries=%d engine_failures=%d, want 1/1",
			s.metrics.Retries.Load(), s.metrics.EngineFailures.Load())
	}
}

// TestDisableFallback: with the chain disabled, a sick engine's failure is
// the request's failure.
func TestDisableFallback(t *testing.T) {
	_, ts := newTestServer(t, Config{
		EngineFault:     chaos.FailFirst("bvm", 1<<30, errInjected),
		Retries:         -1,
		DisableFallback: true,
	})
	_, status := postSolve(t, ts, "?engine=bvm", instanceJSON(t, workload.MedicalDiagnosis(3, 5)))
	if status != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", status)
	}
}

// TestCheckpointLifecycle: a solve with a checkpoint directory writes level
// frontiers while running and removes the file once the answer exists.
func TestCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{CheckpointDir: dir})
	p := workload.MedicalDiagnosis(7, 9)
	if _, status := postSolve(t, ts, "?engine=seq", instanceJSON(t, p)); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if got := s.metrics.CheckpointLevels.Load(); got != int64(p.K-1) {
		t.Fatalf("wrote %d levels, want %d", got, p.K-1)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("checkpoint residue after a finished solve: %v", ents)
	}
}

// TestCheckpointDiskFailureDoesNotFailSolve: persistence is best-effort in
// the serving path — a full disk costs durability, not answers.
func TestCheckpointDiskFailureDoesNotFailSolve(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{
		CheckpointDir: dir,
		CheckpointFS:  &chaos.FaultFS{FailWriteAt: 1, WriteErr: syscall.ENOSPC},
	})
	p := workload.MedicalDiagnosis(11, 8)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	sr, status := postSolve(t, ts, "?engine=seq", instanceJSON(t, p))
	if status != http.StatusOK || sr.Cost == nil || *sr.Cost != want.Cost {
		t.Fatalf("status %d cost %v, want 200/%d", status, sr.Cost, want.Cost)
	}
	if s.metrics.CheckpointErrors.Load() == 0 {
		t.Fatal("disk failure not counted")
	}
}

// TestCrashResume is the crash-recovery path end to end, in-process: a solve
// killed at a level barrier leaves its durable frontier; a freshly started
// server recovers it before serving, the instance is answered from cache,
// and the consumed checkpoint plus a planted corrupt one are cleaned up.
func TestCrashResume(t *testing.T) {
	dir := t.TempDir()
	canon := Canonicalize(workload.MedicalDiagnosis(13, 9))
	hash, err := Hash(canon)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Solve(canon)
	if err != nil {
		t.Fatal(err)
	}
	// "Crash": die right after level 5's durable write.
	w, err := checkpoint.NewWriter(nil, dir, canon, hash, "seq", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.SolveCheckpointedCtx(context.Background(), canon, nil, &chaos.Kill{Inner: w, Level: 5}); !errors.Is(err, chaos.ErrKilled) {
		t.Fatal(err)
	}
	// Plant garbage the scan must quarantine.
	if err := os.WriteFile(filepath.Join(dir, "junk.ckpt"), []byte("TTCKjunk"), 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Config{CheckpointDir: dir})
	resumed, discarded, err := s.RecoverCheckpoints(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 || discarded != 1 {
		t.Fatalf("resumed=%d discarded=%d, want 1/1", resumed, discarded)
	}
	sr, status := postSolve(t, ts, "", instanceJSON(t, canon))
	if status != http.StatusOK || !sr.Cached || sr.Cost == nil || *sr.Cost != want.Cost {
		t.Fatalf("recovered instance: status %d cached %v cost %v, want cached %d", status, sr.Cached, sr.Cost, want.Cost)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("checkpoint dir not clean after recovery: %v", ents)
	}
	if s.metrics.CheckpointsResumed.Load() != 1 || s.metrics.CheckpointsDiscarded.Load() != 1 {
		t.Fatalf("resume counters %d/%d, want 1/1",
			s.metrics.CheckpointsResumed.Load(), s.metrics.CheckpointsDiscarded.Load())
	}
}

// TestShedRetryAfter: a full admission queue sheds with a Retry-After
// derived from queue depth, and a draining server sheds immediately; both
// land in their own stats counter.
func TestShedRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{
		MaxConcurrent: 1,
		MaxPending:    1,
		LevelDelay:    100 * time.Millisecond,
	})
	slow := workload.MedicalDiagnosis(17, 8)
	done := make(chan struct{})
	go func() {
		defer close(done)
		postSolve(t, ts, "", instanceJSON(t, slow))
	}()
	// Wait until the slow solve holds the queue slot, then overflow it with
	// distinct instances (distinct so the probes can't answer from cache).
	deadline := time.Now().Add(2 * time.Second)
	for s.pending.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow solve never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	var resp *http.Response
	for seed := int64(100); ; seed++ {
		if time.Now().After(deadline) {
			t.Fatal("never shed")
		}
		var err error
		resp, err = http.Post(ts.URL+"/v1/solve", "application/json",
			bytes.NewReader(instanceJSON(t, workload.MedicalDiagnosis(seed, 7))))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		resp.Body.Close()
		time.Sleep(10 * time.Millisecond)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	resp.Body.Close()
	if err != nil || ra < 1 || ra > 60 {
		t.Fatalf("Retry-After %q outside [1,60]", resp.Header.Get("Retry-After"))
	}
	if s.metrics.RejectBusy.Load() == 0 {
		t.Fatal("busy shed not counted")
	}
	<-done

	s.SetDraining(true)
	resp, err = http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(instanceJSON(t, slow)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if s.metrics.RejectDraining.Load() != 1 {
		t.Fatalf("reject_draining = %d, want 1", s.metrics.RejectDraining.Load())
	}
}

// TestCacheByteBudget: the LRU evicts by total estimated bytes, refuses
// entries larger than the whole budget, and keeps its accounting exact.
func TestCacheByteBudget(t *testing.T) {
	mk := func(hash string, b int64) *cacheEntry { return &cacheEntry{hash: hash, bytes: b} }
	c := newLRU(100, 1000)
	c.add(mk("a", 400))
	c.add(mk("b", 400))
	if c.get("a") == nil || c.totalBytes != 800 {
		t.Fatalf("bytes = %d, want 800", c.totalBytes)
	}
	c.add(mk("c", 400)) // 1200 > 1000: evict LRU ("b": "a" was touched by get)
	if c.get("b") != nil || c.get("a") == nil || c.get("c") == nil {
		t.Fatal("wrong eviction under byte pressure")
	}
	if c.totalBytes != 800 {
		t.Fatalf("bytes = %d after eviction, want 800", c.totalBytes)
	}
	c.add(mk("huge", 5000)) // larger than the whole budget: not cached
	if c.get("huge") != nil || c.totalBytes != 800 {
		t.Fatalf("oversized entry cached (bytes %d)", c.totalBytes)
	}
	c.add(mk("a", 700)) // refresh grows in place and evicts to fit
	if c.totalBytes > 1000 {
		t.Fatalf("refresh overran budget: %d", c.totalBytes)
	}
	if c.get("a") == nil {
		t.Fatal("refreshed entry evicted")
	}
	// An entry landing through the real solve path carries a real estimate.
	p := workload.MedicalDiagnosis(3, 6)
	ent := &cacheEntry{hash: "real", canon: p}
	if entryBytes(ent) <= 160 {
		t.Fatalf("entryBytes = %d, want > struct overhead", entryBytes(ent))
	}
}

// TestStatsExposeResilience: /v1/stats carries the new gauges end to end.
func TestStatsExposeResilience(t *testing.T) {
	_, ts := newTestServer(t, Config{
		EngineFault:      chaos.FailFirst("lockstep", 1<<30, errInjected),
		Retries:          -1,
		BreakerThreshold: 1,
	})
	if _, status := postSolve(t, ts, "?engine=lockstep", instanceJSON(t, workload.MedicalDiagnosis(3, 5))); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"cache_bytes", "cache_entries", "breakers", "fallbacks", "engine_failures", "reject_draining", "checkpoint_levels", "pending"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("stats missing %q", key)
		}
	}
	br, ok := stats["breakers"].(map[string]any)
	if !ok {
		t.Fatal("breakers not an object")
	}
	ls, ok := br["lockstep"].(map[string]any)
	if !ok || ls["state"] != "open" {
		t.Fatalf("lockstep breaker not open in stats: %v", br)
	}
	if stats["cache_bytes"].(float64) <= 0 {
		t.Fatal("cache_bytes not positive after a cached solve")
	}
}
