package core

import (
	"fmt"
	"runtime"
	"sync"
)

// SolveParallel is the sequential DP parallelized across host CPU cores —
// not the paper's machine (that is internal/parttsolve) but the natural way
// to run the backward induction on modern shared-memory hardware. Subsets
// are processed level by level in popcount order: every C(S) at level j
// depends only on strictly smaller sets, so all sets of one level are
// independent and can be sharded across workers. Results are identical to
// Solve (same recurrence, same tie-breaking by lowest action index).
func SolveParallel(p *Problem, workers int) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	size := 1 << uint(p.K)
	sol := &Solution{
		C:      make([]uint64, size),
		Choice: make([]int32, size),
		PSum:   make([]uint64, size),
	}
	for s := 1; s < size; s++ {
		low := s & -s
		sol.PSum[s] = satAdd(sol.PSum[s&(s-1)], p.Weights[trailingZeros(low)])
	}
	sol.Choice[0] = -1
	// Ops accounting matches Solve: (N+1) per non-empty subset.
	sol.Ops = int64(size-1) * int64(len(p.Actions)+1)

	for level := 1; level <= p.K; level++ {
		sets := subsetsOfSize(p.K, level)
		var wg sync.WaitGroup
		chunk := (len(sets) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * chunk
			if lo >= len(sets) {
				break
			}
			hi := min(lo+chunk, len(sets))
			wg.Add(1)
			go func(batch []Set) {
				defer wg.Done()
				for _, s := range batch {
					best, bestIdx := Inf, int32(-1)
					for i, a := range p.Actions {
						inter := s & a.Set
						diff := s &^ a.Set
						if inter == 0 || (!a.Treatment && diff == 0) {
							continue
						}
						cost := satMul(a.Cost, sol.PSum[s])
						if a.Treatment {
							cost = satAdd(cost, sol.C[diff])
						} else {
							cost = satAdd(cost, satAdd(sol.C[inter], sol.C[diff]))
						}
						if cost < best {
							best, bestIdx = cost, int32(i)
						}
					}
					sol.C[s], sol.Choice[s] = best, bestIdx
				}
			}(sets[lo:hi])
		}
		wg.Wait()
	}
	sol.Cost = sol.C[size-1]
	return sol, nil
}

// subsetsOfSize enumerates all k-bit subsets with exactly j set bits in
// increasing numeric order (Gosper's hack).
func subsetsOfSize(k, j int) []Set {
	if j < 0 || j > k {
		panic(fmt.Sprintf("core: %d-subsets of %d elements", j, k))
	}
	if j == 0 {
		return []Set{0}
	}
	var out []Set
	v := uint32(1)<<uint(j) - 1
	limit := uint32(1) << uint(k)
	for v < limit {
		out = append(out, Set(v))
		// Gosper: next higher number with the same popcount.
		c := v & -v
		r := v + c
		v = (((r ^ v) >> 2) / c) | r
		if c == 0 {
			break
		}
	}
	return out
}
