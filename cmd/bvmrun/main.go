// Command bvmrun runs Boolean Vector Machine demonstrations: the machine
// layout and the §4 algorithm figures of the paper.
//
// Usage:
//
//	bvmrun [-r 2] <demo>
//
// Demos:
//
//	layout        Figure 2: the registers × PEs bit array
//	cycle-id      Figure 3: the cycle-ID pattern
//	processor-id  Figures 4-5: processor-ID generation stages
//	broadcast     Figure 6: the 16-PE broadcast schedule
//	disasm        instruction listing of the cycle-ID program (§4.1)
//	trace         instruction-by-instruction state trace of cycle-ID (8 PEs)
//	info          machine geometry and link census
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bvm"
	"repro/internal/bvmalg"
	"repro/internal/ccc"
	"repro/internal/experiments"
)

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bvmrun", flag.ContinueOnError)
	r := fs.Int("r", 2, "CCC parameter r (machine has 2^r·2^(2^r) PEs)")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("bvmrun: want exactly one demo (layout, cycle-id, processor-id, broadcast, disasm, trace, info)")
	}
	var (
		out string
		err error
	)
	switch fs.Arg(0) {
	case "layout":
		out, err = experiments.Fig2Layout(*r)
	case "cycle-id":
		out, err = experiments.Fig3CycleID()
	case "processor-id":
		out, err = experiments.Fig45ProcessorID()
	case "broadcast":
		out, err = experiments.Fig6Broadcast()
	case "disasm":
		m, e := bvm.New(*r, bvm.DefaultRegisters)
		if e != nil {
			return e
		}
		m.StartRecording("cycle-ID")
		bvmalg.CycleID(m, bvm.R(0))
		prog := m.StopRecording()
		out = prog.Disassemble() + "route profile: " + prog.ProfileString() + "\n"
	case "trace":
		m, e := bvm.New(1, bvm.DefaultRegisters)
		if e != nil {
			return e
		}
		var sb strings.Builder
		sb.WriteString("cycle-ID on the 8-PE machine, register A after each instruction:\n")
		m.SetTracer(func(step int64, in bvm.Instr, mm *bvm.Machine) {
			fmt.Fprintf(&sb, "%2d  %-38s A=", step, in.String())
			v := mm.Peek(bvm.A)
			for pe := 0; pe < mm.N(); pe++ {
				if v.Get(pe) {
					sb.WriteByte('1')
				} else {
					sb.WriteByte('0')
				}
			}
			sb.WriteByte('\n')
		})
		bvmalg.CycleID(m, bvm.R(0))
		m.SetTracer(nil)
		sb.WriteString("final (cycle-ID in R[0]):\n")
		sb.WriteString(m.DumpRegisters(0, bvm.R(0)))
		out = sb.String()
	case "info":
		top, e := ccc.New(*r)
		if e != nil {
			return e
		}
		out = fmt.Sprintf("%v\nhypercube of the same size would need %d links (%.2fx)\n",
			top, ccc.HypercubeLinkCount(top.AddrBits),
			float64(ccc.HypercubeLinkCount(top.AddrBits))/float64(top.LinkCount()))
	default:
		return fmt.Errorf("bvmrun: unknown demo %q", fs.Arg(0))
	}
	if err != nil {
		return err
	}
	_, err = io.WriteString(stdout, out)
	return err
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
