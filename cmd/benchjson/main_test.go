package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: repro
BenchmarkFast-8   	 1000000	       123.4 ns/op
BenchmarkSlow-8   	     100	   9876543 ns/op	      12 B/op	       1 allocs/op
BenchmarkSub/case/k16-8 	    5000	     456.7 ns/op
not a benchmark line
PASS
`

func writeBaseline(t *testing.T, results []Result) string {
	t.Helper()
	data, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestConvert pins the text→JSON path: parsed names (GOMAXPROCS suffix
// stripped, subbenchmark slashes kept), sorted output, chatter ignored.
func TestConvert(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, strings.NewReader(benchText), &out, &errb); code != 0 {
		t.Fatalf("convert exited %d: %s", code, errb.String())
	}
	var got []Result
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	want := []Result{
		{Name: "BenchmarkFast", Iterations: 1000000, NsPerOp: 123.4},
		{Name: "BenchmarkSlow", Iterations: 100, NsPerOp: 9876543},
		{Name: "BenchmarkSub/case/k16", Iterations: 5000, NsPerOp: 456.7},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d results, want %d: %+v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestDiffGate: the -diff mode passes within the threshold, fails beyond it,
// never gates on added/removed benchmarks, and prints the delta table.
func TestDiffGate(t *testing.T) {
	oldPath := writeBaseline(t, []Result{
		{Name: "BenchmarkA", Iterations: 100, NsPerOp: 1000},
		{Name: "BenchmarkB", Iterations: 100, NsPerOp: 2000},
		{Name: "BenchmarkGone", Iterations: 100, NsPerOp: 10},
	})
	newPath := writeBaseline(t, []Result{
		{Name: "BenchmarkA", Iterations: 100, NsPerOp: 1100}, // +10%
		{Name: "BenchmarkB", Iterations: 100, NsPerOp: 3500}, // +75%
		{Name: "BenchmarkNew", Iterations: 100, NsPerOp: 5},
	})

	var out, errb bytes.Buffer
	code := run([]string{"-diff", oldPath, newPath, "-threshold", "100"}, nil, &out, &errb)
	if code != 0 {
		t.Fatalf("within-threshold diff exited %d: %s", code, errb.String())
	}
	for _, want := range []string{"BenchmarkA", "+10.0%", "+75.0%", "NEW", "REMOVED", "0 regressions"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("delta table missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	code = run([]string{"-diff", oldPath, newPath, "-threshold", "25"}, nil, &out, &errb)
	if code != 1 {
		t.Fatalf("25%%-threshold diff exited %d, want 1 (BenchmarkB regressed 75%%)", code)
	}
	if !strings.Contains(out.String(), "REGRESSION") || !strings.Contains(out.String(), "1 regressions") {
		t.Fatalf("regression not flagged:\n%s", out.String())
	}
	// An improvement never gates, whatever the threshold.
	improvedPath := writeBaseline(t, []Result{
		{Name: "BenchmarkA", Iterations: 100, NsPerOp: 400},
		{Name: "BenchmarkB", Iterations: 100, NsPerOp: 500},
	})
	if code := run([]string{"-diff", oldPath, improvedPath, "-threshold", "0"}, nil, &out, &errb); code != 0 {
		t.Fatalf("pure improvement exited %d, want 0", code)
	}
}

// TestDiffUsageErrors: malformed invocations and unreadable baselines exit 2
// and never report a clean gate.
func TestDiffUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-diff", "only-one.json"}, nil, &out, &errb); code != 2 {
		t.Fatalf("missing file arg exited %d, want 2", code)
	}
	if code := run([]string{"-diff", "a.json", "b.json", "-threshold", "nope"}, nil, &out, &errb); code != 2 {
		t.Fatalf("bad threshold exited %d, want 2", code)
	}
	if code := run([]string{"-diff", "/does/not/exist.json", "/nor/this.json"}, nil, &out, &errb); code != 2 {
		t.Fatalf("unreadable baseline exited %d, want 2", code)
	}
	garbage := filepath.Join(t.TempDir(), "garbage.json")
	if err := os.WriteFile(garbage, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	ok := writeBaseline(t, []Result{{Name: "BenchmarkA", NsPerOp: 1}})
	if code := run([]string{"-diff", ok, garbage}, nil, &out, &errb); code != 2 {
		t.Fatalf("corrupt baseline exited %d, want 2", code)
	}
	if code := run([]string{"bogus"}, nil, &out, &errb); code != 2 {
		t.Fatalf("unknown args exited %d, want 2", code)
	}
}

// TestDiffRoundTrip: a baseline diffed against itself is always clean, even
// at threshold 0 — the identity gate the CI smoke run relies on.
func TestDiffRoundTrip(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, strings.NewReader(benchText), &out, &errb); code != 0 {
		t.Fatal("convert failed")
	}
	path := filepath.Join(t.TempDir(), "b.json")
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var table bytes.Buffer
	if code := run([]string{"-diff", path, path, "-threshold", "0"}, nil, &table, &errb); code != 0 {
		t.Fatalf("self-diff exited %d: %s", code, table.String())
	}
}
