package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/serve"
	"repro/internal/workload"
)

// TestServeSmoke is the `make serve-smoke` sequence: boot the real service
// on a random port, fire a solve, a cache hit, an oversized reject, and a
// graceful shutdown, end to end through the binary's own run loop.
func TestServeSmoke(t *testing.T) {
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-max-k", "12"}, io.Discard, ready, stop)
	}()
	var url string
	select {
	case addr := <-ready:
		url = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	if status := getStatus(t, url+"/healthz"); status != http.StatusOK {
		t.Fatalf("healthz: %d", status)
	}

	p := workload.MedicalDiagnosis(5, 8)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := instio.Write(&buf, p, ""); err != nil {
		t.Fatal(err)
	}
	body := buf.Bytes()

	// Solve, then the identical instance again: second answer must come
	// from the cache with the same cost.
	first := postSolve(t, url, body, http.StatusOK)
	if first.Cached || !first.Adequate || *first.Cost != want.Cost {
		t.Fatalf("first solve: %+v, want cost %d", first, want.Cost)
	}
	second := postSolve(t, url, body, http.StatusOK)
	if !second.Cached || *second.Cost != want.Cost {
		t.Fatalf("second solve not served from cache: %+v", second)
	}

	// Oversized (K=14 against -max-k 12): rejected with 422 before any
	// solver state is allocated.
	bigBuf := bytes.Buffer{}
	if err := instio.Write(&bigBuf, workload.Random(6, 14, 4, 4), ""); err != nil {
		t.Fatal(err)
	}
	postSolve(t, url, bigBuf.Bytes(), http.StatusUnprocessableEntity)

	// Graceful shutdown: the run loop drains and returns nil.
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server never shut down")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}, io.Discard, nil, nil); err == nil {
		t.Fatal("bad flag accepted")
	}
	if err := run([]string{"-addr", "256.256.256.256:99999"}, io.Discard, nil, nil); err == nil {
		t.Fatal("unlistenable address accepted")
	}
}

func getStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

func postSolve(t *testing.T, url string, body []byte, wantStatus int) *serve.SolveResponse {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d, want %d: %s", resp.StatusCode, wantStatus, msg)
	}
	if wantStatus != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	var sr serve.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return &sr
}
