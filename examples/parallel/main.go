// Parallel: one instance, every engine. Solves the same fault-location
// problem with the sequential DP, the word-level parallel algorithm on the
// lockstep, goroutine-per-PE and CCC engines, and the instruction-level BVM
// program, then prints the agreement and the cost accounting side by side —
// the repository's reproduction of the paper in one screen.
//
//	go run ./examples/parallel
package main

import (
	"fmt"
	"log"

	"repro/internal/bvmtt"
	"repro/internal/core"
	"repro/internal/parttsolve"
	"repro/internal/workload"
)

func main() {
	problem := workload.Logistics(11, 6, 3)
	fmt.Printf("instance: %d subsystems, %d actions (%d tests / %d treatments)\n\n",
		problem.K, len(problem.Actions), problem.NumTests(), problem.NumTreatments())

	seq, err := core.Solve(problem)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s C(U) = %-6d  %d sequential ops\n", "sequential DP:", seq.Cost, seq.Ops)

	for _, kind := range []parttsolve.EngineKind{
		parttsolve.Lockstep, parttsolve.Goroutine, parttsolve.CCC,
	} {
		res, err := parttsolve.Solve(problem, kind)
		if err != nil {
			log.Fatal(err)
		}
		extra := ""
		if res.CCCSteps > 0 {
			extra = fmt.Sprintf(", %d CCC steps (slowdown %.1f)",
				res.CCCSteps, float64(res.CCCSteps)/float64(res.DimSteps))
		}
		fmt.Printf("%-22s C(U) = %-6d  %d PEs, %d dim steps%s\n",
			"parallel ("+kind.String()+"):", res.Cost, res.PEs, res.DimSteps, extra)
		if res.Cost != seq.Cost {
			log.Fatalf("engine %v disagrees with the DP", kind)
		}
		// Processor allocation: fold onto the 2048-PE machine if larger.
		if res.DimBits > 11 {
			folded, err := res.VirtualizedSteps(11)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-22s folded onto 2048 physical PEs: %d steps\n", "", folded)
		}
	}

	bv, err := bvmtt.Solve(problem, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-22s C(U) = %-6d  %d PEs, %d-bit words, %d instructions\n",
		"BVM (bit level):", bv.Cost, bv.PEs, bv.Width, bv.Instructions)
	if bv.Cost != seq.Cost {
		log.Fatal("BVM disagrees with the DP")
	}

	fmt.Println("\nall five engines agree exactly — experiment E13 at your terminal.")
}
