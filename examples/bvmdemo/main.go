// Bvmdemo: runs the test-and-treatment program on the simulated Boolean
// Vector Machine at the instruction level — the paper's actual artifact —
// and shows the machine-level accounting: PE count, word width, instruction
// counts, and the supporting §4 patterns (cycle-ID).
//
//	go run ./examples/bvmdemo
package main

import (
	"fmt"
	"log"

	"repro/internal/bvm"
	"repro/internal/bvmalg"
	"repro/internal/bvmtt"
	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	// A 4-taxon identification key fits the 64-PE BVM (k=4 set bits + 2
	// action-index bits = 6 address bits).
	problem := workload.SystematicBiology(3, 4)
	fmt.Printf("instance: %d taxa, %d actions\n", problem.K, len(problem.Actions))

	seq, err := core.Solve(problem)
	if err != nil {
		log.Fatal(err)
	}

	res, err := bvmtt.Solve(problem, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nBVM run (cube-connected-cycles, r=%d):\n", res.MachineR)
	fmt.Printf("  PEs:            %d (one per (S,i) pair)\n", res.PEs)
	fmt.Printf("  word width:     %d bits (bit-serial arithmetic)\n", res.Width)
	fmt.Printf("  instructions:   %d total, %d spent streaming the problem in\n",
		res.Instructions, res.LoadInstructions)
	fmt.Printf("  result:         C(U) = %d (sequential DP: %d, match: %v)\n",
		res.Cost, seq.Cost, res.Cost == seq.Cost)

	fmt.Println("\nfull C(S) plane (BVM vs DP):")
	for s, v := range res.C {
		mark := "ok"
		if v != seq.C[s] {
			mark = "MISMATCH"
		}
		fmt.Printf("  C(%v) = %d  [%s]\n", core.Set(s), v, mark)
	}

	// The §4 machinery underneath: the cycle-ID pattern on the same machine.
	m, err := bvm.New(res.MachineR, bvm.DefaultRegisters)
	if err != nil {
		log.Fatal(err)
	}
	bvmalg.CycleID(m, bvm.R(0))
	fmt.Printf("\ncycle-ID generated in %d instructions (4Q, O(log n)); first two cycles:\n", m.InstrCount)
	v := m.Peek(bvm.R(0))
	for c := 0; c < 2; c++ {
		fmt.Printf("  cycle %d: ", c)
		for p := 0; p < m.Top.Q; p++ {
			if v.Get(m.Top.Addr(c, p)) {
				fmt.Print("1 ")
			} else {
				fmt.Print("0 ")
			}
		}
		fmt.Println()
	}
}
