package bvmalg

import "repro/internal/bvm"

// BitonicSortWords sorts the per-PE words of the whole machine into
// ascending flat-address order — Batcher's bitonic sorter executed
// bit-serially on the BVM. Stage s (s = 0..q-1) is a DESCEND pass over
// dimensions s..0; the compare-exchange at dimension t keeps the minimum at
// a PE iff the PE's address bit s+1 equals its bit t (both read from the
// processor-ID planes at addrBase, the §4 control-bit machinery again).
//
// shadow mirrors val during partner fetches; scratchBase supplies
// Width+3 registers (the fetch scratch plus three condition bits).
// O(q²·Q·Width) instructions.
func BitonicSortWords(m *bvm.Machine, val, shadow Word, addrBase, scratchBase int) {
	q := m.Top.AddrBits
	sameWidth(val, shadow)
	cLess := bvm.R(scratchBase + val.Width)        // shadow < val
	cGreater := bvm.R(scratchBase + val.Width + 1) // val < shadow
	keepMin := bvm.R(scratchBase + val.Width + 2)

	for s := 0; s < q; s++ {
		for t := s; t >= 0; t-- {
			FetchPartner(m, t, WordPairs(val, shadow), scratchBase)
			LessWord(m, shadow, val)
			m.Mov(cLess, bvm.Loc(bvm.B))
			LessWord(m, val, shadow)
			m.Mov(cGreater, bvm.Loc(bvm.B))
			// keepMin = NOT (addrBit(s+1) XOR addrBit(t)); for the final
			// stage bit s+1 is beyond the address: ascending everywhere,
			// keepMin = NOT addrBit(t) ... == (0 XNOR bit t) = NOT bit t.
			if s+1 < q {
				m.Xor(keepMin, bvm.R(addrBase+s+1), bvm.Loc(bvm.R(addrBase+t)))
				m.Not(keepMin, keepMin)
			} else {
				m.Not(keepMin, bvm.R(addrBase+t))
			}
			// take = keepMin ? cLess : cGreater, into B, then select.
			m.MovB(bvm.Loc(keepMin))
			m.MuxB(cGreater, cGreater, bvm.Loc(cLess)) // cGreater now holds 'take'
			m.MovB(bvm.Loc(cGreater))
			for b := 0; b < val.Width; b++ {
				m.MuxB(val.Bit(b), val.Bit(b), bvm.Loc(shadow.Bit(b)))
			}
		}
	}
}
