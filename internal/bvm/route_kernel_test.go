package bvm

import (
	"math/rand"
	"testing"

	"repro/internal/bitvec"
	"repro/internal/ccc"
)

// Differential tests: the word-parallel route kernels and cached activation
// masks against the scalar perm-table/per-bit reference, for every supported
// CCC geometry. The reference path stays reachable via SetReferenceExec, so
// these tests pin bit-identical behavior forever.

var allRouted = []Route{RouteS, RouteP, RouteL, RouteXS, RouteXP}

func randVecN(rng *rand.Rand, n int) *bitvec.Vector {
	v := bitvec.New(n)
	for w := 0; w < n; w += 64 {
		width := min(64, n-w)
		v.SetUint64(w, width, rng.Uint64())
	}
	return v
}

// TestRouteKernelsMatchGather drives every kernel against the perm-table
// Gather reference on random vectors for all r in the supported range.
func TestRouteKernelsMatchGather(t *testing.T) {
	for r := 1; r <= ccc.MaxR; r++ {
		m, err := New(r, 2)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(100 + r)))
		rounds := 8
		if r == ccc.MaxR {
			rounds = 2 // 2^20-bit vectors; keep the big geometry cheap
		}
		for round := 0; round < rounds; round++ {
			src := randVecN(rng, m.Top.N)
			for _, via := range allRouted {
				want := bitvec.New(m.Top.N)
				want.Gather(src, m.perms[via])
				got := bitvec.New(m.Top.N)
				m.routeD(got, src, via)
				if !got.Equal(want) {
					t.Fatalf("r=%d route %v: kernel differs from Gather reference", r, via)
				}
			}
			// The input chain: kernel vs the per-bit reference shift.
			for _, in := range []bool{false, true} {
				want := bitvec.New(m.Top.N)
				m.refExec = true
				m.routeI(want, src, in)
				m.refExec = false
				got := bitvec.New(m.Top.N)
				m.routeI(got, src, in)
				if !got.Equal(want) {
					t.Fatalf("r=%d route I (in=%v): kernel differs from reference", r, in)
				}
			}
		}
	}
}

// TestActivationMaskCacheMatchesReference checks composed/memoized masks
// against the per-bit builder for every subset of positions (r<=3) and a
// random sample at r=4.
func TestActivationMaskCacheMatchesReference(t *testing.T) {
	for r := 1; r <= ccc.MaxR; r++ {
		m, err := New(r, 2)
		if err != nil {
			t.Fatal(err)
		}
		q := m.Top.Q
		var sets [][]int
		if q <= 8 {
			for bits := 0; bits < 1<<uint(q); bits++ {
				var pos []int
				for p := 0; p < q; p++ {
					if bits>>uint(p)&1 == 1 {
						pos = append(pos, p)
					}
				}
				sets = append(sets, pos)
			}
		} else {
			rng := rand.New(rand.NewSource(int64(r)))
			for i := 0; i < 32; i++ {
				var pos []int
				for p := 0; p < q; p++ {
					if rng.Intn(2) == 1 {
						pos = append(pos, p)
					}
				}
				sets = append(sets, pos)
			}
		}
		want := bitvec.New(m.Top.N)
		for _, pos := range sets {
			for _, neg := range []bool{false, true} {
				c := &Activation{Negate: neg, Positions: pos}
				m.activationMaskInto(c, want)
				got := m.activationMask(c)
				if !got.Equal(want) {
					t.Fatalf("r=%d %v negate=%v: cached mask differs from reference", r, pos, neg)
				}
				// Second lookup must serve the memoized vector.
				if got2 := m.activationMask(c); got2 != got {
					t.Fatalf("r=%d %v negate=%v: mask not memoized", r, pos, neg)
				}
			}
		}
		m.activationMaskInto(nil, want)
		if !m.activationMask(nil).Equal(want) {
			t.Fatalf("r=%d: nil-cond mask differs", r)
		}
	}
}

// randomInstr draws an instruction over a few registers, covering all
// routes, E destinations, arbitrary truth tables, and IF/NF activations.
func randomInstr(rng *rand.Rand, q, regs int) Instr {
	dsts := []RegRef{R(rng.Intn(regs)), A, E}
	in := Instr{
		Dst: dsts[rng.Intn(len(dsts))],
		FTT: uint8(rng.Intn(256)),
		GTT: uint8(rng.Intn(256)),
		F:   R(rng.Intn(regs)),
		D:   Operand{Reg: R(rng.Intn(regs)), Via: Route(rng.Intn(numRoutes))},
	}
	if rng.Intn(3) == 0 {
		in.GTT = TTB // exercise the g-half skip often
	}
	if rng.Intn(2) == 0 {
		var pos []int
		for p := 0; p < q; p++ {
			if rng.Intn(3) == 0 {
				pos = append(pos, p)
			}
		}
		in.Cond = &Activation{Negate: rng.Intn(2) == 1, Positions: pos}
	}
	return in
}

// TestExecDifferentialRandomPrograms runs identical random instruction
// streams on a kernel machine and a reference machine and demands
// bit-identical architectural state and identical counters throughout.
func TestExecDifferentialRandomPrograms(t *testing.T) {
	for r := 1; r <= 3; r++ {
		const regs = 4
		fast, err := New(r, regs)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := New(r, regs)
		if err != nil {
			t.Fatal(err)
		}
		ref.SetReferenceExec(true)
		rng := rand.New(rand.NewSource(int64(1000 + r)))
		for j := 0; j < regs; j++ {
			v := randVecN(rng, fast.Top.N)
			fast.Poke(R(j), v)
			ref.Poke(R(j), v)
		}
		inputs := make([]bool, 64)
		for i := range inputs {
			inputs[i] = rng.Intn(2) == 1
		}
		fast.PushInput(inputs...)
		ref.PushInput(inputs...)

		steps := 300
		for i := 0; i < steps; i++ {
			in := randomInstr(rng, fast.Top.Q, regs)
			fast.Exec(in)
			ref.Exec(in)
			if i%25 == 0 && !fast.Snapshot().Equal(ref.Snapshot()) {
				t.Fatalf("r=%d: state diverged at step %d executing %v", r, i, in)
			}
		}
		if !fast.Snapshot().Equal(ref.Snapshot()) {
			t.Fatalf("r=%d: final state diverged", r)
		}
		if fast.InstrCount != ref.InstrCount {
			t.Fatalf("r=%d: InstrCount %d != %d", r, fast.InstrCount, ref.InstrCount)
		}
		fc, rc := fast.RouteCount(), ref.RouteCount()
		for route := Route(0); route < Route(numRoutes); route++ {
			if fc[route] != rc[route] {
				t.Fatalf("r=%d: RouteCount[%v] %d != %d", r, route, fc[route], rc[route])
			}
		}
		if len(fast.Output) != len(ref.Output) {
			t.Fatalf("r=%d: output lengths differ", r)
		}
		for i := range fast.Output {
			if fast.Output[i] != ref.Output[i] {
				t.Fatalf("r=%d: output bit %d differs", r, i)
			}
		}
	}
}

// FuzzRouteKernels feeds arbitrary register words and route choices through
// both execution paths.
func FuzzRouteKernels(f *testing.F) {
	f.Add(int64(1), uint8(1), uint64(0xDEADBEEF))
	f.Add(int64(7), uint8(4), uint64(1))
	f.Fuzz(func(t *testing.T, seed int64, routeByte uint8, w uint64) {
		r := int(routeByte)%3 + 1 // r in 1..3
		m, err := New(r, 2)
		if err != nil {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		src := randVecN(rng, m.Top.N)
		src.SetUint64(0, min(64, m.Top.N), w)
		for _, via := range allRouted {
			want := bitvec.New(m.Top.N)
			want.Gather(src, m.perms[via])
			got := bitvec.New(m.Top.N)
			m.routeD(got, src, via)
			if !got.Equal(want) {
				t.Fatalf("r=%d route %v: kernel differs from Gather", r, via)
			}
		}
	})
}
