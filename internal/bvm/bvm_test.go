package bvm

import (
	"testing"

	"repro/internal/bitvec"
)

func newMachine(t *testing.T, r int) *Machine {
	t.Helper()
	m, err := New(r, DefaultRegisters)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewDefaults(t *testing.T) {
	m := newMachine(t, 1)
	if m.N() != 8 || m.L != 256 {
		t.Fatalf("machine: N=%d L=%d", m.N(), m.L)
	}
	// All PEs enabled at reset.
	if m.Peek(E).Count() != 8 {
		t.Fatal("not all PEs enabled at reset")
	}
	// All registers zeroed.
	for j := 0; j < m.L; j++ {
		if m.Peek(R(j)).Any() {
			t.Fatalf("R[%d] not zeroed", j)
		}
	}
}

func TestNewRejectsBadArgs(t *testing.T) {
	if _, err := New(0, 256); err == nil {
		t.Error("New(0, 256) succeeded")
	}
	if _, err := New(1, 0); err == nil {
		t.Error("New(1, 0) succeeded")
	}
}

func TestTTConstantsMatchConvention(t *testing.T) {
	if TTF != TT(func(f, d, b bool) bool { return f }) {
		t.Error("TTF wrong")
	}
	if TTD != TT(func(f, d, b bool) bool { return d }) {
		t.Error("TTD wrong")
	}
	if TTB != TT(func(f, d, b bool) bool { return b }) {
		t.Error("TTB wrong")
	}
}

func TestSetConstAndMov(t *testing.T) {
	m := newMachine(t, 1)
	m.SetConst(R(0), true)
	if m.Peek(R(0)).Count() != m.N() {
		t.Fatal("SetConst(true) did not fill register")
	}
	m.Mov(R(1), Loc(R(0)))
	if m.Peek(R(1)).Count() != m.N() {
		t.Fatal("Mov did not copy register")
	}
	if m.InstrCount != 2 {
		t.Fatalf("InstrCount = %d, want 2", m.InstrCount)
	}
}

func TestBooleanHelpers(t *testing.T) {
	m := newMachine(t, 1)
	x := bitvec.MustFromString("11001100")
	y := bitvec.MustFromString("10101010")
	m.Poke(R(0), x)
	m.Poke(R(1), y)

	m.And(R(2), R(0), Loc(R(1)))
	if got := m.Peek(R(2)).String(); got != "10001000" {
		t.Errorf("And = %s", got)
	}
	m.Or(R(3), R(0), Loc(R(1)))
	if got := m.Peek(R(3)).String(); got != "11101110" {
		t.Errorf("Or = %s", got)
	}
	m.Xor(R(4), R(0), Loc(R(1)))
	if got := m.Peek(R(4)).String(); got != "01100110" {
		t.Errorf("Xor = %s", got)
	}
	m.AndNot(R(5), R(0), Loc(R(1)))
	if got := m.Peek(R(5)).String(); got != "01000100" {
		t.Errorf("AndNot = %s", got)
	}
	m.Not(R(6), R(0))
	if got := m.Peek(R(6)).String(); got != "00110011" {
		t.Errorf("Not = %s", got)
	}
}

func TestDualAssignmentSimultaneous(t *testing.T) {
	// A, B = D, F must use pre-instruction values on both halves: swap A and B.
	m := newMachine(t, 1)
	av := bitvec.MustFromString("11110000")
	bv := bitvec.MustFromString("10101010")
	m.Poke(A, av)
	m.Poke(B, bv)
	m.Exec(Instr{Dst: A, FTT: TTB, GTT: TTF, F: A, D: Loc(A)})
	if got := m.Peek(A).String(); got != "10101010" {
		t.Errorf("A after swap = %s", got)
	}
	if got := m.Peek(B).String(); got != "11110000" {
		t.Errorf("B after swap = %s", got)
	}
}

func TestBDestinationPanics(t *testing.T) {
	m := newMachine(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("Dst=B did not panic")
		}
	}()
	m.Exec(Instr{Dst: B, FTT: TTF, GTT: TTB, F: A, D: Loc(A)})
}

func TestRoutes(t *testing.T) {
	m := newMachine(t, 1) // Q=2: flat addr = cycle*2 + pos
	src := bitvec.MustFromString("10110100")
	m.Poke(R(0), src)

	m.Mov(R(1), Via(R(0), RouteS))
	want := bitvec.New(8)
	for x := 0; x < 8; x++ {
		want.Set(x, src.Get(m.Top.Succ(x)))
	}
	if !m.Peek(R(1)).Equal(want) {
		t.Errorf("RouteS: got %s want %s", m.Peek(R(1)), want)
	}

	m.Mov(R(2), Via(R(0), RouteL))
	wantL := bitvec.New(8)
	for x := 0; x < 8; x++ {
		wantL.Set(x, src.Get(m.Top.Lateral(x)))
	}
	if !m.Peek(R(2)).Equal(wantL) {
		t.Errorf("RouteL: got %s want %s", m.Peek(R(2)), wantL)
	}

	if rc := m.RouteCount(); rc[RouteS] != 1 || rc[RouteL] != 1 {
		t.Errorf("route counts: %v", rc)
	}
}

func TestRouteIShiftsAndCollectsOutput(t *testing.T) {
	m := newMachine(t, 1)
	src := bitvec.MustFromString("10000001")
	m.Poke(R(0), src)
	m.PushInput(true)
	m.Mov(R(0), Via(R(0), RouteI))
	// Every PE x>0 takes bit x-1; PE 0 takes the pushed input bit.
	if got := m.Peek(R(0)).String(); got != "11000000" {
		t.Errorf("after I shift: %s", got)
	}
	// The old last bit (1) must have been emitted.
	if len(m.Output) != 1 || !m.Output[0] {
		t.Errorf("Output = %v, want [true]", m.Output)
	}
	// Queue empty: next input reads 0.
	m.Mov(R(0), Via(R(0), RouteI))
	if got := m.Peek(R(0)).String(); got != "01100000" {
		t.Errorf("after second I shift: %s", got)
	}
}

func TestActivationIF(t *testing.T) {
	m := newMachine(t, 2) // Q=4
	m.SetConst(R(0), true, IF(1, 3))
	v := m.Peek(R(0))
	for x := 0; x < m.N(); x++ {
		_, p := m.Top.Split(x)
		want := p == 1 || p == 3
		if v.Get(x) != want {
			t.Fatalf("PE %d (pos %d): bit %v, want %v", x, p, v.Get(x), want)
		}
	}
}

func TestActivationNF(t *testing.T) {
	m := newMachine(t, 2)
	m.SetConst(R(0), true, NF(0))
	v := m.Peek(R(0))
	for x := 0; x < m.N(); x++ {
		_, p := m.Top.Split(x)
		if v.Get(x) != (p != 0) {
			t.Fatalf("PE %d (pos %d): bit %v", x, p, v.Get(x))
		}
	}
}

func TestActivationOutOfRangePanics(t *testing.T) {
	m := newMachine(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("bad activation position did not panic")
		}
	}()
	m.SetConst(R(0), true, IF(2)) // Q=2: positions are 0..1
}

func TestEnableRegisterGatesWrites(t *testing.T) {
	m := newMachine(t, 1)
	// Disable odd PEs.
	en := bitvec.MustFromString("10101010")
	m.Poke(E, en)
	m.SetConst(R(0), true)
	if got := m.Peek(R(0)).String(); got != "10101010" {
		t.Errorf("write with E mask = %s", got)
	}
	// B is gated too.
	m.MovB(Loc(R(0)))
	if got := m.Peek(B).String(); got != "10100000" && got != "10101010" {
		// B = R(0) where enabled; R(0) = 10101010 so B = 10101010 masked by E = 10101010.
		t.Errorf("B after gated MovB = %s", got)
	}
}

func TestEWritesIgnoreMasks(t *testing.T) {
	m := newMachine(t, 1)
	// Disable everything, then re-enable through an E write: must succeed
	// because E is always enabled (paper §2).
	m.SetConst(E, false)
	if m.Peek(E).Any() {
		t.Fatal("E not cleared")
	}
	m.SetConst(R(0), true)
	if m.Peek(R(0)).Any() {
		t.Fatal("write happened while disabled")
	}
	m.SetConst(E, true, IF()) // empty IF deactivates every PE; E ignores it
	if m.Peek(E).Count() != m.N() {
		t.Fatal("E write was masked; machine cannot be re-enabled")
	}
	m.SetConst(R(0), true)
	if m.Peek(R(0)).Count() != m.N() {
		t.Fatal("write failed after re-enable")
	}
}

func TestMuxB(t *testing.T) {
	m := newMachine(t, 1)
	m.Poke(R(0), bitvec.MustFromString("00001111")) // f
	m.Poke(R(1), bitvec.MustFromString("11110000")) // d
	m.Poke(B, bitvec.MustFromString("01010101"))    // select
	m.MuxB(R(2), R(0), Loc(R(1)))
	if got := m.Peek(R(2)).String(); got != "01011010" {
		t.Errorf("MuxB = %s, want 01011010", got)
	}
}

func TestAddStepFullAdder(t *testing.T) {
	// One AddStep must compute sum/carry for all 8 input combinations at once.
	m := newMachine(t, 1)
	m.Poke(R(0), bitvec.MustFromString("00001111")) // f: bit pattern enumerating inputs
	m.Poke(R(1), bitvec.MustFromString("00110011")) // d
	m.Poke(B, bitvec.MustFromString("01010101"))    // carry in
	m.AddStep(R(2), R(0), Loc(R(1)))
	if got := m.Peek(R(2)).String(); got != "01101001" {
		t.Errorf("sum = %s, want 01101001", got)
	}
	if got := m.Peek(B).String(); got != "00010111" {
		t.Errorf("carry = %s, want 00010111", got)
	}
}

func TestLoadViaInput(t *testing.T) {
	m := newMachine(t, 1)
	pattern := bitvec.MustFromString("10110010")
	m.LoadViaInput(R(7), pattern)
	if !m.Peek(R(7)).Equal(pattern) {
		t.Fatalf("LoadViaInput = %s, want %s", m.Peek(R(7)), pattern)
	}
	if m.InstrCount != int64(m.N()) {
		t.Fatalf("LoadViaInput cost %d instructions, want %d", m.InstrCount, m.N())
	}
}

func TestUintRoundTrip(t *testing.T) {
	m := newMachine(t, 1)
	m.SetUint(10, 8, 3, 0xA5)
	if got := m.Uint(10, 8, 3); got != 0xA5 {
		t.Fatalf("Uint = %#x, want 0xA5", got)
	}
	if got := m.Uint(10, 8, 2); got != 0 {
		t.Fatalf("neighbor PE contaminated: %#x", got)
	}
}

func TestResetCounters(t *testing.T) {
	m := newMachine(t, 1)
	m.SetConst(R(0), true)
	m.ResetCounters()
	if m.InstrCount != 0 || len(m.RouteCount()) != 0 {
		t.Fatal("counters not reset")
	}
}

func TestRegisterOutOfRangePanics(t *testing.T) {
	m := newMachine(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("R[256] access did not panic")
		}
	}()
	m.Mov(R(256), Loc(A))
}

func TestStringers(t *testing.T) {
	if R(5).String() != "R[5]" || A.String() != "A" || B.String() != "B" || E.String() != "E" {
		t.Error("RegRef.String wrong")
	}
	if Via(R(2), RouteL).String() != "R[2].L" {
		t.Errorf("Operand.String = %s", Via(R(2), RouteL))
	}
	if Loc(A).String() != "A" {
		t.Errorf("local operand = %s", Loc(A))
	}
}

// TestBitSerialAdditionAcrossRegisters adds two 8-bit numbers per PE using
// AddStep over bit planes — the pattern bvmalg's arithmetic builds on.
func TestBitSerialAdditionAcrossRegisters(t *testing.T) {
	m := newMachine(t, 2) // 64 PEs
	const xBase, yBase, sumBase, w = 0, 8, 16, 8
	vals := make([][2]uint64, m.N())
	for pe := 0; pe < m.N(); pe++ {
		x := uint64(pe*37%251) & 0x7f
		y := uint64(pe*91%247) & 0x7f
		vals[pe] = [2]uint64{x, y}
		m.SetUint(xBase, w, pe, x)
		m.SetUint(yBase, w, pe, y)
	}
	m.SetConst(A, false)
	m.MovB(Loc(A)) // clear carry
	for b := 0; b < w; b++ {
		m.AddStep(R(sumBase+b), R(xBase+b), Loc(R(yBase+b)))
	}
	for pe := 0; pe < m.N(); pe++ {
		want := (vals[pe][0] + vals[pe][1]) & 0xff
		if got := m.Uint(sumBase, w, pe); got != want {
			t.Fatalf("PE %d: %d+%d = %d, want %d", pe, vals[pe][0], vals[pe][1], got, want)
		}
	}
}

func BenchmarkExecLocal(b *testing.B) {
	m, _ := New(3, DefaultRegisters) // 2048 PEs
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Xor(R(0), R(1), Loc(R(2)))
	}
}

func BenchmarkExecRouted(b *testing.B) {
	m, _ := New(3, DefaultRegisters)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mov(R(0), Via(R(1), RouteL))
	}
}

func TestReadViaOutput(t *testing.T) {
	m := newMachine(t, 1)
	pattern := bitvec.MustFromString("10110010")
	m.Poke(R(3), pattern)
	start := m.InstrCount
	got := m.ReadViaOutput(R(3))
	if !got.Equal(pattern) {
		t.Fatalf("ReadViaOutput = %s, want %s", got, pattern)
	}
	if m.InstrCount-start != int64(m.N()) {
		t.Fatalf("cost %d instructions, want %d", m.InstrCount-start, m.N())
	}
	// Round trip: load in through the chain, read out through the chain.
	m2 := newMachine(t, 1)
	m2.LoadViaInput(R(0), pattern)
	if got := m2.ReadViaOutput(R(0)); !got.Equal(pattern) {
		t.Fatalf("chain round trip = %s, want %s", got, pattern)
	}
}
