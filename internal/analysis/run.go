package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// IgnorePrefix starts a suppression comment. The full syntax is
//
//	//ttlint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory: a suppression that cannot say why it exists is a finding in its
// own right, and the runner reports it as one.
const IgnorePrefix = "ttlint:ignore"

type suppression struct {
	names  map[string]bool // suppressed analyzer names; "all" matches every analyzer
	reason string
	line   int
	file   string
	used   bool
}

// Run executes every analyzer over every package and returns the surviving
// diagnostics, sorted by position. Findings covered by a well-formed
// //ttlint:ignore comment are dropped; malformed (reason-less) or unused
// suppressions are themselves reported.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var diags []Diagnostic
	var sups []*suppression
	seen := map[*ast.File]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if seen[f] {
				continue
			}
			seen[f] = true
			fileSups, bad := collectSuppressions(pkg, f)
			sups = append(sups, fileSups...)
			diags = append(diags, bad...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				Path:      pkg.Path,
				TestFiles: pkg.TestFiles,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.Path, err)
			}
		}
	}

	// Apply suppressions: a comment covers findings on its own line and the
	// line below (comment-above-the-statement style).
	byLoc := map[string][]*suppression{}
	for _, s := range sups {
		byLoc[s.file] = append(byLoc[s.file], s)
	}
	var kept []Diagnostic
	for _, d := range diags {
		suppressed := false
		for _, s := range byLoc[d.File] {
			if (s.line == d.Line || s.line == d.Line-1) &&
				(s.names["all"] || s.names[d.Analyzer]) {
				s.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, s := range sups {
		if !s.used {
			kept = append(kept, Diagnostic{
				Analyzer: "suppress",
				Message:  fmt.Sprintf("unused //%s suppression (%s): nothing it covers fires here anymore; delete it", IgnorePrefix, s.reason),
				File:     s.file, Line: s.line, Col: 1,
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].File != kept[j].File {
			return kept[i].File < kept[j].File
		}
		if kept[i].Line != kept[j].Line {
			return kept[i].Line < kept[j].Line
		}
		return kept[i].Message < kept[j].Message
	})
	return kept, nil
}

// collectSuppressions scans one file's comments for //ttlint:ignore markers.
// Malformed markers (no analyzer list, or no reason) are returned as
// diagnostics rather than silently honored.
func collectSuppressions(pkg *Package, f *ast.File) ([]*suppression, []Diagnostic) {
	var sups []*suppression
	var bad []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, IgnorePrefix) {
				continue
			}
			pos := pkg.Fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(text, IgnorePrefix))
			names, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if names == "" || reason == "" {
				bad = append(bad, Diagnostic{
					Analyzer: "suppress",
					Message:  fmt.Sprintf("malformed suppression: want //%s <analyzer>[,<analyzer>] <reason>", IgnorePrefix),
					File:     pos.Filename, Line: pos.Line, Col: pos.Column,
				})
				continue
			}
			s := &suppression{names: map[string]bool{}, reason: reason, line: pos.Line, file: pos.Filename}
			for _, n := range strings.Split(names, ",") {
				s.names[strings.TrimSpace(n)] = true
			}
			sups = append(sups, s)
		}
	}
	return sups, bad
}
