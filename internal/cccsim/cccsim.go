// Package cccsim executes hypercube ASCEND/DESCEND algorithms on a
// cube-connected-cycles machine, following the scheme of Preparata and
// Vuillemin that the paper (§3) relies on: "these hypercube network
// algorithms can be simulated on a CCC at a slowdown of a factor of 4 to 6,
// regardless of the network sizes."
//
// A CCC(r) machine has n = Q·2^Q PEs (Q = 2^r) and hosts one hypercube node
// per PE: hypercube address = flat CCC address = cycle<<r | position. The
// q = Q + r hypercube dimensions divide into
//
//   - low dimensions 0..r-1 — the in-cycle position bits. The partner for
//     dimension t sits 2^t positions away in the same cycle ("lowsheaves",
//     realized by moving data inside cycles), and
//   - high dimensions r..q-1 — the cycle-number bits. Dimension r+u pairs
//     cycles differing in bit u, whose single physical link (the
//     "highsheave") joins the PEs at in-cycle position u.
//
// Low dimensions are served by rotating copies of the data 2^t positions
// forward and backward within each cycle. High dimensions use the pipelined
// wavefront schedule: all data rotates forward in lockstep, and a datum with
// home position p performs its dimension-(r+u) lateral combine exactly when
// it occupies position u inside its combining window, visiting positions
// 0, 1, ..., Q-1 in increasing order. All Q data per cycle are therefore in
// flight at once and the whole high phase costs O(Q) ring steps instead of
// the O(Q^2) a naive per-dimension sweep needs (NaiveAscend, kept for the
// ablation benchmark).
//
// The step counters model a bit-sliced SIMD machine like the BVM: every
// instruction either moves each PE's value across one link (RotationSteps)
// or combines with one neighbor operand (CombineSteps). The measured
// slowdown (Steps here vs. q steps on the hypercube) is the paper's factor
// of 4 to 6; see internal/experiments.
package cccsim

import (
	"fmt"

	"repro/internal/ccc"
	"repro/internal/hypercube"
)

// Simulator runs ASCEND/DESCEND passes over per-PE states of type T on a CCC.
type Simulator[T any] struct {
	Top *ccc.Topology
	// Dim is the simulated hypercube dimension, Q + r.
	Dim int

	state   []T
	scratch []T

	// RotationSteps counts SIMD instructions that move every PE's datum one
	// position along its cycle.
	RotationSteps int
	// CombineSteps counts SIMD instructions that apply the user op with a
	// neighbor operand (lateral or in-cycle copy).
	CombineSteps int
}

// New returns a simulator on the CCC with parameter r.
func New[T any](r int) (*Simulator[T], error) {
	top, err := ccc.New(r)
	if err != nil {
		return nil, err
	}
	return &Simulator[T]{
		Top:     top,
		Dim:     top.AddrBits,
		state:   make([]T, top.N),
		scratch: make([]T, top.N),
	}, nil
}

// State returns the live state slice, indexed by hypercube (= flat CCC)
// address. It is only meaningful between passes, when all data is at home.
func (s *Simulator[T]) State() []T { return s.state }

// Steps returns the total SIMD instruction count so far.
func (s *Simulator[T]) Steps() int { return s.RotationSteps + s.CombineSteps }

// ResetCounters zeroes the step counters.
func (s *Simulator[T]) ResetCounters() {
	s.RotationSteps = 0
	s.CombineSteps = 0
}

// Ascend applies op over all dimensions 0..Dim-1 in increasing order.
func (s *Simulator[T]) Ascend(op hypercube.Op[T]) { s.AscendRange(0, s.Dim, op) }

// Descend applies op over all dimensions Dim-1..0 in decreasing order.
func (s *Simulator[T]) Descend(op hypercube.Op[T]) { s.DescendRange(0, s.Dim, op) }

// AscendRange applies op over dimensions lo..hi-1 in increasing order.
func (s *Simulator[T]) AscendRange(lo, hi int, op hypercube.Op[T]) {
	s.checkRange(lo, hi)
	r := s.Top.R
	for t := lo; t < hi && t < r; t++ {
		s.lowDim(t, op)
	}
	a, b := max(lo, r)-r, hi-r
	if b > a {
		s.highWavefront(a, b, op, false)
	}
}

// DescendRange applies op over dimensions hi-1..lo in decreasing order.
func (s *Simulator[T]) DescendRange(lo, hi int, op hypercube.Op[T]) {
	s.checkRange(lo, hi)
	r := s.Top.R
	a, b := max(lo, r)-r, hi-r
	if b > a {
		s.highWavefront(a, b, op, true)
	}
	for t := min(hi, r) - 1; t >= lo; t-- {
		s.lowDim(t, op)
	}
}

func (s *Simulator[T]) checkRange(lo, hi int) {
	if lo < 0 || hi > s.Dim || lo > hi {
		panic(fmt.Sprintf("cccsim: range [%d,%d) invalid for dim %d", lo, hi, s.Dim))
	}
}

// lowDim performs one low (in-cycle) dimension: copies of the data are
// rotated 2^t positions forward and backward so each PE can read the value of
// its partner at position p XOR 2^t, then a single combine instruction
// applies op.
func (s *Simulator[T]) lowDim(t int, op hypercube.Op[T]) {
	top := s.Top
	d := 1 << t
	fwd := make([]T, top.N) // fwd[x] = datum of the PE d positions behind x
	bwd := make([]T, top.N) // bwd[x] = datum of the PE d positions ahead of x
	copy(fwd, s.state)
	copy(bwd, s.state)
	for step := 0; step < d; step++ {
		s.rotate(fwd, +1)
		s.rotate(bwd, -1)
		// Forward and backward transfers ride the same bidirectional links
		// but are distinct one-operand SIMD instructions: count both.
		s.RotationSteps += 2
	}
	for x := 0; x < top.N; x++ {
		_, p := top.Split(x)
		var pv T
		if p&(1<<t) != 0 {
			pv = fwd[x] // partner is at p - 2^t
		} else {
			pv = bwd[x] // partner is at p + 2^t
		}
		s.scratch[x] = op(t, x, s.state[x], pv)
	}
	s.state, s.scratch = s.scratch, s.state
	s.CombineSteps++
}

// highWavefront performs high dimensions for in-cycle positions [a, b) —
// hypercube dimensions r+a .. r+b-1 — in increasing order (or decreasing if
// descending). All data rotates in lockstep one position per step; a datum
// whose home position is p combines laterally when it sits at position u
// within its window, so that it meets positions a..b-1 in the required order.
func (s *Simulator[T]) highWavefront(a, b int, op hypercube.Op[T], descending bool) {
	top := s.Top
	Q, r := top.Q, top.R
	span := b - a
	total := Q - 1 + span // last combine time over all homes
	dir := +1
	if descending {
		dir = -1
	}
	offset := 0 // current rotation offset: datum with home p sits at p+offset
	for step := 1; step <= total; step++ {
		s.rotateState(dir)
		offset += dir
		s.RotationSteps++
		copy(s.scratch, s.state)
		for x := 0; x < top.N; x++ {
			c, u := top.Split(x)
			p := mod(u-offset, Q) // home position of the datum in this slot
			// Datum p first reaches its first combining position at step s0;
			// it then combines once per step for span steps.
			var s0, pos int
			if !descending {
				// First position is a, reached at s0 = ((a-p-1) mod Q)+1.
				s0 = mod(a-p-1, Q) + 1
				pos = a + (step - s0) // position this datum should combine at now
			} else {
				// First position is b-1, reached rotating backward.
				s0 = mod(p-(b-1)-1, Q) + 1
				pos = (b - 1) - (step - s0)
			}
			if step < s0 || step >= s0+span {
				continue
			}
			if pos != u {
				panic(fmt.Sprintf("cccsim: schedule error at step %d PE %d: pos %d != u %d", step, x, pos, u))
			}
			lat := top.Lateral(x)
			s.scratch[x] = op(r+u, c<<r|p, s.state[x], s.state[lat])
		}
		s.state, s.scratch = s.scratch, s.state
		s.CombineSteps++
	}
	// Rotate data back to home positions.
	back := mod(-offset, Q)
	for i := 0; i < back; i++ {
		s.rotateState(+1)
		s.RotationSteps++
	}
}

func (s *Simulator[T]) rotateState(dir int) {
	s.rotate(s.state, dir)
}

// rotate shifts every cycle's data by dir (+1 = each datum moves to its
// successor position).
func (s *Simulator[T]) rotate(data []T, dir int) {
	top := s.Top
	Q := top.Q
	tmp := make([]T, Q)
	for c := 0; c < top.Cycles; c++ {
		base := c << top.R
		for p := 0; p < Q; p++ {
			tmp[mod(p+dir, Q)] = data[base|p]
		}
		copy(data[base:base+Q], tmp)
	}
}

// NaiveAscend is the unpipelined ablation: each high dimension is processed
// on its own with a full ring rotation, so every datum passes position u once
// per dimension — Q rotations and Q combine instructions per high dimension,
// O(Q^2) total, versus O(Q) for the wavefront schedule. Results are
// identical; only the step counts differ.
func (s *Simulator[T]) NaiveAscend(op hypercube.Op[T]) {
	top := s.Top
	Q, r := top.Q, top.R
	for t := 0; t < r; t++ {
		s.lowDim(t, op)
	}
	for u := 0; u < Q; u++ {
		offset := 0
		for step := 1; step <= Q; step++ {
			s.rotateState(+1)
			offset++
			s.RotationSteps++
			copy(s.scratch, s.state)
			for x := 0; x < top.N; x++ {
				c, pos := top.Split(x)
				if pos != u {
					continue
				}
				p := mod(pos-offset, Q)
				// Combine when the datum that must still do dim u arrives:
				// each datum passes position u exactly once per full turn.
				lat := top.Lateral(x)
				s.scratch[x] = op(r+u, c<<r|p, s.state[x], s.state[lat])
			}
			s.state, s.scratch = s.scratch, s.state
			s.CombineSteps++
		}
		// One full turn returns all data home (offset Q ≡ 0).
	}
}

func mod(x, m int) int {
	x %= m
	if x < 0 {
		x += m
	}
	return x
}
