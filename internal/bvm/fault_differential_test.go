package bvm

import (
	"math/rand"
	"testing"
)

// Differential tests for fault injection: an injected fault must perturb the
// word-parallel kernel path and the scalar reference path identically —
// otherwise the cross-validation experiments that rely on faults being
// visible would depend on which execution path ran. These complement
// route_kernel_test.go, which pins the two paths together on healthy
// machines.

// faultPair builds a kernel-path and a reference-path machine with identical
// random register contents.
func faultPair(t *testing.T, r, regs int, seed int64) (fast, ref *Machine) {
	t.Helper()
	var err error
	if fast, err = New(r, regs); err != nil {
		t.Fatal(err)
	}
	if ref, err = New(r, regs); err != nil {
		t.Fatal(err)
	}
	ref.SetReferenceExec(true)
	rng := rand.New(rand.NewSource(seed))
	for j := 0; j < regs; j++ {
		v := randVecN(rng, fast.Top.N)
		fast.Poke(R(j), v)
		ref.Poke(R(j), v)
	}
	return fast, ref
}

// runLockstep feeds the same random instruction stream to both machines and
// demands bit-identical architectural state throughout.
func runLockstep(t *testing.T, fast, ref *Machine, rng *rand.Rand, regs, steps int, tag string) {
	t.Helper()
	for i := 0; i < steps; i++ {
		in := randomInstr(rng, fast.Top.Q, regs)
		fast.Exec(in)
		ref.Exec(in)
		if !fast.Snapshot().Equal(ref.Snapshot()) {
			t.Fatalf("%s: state diverged at step %d executing %v", tag, i, in)
		}
	}
}

// TestStuckBitDifferential injects the same stuck register bits (including a
// stuck E bit) into both execution paths mid-stream and requires them to stay
// bit-identical, through the fault and after its undo.
func TestStuckBitDifferential(t *testing.T) {
	for r := 1; r <= 3; r++ {
		const regs = 4
		fast, ref := faultPair(t, r, regs, int64(4000+r))
		rng := rand.New(rand.NewSource(int64(40 + r)))

		runLockstep(t, fast, ref, rng, regs, 40, "pre-fault")

		pe := rng.Intn(fast.Top.N)
		undos := []func(){
			fast.InjectStuckBit(R(1), pe, true),
			fast.InjectStuckBit(E, (pe+3)%fast.Top.N, false),
		}
		refUndos := []func(){
			ref.InjectStuckBit(R(1), pe, true),
			ref.InjectStuckBit(E, (pe+3)%ref.Top.N, false),
		}
		if !fast.Snapshot().Equal(ref.Snapshot()) {
			t.Fatalf("r=%d: injection itself diverged", r)
		}
		runLockstep(t, fast, ref, rng, regs, 120, "faulted")

		for i := range undos {
			undos[i]()
			refUndos[i]()
		}
		runLockstep(t, fast, ref, rng, regs, 40, "post-undo")
	}
}

// TestBrokenLateralDifferential does the same for a broken lateral link: the
// RouteL kernel (masked stride swaps) and the perm-table Gather must zero the
// same two link ends.
func TestBrokenLateralDifferential(t *testing.T) {
	for r := 1; r <= 3; r++ {
		const regs = 4
		fast, ref := faultPair(t, r, regs, int64(5000+r))
		rng := rand.New(rand.NewSource(int64(50 + r)))

		pe := rng.Intn(fast.Top.N)
		undoFast := fast.InjectBrokenLateral(pe)
		undoRef := ref.InjectBrokenLateral(pe)
		runLockstep(t, fast, ref, rng, regs, 120, "broken lateral")

		undoFast()
		undoRef()
		runLockstep(t, fast, ref, rng, regs, 40, "post-undo")
	}
}

// TestStuckEBitDefeatsFastPath pins the interaction between fault injection
// and the eAllOnes fast path: an unconditional instruction on a machine whose
// E register has a stuck-at-zero bit must NOT take the "all PEs enabled"
// unmasked-copy shortcut — the disabled PE has to keep its old value, exactly
// as the per-bit reference path computes it.
func TestStuckEBitDefeatsFastPath(t *testing.T) {
	const badPE = 5
	fast, ref := faultPair(t, 2, 2, 6000)
	before := fast.Peek(R(1))

	fast.InjectStuckBit(E, badPE, false)
	ref.InjectStuckBit(E, badPE, false)

	// Unconditional write of ~R[1] into R[1]: with E genuinely all ones this
	// is the unmasked-copy fast path; with one E bit stuck low it must be a
	// masked write that skips the disabled PE.
	in := Instr{Dst: R(1), FTT: TTNotF, GTT: TTB, F: R(1), D: Operand{Reg: R(0), Via: Local}}
	fast.Exec(in)
	ref.Exec(in)

	if got := fast.PeekBit(R(1), badPE); got != before.Get(badPE) {
		t.Fatalf("disabled PE %d took an unconditional write: %v -> %v (fast path ignored the stuck E bit)", badPE, before.Get(badPE), got)
	}
	if !fast.Snapshot().Equal(ref.Snapshot()) {
		t.Fatal("kernel path diverged from reference with a stuck E bit")
	}
	// Every other PE must have taken the write (bit inverted).
	for pe := 0; pe < fast.N(); pe++ {
		if pe == badPE {
			continue
		}
		if fast.PeekBit(R(1), pe) != !before.Get(pe) {
			t.Fatalf("enabled PE %d did not take the write", pe)
		}
	}
}
