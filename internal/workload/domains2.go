package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// LaboratoryAnalysis models the paper's laboratory-analysis application:
// identifying which analyte (contaminant, pathogen, compound) a sample
// contains. Tests are reagent panels — each reacts with an overlapping group
// of analytes, cheap and quick — plus a few precise but slow instrument
// runs. The terminal action per analyte is a confirmatory assay + report,
// uniform in cost, so the instance sits between binary testing (uniform
// terminals) and general TT (panels of very different discriminating power).
func LaboratoryAnalysis(seed int64, k int) *core.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &core.Problem{K: k, Weights: make([]uint64, k)}
	for j := range p.Weights {
		// Mild skew: a few analytes dominate submissions.
		p.Weights[j] = uint64(2 + rng.Intn(6))
	}
	u := core.Universe(k)
	nPanels := max(3, k)
	seen := make(map[core.Set]bool, nPanels)
	for i := 0; i < nPanels; i++ {
		set := randomSubset(rng, k, k/3+1) & u
		if set == 0 || set == u || seen[set] {
			// Fall back to the first singleton not already used by a panel;
			// a plain SetOf(i%k) here could duplicate an earlier fallback.
			set = 0
			for d := 0; d < k; d++ {
				if cand := core.SetOf((i + d) % k); cand != u && !seen[cand] {
					set = cand
					break
				}
			}
			if set == 0 {
				continue // every distinct panel is taken; drop, never duplicate
			}
		}
		seen[set] = true
		p.Actions = append(p.Actions, core.Action{
			Name: fmt.Sprintf("reagent-panel-%d", i),
			Set:  set,
			Cost: uint64(1 + rng.Intn(3)),
		})
	}
	instruments := 0
	for i := 0; i < max(1, k/4); i++ {
		set := balancedSubset(rng, k)
		if set == 0 || set == u {
			continue
		}
		instruments++
		p.Actions = append(p.Actions, core.Action{
			Name: fmt.Sprintf("instrument-run-%d", i),
			Set:  set,
			Cost: uint64(12 + rng.Intn(8)),
		})
	}
	if instruments == 0 && k >= 2 {
		// The doc promises "a few precise but slow instrument runs"; when every
		// balanced draw degenerated, split the low half off deterministically.
		var set core.Set
		for j := 0; j < (k+1)/2; j++ {
			set |= core.SetOf(j)
		}
		p.Actions = append(p.Actions, core.Action{
			Name: "instrument-run-0",
			Set:  set,
			Cost: uint64(12 + rng.Intn(8)),
		})
	}
	for j := 0; j < k; j++ {
		p.Actions = append(p.Actions, core.Action{
			Name:      fmt.Sprintf("confirm-%d", j),
			Set:       core.SetOf(j),
			Cost:      18,
			Treatment: true,
		})
	}
	return p
}

// Logistics models logistical-system breakdown correction (the paper's
// "sizable population of complex objects — people, ships, computers —
// maintained at reasonable cost"): k subsystems with field-observed failure
// rates; inspections at depot (cheap, coarse) and field (pricier, precise);
// and a three-echelon repair structure — swap a component (cheap, covers
// one), swap an assembly (covers a group), or replace the whole unit
// (expensive catch-all). Optimal procedures mix echelons depending on the
// failure-rate profile.
func Logistics(seed int64, k, assemblySize int) *core.Problem {
	rng := rand.New(rand.NewSource(seed))
	if assemblySize < 2 {
		assemblySize = 2
	}
	p := &core.Problem{K: k, Weights: make([]uint64, k)}
	for j := range p.Weights {
		p.Weights[j] = uint64(1 + rng.Intn(12))
	}
	u := core.Universe(k)

	// Coarse depot inspections: split by assembly boundaries.
	for lo := 0; lo < k; lo += assemblySize {
		var set core.Set
		for j := lo; j < min(lo+assemblySize, k); j++ {
			set |= core.SetOf(j)
		}
		if set != 0 && set != u {
			p.Actions = append(p.Actions, core.Action{
				Name: fmt.Sprintf("depot-inspect-%d", lo/assemblySize),
				Set:  set,
				Cost: 2,
			})
		}
	}
	// Field inspections: random finer probes.
	for i := 0; i < max(2, k/2); i++ {
		set := randomSubset(rng, k, 2) & u
		if set == 0 || set == u {
			continue
		}
		p.Actions = append(p.Actions, core.Action{
			Name: fmt.Sprintf("field-inspect-%d", i),
			Set:  set,
			Cost: uint64(4 + rng.Intn(4)),
		})
	}
	// Echelon 1: component swaps.
	for j := 0; j < k; j++ {
		p.Actions = append(p.Actions, core.Action{
			Name:      fmt.Sprintf("swap-component-%d", j),
			Set:       core.SetOf(j),
			Cost:      uint64(8 + rng.Intn(6)),
			Treatment: true,
		})
	}
	// Echelon 2: assembly swaps.
	for lo := 0; lo < k; lo += assemblySize {
		var set core.Set
		for j := lo; j < min(lo+assemblySize, k); j++ {
			set |= core.SetOf(j)
		}
		p.Actions = append(p.Actions, core.Action{
			Name:      fmt.Sprintf("swap-assembly-%d", lo/assemblySize),
			Set:       set,
			Cost:      uint64(20 + assemblySize*3),
			Treatment: true,
		})
	}
	// Echelon 3: replace the unit.
	p.Actions = append(p.Actions, core.Action{
		Name:      "replace-unit",
		Set:       u,
		Cost:      uint64(40 + 6*k),
		Treatment: true,
	})
	return p
}
