package policy

import (
	"crypto/rand"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/base64"
	"encoding/binary"
	"fmt"
)

// Cursor is the state of one routing session, carried entirely by the
// client so the route plane stays stateless: which sealed artifact the
// session walks (by Key, binding it to exact bytes rather than a
// re-publishable name), where in the tree it stands, and a session id and
// step counter for observability. The server holds nothing per session.
type Cursor struct {
	Artifact uint64 // Artifact.Key() of the sealed policy
	Node     int32  // current node index
	Session  uint32 // server-assigned session id
	Step     uint32 // steps taken so far
}

// cursorPayloadLen is the fixed binary cursor body:
// artifact u64 | node i32 | session u32 | step u32 (little-endian).
const (
	cursorPayloadLen = 20
	cursorMACLen     = 16
	cursorRawLen     = cursorPayloadLen + cursorMACLen
)

// CursorLen is the length of an encoded cursor string.
var CursorLen = base64.RawURLEncoding.EncodedLen(cursorRawLen)

// Keyring signs and verifies cursors with a per-process secret. The MAC is
// SHA-256(secret ‖ payload) truncated to 16 bytes: the payload is fixed
// length, so length-extension is structurally irrelevant and a single
// compression-function-bounded hash keeps sign+verify inside the
// sub-microsecond per-step budget where HMAC's two passes would not.
type Keyring struct {
	secret [32]byte
}

// NewKeyring draws a fresh random secret. Cursors do not survive a process
// restart by design — a restarted server has a new artifact store anyway.
func NewKeyring() (*Keyring, error) {
	var k Keyring
	if _, err := rand.Read(k.secret[:]); err != nil {
		return nil, fmt.Errorf("policy: generating cursor secret: %w", err)
	}
	return &k, nil
}

// newTestKeyring returns a keyring with a fixed secret, for deterministic
// tests and benchmarks within the package.
func newTestKeyring(seed byte) *Keyring {
	var k Keyring
	for i := range k.secret {
		k.secret[i] = seed ^ byte(i*37)
	}
	return &k
}

func (k *Keyring) mac(payload []byte) [sha256.Size]byte {
	var buf [len(k.secret) + cursorPayloadLen]byte
	copy(buf[:], k.secret[:])
	copy(buf[len(k.secret):], payload)
	return sha256.Sum256(buf[:])
}

// Sign encodes and authenticates a cursor. The result is base64url with no
// padding — safe in JSON, headers, and URLs.
func (k *Keyring) Sign(c Cursor) string {
	var raw [cursorRawLen]byte
	le := binary.LittleEndian
	le.PutUint64(raw[0:], c.Artifact)
	le.PutUint32(raw[8:], uint32(c.Node))
	le.PutUint32(raw[12:], c.Session)
	le.PutUint32(raw[16:], c.Step)
	sum := k.mac(raw[:cursorPayloadLen])
	copy(raw[cursorPayloadLen:], sum[:cursorMACLen])
	out := make([]byte, CursorLen)
	base64.RawURLEncoding.Encode(out, raw[:])
	return string(out)
}

// Verify decodes a cursor string and authenticates it in constant time.
// Any malformed or tampered cursor yields the same opaque error: the route
// plane does not distinguish forgery from corruption for a caller.
func (k *Keyring) Verify(s string) (Cursor, error) {
	var c Cursor
	if len(s) != CursorLen {
		return c, fmt.Errorf("policy: cursor rejected")
	}
	var raw [cursorRawLen]byte
	if n, err := base64.RawURLEncoding.Decode(raw[:], []byte(s)); err != nil || n != cursorRawLen {
		return c, fmt.Errorf("policy: cursor rejected")
	}
	sum := k.mac(raw[:cursorPayloadLen])
	if subtle.ConstantTimeCompare(raw[cursorPayloadLen:], sum[:cursorMACLen]) != 1 {
		return c, fmt.Errorf("policy: cursor rejected")
	}
	le := binary.LittleEndian
	c.Artifact = le.Uint64(raw[0:])
	c.Node = int32(le.Uint32(raw[8:]))
	c.Session = le.Uint32(raw[12:])
	c.Step = le.Uint32(raw[16:])
	return c, nil
}
