package bvmalg

import (
	"fmt"

	"repro/internal/bvm"
)

// This file realizes the paper's §4 dataflow algorithms at the instruction
// level. Each is one ASCEND pass over the machine's hypercube dimensions
// built from FetchPartner steps; the control bits — the paper's SENDER marks
// and 1-END tests — are ordinary registers: SENDER travels with the data,
// and the 1-END test for dimension t reads bit t of the processor-ID
// (generated once by ProcessorID, exactly the paper's §7 prescription).

// Combine selects how propagated values merge into the receiver.
type Combine int

const (
	// CombineOr merges with bitwise OR (the paper's control-bit merge).
	CombineOr Combine = iota
	// CombineMin keeps the smaller word (what the TT cost tables need).
	CombineMin
)

// BroadcastWord broadcasts the val word of PE 0 to every PE (paper §4.3,
// Broadcasting()). sender must hold 1 exactly at PE 0 (see MarkPE0); on
// return it is 1 everywhere. shadowVal, shadowSender, condReg and
// scratchBase..scratchBase+Width are clobbered.
func BroadcastWord(m *bvm.Machine, val Word, sender bvm.RegRef, addrBase int,
	shadowVal Word, shadowSender, condReg bvm.RegRef, scratchBase int) {
	q := m.Top.AddrBits
	pairs := append(WordPairs(val, shadowVal), Pair{Src: sender, Shadow: shadowSender})
	for t := 0; t < q; t++ {
		FetchPartner(m, t, pairs, scratchBase)
		// cond = partner-is-sender AND not-yet-sender AND my address bit t = 1.
		m.AndNot(condReg, shadowSender, bvm.Loc(sender))
		m.And(condReg, condReg, bvm.Loc(bvm.R(addrBase+t)))
		m.MovB(bvm.Loc(condReg))
		for b := 0; b < val.Width; b++ {
			m.MuxB(val.Bit(b), val.Bit(b), bvm.Loc(shadowVal.Bit(b)))
		}
		m.Or(sender, sender, bvm.Loc(condReg))
	}
}

// MarkPE0 sets dst to 1 exactly at PE (0,0) using the input chain, the same
// trick the paper's cycle-ID opens with: fill with ones, shift one zero in,
// and negate the shifted register against the original. 3 instructions.
func MarkPE0(m *bvm.Machine, dst bvm.RegRef) {
	m.SetConst(bvm.A, true)
	m.Mov(bvm.A, bvm.Via(bvm.A, bvm.RouteI)) // zero enters at PE 0
	m.Not(dst, bvm.A)
}

// Propagation1Word is the paper's first kind of propagation (§4.4): data
// moves exactly one PE-group up. sender must mark the source group (the PEs
// whose addresses have exactly g one bits); each PE one group higher combines
// the values of all its sender subsets into val. Senders are not forwarded.
func Propagation1Word(m *bvm.Machine, val Word, sender bvm.RegRef, addrBase int,
	combine Combine, shadowVal Word, shadowSender, condReg bvm.RegRef, scratchBase int) {
	propagate(m, val, sender, addrBase, combine, false, shadowVal, shadowSender, condReg, scratchBase)
}

// Propagation2Word is the paper's second kind of propagation (§4.4): a
// receiver immediately becomes a legal sender, so one pass floods the data
// from the source group to every superset address.
func Propagation2Word(m *bvm.Machine, val Word, sender bvm.RegRef, addrBase int,
	combine Combine, shadowVal Word, shadowSender, condReg bvm.RegRef, scratchBase int) {
	propagate(m, val, sender, addrBase, combine, true, shadowVal, shadowSender, condReg, scratchBase)
}

func propagate(m *bvm.Machine, val Word, sender bvm.RegRef, addrBase int,
	combine Combine, updateSender bool, shadowVal Word, shadowSender, condReg bvm.RegRef, scratchBase int) {
	q := m.Top.AddrBits
	pairs := append(WordPairs(val, shadowVal), Pair{Src: sender, Shadow: shadowSender})
	for t := 0; t < q; t++ {
		FetchPartner(m, t, pairs, scratchBase)
		// cond = partner-is-sender AND my address bit t = 1.
		m.And(condReg, shadowSender, bvm.Loc(bvm.R(addrBase+t)))
		applyCombine(m, val, shadowVal, condReg, combine)
		if updateSender {
			m.Or(sender, sender, bvm.Loc(condReg))
		}
	}
}

func applyCombine(m *bvm.Machine, val, shadowVal Word, condReg bvm.RegRef, combine Combine) {
	switch combine {
	case CombineOr:
		m.MovB(bvm.Loc(condReg))
		orCond := bvm.TT(func(f, d, b bool) bool { return f || (d && b) })
		for b := 0; b < val.Width; b++ {
			m.Exec(bvm.Instr{Dst: val.Bit(b), FTT: orCond, GTT: bvm.TTB,
				F: val.Bit(b), D: bvm.Loc(shadowVal.Bit(b))})
		}
	case CombineMin:
		LessWord(m, shadowVal, val) // B = shadow < val
		m.Exec(bvm.Instr{Dst: bvm.A, FTT: bvm.TTF,
			GTT: bvm.TT(func(f, d, b bool) bool { return b && d }),
			F:   bvm.A, D: bvm.Loc(condReg)}) // B &= cond
		for b := 0; b < val.Width; b++ {
			m.MuxB(val.Bit(b), val.Bit(b), bvm.Loc(shadowVal.Bit(b)))
		}
	default:
		panic(fmt.Sprintf("bvmalg: unknown combine %d", int(combine)))
	}
}

// MinReduce runs the ASCEND minimization of the paper's §6 over hypercube
// dimensions [lo, hi): afterwards every PE holds the minimum of val over all
// PEs whose addresses agree with it outside those bits. shadow and
// scratchBase..scratchBase+Width-1 are clobbered.
func MinReduce(m *bvm.Machine, val Word, lo, hi int, shadow Word, scratchBase int) {
	if lo < 0 || hi > m.Top.AddrBits || lo > hi {
		panic(fmt.Sprintf("bvmalg: dim range [%d,%d) invalid", lo, hi))
	}
	for t := lo; t < hi; t++ {
		FetchPartner(m, t, WordPairs(val, shadow), scratchBase)
		MinWord(m, val, val, shadow)
	}
}

// MinReduceDescend is MinReduce with the dimensions processed in DESCEND
// order (hi-1 down to lo). Minimum is commutative and associative, so the
// result is identical; the paper's scheme admits either direction, and the
// test suite uses this to check direction-independence of the machine-level
// reduction.
func MinReduceDescend(m *bvm.Machine, val Word, lo, hi int, shadow Word, scratchBase int) {
	if lo < 0 || hi > m.Top.AddrBits || lo > hi {
		panic(fmt.Sprintf("bvmalg: dim range [%d,%d) invalid", lo, hi))
	}
	for t := hi - 1; t >= lo; t-- {
		FetchPartner(m, t, WordPairs(val, shadow), scratchBase)
		MinWord(m, val, val, shadow)
	}
}

// SumReduce is MinReduce with saturating addition: every PE ends with the
// saturating sum over its dimension block. Used to build p(S) totals.
func SumReduce(m *bvm.Machine, val Word, lo, hi int, shadow Word, scratchBase int) {
	if lo < 0 || hi > m.Top.AddrBits || lo > hi {
		panic(fmt.Sprintf("bvmalg: dim range [%d,%d) invalid", lo, hi))
	}
	for t := lo; t < hi; t++ {
		FetchPartner(m, t, WordPairs(val, shadow), scratchBase)
		AddSatWord(m, val, val, shadow)
	}
}
