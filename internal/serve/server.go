// Package serve implements the ttserve HTTP solver service: a long-running
// request/response front end over the repository's TT solver engines. The
// paper's own applications — medical diagnosis, logistical breakdown
// correction — are serving workloads (the same instance is solved once and
// queried many times, under response-time expectations), and this package
// supplies the production shape for them:
//
//   - POST /v1/solve  — solve an instio-format instance with a selectable
//     engine (seq, parallel, lockstep, goroutine, ccc, bvm), per-request
//     deadline, and optional procedure-tree rendering;
//   - POST /v1/eval   — evaluate a stored policy against a weight vector
//     (the misspecified-prior question served online);
//   - GET  /healthz, /v1/stats, /debug/vars, /debug/pprof — liveness,
//     per-server counters, process expvar, and profiling.
//
// Three mechanisms keep it stable under heavy traffic: an LRU cache keyed by
// a canonical instance hash (action order normalized, so permuted re-asks of
// the same instance hit one slot) with singleflight collapsing of concurrent
// identical requests; admission control (a solver semaphore, a bounded
// pending queue, and a K/action budget that 422s oversized instances before
// they can allocate 2^K state); and context plumbing through every engine,
// so deadlines and client disconnects actually stop the O(N·2^K) sweep.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/approx"
	"repro/internal/bvmtt"
	"repro/internal/ccc"
	"repro/internal/certify"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/parttsolve"
	"repro/internal/policy"
	"repro/internal/stripe"
)

// maxBodyBytes bounds request bodies; the largest admissible instance is a
// few tens of kilobytes of JSON.
const maxBodyBytes = 1 << 20

// Config tunes the service; zero values select the defaults noted per field.
type Config struct {
	MaxConcurrent  int           // simultaneous solver runs (default GOMAXPROCS)
	MaxPending     int           // queued+running solves before shedding with 503 (default 4×MaxConcurrent)
	CacheEntries   int           // LRU capacity in solved instances (default 1024; negative disables)
	CacheBytes     int64         // LRU byte budget across cached entries (default 0: entry count only)
	DefaultTimeout time.Duration // per-request solve budget (default 10s)
	MaxTimeout     time.Duration // ceiling on client-requested timeouts (default 60s)
	MaxK           int           // admission: largest universe accepted (default 20)
	MaxActions     int           // admission: most actions accepted (default 64)
	MaxBatch       int           // admission: most instances per /v1/solve/batch request (default 16)
	PolicyBytes    int64         // byte budget for compiled route-plane policies (default 64 MiB; negative: unbounded)
	RouteMaxBatch  int           // most sessions or cursors per /v1/route/batch request (default 4096)
	Workers        int           // worker goroutines per parallel solve (default GOMAXPROCS)
	StripeWorkers  int           // dedicated stripe-pool workers for striped/batched sweeps (default 0: share the process-wide pool)
	DefaultEngine  string        // engine when the request names none (default "seq")
	CertifyMode    string        // answer certification: "off", "fast", "audit" (default "fast"); per-request certify= overrides
	Logger         *slog.Logger  // structured request log (default slog.Default())

	// Bounded-suboptimality plane (approx.go, docs/RESILIENCE.md).
	DefaultApprox    string // approx knob when the request sends none: "off", a ratio ≥ 1, or a duration (default "off")
	ApproxMaxK       int    // approx admission: largest universe accepted (default core.MaxK — every K the Set type expresses)
	ApproxMaxActions int    // approx admission: most actions accepted (default 256)
	ApproxNodes      int64  // branch-and-bound node budget per solve (default 1<<20; negative disables B&B, greedy only)

	// Self-healing knobs (docs/RESILIENCE.md).
	BreakerThreshold int           // consecutive failures opening an engine's breaker (default 3; negative disables breakers)
	BreakerCooldown  time.Duration // open -> half-open probe delay (default 5s)
	Retries          int           // extra attempts per engine on non-context failure (default 1; negative disables)
	DisableFallback  bool          // fail instead of degrading to the next engine in the chain
	CheckpointDir    string        // durable level-frontier snapshots land here ("" disables)
	CheckpointFS     checkpoint.FS // checkpoint filesystem (nil: real disk; tests inject chaos.FaultFS)
	RecoverTimeout   time.Duration // budget for the startup checkpoint-recovery scan (default 0: caller's context only)

	// Distributed solve plane (docs/CLUSTER.md): the "cluster" engine dials
	// these ttworker addresses per solve. Empty leaves the engine
	// unconfigured — requests for it fall straight through its fallback
	// chain to the in-process engines.
	ClusterWorkers     []string
	ClusterDeadline    time.Duration // per-assignment plane deadline (default 30s)
	ClusterQuorum      int           // minimum live workers to continue (default 1)
	ClusterAudit       float64       // fraction of plane cells spot-audited (default 0.125; >=1 audits all)
	ClusterDialTimeout time.Duration // per-worker dial budget (default 2s)

	// Chaos hooks, wired to ttserve's -chaos-* flags; zero in production.
	EngineFault func(engine string) error // called before each solve attempt; error or panic = engine fault
	ResultFault func(engine string) bool  // true = silently corrupt this attempt's answer before certification
	LevelDelay  time.Duration             // artificial pause at every level barrier
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxPending <= 0 {
		c.MaxPending = 4 * c.MaxConcurrent
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxK <= 0 {
		c.MaxK = 20
	}
	if c.MaxK > core.MaxK {
		c.MaxK = core.MaxK
	}
	if c.MaxActions <= 0 {
		c.MaxActions = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 16
	}
	if c.PolicyBytes == 0 {
		c.PolicyBytes = 64 << 20
	}
	if c.RouteMaxBatch <= 0 {
		c.RouteMaxBatch = 4096
	}
	if c.DefaultEngine == "" {
		c.DefaultEngine = "seq"
	}
	if c.DefaultApprox == "" {
		c.DefaultApprox = "off"
	}
	if c.ApproxMaxK <= 0 || c.ApproxMaxK > core.MaxK {
		c.ApproxMaxK = core.MaxK
	}
	if c.ApproxMaxActions <= 0 {
		c.ApproxMaxActions = 256
	}
	if c.ApproxNodes == 0 {
		c.ApproxNodes = 1 << 20
	}
	if c.CertifyMode == "" {
		c.CertifyMode = "fast"
	}
	if c.Logger == nil {
		c.Logger = slog.Default()
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Retries == 0 {
		c.Retries = 1
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.ClusterDeadline <= 0 {
		c.ClusterDeadline = 30 * time.Second
	}
	if c.ClusterQuorum <= 0 {
		c.ClusterQuorum = 1
	}
	if c.ClusterAudit == 0 {
		c.ClusterAudit = 0.125
	}
	if c.ClusterDialTimeout <= 0 {
		c.ClusterDialTimeout = 2 * time.Second
	}
	return c
}

var (
	errOversize = errors.New("instance exceeds the configured size budget")
	errBusy     = errors.New("server is at solve capacity")
)

// flightCall is one in-flight solve that concurrent identical requests
// attach to instead of re-solving (singleflight). waiters is guarded by the
// server mutex; when the last waiter abandons the call, the solve context is
// cancelled so the engine actually stops.
type flightCall struct {
	done    chan struct{}
	cancel  context.CancelFunc
	entry   *cacheEntry
	err     error
	waiters int
}

// Server is the solver service. Create with New, mount Handler on an
// http.Server, and Close only after that server has drained.
type Server struct {
	cfg           Config
	log           *slog.Logger
	mux           *http.ServeMux
	metrics       *Metrics
	certifyMode   certify.Mode // parsed Config.CertifyMode, the per-server default
	defaultApprox approx.Spec  // parsed Config.DefaultApprox, the per-server default

	sem      chan struct{} // solver semaphore, capacity MaxConcurrent
	pending  atomic.Int64  // queued+running solves, bounded by MaxPending
	reqID    atomic.Int64
	draining atomic.Bool

	policies *policy.Store   // compiled route-plane artifacts (route.go)
	keyring  *policy.Keyring // signs and verifies route session cursors
	routeSID atomic.Uint32   // session ids for new route sessions

	stripe *stripe.Pool // worker pool behind striped Exec, pooled parallel DP, and batch sweeps

	baseCtx    context.Context // parent of every solve context; Close cancels it
	baseCancel context.CancelFunc

	mu      sync.Mutex
	cache   *lruCache
	flights map[string]*flightCall

	brMu     sync.Mutex
	breakers map[string]*breaker
}

// New builds a Server from cfg (zero value is a sensible default).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	mode, err := certify.ParseMode(cfg.CertifyMode)
	if err != nil {
		cfg.Logger.Warn("invalid certify mode, using fast", "mode", cfg.CertifyMode)
		mode = certify.ModeFast
	}
	defaultApprox, err := approx.ParseSpec(cfg.DefaultApprox)
	if err != nil {
		cfg.Logger.Warn("invalid default approx setting, using off", "approx", cfg.DefaultApprox, "err", err)
		defaultApprox = approx.Spec{Raw: "off"}
	}
	//ttlint:ignore ctxflow the server's lifecycle root: every request context derives from it and Close cancels it
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:           cfg,
		certifyMode:   mode,
		defaultApprox: defaultApprox,
		log:           cfg.Logger,
		mux:           http.NewServeMux(),
		metrics:       newMetrics(),
		sem:           make(chan struct{}, cfg.MaxConcurrent),
		baseCtx:       ctx,
		baseCancel:    cancel,
		cache:         newLRU(cfg.CacheEntries, cfg.CacheBytes),
		flights:       make(map[string]*flightCall),
		breakers:      make(map[string]*breaker),
	}
	if cfg.StripeWorkers > 0 {
		s.stripe = stripe.New(cfg.StripeWorkers)
	} else {
		s.stripe = stripe.Shared()
	}
	budget := cfg.PolicyBytes
	if budget < 0 {
		budget = 0 // store semantics: 0 = unbounded
	}
	s.policies = policy.NewStore(budget)
	kr, err := policy.NewKeyring()
	if err != nil {
		// crypto/rand failing means the platform is unusable; refuse to build
		// a server that would sign forgeable cursors.
		panic(fmt.Sprintf("serve: cursor keyring: %v", err))
	}
	s.keyring = kr
	s.mux.HandleFunc("POST /v1/solve", s.handleSolve)
	s.mux.HandleFunc("POST /v1/solve/batch", s.handleSolveBatch)
	s.mux.HandleFunc("POST /v1/eval", s.handleEval)
	s.mux.HandleFunc("POST /v1/policy", s.handlePolicyPublish)
	s.mux.HandleFunc("GET /v1/policies", s.handlePolicyList)
	s.mux.HandleFunc("POST /v1/route", s.handleRoute)
	s.mux.HandleFunc("POST /v1/route/batch", s.handleRouteBatch)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	publishStats(s.statsPayload)
	return s
}

// Handler returns the service's HTTP handler with request logging attached.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := s.reqID.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		s.mux.ServeHTTP(rec, r)
		s.log.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"dur_ms", float64(time.Since(start).Microseconds())/1000)
	})
}

// Metrics exposes the server's counters (also served at /v1/stats).
func (s *Server) Metrics() *Metrics { return s.metrics }

// CacheLen reports the number of cached solved instances.
func (s *Server) CacheLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cache.len()
}

// SetDraining flips the /healthz readiness signal, so load balancers stop
// routing new work while the HTTP server drains.
func (s *Server) SetDraining(d bool) { s.draining.Store(d) }

// Close cancels every in-flight solve context. Call it only after the HTTP
// server has drained (http.Server.Shutdown) — accepted requests finish
// first, then Close reaps anything still running past the drain deadline.
func (s *Server) Close() { s.baseCancel() }

// --- /v1/solve ---

// SolveResponse is the /v1/solve reply.
type SolveResponse struct {
	InstanceHash string  `json:"instance_hash"`
	K            int     `json:"k"`
	Actions      int     `json:"actions"`
	Engine       string  `json:"engine"`              // engine this request asked for
	SolvedBy     string  `json:"solved_by"`           // engine that produced the solution
	Cached       bool    `json:"cached"`              // served from the LRU without solving
	Coalesced    bool    `json:"coalesced,omitempty"` // shared a concurrent identical solve
	CertifyMode  string  `json:"certify_mode"`        // certification the answer passed: off, fast, audit
	Adequate     bool    `json:"adequate"`
	Cost         *uint64 `json:"cost,omitempty"` // C(U); absent when inadequate
	FirstAction  string  `json:"first_action,omitempty"`
	Tree         string  `json:"tree,omitempty"`
	Greedy       *uint64 `json:"greedy,omitempty"`
	ElapsedMS    float64 `json:"elapsed_ms"`

	// Bounded-suboptimality answers only (absent on the exact path): the
	// approx knob in force and the certified quality claim — re-priced
	// cost ≤ gap_milli/1000 × optimum, lower_bound ≤ optimum, both verified
	// by the certifier before the answer could be cached or returned.
	Approx       string  `json:"approx,omitempty"`
	GapMilli     *uint64 `json:"gap_milli,omitempty"`
	LowerBound   *uint64 `json:"lower_bound,omitempty"`
	ApproxPolicy string  `json:"approx_policy,omitempty"` // greedy-ratio, greedy-gain, bb
	ApproxExact  bool    `json:"approx_exact,omitempty"`  // branch-and-bound completed: proven optimal
}

var engineKinds = map[string]parttsolve.EngineKind{
	"lockstep":  parttsolve.Lockstep,
	"goroutine": parttsolve.Goroutine,
	"ccc":       parttsolve.CCC,
}

func validEngine(e string) bool {
	switch e {
	case "seq", "parallel", "lockstep", "goroutine", "ccc", "bvm", "cluster":
		return true
	}
	return false
}

// rejectShed is the single load-shedding rejection seam: every 503 the
// server emits — draining or at capacity, solo or batch, solve or policy
// publish — goes through it, so no handler can forget the Retry-After
// header or the shed counter. Draining sheds with a constant 1s (the client
// should move to a replica, not wait out this process); capacity sheds with
// the queue-derived estimate.
func (s *Server) rejectShed(w http.ResponseWriter, draining bool) {
	if draining {
		s.metrics.RejectDraining.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	s.metrics.RejectBusy.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	httpError(w, http.StatusServiceUnavailable, errBusy.Error())
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	if s.draining.Load() {
		// A draining process sheds new solves immediately: the client should
		// retry against a replica, not wait out this process's shutdown.
		s.rejectShed(w, true)
		return
	}
	q := r.URL.Query()
	engine := q.Get("engine")
	if engine == "" {
		engine = s.cfg.DefaultEngine
	}
	if !validEngine(engine) {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("unknown engine %q", engine))
		return
	}
	mode := s.certifyMode
	if cm := q.Get("certify"); cm != "" {
		var err error
		if mode, err = certify.ParseMode(cm); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	timeout := s.cfg.DefaultTimeout
	if ms := q.Get("timeout_ms"); ms != "" {
		n, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || n <= 0 {
			httpError(w, http.StatusBadRequest, "timeout_ms must be a positive integer")
			return
		}
		timeout = min(time.Duration(n)*time.Millisecond, s.cfg.MaxTimeout)
	}
	ap := s.defaultApprox
	if q.Has("approx") {
		var err error
		if ap, err = approx.ParseSpec(q.Get("approx")); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	p, err := instio.Read(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	solveEngine := engine // the engine actually dispatched; resp.Engine echoes the request
	if oerr := s.admit(p, engine); oerr != nil {
		// Past the exact-DP budget. With approx enabled the instance routes
		// to the anytime engine (its own, much looser, caps permitting)
		// instead of failing; with approx off the 422 names the exceeded
		// budget and the smallest setting that would have been accepted.
		if !ap.Enabled || s.admitApprox(p) != nil {
			s.rejectOversize(w, oerr, p)
			return
		}
		solveEngine = "approx"
	}
	canon := Canonicalize(p)
	hash, err := Hash(canon)
	if err != nil {
		s.metrics.Failures.Add(1)
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	start := time.Now()
	ent, cached, coalesced, err := s.solveShared(ctx, hash, canon, solveEngine, mode, ap, timeout)
	if err != nil {
		s.solveError(w, err)
		return
	}
	resp := &SolveResponse{
		InstanceHash: ent.hash,
		K:            canon.K,
		Actions:      len(canon.Actions),
		Engine:       engine,
		SolvedBy:     ent.engine,
		Cached:       cached,
		Coalesced:    coalesced,
		CertifyMode:  mode.String(),
		Adequate:     ent.adequate,
		ElapsedMS:    float64(time.Since(start).Microseconds()) / 1000,
	}
	if ent.adequate {
		cost := ent.cost
		resp.Cost = &cost
	}
	if ent.approx {
		// All new fields ride only on approx-served answers, so the exact
		// path's response bytes are identical to what they were before the
		// approx plane existed.
		gap, lb := ent.gapMilli, ent.lowerBound
		resp.Approx = ap.Raw
		resp.GapMilli = &gap
		resp.LowerBound = &lb
		resp.ApproxPolicy = ent.approxPolicy
		resp.ApproxExact = ent.approxExact
	}
	if ent.tree != nil {
		resp.FirstAction = actionName(ent.canon, ent.tree.Action)
		if isTrue(q.Get("tree")) {
			resp.Tree = ent.tree.Render(ent.canon)
		}
	}
	if isTrue(q.Get("greedy")) {
		if g, err := core.GreedyCost(canon); err == nil {
			resp.Greedy = &g
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// admit enforces the size budget: the global K/action caps plus the
// engine-specific machine bounds, checked before any 2^K allocation so an
// oversized instance costs the server nothing but the parse. The returned
// rejection names the budget it enforces (for the structured 422 body) and
// unwraps to errOversize.
func (s *Server) admit(p *core.Problem, engine string) *oversizeError {
	if p.K > s.cfg.MaxK {
		return &oversizeError{budget: "k", limit: s.cfg.MaxK, got: p.K,
			msg: fmt.Sprintf("%v: %d objects > max %d", errOversize, p.K, s.cfg.MaxK)}
	}
	if len(p.Actions) > s.cfg.MaxActions {
		return &oversizeError{budget: "actions", limit: s.cfg.MaxActions, got: len(p.Actions),
			msg: fmt.Sprintf("%v: %d actions > max %d", errOversize, len(p.Actions), s.cfg.MaxActions)}
	}
	dim := p.K + parttsolve.PaddedLogN(len(p.Actions))
	machine := func(got int, msg string) *oversizeError {
		return &oversizeError{budget: "machine-dim", limit: core.MaxK, got: got, msg: msg}
	}
	switch engine {
	case "lockstep", "goroutine":
		if dim > core.MaxK {
			return machine(dim, fmt.Sprintf("%v: engine %s needs 2^%d simulated PEs", errOversize, engine, dim))
		}
	case "ccc":
		top, err := ccc.ForPEs(1 << uint(dim))
		if err != nil {
			return machine(dim, fmt.Sprintf("%v: engine ccc: %v", errOversize, err))
		}
		if top.AddrBits > core.MaxK {
			return machine(top.AddrBits, fmt.Sprintf("%v: engine ccc needs 2^%d simulated PEs", errOversize, top.AddrBits))
		}
	case "bvm":
		if dim > bvmtt.MaxDim {
			e := machine(dim, fmt.Sprintf("%v: engine bvm needs 2^%d PEs, bit-level cap is 2^%d", errOversize, dim, bvmtt.MaxDim))
			e.limit = bvmtt.MaxDim
			return e
		}
		if width := bvmtt.SuggestWidth(p); width > 32 {
			e := machine(width, fmt.Sprintf("%v: engine bvm needs %d-bit words (max 32)", errOversize, width))
			e.limit = 32
			return e
		}
	}
	return nil
}

// solveShared resolves one request to a cache entry: LRU hit, attach to an
// identical in-flight solve, or start the solve. Cache and singleflight are
// keyed by hash *and* certify mode, so an answer solved without
// certification is never handed to a request that asked for it (and an
// audit-mode answer is not diluted to an off-mode one). The solve runs under
// its own context (derived from the server, bounded by timeout), so it
// survives any single client's disconnect while other waiters remain — and
// stops as soon as the last waiter is gone.
func (s *Server) solveShared(ctx context.Context, hash string, canon *core.Problem, engine string, mode certify.Mode, ap approx.Spec, timeout time.Duration) (ent *cacheEntry, cached, coalesced bool, err error) {
	key := cacheKey(hash, mode, ap)
	for attempt := 0; ; attempt++ {
		s.mu.Lock()
		if e := s.cache.get(key); e != nil {
			s.mu.Unlock()
			s.metrics.CacheHits.Add(1)
			return e, true, false, nil
		}
		s.metrics.CacheMisses.Add(1)
		if c, ok := s.flights[key]; ok {
			c.waiters++
			s.mu.Unlock()
			s.metrics.Coalesced.Add(1)
			e, err := s.await(ctx, c)
			if err != nil && errors.Is(err, context.Canceled) {
				// The flight was cancelled by its other waiters abandoning
				// it — that cancellation was theirs, not ours.
				if ctxErr := ctx.Err(); ctxErr != nil {
					// Our own context ended too (await's select can surface
					// either side when both fire together): report our own
					// terminal state — a deadline must map to 504, not to a
					// "request cancelled" the client never issued.
					return e, false, true, ctxErr
				}
				if attempt < 2 {
					// We joined in the narrow window after the last waiter
					// abandoned the flight but before it was unmapped —
					// re-enter and solve fresh.
					continue
				}
			}
			return e, false, true, err
		}
		solveCtx, cancel := context.WithTimeout(s.baseCtx, timeout)
		c := &flightCall{done: make(chan struct{}), cancel: cancel, waiters: 1}
		s.flights[key] = c
		s.mu.Unlock()
		go s.runSolve(solveCtx, hash, key, c, canon, engine, mode, ap)
		e, err := s.await(ctx, c)
		return e, false, false, err
	}
}

// await blocks until the shared solve finishes or this request's own
// context ends; an abandoning waiter that was the last one cancels the
// solve so the engine goroutines actually stop.
func (s *Server) await(ctx context.Context, c *flightCall) (*cacheEntry, error) {
	select {
	case <-c.done:
		return c.entry, c.err
	case <-ctx.Done():
		s.mu.Lock()
		c.waiters--
		last := c.waiters == 0
		s.mu.Unlock()
		if last {
			c.cancel()
		}
		return nil, ctx.Err()
	}
}

// runSolve executes one admitted solve under the pool semaphore and
// publishes the result to every waiter and (on success) the cache. The solve
// itself goes through the resilient path: fallback chain, retries, circuit
// breakers, and durable checkpointing (resilience.go).
func (s *Server) runSolve(ctx context.Context, hash, key string, c *flightCall, canon *core.Problem, engine string, mode certify.Mode, ap approx.Spec) {
	defer c.cancel()
	// A panicking solve must still publish to its waiters — as a failure —
	// or they block on c.done forever. Successful answers are published in
	// the straight-line path below, after certification, so this handler
	// never inserts into the cache.
	defer func() {
		if r := recover(); r != nil {
			s.mu.Lock()
			delete(s.flights, key)
			c.entry, c.err = nil, fmt.Errorf("serve: %s engine panicked: %v", engine, r)
			s.mu.Unlock()
			close(c.done)
		}
	}()
	var ent *cacheEntry
	var err error
	func() {
		if s.pending.Add(1) > int64(s.cfg.MaxPending) {
			s.pending.Add(-1)
			err = errBusy
			return
		}
		defer s.pending.Add(-1)
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			err = ctx.Err()
			return
		}
		defer func() { <-s.sem }()
		ent, err = s.solveResilient(ctx, hash, canon, engine, mode, ap)
	}()
	s.mu.Lock()
	delete(s.flights, key)
	c.entry, c.err = ent, err
	if err == nil {
		s.cache.add(ent)
	}
	s.mu.Unlock()
	close(c.done)
}

// solveError maps a solve failure to its HTTP status and counter.
func (s *Server) solveError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.Timeouts.Add(1)
		httpError(w, http.StatusGatewayTimeout, "solve deadline exceeded")
	case errors.Is(err, errBusy):
		s.rejectShed(w, false)
	case errors.Is(err, context.Canceled):
		// The client went away (or the server is closing); nobody will read
		// the body, but account for it.
		s.metrics.ClientGone.Add(1)
		httpError(w, http.StatusServiceUnavailable, "request cancelled")
	default:
		s.metrics.Failures.Add(1)
		httpError(w, http.StatusInternalServerError, err.Error())
	}
}

// --- /v1/eval ---

// EvalRequest asks for a stored policy's expected cost under a weight
// vector — the deployed-procedure evaluation (including drifted priors)
// served online.
type EvalRequest struct {
	Policy  *core.Policy `json:"policy"`
	Weights []uint64     `json:"weights"`
}

// EvalResponse is the /v1/eval reply.
type EvalResponse struct {
	Cost   uint64 `json:"cost"`
	States int    `json:"states"`
	Nodes  int    `json:"nodes"`
	Depth  int    `json:"depth"`
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	s.metrics.Requests.Add(1)
	var req EvalRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parsing eval request: %v", err))
		return
	}
	if req.Policy == nil {
		httpError(w, http.StatusBadRequest, "missing policy")
		return
	}
	if len(req.Weights) != req.Policy.K {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("%d weights for a %d-object policy", len(req.Weights), req.Policy.K))
		return
	}
	if req.Policy.K > s.cfg.MaxK {
		// Eval walks a caller-supplied tree — there is no approximate
		// variant to hint at, so the body names the budget and nothing else.
		s.rejectOversize(w, &oversizeError{budget: "k", limit: s.cfg.MaxK, got: req.Policy.K,
			msg: fmt.Sprintf("%v: %d objects > max %d", errOversize, req.Policy.K, s.cfg.MaxK)}, nil)
		return
	}
	p := &core.Problem{K: req.Policy.K, Weights: req.Weights, Actions: req.Policy.Actions}
	if err := p.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The policy is caller-supplied JSON: a well-formed document can still
	// encode a malformed procedure (non-shrinking choices, missing states,
	// objects never treated). Tree() rejects choices that would not
	// terminate, and the certifier's structural pass rejects everything
	// else — both are 422s (the document parsed; the procedure is invalid),
	// distinct from the 400s above where the request itself is bad.
	tree, err := req.Policy.Tree()
	if err != nil {
		s.metrics.EvalMalformed.Add(1)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	if rep := certify.TreeStructure(p, tree); !rep.OK() {
		s.metrics.EvalMalformed.Add(1)
		httpError(w, http.StatusUnprocessableEntity, rep.Err().Error())
		return
	}
	// Pricing walks one path per object and is bounded by the request
	// context: a client that disconnects stops paying for its own eval.
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.DefaultTimeout)
	defer cancel()
	cost, err := core.TreeCostCtx(ctx, p, tree)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			s.solveError(w, ctxErr)
			return
		}
		s.metrics.EvalMalformed.Add(1)
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, &EvalResponse{
		Cost:   cost,
		States: req.Policy.States(),
		Nodes:  tree.CountNodes(),
		Depth:  tree.Depth(),
	})
}

// --- health and stats ---

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		httpError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.statsPayload())
}

// statsPayload is the /v1/stats and expvar body: the counter set plus live
// gauges — cache occupancy (entries and bytes), queue depth, and the state
// of every engine's circuit breaker.
func (s *Server) statsPayload() map[string]any {
	out := s.metrics.Snapshot()
	s.mu.Lock()
	out["cache_entries"] = s.cache.len()
	out["cache_bytes"] = s.cache.totalBytes
	s.mu.Unlock()
	pc, pb := s.policies.Stats()
	out["policies"] = pc
	out["policy_bytes"] = pb
	breakers := make(map[string]any)
	s.brMu.Lock()
	for name, b := range s.breakers {
		breakers[name] = b.snapshot()
	}
	s.brMu.Unlock()
	out["breakers"] = breakers
	out["pending"] = s.pending.Load()
	out["stripe_workers"] = s.stripe.Workers()
	return out
}

// retryAfterSeconds estimates when shed work could be admitted again: the
// queue depth times the observed mean solve time, divided across the solver
// slots, clamped to [1, 60] — an honest Retry-After instead of a constant.
func (s *Server) retryAfterSeconds() int {
	mean := s.metrics.meanSolveSeconds()
	if mean <= 0 {
		mean = 1
	}
	est := math.Ceil(float64(s.pending.Load()) * mean / float64(s.cfg.MaxConcurrent))
	return int(min(60, max(1, est)))
}

// --- plumbing ---

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func actionName(p *core.Problem, idx int) string {
	if idx < 0 || idx >= len(p.Actions) {
		return ""
	}
	if n := p.Actions[idx].Name; n != "" {
		return n
	}
	return fmt.Sprintf("T%d", idx+1)
}

func isTrue(v string) bool { return v == "1" || v == "true" }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the client is gone if this fails; nothing to recover
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
