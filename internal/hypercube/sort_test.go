package hypercube

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBitonicSortRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{1, 2, 4, 7, 10} {
		m := New[uint64](dim)
		want := make([]uint64, m.N)
		for i := range m.State() {
			v := uint64(rng.Intn(1 << 16))
			m.State()[i] = v
			want[i] = v
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		BitonicSort(m)
		for i, v := range m.State() {
			if v != want[i] {
				t.Fatalf("dim %d: position %d = %d, want %d", dim, i, v, want[i])
			}
		}
		// dim(dim+1)/2 dimension steps.
		if m.Steps != dim*(dim+1)/2 {
			t.Fatalf("dim %d: %d steps, want %d", dim, m.Steps, dim*(dim+1)/2)
		}
	}
}

func TestBitonicSortDuplicatesAndSortedInputs(t *testing.T) {
	m := New[uint64](4)
	for i := range m.State() {
		m.State()[i] = uint64(i % 3)
	}
	BitonicSort(m)
	for i := 1; i < m.N; i++ {
		if m.State()[i] < m.State()[i-1] {
			t.Fatal("not sorted with duplicates")
		}
	}
	// Already sorted input stays sorted.
	m2 := New[uint64](4)
	for i := range m2.State() {
		m2.State()[i] = uint64(i)
	}
	BitonicSort(m2)
	for i, v := range m2.State() {
		if v != uint64(i) {
			t.Fatal("sorted input perturbed")
		}
	}
}

// Property: bitonic sort equals the standard library sort on arbitrary data.
func TestPropertyBitonicMatchesSort(t *testing.T) {
	f := func(vals [8]uint16) bool {
		m := New[uint64](3)
		want := make([]uint64, 8)
		for i, v := range vals {
			m.State()[i] = uint64(v)
			want[i] = uint64(v)
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		BitonicSort(m)
		for i := range want {
			if m.State()[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBitonicSortHypercube(b *testing.B) {
	m := New[uint64](12)
	rng := rand.New(rand.NewSource(3))
	init := make([]uint64, m.N)
	for i := range init {
		init[i] = uint64(rng.Intn(1 << 20))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(m.State(), init)
		BitonicSort(m)
	}
}
