package serve

import (
	"expvar"
	"sync"
	"sync/atomic"
	"time"
)

// latencyHist is a fixed-bucket exponential latency histogram (thresholds
// 1ms, 4ms, 16ms, ... ×4 up to 16s, plus overflow), lock-free on the
// observe path.
type latencyHist struct {
	counts  [histBuckets + 1]atomic.Int64
	n       atomic.Int64
	totalNS atomic.Int64
}

const (
	histBuckets = 8
	histBaseNS  = int64(time.Millisecond)
)

func histLabel(i int) string {
	labels := [histBuckets + 1]string{
		"<1ms", "<4ms", "<16ms", "<64ms", "<256ms", "<1s", "<4s", "<16s", ">=16s",
	}
	return labels[i]
}

func (h *latencyHist) observe(d time.Duration) {
	ns := int64(d)
	bucket := histBuckets
	for i, bound := 0, histBaseNS; i < histBuckets; i, bound = i+1, bound*4 {
		if ns < bound {
			bucket = i
			break
		}
	}
	h.counts[bucket].Add(1)
	h.n.Add(1)
	h.totalNS.Add(ns)
}

func (h *latencyHist) snapshot() map[string]any {
	buckets := make(map[string]int64, histBuckets+1)
	for i := range h.counts {
		if v := h.counts[i].Load(); v > 0 {
			buckets[histLabel(i)] = v
		}
	}
	out := map[string]any{"count": h.n.Load(), "buckets": buckets}
	if n := h.n.Load(); n > 0 {
		out["mean_ms"] = float64(h.totalNS.Load()) / float64(n) / 1e6
	}
	return out
}

// Metrics is the server's counter set, exported at /v1/stats (per server)
// and through the process-wide expvar page at /debug/vars.
type Metrics struct {
	Requests       atomic.Int64 // HTTP requests to /v1/ endpoints
	Solves         atomic.Int64 // solver runs actually executed
	CacheHits      atomic.Int64
	CacheMisses    atomic.Int64
	Coalesced      atomic.Int64 // requests collapsed onto an in-flight solve
	RejectOversize atomic.Int64 // 422: over the K/action budget
	RejectBusy     atomic.Int64 // 503: admission queue full
	Timeouts       atomic.Int64 // 504: solver deadline exceeded
	ClientGone     atomic.Int64 // client disconnected before the answer
	Failures       atomic.Int64 // 5xx

	mu        sync.Mutex
	perEngine map[string]*latencyHist
}

func newMetrics() *Metrics {
	return &Metrics{perEngine: make(map[string]*latencyHist)}
}

// observe records one completed solver run for an engine.
func (m *Metrics) observe(engine string, d time.Duration) {
	m.mu.Lock()
	h, ok := m.perEngine[engine]
	if !ok {
		h = &latencyHist{}
		m.perEngine[engine] = h
	}
	m.mu.Unlock()
	h.observe(d)
}

// Snapshot renders every counter and histogram as a JSON-ready map.
func (m *Metrics) Snapshot() map[string]any {
	engines := make(map[string]any)
	m.mu.Lock()
	for name, h := range m.perEngine {
		engines[name] = h.snapshot()
	}
	m.mu.Unlock()
	return map[string]any{
		"requests":        m.Requests.Load(),
		"solves":          m.Solves.Load(),
		"cache_hits":      m.CacheHits.Load(),
		"cache_misses":    m.CacheMisses.Load(),
		"coalesced":       m.Coalesced.Load(),
		"reject_oversize": m.RejectOversize.Load(),
		"reject_busy":     m.RejectBusy.Load(),
		"timeouts":        m.Timeouts.Load(),
		"client_gone":     m.ClientGone.Load(),
		"failures":        m.Failures.Load(),
		"engine_latency":  engines,
	}
}

// publishExpvar exposes a server's metrics as the process-wide "ttserve"
// expvar. expvar names are global and re-publishing panics, so only the
// first server in a process is published — the normal case for cmd/ttserve;
// test servers beyond the first keep their per-server /v1/stats endpoint.
var publishExpvar sync.Once

func (m *Metrics) publish() {
	publishExpvar.Do(func() {
		expvar.Publish("ttserve", expvar.Func(func() any { return m.Snapshot() }))
	})
}
