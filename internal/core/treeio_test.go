package core

import (
	"math/rand"
	"strings"
	"testing"
)

func fig1like() *Problem {
	return &Problem{
		K:       2,
		Weights: []uint64{3, 1},
		Actions: []Action{
			{Name: "probe", Set: SetOf(0), Cost: 1},
			{Name: "fix0", Set: SetOf(0), Cost: 2, Treatment: true},
			{Name: "fix1", Set: SetOf(1), Cost: 2, Treatment: true},
		},
	}
}

func TestDOTStructure(t *testing.T) {
	p := fig1like()
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := sol.Tree(p)
	if err != nil {
		t.Fatal(err)
	}
	dot := tree.DOT(p, "fig1")
	for _, want := range []string{
		`digraph "fig1"`, "doubleoctagon", "label=\"cured\"", "}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Edge/node syntax balance: every '[' has a ']'.
	if strings.Count(dot, "[") != strings.Count(dot, "]") {
		t.Error("unbalanced attribute brackets")
	}
	// Default graph name.
	if !strings.Contains(tree.DOT(p, ""), `digraph "procedure"`) {
		t.Error("default graph name missing")
	}
}

func TestDOTTestNodeEdges(t *testing.T) {
	p := fig1like()
	sol, _ := Solve(p)
	tree, _ := sol.Tree(p)
	dot := tree.DOT(p, "g")
	if p.Actions[tree.Action].Treatment {
		t.Skip("optimal root is a treatment on this instance")
	}
	if !strings.Contains(dot, `label="+"`) || !strings.Contains(dot, `label="-"`) {
		t.Errorf("test node edges not labeled:\n%s", dot)
	}
}

func TestSExpr(t *testing.T) {
	p := fig1like()
	sol, _ := Solve(p)
	tree, _ := sol.Tree(p)
	s := tree.SExpr(p)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		t.Fatalf("SExpr = %q", s)
	}
	// Treatments are marked with '!'.
	if !strings.Contains(s, "!") {
		t.Fatalf("SExpr missing treatment marker: %q", s)
	}
	var nilNode *Node
	if nilNode.SExpr(p) != "_" {
		t.Fatal("nil SExpr wrong")
	}
}

func TestTreeCostWithWeights(t *testing.T) {
	p := fig1like()
	sol, _ := Solve(p)
	tree, _ := sol.Tree(p)
	// Same weights: same cost.
	same, err := TreeCostWithWeights(p, tree, p.Weights)
	if err != nil {
		t.Fatal(err)
	}
	if same != sol.Cost {
		t.Fatalf("same-weight evaluation %d != %d", same, sol.Cost)
	}
	// Shifted weights: still valid, different cost, and at least the optimum
	// for the shifted instance.
	shiftedWeights := []uint64{1, 3}
	shifted, err := TreeCostWithWeights(p, tree, shiftedWeights)
	if err != nil {
		t.Fatal(err)
	}
	q := p.Clone()
	q.Weights = shiftedWeights
	qsol, err := Solve(q)
	if err != nil {
		t.Fatal(err)
	}
	if shifted < qsol.Cost {
		t.Fatalf("stale tree %d beats shifted optimum %d", shifted, qsol.Cost)
	}
	if _, err := TreeCostWithWeights(p, tree, []uint64{1}); err == nil {
		t.Fatal("wrong weight count accepted")
	}
}

// Property: for random instances, a tree optimized under w1 is never better
// under w2 than the tree optimized under w2 (regret is non-negative).
func TestPropertyNonNegativeRegret(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 40; trial++ {
		p := randomProblem(rng, 4, 6)
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		tree, err := sol.Tree(p)
		if err != nil {
			t.Fatal(err)
		}
		w2 := make([]uint64, p.K)
		for j := range w2 {
			w2[j] = uint64(rng.Intn(20) + 1)
		}
		stale, err := TreeCostWithWeights(p, tree, w2)
		if err != nil {
			t.Fatal(err)
		}
		q := p.Clone()
		q.Weights = w2
		fresh, err := Solve(q)
		if err != nil {
			t.Fatal(err)
		}
		if stale < fresh.Cost {
			t.Fatalf("trial %d: stale tree %d beats fresh optimum %d", trial, stale, fresh.Cost)
		}
	}
}
