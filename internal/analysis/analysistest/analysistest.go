// Package analysistest runs an analyzer over golden testdata and checks its
// findings against // want comments — the same contract as
// golang.org/x/tools/go/analysis/analysistest, reimplemented over this
// repo's offline analysis framework.
//
// Layout: <testdata>/src/<importpath>/*.go. Testdata packages may import each
// other (fake certify/checkpoint packages mimic the real serving stack's
// shape) and the standard library; stdlib dependencies are type-checked from
// compiled export data via `go list -export`, so no network and no module
// cache are needed.
//
// Expectations are written at the end of the offending line:
//
//	w.Flush() // want "Flush error is dropped"
//
// The quoted string is a regexp matched against the diagnostic message; every
// finding must be wanted and every want must fire, on its exact line.
package analysistest

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run analyzes the packages at the given import paths under
// <testdata>/src and reports mismatches against their // want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	pkgs, err := load(testdata, paths)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	check(t, pkgs, diags)
}

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

func check(t *testing.T, pkgs []*analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	seen := map[*ast.File]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if seen[f] {
				continue
			}
			seen[f] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					for _, raw := range splitQuoted(m[1]) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						}
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
					}
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}

// splitQuoted extracts the Go-quoted strings from a want payload:
// `"re one" "re two"` -> [re one, re two].
func splitQuoted(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		rest := s[i:]
		// Find the end of this Go string literal.
		for j := 1; j < len(rest); j++ {
			if rest[j] == '\\' {
				j++
				continue
			}
			if rest[j] == '"' {
				if q, err := strconv.Unquote(rest[:j+1]); err == nil {
					out = append(out, q)
				}
				s = rest[j+1:]
				break
			}
			if j == len(rest)-1 {
				return out
			}
		}
	}
}

// load parses and type-checks the named testdata packages plus any testdata
// packages they import, in dependency order.
func load(testdata string, paths []string) ([]*analysis.Package, error) {
	src := filepath.Join(testdata, "src")
	fset := token.NewFileSet()

	type unit struct {
		path    string
		files   []*ast.File
		names   []string
		imports []string
	}
	units := map[string]*unit{}
	var parse func(path string) error
	parse = func(path string) error {
		if _, ok := units[path]; ok {
			return nil
		}
		dir := filepath.Join(src, filepath.FromSlash(path))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		u := &unit{path: path}
		units[path] = u
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return err
			}
			u.files = append(u.files, f)
			u.names = append(u.names, e.Name())
			for _, imp := range f.Imports {
				p, _ := strconv.Unquote(imp.Path.Value)
				u.imports = append(u.imports, p)
				if _, err := os.Stat(filepath.Join(src, filepath.FromSlash(p))); err == nil {
					if err := parse(p); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	for _, p := range paths {
		if err := parse(p); err != nil {
			return nil, err
		}
	}

	// Everything imported that is not a testdata package is resolved from
	// compiled export data.
	stdlib := map[string]bool{}
	for _, u := range units {
		for _, imp := range u.imports {
			if _, ok := units[imp]; !ok {
				stdlib[imp] = true
			}
		}
	}
	exports, err := exportData(testdata, stdlib)
	if err != nil {
		return nil, err
	}

	checked := map[string]*types.Package{}
	gcImp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if p, ok := checked[path]; ok {
			return p, nil
		}
		return gcImp.Import(path)
	})

	// Topological order over testdata packages.
	var order []string
	state := map[string]int{}
	var visit func(string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		for _, dep := range units[path].imports {
			if _, ok := units[dep]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	var all []string
	for p := range units {
		all = append(all, p)
	}
	sort.Strings(all)
	for _, p := range all {
		if err := visit(p); err != nil {
			return nil, err
		}
	}

	var pkgs []*analysis.Package
	for _, path := range order {
		u := units[path]
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, u.files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", path, err)
		}
		checked[path] = tpkg
		p := &analysis.Package{
			Path: path, Fset: fset, Files: u.files,
			TestFiles: map[*ast.File]bool{}, Pkg: tpkg, Info: info,
		}
		for i, f := range u.files {
			if strings.HasSuffix(u.names[i], "_test.go") {
				p.TestFiles[f] = true
			}
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// exportData asks the go command for compiled export data covering the given
// stdlib import paths (plus their transitive deps).
func exportData(dir string, paths map[string]bool) (map[string]string, error) {
	out := map[string]string{}
	if len(paths) == 0 {
		return out, nil
	}
	args := []string{"list", "-export", "-deps", "-json"}
	var sorted []string
	for p := range paths {
		sorted = append(sorted, p)
	}
	sort.Strings(sorted)
	args = append(args, sorted...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	raw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list failed: %v\n%s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	for {
		var p struct {
			ImportPath string
			Export     string
		}
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			out[p.ImportPath] = p.Export
		}
	}
	return out, nil
}
