package bvmcheck_test

import (
	"strings"
	"testing"

	"repro/internal/bvm"
	"repro/internal/bvmcheck"
	"repro/internal/bvmtt"
	"repro/internal/core"
)

// TestABFTWindowClean: writes before the checksum and after the barrier are
// fine; a quiet window produces no abft-window diagnostics.
func TestABFTWindowClean(t *testing.T) {
	p := record(t, 2, "abft-clean", func(m *bvm.Machine) {
		m.SetConst(bvm.R(0), true)
		m.SetConst(bvm.R(1), false)
		m.MarkRecording(bvm.MarkABFTChecksum, 0, 1)
		m.SetConst(bvm.R(5), true) // uncovered register: allowed in the window
		m.MarkRecording(bvm.MarkABFTBarrier, 0, 1)
		m.SetConst(bvm.R(0), false) // after the barrier: allowed
	})
	rep := bvmcheck.Lint(p, cfg2(t))
	if ds := diagsOf(rep, bvmcheck.CatABFTWindow); len(ds) != 0 {
		t.Fatalf("clean program got abft-window diags: %v", ds)
	}
}

// TestABFTWindowWriteFlagged: a write to a checksummed register between the
// checksum mark and its barrier is the bug this pass exists for.
func TestABFTWindowWriteFlagged(t *testing.T) {
	p := record(t, 2, "abft-dirty", func(m *bvm.Machine) {
		m.SetConst(bvm.R(3), true)
		m.MarkRecording(bvm.MarkABFTChecksum, 3, 4)
		m.SetConst(bvm.R(4), false) // covered: the barrier verifies a stale checksum
		m.MarkRecording(bvm.MarkABFTBarrier, 3, 4)
	})
	rep := bvmcheck.Lint(p, cfg2(t))
	ds := diagsOf(rep, bvmcheck.CatABFTWindow)
	if len(ds) != 1 {
		t.Fatalf("got %d abft-window diags, want 1: %v", len(ds), ds)
	}
	if ds[0].Severity != bvmcheck.SevWarning || !strings.Contains(ds[0].Message, "R[4]") {
		t.Fatalf("diag: %+v", ds[0])
	}
	if ds[0].Index != 1 {
		t.Fatalf("diag at instruction %d, want 1", ds[0].Index)
	}
}

// TestABFTSupersededChecksum: the repair path re-checksums after a re-run; a
// barrier verifies only the nearest preceding checksum, so a write between
// the superseded mark and the fresh one is not a violation.
func TestABFTSupersededChecksum(t *testing.T) {
	p := record(t, 2, "abft-repair", func(m *bvm.Machine) {
		m.MarkRecording(bvm.MarkABFTChecksum, 0)
		m.SetConst(bvm.R(0), true) // re-run rewrites the plane...
		m.MarkRecording(bvm.MarkABFTChecksum, 0)
		// ...then the fresh checksum is taken and the window is quiet.
		m.MarkRecording(bvm.MarkABFTBarrier, 0)
	})
	rep := bvmcheck.Lint(p, cfg2(t))
	if ds := diagsOf(rep, bvmcheck.CatABFTWindow); len(ds) != 0 {
		t.Fatalf("superseded checksum flagged: %v", ds)
	}
}

// TestABFTUnpairedMarks: a barrier with no checksum and a checksum with no
// barrier are both mark-discipline bugs.
func TestABFTUnpairedMarks(t *testing.T) {
	orphanBarrier := record(t, 2, "abft-orphan-barrier", func(m *bvm.Machine) {
		m.SetConst(bvm.R(0), true)
		m.MarkRecording(bvm.MarkABFTBarrier, 0)
	})
	rep := bvmcheck.Lint(orphanBarrier, cfg2(t))
	ds := diagsOf(rep, bvmcheck.CatABFTWindow)
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "no preceding abft-checksum") {
		t.Fatalf("orphan barrier diags: %v", ds)
	}

	orphanChecksum := record(t, 2, "abft-orphan-checksum", func(m *bvm.Machine) {
		m.SetConst(bvm.R(0), true)
		m.MarkRecording(bvm.MarkABFTChecksum, 0)
	})
	rep = bvmcheck.Lint(orphanChecksum, cfg2(t))
	ds = diagsOf(rep, bvmcheck.CatABFTWindow)
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "never verified") {
		t.Fatalf("orphan checksum diags: %v", ds)
	}
}

// TestABFTSolverProgramClean is the integration contract: the real bvmtt
// solve, recorded with its ABFT instrumentation live, obeys its own mark
// discipline — every checksum window is quiet and every mark is paired.
func TestABFTSolverProgramClean(t *testing.T) {
	p := &core.Problem{
		K:       3,
		Weights: []uint64{4, 2, 1},
		Actions: []core.Action{
			{Name: "t01", Set: core.SetOf(0, 1), Cost: 2},
			{Name: "r0", Set: core.SetOf(0), Cost: 3, Treatment: true},
			{Name: "r1", Set: core.SetOf(1), Cost: 3, Treatment: true},
			{Name: "r2", Set: core.SetOf(2), Cost: 5, Treatment: true},
		},
	}
	res, err := bvmtt.SolveOpts(t.Context(), p, bvmtt.Options{Record: true, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program == nil {
		t.Fatal("no program recorded")
	}
	var marks int
	for _, mk := range res.Program.Marks {
		if mk.Kind == bvm.MarkABFTChecksum || mk.Kind == bvm.MarkABFTBarrier {
			marks++
		}
	}
	if marks == 0 {
		t.Fatal("solver program carries no ABFT marks; the pass would be vacuous")
	}
	cfg, err := bvmcheck.DefaultConfig(res.MachineR)
	if err != nil {
		t.Fatal(err)
	}
	rep := bvmcheck.Lint(res.Program, cfg)
	if ds := diagsOf(rep, bvmcheck.CatABFTWindow); len(ds) != 0 {
		t.Fatalf("solver program violates its own ABFT mark discipline: %v", ds)
	}
}
