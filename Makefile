# Development targets. CI (.github/workflows/ci.yml) runs build, vet,
# staticcheck, ttlint, govulncheck, test, race, and a short fuzz pass on
# every push.

GO ?= go

.PHONY: build test race vet lint fuzz-short golden bench-json bench-smoke bench-diff serve-smoke chaos-smoke certify-smoke route-smoke cluster-smoke approx-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# ttlint is this repo's own analyzer suite (cmd/ttlint, docs/ANALYSIS.md):
# flushcheck, ctxflow, certorder, panicsafe, durability. It builds from the
# tree, so the target works offline. staticcheck and govulncheck are not
# vendored; each degrades to a notice when absent so offline checkouts
# still make (CI installs and runs them).
lint: vet
	$(GO) run ./cmd/ttlint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (CI runs it)"; \
	fi

fuzz-short:
	$(GO) test ./internal/bvm/ -fuzz FuzzParseProgramRoundTrip -fuzztime 30s

# Regenerate the bvmcheck golden reports after an intentional format change.
golden:
	$(GO) test ./internal/bvmcheck/ -run TestGoldenSeededDefects -update

# Simulator-throughput benchmark suite, rendered to JSON. The committed
# BENCH_bvm.json holds the pre-kernel scalar baseline that the route-kernel
# speedups in EXPERIMENTS.md are measured against; rerun this target to
# re-baseline after an intentional performance change.
BENCH_PATTERN = BenchmarkExecPerRoute|BenchmarkExecActivation|BenchmarkExecStriped|BenchmarkApply3|BenchmarkGather|BenchmarkE3CycleID|BenchmarkE13BVMTT|BenchmarkA2WavefrontBVM|BenchmarkCertifyOverhead|BenchmarkSolveLevelPair|BenchmarkSolveBatch|BenchmarkSolveReuse|BenchmarkRouteStep|BenchmarkRouteBatch|BenchmarkGreedySolve|BenchmarkBranchAndBound
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 200ms ./internal/bvm ./internal/bitvec ./internal/policy . \
		| $(GO) run ./cmd/benchjson > BENCH_bvm.json

# One-iteration benchmark smoke: exercises every route kernel, Apply3 fast
# path, striped Exec, the level-pair/batched DP sweeps, and the certification
# pipeline under the bench harness so a silent fallback to the scalar path
# (or a kernel panic on any geometry, or a certifier regression) fails CI
# fast.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkExecPerRoute|BenchmarkExecStriped|BenchmarkApply3|BenchmarkE3CycleID|BenchmarkCertifyOverhead|BenchmarkSolveLevelPair|BenchmarkSolveBatch|BenchmarkRouteStep' -benchtime 1x ./internal/bvm ./internal/bitvec ./internal/policy .

# Regression gate against the committed baseline: rerun the suite, render it
# to JSON, and diff against BENCH_bvm.json. The threshold is generous (CI
# hardware differs run to run); it exists to catch order-of-magnitude
# regressions — a kernel silently degraded to scalar, a pooled table
# reallocated per call — not single-digit noise.
BENCH_DIFF_THRESHOLD ?= 300
bench-diff:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime 200ms ./internal/bvm ./internal/bitvec ./internal/policy . \
		| $(GO) run ./cmd/benchjson > BENCH_new.json
	$(GO) run ./cmd/benchjson -diff BENCH_bvm.json BENCH_new.json -threshold $(BENCH_DIFF_THRESHOLD)

# End-to-end smoke of the solver service: boots ttserve on a random port
# through its real run loop, then drives a solve, a cache hit, an oversized
# 422 reject, and a graceful shutdown (see cmd/ttserve/main_test.go).
serve-smoke:
	$(GO) test -race -count=1 -run 'TestServeSmoke' -v ./cmd/ttserve

# Crash drill: builds the real ttserve binary, SIGKILLs it mid-solve with
# durable checkpointing on, restarts it against the same checkpoint
# directory, and verifies the interrupted solve was finished from disk (see
# cmd/ttserve/chaos_smoke_test.go and docs/RESILIENCE.md).
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaosSmoke' -v ./cmd/ttserve

# Live-fire certification drill: boots the real ttserve binary with
# -certify=fast while chaos hooks corrupt one engine's answers and inject a
# stuck-bit hardware fault into every BVM machine, then verifies zero wrong
# answers escape — served or cached (see cmd/ttserve/certify_smoke_test.go
# and docs/RESILIENCE.md).
certify-smoke:
	$(GO) test -race -count=1 -run 'TestCertifySmoke' -v ./cmd/ttserve

# Distributed-solve drill: builds the real ttserve and ttworker binaries,
# stands up a three-worker fleet with one persistently malicious member,
# SIGKILLs another worker mid-solve, and verifies the coordinator reassigns
# the dead worker's slices, attributes and rejects the malicious planes, and
# still returns the certified answer bit-identical to the single-process
# reference — then fails closed when the whole fleet is gone (see
# cmd/ttserve/cluster_smoke_test.go and docs/CLUSTER.md).
cluster-smoke:
	$(GO) test -race -count=1 -run 'TestClusterSmoke' -v ./cmd/ttserve

# Graceful-degradation smoke: boots the real ttserve binary with a tiny
# exact K-cap, then verifies an over-budget instance is a structured 422
# naming the exceeded budget with approx=off, a 200 carrying a certified
# optimality gap with the approx knob on, and that the exact path's response
# bytes are untouched by the approx plane (see
# cmd/ttserve/approx_smoke_test.go and docs/RESILIENCE.md).
approx-smoke:
	$(GO) test -race -count=1 -run 'TestApproxSmoke' -v ./cmd/ttserve

# Route-plane smoke: boots the real ttserve binary, publishes a policy from
# a real certified solve over HTTP, then walks 10k stateless sessions to
# completion through /v1/route/batch, asserting zero sessions end on a leaf
# that does not treat their object (see cmd/ttserve/route_smoke_test.go and
# docs/SERVING.md).
route-smoke:
	$(GO) test -race -count=1 -run 'TestRouteSmoke' -v ./cmd/ttserve
