// Package instio reads and writes test-and-treatment instances in a small
// JSON wire format, shared by cmd/ttsolve and cmd/ttgen:
//
//	{
//	  "comment": "optional free text",
//	  "weights": [8, 4, 2, 1],
//	  "actions": [
//	    {"name": "swab", "objects": [0, 1], "cost": 2, "treatment": false},
//	    {"name": "rest", "objects": [0],   "cost": 3, "treatment": true}
//	  ]
//	}
//
// Objects are referred to by index (the universe size is the weight count).
package instio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
)

type wireAction struct {
	Name      string `json:"name,omitempty"`
	Objects   []int  `json:"objects"`
	Cost      uint64 `json:"cost"`
	Treatment bool   `json:"treatment,omitempty"`
}

type wireProblem struct {
	Comment string       `json:"comment,omitempty"`
	Weights []uint64     `json:"weights"`
	Actions []wireAction `json:"actions"`
}

// Read parses and validates an instance.
func Read(r io.Reader) (*core.Problem, error) {
	var w wireProblem
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("instio: parsing instance: %w", err)
	}
	return fromWire(w)
}

// wireBatch is the /v1/solve/batch request body: several instances in one
// envelope. The instances need not share anything — grouping related ones is
// the server's job — but batches of same-structure, different-price variants
// are the intended use.
type wireBatch struct {
	Comment   string        `json:"comment,omitempty"`
	Instances []wireProblem `json:"instances"`
}

// ReadBatch parses and validates a batch envelope
// ({"instances": [<instance>, ...]}); errors name the offending instance by
// its position in the envelope.
func ReadBatch(r io.Reader) ([]*core.Problem, error) {
	var b wireBatch
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("instio: parsing batch: %w", err)
	}
	if len(b.Instances) == 0 {
		return nil, fmt.Errorf("instio: batch has no instances")
	}
	ps := make([]*core.Problem, len(b.Instances))
	for i, w := range b.Instances {
		p, err := fromWire(w)
		if err != nil {
			return nil, fmt.Errorf("instio: batch instance %d: %w", i, err)
		}
		ps[i] = p
	}
	return ps, nil
}

// fromWire converts one decoded wire instance into a validated Problem.
func fromWire(w wireProblem) (*core.Problem, error) {
	p := &core.Problem{K: len(w.Weights), Weights: w.Weights}
	for i, a := range w.Actions {
		for _, o := range a.Objects {
			if o < 0 || o >= p.K {
				return nil, fmt.Errorf("instio: action %d (%s) references object %d outside the %d-object universe",
					i, a.Name, o, p.K)
			}
		}
		p.Actions = append(p.Actions, core.Action{
			Name:      a.Name,
			Set:       core.SetOf(a.Objects...),
			Cost:      a.Cost,
			Treatment: a.Treatment,
		})
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ReadFile reads an instance from a file, or from stdin when path is "-".
func ReadFile(path string) (*core.Problem, error) {
	if path == "-" {
		return Read(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("instio: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Write serializes an instance with stable, human-diffable formatting.
func Write(w io.Writer, p *core.Problem, comment string) error {
	wp, err := toWire(p, comment)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(wp)
}

// WriteBatch serializes a batch envelope in ReadBatch's wire form.
func WriteBatch(w io.Writer, ps []*core.Problem, comment string) error {
	b := wireBatch{Comment: comment, Instances: make([]wireProblem, len(ps))}
	for i, p := range ps {
		wp, err := toWire(p, "")
		if err != nil {
			return fmt.Errorf("instio: batch instance %d: %w", i, err)
		}
		b.Instances[i] = wp
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

func toWire(p *core.Problem, comment string) (wireProblem, error) {
	if err := p.Validate(); err != nil {
		return wireProblem{}, err
	}
	wp := wireProblem{Comment: comment, Weights: p.Weights}
	for _, a := range p.Actions {
		wp.Actions = append(wp.Actions, wireAction{
			Name:      a.Name,
			Objects:   a.Set.Objects(),
			Cost:      a.Cost,
			Treatment: a.Treatment,
		})
	}
	return wp, nil
}
