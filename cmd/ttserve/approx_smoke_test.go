package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/serve"
	"repro/internal/workload"
)

// TestApproxSmoke is the `make approx-smoke` drill: the real ttserve binary
// runs with a tiny exact K-cap, and an over-budget instance is submitted
// three ways. With approx=off it must be a structured 422 naming the exceeded
// budget; with an approx knob it must be a 200 carrying a certified gap; and
// the exact path for in-budget instances must be byte-identical to a server
// that has no approx plane in play.
func TestApproxSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives a real server process")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ttserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building ttserve: %v\n%s", err, out)
	}

	big := workload.Oversized(3, 10) // K=10, past the -max-k 6 cap below
	var bigBody bytes.Buffer
	if err := instio.Write(&bigBody, big, ""); err != nil {
		t.Fatal(err)
	}
	small := workload.MedicalDiagnosis(5, 5)
	var smallBody bytes.Buffer
	if err := instio.Write(&smallBody, small, ""); err != nil {
		t.Fatal(err)
	}

	srv, url := startServer(t, bin, "-max-k", "6")
	defer func() {
		srv.Process.Signal(os.Interrupt)
		srv.Wait()
	}()

	// Over-budget with the knob off: a structured 422 that names the budget
	// and hints at the smallest working approx setting.
	resp, err := http.Post(url+"/v1/solve?approx=off", "application/json", bytes.NewReader(bigBody.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("approx=off: status %d, want 422: %s", resp.StatusCode, raw)
	}
	var reject struct {
		Budget     string `json:"budget"`
		Limit      int    `json:"limit"`
		Got        int    `json:"got"`
		ApproxHint string `json:"approx_hint"`
	}
	if err := json.Unmarshal(raw, &reject); err != nil {
		t.Fatalf("422 body is not structured JSON: %v: %s", err, raw)
	}
	if reject.Budget != "k" || reject.Limit != 6 || reject.Got != 10 || reject.ApproxHint != "approx=1" {
		t.Fatalf("422 body %+v, want budget=k limit=6 got=10 hint=approx=1", reject)
	}

	// The same instance with the knob on: 200 with a certified gap. K=10 is
	// within the default branch-and-bound budget, so the answer is also the
	// proven optimum.
	sr := postSolveQuery(t, url, "?approx=1.5", bigBody.Bytes())
	if sr.SolvedBy != "approx" || sr.Cost == nil || sr.GapMilli == nil || sr.LowerBound == nil {
		t.Fatalf("approx route: %+v, want approx-served cost with gap fields", sr)
	}
	if *sr.GapMilli < certify.GapScale {
		t.Fatalf("served gap %d below GapScale", *sr.GapMilli)
	}
	want, err := core.Solve(big)
	if err != nil {
		t.Fatal(err)
	}
	if *sr.Cost < want.Cost || *sr.LowerBound > want.Cost {
		t.Fatalf("served cost %d / bound %d bracket the optimum %d wrongly",
			*sr.Cost, *sr.LowerBound, want.Cost)
	}

	stats := getStats(t, url)
	if n, _ := stats["approx_served"].(float64); n < 1 {
		t.Fatalf("approx_served = %v, want >= 1", stats["approx_served"])
	}
	if n, _ := stats["certify_pass"].(float64); n < 1 {
		t.Fatalf("certify_pass = %v, want >= 1 — the gap answer must have been certified", stats["certify_pass"])
	}

	// Exact path unchanged: an in-budget instance served by this server must
	// produce byte-identical JSON (modulo the timing field) to a second
	// server with no approx traffic at all.
	exactHere := canonicalSolveBytes(t, url, smallBody.Bytes())
	srv2, url2 := startServer(t, bin, "-max-k", "6")
	defer func() {
		srv2.Process.Signal(os.Interrupt)
		srv2.Wait()
	}()
	exactThere := canonicalSolveBytes(t, url2, smallBody.Bytes())
	if !bytes.Equal(exactHere, exactThere) {
		t.Fatalf("exact path diverged:\n%s\nvs\n%s", exactHere, exactThere)
	}
	for _, field := range []string{"approx", "gap_milli", "lower_bound"} {
		if bytes.Contains(exactHere, []byte(`"`+field+`"`)) {
			t.Fatalf("exact response carries approx field %q: %s", field, exactHere)
		}
	}
}

// postSolveQuery posts an instance to /v1/solve with a raw query string and
// decodes the 200 response.
func postSolveQuery(t *testing.T, url, query string, body []byte) *serve.SolveResponse {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s: status %d: %s", query, resp.StatusCode, msg)
	}
	var sr serve.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return &sr
}

// canonicalSolveBytes posts an instance on the exact path and returns the
// response with the only run-varying field (elapsed_ms) normalized, so two
// servers' answers can be compared byte for byte.
func canonicalSolveBytes(t *testing.T, url string, body []byte) []byte {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact solve: status %d: %s", resp.StatusCode, raw)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	delete(m, "elapsed_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
