package serve

import (
	"container/list"

	"repro/internal/core"
)

// cacheEntry is one solved instance. It stores the canonical problem and the
// (small, O(K²)-node) optimal procedure tree rather than the 2^K DP vectors,
// so a full cache stays within a few megabytes even at the admission-control
// size limit. Tree is nil when the solving engine reports costs but not
// argmins (the bvm engine) or the instance is inadequate.
type cacheEntry struct {
	hash     string
	engine   string // engine that originally solved the instance
	cost     uint64 // C(U); core.Inf for inadequate instances
	adequate bool
	canon    *core.Problem // canonicalized instance (action order normalized)
	tree     *core.Node    // optimal procedure over canon's action indices
}

// lruCache is a plain LRU over solved instances, keyed by canonical hash.
// It is not safe for concurrent use; the server guards it with its mutex.
type lruCache struct {
	capacity int
	ll       *list.List // front = most recently used; values are *cacheEntry
	byHash   map[string]*list.Element
}

func newLRU(capacity int) *lruCache {
	return &lruCache{
		capacity: capacity,
		ll:       list.New(),
		byHash:   make(map[string]*list.Element, capacity),
	}
}

// get returns the entry for hash and marks it most recently used.
func (c *lruCache) get(hash string) *cacheEntry {
	el, ok := c.byHash[hash]
	if !ok {
		return nil
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

// add inserts (or refreshes) an entry, evicting the least recently used
// entries beyond capacity.
func (c *lruCache) add(e *cacheEntry) {
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.byHash[e.hash]; ok {
		el.Value = e
		c.ll.MoveToFront(el)
		return
	}
	c.byHash[e.hash] = c.ll.PushFront(e)
	for c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.byHash, oldest.Value.(*cacheEntry).hash)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }
