// Package checkpoint persists level-frontier snapshots of a TT solve so a
// crashed or killed process can resume the O(N·2^K) backward induction
// mid-sweep instead of restarting it. A checkpoint file is self-contained:
// it embeds the canonical instance (instio wire form), the engine that was
// solving it, the canonical instance hash, the level cursor, and the packed
// (C, Choice) frontier — everything a fresh process needs to validate the
// file against the problem it claims to describe and hand the solver a
// core.Frontier.
//
// The format is defensive by construction. Every file starts with a magic
// and a format version; the three sections (JSON meta, costs, choices) are
// each framed as length + payload + CRC32-C, and the file must end exactly
// at the last frame. Load rejects — with an error wrapping ErrCorrupt, never
// a panic — torn writes, truncation, bit rot, version skew, geometry
// mismatches, and files whose embedded problem no longer hashes to the
// recorded hash. Beyond framing, Decode re-derives the whole restored
// frontier from the DP recurrence and rejects any file whose values
// disagree — a CRC-consistent checkpoint written by faulty hardware is
// quarantined on resume instead of seeding a wrong answer.
// Writers publish atomically (temp file + rename with fsync),
// so a crash mid-write leaves either the previous complete checkpoint or a
// stray .tmp that Scan reports for deletion.
package checkpoint

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"math/bits"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/instio"
)

// Version is the on-disk format version; Load rejects any other.
const Version = 1

// Ext is the checkpoint file extension; Scan considers only these files.
const Ext = ".ckpt"

// tmpExt marks in-progress writes awaiting rename.
const tmpExt = ".tmp"

var magic = [4]byte{'T', 'T', 'C', 'K'}

// ErrCorrupt tags every validation failure of a checkpoint file: CRC or
// framing damage, version or magic mismatch, impossible geometry, or an
// instance hash that does not match the embedded problem. Callers discard
// such files and restart the solve from scratch.
var ErrCorrupt = errors.New("checkpoint: corrupt or incompatible file")

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// meta is the JSON header frame.
type meta struct {
	Engine    string          `json:"engine"`
	Hash      string          `json:"hash"`
	K         int             `json:"k"`
	Actions   int             `json:"actions"`
	Level     int             `json:"level"`
	Width     int             `json:"width,omitempty"` // bvm word width; 0 otherwise
	HasChoice bool            `json:"has_choice"`
	Problem   json.RawMessage `json:"problem"` // instio wire form
}

// Snapshot is a loaded, validated checkpoint.
type Snapshot struct {
	Path     string // file it was loaded from ("" for in-memory decodes)
	Engine   string // engine that was running the interrupted solve
	Hash     string // canonical instance hash (matches the embedded problem)
	Level    int    // last completed level barrier
	Width    int    // bvm word width, 0 for word-level engines
	Problem  *core.Problem
	Frontier *core.Frontier // full 2^K tables; Choice nil for cost-only engines
}

// ProblemHash returns the canonical instance hash: SHA-256 over the instio
// wire form. The caller passes an already order-normalized problem (see
// serve.Canonicalize); hashing the wire bytes ties the key to the exact
// format clients speak and checkpoint files embed.
func ProblemHash(p *core.Problem) (string, error) {
	var buf bytes.Buffer
	if err := instio.Write(&buf, p, ""); err != nil {
		return "", err
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

// frontierCount returns how many subsets the packed frontier holds: all
// subsets of popcount <= level.
func frontierCount(k, level int) int {
	n := 0
	for l := 0; l <= level; l++ {
		c := 1
		for i := 0; i < l; i++ {
			c = c * (k - i) / (i + 1)
		}
		n += c
	}
	return n
}

// forEachFrontierSubset visits every subset of popcount <= level in (level,
// Gosper) order — the packing order of the cost and choice frames.
func forEachFrontierSubset(k, level int, visit func(s int)) {
	visit(0)
	limit := uint32(1) << uint(k)
	for l := 1; l <= level; l++ {
		v := uint32(1)<<uint(l) - 1
		for v < limit {
			visit(int(v))
			c := v & -v
			r := v + c
			v = (r^v)>>2/c | r
		}
	}
}

func appendFrame(dst, payload []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable))
}

// nextFrame slices one frame off data, verifying length and CRC.
func nextFrame(data []byte) (payload, rest []byte, err error) {
	if len(data) < 8 {
		return nil, nil, fmt.Errorf("%w: truncated frame header", ErrCorrupt)
	}
	n := binary.LittleEndian.Uint32(data)
	if uint64(len(data)) < 8+uint64(n) {
		return nil, nil, fmt.Errorf("%w: frame of %d bytes truncated", ErrCorrupt, n)
	}
	payload = data[4 : 4+n]
	sum := binary.LittleEndian.Uint32(data[4+n:])
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, nil, fmt.Errorf("%w: frame CRC mismatch", ErrCorrupt)
	}
	return payload, data[8+n:], nil
}

// Encode serializes one level frontier. sol.Choice may be nil (cost-only
// engines); width records the bvm word width (0 otherwise). The problem is
// embedded in instio wire form so the file is self-contained.
func Encode(p *core.Problem, hash, engine string, width, level int, sol *core.Solution) ([]byte, error) {
	if level < 0 || level > p.K {
		return nil, fmt.Errorf("checkpoint: level %d outside [0,%d]", level, p.K)
	}
	size := 1 << uint(p.K)
	if len(sol.C) != size {
		return nil, fmt.Errorf("checkpoint: %d costs for a %d-object universe", len(sol.C), p.K)
	}
	if sol.Choice != nil && len(sol.Choice) != size {
		return nil, fmt.Errorf("checkpoint: %d choices for a %d-object universe", len(sol.Choice), p.K)
	}
	var pbuf bytes.Buffer
	if err := instio.Write(&pbuf, p, ""); err != nil {
		return nil, err
	}
	m := meta{
		Engine:    engine,
		Hash:      hash,
		K:         p.K,
		Actions:   len(p.Actions),
		Level:     level,
		Width:     width,
		HasChoice: sol.Choice != nil,
		Problem:   json.RawMessage(pbuf.Bytes()),
	}
	metaJSON, err := json.Marshal(&m)
	if err != nil {
		return nil, err
	}
	cnt := frontierCount(p.K, level)
	costs := make([]byte, 0, 8*cnt)
	forEachFrontierSubset(p.K, level, func(s int) {
		costs = binary.LittleEndian.AppendUint64(costs, sol.C[s])
	})
	out := append([]byte(nil), magic[:]...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = appendFrame(out, metaJSON)
	out = appendFrame(out, costs)
	if sol.Choice != nil {
		choices := make([]byte, 0, 4*cnt)
		forEachFrontierSubset(p.K, level, func(s int) {
			choices = binary.LittleEndian.AppendUint32(choices, uint32(sol.Choice[s]))
		})
		out = appendFrame(out, choices)
	}
	return out, nil
}

// Decode parses and validates a checkpoint image. Every defect — framing,
// CRC, version, geometry, or a recorded hash that does not match the
// embedded problem — yields an error wrapping ErrCorrupt.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < 8 || !bytes.Equal(data[:4], magic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrCorrupt, v, Version)
	}
	metaJSON, rest, err := nextFrame(data[8:])
	if err != nil {
		return nil, err
	}
	var m meta
	if err := json.Unmarshal(metaJSON, &m); err != nil {
		return nil, fmt.Errorf("%w: meta: %v", ErrCorrupt, err)
	}
	if m.K < 1 || m.K > core.MaxK || m.Level < 0 || m.Level > m.K {
		return nil, fmt.Errorf("%w: geometry k=%d level=%d", ErrCorrupt, m.K, m.Level)
	}
	p, err := instio.Read(bytes.NewReader(m.Problem))
	if err != nil {
		return nil, fmt.Errorf("%w: embedded problem: %v", ErrCorrupt, err)
	}
	if p.K != m.K || len(p.Actions) != m.Actions {
		return nil, fmt.Errorf("%w: embedded problem shape (%d objects, %d actions) contradicts meta (%d, %d)",
			ErrCorrupt, p.K, len(p.Actions), m.K, m.Actions)
	}
	hash, err := ProblemHash(p)
	if err != nil {
		return nil, err
	}
	if hash != m.Hash {
		return nil, fmt.Errorf("%w: instance hash mismatch (recorded %.12s, embedded problem hashes to %.12s)",
			ErrCorrupt, m.Hash, hash)
	}
	cnt := frontierCount(m.K, m.Level)
	costs, rest, err := nextFrame(rest)
	if err != nil {
		return nil, err
	}
	if len(costs) != 8*cnt {
		return nil, fmt.Errorf("%w: cost frame holds %d bytes, want %d", ErrCorrupt, len(costs), 8*cnt)
	}
	size := 1 << uint(m.K)
	f := &core.Frontier{Level: m.Level, C: make([]uint64, size)}
	i := 0
	forEachFrontierSubset(m.K, m.Level, func(s int) {
		f.C[s] = binary.LittleEndian.Uint64(costs[8*i:])
		i++
	})
	if m.HasChoice {
		choices, r2, err := nextFrame(rest)
		if err != nil {
			return nil, err
		}
		rest = r2
		if len(choices) != 4*cnt {
			return nil, fmt.Errorf("%w: choice frame holds %d bytes, want %d", ErrCorrupt, len(choices), 4*cnt)
		}
		f.Choice = make([]int32, size)
		for s := range f.Choice {
			f.Choice[s] = -1
		}
		i = 0
		forEachFrontierSubset(m.K, m.Level, func(s int) {
			f.Choice[s] = int32(binary.LittleEndian.Uint32(choices[4*i:]))
			i++
		})
		// The frontier's choices must reference real actions.
		bad := false
		forEachFrontierSubset(m.K, m.Level, func(s int) {
			if c := f.Choice[s]; c < -1 || int(c) >= len(p.Actions) {
				bad = true
			}
		})
		if bad {
			return nil, fmt.Errorf("%w: frontier choice out of action range", ErrCorrupt)
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	if f.C[0] != 0 {
		return nil, fmt.Errorf("%w: frontier C(∅) = %d", ErrCorrupt, f.C[0])
	}
	if err := validateFrontier(p, f); err != nil {
		return nil, err
	}
	return &Snapshot{
		Engine:   m.Engine,
		Hash:     m.Hash,
		Level:    m.Level,
		Width:    m.Width,
		Problem:  p,
		Frontier: f,
	}, nil
}

// validateFrontier is the certify-on-resume check: it re-derives every
// frontier cell from the DP recurrence — C(∅)=0, M[S,i] = t_i·p(S) +
// C(S∩T_i) + C(S−T_i) with treatments dropping the intersection term,
// C(S) = min_i M[S,i] with the lowest index winning ties — and compares the
// stored values against the independent recomputation. The frame CRCs catch
// bit rot on disk, but a checkpoint written by a machine that was already
// computing garbage is internally consistent; without this check a resumed
// solve would inherit the wrong frontier and certify-before-cache would only
// catch the damage after the remaining levels were wasted on it. Every cell's
// recurrence reads only strict subsets, which have strictly smaller popcount
// and therefore also live inside the frontier, so the whole restored prefix
// is checkable from C(∅)=0 alone. Cost is O(N·2^K) — the same order as the
// resumed solve itself.
func validateFrontier(p *core.Problem, f *core.Frontier) error {
	size := 1 << uint(p.K)
	psum := make([]uint64, size)
	for s := 1; s < size; s++ {
		low := s & -s
		psum[s] = core.SatAdd(psum[s&(s-1)], p.Weights[bits.TrailingZeros(uint(low))])
	}
	want := make([]uint64, size)
	for s := 1; s < size; s++ {
		if bits.OnesCount(uint(s)) > f.Level {
			continue
		}
		best, bestIdx := core.Inf, int32(-1)
		for i, a := range p.Actions {
			inter := core.Set(s) & a.Set
			diff := core.Set(s) &^ a.Set
			cost := core.SatMul(a.Cost, psum[s])
			switch {
			case a.Treatment && inter == 0, !a.Treatment && (inter == 0 || diff == 0):
				cost = core.Inf // action does not make progress on S
			case a.Treatment:
				cost = core.SatAdd(cost, want[diff])
			default:
				cost = core.SatAdd(cost, core.SatAdd(want[inter], want[diff]))
			}
			if cost < best {
				best, bestIdx = cost, int32(i)
			}
		}
		want[s] = best
		if f.C[s] != best {
			return fmt.Errorf("%w: frontier C(%#x) = %d, recurrence gives %d", ErrCorrupt, s, f.C[s], best)
		}
		if f.Choice != nil && f.Choice[s] != bestIdx {
			return fmt.Errorf("%w: frontier choice for %#x is %d, recurrence gives %d", ErrCorrupt, s, f.Choice[s], bestIdx)
		}
	}
	return nil
}

// Writer persists one solve's frontier, overwriting the same file at each
// level barrier via an atomic temp-file + rename. It implements
// core.Checkpointer. A Writer is not safe for concurrent use; the engines
// fire checkpoints from the barrier, never concurrently.
type Writer struct {
	fs     FS
	path   string
	engine string
	hash   string
	width  int
	p      *core.Problem
	levels int // checkpoints successfully written
}

// NewWriter prepares a checkpoint writer for one (instance, engine) solve.
// fsys nil selects the real filesystem; width is the bvm word width (0 for
// word-level engines). The directory is created if missing.
func NewWriter(fsys FS, dir string, p *core.Problem, hash, engine string, width int) (*Writer, error) {
	if fsys == nil {
		fsys = OS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, err
	}
	return &Writer{
		fs:     fsys,
		path:   filepath.Join(dir, hash+Ext),
		engine: engine,
		hash:   hash,
		width:  width,
		p:      p,
	}, nil
}

// Path returns the checkpoint file this writer publishes to.
func (w *Writer) Path() string { return w.path }

// Levels returns how many level barriers have been durably recorded.
func (w *Writer) Levels() int { return w.levels }

// CheckpointLevel encodes the frontier through level and atomically replaces
// the checkpoint file.
func (w *Writer) CheckpointLevel(level int, sol *core.Solution) error {
	data, err := Encode(w.p, w.hash, w.engine, w.width, level, sol)
	if err != nil {
		return err
	}
	tmp := w.path + tmpExt
	if err := w.fs.WriteFile(tmp, data); err != nil {
		return err
	}
	if err := w.fs.Rename(tmp, w.path); err != nil {
		return err
	}
	w.levels++
	return nil
}

// Discard removes the checkpoint file (and any stray temp), called when the
// solve completes and the frontier is no longer worth keeping.
func (w *Writer) Discard() error {
	_ = w.fs.Remove(w.path + tmpExt)
	err := w.fs.Remove(w.path)
	if err != nil && errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

// Load reads and validates one checkpoint file.
func Load(fsys FS, path string) (*Snapshot, error) {
	if fsys == nil {
		fsys = OS{}
	}
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	snap, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	snap.Path = path
	return snap, nil
}

// Scan walks dir for checkpoint files. Valid snapshots are returned;
// unreadable or corrupt .ckpt files and stray .tmp residue land in discard
// (for the caller to delete — Scan itself never removes anything). A missing
// directory is an empty scan, not an error.
func Scan(fsys FS, dir string) (snaps []*Snapshot, discard []string, err error) {
	return scan(nil, fsys, dir)
}

// ScanCtx is Scan bounded by a context: the context is checked before every
// file load (each load re-derives its frontier, so a directory of large
// checkpoints is real work), and on expiry the snapshots validated so far
// are returned along with the context's error. Callers that treat the bound
// as a budget rather than a failure — serve's startup recovery — keep the
// partial results and move on; unscanned files stay on disk for next time.
func ScanCtx(ctx context.Context, fsys FS, dir string) (snaps []*Snapshot, discard []string, err error) {
	return scan(ctx, fsys, dir)
}

func scan(ctx context.Context, fsys FS, dir string) (snaps []*Snapshot, discard []string, err error) {
	if fsys == nil {
		fsys = OS{}
	}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil, nil
		}
		return nil, nil, err
	}
	for _, name := range names {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return snaps, discard, err
			}
		}
		path := filepath.Join(dir, name)
		switch {
		case strings.HasSuffix(name, tmpExt):
			discard = append(discard, path)
		case strings.HasSuffix(name, Ext):
			snap, err := Load(fsys, path)
			if err != nil {
				discard = append(discard, path)
				continue
			}
			snaps = append(snaps, snap)
		}
	}
	return snaps, discard, nil
}
