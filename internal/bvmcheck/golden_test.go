package bvmcheck_test

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bvm"
	"repro/internal/bvmcheck"
)

var update = flag.Bool("update", false, "rewrite golden files")

// seededDefects are four deliberately broken programs, one per major
// diagnostic family. Each golden file holds the disassembly listing followed
// by the full lint report; the listing's line numbers are the indices the
// diagnostics refer to.
func seededDefects() map[string]*bvm.Program {
	mustParse := func(name, src string) *bvm.Program {
		p, err := bvm.ParseProgram(name, src)
		if err != nil {
			panic(err)
		}
		return p
	}
	progs := map[string]*bvm.Program{
		// A register index beyond the machine's L = 256.
		"bad-register": mustParse("bad-register", `
			R[1], B = 1, B (A, A, B);
			R[300], B = D, B (A, R[1], B);
			A, B = D, B (A, R[300], B);
		`),
		// A store overwritten before any read.
		"dead-store": mustParse("dead-store", `
			R[1], B = 1, B (A, A, B);
			R[1], B = 0, B (A, A, B);
			R[2], B = D, B (A, R[1], B);
		`),
		// An ASCEND exchange sequence that skips dimension 1: low-dim
		// exchange on 0 (clear set {0,2}), lateral exchange on 2 (IF {0}),
		// then back to the low-dim exchange on 1 (clear set {0,1}).
		"skipped-dimension": mustParse("skipped-dimension", `
			R[1], B = 0, B (A, A, B);
			R[2], B = 1, B (A, A, B);
			R[1], B = D, B (A, R[2], B) IF {0,2};
			R[1], B = D, B (A, R[2].L, B) IF {0};
			R[1], B = D, B (A, R[2], B) IF {0,1};
		`),
	}
	// An exchange over a route byte no machine implements; inexpressible in
	// the assembly syntax, so built directly.
	progs["bad-route"] = &bvm.Program{Name: "bad-route", Instrs: []bvm.Instr{
		{Dst: bvm.R(1), FTT: bvm.TTOne, GTT: bvm.TTB, F: bvm.A, D: bvm.Loc(bvm.A)},
		{Dst: bvm.R(2), FTT: bvm.TTD, GTT: bvm.TTB, F: bvm.A, D: bvm.Operand{Reg: bvm.R(1), Via: bvm.Route(9)}},
	}}
	return progs
}

func TestGoldenSeededDefects(t *testing.T) {
	cfg := cfg2(t)
	wantCat := map[string]string{
		"bad-register":      bvmcheck.CatBadRegister,
		"bad-route":         bvmcheck.CatBadRoute,
		"dead-store":        bvmcheck.CatDeadStore,
		"skipped-dimension": bvmcheck.CatSweep,
	}
	for name, p := range seededDefects() {
		t.Run(name, func(t *testing.T) {
			rep := bvmcheck.Lint(p, cfg)
			found := false
			for _, d := range rep.Diags {
				if d.Category == wantCat[name] {
					found = true
				}
			}
			if !found {
				t.Errorf("lint report lacks the seeded %s diagnostic:\n%s", wantCat[name], rep)
			}
			got := p.Disassemble() + "\n" + rep.String()
			path := filepath.Join("testdata", name+".golden")
			if *update {
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if got != string(want) {
				t.Errorf("report drifted from %s (run with -update to regenerate)\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
			}
		})
	}
}
