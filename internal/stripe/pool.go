// Package stripe provides a reusable fixed-size worker pool for
// deterministic data-parallel sweeps: the raw-speed substrate behind the
// striped BVM word-plane executor (internal/bvm) and the level-synchronous
// Gosper sweeps of the host DP solvers (internal/core).
//
// The pool runs parallel-for jobs: Run(shards, fn) executes fn(0..shards-1)
// across the workers and returns only when every shard has finished — a hard
// barrier, which is exactly the merge discipline the solvers already use at
// their ABFT level barriers. Shards are pure functions of their index, so
// results are bit-identical for any worker count, including zero.
//
// Two properties make one process-wide pool safe to share across concurrent
// solves (the ttserve case):
//
//   - Overflow runs inline: when every worker is busy, the submitting
//     goroutine executes the shard itself instead of queueing behind other
//     jobs. Run therefore always makes progress, even with nested or deeply
//     concurrent use, and the pool can never deadlock on its own capacity.
//   - Shard panics are recovered (each unit of work is shielded, per the
//     repo's panicsafe discipline), carried to the barrier, and re-raised in
//     the submitting goroutine once all shards have finished — the same
//     blast radius a panic has in single-threaded execution, without ever
//     wedging the barrier or killing an unrelated solve's worker.
package stripe

import (
	"runtime"
	"sync"
)

// task is one shard of a Run call.
type task struct {
	fn    func(shard int)
	shard int
	wg    *sync.WaitGroup
	grab  func(v any) // records the job's first shard panic
}

// runTask executes one shard, shielding the worker (and the pool's barrier
// accounting) from a shard panic: the panic value is recorded for the
// submitting goroutine to re-raise after the barrier.
func runTask(t task) {
	defer t.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			t.grab(r)
		}
	}()
	t.fn(t.shard)
}

// Pool is a reusable set of workers executing parallel-for jobs. The zero
// value is not usable; create pools with New. A Pool is safe for concurrent
// use by multiple goroutines and is never shut down — it is sized to the
// host, not to a request, and idle workers cost only a blocked channel read.
type Pool struct {
	tasks   chan task
	workers int
}

// New builds a pool of n workers (n <= 0 selects GOMAXPROCS). The workers
// are started immediately and live for the life of the process.
func New(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: make(chan task), workers: n}
	for i := 0; i < n; i++ {
		go func() {
			for t := range p.tasks {
				runTask(t)
			}
		}()
	}
	return p
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Run executes fn(0), .., fn(shards-1) across the pool and returns when all
// shards have completed (the barrier). Shards whose submission finds every
// worker busy run inline in the calling goroutine, so Run always completes
// even under full contention. If any shard panics, the first panic value (in
// completion order) is re-raised in the caller after the barrier; the
// remaining shards still run to completion first, so no partial write is
// ever left racing a recovering caller.
func (p *Pool) Run(shards int, fn func(shard int)) {
	if shards <= 0 {
		return
	}
	if shards == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	var once sync.Once
	var panicked any
	grab := func(v any) { once.Do(func() { panicked = v }) }
	wg.Add(shards)
	for i := 0; i < shards; i++ {
		t := task{fn: fn, shard: i, wg: &wg, grab: grab}
		select {
		case p.tasks <- t:
		default:
			runTask(t)
		}
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}

// sharedPool is the process-wide default pool, sized to GOMAXPROCS at first
// use. Every solver that does not get an explicit pool stripes over this one,
// so concurrent solves share one bounded worker set instead of spawning
// goroutines per request.
var (
	sharedOnce sync.Once
	sharedPool *Pool
)

// Shared returns the process-wide pool, creating it on first use.
func Shared() *Pool {
	sharedOnce.Do(func() { sharedPool = New(0) })
	return sharedPool
}

// Range splits n units into `shards` near-equal contiguous spans and returns
// the half-open span of shard i. Deterministic in (n, shards, i) only, so a
// striped sweep partitions identically on every run and every host.
func Range(n, shards, i int) (lo, hi int) {
	if shards <= 0 {
		return 0, n
	}
	q, r := n/shards, n%shards
	lo = i*q + min(i, r)
	hi = lo + q
	if i < r {
		hi++
	}
	return lo, hi
}
