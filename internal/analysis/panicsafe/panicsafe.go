// Package panicsafe proves the worker-pool recovery discipline from the PR 3
// SolveParallel incident: a panic in a pooled goroutine that nobody recovers
// either kills the whole process or — when the pool's WaitGroup accounting
// dies with the goroutine — deadlocks every waiter forever. Any goroutine
// launched inside a loop (the worker-pool shape) must install a recover
// handler: a deferred function literal that calls recover(), or a deferred /
// directly-called package-local function that does.
package panicsafe

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the panicsafe pass.
var Analyzer = &analysis.Analyzer{
	Name: "panicsafe",
	Doc: "goroutines launched inside loops (worker pools) must install a " +
		"recover that reports into the pool's error path; an unrecovered worker " +
		"panic crashes the process or deadlocks the pool (PR 3 SolveParallel bug)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	// installs: functions whose body installs a deferred recover — running one
	// of these as the whole worker body is safe. direct: functions that call
	// recover() in their own frame — deferring one of these is safe.
	installs, direct := recoveringFuncs(pass)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body, installs, direct)
		}
	}
	return nil
}

// recoveringFuncs classifies package-level declarations and locally-bound
// closures (runUnit := func(...) { defer recover... }) two ways: installs
// holds bodies that defer a recover (safe as a goroutine body), direct holds
// bodies that call recover() in their own frame (safe as a deferred helper).
func recoveringFuncs(pass *analysis.Pass) (installs, direct map[types.Object]bool) {
	installs = map[types.Object]bool{}
	direct = map[types.Object]bool{}
	record := func(obj types.Object, body *ast.BlockStmt) {
		if obj == nil {
			return
		}
		if installsRecover(body, nil) {
			installs[obj] = true
		}
		if recoversDirectly(body) {
			direct[obj] = true
		}
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			record(pass.ObjectOf(fd.Name), fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, rhs := range as.Rhs {
					lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
					if !ok {
						continue
					}
					if id, ok := as.Lhs[i].(*ast.Ident); ok {
						record(pass.ObjectOf(id), lit.Body)
					}
				}
				return true
			})
		}
	}
	return installs, direct
}

// recoversDirectly reports whether body calls the builtin recover() in its
// own frame — nested function literals are a different frame, where recover
// no longer stops this function's panic.
func recoversDirectly(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
				found = true
			}
		}
		return !found
	})
	return found
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, installs, direct map[types.Object]bool) {
	analysis.WithStack(body, func(n ast.Node, stack []ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if !insideLoop(stack) {
			return true // a lone goroutine is not a pool; out of scope
		}
		switch fun := ast.Unparen(g.Call.Fun).(type) {
		case *ast.FuncLit:
			if installsRecover(fun.Body, func(call *ast.CallExpr) bool {
				return direct[analysis.CalleeObj(pass.TypesInfo, call)]
			}) {
				return true
			}
			// A worker whose entire loop body is a call to a recovering
			// function is also safe: each unit of work is shielded, and the
			// code between units cannot panic on user input.
			if workerDelegatesToRecovering(pass, fun.Body, installs) {
				return true
			}
			pass.Reportf(g.Pos(), "pooled goroutine has no deferred recover: a worker panic kills the process or deadlocks the pool's WaitGroup; recover and report into the pool's error path")
		default:
			obj := analysis.CalleeObj(pass.TypesInfo, g.Call)
			if obj == nil || installs[obj] {
				return true // unresolvable (function value), or known safe
			}
			// Only flag functions defined in this package: foreign callees'
			// bodies are invisible and vet noise is worse than silence.
			if obj.Pkg() == pass.Pkg {
				pass.Reportf(g.Pos(), "pooled goroutine %s has no deferred recover: a worker panic kills the process or deadlocks the pool's WaitGroup", obj.Name())
			}
		}
		return true
	})
}

// insideLoop reports whether the innermost enclosing function scope of the
// node at the top of stack contains it within a for/range statement.
func insideLoop(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		case *ast.FuncLit, *ast.FuncDecl:
			return false // left the goroutine's launching function
		}
	}
	return false
}

// installsRecover reports whether body has a top-level defer that reaches
// recover(): `defer func() { ... recover() ... }()` or `defer helper()` where
// helper is known (via isRecoveringCall) to recover.
func installsRecover(body *ast.BlockStmt, isRecoveringCall func(*ast.CallExpr) bool) bool {
	for _, stmt := range body.List {
		d, ok := stmt.(*ast.DeferStmt)
		if !ok {
			continue
		}
		if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
			if callsRecover(lit.Body) {
				return true
			}
			continue
		}
		if isRecoveringCall != nil && isRecoveringCall(d.Call) {
			return true
		}
	}
	return false
}

// callsRecover reports whether the builtin recover() is called anywhere in
// n (nested literals included — they are still within the deferred frame).
func callsRecover(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "recover" {
			found = true
		}
		return !found
	})
	return found
}

// workerDelegatesToRecovering matches the pool shape
//
//	for unit := range jobs { runUnit(unit) }
//
// where runUnit itself defers a recover: every statement that does work is a
// call to a recovering package-local function.
func workerDelegatesToRecovering(pass *analysis.Pass, body *ast.BlockStmt, recovers map[types.Object]bool) bool {
	delegated := false
	for _, stmt := range body.List {
		switch st := stmt.(type) {
		case *ast.DeferStmt:
			continue // wg.Done() etc.
		case *ast.RangeStmt:
			for _, inner := range st.Body.List {
				es, ok := inner.(*ast.ExprStmt)
				if !ok {
					return false
				}
				call, ok := es.X.(*ast.CallExpr)
				if !ok || !recovers[analysis.CalleeObj(pass.TypesInfo, call)] {
					return false
				}
				delegated = true
			}
		default:
			return false
		}
	}
	return delegated
}
