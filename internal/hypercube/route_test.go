package hypercube

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRankFlaggedSmall(t *testing.T) {
	flags := []bool{false, true, true, false, true, false, false, true}
	ranks, total := RankFlagged(3, flags)
	if total != 4 {
		t.Fatalf("total = %d, want 4", total)
	}
	want := map[int]int{1: 0, 2: 1, 4: 2, 7: 3}
	for pe, r := range want {
		if ranks[pe] != r {
			t.Errorf("rank[%d] = %d, want %d", pe, ranks[pe], r)
		}
	}
}

func TestRankFlaggedProperty(t *testing.T) {
	f := func(mask uint16) bool {
		const dim = 4
		flags := make([]bool, 1<<dim)
		for i := range flags {
			flags[i] = mask>>uint(i)&1 == 1
		}
		ranks, total := RankFlagged(dim, flags)
		count := 0
		for i := range flags {
			if flags[i] {
				if ranks[i] != count {
					return false
				}
				count++
			}
		}
		return total == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcentrateOrdersByAddress(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		dim := rng.Intn(4) + 2
		n := 1 << dim
		flags := make([]bool, n)
		records := make([]int, n)
		var want []int
		for i := range flags {
			flags[i] = rng.Intn(2) == 1
			records[i] = 1000 + i
			if flags[i] {
				want = append(want, 1000+i)
			}
		}
		out, occ := Concentrate(dim, flags, records)
		for i, w := range want {
			if !occ[i] || out[i] != w {
				t.Fatalf("trial %d: slot %d = %d (occ %v), want %d", trial, i, out[i], occ[i], w)
			}
		}
		for i := len(want); i < n; i++ {
			if occ[i] {
				t.Fatalf("trial %d: slot %d unexpectedly occupied", trial, i)
			}
		}
	}
}

func TestDistributeInvertsConcentrate(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		dim := rng.Intn(4) + 2
		n := 1 << dim
		flags := make([]bool, n)
		records := make([]int, n)
		for i := range flags {
			flags[i] = rng.Intn(3) != 0
			if flags[i] {
				records[i] = 7000 + i
			}
		}
		prefix, _ := Concentrate(dim, flags, records)
		back := Distribute(dim, flags, prefix)
		for i := range flags {
			if flags[i] && back[i] != records[i] {
				t.Fatalf("trial %d: PE %d got %d, want %d", trial, i, back[i], records[i])
			}
			if !flags[i] && back[i] != 0 {
				t.Fatalf("trial %d: unflagged PE %d got %d", trial, i, back[i])
			}
		}
	}
}

func TestConcentrateEdgeCases(t *testing.T) {
	// All flagged: identity.
	flags := []bool{true, true, true, true}
	recs := []string{"a", "b", "c", "d"}
	out, occ := Concentrate(2, flags, recs)
	for i, r := range recs {
		if !occ[i] || out[i] != r {
			t.Fatalf("all-flagged slot %d = %q", i, out[i])
		}
	}
	// None flagged: empty.
	_, occ = Concentrate(2, make([]bool, 4), recs)
	for i, o := range occ {
		if o {
			t.Fatalf("slot %d occupied with no flags", i)
		}
	}
}

func TestRouteInputValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short flags did not panic")
		}
	}()
	RankFlagged(3, make([]bool, 4))
}

func BenchmarkConcentrate(b *testing.B) {
	const dim = 12
	rng := rand.New(rand.NewSource(3))
	flags := make([]bool, 1<<dim)
	recs := make([]int, 1<<dim)
	for i := range flags {
		flags[i] = rng.Intn(2) == 1
		recs[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Concentrate(dim, flags, recs)
	}
}

func TestGeneralizeFillsIntervals(t *testing.T) {
	// Flags at 2 and 5 on 8 PEs; prefix holds ["a","b"].
	flags := []bool{false, false, true, false, false, true, false, false}
	prefix := make([]string, 8)
	prefix[0], prefix[1] = "a", "b"
	out := Generalize(3, flags, prefix)
	want := []string{"a", "a", "a", "a", "a", "b", "b", "b"}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("PE %d = %q, want %q (full: %v)", i, out[i], want[i], out)
		}
	}
}

func TestGeneralizeRoundTripWithConcentrate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		dim := rng.Intn(4) + 2
		n := 1 << dim
		flags := make([]bool, n)
		records := make([]int, n)
		any := false
		for i := range flags {
			flags[i] = rng.Intn(3) == 0
			if flags[i] {
				records[i] = 100 + i
				any = true
			}
		}
		if !any {
			flags[0] = true
			records[0] = 100
		}
		prefix, _ := Concentrate(dim, flags, records)
		out := Generalize(dim, flags, prefix)
		// Every flagged PE must get its own record back; PEs after it (until
		// the next flagged PE) the same record.
		current := 0
		for j := 0; j < n; j++ {
			if flags[j] {
				current = records[j]
			}
			if current != 0 && out[j] != current {
				t.Fatalf("trial %d PE %d: got %d, want %d", trial, j, out[j], current)
			}
		}
	}
}

func TestGeneralizeEmpty(t *testing.T) {
	out := Generalize(2, make([]bool, 4), make([]int, 4))
	for _, v := range out {
		if v != 0 {
			t.Fatal("empty generalize produced data")
		}
	}
}
