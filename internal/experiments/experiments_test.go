package experiments

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:         "T0",
		Title:      "demo",
		PaperClaim: "claimed",
		Header:     []string{"a", "long-header"},
		Notes:      []string{"a note"},
	}
	tab.AddRow(1, "x")
	tab.AddRow(22, "yy")
	out := tab.Render()
	for _, want := range []string{"== T0 — demo ==", "paper: claimed", "long-header", "22", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFig1TreeOptimalAndRendered(t *testing.T) {
	out, err := Fig1Tree()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 1", "treat", "expected cost"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig1 missing %q", want)
		}
	}
	// The rendered DP cost and independent tree evaluation must agree (both
	// printed on the last line).
	if !strings.Contains(out, "C(U) = ") {
		t.Error("fig1 missing cost line")
	}
}

func TestFig2Layout(t *testing.T) {
	out, err := Fig2Layout(2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Reg. A") || !strings.Contains(out, "Reg. R[0]") {
		t.Errorf("fig2 missing register rows:\n%s", out)
	}
}

// TestFig3GoldenPattern pins the first cycles of the Figure 3 grid: cycle c
// row shows bit j of c at column j.
func TestFig3GoldenPattern(t *testing.T) {
	out, err := Fig3CycleID()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	wantRows := map[int]string{
		0:  "0 0 0 0",
		1:  "1 0 0 0",
		5:  "1 0 1 0",
		10: "0 1 0 1",
		15: "1 1 1 1",
	}
	for c, want := range wantRows {
		found := false
		for _, l := range lines {
			trimmed := strings.TrimSpace(l)
			if strings.HasPrefix(trimmed, strconv.Itoa(c)+" ") && strings.HasSuffix(trimmed, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fig3: cycle %d row %q not found:\n%s", c, want, out)
		}
	}
}

func TestFig45ProcessorID(t *testing.T) {
	out, err := Fig45ProcessorID()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cycle-ID") || !strings.Contains(out, "processor-ID planes") {
		t.Errorf("fig4-5 missing stages:\n%s", out)
	}
	// Plane 0 of the processor-ID on 8 PEs is the alternating LSB pattern.
	if !strings.Contains(out, "0 1 0 1 0 1 0 1") {
		t.Errorf("fig4-5 missing LSB plane:\n%s", out)
	}
}

// TestFig6GoldenSchedule pins the paper's printed schedule lines.
func TestFig6GoldenSchedule(t *testing.T) {
	out, err := Fig6Broadcast()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"1. 0000 -> 0001",
		"2. 0000 -> 0010",
		"0001 -> 0011",
		"4. 0000 -> 1000",
		"0111 -> 1111",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fig6 missing %q:\n%s", want, out)
		}
	}
}

// TestFig7GoldenTrace pins the min-reduction trace.
func TestFig7GoldenTrace(t *testing.T) {
	out, err := Fig7AscendMin()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"[5 3 9 7 2 8 6 4]",
		"[3 3 7 7 2 2 4 4]",
		"[3 3 3 3 2 2 2 2]",
		"[2 2 2 2 2 2 2 2]",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 missing %q:\n%s", want, out)
		}
	}
}

func TestFig89Invariant(t *testing.T) {
	out, err := Fig89RBroadcast()
	if err != nil {
		t.Fatal(err)
	}
	// Figure 8 mapping S={0,1} -> {} and the Figure 9 final-column examples.
	for _, want := range []string{"{0,1}     -> {}", "{2}"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig8-9 missing %q:\n%s", want, out)
		}
	}
}

func TestStepsScalingExactFormula(t *testing.T) {
	tab, err := StepsScaling()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[5] != "1.000" {
			t.Errorf("E8 row %v: ratio %s != 1.000", row, row[5])
		}
	}
}

func TestSpeedupBounded(t *testing.T) {
	tab, err := Speedup()
	if err != nil {
		t.Fatal(err)
	}
	// The S/(p/log p) column must stay within a fixed constant band, which is
	// what O(p/log p) means operationally.
	var lo, hi float64 = 1e18, 0
	for _, row := range tab.Rows {
		var v float64
		if _, err := fmtSscan(row[7], &v); err != nil {
			t.Fatalf("bad ratio cell %q", row[7])
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi/lo > 12 {
		t.Errorf("E9 constant band too wide: [%f, %f]", lo, hi)
	}
}

func TestSlowdownBand(t *testing.T) {
	tab, err := Slowdown()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		var slow float64
		if _, err := fmtSscan(row[4], &slow); err != nil {
			t.Fatal(err)
		}
		if slow < 2 || slow > 6 {
			t.Errorf("E10: pipelined slowdown %f outside [2,6] in row %v", slow, row)
		}
	}
}

func TestLinksExact(t *testing.T) {
	tab, err := Links()
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range tab.Rows {
		if i == 0 {
			continue // r=1 degenerates
		}
		if row[2] != row[3] {
			t.Errorf("E11 row %v: links %s != 3p/2 %s", row, row[2], row[3])
		}
	}
}

func TestCapacityMatchesPaperNumbers(t *testing.T) {
	tab, err := Capacity()
	if err != nil {
		t.Fatal(err)
	}
	// Find the 2^30 / N=2^k row: max k must be 15 (the paper's claim).
	found := false
	for _, row := range tab.Rows {
		if row[0] == "2^30" && row[1] == "N = 2^k" {
			found = true
			if row[2] != "15" {
				t.Errorf("E12: 2^30/2^k max k = %s, want 15", row[2])
			}
		}
		if row[0] == "2^30" && row[1] == "N = k^2" {
			if row[2] != "21" && row[2] != "20" {
				t.Errorf("E12: 2^30/k^2 max k = %s, want ~20", row[2])
			}
		}
	}
	if !found {
		t.Fatal("E12 missing the 2^30 row")
	}
}

func TestCrossValidationAllAgree(t *testing.T) {
	tab, err := CrossValidation()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 5 {
		t.Fatalf("E13: only %d rows", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[4:] {
			if cell != "=" {
				t.Errorf("E13 row %v: disagreement", row)
			}
		}
	}
}

func TestGreedyGapNonNegative(t *testing.T) {
	tab, err := GreedyGap()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		var gap float64
		if _, err := fmtSscan(row[4], &gap); err != nil {
			t.Fatal(err)
		}
		if gap < 0 {
			t.Errorf("E14 row %v: negative gap (greedy beat the optimum?)", row)
		}
	}
}

func TestPriorRobustnessNonNegative(t *testing.T) {
	tab, err := PriorRobustness()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		var regret float64
		if _, err := fmtSscan(row[4], &regret); err != nil {
			t.Fatal(err)
		}
		if regret < -0.05 {
			t.Errorf("E16 row %v: negative regret", row)
		}
	}
}

func TestAblations(t *testing.T) {
	if _, err := AblationGather(); err != nil {
		t.Errorf("A1: %v", err)
	}
	if _, err := AblationControlBits(); err != nil {
		t.Errorf("A3: %v", err)
	}
	if _, err := AblationEngines(); err != nil {
		t.Errorf("A4: %v", err)
	}
}

func TestLookupAndNames(t *testing.T) {
	if Lookup("E8") == nil || Lookup("speedup") == nil {
		t.Fatal("Lookup failed for known keys")
	}
	if Lookup("nope") != nil {
		t.Fatal("Lookup succeeded for unknown key")
	}
	if len(Names()) != len(All()) {
		t.Fatal("Names/All size mismatch")
	}
}

func TestRunAllProducesEverySection(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	var buf bytes.Buffer
	if err := RunAll(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, "== "+e.ID+" ") {
			t.Errorf("RunAll output missing section %s", e.ID)
		}
	}
}

// fmtSscan parses a float cell.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}
