// Seeded true positives and near-miss negatives for the ctxflow analyzer.
package eng

import "context"

// Result is a stand-in for a solver answer.
type Result struct{ Cost uint64 }

// True positive: minting a root context deep in library code severs the
// caller's cancellation chain.
func helperRoots(n int) *Result {
	ctx := context.Background() // want "severs the caller's cancellation chain"
	_ = ctx
	return &Result{Cost: uint64(n)}
}

// True positive: TODO is no better than Background.
func todoRoots() context.Context {
	return context.TODO() // want "severs the caller's cancellation chain"
}

// True positive: returning Background directly is not the wrapper shape —
// nothing downstream receives it as a cancellable parent.
func bareBackground() context.Context {
	return context.Background() // want "severs the caller's cancellation chain"
}

// True positive: exported solver entry point with no context at all.
func SolveBlind(n int) *Result { // want "neither takes a context.Context nor delegates"
	return &Result{Cost: uint64(n)}
}

// True positive: takes a context but never uses it.
func SolveDeaf(ctx context.Context, n int) *Result { // want "never passes it down"
	return &Result{Cost: uint64(n)}
}

// True positive: an unnamed context parameter is discarded by construction.
func SolveMute(context.Context, int) *Result { // want "discards its context parameter"
	return &Result{}
}

// True positive: a wrapper that delegates without passing any context.
func SolveForgetful(n int) *Result { // want "neither takes a context.Context nor delegates"
	return solveInner(n)
}

func solveInner(n int) *Result { return &Result{Cost: uint64(n)} }

// Negative: the canonical threaded entry point.
func SolveCtx(ctx context.Context, n int) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Result{Cost: uint64(n)}, nil
}

// Near-miss negative: the documented single-return convenience wrapper —
// the one place a root context is allowed in internal/ code.
func Solve(n int) (*Result, error) {
	return SolveCtx(context.Background(), n)
}

// Negative: forwarding an inherited context is always fine.
func SolveTwice(ctx context.Context, n int) (*Result, error) {
	if _, err := SolveCtx(ctx, n); err != nil {
		return nil, err
	}
	return SolveCtx(ctx, n)
}

// Negative: polling the context counts as using it even without forwarding.
func SolvePolling(ctx context.Context, n int) (*Result, error) {
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
	}
	return &Result{Cost: uint64(n)}, nil
}

// Negative: unexported helpers are not entry points; only the root-context
// rule applies to them, and this one inherits its context properly.
func solveQuiet(ctx context.Context, n int) *Result {
	_ = ctx.Err()
	return &Result{Cost: uint64(n)}
}
