package cccsim

import (
	"fmt"

	"repro/internal/hypercube"
)

// RoutePermutation performs Benes permutation routing on the CCC: the
// paper's §2 remark that the BVM's network "can accomplish any permutation
// within O(log n) time if the control bits are precalculated", made
// operational. The 2·dim-1 Benes stages over dimensions 0..dim-1..0 are
// exactly one ASCEND pass followed by one DESCEND pass over the remaining
// dimensions, so the whole route costs two pipelined CCC sweeps — O(log n)
// steps on the 3-link machine. Returns the routed values and the CCC step
// count.
func RoutePermutation(r int, values []uint64, dest []int) ([]uint64, int, error) {
	sim, err := New[uint64](r)
	if err != nil {
		return nil, 0, err
	}
	if len(values) != sim.Top.N {
		return nil, 0, fmt.Errorf("cccsim: values length %d != %d PEs", len(values), sim.Top.N)
	}
	stages, err := hypercube.BenesControlBits(sim.Dim, dest)
	if err != nil {
		return nil, 0, err
	}
	copy(sim.State(), values)
	q := sim.Dim
	// Forward half: stages 0..q-1 are dims 0..q-1 in ascending order.
	sim.AscendRange(0, q, func(t, addr int, self, partner uint64) uint64 {
		if stages[t].Swap[addr] {
			return partner
		}
		return self
	})
	// Backward half: stages q..2q-2 are dims q-2..0 in descending order.
	if q >= 2 {
		sim.DescendRange(0, q-1, func(t, addr int, self, partner uint64) uint64 {
			if stages[2*(q-1)-t].Swap[addr] {
				return partner
			}
			return self
		})
	}
	out := make([]uint64, sim.Top.N)
	copy(out, sim.State())
	return out, sim.Steps(), nil
}
