package bvm

import "testing"

func TestStuckBitForcesValue(t *testing.T) {
	m := newMachine(t, 1)
	undo := m.InjectStuckBit(R(0), 3, true)
	if !m.Faulty() {
		t.Fatal("machine not reported faulty")
	}
	m.SetConst(R(0), false)
	v := m.Peek(R(0))
	if !v.Get(3) {
		t.Fatal("stuck bit did not hold through a write")
	}
	if v.Count() != 1 {
		t.Fatalf("other PEs affected: %s", v)
	}
	undo()
	if m.Faulty() {
		t.Fatal("undo did not clear fault")
	}
	m.SetConst(R(0), false)
	if m.Peek(R(0)).Any() {
		t.Fatal("bit still stuck after undo")
	}
}

func TestBrokenLateralReadsZero(t *testing.T) {
	m := newMachine(t, 1)
	m.SetConst(R(0), true)
	undo := m.InjectBrokenLateral(2)
	m.Mov(R(1), Via(R(0), RouteL))
	v := m.Peek(R(1))
	partner := m.Top.Lateral(2)
	for pe := 0; pe < m.N(); pe++ {
		want := pe != 2 && pe != partner
		if v.Get(pe) != want {
			t.Fatalf("PE %d lateral read = %v, want %v", pe, v.Get(pe), want)
		}
	}
	// Other routes unaffected.
	m.Mov(R(2), Via(R(0), RouteS))
	if m.Peek(R(2)).Count() != m.N() {
		t.Fatal("broken lateral leaked into successor route")
	}
	undo()
	m.Mov(R(1), Via(R(0), RouteL))
	if m.Peek(R(1)).Count() != m.N() {
		t.Fatal("lateral still broken after undo")
	}
}

func TestFaultInjectionPanicsOutOfRange(t *testing.T) {
	m := newMachine(t, 1)
	for _, f := range []func(){
		func() { m.InjectStuckBit(R(0), -1, true) },
		func() { m.InjectBrokenLateral(m.N()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range fault injection did not panic")
				}
			}()
			f()
		}()
	}
}
