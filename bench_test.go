package repro_test

// One benchmark per experiment row of DESIGN.md's index: regenerating a
// figure or claim under the Go benchmark harness pins its cost and keeps the
// reproduction runnable as `go test -bench=.`.

import (
	"context"
	"fmt"
	"io"
	"testing"

	"repro/internal/approx"
	"repro/internal/bvm"
	"repro/internal/bvmalg"
	"repro/internal/bvmtt"
	"repro/internal/cccsim"
	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/hypercube"
	"repro/internal/parttsolve"
	"repro/internal/workload"
)

// BenchmarkE1TreeExtraction — Figure 1: solve and extract the optimal tree.
func BenchmarkE1TreeExtraction(b *testing.B) {
	p := experiments.Fig1Problem()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := core.Solve(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sol.Tree(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3CycleID — Figure 3: the 4Q-instruction cycle-ID on 2048 PEs.
func BenchmarkE3CycleID(b *testing.B) {
	m, err := bvm.New(3, bvm.DefaultRegisters)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bvmalg.CycleID(m, bvm.R(0))
	}
}

// BenchmarkE4ProcessorID — Figures 4-5: O(log^2 n) processor-ID on 2048 PEs.
func BenchmarkE4ProcessorID(b *testing.B) {
	m, err := bvm.New(3, bvm.DefaultRegisters)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bvmalg.ProcessorID(m, 10)
	}
}

// BenchmarkE5Broadcast — Figure 6: hypercube broadcast at 2^14 PEs.
func BenchmarkE5Broadcast(b *testing.B) {
	vals := make([]uint64, 1<<14)
	vals[0] = 42
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hypercube.Broadcast(14, vals, 0)
	}
}

// BenchmarkE6AscendMin — Figure 7: the ASCEND minimization at 2^14 lanes.
func BenchmarkE6AscendMin(b *testing.B) {
	m := hypercube.New[uint64](14)
	for i := range m.State() {
		m.State()[i] = uint64(i * 2654435761)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Ascend(func(_, _ int, s, p uint64) uint64 {
			if p < s {
				return p
			}
			return s
		})
	}
}

// BenchmarkE8ParallelTT — the O(k(k+log N)) parallel algorithm, k=8.
func BenchmarkE8ParallelTT(b *testing.B) {
	p := workload.Random(1, 8, 8, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parttsolve.Solve(p, parttsolve.Lockstep); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9SequentialDP — the T1 baseline at k=16.
func BenchmarkE9SequentialDP(b *testing.B) {
	p := workload.Random(2, 16, 16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveLevelPair — the cache-resident table restructure (ISSUE 7):
// the classic three-table sweep against the cost-only level-pair layout, at
// the k=16 serving sweet spot and the k=20 cache-pressure regime where the
// classic layout's 24 bytes/subset stop fitting in L2.
func BenchmarkSolveLevelPair(b *testing.B) {
	for _, k := range []int{16, 20} {
		p := workload.Random(2, k, 16, 16)
		b.Run(benchName("classic", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sol, err := core.Solve(p)
				if err != nil {
					b.Fatal(err)
				}
				sol.Release()
			}
		})
		b.Run(benchName("levelpair", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sol, err := core.SolveLevelPair(p)
				if err != nil {
					b.Fatal(err)
				}
				sol.Release()
			}
		})
	}
}

// BenchmarkSolveReuse pins the pooled no-alloc steady state: after warmup,
// a solve-release cycle must not allocate fresh 2^k tables. The allocs/op
// figure is the regression gate (see TestSolveSteadyStateAllocs for the
// hard assertion).
func BenchmarkSolveReuse(b *testing.B) {
	p := workload.Random(2, 14, 16, 16)
	// Warm the pools so the measurement starts in steady state.
	for i := 0; i < 3; i++ {
		sol, err := core.Solve(p)
		if err != nil {
			b.Fatal(err)
		}
		sol.Release()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := core.Solve(p)
		if err != nil {
			b.Fatal(err)
		}
		sol.Release()
	}
}

func benchName(layout string, k int) string {
	return fmt.Sprintf("%s/k%d", layout, k)
}

// BenchmarkSolveBatch — shared-lattice amortization (ISSUE 7): G instances
// differing only in costs and weights, solved one-by-one versus in a single
// enumerate-once re-price-per-instance sweep. The batched row's advantage is
// the enumeration work (Gosper, S∩T_i/S−T_i, guards) paid once per group.
func BenchmarkSolveBatch(b *testing.B) {
	const k, G = 14, 8
	base := workload.Random(2, k, 16, 16)
	group := make([]*core.Problem, G)
	group[0] = base
	for g := 1; g < G; g++ {
		q := base.Clone()
		for j := range q.Weights {
			q.Weights[j] = uint64(g*131+j*17)%20 + 1
		}
		for i := range q.Actions {
			q.Actions[i].Cost = uint64(g*37+i*11)%30 + 1
		}
		group[g] = q
	}
	b.Run(fmt.Sprintf("solo/G%d", G), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, p := range group {
				sol, err := core.SolveLevelPair(p)
				if err != nil {
					b.Fatal(err)
				}
				sol.Release()
			}
		}
	})
	b.Run(fmt.Sprintf("batched/G%d", G), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sols, err := core.SolveBatch(group, 1)
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range sols {
				s.Release()
			}
		}
	})
}

// BenchmarkE10CCCAscend / BenchmarkE10HypercubeAscend — the slowdown pair on
// equal 2048-PE machines.
func BenchmarkE10CCCAscend(b *testing.B) {
	s, err := cccsim.New[uint64](3)
	if err != nil {
		b.Fatal(err)
	}
	for i := range s.State() {
		s.State()[i] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Ascend(func(_, _ int, x, y uint64) uint64 { return min(x, y) })
	}
}

func BenchmarkE10HypercubeAscend(b *testing.B) {
	m := hypercube.New[uint64](11)
	for i := range m.State() {
		m.State()[i] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Ascend(func(_, _ int, x, y uint64) uint64 { return min(x, y) })
	}
}

// BenchmarkE13BVMTT — the instruction-level BVM TT program on 64 PEs.
func BenchmarkE13BVMTT(b *testing.B) {
	p := workload.SystematicBiology(3, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bvmtt.Solve(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14GreedyVsOptimal — the heuristic baseline at k=16.
func BenchmarkE14GreedyVsOptimal(b *testing.B) {
	p := workload.BinaryTestingUniform(16, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyCost(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkA2NaiveCCCAscend — ablation: the unpipelined schedule.
func BenchmarkA2NaiveCCCAscend(b *testing.B) {
	s, err := cccsim.New[uint64](3)
	if err != nil {
		b.Fatal(err)
	}
	for i := range s.State() {
		s.State()[i] = uint64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.NaiveAscend(func(_, _ int, x, y uint64) uint64 { return min(x, y) })
	}
}

// BenchmarkA4GoroutineEngine — ablation: goroutine-per-PE at k=6.
func BenchmarkA4GoroutineEngine(b *testing.B) {
	p := workload.Random(3, 6, 6, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := parttsolve.Solve(p, parttsolve.Goroutine); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullReport regenerates every experiment section end to end.
func BenchmarkFullReport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAll(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE15Virtualization — folding accounting over the full sweep.
func BenchmarkE15Virtualization(b *testing.B) {
	p := workload.Random(99, 10, 16, 15)
	res, err := parttsolve.Solve(p, parttsolve.Lockstep)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for phys := 2; phys <= res.DimBits; phys++ {
			if _, err := res.VirtualizedSteps(phys); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE16StaleTreeEvaluation — re-pricing a tree under shifted priors.
func BenchmarkE16StaleTreeEvaluation(b *testing.B) {
	p := workload.MedicalDiagnosis(21, 10)
	sol, err := core.Solve(p)
	if err != nil {
		b.Fatal(err)
	}
	tree, err := sol.Tree(p)
	if err != nil {
		b.Fatal(err)
	}
	w2 := make([]uint64, p.K)
	for j := range w2 {
		w2[j] = uint64(j + 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.TreeCostWithWeights(p, tree, w2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE17Lookahead — the depth-2 anytime policy at k=12.
func BenchmarkE17Lookahead(b *testing.B) {
	p := workload.FaultLocation(32, 12, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.LookaheadCost(p, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE18FullBVMProgram — the instruction-budget subject end to end.
func BenchmarkE18FullBVMProgram(b *testing.B) {
	p := workload.SystematicBiology(3, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bvmtt.Solve(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCertifyOverhead — the silent-corruption defense end to end: the
// same solve-plus-tree pipeline the server runs per answer, uncertified and
// under each certification mode. The committed BENCH_bvm.json records the
// three, pinning the claim that fast-mode certification costs at most a few
// percent of the answer it protects (audit is the deliberately expensive
// deep check).
func BenchmarkCertifyOverhead(b *testing.B) {
	p := workload.MedicalDiagnosis(14, 12)
	for _, mode := range []certify.Mode{certify.ModeOff, certify.ModeFast, certify.ModeAudit} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sol, err := core.Solve(p)
				if err != nil {
					b.Fatal(err)
				}
				tree, err := sol.Tree(p)
				if err != nil {
					b.Fatal(err)
				}
				if mode == certify.ModeOff {
					continue
				}
				if rep := certify.Check(p, sol.Cost, tree, sol.C, sol.Choice, mode, 7); !rep.OK() {
					b.Fatalf("certification failed: %v", rep.Err())
				}
			}
		})
	}
}

// BenchmarkA2WavefrontBVM — the pipelined machine-level reduction at 2048 PEs.
func BenchmarkA2WavefrontBVM(b *testing.B) {
	m, err := bvm.New(3, bvm.DefaultRegisters)
	if err != nil {
		b.Fatal(err)
	}
	val := bvmalg.Word{Base: 0, Width: 10}
	shadow := bvmalg.Word{Base: 10, Width: 10}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bvmalg.MinReduceAllWavefront(m, val, shadow, 40)
	}
}

// BenchmarkGreedySolve — the bounded-suboptimality plane's anytime floor: the
// greedy portfolio plus gap certification on a K=22 instance, far past any
// exact 2^K budget. This is the cost of "never 422 an oversized instance".
func BenchmarkGreedySolve(b *testing.B) {
	p := workload.Oversized(9, 22)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := approx.Solve(context.Background(), p, approx.Options{NodeBudget: -1})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := certify.CertifyGap(p, res.Tree, res.Cost, res.GapMilli); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBranchAndBound — the anytime improvement phase run to a proof:
// branch-and-bound from the greedy incumbent down to certified optimality on
// a K=12 instance (the same family BenchmarkCertifyOverhead prices exactly).
func BenchmarkBranchAndBound(b *testing.B) {
	p := workload.MedicalDiagnosis(14, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := approx.Solve(context.Background(), p, approx.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Exact {
			b.Fatalf("branch-and-bound did not complete (nodes=%d)", res.Nodes)
		}
	}
}
