package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/stripe"
)

// Batched shared-lattice solving (ISSUE 7 tentpole c, after Ünlüyurt's
// framing in PAPERS.md): instances that differ only in action costs and
// object weights share the identical subset lattice — the same K, the same
// (Set, Treatment) per action index — so the expensive part of the sweep
// (Gosper enumeration, S∩T_i / S−T_i computation, the adequacy guards) can
// run ONCE for the whole group while only the cheap saturating arithmetic is
// repeated per instance ("enumerate once, re-price per instance").
//
// The group sweeps a single interleaved cost table CG with CG[s*G + g] =
// C_g(S): the G instances' values for one subset are adjacent, so the
// per-action reads CG[inter*G..], CG[diff*G..] bring every instance's
// operand in with the same cache line(s) — one enumeration's worth of misses
// serves the whole group. Results are destrided into per-instance cost-only
// Solutions, bit-identical to solving each instance alone (the arithmetic per
// instance is exactly SolveLevelPair's, in the same order).

// SameLattice reports whether a and b share a subset lattice: equal K and
// per-index equal (Set, Treatment). Costs, weights, and names are free.
func SameLattice(a, b *Problem) bool {
	if a.K != b.K || len(a.Actions) != len(b.Actions) {
		return false
	}
	for i := range a.Actions {
		if a.Actions[i].Set != b.Actions[i].Set || a.Actions[i].Treatment != b.Actions[i].Treatment {
			return false
		}
	}
	return true
}

// SolveBatch is SolveBatchCtx on the background context's plumbing-free
// path; see SolveBatchCtx.
func SolveBatch(ps []*Problem, workers int) ([]*Solution, error) {
	return SolveBatchCtx(context.Background(), ps, workers, nil)
}

// SolveBatchCtx solves a group of same-lattice instances in one
// level-synchronous sweep over the shared subset lattice, re-pricing every
// subset for all instances at each enumeration step. Each returned Solution
// is cost-only (C and Cost set, Choice/PSum nil — extract trees with
// TreeFromCosts) and bit-identical to SolveLevelPairCtx on that instance
// alone. `workers` controls level range splitting exactly as in
// SolveParallelCtx; a nil pool selects the process-wide stripe pool. The
// context is polled every ctxStride enumeration steps and at level barriers.
func SolveBatchCtx(ctx context.Context, ps []*Problem, workers int, pool *stripe.Pool) ([]*Solution, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("core: empty batch")
	}
	for g, p := range ps {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("core: batch instance %d: %w", g, err)
		}
		if !SameLattice(ps[0], p) {
			return nil, fmt.Errorf("core: batch instance %d does not share instance 0's lattice", g)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = 1
	}
	if pool == nil {
		pool = stripe.Shared()
	}
	G := len(ps)
	if G == 1 {
		sol, err := SolveLevelPairCtx(ctx, ps[0])
		if err != nil {
			return nil, err
		}
		return []*Solution{sol}, nil
	}
	k := ps[0].K
	size := 1 << uint(k)
	n := len(ps[0].Actions)

	// Interleaved tables: cg[s*G+g] is C_g(S); costG[i*G+g] is instance g's
	// cost for action i, so the inner re-pricing loop walks both unit-stride.
	cg := make([]uint64, size*G)
	for g := range ps {
		cg[g] = 0 // C_g(∅); every other cell is written before being read
	}
	costG := make([]uint64, n*G)
	for g, p := range ps {
		for i, a := range p.Actions {
			costG[i*G+g] = a.Cost
		}
	}
	actions := ps[0].Actions // lattice structure: Set/Treatment per index

	// stop/fail mirror SolveParallel's shutdown discipline: first failure
	// (cancellation or a recovered worker panic) wins, in-flight ranges bail
	// at their next stride poll.
	stop := make(chan struct{})
	var stopOnce sync.Once
	var failErr error
	fail := func(err error) {
		stopOnce.Do(func() {
			failErr = err
			close(stop)
		})
	}
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}

	type gosperRange struct {
		start uint32
		count uint64
	}
	runRange := func(jb gosperRange) {
		defer func() {
			if r := recover(); r != nil {
				fail(fmt.Errorf("core: SolveBatch worker panicked: %v", r))
			}
		}()
		if stopped() {
			return
		}
		ps2 := make([]uint64, G)  // p_g(S) for the current subset
		best := make([]uint64, G) // running minima
		v := jb.start
		for i := uint64(0); i < jb.count; i++ {
			if i&(ctxStride-1) == ctxStride-1 {
				if stopped() {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(err)
					return
				}
			}
			s := Set(v)
			for g, p := range ps {
				ps2[g] = psumOf(p.Weights, s)
				best[g] = Inf
			}
			// Enumeration work — once per (subset, action)...
			for ai := range actions {
				a := &actions[ai]
				inter := s & a.Set
				diff := s &^ a.Set
				if inter == 0 || (!a.Treatment && diff == 0) {
					continue
				}
				cRow := costG[ai*G:]
				dRow := cg[int(diff)*G:]
				// ...re-pricing work — the only per-instance part.
				if a.Treatment {
					for g := 0; g < G; g++ {
						cost := satAdd(satMul(cRow[g], ps2[g]), dRow[g])
						if cost < best[g] {
							best[g] = cost
						}
					}
				} else {
					iRow := cg[int(inter)*G:]
					for g := 0; g < G; g++ {
						cost := satAdd(satMul(cRow[g], ps2[g]), satAdd(iRow[g], dRow[g]))
						if cost < best[g] {
							best[g] = cost
						}
					}
				}
			}
			copy(cg[int(s)*G:int(s)*G+G], best)
			// Gosper: next higher number with the same popcount.
			c := v & -v
			r := v + c
			v = (r^v)>>2/c | r
		}
	}

	ranges := make([]gosperRange, 0, workers)
	for level := 1; level <= k; level++ {
		total := binomial(k, level)
		chunk := (total + uint64(workers) - 1) / uint64(workers)
		ranges = ranges[:0]
		for lo := uint64(0); lo < total; lo += chunk {
			cnt := min(chunk, total-lo)
			ranges = append(ranges, gosperRange{start: nthSubset(lo, level), count: cnt})
		}
		if !stopped() {
			// The level barrier: level j+1 reads level j's CG values only
			// after every range (and every instance) of level j has merged.
			pool.Run(len(ranges), func(i int) { runRange(ranges[i]) })
		}
		if stopped() {
			return nil, failErr
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}

	// Destride into per-instance cost-only solutions on pooled tables.
	out := make([]*Solution, G)
	for g := range ps {
		c := getU64(k)
		for s := 0; s < size; s++ {
			c[s] = cg[s*G+g]
		}
		out[g] = &Solution{
			C:    c,
			Cost: c[size-1],
			Ops:  int64(size-1) * int64(n+1),
		}
	}
	return out, nil
}
