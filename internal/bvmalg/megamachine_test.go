package bvmalg

import (
	"testing"

	"repro/internal/bvm"
)

// The paper: "a machine with 2^20 PEs is currently implementable". These
// tests run the §4 identity algorithms on that full machine (r = 4:
// 16 cycles of 65536, 1048576 PEs) and verify them bit-exactly. Skipped in
// -short mode; the full runs take a few seconds of host time.

func TestCycleIDOnMillionPEMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("2^20-PE machine in -short mode")
	}
	m, err := bvm.New(4, bvm.DefaultRegisters)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 1<<20 {
		t.Fatalf("machine has %d PEs, want 2^20", m.N())
	}
	CycleID(m, bvm.R(0))
	if m.InstrCount != int64(4*m.Top.Q) {
		t.Fatalf("cycle-ID cost %d, want 4Q = %d", m.InstrCount, 4*m.Top.Q)
	}
	v := m.Peek(bvm.R(0))
	for x := 0; x < m.N(); x++ {
		c, p := m.Top.Split(x)
		if v.Get(x) != (c>>uint(p)&1 == 1) {
			t.Fatalf("PE (%d,%d): cycle-ID bit wrong", c, p)
		}
	}
}

func TestProcessorIDOnMillionPEMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("2^20-PE machine in -short mode")
	}
	m, err := bvm.New(4, bvm.DefaultRegisters)
	if err != nil {
		t.Fatal(err)
	}
	base := 10
	ProcessorID(m, base)
	// Full verification of all 2^20 × 20 bits.
	for b := 0; b < m.Top.AddrBits; b++ {
		v := m.Peek(bvm.R(base + b))
		for x := 0; x < m.N(); x++ {
			if v.Get(x) != (x>>uint(b)&1 == 1) {
				t.Fatalf("PE %d bit %d wrong", x, b)
			}
		}
	}
}

func TestWavefrontMinOnMillionPEMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("2^20-PE machine in -short mode")
	}
	m, err := bvm.New(4, bvm.DefaultRegisters)
	if err != nil {
		t.Fatal(err)
	}
	const w = 8
	val, shadow := Word{0, w}, Word{w, w}
	// Cheap host-side load (Poke-level) of a pattern with a unique minimum.
	for pe := 0; pe < m.N(); pe++ {
		m.SetUint(val.Base, w, pe, uint64(17+(pe*131)%200))
	}
	m.SetUint(val.Base, w, 777777, 3)
	MinReduceAllWavefront(m, val, shadow, 40)
	for _, pe := range []int{0, 1, 65535, 1<<20 - 1, 777777} {
		if got := m.Uint(val.Base, w, pe); got != 3 {
			t.Fatalf("PE %d min = %d, want 3", pe, got)
		}
	}
}
