package cluster

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
)

// The fault matrix, as machine wrappers in the style of the mpc player
// types: each wraps an honest core and perturbs exactly one behavior, so the
// same matrix drives the in-process unit tests (over loopback conns, with
// chaos.FaultyConn supplying the network faults) and the real ttworker
// processes of the smoke harness (selected by its -fault flag).
//
//	Honest        correct worker, the baseline
//	Offline       crashes (session error) after a configured number of assignments
//	Malicious     returns well-framed planes with wrong costs — only the
//	              ABFT verification can catch it
//	Slow          computes correctly but too late — the straggler deadline
//	              must catch it
//	CorruptPlane  flips a bit in the encoded plane — the CRC framing must
//	              catch it as ErrCorrupt, never as a wrong frontier
type MachineType byte

const (
	Honest MachineType = iota
	Offline
	Malicious
	Slow
	CorruptPlane
)

// String renders the type as its ttworker -fault spelling.
func (t MachineType) String() string {
	switch t {
	case Honest:
		return "honest"
	case Offline:
		return "offline"
	case Malicious:
		return "malicious"
	case Slow:
		return "slow"
	case CorruptPlane:
		return "corrupt-plane"
	default:
		return fmt.Sprintf("machine-type-%d", byte(t))
	}
}

// ParseMachineType parses a ttworker -fault value.
func ParseMachineType(s string) (MachineType, error) {
	for _, t := range []MachineType{Honest, Offline, Malicious, Slow, CorruptPlane} {
		if s == t.String() {
			return t, nil
		}
	}
	return Honest, fmt.Errorf("cluster: unknown machine type %q", s)
}

// NewMachine builds a machine of the given type around a fresh honest core,
// with the default fault parameters the smoke harness uses.
func NewMachine(t MachineType, id string) Machine {
	h := NewHonestMachine(id)
	switch t {
	case Offline:
		return &OfflineMachine{Inner: h, FailAfter: 2}
	case Malicious:
		return &MaliciousMachine{Inner: h}
	case Slow:
		return &SlowMachine{Inner: h, Delay: 2 * time.Second}
	case CorruptPlane:
		return &CorruptPlaneMachine{Inner: h}
	default:
		return h
	}
}

// OfflineMachine crashes after FailAfter assignments: the session errors
// out, the conn closes, and the coordinator must detect the dead worker and
// reassign its slice.
type OfflineMachine struct {
	Inner     Machine
	FailAfter int // assignments answered honestly before the crash

	assigns int
}

// ID implements Machine.
func (m *OfflineMachine) ID() string { return m.Inner.ID() }

// Handle implements Machine.
func (m *OfflineMachine) Handle(msg Message) ([]Message, error) {
	if msg.Type == msgAssign {
		m.assigns++
		if m.assigns > m.FailAfter {
			return nil, errors.New("cluster: injected offline fault")
		}
	}
	return m.Inner.Handle(msg)
}

// MaliciousMachine computes honest planes and then shaves every finite
// nonzero cost by one: valid framing, valid CRCs, a truthful frozen
// checksum — only the coordinator's semantic verification (audit,
// monotonicity) can refuse it.
type MaliciousMachine struct {
	Inner Machine
}

// ID implements Machine.
func (m *MaliciousMachine) ID() string { return m.Inner.ID() }

// Handle implements Machine.
func (m *MaliciousMachine) Handle(msg Message) ([]Message, error) {
	replies, err := m.Inner.Handle(msg)
	for i, r := range replies {
		if r.Type != msgPlane || len(r.Body) < 8 {
			continue
		}
		plane, derr := checkpoint.DecodePlane(r.Body[8:])
		if derr != nil {
			continue
		}
		for j, c := range plane.C {
			if c != 0 && c != core.Inf {
				plane.C[j] = c - 1 // claim everything is slightly cheaper
			}
		}
		img, eerr := checkpoint.EncodePlane(plane)
		if eerr != nil {
			continue
		}
		replies[i].Body = append(append([]byte(nil), r.Body[:8]...), img...)
	}
	return replies, err
}

// SlowMachine computes correctly but sleeps before every assignment — the
// straggler shape. The coordinator's plane deadline must reassign the slice,
// and the late plane must be discarded as stale, not merged.
type SlowMachine struct {
	Inner Machine
	Delay time.Duration
}

// ID implements Machine.
func (m *SlowMachine) ID() string { return m.Inner.ID() }

// Handle implements Machine.
func (m *SlowMachine) Handle(msg Message) ([]Message, error) {
	if msg.Type == msgAssign {
		time.Sleep(m.Delay)
	}
	return m.Inner.Handle(msg)
}

// CorruptPlaneMachine flips one bit in the encoded plane image. The outer
// wire frame is written after the flip, so it arrives CRC-clean; the
// corruption sits in the plane's own framing and must surface as
// checkpoint.ErrCorrupt at DecodePlane — never as plausible values.
type CorruptPlaneMachine struct {
	Inner Machine
}

// ID implements Machine.
func (m *CorruptPlaneMachine) ID() string { return m.Inner.ID() }

// Handle implements Machine.
func (m *CorruptPlaneMachine) Handle(msg Message) ([]Message, error) {
	replies, err := m.Inner.Handle(msg)
	for i, r := range replies {
		if r.Type != msgPlane || len(r.Body) < 16 {
			continue
		}
		b := append([]byte(nil), r.Body...)
		b[8+(len(b)-8)/2] ^= 0x40 // land inside the plane image, not the assign ID
		replies[i].Body = b
	}
	return replies, err
}
