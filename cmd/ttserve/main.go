// Command ttserve runs the test-and-treatment solver as a long-lived HTTP
// service (internal/serve): instances are POSTed in the instio JSON wire
// format and solved by a selectable engine, with an order-normalized LRU
// solution cache, singleflight collapsing of identical concurrent requests,
// admission control (solver semaphore, bounded queue, K/action budget),
// per-request deadlines that genuinely cancel the O(N·2^K) sweep, and
// graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	ttserve [-addr :8080] [-engine seq] [-timeout 10s] [-max-k 20] ...
//
// Endpoints:
//
//	POST /v1/solve?engine=seq|parallel|lockstep|goroutine|ccc|bvm&timeout_ms=...&tree=1&greedy=1
//	POST /v1/eval                     — price a stored policy under a weight vector
//	GET  /healthz                     — liveness (503 while draining)
//	GET  /v1/stats                    — per-server counters and latency histograms
//	GET  /debug/vars, /debug/pprof/*  — expvar and profiling
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
)

// run boots the service and blocks until a shutdown signal (or a closed
// stop channel, the test hook), then drains. When ready is non-nil it
// receives the bound address once the listener is up.
func run(args []string, stderr io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("ttserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	engine := fs.String("engine", "seq", "default solver engine: seq, parallel, lockstep, goroutine, ccc, or bvm")
	maxConcurrent := fs.Int("max-concurrent", 0, "simultaneous solver runs (0 = GOMAXPROCS)")
	maxPending := fs.Int("max-pending", 0, "queued+running solves before shedding with 503 (0 = 4x max-concurrent)")
	cacheEntries := fs.Int("cache", 0, "LRU capacity in solved instances (0 = 1024, negative disables)")
	timeout := fs.Duration("timeout", 0, "default per-request solve budget (0 = 10s)")
	maxTimeout := fs.Duration("max-timeout", 0, "ceiling on client-requested timeouts (0 = 60s)")
	maxK := fs.Int("max-k", 0, "largest universe accepted; larger instances get 422 (0 = 20)")
	maxActions := fs.Int("max-actions", 0, "most actions accepted (0 = 64)")
	workers := fs.Int("workers", 0, "worker goroutines per parallel solve (0 = GOMAXPROCS)")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := slog.New(slog.NewTextHandler(stderr, nil))
	srv := serve.New(serve.Config{
		MaxConcurrent:  *maxConcurrent,
		MaxPending:     *maxPending,
		CacheEntries:   *cacheEntries,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		MaxK:           *maxK,
		MaxActions:     *maxActions,
		Workers:        *workers,
		DefaultEngine:  *engine,
		Logger:         logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("ttserve: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	logger.Info("ttserve listening", "addr", ln.Addr().String(), "engine", *engine)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		return fmt.Errorf("ttserve: %w", err)
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
	case <-stop:
		logger.Info("shutting down", "signal", "stop")
	}

	// Drain: stop routing (healthz 503), finish accepted requests, then
	// cancel whatever is still running past the budget.
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = hs.Shutdown(ctx)
	srv.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("ttserve: drain: %w", err)
	}
	logger.Info("drained cleanly")
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stderr, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
