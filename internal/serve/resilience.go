package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"time"

	"repro/internal/approx"
	"repro/internal/bvmtt"
	"repro/internal/certify"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/parttsolve"
)

// fallbackChains orders the engines tried for each requested engine: the
// exotic simulated machines degrade to the host-parallel DP, which degrades
// to the plain sequential DP. Every chain ends in "seq" — the engine with no
// machine to mis-simulate — so a request only fails when the DP itself
// cannot run. All exact engines produce bit-identical costs, so a fallback
// changes solved_by, never the answer. When the request enabled approx,
// solveResilient appends "approx" as the terminal rung: with every exact
// engine faulting, a certified-gap answer beats a 5xx — and it is the only
// rung where solved_by changes the answer's meaning, which the response
// labels via the gap fields.
var fallbackChains = map[string][]string{
	"seq":       {"seq"},
	"parallel":  {"parallel", "seq"},
	"lockstep":  {"lockstep", "parallel", "seq"},
	"goroutine": {"goroutine", "parallel", "seq"},
	"ccc":       {"ccc", "parallel", "seq"},
	"bvm":       {"bvm", "parallel", "seq"},
	"cluster":   {"cluster", "parallel", "seq"},
	"approx":    {"approx"},
}

// breaker returns the engine's circuit breaker, or nil when breakers are
// disabled by configuration.
func (s *Server) breaker(engine string) *breaker {
	if s.cfg.BreakerThreshold <= 0 {
		return nil
	}
	s.brMu.Lock()
	defer s.brMu.Unlock()
	b, ok := s.breakers[engine]
	if !ok {
		b = newBreaker(s.cfg.BreakerThreshold, s.cfg.BreakerCooldown)
		s.breakers[engine] = b
	}
	return b
}

// solveResilient runs one admitted solve through the engine's fallback chain
// with bounded retries per engine and per-engine circuit breakers. Context
// errors (deadline, client gone, shutdown) abort immediately — they are not
// engine failures and retrying cannot help. Everything else (engine error,
// engine panic, injected fault) counts against the engine's breaker, is
// retried with jittered backoff, and finally falls through to the next
// engine in the chain.
func (s *Server) solveResilient(ctx context.Context, hash string, canon *core.Problem, engine string, mode certify.Mode, ap approx.Spec) (*cacheEntry, error) {
	chain := fallbackChains[engine]
	if chain == nil {
		return nil, fmt.Errorf("serve: unknown engine %q", engine)
	}
	if s.cfg.DisableFallback {
		chain = chain[:1]
	}
	if ap.Enabled && engine != "approx" && s.admitApprox(canon) == nil && !s.cfg.DisableFallback {
		// The request opted into certified-approximate answers, so the
		// chain's true floor is the anytime engine, below even seq.
		chain = append(append([]string(nil), chain...), "approx")
	}
	var firstErr error
	for ci, eng := range chain {
		if ci > 0 {
			s.metrics.Fallbacks.Add(1)
			if eng == "approx" {
				s.metrics.ApproxFallback.Add(1)
			}
			s.log.Warn("falling back", "from", chain[ci-1], "to", eng, "hash", hash[:12])
		}
		br := s.breaker(eng)
		for attempt := 0; ; attempt++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if br != nil && !br.allow() {
				s.metrics.BreakerRejects.Add(1)
				break // breaker open: skip to the next engine in the chain
			}
			s.metrics.Solves.Add(1)
			start := time.Now()
			ent, err := s.solveAttempt(ctx, hash, canon, eng, mode, ap)
			s.metrics.observe(eng, time.Since(start))
			if err == nil {
				if br != nil {
					br.success()
				}
				return ent, nil
			}
			if isContextErr(err) {
				return nil, err
			}
			s.metrics.EngineFailures.Add(1)
			if br != nil {
				br.failure()
			}
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", eng, err)
			}
			s.log.Warn("engine attempt failed", "engine", eng, "attempt", attempt+1, "err", err)
			if attempt >= s.cfg.Retries {
				break
			}
			s.metrics.Retries.Add(1)
			if !sleepBackoff(ctx, attempt) {
				return nil, ctx.Err()
			}
		}
	}
	return nil, fmt.Errorf("serve: all engines failed: %w", firstErr)
}

// backoffDelay is the retry pause for one failed attempt: 2^min(attempt,6)
// × 10ms plus up to 100% jitter, clamped to 1s. Exposed separately from the
// sleep so the clamp itself is testable — total retry latency under a
// permanently failing engine must stay bounded.
func backoffDelay(attempt int) time.Duration {
	base := 10 * time.Millisecond << uint(min(attempt, 6))
	return min(base+time.Duration(rand.Int63n(int64(base))), time.Second)
}

// sleepBackoff waits backoffDelay(attempt) or until the context ends; it
// reports whether the context is still live.
func sleepBackoff(ctx context.Context, attempt int) bool {
	t := time.NewTimer(backoffDelay(attempt))
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

func isContextErr(err error) bool {
	return errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// solveAttempt runs exactly one engine once, with panic isolation, the
// chaos fault hook, and — when a checkpoint directory is configured — a
// best-effort durable checkpointer plus resume from any compatible
// checkpoint already on disk for this instance. A finished solve discards
// its checkpoint file: the durable frontier exists only while the answer
// does not.
//
// Under any mode but off, the answer is certified before it is returned (and
// therefore before runSolve can cache it): the simulated-machine engines run
// with their ABFT layer on, and the finished answer — tree or cost table plus
// reported C(U) — must pass the engine-independent certifier. A failed
// certification is an engine fault like any other: it feeds the breaker,
// is retried, and falls through to the next engine in the chain.
func (s *Server) solveAttempt(ctx context.Context, hash string, canon *core.Problem, engine string, mode certify.Mode, ap approx.Spec) (ent *cacheEntry, err error) {
	defer func() {
		if r := recover(); r != nil {
			ent, err = nil, fmt.Errorf("serve: %s engine panicked: %v", engine, r)
		}
	}()
	if hook := s.cfg.EngineFault; hook != nil {
		if err := hook(engine); err != nil {
			return nil, err
		}
	}
	if engine == "approx" {
		// The anytime path has its own certification discipline (gap
		// certificates, with no off mode) and no checkpoint/frontier
		// machinery — its solves are repriceable in milliseconds, not
		// worth durable state.
		return s.solveApproxAttempt(ctx, hash, canon, mode, ap)
	}
	frontier := s.loadResume(hash, engine)
	ck, w := s.checkpointerFor(ctx, hash, canon, engine)
	verify := mode != certify.ModeOff

	var (
		cost    uint64
		choices []int32
		cplane  []uint64
		relSol  *core.Solution // pooled DP tables, recycled once the answer is certified
	)
	defer func() { relSol.Release() }()
	switch engine {
	case "seq":
		sol, err := core.SolveCheckpointedCtx(ctx, canon, frontier, ck)
		if err != nil {
			return nil, err
		}
		cost, choices, cplane = sol.Cost, sol.Choice, sol.C
		relSol = sol
	case "parallel":
		sol, err := core.SolveParallelPooledCtx(ctx, canon, s.cfg.Workers, s.stripe, frontier, ck)
		if err != nil {
			return nil, err
		}
		cost, choices, cplane = sol.Cost, sol.Choice, sol.C
		relSol = sol
	case "lockstep", "goroutine", "ccc":
		res, err := parttsolve.SolveOpts(ctx, canon, engineKinds[engine],
			parttsolve.Options{Frontier: frontier, Checkpointer: ck, Verify: verify})
		if err != nil {
			return nil, err
		}
		cost, choices, cplane = res.Cost, res.Choice, res.C
	case "bvm":
		res, err := bvmtt.SolveOpts(ctx, canon,
			bvmtt.Options{Frontier: frontier, Checkpointer: ck, Verify: verify, Stripe: s.stripe})
		if err != nil {
			return nil, err
		}
		cost, cplane = res.Cost, res.C
	case "cluster":
		sol, err := s.solveCluster(ctx, hash, canon, frontier, ck)
		if err != nil {
			return nil, err
		}
		cost, choices, cplane = sol.Cost, sol.Choice, sol.C
	default:
		return nil, fmt.Errorf("serve: unknown engine %q", engine)
	}
	if hook := s.cfg.ResultFault; hook != nil && hook(engine) {
		// Chaos: a silent in-memory corruption of the finished answer — the
		// exact failure the certifier exists to stop at the door.
		if cost >= core.Inf {
			cost = 42
		} else {
			cost++
		}
	}
	if w != nil {
		if err := w.Discard(); err != nil {
			s.log.Warn("discarding finished checkpoint", "err", err)
		}
	}
	ent = &cacheEntry{engine: engine, cost: cost, adequate: cost < core.Inf,
		canon: canon, hash: hash, key: cacheKey(hash, mode, ap)}
	if ent.adequate && choices != nil {
		sol := &core.Solution{Cost: cost, Choice: choices}
		tree, err := sol.Tree(canon)
		if err != nil {
			return nil, err
		}
		ent.tree = tree
	}
	if mode != certify.ModeOff {
		rep := certify.Check(canon, cost, ent.tree, cplane, choices, mode, certifySeed(hash))
		if !rep.OK() {
			s.metrics.CertifyFail.Add(1)
			return nil, fmt.Errorf("serve: %s answer refused: %w", engine, rep.Err())
		}
		s.metrics.CertifyPass.Add(1)
	}
	ent.bytes = entryBytes(ent)
	return ent, nil
}

// certifySeed derives the audit-mode sampling seed from the instance hash, so
// re-certifying the same instance audits the same cells (reproducible) while
// different instances audit different ones.
func certifySeed(hash string) int64 {
	var s uint64 = 14695981039346656037
	for i := 0; i < len(hash); i++ {
		s = (s ^ uint64(hash[i])) * 1099511628211
	}
	return int64(s)
}

// loadResume returns a frontier for this instance if a compatible durable
// checkpoint exists: the hashes must match (guaranteed by the file name but
// re-verified by Load) and a choice-producing engine needs stored argmins —
// a cost-only frontier (written by bvm) only seeds another bvm run.
func (s *Server) loadResume(hash, engine string) *core.Frontier {
	if s.cfg.CheckpointDir == "" {
		return nil
	}
	snap, err := checkpoint.Load(s.cfg.CheckpointFS, s.checkpointPath(hash))
	if err != nil {
		return nil // missing or corrupt: solve from scratch
	}
	if snap.Hash != hash {
		return nil
	}
	if engine != "bvm" && !snap.Frontier.HasChoice() {
		return nil
	}
	return snap.Frontier
}

// checkpointerFor builds the per-solve checkpointer: a durable writer when a
// checkpoint directory is configured, wrapped so persistence failures are
// counted and logged but never abort the solve (an ENOSPC disk must not take
// down answers), plus the chaos LevelDelay pause. Returns (nil, nil) when
// there is nothing to do at level barriers.
func (s *Server) checkpointerFor(ctx context.Context, hash string, canon *core.Problem, engine string) (core.Checkpointer, *checkpoint.Writer) {
	var w *checkpoint.Writer
	if s.cfg.CheckpointDir != "" {
		width := 0
		if engine == "bvm" {
			width = bvmtt.SuggestWidth(canon)
		}
		var err error
		w, err = checkpoint.NewWriter(s.cfg.CheckpointFS, s.cfg.CheckpointDir, canon, hash, engine, width)
		if err != nil {
			s.metrics.CheckpointErrors.Add(1)
			s.log.Warn("checkpointing disabled for solve", "err", err)
			w = nil
		}
	}
	if w == nil && s.cfg.LevelDelay <= 0 {
		return nil, nil
	}
	return &bestEffortCk{s: s, ctx: ctx, w: w, delay: s.cfg.LevelDelay}, w
}

func (s *Server) checkpointPath(hash string) string {
	return filepath.Join(s.cfg.CheckpointDir, hash+checkpoint.Ext)
}

// bestEffortCk adapts a durable checkpoint.Writer to the solver contract:
// core aborts the sweep when a checkpointer errors (correct for chaos kills),
// but in the serving path a failed persistence write must cost durability,
// not the answer — so errors are swallowed after counting. The optional
// delay is the chaos harness's artificial per-level slowness.
type bestEffortCk struct {
	s     *Server
	ctx   context.Context
	w     *checkpoint.Writer
	delay time.Duration
}

func (b *bestEffortCk) CheckpointLevel(level int, sol *core.Solution) error {
	if b.delay > 0 {
		t := time.NewTimer(b.delay)
		select {
		case <-t.C:
		case <-b.ctx.Done():
			t.Stop()
			return b.ctx.Err()
		}
	}
	if b.w == nil {
		return nil
	}
	if err := b.w.CheckpointLevel(level, sol); err != nil {
		b.s.metrics.CheckpointErrors.Add(1)
		b.s.log.Warn("checkpoint write failed", "level", level, "err", err)
		b.w = nil // the disk is sick; stop paying for it this solve
		return nil
	}
	b.s.metrics.CheckpointLevels.Add(1)
	return nil
}

// RecoverCheckpoints scans the checkpoint directory for solves interrupted
// by a crash, finishes each one from its durable frontier (through the
// normal resilient path, so a sick engine still falls back), installs the
// answers in the cache, and deletes consumed files. Corrupt files and torn
// temp residue are deleted outright. Call it after New and before serving
// traffic; it returns (resumed, discarded).
func (s *Server) RecoverCheckpoints(ctx context.Context) (resumed, discarded int, err error) {
	if s.cfg.CheckpointDir == "" {
		return 0, 0, nil
	}
	if t := s.cfg.RecoverTimeout; t > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, t)
		defer cancel()
	}
	snaps, discard, err := checkpoint.ScanCtx(ctx, s.cfg.CheckpointFS, s.cfg.CheckpointDir)
	if err != nil {
		if isContextErr(err) {
			// The recovery budget ran out mid-scan: a slow disk or an enormous
			// directory must not delay serving. Keep what was validated and
			// leave the rest on disk for the next start.
			s.log.Warn("checkpoint scan stopped early", "scanned", len(snaps), "err", err)
		} else {
			//ttlint:ignore durability startup maintenance with no answer in flight: an unreadable directory must abort recovery loudly
			return 0, 0, err
		}
	}
	fsys := s.cfg.CheckpointFS
	if fsys == nil {
		fsys = checkpoint.OS{}
	}
	for _, path := range discard {
		s.log.Warn("discarding unusable checkpoint", "path", path)
		_ = fsys.Remove(path)
		s.metrics.CheckpointsDiscarded.Add(1)
		discarded++
	}
	for _, snap := range snaps {
		if cerr := ctx.Err(); cerr != nil {
			s.log.Warn("checkpoint recovery stopped early",
				"resumed", resumed, "pending", len(snaps)-resumed, "err", cerr)
			break
		}
		engine := snap.Engine
		if !validEngine(engine) {
			engine = s.cfg.DefaultEngine
		}
		ent, err := s.solveResilient(ctx, snap.Hash, snap.Problem, engine, s.certifyMode, approx.Spec{Raw: "off"})
		if err != nil {
			// Leave the file: the frontier is still good and the next start
			// (or the next request for this instance) can try again.
			s.log.Warn("checkpoint resume failed", "hash", snap.Hash[:12], "err", err)
			continue
		}
		s.mu.Lock()
		s.cache.add(ent)
		s.mu.Unlock()
		s.metrics.CheckpointsResumed.Add(1)
		resumed++
		s.log.Info("resumed interrupted solve",
			"hash", snap.Hash[:12], "from_level", snap.Level, "engine", ent.engine)
	}
	return resumed, discarded, nil
}
