package core

import (
	"math/rand"
	"testing"
)

func TestSolveParallelMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 30; trial++ {
		k := rng.Intn(7) + 2 // 2..8
		p := randomProblem(rng, k, rng.Intn(10)+2)
		seq, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 0} {
			par, err := SolveParallel(p, workers)
			if err != nil {
				t.Fatal(err)
			}
			if par.Cost != seq.Cost || par.Ops != seq.Ops {
				t.Fatalf("trial %d workers %d: cost/ops %d/%d vs %d/%d",
					trial, workers, par.Cost, par.Ops, seq.Cost, seq.Ops)
			}
			for s := range seq.C {
				if par.C[s] != seq.C[s] {
					t.Fatalf("trial %d: C[%b] differs", trial, s)
				}
				if par.Choice[s] != seq.Choice[s] {
					t.Fatalf("trial %d: Choice[%b] differs (%d vs %d)",
						trial, s, par.Choice[s], seq.Choice[s])
				}
			}
		}
	}
}

func TestSolveParallelValidates(t *testing.T) {
	if _, err := SolveParallel(&Problem{K: 0}, 2); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestSubsetsOfSize(t *testing.T) {
	got := subsetsOfSize(4, 2)
	want := []Set{0b0011, 0b0101, 0b0110, 0b1001, 0b1010, 0b1100}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if len(subsetsOfSize(5, 0)) != 1 {
		t.Fatal("0-subsets wrong")
	}
	if len(subsetsOfSize(5, 5)) != 1 {
		t.Fatal("full subset wrong")
	}
	// Sizes match binomial coefficients across the board.
	binom := func(n, k int) int {
		c := 1
		for i := 0; i < k; i++ {
			c = c * (n - i) / (i + 1)
		}
		return c
	}
	for k := 1; k <= 10; k++ {
		for j := 0; j <= k; j++ {
			if got := len(subsetsOfSize(k, j)); got != binom(k, j) {
				t.Fatalf("|%d-subsets of %d| = %d, want %d", j, k, got, binom(k, j))
			}
		}
	}
}

func TestSubsetsOfSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid subset size did not panic")
		}
	}()
	subsetsOfSize(3, 4)
}

func TestStats(t *testing.T) {
	p := &Problem{
		K:       2,
		Weights: []uint64{3, 1},
		Actions: []Action{
			{Name: "probe", Set: SetOf(0), Cost: 1},
			{Name: "fix0", Set: SetOf(0), Cost: 2, Treatment: true},
			{Name: "fix1", Set: SetOf(1), Cost: 2, Treatment: true},
		},
	}
	sol, _ := Solve(p)
	tree, _ := sol.Tree(p)
	st, err := Stats(p, tree)
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != tree.CountNodes() || st.Depth != tree.Depth() {
		t.Fatal("shape stats wrong")
	}
	if st.TestNodes+st.TreatmentNodes != st.Nodes {
		t.Fatal("node partition wrong")
	}
	if st.WorstPathLen < 1 || st.WorstPathCost < 2 {
		t.Fatalf("worst path implausible: %+v", st)
	}
	if st.ExpectedActions == 0 {
		t.Fatal("expected actions zero")
	}
	if s := st.String(); s == "" {
		t.Fatal("empty String")
	}
}

func TestStatsErrors(t *testing.T) {
	p := fig1like()
	if _, err := Stats(p, nil); err == nil {
		t.Fatal("nil tree accepted")
	}
	// Tree stranding object 1.
	bad := &Node{Action: 1, Set: Universe(2)}
	if _, err := Stats(p, bad); err == nil {
		t.Fatal("stranding tree accepted")
	}
}

func BenchmarkSolveParallelK16(b *testing.B) {
	p := randomProblem(rand.New(rand.NewSource(62)), 16, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveParallel(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestExplainPricesActions(t *testing.T) {
	p := fig1like()
	sol, _ := Solve(p)
	u := Universe(p.K)
	rows := Explain(p, sol, u)
	if len(rows) != len(p.Actions) {
		t.Fatalf("rows = %d", len(rows))
	}
	best := Inf
	var optimalSeen bool
	for _, r := range rows {
		if r.Applicable && r.M < best {
			best = r.M
		}
		if r.Optimal {
			optimalSeen = true
			if r.M != sol.C[u] {
				t.Fatalf("optimal row M = %d, want C(U) = %d", r.M, sol.C[u])
			}
		}
	}
	if !optimalSeen {
		t.Fatal("no row marked optimal")
	}
	if best != sol.C[u] {
		t.Fatalf("min over rows %d != C(U) %d", best, sol.C[u])
	}
	// A test that cannot split is marked inapplicable with infinite M.
	singleton := SetOf(0)
	for _, r := range Explain(p, sol, singleton) {
		if !p.Actions[r.Action].Treatment && r.Applicable {
			t.Fatalf("test %s applicable on a singleton", r.Name)
		}
	}
}
