package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/cccsim"
	"repro/internal/hypercube"
)

// BenesRouting is experiment E19: the paper's §2 remark that the BVM's
// network resembles the Benes permutation network and "can accomplish any
// permutation within O(log n) time if the control bits are precalculated".
// We precalculate control bits with the classical looping algorithm and
// execute the 2·log n - 1 exchange stages as one ASCEND plus one DESCEND
// pass on the CCC, measuring steps.
func BenesRouting() (*Table, error) {
	t := &Table{
		ID:         "E19",
		Title:      "Benes permutation routing on the BVM network",
		PaperClaim: "any permutation within O(log n) time with precalculated control bits (§2)",
		Header:     []string{"r", "PEs n", "log n", "Benes stages", "CCC steps", "steps/log n", "verified"},
	}
	rng := rand.New(rand.NewSource(77))
	for r := 1; r <= 3; r++ {
		var n int
		switch r {
		case 1:
			n = 8
		case 2:
			n = 64
		default:
			n = 2048
		}
		dest := rng.Perm(n)
		values := make([]uint64, n)
		for i := range values {
			values[i] = uint64(i)
		}
		out, steps, err := cccsim.RoutePermutation(r, values, dest)
		if err != nil {
			return nil, err
		}
		ok := true
		for i := range values {
			if out[dest[i]] != values[i] {
				ok = false
			}
		}
		q := map[int]int{1: 3, 2: 6, 3: 11}[r]
		t.AddRow(r, n, q, 2*q-1, steps,
			fmt.Sprintf("%.1f", float64(steps)/float64(q)), agree(ok))
	}
	t.Notes = append(t.Notes,
		"steps/log n is a flat constant: the routing is O(log n) on the 3-link machine, as claimed",
		"control bits via the classical Benes looping algorithm (hypercube.BenesControlBits)")
	return t, nil
}

// SortingOnCCC is experiment E20: Batcher's bitonic sorter — the flagship
// ASCEND/DESCEND algorithm family the paper's §3 scheme targets — running
// both on the hypercube and on the CCC.
func SortingOnCCC() (*Table, error) {
	t := &Table{
		ID:         "E20",
		Title:      "bitonic sorting via ASCEND/DESCEND on hypercube and CCC",
		PaperClaim: "ASCEND/DESCEND algorithms transform onto the CCC at constant slowdown (§3)",
		Header:     []string{"r", "PEs n", "hypercube steps", "CCC steps", "slowdown", "sorted"},
	}
	rng := rand.New(rand.NewSource(78))
	for r := 1; r <= 3; r++ {
		var n, dim int
		switch r {
		case 1:
			n, dim = 8, 3
		case 2:
			n, dim = 64, 6
		default:
			n, dim = 2048, 11
		}
		values := make([]uint64, n)
		for i := range values {
			values[i] = uint64(rng.Intn(1 << 16))
		}
		m := hypercube.New[uint64](dim)
		copy(m.State(), values)
		hypercube.BitonicSort(m)

		got, cccSteps, err := cccsim.BitonicSort(r, values)
		if err != nil {
			return nil, err
		}
		ok := sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] })
		for i := range got {
			if got[i] != m.State()[i] {
				ok = false
			}
		}
		t.AddRow(r, n, m.Steps, cccSteps,
			fmt.Sprintf("%.2f", float64(cccSteps)/float64(m.Steps)), agree(ok))
	}
	t.Notes = append(t.Notes,
		"hypercube steps are Batcher's dim(dim+1)/2; the CCC pays the same 4-6x band as E10")
	return t, nil
}
