package core

import (
	"context"
	"fmt"
	"strings"
)

// Node is one vertex of a TT procedure tree (paper Figure 1). For a test
// node, Pos is the subtree entered on a positive response (candidates S∩T_i)
// and Neg on a negative one (S−T_i). For a treatment node, the positive
// outcome ends the procedure (the object is treated), so Pos is nil, and Neg
// is the subtree for a failed treatment (S−T_i) — nil when the treatment
// covers all of S.
type Node struct {
	Action int // index into Problem.Actions
	Set    Set // live candidate set at this node
	Pos    *Node
	Neg    *Node
}

// Tree reconstructs an optimal procedure tree from the solver's choices.
// It fails if the instance is inadequate.
func (s *Solution) Tree(p *Problem) (*Node, error) {
	if !s.Adequate() {
		return nil, fmt.Errorf("core: inadequate instance has no procedure tree")
	}
	return s.buildNode(p, Universe(p.K))
}

func (s *Solution) buildNode(p *Problem, set Set) (*Node, error) {
	if set == 0 {
		return nil, nil
	}
	idx := s.Choice[set]
	if idx < 0 {
		return nil, fmt.Errorf("core: no action recorded for set %v", set)
	}
	a := p.Actions[idx]
	n := &Node{Action: int(idx), Set: set}
	var err error
	if a.Treatment {
		n.Neg, err = s.buildNode(p, set&^a.Set)
		if err != nil {
			return nil, err
		}
		return n, nil
	}
	if n.Pos, err = s.buildNode(p, set&a.Set); err != nil {
		return nil, err
	}
	if n.Neg, err = s.buildNode(p, set&^a.Set); err != nil {
		return nil, err
	}
	return n, nil
}

// TreeCost independently evaluates a procedure tree's expected cost: for
// every object j it walks the path j induces, sums the action costs along
// it, and weights by P_j. It returns an error if some object is never
// treated — i.e. the tree is not a successful TT procedure — or if a node's
// branches are inconsistent with its action. It is deliberately ignorant of
// the DP so it can serve as an oracle for Solve.
func TreeCost(p *Problem, root *Node) (uint64, error) {
	return TreeCostCtx(context.Background(), p, root)
}

// TreeCostCtx is TreeCost with cancellation: the context is polled every
// ctxStride visited nodes, so pricing an adversarially large caller-supplied
// tree (serve's /v1/eval accepts up to 2^K policy states) stops promptly
// when the request is abandoned.
func TreeCostCtx(ctx context.Context, p *Problem, root *Node) (uint64, error) {
	// A small valid tree finishes well inside one stride, so an
	// already-abandoned request must be caught here, not at the first poll.
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	var total uint64
	var visited int
	for j := 0; j < p.K; j++ {
		var pathCost uint64
		n := root
		treated := false
		for n != nil {
			if visited++; visited&(ctxStride-1) == 0 {
				if err := ctx.Err(); err != nil {
					return 0, err
				}
			}
			if !n.Set.Has(j) {
				return 0, fmt.Errorf("core: object %d reached node with set %v not containing it", j, n.Set)
			}
			a := p.Actions[n.Action]
			pathCost = satAdd(pathCost, a.Cost)
			if a.Treatment {
				if a.Set.Has(j) {
					treated = true
					break
				}
				n = n.Neg
			} else if a.Set.Has(j) {
				n = n.Pos
			} else {
				n = n.Neg
			}
		}
		if !treated {
			return 0, fmt.Errorf("core: object %d is never treated", j)
		}
		total = satAdd(total, satMul(pathCost, p.Weights[j]))
	}
	return total, nil
}

// Depth returns the longest root-to-leaf path length in nodes.
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	return 1 + max(n.Pos.Depth(), n.Neg.Depth())
}

// CountNodes returns the number of nodes in the tree.
func (n *Node) CountNodes() int {
	if n == nil {
		return 0
	}
	return 1 + n.Pos.CountNodes() + n.Neg.CountNodes()
}

// Render draws the tree in the style of the paper's Figure 1: one node per
// line, indented by depth; test branches are labeled +/- and treatment nodes
// are marked, with the treated set shown doubled (the figure's double arc).
func (n *Node) Render(p *Problem) string {
	var sb strings.Builder
	n.render(p, &sb, "", "")
	return sb.String()
}

func (n *Node) render(p *Problem, sb *strings.Builder, prefix, branch string) {
	if n == nil {
		return
	}
	a := p.Actions[n.Action]
	kind := "test"
	if a.Treatment {
		kind = "treat"
	}
	name := a.Name
	if name == "" {
		name = fmt.Sprintf("T%d", n.Action+1)
	}
	fmt.Fprintf(sb, "%s%s%s %s %v cost=%d on %v", prefix, branch, kind, name, a.Set, a.Cost, n.Set)
	if a.Treatment {
		fmt.Fprintf(sb, "  ==> treats %v", n.Set&a.Set)
	}
	sb.WriteByte('\n')
	childPrefix := prefix + "  "
	if !a.Treatment {
		n.Pos.render(p, sb, childPrefix, "+ ")
	}
	n.Neg.render(p, sb, childPrefix, "- ")
}
