package parttsolve

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

func randomProblem(rng *rand.Rand, k, nActions int) *core.Problem {
	p := &core.Problem{K: k, Weights: make([]uint64, k)}
	for j := range p.Weights {
		p.Weights[j] = uint64(rng.Intn(20) + 1)
	}
	u := uint32(core.Universe(k))
	for i := 0; i < nActions; i++ {
		p.Actions = append(p.Actions, core.Action{
			Set:       core.Set(rng.Intn(int(u))+1) & core.Set(u),
			Cost:      uint64(rng.Intn(30) + 1),
			Treatment: rng.Intn(2) == 0,
		})
	}
	p.Actions = append(p.Actions, core.Action{Set: core.Universe(k), Cost: 400, Treatment: true})
	return p
}

// TestMatchesSequentialDP is E13's heart: the parallel C plane must equal the
// sequential DP's C array exactly, for every subset, across many random
// instances.
func TestMatchesSequentialDP(t *testing.T) {
	old := debugChecks
	debugChecks = true
	defer func() { debugChecks = old }()

	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 40; trial++ {
		k := rng.Intn(5) + 2 // 2..6
		p := randomProblem(rng, k, rng.Intn(10)+2)
		seq, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Solve(p, Lockstep)
		if err != nil {
			t.Fatal(err)
		}
		if par.Cost != seq.Cost {
			t.Fatalf("trial %d: parallel C(U)=%d, sequential %d", trial, par.Cost, seq.Cost)
		}
		for s := range par.C {
			if par.C[s] != seq.C[s] {
				t.Fatalf("trial %d: C[%b] parallel %d sequential %d", trial, s, par.C[s], seq.C[s])
			}
		}
	}
}

func TestGoroutineEngineMatchesLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		p := randomProblem(rng, rng.Intn(3)+2, rng.Intn(6)+2)
		lock, err := Solve(p, Lockstep)
		if err != nil {
			t.Fatal(err)
		}
		gor, err := Solve(p, Goroutine)
		if err != nil {
			t.Fatal(err)
		}
		for s := range lock.C {
			if lock.C[s] != gor.C[s] {
				t.Fatalf("trial %d: engines disagree at S=%b: %d vs %d", trial, s, lock.C[s], gor.C[s])
			}
		}
	}
}

func TestCCCEngineMatchesLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 6; trial++ {
		k := rng.Intn(3) + 2 // 2..4: machines of 64 or 2048 PEs
		p := randomProblem(rng, k, rng.Intn(4)+2)
		lock, err := Solve(p, Lockstep)
		if err != nil {
			t.Fatal(err)
		}
		cc, err := Solve(p, CCC)
		if err != nil {
			t.Fatal(err)
		}
		if cc.Cost != lock.Cost {
			t.Fatalf("trial %d: CCC %d vs lockstep %d", trial, cc.Cost, lock.Cost)
		}
		for s := range lock.C {
			if lock.C[s] != cc.C[s] {
				t.Fatalf("trial %d: C[%b] mismatch", trial, s)
			}
		}
		if cc.CCCSteps == 0 {
			t.Fatal("CCC engine reported no CCC steps")
		}
		// The 3-link machine must pay more steps than the hypercube count.
		if cc.CCCSteps <= cc.DimSteps {
			t.Fatalf("CCC steps %d not above hypercube dim steps %d", cc.CCCSteps, cc.DimSteps)
		}
	}
}

func TestInadequateInstance(t *testing.T) {
	p := &core.Problem{
		K:       3,
		Weights: []uint64{1, 1, 1},
		Actions: []core.Action{
			{Set: core.SetOf(0, 1), Cost: 1, Treatment: true},
			{Set: core.SetOf(0, 2), Cost: 1},
		},
	}
	res, err := Solve(p, Lockstep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != core.Inf {
		t.Fatalf("inadequate instance cost %d, want Inf", res.Cost)
	}
}

func TestHandComputedInstance(t *testing.T) {
	p := &core.Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []core.Action{
			{Name: "treat-both", Set: core.SetOf(0, 1), Cost: 3, Treatment: true},
			{Name: "treat-0", Set: core.SetOf(0), Cost: 1, Treatment: true},
			{Name: "treat-1", Set: core.SetOf(1), Cost: 1, Treatment: true},
			{Name: "test-0", Set: core.SetOf(0), Cost: 1},
		},
	}
	res, err := Solve(p, Lockstep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 3 {
		t.Fatalf("C(U) = %d, want 3", res.Cost)
	}
}

func TestStepCountFormula(t *testing.T) {
	// E8: measured dimension steps must equal the closed form
	// k + k(2k + logN), the paper's O(k(k + log N)) parallel time.
	rng := rand.New(rand.NewSource(4))
	for _, k := range []int{2, 4, 6} {
		for _, n := range []int{2, 5, 9} {
			p := randomProblem(rng, k, n-1) // +1 catch-all = n actions
			res, err := Solve(p, Lockstep)
			if err != nil {
				t.Fatal(err)
			}
			logN := PaddedLogN(len(p.Actions))
			if want := ExpectedDimSteps(k, logN); res.DimSteps != want {
				t.Errorf("k=%d n=%d: DimSteps=%d, want %d", k, n, res.DimSteps, want)
			}
			if res.LogN != logN {
				t.Errorf("k=%d n=%d: LogN=%d, want %d", k, n, res.LogN, logN)
			}
			if res.PEs != 1<<uint(k+logN) {
				t.Errorf("k=%d n=%d: PEs=%d", k, n, res.PEs)
			}
		}
	}
}

func TestPaddedLogN(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 3: 2, 4: 2, 5: 3, 8: 3, 9: 4}
	for n, want := range cases {
		if got := PaddedLogN(n); got != want {
			t.Errorf("PaddedLogN(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestEngineKindString(t *testing.T) {
	if Lockstep.String() != "lockstep" || Goroutine.String() != "goroutine" || CCC.String() != "ccc" {
		t.Error("EngineKind strings wrong")
	}
}

func TestValidateErrorPropagates(t *testing.T) {
	p := &core.Problem{K: 0}
	if _, err := Solve(p, Lockstep); err == nil {
		t.Fatal("invalid problem accepted")
	}
}

func TestTooLargeRejected(t *testing.T) {
	k := 24
	p := &core.Problem{K: k, Weights: make([]uint64, k)}
	for j := range p.Weights {
		p.Weights[j] = 1
	}
	for i := 0; i < 16; i++ {
		p.Actions = append(p.Actions, core.Action{Set: core.Universe(k), Cost: 1, Treatment: true})
	}
	if _, err := Solve(p, Lockstep); err == nil {
		t.Fatal("2^28-PE machine accepted")
	}
}

// Property: for adequate random instances, the parallel cost equals the
// sequential optimum and is bounded above by the greedy tree cost.
func TestPropertyParallelOptimality(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProblem(rng, 3, 4)
		seq, err := core.Solve(p)
		if err != nil {
			return false
		}
		par, err := Solve(p, Lockstep)
		if err != nil {
			return false
		}
		g, err := core.GreedyCost(p)
		if err != nil {
			return false
		}
		return par.Cost == seq.Cost && par.Cost <= g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestResultSteps(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(5)), 3, 3)
	res, err := Solve(p, Lockstep)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps() != res.DimSteps+res.LocalSteps {
		t.Fatal("Steps() inconsistent")
	}
	if res.LocalSteps == 0 {
		t.Fatal("no local steps counted")
	}
}

func BenchmarkParallelTTLockstepK8(b *testing.B) {
	p := randomProblem(rand.New(rand.NewSource(6)), 8, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, Lockstep); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelTTGoroutineK6(b *testing.B) {
	p := randomProblem(rand.New(rand.NewSource(7)), 6, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, Goroutine); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParallelTTCCCK7(b *testing.B) {
	p := randomProblem(rand.New(rand.NewSource(8)), 7, 15)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Solve(p, CCC); err != nil {
			b.Fatal(err)
		}
	}
}

// TestChoicePlaneMatchesDP: the machine's argmin plane equals the sequential
// DP's choices exactly, and a procedure tree built purely from the parallel
// run's output achieves C(U).
func TestChoicePlaneMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		k := rng.Intn(4) + 2
		p := randomProblem(rng, k, rng.Intn(8)+2)
		seq, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Solve(p, Lockstep)
		if err != nil {
			t.Fatal(err)
		}
		for s := range seq.Choice {
			want := seq.Choice[s]
			if s == 0 || seq.C[s] == core.Inf {
				want = -1
			}
			if par.Choice[s] != want {
				t.Fatalf("trial %d: Choice[%b] = %d, want %d", trial, s, par.Choice[s], want)
			}
		}
		if par.Cost == core.Inf {
			continue
		}
		rebuilt := &core.Solution{Cost: par.Cost, C: par.C, Choice: par.Choice}
		tree, err := rebuilt.Tree(p)
		if err != nil {
			t.Fatalf("trial %d: tree from parallel output: %v", trial, err)
		}
		got, err := core.TreeCost(p, tree)
		if err != nil {
			t.Fatal(err)
		}
		if got != par.Cost {
			t.Fatalf("trial %d: parallel-built tree costs %d, want %d", trial, got, par.Cost)
		}
	}
}
