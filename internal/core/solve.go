package core

import (
	"context"
	"fmt"
	"math/bits"
)

// Solution is the output of the sequential DP solver.
type Solution struct {
	// Cost is C(U), the minimum expected cost; Inf means the instance is
	// inadequate (no successful procedure exists).
	Cost uint64
	// C[s] is the minimum cost for candidate set s, for all 2^K subsets.
	C []uint64
	// Choice[s] is the index of a minimizing action for set s, or -1 when
	// s is empty or C[s] is infinite.
	Choice []int32
	// PSum[s] is p(s), the total weight of set s.
	PSum []uint64
	// Ops counts elementary operations (one per (S, action) evaluation plus
	// one per subset for the final minimum), the T_1 of the paper's speedup
	// S = T_1/T_p.
	Ops int64
}

// Solve runs the backward-induction dynamic program (the paper's sequential
// baseline, after Garey): subsets in increasing numeric order — every proper
// subset precedes its supersets — with each M[S,i] evaluated from already
// final C values. Self-referential action applications (a test with
// S∩T_i = ∅ or S−T_i = ∅, a treatment with S∩T_i = ∅) read the
// still-infinite C[S] and drop out of the minimum exactly as in the paper's
// infinity-initialization argument. Time O(N·2^K), space O(2^K).
func Solve(p *Problem) (*Solution, error) {
	return SolveCtx(context.Background(), p)
}

// SolveCtx is Solve with cancellation: the context is polled every ctxStride
// subsets, so a deadline or client disconnect stops the O(N·2^K) sweep
// promptly. On cancellation the context's error is returned and the partial
// table is discarded.
func SolveCtx(ctx context.Context, p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	size := 1 << uint(p.K)
	sol := &Solution{
		C:      getU64(p.K),
		Choice: getI32(p.K),
		PSum:   getU64(p.K),
	}
	// Pooled tables come back dirty; index 0 is the only cell read before
	// being assigned, so it is reset here and every other cell is written by
	// the sweep before any read.
	sol.C[0], sol.PSum[0], sol.Choice[0] = 0, 0, -1
	for s := 1; s < size; s++ {
		if s&(ctxStride-1) == 0 {
			// The setup scan is O(2^K) too: poll so an abandoned request
			// stops here, not after the scan completes.
			if err := ctx.Err(); err != nil {
				sol.Release()
				return nil, err
			}
		}
		low := s & -s
		sol.PSum[s] = satAdd(sol.PSum[s&(s-1)], p.Weights[bits.TrailingZeros(uint(low))])
	}
	for s := 1; s < size; s++ {
		if s&(ctxStride-1) == 0 {
			if err := ctx.Err(); err != nil {
				sol.Release()
				return nil, err
			}
		}
		best, bestIdx := Inf, int32(-1)
		for i, a := range p.Actions {
			inter := Set(s) & a.Set
			diff := Set(s) &^ a.Set
			// Read C for the pieces; a self-reference (piece == s) sees the
			// not-yet-assigned slot, which is semantically Inf.
			cost := satMul(a.Cost, sol.PSum[s])
			if a.Treatment {
				if inter == 0 {
					cost = Inf // treatment treats nothing: S−T_i = S
				} else {
					cost = satAdd(cost, sol.C[diff])
				}
			} else {
				if inter == 0 || diff == 0 {
					cost = Inf // test does not split S
				} else {
					cost = satAdd(cost, satAdd(sol.C[inter], sol.C[diff]))
				}
			}
			sol.Ops++
			if cost < best {
				best, bestIdx = cost, int32(i)
			}
		}
		sol.Ops++
		sol.C[s], sol.Choice[s] = best, bestIdx
	}
	sol.Cost = sol.C[size-1]
	return sol, nil
}

// Adequate reports whether the instance admits a successful procedure.
func (s *Solution) Adequate() bool { return s.Cost < Inf }

// SolveMemo is an independent top-down implementation of the same
// recurrence, used to cross-check Solve: memoized recursion with an explicit
// on-stack guard instead of evaluation-order reasoning. It returns only C(U).
func SolveMemo(p *Problem) (uint64, error) {
	return SolveMemoCtx(context.Background(), p)
}

// SolveMemoCtx is SolveMemo with cancellation: the context is polled every
// ctxStride memoized evaluations, so the top-down sweep honors deadlines and
// disconnects like every other solver entry point.
func SolveMemoCtx(ctx context.Context, p *Problem) (uint64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	size := 1 << uint(p.K)
	memo := make([]uint64, size)
	known := make([]bool, size)
	psum := make([]uint64, size)
	for s := 1; s < size; s++ {
		low := s & -s
		psum[s] = satAdd(psum[s&(s-1)], p.Weights[bits.TrailingZeros(uint(low))])
	}
	known[0] = true
	var evals int
	var ctxErr error
	var rec func(s Set) uint64
	rec = func(s Set) uint64 {
		if known[s] {
			return memo[s]
		}
		evals++
		if evals&(ctxStride-1) == 0 && ctxErr == nil {
			ctxErr = ctx.Err()
		}
		if ctxErr != nil {
			return Inf // unwind; the partial memo is discarded
		}
		best := Inf
		for _, a := range p.Actions {
			inter := s & a.Set
			diff := s &^ a.Set
			if inter == 0 || (!a.Treatment && diff == 0) {
				continue // would not shrink S: excluded
			}
			cost := satMul(a.Cost, psum[s])
			if a.Treatment {
				cost = satAdd(cost, rec(diff))
			} else {
				cost = satAdd(cost, satAdd(rec(inter), rec(diff)))
			}
			if cost < best {
				best = cost
			}
		}
		memo[s], known[s] = best, true
		return best
	}
	got := rec(Universe(p.K))
	if ctxErr != nil {
		return 0, ctxErr
	}
	return got, nil
}

// String summarizes the solution.
func (s *Solution) String() string {
	if !s.Adequate() {
		return "inadequate instance (no successful procedure)"
	}
	return fmt.Sprintf("C(U) = %d over %d subsets (%d ops)", s.Cost, len(s.C), s.Ops)
}
