package bvmalg

import (
	"fmt"

	"repro/internal/bvm"
)

// This file implements bit-serial word arithmetic on the BVM. The machine has
// no adder: numbers are bit rows, and a w-bit addition is w full-adder
// instructions rippling a carry through register B (the dual-assignment
// instruction computes sum and carry in one cycle — the reason the paper's
// ISA writes two results at once).

// setB loads a constant into B (1 instruction; the f half is the identity on A).
func setB(m *bvm.Machine, bit bool) {
	g := bvm.TTZero
	if bit {
		g = bvm.TTOne
	}
	m.Exec(bvm.Instr{Dst: bvm.A, FTT: bvm.TTF, GTT: g, F: bvm.A, D: bvm.Loc(bvm.A)})
}

// ttLess is the comparison-step g table: scanning LSB→MSB with the running
// "x < y so far" flag in B, the new flag is y's bit where the bits differ,
// else the old flag.
var ttLess = bvm.TT(func(f, d, b bool) bool {
	if f != d {
		return d
	}
	return b
})

// SetWordConst stores an immediate value into a word on all active PEs.
// Width instructions.
func SetWordConst(m *bvm.Machine, w Word, val uint64, cond ...*bvm.Activation) {
	if w.Width < 64 && val > w.MaxValue() {
		panic(fmt.Sprintf("bvmalg: constant %d exceeds %d-bit word", val, w.Width))
	}
	for b := 0; b < w.Width; b++ {
		m.SetConst(w.Bit(b), val>>uint(b)&1 == 1, cond...)
	}
}

// CopyWord copies src to dst bit-plane by bit-plane. Width instructions.
func CopyWord(m *bvm.Machine, dst, src Word, cond ...*bvm.Activation) {
	sameWidth(dst, src)
	for b := 0; b < dst.Width; b++ {
		m.Mov(dst.Bit(b), bvm.Loc(src.Bit(b)), cond...)
	}
}

// MovWordVia copies each PE's dst word from its routed neighbor's src word.
// Width instructions.
func MovWordVia(m *bvm.Machine, dst, src Word, route bvm.Route, cond ...*bvm.Activation) {
	sameWidth(dst, src)
	for b := 0; b < dst.Width; b++ {
		m.Mov(dst.Bit(b), bvm.Via(src.Bit(b), route), cond...)
	}
}

// AddWord computes dst = x + y modulo 2^width (ripple carry through B).
// Width+1 instructions. dst may alias x or y.
func AddWord(m *bvm.Machine, dst, x, y Word) {
	sameWidth(dst, x)
	sameWidth(dst, y)
	setB(m, false)
	for b := 0; b < dst.Width; b++ {
		m.AddStep(dst.Bit(b), x.Bit(b), bvm.Loc(y.Bit(b)))
	}
}

// AddSatWord computes dst = min(x + y, all-ones): saturating addition. With
// the all-ones pattern as the infinity sentinel, INF + anything = INF, which
// is exactly the arithmetic the TT recurrence needs. 2·Width+1 instructions.
func AddSatWord(m *bvm.Machine, dst, x, y Word) {
	AddWord(m, dst, x, y)
	// B now holds the carry-out; force all bits to 1 where it is set.
	orB := bvm.TT(func(f, d, b bool) bool { return f || b })
	for b := 0; b < dst.Width; b++ {
		m.Exec(bvm.Instr{Dst: dst.Bit(b), FTT: orB, GTT: bvm.TTB, F: dst.Bit(b), D: bvm.Loc(bvm.A)})
	}
}

// LessWord leaves B = (x < y), unsigned, on every PE. Width+1 instructions.
func LessWord(m *bvm.Machine, x, y Word) {
	sameWidth(x, y)
	setB(m, false)
	for b := 0; b < x.Width; b++ {
		m.Exec(bvm.Instr{Dst: bvm.A, FTT: bvm.TTF, GTT: ttLess, F: x.Bit(b), D: bvm.Loc(y.Bit(b))})
	}
}

// MinWord computes dst = min(x, y). 2·Width+1 instructions. dst may alias x.
func MinWord(m *bvm.Machine, dst, x, y Word) {
	sameWidth(dst, x)
	sameWidth(dst, y)
	LessWord(m, y, x) // B = (y < x): take y where set
	for b := 0; b < dst.Width; b++ {
		m.MuxB(dst.Bit(b), x.Bit(b), bvm.Loc(y.Bit(b)))
	}
}

// CondCopyWord copies src into dst only on PEs where the cond register is 1.
// Width+1 instructions.
func CondCopyWord(m *bvm.Machine, dst, src Word, cond bvm.RegRef) {
	sameWidth(dst, src)
	m.MovB(bvm.Loc(cond))
	for b := 0; b < dst.Width; b++ {
		m.MuxB(dst.Bit(b), dst.Bit(b), bvm.Loc(src.Bit(b)))
	}
}

// CondMinWord computes dst = min(dst, src) only on PEs where the cond
// register is 1: B = cond AND (src < dst), then a masked select.
// 2·Width+2 instructions.
func CondMinWord(m *bvm.Machine, dst, src Word, cond bvm.RegRef) {
	sameWidth(dst, src)
	LessWord(m, src, dst) // B = src < dst
	m.Exec(bvm.Instr{Dst: bvm.A, FTT: bvm.TTF, GTT: bvm.TT(func(f, d, b bool) bool { return b && d }),
		F: bvm.A, D: bvm.Loc(cond)}) // B &= cond
	for b := 0; b < dst.Width; b++ {
		m.MuxB(dst.Bit(b), dst.Bit(b), bvm.Loc(src.Bit(b)))
	}
}

func sameWidth(a, b Word) {
	if a.Width != b.Width {
		panic(fmt.Sprintf("bvmalg: word width mismatch %d != %d", a.Width, b.Width))
	}
}
