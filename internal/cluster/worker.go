package cluster

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/bits"
	"net"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/instio"
)

// Message is one protocol message as seen by a Machine: the wire type byte
// and the raw body.
type Message struct {
	Type byte
	Body []byte
}

// Machine is the worker-side protocol state machine, separated from its
// transport in the style of the mpc inversion-network players: a machine has
// an identity and a Handle step that turns one received message into zero or
// more replies. RunWorker pumps a Machine over a net.Conn, so the honest
// implementation and its fault-injecting wrappers (faults.go) run unchanged
// under net.Pipe unit tests and in real ttworker processes.
type Machine interface {
	ID() string
	Handle(msg Message) ([]Message, error)
}

// errDone is returned by a Machine to end the session cleanly.
var errDone = errors.New("cluster: session done")

// HonestMachine is the correct worker: it mirrors the coordinator's frontier
// — updated only from verified Merged broadcasts, never from its own slices,
// so reassignment cannot make replicas diverge — and computes assigned level
// slices with the exact sequential recurrence (same saturating arithmetic,
// same lowest-index tie-breaking), which is what makes a distributed answer
// bit-identical to the single-process reference.
type HonestMachine struct {
	id   string
	p    *core.Problem
	hash string
	size int

	c      []uint64 // final for popcount <= level, Inf above
	psum   []uint64
	level  int    // last merged level
	frozen uint64 // FNV-1a over C of all subsets with popcount <= level
}

// NewHonestMachine returns an honest worker machine announcing the given ID.
func NewHonestMachine(id string) *HonestMachine { return &HonestMachine{id: id, level: -1} }

// ID implements Machine.
func (m *HonestMachine) ID() string { return m.id }

// Handle implements Machine.
func (m *HonestMachine) Handle(msg Message) ([]Message, error) {
	if m.p == nil && msg.Type != msgHello && msg.Type != msgPing && msg.Type != msgDone {
		return nil, fmt.Errorf("cluster: worker %s: message %d before hello", m.id, msg.Type)
	}
	switch msg.Type {
	case msgHello:
		return m.hello(msg.Body)
	case msgAssign:
		return m.assign(msg.Body)
	case msgMerged:
		return nil, m.merged(msg.Body)
	case msgPing:
		return []Message{{Type: msgPong, Body: msg.Body}}, nil
	case msgDone:
		return nil, errDone
	default:
		return nil, fmt.Errorf("cluster: worker %s: unexpected message type %d", m.id, msg.Type)
	}
}

// hello installs the problem, trusting nothing: the instance bytes are
// re-parsed and re-hashed, and a resume frontier is re-validated through the
// checkpoint decoder before a single cell is absorbed.
func (m *HonestMachine) hello(body []byte) ([]Message, error) {
	var h helloBody
	if err := json.Unmarshal(body, &h); err != nil {
		return nil, fmt.Errorf("cluster: worker %s: hello: %w", m.id, err)
	}
	p, err := instio.Read(bytes.NewReader(h.Problem))
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %s: hello problem: %w", m.id, err)
	}
	hash, err := checkpoint.ProblemHash(p)
	if err != nil {
		return nil, err
	}
	if h.Hash != "" && h.Hash != hash {
		return nil, fmt.Errorf("cluster: worker %s: hello hash %.12s does not match instance %.12s", m.id, h.Hash, hash)
	}
	m.p, m.hash = p, hash
	m.size = 1 << uint(p.K)
	m.c = make([]uint64, m.size)
	m.psum = make([]uint64, m.size)
	for s := 1; s < m.size; s++ {
		m.c[s] = core.Inf
		low := s & -s
		m.psum[s] = core.SatAdd(m.psum[s&(s-1)], p.Weights[bits.TrailingZeros(uint(low))])
	}
	m.level = 0
	if len(h.Frontier) > 0 {
		snap, err := checkpoint.Decode(h.Frontier)
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %s: hello frontier: %w", m.id, err)
		}
		if snap.Hash != hash {
			return nil, fmt.Errorf("cluster: worker %s: hello frontier is for instance %.12s, want %.12s", m.id, snap.Hash, hash)
		}
		for s := range snap.Frontier.C {
			if bits.OnesCount32(uint32(s)) <= snap.Level {
				m.c[s] = snap.Frontier.C[s]
			}
		}
		m.level = snap.Level
	}
	m.frozen = frozenOver(m.c, m.p.K, m.level)
	return []Message{okMessage(m.id, hash)}, nil
}

// assign computes one level slice and returns it as a Plane message.
func (m *HonestMachine) assign(body []byte) ([]Message, error) {
	var a assignBody
	if err := json.Unmarshal(body, &a); err != nil {
		return nil, fmt.Errorf("cluster: worker %s: assign: %w", m.id, err)
	}
	if a.Level != m.level+1 {
		return nil, fmt.Errorf("cluster: worker %s: assigned level %d with merged frontier at %d", m.id, a.Level, m.level)
	}
	total := core.Binomial(m.p.K, a.Level)
	if a.Lo > a.Hi || a.Hi > total {
		return nil, fmt.Errorf("cluster: worker %s: assigned ranks [%d,%d) of a %d-rank level", m.id, a.Lo, a.Hi, total)
	}
	n := a.Hi - a.Lo
	plane := &checkpoint.Plane{
		Level: a.Level, Lo: a.Lo, Hi: a.Hi,
		FrozenSum: m.frozen,
		WeightSum: checkpoint.FNVInit(),
		C:         make([]uint64, n),
		Choice:    make([]int32, n),
	}
	v := uint32(core.NthSubset(a.Lo, a.Level))
	for i := uint64(0); i < n; i++ {
		plane.C[i], plane.Choice[i] = cellBest(m.p, m.c, m.psum[v], v)
		plane.WeightSum = checkpoint.FNVAdd(plane.WeightSum, m.psum[v])
		c := v & -v
		r := v + c
		v = (r^v)>>2/c | r
	}
	img, err := checkpoint.EncodePlane(plane)
	if err != nil {
		return nil, err
	}
	pb := make([]byte, 8, 8+len(img))
	binary.LittleEndian.PutUint64(pb, a.ID)
	return []Message{{Type: msgPlane, Body: append(pb, img...)}}, nil
}

// merged absorbs one full verified level broadcast by the coordinator — the
// single source of truth for the frontier. The frozen checksum is checked
// first: if the coordinator's merge does not extend the frontier this worker
// computed from, the replicas have diverged and the only safe move is to end
// the session.
func (m *HonestMachine) merged(body []byte) error {
	plane, err := checkpoint.DecodePlane(body)
	if err != nil {
		return fmt.Errorf("cluster: worker %s: merged: %w", m.id, err)
	}
	total := core.Binomial(m.p.K, m.level+1)
	if plane.Level != m.level+1 || plane.Lo != 0 || plane.Hi != total {
		return fmt.Errorf("cluster: worker %s: merged plane level=%d ranks [%d,%d), want full level %d of %d",
			m.id, plane.Level, plane.Lo, plane.Hi, m.level+1, total)
	}
	if plane.FrozenSum != m.frozen {
		return fmt.Errorf("cluster: worker %s: merged frontier checksum %x does not extend local %x — replicas diverged",
			m.id, plane.FrozenSum, m.frozen)
	}
	if plane.Choice == nil {
		return fmt.Errorf("cluster: worker %s: merged plane carries no choices", m.id)
	}
	i := 0
	forEachLevelSubset(m.p.K, plane.Level, func(s uint32) {
		m.c[s] = plane.C[i]
		m.frozen = checkpoint.FNVAdd(m.frozen, plane.C[i])
		i++
	})
	m.level = plane.Level
	return nil
}

func okMessage(id, hash string) Message {
	b, _ := json.Marshal(&helloOKBody{ID: id, Hash: hash}) // two strings; cannot fail
	return Message{Type: msgHelloOK, Body: b}
}

// forEachLevelSubset visits every subset of popcount l of a k-universe in
// Gosper order — rank order, the packing order of planes.
func forEachLevelSubset(k, l int, visit func(s uint32)) {
	if l == 0 {
		visit(0)
		return
	}
	limit := uint32(1) << uint(k)
	v := uint32(1)<<uint(l) - 1
	for v < limit {
		visit(v)
		c := v & -v
		r := v + c
		v = (r^v)>>2/c | r
	}
}

// frozenOver computes the running FNV-1a checksum of a frontier: C over all
// subsets of popcount <= level in (level, Gosper) order.
func frozenOver(c []uint64, k, level int) uint64 {
	h := checkpoint.FNVInit()
	for l := 0; l <= level; l++ {
		forEachLevelSubset(k, l, func(s uint32) {
			h = checkpoint.FNVAdd(h, c[s])
		})
	}
	return h
}

// idleTimeout bounds how long a worker session sits with no traffic at all.
// A live coordinator pings at heartbeat cadence, so only an abandoned
// session (coordinator gone without closing the conn) trips it.
const idleTimeout = 5 * time.Minute

// RunWorker pumps one session: read a message, hand it to the machine, send
// the replies. It returns nil on a clean end (peer closed or Done received)
// and the first transport or protocol error otherwise. The conn is closed on
// return.
func RunWorker(conn net.Conn, m Machine) error {
	defer conn.Close()
	for {
		typ, body, err := readMsg(conn, idleTimeout)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		replies, err := m.Handle(Message{Type: typ, Body: body})
		for _, r := range replies {
			if werr := writeMsg(conn, r.Type, r.Body); werr != nil {
				return werr
			}
		}
		if err != nil {
			if errors.Is(err, errDone) {
				return nil
			}
			return err
		}
	}
}

// Serve accepts sessions until the listener closes, running each on its own
// machine so concurrent coordinators (or a coordinator retrying a solve)
// never share worker state.
func Serve(ln net.Listener, newMachine func() Machine, log *slog.Logger) error {
	if log == nil {
		log = slog.Default()
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go func() {
			defer func() {
				if r := recover(); r != nil {
					log.Error("worker session panic", "panic", r)
					_ = conn.Close()
				}
			}()
			m := newMachine()
			if err := RunWorker(conn, m); err != nil {
				log.Warn("worker session ended", "worker", m.ID(), "err", err)
			}
		}()
	}
}

// Dial connects to the configured worker addresses, best-effort: unreachable
// workers are logged and skipped, and only a fully unreachable fleet is an
// error (ErrNoWorkers) — the serving layer treats that as an engine fault
// and falls back in-process.
func Dial(ctx context.Context, addrs []string, timeout time.Duration, log *slog.Logger) ([]net.Conn, error) {
	if log == nil {
		log = slog.Default()
	}
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	d := net.Dialer{Timeout: timeout}
	var conns []net.Conn
	var lastErr error
	for _, addr := range addrs {
		conn, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			lastErr = err
			log.Warn("cluster worker unreachable", "addr", addr, "err", err)
			continue
		}
		conns = append(conns, conn)
	}
	if len(conns) == 0 {
		if lastErr != nil {
			return nil, fmt.Errorf("%w: %v", ErrNoWorkers, lastErr)
		}
		return nil, ErrNoWorkers
	}
	return conns, nil
}
