package bitvec

import "fmt"

// Word-parallel permutation kernels for the structured routes of the BVM's
// cube-connected-cycles network (see internal/ccc: route structure
// constants). Each kernel realizes a whole class of Gather permutations as a
// handful of shift/mask operations per 64-bit word instead of one table
// lookup per bit; Gather remains the differential-test reference.
//
// All kernels require the relevant block size or sub-word stride to divide
// the 64-bit word size, which holds for every supported CCC geometry
// (Q = 2^r <= 16). They preserve the tail invariant (bits >= Len() zero).

// repeatPattern replicates the low `period` bits of pat across a 64-bit
// word. period must divide 64.
func repeatPattern(period int, pat uint64) uint64 {
	pat &= 1<<uint(period) - 1
	for w := period; w < 64; w *= 2 {
		pat |= pat << uint(w)
	}
	return pat
}

func checkBlock(block int) {
	if block <= 0 || block > 64 || 64%block != 0 {
		panic(fmt.Sprintf("bitvec: block size %d does not divide 64", block))
	}
}

// RotateWithinBlocks sets v[b·B+j] = src[b·B + (j+shift) mod B] for every
// aligned block b of size B = block: the read rotation realizing the CCC
// cycle routes (shift +1 = successor, -1 = predecessor). block must divide
// 64 and v.Len() must be a multiple of block. v may alias src.
func (v *Vector) RotateWithinBlocks(src *Vector, block, shift int) {
	v.rotateWithinBlocks(src, block, shift, ^uint64(0))
}

// RotateWithinBlocksMasked is RotateWithinBlocks restricted to the positions
// selected by the repeating 64-bit pattern sel; unselected bits of v keep
// their old value. v must not alias src (old bits of v are re-read).
func (v *Vector) RotateWithinBlocksMasked(src *Vector, block, shift int, sel uint64) {
	if v == src {
		panic("bitvec: RotateWithinBlocksMasked dst aliases src")
	}
	v.rotateWithinBlocks(src, block, shift, sel)
}

func (v *Vector) rotateWithinBlocks(src *Vector, block, shift int, sel uint64) {
	v.sameLen(src)
	checkBlock(block)
	if v.n%block != 0 {
		panic(fmt.Sprintf("bitvec: length %d not a multiple of block %d", v.n, block))
	}
	s := ((shift % block) + block) % block
	if s == 0 {
		for i, w := range src.words {
			v.words[i] = v.words[i]&^sel | w&sel
		}
		return
	}
	// Destination offset j reads source offset (j+s) mod block: offsets
	// [0, block-s) arrive via >>s, the wrapped tail [block-s, block) via
	// <<(block-s).
	loMask := repeatPattern(block, 1<<uint(block-s)-1)
	hiMask := ^loMask // within-block complement; exact since block divides 64
	up := uint(s)
	down := uint(block - s)
	for i, w := range src.words {
		rot := w>>up&loMask | w<<down&hiMask
		v.words[i] = v.words[i]&^sel | rot&sel
	}
	v.maskTail()
}

// StrideSwap sets v[i] = src[i^stride] for every i: the XOR exchange
// realizing the XS route (stride 1) and the lateral route's per-position
// exchanges (stride Q·2^pos). stride must be a power of two; v.Len() must be
// a multiple of 2·stride. v must not alias src.
func (v *Vector) StrideSwap(src *Vector, stride int) {
	v.StrideSwapMasked(src, stride, ^uint64(0))
}

// StrideSwapMasked is StrideSwap restricted to the positions selected by the
// repeating 64-bit pattern sel; unselected bits of v keep their old value.
// For strides >= 64 the exchange moves whole words, so sel selects the same
// in-word offsets on both sides.
func (v *Vector) StrideSwapMasked(src *Vector, stride int, sel uint64) {
	v.sameLen(src)
	if stride <= 0 || stride&(stride-1) != 0 {
		panic(fmt.Sprintf("bitvec: stride %d is not a positive power of two", stride))
	}
	if v == src {
		panic("bitvec: StrideSwap dst aliases src")
	}
	if v.n%(2*stride) != 0 {
		panic(fmt.Sprintf("bitvec: length %d not a multiple of 2*stride %d", v.n, 2*stride))
	}
	if stride < wordBits {
		// In-word delta swap: positions with the stride bit clear read from
		// i+stride (>>), the others from i-stride (<<).
		lo := repeatPattern(2*stride, 1<<uint(stride)-1)
		hi := lo << uint(stride)
		for i, w := range src.words {
			sw := w>>uint(stride)&lo | w<<uint(stride)&hi
			v.words[i] = v.words[i]&^sel | sw&sel
		}
		v.maskTail()
		return
	}
	// Word-aligned exchange: partner word index is wi XOR stride/64.
	wstride := stride / wordBits
	for wi := range v.words {
		v.words[wi] = v.words[wi]&^sel | src.words[wi^wstride]&sel
	}
	v.maskTail()
}

// ShiftUp1 sets v[i] = src[i-1] for i >= 1 and v[0] = in — the input-chain
// route, which threads all positions in flat order — and returns the bit
// shifted out of the top (src's last bit). v may alias src.
func (v *Vector) ShiftUp1(src *Vector, in bool) bool {
	v.sameLen(src)
	if v.n == 0 {
		return false
	}
	out := src.Get(v.n - 1)
	for i := len(v.words) - 1; i > 0; i-- {
		v.words[i] = src.words[i]<<1 | src.words[i-1]>>(wordBits-1)
	}
	w0 := src.words[0] << 1
	if in {
		w0 |= 1
	}
	v.words[0] = w0
	v.maskTail()
	return out
}

// FillWord sets every word of v to the repeating 64-bit pattern, honoring
// the tail invariant. It is the constant-time constructor for periodic masks
// such as the BVM's in-cycle activation sets.
func (v *Vector) FillWord(pattern uint64) {
	for i := range v.words {
		v.words[i] = pattern
	}
	v.maskTail()
}

// AllOnes reports whether every bit of v is set (vacuously true for length
// 0).
func (v *Vector) AllOnes() bool {
	if v.n == 0 {
		return true
	}
	last := len(v.words) - 1
	for _, w := range v.words[:last] {
		if w != ^uint64(0) {
			return false
		}
	}
	tail := ^uint64(0)
	if r := v.n % wordBits; r != 0 {
		tail = 1<<uint(r) - 1
	}
	return v.words[last] == tail
}
