package bvm

import (
	"fmt"

	"repro/internal/bitvec"
	"repro/internal/stripe"
)

// Striped execution: Exec's word-plane work sharded across a reusable worker
// pool (internal/stripe). The paper's machine is embarrassingly parallel
// across word-planes — every kernel in the route → apply → writeback cycle is
// either pointwise per word or reads only source words outside every other
// shard's destination span (see the bitvec range-kernel contracts) — so each
// Exec dispatches its word range over the pool and merges at a hard barrier
// before any host-visible state (counters, faults, recording, Output) is
// touched. Results are bit-identical to the scalar path and therefore to
// SetReferenceExec, for any worker count and any partition; the certify and
// checkpoint layers above see the same architectural state either way.
//
// Two barriers per routed instruction, one otherwise:
//
//	phase 1  route D into the sD scratch plane (cross-shard *reads* of the
//	         source register are safe; no shard writes outside its span)
//	phase 2  apply truth tables, compute the gate from the pre-instruction
//	         E, and write back — all pointwise, one dispatch
//
// The phases cannot fuse: routing reads neighbor words of srcD (ShiftUp1
// reads word i-1, lateral strides ≥ 64 read word wi^wstride), and srcD may
// alias the destination register (e.g. Mov(dst, Via(dst, RouteI)) in
// LoadViaInput), so writeback in shard s could race the route read in shard
// s+1 without the intervening barrier.

// SetStriped shards Exec across pool whenever registers span at least
// minWords 64-bit words (minWords <= 0 selects DefaultStripeMinWords; small
// machines fall back to the scalar path, where sharding would cost more in
// dispatch than it saves). A nil pool restores pure scalar execution.
// Reference mode (SetReferenceExec) always wins over striping.
func (m *Machine) SetStriped(pool *stripe.Pool, minWords int) {
	if minWords <= 0 {
		minWords = DefaultStripeMinWords
	}
	m.stripePool = pool
	m.stripeMin = minWords
}

// DefaultStripeMinWords is the register width, in words, below which striping
// is not worth the dispatch overhead: at r=3 a register is 32 words (~one
// cache line pair), while r=4's 16384 words amortize the two barriers well.
const DefaultStripeMinWords = 1024

// execStriped is the pool-sharded counterpart of execScalar.
func (m *Machine) execStriped(in Instr) {
	vF := m.reg(in.F)
	srcD := m.reg(in.D.Reg)
	pool := m.stripePool
	wc := m.sD.WordCount()
	shards := min(pool.Workers(), wc)

	var vD *bitvec.Vector
	switch in.D.Via {
	case Local:
		vD = srcD
	case RouteI:
		// Host bookkeeping first: the emitted bit and the external input bit
		// are read from pre-instruction state, outside the parallel region.
		m.Output = append(m.Output, srcD.Get(m.Top.N-1))
		inBit := m.nextInput()
		pool.Run(shards, func(s int) {
			lo, hi := stripe.Range(wc, shards, s)
			m.sD.ShiftUp1Range(srcD, inBit, lo, hi)
		})
		vD = m.sD
	default:
		via := in.D.Via
		q := m.Top.Q
		pool.Run(shards, func(s int) {
			lo, hi := stripe.Range(wc, shards, s)
			switch via {
			case RouteS:
				m.sD.RotateWithinBlocksRange(srcD, q, 1, lo, hi)
			case RouteP:
				m.sD.RotateWithinBlocksRange(srcD, q, -1, lo, hi)
			case RouteXS:
				m.sD.StrideSwapRange(srcD, 1, lo, hi)
			case RouteXP:
				m.sD.RotateWithinBlocksMaskedRange(srcD, q, 1, m.oddSel, lo, hi)
				m.sD.RotateWithinBlocksMaskedRange(srcD, q, -1, ^m.oddSel, lo, hi)
			case RouteL:
				for p := 0; p < q; p++ {
					m.sD.StrideSwapMaskedRange(srcD, m.Top.LateralStride(p), m.posSel[p], lo, hi)
				}
			default:
				panic(fmt.Sprintf("bvm: unknown route %v", via))
			}
		})
		if via == RouteL && len(m.brokenLat) > 0 {
			for pe := range m.brokenLat {
				m.sD.Set(pe, false)
			}
		}
		vD = m.sD
	}

	writeB := in.GTT != TTB
	eDest := in.Dst.Kind == KindE
	var dst *bitvec.Vector
	if !eDest {
		dst = m.reg(in.Dst)
	}
	fastPath := in.Cond == nil && m.eAllOnes
	var actMask *bitvec.Vector
	if !fastPath {
		// Mask composition memoizes into actCache — do it on the host, once,
		// before fanning out.
		actMask = m.activationMask(in.Cond)
	}
	pool.Run(shards, func(s int) {
		lo, hi := stripe.Range(wc, shards, s)
		// Results first: every read of vF/vD/B in this span happens before
		// any write to the span, so destination aliasing is safe exactly as
		// in the scalar path.
		m.sRes.Apply3Range(in.FTT, vF, vD, m.b, lo, hi)
		if writeB {
			m.sResB.Apply3Range(in.GTT, vF, vD, m.b, lo, hi)
		}
		switch {
		case fastPath:
			if eDest {
				m.e.CopyFromRange(m.sRes, lo, hi)
			} else {
				dst.CopyFromRange(m.sRes, lo, hi)
			}
			if writeB {
				m.b.CopyFromRange(m.sResB, lo, hi)
			}
		default:
			// Gate from the pre-instruction E, before this span of E can be
			// overwritten below; pointwise, so no cross-shard hazard.
			m.sGate.AndRange(actMask, m.e, lo, hi)
			if eDest {
				// E is always written, ignoring both masks.
				m.e.CopyFromRange(m.sRes, lo, hi)
			} else {
				dst.MaskedCopyRange(m.sGate, m.sRes, lo, hi)
			}
			if writeB {
				m.b.MaskedCopyRange(m.sGate, m.sResB, lo, hi)
			}
		}
	})
	if eDest {
		m.noteEWrite()
	}
}
