package bvmcheck

import (
	"fmt"
	"strings"

	"repro/internal/bvm"
)

// Static cost model. The BVM is SIMD with unit-cost instructions: every
// instruction takes one machine cycle and moves (or computes on) one bit per
// PE. The static estimate therefore predicts the dynamic counters of a
// replay exactly — Cost.CheckAgainst asserts instruction-for-instruction and
// route-for-route agreement with Machine.InstrCount / Machine.RouteCount —
// and extends them with derived totals: bit operations (instructions × PEs)
// and link traffic (routed instructions × PEs, each moving one bit per PE
// across a physical link).

// routeOrder fixes the rendering/JSON key order, local first.
var routeOrder = []bvm.Route{bvm.Local, bvm.RouteS, bvm.RouteP, bvm.RouteL, bvm.RouteXS, bvm.RouteXP, bvm.RouteI}

// routeName is the stable spelling of a route in reports ("local", "S", ...).
func routeName(r bvm.Route) string {
	if r == bvm.Local {
		return "local"
	}
	return strings.TrimPrefix(r.String(), ".")
}

// Cost is the static cost estimate of a program.
type Cost struct {
	// Instructions is the machine time in cycles (one instruction each).
	Instructions int64 `json:"instructions"`
	// ByRoute counts instructions per D-operand route.
	ByRoute map[string]int64 `json:"by_route"`
	// Routed counts instructions whose D operand crosses a link.
	Routed int64 `json:"routed"`
	// InputBits is the number of external input bits the program consumes
	// and OutputBits the number it emits: one each per RouteI instruction.
	InputBits  int64 `json:"input_bits"`
	OutputBits int64 `json:"output_bits"`
	// BitOps is the machine-wide bit-operation total: instructions × PEs.
	BitOps int64 `json:"bit_ops"`
	// LinkBits is the total link traffic in bits: routed instructions × PEs.
	LinkBits int64 `json:"link_bits"`
}

// EstimateCost computes the static cost of a program on a cfg-sized machine.
func EstimateCost(p *bvm.Program, cfg Config) Cost {
	c := Cost{ByRoute: make(map[string]int64)}
	for _, in := range p.Instrs {
		c.Instructions++
		c.ByRoute[routeName(in.D.Via)]++
		if in.D.Via != bvm.Local {
			c.Routed++
		}
	}
	c.InputBits = c.ByRoute[routeName(bvm.RouteI)]
	c.OutputBits = c.InputBits
	n := int64(cfg.Top.N)
	c.BitOps = c.Instructions * n
	c.LinkBits = c.Routed * n
	return c
}

// routeSummary renders the per-route counts compactly in fixed order.
func (c Cost) routeSummary() string {
	var parts []string
	for _, r := range routeOrder {
		if n := c.ByRoute[routeName(r)]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s:%d", routeName(r), n))
		}
	}
	if len(parts) == 0 {
		return "empty"
	}
	return strings.Join(parts, " ")
}

// CheckAgainst compares the static estimate with a machine's dynamic
// counters after a replay (ResetCounters before Replay, then call this).
// The BVM's unit-cost execution model means any mismatch is a bug — in the
// recording, the replay, or this checker.
func (c Cost) CheckAgainst(m *bvm.Machine) error {
	if m.InstrCount != c.Instructions {
		return fmt.Errorf("bvmcheck: static instruction count %d != dynamic %d", c.Instructions, m.InstrCount)
	}
	dyn := m.RouteCount()
	for _, r := range routeOrder {
		if got, want := dyn[r], c.ByRoute[routeName(r)]; got != want {
			return fmt.Errorf("bvmcheck: route %s: static count %d != dynamic %d", routeName(r), want, got)
		}
	}
	var dynTotal int64
	for r, n := range dyn {
		if !knownRoute(r) {
			return fmt.Errorf("bvmcheck: dynamic counters include unknown route %d", uint8(r))
		}
		dynTotal += n
	}
	if dynTotal != c.Instructions {
		return fmt.Errorf("bvmcheck: dynamic route counts sum to %d, want %d", dynTotal, c.Instructions)
	}
	return nil
}
