package certify

import (
	"math/rand"
	"testing"

	"repro/internal/core"
)

// Mutation classes for the certifier-as-oracle fuzz: each takes a valid
// (problem, tree) pair and damages the tree in one characteristic way. Every
// class constructs a mutation the certifier is *guaranteed* to be able to
// detect (the mutators skip configurations where the damage would be a
// no-op), so any clean report is a certifier bug.
const (
	mutReportedCost = iota // perturb the claimed C(U)
	mutReparent            // point a child link at the root (re-parented node)
	mutDropLeaf            // remove a treatment leaf
	mutSwapBranches        // swap a test node's Pos and Neg subtrees
	mutWrongAction         // relabel a node with a different action
	mutPerturbSet          // flip one bit of a node's candidate set
	mutCount
)

// applyMutation damages the tree (or returns a perturbed reported cost) and
// reports whether the mutation was applicable to this tree.
func applyMutation(rng *rand.Rand, p *core.Problem, root *core.Node, reported uint64, class int) (*core.Node, uint64, bool) {
	nodes := collect(root)
	switch class {
	case mutReportedCost:
		return root, reported + 1, true
	case mutReparent:
		// Any node's Neg link re-pointed at the root violates the child-set
		// equation: the root's set is the full universe, and every legal
		// child set is a strict subset of its parent's.
		n := nodes[rng.Intn(len(nodes))]
		n.Neg = root
		return root, reported, true
	case mutDropLeaf:
		// Detach a leaf from its parent. A legal tree never has a nil child
		// where the action equations demand one.
		for _, parent := range shuffled(rng, nodes) {
			if parent.Pos != nil && parent.Pos.Pos == nil && parent.Pos.Neg == nil {
				parent.Pos = nil
				return root, reported, true
			}
			if parent.Neg != nil && parent.Neg.Pos == nil && parent.Neg.Neg == nil {
				parent.Neg = nil
				return root, reported, true
			}
		}
		return root, reported, false // single-node tree: no parent to damage
	case mutSwapBranches:
		// A test's Pos and Neg cover disjoint non-empty sets, so swapping
		// them always breaks the S∩T / S−T equations.
		for _, n := range shuffled(rng, nodes) {
			if !p.Actions[n.Action].Treatment {
				n.Pos, n.Neg = n.Neg, n.Pos
				return root, reported, true
			}
		}
		return root, reported, false // all-treatment chain
	case mutWrongAction:
		// Relabel with an action whose kind or induced split differs — the
		// existing children no longer satisfy the new action's equations.
		for _, n := range shuffled(rng, nodes) {
			a := p.Actions[n.Action]
			for _, j := range rng.Perm(len(p.Actions)) {
				b := p.Actions[j]
				if j == n.Action || (b.Treatment == a.Treatment && b.Set&n.Set == a.Set&n.Set) {
					continue
				}
				n.Action = j
				return root, reported, true
			}
		}
		return root, reported, false // every action splits identically
	case mutPerturbSet:
		// Flip one universe bit of a node's set: the root stops covering the
		// universe, or a child stops matching its parent's equation.
		n := nodes[rng.Intn(len(nodes))]
		n.Set ^= 1 << uint(rng.Intn(p.K))
		return root, reported, true
	}
	return root, reported, false
}

func shuffled(rng *rand.Rand, nodes []*core.Node) []*core.Node {
	out := append([]*core.Node(nil), nodes...)
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// FuzzTreeMutations drives the certifier as an oracle: for a random valid
// instance and its true optimal tree, every applicable mutation class must be
// detected by certify.Tree. Run with `go test -fuzz FuzzTreeMutations` for
// open-ended exploration; the seeded corpus covers every class at several
// universe sizes as part of the normal test suite.
func FuzzTreeMutations(f *testing.F) {
	for class := 0; class < mutCount; class++ {
		for seed := int64(1); seed <= 4; seed++ {
			f.Add(seed, class)
		}
	}
	f.Fuzz(func(t *testing.T, seed int64, class int) {
		if class < 0 || class >= mutCount {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(5)
		p := randomProblem(rng, k, 1+rng.Intn(6))
		sol, err := core.Solve(p)
		if err != nil || !sol.Adequate() {
			return
		}
		root, err := sol.Tree(p)
		if err != nil {
			t.Fatal(err)
		}
		// Sanity: the untouched tree certifies.
		if r := Tree(p, cloneTree(root), sol.Cost); !r.OK() {
			t.Fatalf("valid tree rejected before mutation: %v", r.Violations)
		}
		mutated, reported, ok := applyMutation(rng, p, cloneTree(root), sol.Cost, class)
		if !ok {
			return // class not applicable to this tree shape
		}
		if r := Tree(p, mutated, reported); r.OK() {
			t.Fatalf("mutation class %d escaped certification (seed %d, k %d)", class, seed, k)
		}
	})
}
