package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"all", "speedup", "slowdown", "fig1"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("list missing %q: %s", want, out.String())
		}
	}
}

func TestRunSingleByNameAndID(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-run", "links"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E11") {
		t.Errorf("links output: %s", out.String())
	}
	out.Reset()
	if err := run([]string{"-run", "E6"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 7") {
		t.Errorf("E6 output: %s", out.String())
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var out strings.Builder
	if err := run([]string{"-run", "fig6", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "0000 -> 0001") {
		t.Errorf("file output: %s", data)
	}
}

// TestRunToFullDevice pins the flush/close error path: writes to /dev/full
// succeed into the buffer but fail with ENOSPC at Flush, which run must
// surface instead of silently truncating the report (the old defer f.Close()
// discarded it).
func TestRunToFullDevice(t *testing.T) {
	if _, err := os.Stat("/dev/full"); err != nil {
		t.Skip("/dev/full not available")
	}
	var out strings.Builder
	err := run([]string{"-run", "fig6", "-o", "/dev/full"}, &out)
	if err == nil {
		t.Fatal("writing to /dev/full reported success")
	}
	if !strings.Contains(err.Error(), "/dev/full") {
		t.Errorf("error does not name the output file: %v", err)
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -run accepted")
	}
	if err := run([]string{"-run", "bogus"}, &out); err == nil {
		t.Error("unknown experiment accepted")
	}
}
