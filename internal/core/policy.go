package core

import (
	"encoding/json"
	"fmt"
)

// Policy is the deployable artifact a solved instance produces: for every
// candidate set reachable under optimal play, the action to take. Unlike the
// raw Solution (2^K entries), a Policy stores only reachable states — the
// object a clinic or repair depot would actually ship — and serializes to
// JSON for storage next to the instance.
type Policy struct {
	K       int
	Actions []Action
	// choices maps reachable candidate sets to the action to apply there.
	choices map[Set]int32
}

// policyWire is the JSON form.
type policyWire struct {
	K       int              `json:"k"`
	Actions []wireAction     `json:"actions"`
	Choices map[string]int32 `json:"choices"`
}

type wireAction struct {
	Name      string `json:"name,omitempty"`
	Objects   []int  `json:"objects"`
	Cost      uint64 `json:"cost"`
	Treatment bool   `json:"treatment,omitempty"`
}

// NewPolicy builds a policy from a solved instance, pruned to the states
// reachable from the full universe under the solution's choices. Fails on
// inadequate instances.
func NewPolicy(p *Problem, sol *Solution) (*Policy, error) {
	if !sol.Adequate() {
		return nil, fmt.Errorf("core: inadequate instance has no policy")
	}
	pol := &Policy{K: p.K, Actions: append([]Action(nil), p.Actions...), choices: make(map[Set]int32)}
	var walk func(s Set) error
	walk = func(s Set) error {
		if s == 0 {
			return nil
		}
		if _, done := pol.choices[s]; done {
			return nil
		}
		idx := sol.Choice[s]
		if idx < 0 {
			return fmt.Errorf("core: no choice recorded for reachable set %v", s)
		}
		pol.choices[s] = idx
		a := p.Actions[idx]
		if !a.Treatment {
			if err := walk(s & a.Set); err != nil {
				return err
			}
		}
		return walk(s &^ a.Set)
	}
	if err := walk(Universe(p.K)); err != nil {
		return nil, err
	}
	return pol, nil
}

// ActionAt returns the action index for a candidate set, with ok=false for
// states the policy never reaches.
func (pol *Policy) ActionAt(s Set) (int, bool) {
	idx, ok := pol.choices[s]
	return int(idx), ok
}

// States returns the number of reachable decision states stored.
func (pol *Policy) States() int { return len(pol.choices) }

// Tree reconstructs the procedure tree the policy encodes. Choices that do
// not strictly shrink the candidate set — a test with S∩T_i ∈ {∅, S}, a
// treatment with S∩T_i = ∅ — are rejected: no optimal policy contains one
// (the DP prices them at infinity), and recursing on them would never
// terminate. Policies arrive from untrusted JSON (serve's /v1/eval), so this
// is a load-bearing guard, not an assertion.
func (pol *Policy) Tree() (*Node, error) {
	var build func(s Set) (*Node, error)
	build = func(s Set) (*Node, error) {
		if s == 0 {
			return nil, nil
		}
		idx, ok := pol.choices[s]
		if !ok {
			return nil, fmt.Errorf("core: policy has no action for set %v", s)
		}
		a := pol.Actions[idx]
		inter, diff := s&a.Set, s&^a.Set
		if a.Treatment {
			if inter == 0 {
				return nil, fmt.Errorf("core: policy treatment %d treats nothing in set %v", idx, s)
			}
		} else if inter == 0 || diff == 0 {
			return nil, fmt.Errorf("core: policy test %d does not split set %v", idx, s)
		}
		n := &Node{Action: int(idx), Set: s}
		var err error
		if !a.Treatment {
			if n.Pos, err = build(inter); err != nil {
				return nil, err
			}
		}
		if n.Neg, err = build(diff); err != nil {
			return nil, err
		}
		return n, nil
	}
	return build(Universe(pol.K))
}

// MarshalJSON serializes the policy.
func (pol *Policy) MarshalJSON() ([]byte, error) {
	w := policyWire{K: pol.K, Choices: make(map[string]int32, len(pol.choices))}
	for _, a := range pol.Actions {
		w.Actions = append(w.Actions, wireAction{
			Name: a.Name, Objects: a.Set.Objects(), Cost: a.Cost, Treatment: a.Treatment,
		})
	}
	for s, idx := range pol.choices {
		w.Choices[fmt.Sprintf("%x", uint32(s))] = idx
	}
	return json.Marshal(w)
}

// UnmarshalJSON deserializes and validates a policy.
func (pol *Policy) UnmarshalJSON(data []byte) error {
	var w policyWire
	if err := json.Unmarshal(data, &w); err != nil {
		return fmt.Errorf("core: parsing policy: %w", err)
	}
	if w.K < 1 || w.K > MaxK {
		return fmt.Errorf("core: policy universe size %d invalid", w.K)
	}
	pol.K = w.K
	pol.Actions = nil
	for _, a := range w.Actions {
		for _, o := range a.Objects {
			if o < 0 || o >= w.K {
				return fmt.Errorf("core: policy action references object %d outside universe", o)
			}
		}
		pol.Actions = append(pol.Actions, Action{
			Name: a.Name, Set: SetOf(a.Objects...), Cost: a.Cost, Treatment: a.Treatment,
		})
	}
	pol.choices = make(map[Set]int32, len(w.Choices))
	for key, idx := range w.Choices {
		var s uint32
		if _, err := fmt.Sscanf(key, "%x", &s); err != nil {
			return fmt.Errorf("core: bad policy state key %q", key)
		}
		if Set(s)&^Universe(w.K) != 0 {
			return fmt.Errorf("core: policy state %x outside universe", s)
		}
		if idx < 0 || int(idx) >= len(pol.Actions) {
			return fmt.Errorf("core: policy action index %d out of range", idx)
		}
		pol.choices[Set(s)] = idx
	}
	return nil
}
