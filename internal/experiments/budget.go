package experiments

import (
	"fmt"

	"repro/internal/bvmtt"
	"repro/internal/core"
	"repro/internal/workload"
)

// InstructionBudget is experiment E18: where the BVM TT program's machine
// time actually goes, phase by phase, on 64- and 2048-PE machines. The
// paper's complexity statement O(k·w·(k + log N)) covers the rounds; this
// table shows the one-time costs around them (processor-ID, input streaming,
// the p(S) subset sums and the TP multiplication) and how the rounds
// dominate as the instance grows.
func InstructionBudget() (*Table, error) {
	t := &Table{
		ID:         "E18",
		Title:      "BVM TT program instruction budget by phase",
		PaperClaim: "parallel time O(k·w·(k+log N)) bit-steps (§1); control-bit generation is cheap (§4)",
		Header: []string{"machine", "k", "width", "processor-id", "load",
			"p(S)", "tp-multiply", "rounds", "total"},
	}
	cases := []*core.Problem{
		workload.SystematicBiology(3, 3), // fits the 64-PE machine
		workload.MedicalDiagnosis(8, 6),  // needs the 2048-PE machine
	}
	for _, p := range cases {
		res, err := bvmtt.Solve(p, 0)
		if err != nil {
			return nil, fmt.Errorf("k=%d: %w", p.K, err)
		}
		row := []any{fmt.Sprintf("%d PEs (r=%d)", res.PEs, res.MachineR), p.K, res.Width}
		var total int64
		for _, ph := range res.Phases {
			row = append(row, ph.Instructions)
			total += ph.Instructions
		}
		row = append(row, total)
		t.AddRow(row...)
	}
	t.Notes = append(t.Notes,
		"load streams the problem through the input chain at one instruction per PE per register plane",
		"rounds = the k iterations of the §6 algorithm: mark propagation, e-loop, combine, minimization")
	return t, nil
}
