package certify

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
)

// This file extends the certifier past exact answers: a GapCertificate
// witnesses that a procedure tree's re-priced cost is within a claimed
// multiplicative factor of the optimum, using a lower bound on C(U) that the
// certifier derives from first principles — never from the solver under
// test. It is what lets the bounded-suboptimality plane (internal/approx)
// stay inside the certify-before-cache discipline: an approximate answer is
// cacheable and servable exactly when its gap claim survives independent
// re-pricing and re-bounding.

// Gap-certification violation kinds, extending the exact-answer set in
// certify.go.
const (
	// BadGap: the re-priced tree cost exceeds gap · lower-bound — the
	// suboptimality claim does not hold.
	BadGap Kind = "gap"
	// BadBound: the bound side of the claim is wrong — an inadequacy claim
	// for a coverable instance, or a lower bound of Inf alongside a valid
	// tree.
	BadBound Kind = "bound"
)

// GapScale is the fixed-point denominator for suboptimality ratios: a gap of
// GapScale (1000) claims optimality, 1500 claims cost ≤ 1.5 · optimum.
// Integer milli-units keep the certifier's comparison exact — no float
// rounding can flip an accept into a reject across platforms.
const GapScale = 1000

// LowerBound derives a certified lower bound on C(U) from the instance
// alone, in O(N·K) with no 2^K state — computable even for instances far
// past any exact-DP budget. It is the maximum of two bounds:
//
//   - treatment bound: every object j's procedure path ends with a
//     treatment covering j (that is what curing j means), and that final
//     action is paid at a candidate set still containing j, so the run cost
//     charged against j is at least P_j · min cost over treatments covering
//     j. Summing over objects bounds the expected cost.
//
//   - information bound: expected cost is Σ_n t(n)·p(S_n) over the tree's
//     nodes, ≥ cmin · Σ_n p(S_n); and Σ_n p(S_n) = Σ_j P_j·d_j, where d_j
//     counts the actions on object j's run (j stays in the candidate set
//     through its final treatment, so it is charged at every one). The
//     terminal "cured here" events are the leaves of a binary outcome tree
//     (tests branch on the outcome; treatments branch cured-exit vs
//     continue), i.e. a prefix-free code over the terminal parts, and every
//     part lies inside one treatment's set, so its mass is at most
//     m = max_i p(T_i). The noiseless-coding bound then gives weighted
//     depth Σ_j P_j·d_j ≥ p(U)·log2(p(U)/m) > p(U)·b for the largest
//     integer b with m·2^b < p(U), hence cost ≥ cmin · p(U) · b.
//
// Returns core.Inf exactly when some object has no covering treatment — the
// inadequate instances, where no successful procedure exists at any cost.
func LowerBound(p *core.Problem) uint64 {
	u := core.Universe(p.K)
	pU := psum(p, u)
	var treat uint64
	for j := 0; j < p.K; j++ {
		tmin := core.Inf
		for _, a := range p.Actions {
			if a.Treatment && a.Set.Has(j) && a.Cost < tmin {
				tmin = a.Cost
			}
		}
		if tmin == core.Inf {
			return core.Inf // uncovered object: no successful procedure
		}
		treat = core.SatAdd(treat, core.SatMul(p.Weights[j], tmin))
	}
	info := infoBound(p, u, pU)
	return max(treat, info)
}

// infoBound is the information-theoretic half of LowerBound, at an arbitrary
// candidate set s with mass ps: cmin · p(s) · b, where b is the largest
// number of strict doublings of the largest single-treatment mass that stays
// under p(s). Zero when any action is free, when s is massless, or when one
// treatment already covers (almost) all the mass.
func infoBound(p *core.Problem, s core.Set, ps uint64) uint64 {
	if ps == 0 {
		return 0
	}
	cmin := core.Inf
	var maxMass uint64
	for _, a := range p.Actions {
		if a.Cost < cmin {
			cmin = a.Cost
		}
		if a.Treatment {
			if m := psum(p, a.Set&s); m > maxMass {
				maxMass = m
			}
		}
	}
	if cmin == 0 || cmin == core.Inf || maxMass == 0 {
		return 0
	}
	var b uint64
	for b < 64 && core.SatMul(maxMass, uint64(1)<<uint(b+1)) < ps {
		b++
	}
	return core.SatMul(cmin, core.SatMul(ps, b))
}

// CheckInadequate certifies a claimed inadequate answer without any DP
// table: a validated instance admits a successful procedure iff every object
// is covered by at least one treatment (uncovered objects can never be
// cured; fully covered universes are discharged by any treatment chain), so
// one uncovered object is a complete finite witness of inadequacy.
func CheckInadequate(p *core.Problem) *Report {
	r := &Report{}
	for j := 0; j < p.K; j++ {
		covered := false
		for _, a := range p.Actions {
			if a.Treatment && a.Set.Has(j) {
				covered = true
				break
			}
		}
		if !covered {
			return r // witness found: object j is untreatable
		}
	}
	r.add(Violation{Kind: BadBound, Action: -1,
		Detail: "claimed inadequate, but every object is covered by a treatment — a successful procedure exists"})
	return r
}

// GapCertificate is an unforgeable witness that a (problem, tree, cost,
// gap) quadruple passed gap certification: the tree is a structurally valid
// successful procedure whose bottom-up re-price equals cost, and
// cost · GapScale ≤ gapMilli · LowerBound(problem). Like Certificate, only
// this package can mint one, so code that demands a *GapCertificate — the
// serving layer's approximate path — can only ever be handed answers whose
// quality claim was independently verified.
type GapCertificate struct {
	problem    *core.Problem
	root       *core.Node
	cost       uint64
	lowerBound uint64
	gapMilli   uint64
}

// CertifyGap checks the quadruple and mints a certificate, or reports why
// not. The lower bound is recomputed here from the instance — a solver's
// claimed bound is never trusted — and the gap inequality is evaluated in
// exact 128-bit arithmetic.
func CertifyGap(p *core.Problem, root *core.Node, cost, gapMilli uint64) (*GapCertificate, error) {
	if p == nil {
		return nil, fmt.Errorf("certify: nil problem")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rep := Tree(p, root, cost); !rep.OK() {
		return nil, rep.Err()
	}
	lb := LowerBound(p)
	if lb == core.Inf {
		// Tree() just proved a successful procedure exists, so every object
		// is covered and LowerBound cannot be Inf; reaching here means the
		// bound computation itself is broken. Fail closed.
		r := &Report{}
		r.add(Violation{Kind: BadBound, Action: -1,
			Detail: "lower bound Inf for an instance with a valid procedure tree"})
		return nil, r.Err()
	}
	if !ratioLE(cost, gapMilli, lb) {
		r := &Report{}
		r.add(Violation{Kind: BadGap, Action: -1, Got: cost, Want: lb,
			Detail: fmt.Sprintf("re-priced cost %d exceeds gap %d.%03d × lower bound %d",
				cost, gapMilli/GapScale, gapMilli%GapScale, lb)})
		return nil, r.Err()
	}
	return &GapCertificate{problem: p, root: root, cost: cost, lowerBound: lb, gapMilli: gapMilli}, nil
}

// Problem returns the certified problem.
func (c *GapCertificate) Problem() *core.Problem { return c.problem }

// Root returns the certified procedure tree.
func (c *GapCertificate) Root() *core.Node { return c.root }

// Cost returns the re-priced tree cost the certificate covers.
func (c *GapCertificate) Cost() uint64 { return c.cost }

// LowerBound returns the certified lower bound on the optimum.
func (c *GapCertificate) LowerBound() uint64 { return c.lowerBound }

// GapMilli returns the certified suboptimality ratio in milli-units
// (GapScale = optimal).
func (c *GapCertificate) GapMilli() uint64 { return c.gapMilli }

// ratioLE reports cost · GapScale ≤ gapMilli · lb without overflow: both
// products are formed exactly in 128 bits. Saturated operands (core.Inf)
// participate as their literal values, which keeps the comparison
// conservative in the only direction that matters — an overstated cost can
// only cause a reject, never an accept.
func ratioLE(cost, gapMilli, lb uint64) bool {
	hi1, lo1 := bits.Mul64(cost, GapScale)
	hi2, lo2 := bits.Mul64(gapMilli, lb)
	return hi1 < hi2 || (hi1 == hi2 && lo1 <= lo2)
}

// GapFor returns the smallest gapMilli for which CertifyGap would accept a
// cost against a lower bound: ceil(cost · GapScale / lb), GapScale when the
// cost is zero, and core.Inf when no finite claim can hold (a positive cost
// over a zero bound) or the quotient leaves 64 bits. Pure arithmetic — it
// certifies nothing on its own.
func GapFor(cost, lowerBound uint64) uint64 {
	if cost == 0 {
		return GapScale
	}
	if lowerBound == 0 || cost == core.Inf {
		return core.Inf
	}
	hi, lo := bits.Mul64(cost, GapScale)
	if hi >= lowerBound {
		return core.Inf // quotient would not fit in 64 bits
	}
	q, r := bits.Div64(hi, lo, lowerBound)
	if r > 0 {
		if q == core.Inf {
			return core.Inf
		}
		q++
	}
	return q
}
