package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/workload"
)

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Logger == nil {
		cfg.Logger = testLogger()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func instanceJSON(t *testing.T, p *core.Problem) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := instio.Write(&buf, p, ""); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postSolve(t *testing.T, ts *httptest.Server, query string, body []byte) (*SolveResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/solve"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, resp.StatusCode
	}
	var sr SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return &sr, resp.StatusCode
}

// permuted returns a copy of p with its actions in a random order, to
// exercise the order-normalized cache key.
func permuted(rng *rand.Rand, p *core.Problem) *core.Problem {
	c := p.Clone()
	rng.Shuffle(len(c.Actions), func(i, j int) {
		c.Actions[i], c.Actions[j] = c.Actions[j], c.Actions[i]
	})
	return c
}

func TestCanonicalHashIgnoresActionOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := workload.MedicalDiagnosis(3, 8)
	h1, err := Hash(Canonicalize(p))
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 5; trial++ {
		h2, err := Hash(Canonicalize(permuted(rng, p)))
		if err != nil {
			t.Fatal(err)
		}
		if h2 != h1 {
			t.Fatalf("permuted instance hashed to %s, want %s", h2, h1)
		}
	}
	// A genuinely different instance hashes differently.
	q := p.Clone()
	q.Weights[0]++
	h3, err := Hash(Canonicalize(q))
	if err != nil {
		t.Fatal(err)
	}
	if h3 == h1 {
		t.Fatal("distinct instances collided")
	}
}

func TestLRUCacheEviction(t *testing.T) {
	c := newLRU(2, 0)
	a := &cacheEntry{hash: "a"}
	b := &cacheEntry{hash: "b"}
	d := &cacheEntry{hash: "d"}
	c.add(a)
	c.add(b)
	if c.get("a") == nil {
		t.Fatal("a evicted too early")
	}
	c.add(d) // "b" is now least recently used
	if c.get("b") != nil {
		t.Fatal("lru entry not evicted")
	}
	if c.get("a") == nil || c.get("d") == nil {
		t.Fatal("wrong entry evicted")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}
}

func TestSolveMatchesCoreAcrossEngines(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := workload.MedicalDiagnosis(11, 6)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	body := instanceJSON(t, p)
	for _, engine := range []string{"seq", "parallel", "lockstep", "goroutine", "ccc", "bvm"} {
		sr, status := postSolve(t, ts, "?engine="+engine, body)
		if status != http.StatusOK {
			t.Fatalf("engine %s: status %d", engine, status)
		}
		if !sr.Adequate || sr.Cost == nil || *sr.Cost != want.Cost {
			t.Fatalf("engine %s: got %+v, want cost %d", engine, sr, want.Cost)
		}
	}
}

func TestSolveCacheHitAndPermutedRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	rng := rand.New(rand.NewSource(21))
	p := workload.Logistics(13, 7, 3)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}

	first, status := postSolve(t, ts, "", instanceJSON(t, p))
	if status != http.StatusOK || first.Cached {
		t.Fatalf("first solve: status %d cached %v", status, first.Cached)
	}
	for trial := 0; trial < 3; trial++ {
		sr, status := postSolve(t, ts, "", instanceJSON(t, permuted(rng, p)))
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if !sr.Cached {
			t.Fatalf("permuted re-ask %d missed the cache", trial)
		}
		if sr.InstanceHash != first.InstanceHash {
			t.Fatalf("hash changed across permutations")
		}
		if *sr.Cost != want.Cost {
			t.Fatalf("cached cost %d, want %d", *sr.Cost, want.Cost)
		}
	}
	if got := s.Metrics().Solves.Load(); got != 1 {
		t.Fatalf("solver ran %d times, want 1", got)
	}
	if got := s.Metrics().CacheHits.Load(); got != 3 {
		t.Fatalf("cache hits = %d, want 3", got)
	}
	if s.CacheLen() != 1 {
		t.Fatalf("cache holds %d entries, want 1", s.CacheLen())
	}
}

func TestSolveTreeAndFirstAction(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := workload.BinaryTestingUniform(8, 40)
	sr, status := postSolve(t, ts, "?tree=1&greedy=1", instanceJSON(t, p))
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if sr.Tree == "" || !strings.Contains(sr.Tree, "test") {
		t.Fatalf("tree missing: %q", sr.Tree)
	}
	if sr.FirstAction == "" {
		t.Fatal("first action missing")
	}
	if sr.Greedy == nil || *sr.Greedy < *sr.Cost {
		t.Fatalf("greedy %v vs optimal %d", sr.Greedy, *sr.Cost)
	}
}

func TestSolveRejectsOversizedWith422(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxK: 6})
	p := workload.Random(3, 8, 4, 4) // K=8 > MaxK=6
	if _, status := postSolve(t, ts, "", instanceJSON(t, p)); status != http.StatusUnprocessableEntity {
		t.Fatalf("oversized instance: status %d, want 422", status)
	}
	// Engine-specific budget: a K=6 instance fits seq but not the 2^11-PE
	// bit-level bvm cap once actions push the dimension over MaxDim.
	q := workload.Random(4, 6, 40, 10) // 56 actions → logN=6 → dim=12 > 11
	if _, status := postSolve(t, ts, "?engine=bvm", instanceJSON(t, q)); status != http.StatusUnprocessableEntity {
		t.Fatalf("bvm-oversized instance: status %d, want 422", status)
	}
	if got := s.Metrics().RejectOversize.Load(); got != 2 {
		t.Fatalf("reject_oversize = %d, want 2", got)
	}
	if got := s.Metrics().Solves.Load(); got != 0 {
		t.Fatalf("oversized instances reached a solver (%d runs)", got)
	}
}

func TestSolveBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, tc := range map[string]struct {
		query string
		body  string
	}{
		"malformed json":  {"", "{nope"},
		"invalid weights": {"", `{"weights": [], "actions": []}`},
		"unknown engine":  {"?engine=quantum", `{"weights":[1,1],"actions":[{"objects":[0],"cost":1,"treatment":true},{"objects":[1],"cost":1,"treatment":true}]}`},
		"bad timeout":     {"?timeout_ms=never", `{"weights":[1,1],"actions":[{"objects":[0],"cost":1,"treatment":true},{"objects":[1],"cost":1,"treatment":true}]}`},
	} {
		if _, status := postSolve(t, ts, tc.query, []byte(tc.body)); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}
}

func TestSolveInadequateInstance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// No treatment can reach object 1: C(U) = Inf.
	body := []byte(`{"weights":[5,5],"actions":[{"objects":[0],"cost":1,"treatment":true},{"objects":[0],"cost":2}]}`)
	sr, status := postSolve(t, ts, "", body)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if sr.Adequate || sr.Cost != nil || sr.Tree != "" {
		t.Fatalf("inadequate instance misreported: %+v", sr)
	}
}

func TestEvalPolicyRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := workload.FaultLocation(17, 7, 3)
	sol, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewPolicy(p, sol)
	if err != nil {
		t.Fatal(err)
	}
	req, err := json.Marshal(map[string]any{"policy": pol, "weights": p.Weights})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/eval", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er EvalResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.Cost != sol.Cost {
		t.Fatalf("eval cost %d, want %d", er.Cost, sol.Cost)
	}
	if er.States != pol.States() || er.Nodes == 0 || er.Depth == 0 {
		t.Fatalf("eval shape wrong: %+v", er)
	}

	// Shifted weights re-price the same tree; the tree stays valid.
	shifted := append([]uint64(nil), p.Weights...)
	shifted[0] += 10
	wantShifted, err := core.TreeCostWithWeights(p, mustTree(t, pol), shifted)
	if err != nil {
		t.Fatal(err)
	}
	req2, _ := json.Marshal(map[string]any{"policy": pol, "weights": shifted})
	resp2, err := http.Post(ts.URL+"/v1/eval", "application/json", bytes.NewReader(req2))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var er2 EvalResponse
	if err := json.NewDecoder(resp2.Body).Decode(&er2); err != nil {
		t.Fatal(err)
	}
	if er2.Cost != wantShifted {
		t.Fatalf("shifted eval cost %d, want %d", er2.Cost, wantShifted)
	}
}

func mustTree(t *testing.T, pol *core.Policy) *core.Node {
	t.Helper()
	tree, err := pol.Tree()
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestEvalBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for name, body := range map[string]string{
		"malformed":      "{",
		"missing policy": `{"weights":[1,2]}`,
		"weight length":  `{"policy":{"k":2,"actions":[{"objects":[0,1],"cost":1,"treatment":true}],"choices":{"3":0}},"weights":[1]}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/eval", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestHealthzAndDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	s.SetDraining(true)
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d, want 503", resp.StatusCode)
	}
}

func TestStatsAndDebugVars(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := workload.SystematicBiology(23, 6)
	if _, status := postSolve(t, ts, "", instanceJSON(t, p)); status != http.StatusOK {
		t.Fatalf("solve failed: %d", status)
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["solves"].(float64) < 1 {
		t.Fatalf("stats missing solves: %v", stats)
	}
	hist, ok := stats["engine_latency"].(map[string]any)
	if !ok || hist["seq"] == nil {
		t.Fatalf("stats missing seq latency histogram: %v", stats)
	}

	// /debug/vars serves the expvar page (the global "ttserve" var is owned
	// by whichever server published first in this process).
	dv, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer dv.Body.Close()
	if dv.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: %d", dv.StatusCode)
	}
	var vars map[string]any
	if err := json.NewDecoder(dv.Body).Decode(&vars); err != nil {
		t.Fatal(err)
	}
	if vars["ttserve"] == nil {
		t.Fatal("expvar page missing the ttserve var")
	}
}

func TestSolveTimeoutReturns504(t *testing.T) {
	s, ts := newTestServer(t, Config{DefaultTimeout: 25 * time.Millisecond})
	// Large enough that the full sweep takes well over the deadline.
	p := workload.Random(29, 20, 40, 4)
	_, status := postSolve(t, ts, "?engine=parallel", instanceJSON(t, p))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", status)
	}
	if got := s.Metrics().Timeouts.Load(); got != 1 {
		t.Fatalf("timeouts = %d, want 1", got)
	}
	// The flight table must not leak the timed-out call.
	deadline := time.Now().Add(2 * time.Second)
	for {
		s.mu.Lock()
		n := len(s.flights)
		s.mu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d flights still registered after timeout", n)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLatencyHistogramBuckets(t *testing.T) {
	h := &latencyHist{}
	h.observe(500 * time.Microsecond) // <1ms
	h.observe(2 * time.Millisecond)   // <4ms
	h.observe(30 * time.Second)       // overflow
	snap := h.snapshot()
	buckets := snap["buckets"].(map[string]int64)
	if buckets["<1ms"] != 1 || buckets["<4ms"] != 1 || buckets[">=16s"] != 1 {
		t.Fatalf("buckets wrong: %v", buckets)
	}
	if snap["count"].(int64) != 3 {
		t.Fatalf("count wrong: %v", snap)
	}
}

func TestCanonicalizePreservesSemantics(t *testing.T) {
	p := workload.MedicalDiagnosis(31, 7)
	canon := Canonicalize(p)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.Solve(canon)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost {
		t.Fatalf("canonicalization changed the optimum: %d vs %d", got.Cost, want.Cost)
	}
	if len(canon.Actions) != len(p.Actions) || canon.K != p.K {
		t.Fatal("canonicalization changed the instance shape")
	}
	// Idempotent.
	h1, _ := Hash(canon)
	h2, _ := Hash(Canonicalize(canon))
	if h1 != h2 {
		t.Fatal("canonicalization not idempotent")
	}
}

func ExampleHash() {
	p := &core.Problem{
		K:       2,
		Weights: []uint64{3, 1},
		Actions: []core.Action{
			{Name: "fix-1", Set: core.SetOf(1), Cost: 2, Treatment: true},
			{Name: "probe", Set: core.SetOf(0), Cost: 1},
			{Name: "fix-0", Set: core.SetOf(0), Cost: 2, Treatment: true},
		},
	}
	h, _ := Hash(Canonicalize(p))
	fmt.Println(len(h), "hex chars")
	// Output: 64 hex chars
}
