package approx

import (
	"repro/internal/core"
)

// state carries the per-instance precomputation shared by the greedy
// policies and the branch-and-bound: cheapest covering treatment per object,
// the global minimum action cost, and memoized subset masses and lower
// bounds. Everything here is polynomial in K and N — no 2^K tables — which
// is the point of the package.
type state struct {
	p       *core.Problem
	tmin    []uint64            // per object: min cost over treatments covering it (Inf: uncovered)
	cmin    uint64              // min cost over all actions
	memoCap int                 // per-map memo entry cap; misses beyond it recompute
	ps      map[core.Set]uint64 // subset mass memo
	lb      map[core.Set]uint64 // lower-bound memo
}

func newState(p *core.Problem) *state {
	st := &state{
		p:       p,
		tmin:    make([]uint64, p.K),
		cmin:    core.Inf,
		memoCap: 1 << 20,
		ps:      make(map[core.Set]uint64),
		lb:      make(map[core.Set]uint64),
	}
	for j := range st.tmin {
		st.tmin[j] = core.Inf
	}
	for _, a := range p.Actions {
		if a.Cost < st.cmin {
			st.cmin = a.Cost
		}
		if a.Treatment {
			for _, j := range a.Set.Objects() {
				if a.Cost < st.tmin[j] {
					st.tmin[j] = a.Cost
				}
			}
		}
	}
	return st
}

// uncovered returns an object no treatment covers (the inadequacy witness),
// or -1 when the instance is adequate.
func (st *state) uncovered() int {
	for j, t := range st.tmin {
		if t == core.Inf {
			return j
		}
	}
	return -1
}

// psum is the mass of s, memoized; O(|s|) on a miss, no 2^K array.
func (st *state) psum(s core.Set) uint64 {
	if s == 0 {
		return 0
	}
	if v, ok := st.ps[s]; ok {
		return v
	}
	var t uint64
	for _, j := range s.Objects() {
		t = core.SatAdd(t, st.p.Weights[j])
	}
	if len(st.ps) < st.memoCap {
		st.ps[s] = t
	}
	return t
}

// lower is a valid lower bound on C(s): the maximum of
//
//   - the treatment bound Σ_{j∈s} P_j·tmin_j — object j's run ends with a
//     treatment covering j, paid at a candidate set still containing j;
//   - the information bound cmin·p(s)·b, with b the largest integer such
//     that 2^b times the largest treated-part mass stays under p(s) — the
//     prefix-code argument spelled out at certify.LowerBound, which this
//     per-set form must agree with at the universe (pinned by tests).
//
// Both depend only on the instance and s — never on the incumbent in force
// when they were computed — so memoized values stay valid for every caller.
func (st *state) lower(s core.Set) uint64 {
	if s == 0 {
		return 0
	}
	if v, ok := st.lb[s]; ok {
		return v
	}
	var treat uint64
	for _, j := range s.Objects() {
		treat = core.SatAdd(treat, core.SatMul(st.p.Weights[j], st.tmin[j]))
	}
	v := treat
	ps := st.psum(s)
	if ps > 0 && st.cmin > 0 && st.cmin < core.Inf {
		var maxMass uint64
		for _, a := range st.p.Actions {
			if a.Treatment {
				if m := st.psum(a.Set & s); m > maxMass {
					maxMass = m
				}
			}
		}
		if maxMass > 0 {
			var b uint64
			for b < 64 && core.SatMul(maxMass, uint64(1)<<uint(b+1)) < ps {
				b++
			}
			if info := core.SatMul(st.cmin, core.SatMul(ps, b)); info > v {
				v = info
			}
		}
	}
	if len(st.lb) < st.memoCap {
		st.lb[s] = v
	}
	return v
}
