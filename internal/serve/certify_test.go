package serve

import (
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestCertifyCorruptAnswerNeverServedOrCached is the serving half of the
// silent-corruption defense: a chaos hook corrupts every answer the lockstep
// engine produces, and certification must refuse each one — the request is
// answered by the fallback chain with the correct cost, the corrupt answer is
// never cached, and the counters record the refusals.
func TestCertifyCorruptAnswerNeverServedOrCached(t *testing.T) {
	p := workload.MedicalDiagnosis(4, 6)
	s, ts := newTestServer(t, Config{
		ResultFault: func(engine string) bool { return engine == "lockstep" },
	})
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	sr, code := postSolve(t, ts, "?engine=lockstep", instanceJSON(t, p))
	if code != http.StatusOK {
		t.Fatalf("lockstep request: status %d", code)
	}
	if sr.SolvedBy == "lockstep" {
		t.Fatal("corrupted lockstep answer was served")
	}
	if sr.Cost == nil || *sr.Cost != want.Cost {
		t.Fatalf("served cost %v, want %v", sr.Cost, want.Cost)
	}
	if got := s.Metrics().CertifyFail.Load(); got == 0 {
		t.Fatal("no certification failure was recorded")
	}
	if got := s.Metrics().CertifyPass.Load(); got == 0 {
		t.Fatal("no certification pass was recorded")
	}
	// The cache must hold only certified answers: a re-ask is a hit and
	// still carries the right cost.
	again, _ := postSolve(t, ts, "?engine=lockstep", instanceJSON(t, p))
	if !again.Cached || *again.Cost != want.Cost {
		t.Fatalf("re-ask: cached=%v cost=%v, want cached hit of %d", again.Cached, *again.Cost, want.Cost)
	}
}

// TestCertifyAllEnginesCorruptFailsClosed: when every engine in the chain
// produces a corrupt answer, the server returns 5xx and caches nothing — a
// wrong answer never escapes, which is the whole contract.
func TestCertifyAllEnginesCorruptFailsClosed(t *testing.T) {
	p := workload.MedicalDiagnosis(4, 6)
	s, ts := newTestServer(t, Config{
		Retries:     -1,
		ResultFault: func(string) bool { return true },
	})
	_, code := postSolve(t, ts, "?engine=lockstep", instanceJSON(t, p))
	if code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", code)
	}
	if n := s.CacheLen(); n != 0 {
		t.Fatalf("%d corrupt entries cached, want 0", n)
	}
	if got := s.Metrics().CertifyFail.Load(); got == 0 {
		t.Fatal("no certification failure was recorded")
	}
}

// TestCertifyModeOffLetsCorruptionThrough documents the threat model: with
// certification off the same corruption is served — which is why off-mode
// answers must never satisfy a certifying request (next test).
func TestCertifyModeOffLetsCorruptionThrough(t *testing.T) {
	p := workload.MedicalDiagnosis(4, 6)
	_, ts := newTestServer(t, Config{
		CertifyMode: "off",
		ResultFault: func(engine string) bool { return engine == "seq" },
	})
	sr, code := postSolve(t, ts, "?engine=seq", instanceJSON(t, p))
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if sr.CertifyMode != "off" {
		t.Fatalf("certify_mode %q, want off", sr.CertifyMode)
	}
	// The corrupted cost sailed through; nothing checked it.
}

// TestCertifyModeKeysCache: answers are cached per certify mode, so a request
// that asks for certification never gets an answer that skipped it.
func TestCertifyModeKeysCache(t *testing.T) {
	p := workload.MedicalDiagnosis(4, 6)
	s, ts := newTestServer(t, Config{CertifyMode: "off"})
	first, _ := postSolve(t, ts, "?engine=seq", instanceJSON(t, p))
	if first.Cached {
		t.Fatal("first solve reported cached")
	}
	// Same instance, now with certification: must NOT hit the off-mode slot.
	fast, _ := postSolve(t, ts, "?engine=seq&certify=fast", instanceJSON(t, p))
	if fast.Cached {
		t.Fatal("fast-mode request was served the uncertified cached answer")
	}
	if fast.CertifyMode != "fast" {
		t.Fatalf("certify_mode %q, want fast", fast.CertifyMode)
	}
	// Each mode has its own slot from here on.
	for _, q := range []string{"?engine=seq", "?engine=seq&certify=fast"} {
		if again, _ := postSolve(t, ts, q, instanceJSON(t, p)); !again.Cached {
			t.Fatalf("%s: expected a cache hit", q)
		}
	}
	if n := s.CacheLen(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2 (one per mode)", n)
	}
	// Audit mode runs the deep checks and gets a third slot.
	audit, code := postSolve(t, ts, "?engine=seq&certify=audit", instanceJSON(t, p))
	if code != http.StatusOK || audit.Cached || audit.CertifyMode != "audit" {
		t.Fatalf("audit request: code=%d cached=%v mode=%q", code, audit.Cached, audit.CertifyMode)
	}
	if *audit.Cost != *first.Cost {
		t.Fatalf("audit cost %d, want %d", *audit.Cost, *first.Cost)
	}
}

// TestCertifyInvalidModeRejected: an unknown certify= value is a 400, not a
// silent fallback.
func TestCertifyInvalidModeRejected(t *testing.T) {
	p := workload.MedicalDiagnosis(3, 4)
	_, ts := newTestServer(t, Config{})
	if _, code := postSolve(t, ts, "?certify=paranoid", instanceJSON(t, p)); code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", code)
	}
}

// TestCertifyBVMTableAnswer: the cost-only bvm engine certifies through the
// table path (top cell re-priced bottom-up), in both fast and audit modes.
func TestCertifyBVMTableAnswer(t *testing.T) {
	p := workload.MedicalDiagnosis(4, 6)
	s, ts := newTestServer(t, Config{})
	for _, mode := range []string{"fast", "audit"} {
		sr, code := postSolve(t, ts, "?engine=bvm&certify="+mode, instanceJSON(t, p))
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", mode, code)
		}
		if sr.SolvedBy != "bvm" {
			t.Fatalf("%s: solved_by %q, want bvm", mode, sr.SolvedBy)
		}
	}
	if got := s.Metrics().CertifyPass.Load(); got != 2 {
		t.Fatalf("certify_pass = %d, want 2", got)
	}
}
