package main

import (
	"os"
	"strings"
	"testing"

	"repro/internal/instio"
)

func TestGenerateAllDomains(t *testing.T) {
	for _, domain := range []string{"medical", "fault", "biology", "laboratory", "logistics", "binary", "random"} {
		var out strings.Builder
		if err := run([]string{"-domain", domain, "-k", "6", "-seed", "3"}, &out); err != nil {
			t.Fatalf("%s: %v", domain, err)
		}
		p, err := instio.Read(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("%s: generated instance unreadable: %v", domain, err)
		}
		if p.K != 6 {
			t.Errorf("%s: k = %d, want 6", domain, p.K)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-domain", "fault", "-k", "5", "-seed", "9"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-domain", "fault", "-k", "5", "-seed", "9"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed gave different output")
	}
}

func TestUnknownDomain(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-domain", "quantum"}, &out); err == nil {
		t.Fatal("unknown domain accepted")
	}
}

// TestRunToFullDevice pins the flush error path: generating onto /dev/full
// must exit nonzero, not leave a truncated instance that parses as garbage.
func TestRunToFullDevice(t *testing.T) {
	f, err := os.OpenFile("/dev/full", os.O_WRONLY, 0)
	if err != nil {
		t.Skip("/dev/full not available")
	}
	defer f.Close()
	err = run([]string{"-domain", "binary", "-k", "6"}, f)
	if err == nil {
		t.Fatal("writing the instance to /dev/full reported success")
	}
	if !strings.Contains(err.Error(), "writing instance") {
		t.Fatalf("error does not name the instance write: %v", err)
	}
}
