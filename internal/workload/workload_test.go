package workload

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

func checkValidAdequate(t *testing.T, name string, p *core.Problem) *core.Solution {
	t.Helper()
	if err := p.Validate(); err != nil {
		t.Fatalf("%s: invalid instance: %v", name, err)
	}
	sol, err := core.Solve(p)
	if err != nil {
		t.Fatalf("%s: solve failed: %v", name, err)
	}
	if !sol.Adequate() {
		t.Fatalf("%s: generated instance is inadequate", name)
	}
	return sol
}

func TestRandomValidAndAdequate(t *testing.T) {
	for _, k := range []int{2, 5, 8} {
		p := Random(11, k, 4, 3)
		checkValidAdequate(t, "random", p)
		if p.NumTests() != 4 {
			t.Errorf("k=%d: %d tests, want 4", k, p.NumTests())
		}
		if p.NumTreatments() != 3+k {
			t.Errorf("k=%d: %d treatments, want %d", k, p.NumTreatments(), 3+k)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := MedicalDiagnosis(42, 6)
	b := MedicalDiagnosis(42, 6)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different instances")
	}
	c := MedicalDiagnosis(43, 6)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical instances")
	}
}

func TestMedicalDiagnosisStructure(t *testing.T) {
	p := MedicalDiagnosis(7, 8)
	sol := checkValidAdequate(t, "medical", p)
	// Prevalence is skewed: first disease strictly heavier than the last.
	if p.Weights[0] <= p.Weights[7] {
		t.Errorf("weights not skewed: %v", p.Weights)
	}
	// A broad-spectrum treatment covering everything exists.
	found := false
	for _, a := range p.Actions {
		if a.Treatment && a.Set == core.Universe(8) {
			found = true
		}
	}
	if !found {
		t.Error("no broad-spectrum treatment")
	}
	// The optimal procedure should beat always using broad-spectrum blindly.
	blind := core.SatMul(80, p.TotalWeight())
	if sol.Cost >= blind {
		t.Errorf("optimum %d not better than blind broad-spectrum %d", sol.Cost, blind)
	}
}

func TestFaultLocationStructure(t *testing.T) {
	p := FaultLocation(3, 8, 4)
	checkValidAdequate(t, "fault", p)
	probes, parts, boards := 0, 0, 0
	for _, a := range p.Actions {
		switch {
		case !a.Treatment:
			probes++
		case a.Set.Size() == 1:
			parts++
		default:
			boards++
		}
	}
	if probes == 0 || parts != 8 || boards != 2 {
		t.Fatalf("structure: %d probes, %d parts, %d boards", probes, parts, boards)
	}
	// Degenerate board size is clamped.
	q := FaultLocation(3, 4, 0)
	checkValidAdequate(t, "fault-clamped", q)
}

func TestSystematicBiologyStructure(t *testing.T) {
	p := SystematicBiology(5, 8)
	checkValidAdequate(t, "biology", p)
	for _, a := range p.Actions {
		if !a.Treatment {
			sz := a.Set.Size()
			if sz < 2 || sz > 6 {
				t.Errorf("character %s not roughly balanced: size %d", a.Name, sz)
			}
		}
	}
}

// TestBinaryTestingUniformOptimum: with k = 2^b uniform objects, unit bit
// tests and treatment cost far above test costs, the optimum is exactly
// k·(b + treatCost): every object pays b tests and one treatment.
func TestBinaryTestingUniformOptimum(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		p := BinaryTestingUniform(k, 50)
		sol := checkValidAdequate(t, "binary", p)
		b := 0
		for 1<<uint(b) < k {
			b++
		}
		want := uint64(k * (b + 50))
		if sol.Cost != want {
			t.Errorf("k=%d: optimum %d, want %d", k, sol.Cost, want)
		}
	}
}

func TestZipfWeights(t *testing.T) {
	w := zipf(5)
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Fatalf("zipf not non-increasing: %v", w)
		}
	}
	for _, v := range w {
		if v < 1 {
			t.Fatal("zipf weight below 1")
		}
	}
}

func TestGeneratorsSolvableInParallelEngine(t *testing.T) {
	// Workload instances must be consumable by the parallel path too; checked
	// indirectly here by size guards (k small keeps the PE count sane).
	p := SystematicBiology(9, 4)
	if p.K != 4 {
		t.Fatal("k mismatch")
	}
	if len(p.Actions) == 0 {
		t.Fatal("no actions")
	}
}
