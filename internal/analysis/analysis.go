// Package analysis is the repository's static-analysis framework: a
// self-contained reimplementation of the golang.org/x/tools/go/analysis
// vocabulary (Analyzer, Pass, Diagnostic) plus a driver that loads and
// type-checks this module's packages using only the standard library and the
// go command.
//
// Why not x/tools itself? The repo builds offline with an empty module cache,
// and the invariants these analyzers prove (docs/ANALYSIS.md) are too
// load-bearing to gate on a network fetch. The API mirrors x/tools closely —
// an analyzer is a Name, a Doc, and a Run(*Pass) — so migrating onto the real
// framework later is a mechanical change, and the analyzers themselves would
// port unmodified.
//
// The driver (Load in load.go) resolves package metadata and compiled export
// data through `go list -export`, parses the target packages from source, and
// type-checks them with go/types against the export data — the same scheme
// x/tools' unitchecker uses under `go vet -vettool`. cmd/ttlint fronts the
// suite; see docs/ANALYSIS.md for each analyzer's invariant and its
// motivating bug.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis pass: a named invariant checked over a
// single type-checked package.
type Analyzer struct {
	Name string // short lowercase identifier, used in diagnostics and suppressions
	Doc  string // one-paragraph description of the invariant

	// Run inspects the package and reports findings through pass.Report.
	// The error return is for analysis failures (internal errors), not
	// findings.
	Run func(pass *Pass) error
}

// A Pass hands one package to one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // parsed source, comments included
	Pkg       *types.Package
	TypesInfo *types.Info
	Path      string // import path being analyzed

	// TestFiles marks which of Files are _test.go files; analyzers whose
	// invariant is production-only (ctxflow, certorder, durability) skip
	// them.
	TestFiles map[*ast.File]bool

	diags *[]Diagnostic
}

// Report records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
	})
}

// TypeOf returns the type of expr, or nil when the type checker recorded
// none.
func (p *Pass) TypeOf(expr ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(expr)
}

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if o := p.TypesInfo.Defs[id]; o != nil {
		return o
	}
	return p.TypesInfo.Uses[id]
}

// A Diagnostic is one finding: which analyzer, where, and what.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`

	// Flattened position for the JSON form.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// CalleeObj resolves the called function or method of call, unwrapping
// parentheses and conversions; nil for calls through function-typed
// expressions the type checker cannot name (indirect calls, built-ins).
func CalleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // package-qualified call
	}
	return nil
}

// CalleePkgName returns the name of the package the callee belongs to, or ""
// when unresolvable (indirect call) or universe-scoped (builtins).
func CalleePkgName(info *types.Info, call *ast.CallExpr) string {
	obj := CalleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Name()
}

// IsPkgFunc reports whether call invokes a function named fn from a package
// named pkgName (matching by package name, not path, so fakes in analyzer
// testdata exercise the same code path as the real packages).
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgName, fn string) bool {
	obj := CalleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Name() == pkgName && obj.Name() == fn
}
