// Package core implements the test-and-treatment (TT) problem, the paper's
// central object of study, together with its sequential dynamic-programming
// solution (the backward-induction baseline the paper attributes to a
// modification of Garey's algorithm), optimal-procedure extraction, and
// greedy baselines from the binary-testing literature.
//
// A TT problem has a universe U = {0, .., K-1} of objects, exactly one of
// which is faulty, with a-priori weights P_j; and N actions, each a subset
// T_i of U with cost t_i. Actions are tests or treatments:
//
//   - a test splits the live candidate set S into S∩T_i (positive response)
//     and S−T_i (negative);
//   - a treatment cures the faulty object if it lies in T_i (the procedure
//     ends) and otherwise the procedure continues on S−T_i.
//
// A successful TT procedure is a binary decision tree that treats every
// object; its expected cost charges each object the costs of all actions on
// its path, weighted by P_j. The minimum expected cost obeys
//
//	C(∅)  = 0
//	C(S)  = min_i M[S,i]
//	M[S,i] = t_i·p(S) + C(S∩T_i) + C(S−T_i)   (tests)
//	M[S,i] = t_i·p(S) + C(S−T_i)              (treatments)
//
// with p(S) = Σ_{j∈S} P_j, where self-referential terms (tests that do not
// split S, treatments that treat nothing) are excluded automatically by the
// infinity-initialization trick of the paper's §5. Weights and costs are
// non-negative integers (scale fixed-point inputs before building a
// Problem); all cost arithmetic saturates at Inf.
package core

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// Inf is the infinite-cost sentinel. Saturating arithmetic keeps every
// computed cost at or below Inf.
const Inf uint64 = math.MaxUint64

// MaxK bounds the universe size: the DP state space is 2^K.
const MaxK = 26

// Set is a subset of the universe as a bitmask: object j is a member iff bit
// j is set.
type Set uint32

// SetOf builds a Set from object indices.
func SetOf(objects ...int) Set {
	var s Set
	for _, o := range objects {
		s |= 1 << uint(o)
	}
	return s
}

// Universe returns the full set {0, .., k-1}.
func Universe(k int) Set { return Set(1)<<uint(k) - 1 }

// Has reports membership of object j.
func (s Set) Has(j int) bool { return s>>uint(j)&1 == 1 }

// Size returns |S|.
func (s Set) Size() int { return bits.OnesCount32(uint32(s)) }

// Objects lists the members in increasing order.
func (s Set) Objects() []int {
	out := make([]int, 0, s.Size())
	for x := uint32(s); x != 0; x &= x - 1 {
		out = append(out, bits.TrailingZeros32(x))
	}
	return out
}

// String renders the set as {a,b,c}.
func (s Set) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, o := range s.Objects() {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%d", o)
	}
	sb.WriteByte('}')
	return sb.String()
}

// Action is one test or treatment.
type Action struct {
	Name      string
	Set       Set    // the subset of the universe the action responds to
	Cost      uint64 // execution cost t_i
	Treatment bool   // false: test; true: treatment
}

// Problem is a TT problem instance.
type Problem struct {
	K       int      // universe size
	Weights []uint64 // a-priori weights P_j, len K
	Actions []Action // tests and treatments, in any order
}

// NumTests returns the number of test actions.
func (p *Problem) NumTests() int {
	n := 0
	for _, a := range p.Actions {
		if !a.Treatment {
			n++
		}
	}
	return n
}

// NumTreatments returns the number of treatment actions.
func (p *Problem) NumTreatments() int { return len(p.Actions) - p.NumTests() }

// TotalWeight returns p(U).
func (p *Problem) TotalWeight() uint64 {
	var t uint64
	for _, w := range p.Weights {
		t = satAdd(t, w)
	}
	return t
}

// maxInput bounds weights and costs so that t_i·p(S) cannot overflow uint64
// even at K = MaxK: maxInput^2 · 2^MaxK < 2^64.
const maxInput = 1 << 18

// Validate checks structural well-formedness. It does not check adequacy
// (existence of a successful procedure); adequacy falls out of the DP, which
// reports C(U) = Inf for inadequate instances.
func (p *Problem) Validate() error {
	if p.K < 1 || p.K > MaxK {
		return fmt.Errorf("core: universe size %d outside [1,%d]", p.K, MaxK)
	}
	if len(p.Weights) != p.K {
		return fmt.Errorf("core: %d weights for %d objects", len(p.Weights), p.K)
	}
	for j, w := range p.Weights {
		if w > maxInput {
			return fmt.Errorf("core: weight P_%d = %d exceeds %d", j, w, maxInput)
		}
	}
	if len(p.Actions) == 0 {
		return fmt.Errorf("core: no actions")
	}
	u := Universe(p.K)
	anyTreatment := false
	for i, a := range p.Actions {
		if a.Set&^u != 0 {
			return fmt.Errorf("core: action %d (%s) mentions objects outside the universe", i, a.Name)
		}
		if a.Cost > maxInput {
			return fmt.Errorf("core: action %d (%s) cost %d exceeds %d", i, a.Name, a.Cost, maxInput)
		}
		if a.Treatment {
			anyTreatment = true
		}
	}
	if !anyTreatment {
		return fmt.Errorf("core: no treatments; no object can ever be treated")
	}
	return nil
}

// Clone returns a deep copy of the problem.
func (p *Problem) Clone() *Problem {
	c := &Problem{K: p.K}
	c.Weights = append([]uint64(nil), p.Weights...)
	c.Actions = append([]Action(nil), p.Actions...)
	return c
}

func satAdd(a, b uint64) uint64 {
	s := a + b
	if s < a {
		return Inf
	}
	return s
}

func satMul(a, b uint64) uint64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a == Inf || b == Inf || a > Inf/b {
		return Inf
	}
	return a * b
}

// SatAdd exposes the package's saturating addition, so other engines (the
// parallel solvers) use bit-identical cost arithmetic.
func SatAdd(a, b uint64) uint64 { return satAdd(a, b) }

// SatMul exposes the package's saturating multiplication.
func SatMul(a, b uint64) uint64 { return satMul(a, b) }
