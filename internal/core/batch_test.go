package core

import (
	"context"
	"math/rand"
	"testing"
)

// repriced returns a same-lattice variant of p: identical (Set, Treatment)
// per index, fresh random costs and weights.
func repriced(rng *rand.Rand, p *Problem) *Problem {
	q := p.Clone()
	for j := range q.Weights {
		q.Weights[j] = uint64(rng.Intn(20) + 1)
	}
	for i := range q.Actions {
		q.Actions[i].Cost = uint64(rng.Intn(30) + 1)
	}
	return q
}

// TestSolveBatchMatchesSolo pins the batched sweep bit-identical to solving
// every instance alone, across group sizes and worker counts.
func TestSolveBatchMatchesSolo(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		k := rng.Intn(7) + 2
		base := randomProblem(rng, k, rng.Intn(5)+1)
		G := rng.Intn(5) + 1
		group := make([]*Problem, G)
		group[0] = base
		for g := 1; g < G; g++ {
			group[g] = repriced(rng, base)
		}
		workers := rng.Intn(4) + 1
		sols, err := SolveBatchCtx(context.Background(), group, workers, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(sols) != G {
			t.Fatalf("trial %d: %d solutions for %d instances", trial, len(sols), G)
		}
		for g, p := range group {
			want, err := Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			if sols[g].Cost != want.Cost {
				t.Fatalf("trial %d instance %d: batch C(U)=%d, solo %d", trial, g, sols[g].Cost, want.Cost)
			}
			for s := range want.C {
				if sols[g].C[s] != want.C[s] {
					t.Fatalf("trial %d instance %d: C[%b] batch %d, solo %d", trial, g, s, sols[g].C[s], want.C[s])
				}
			}
			if want.Adequate() {
				bt, err := TreeFromCosts(p, sols[g].C)
				if err != nil {
					t.Fatal(err)
				}
				if tc, err := TreeCost(p, bt); err != nil || tc != want.Cost {
					t.Fatalf("trial %d instance %d: batch tree cost %d err=%v, want %d", trial, g, tc, err, want.Cost)
				}
			}
			sols[g].Release()
			want.Release()
		}
	}
}

// TestSolveBatchRejectsMixedLattices: instances that do not share the
// lattice are refused, as are empty batches.
func TestSolveBatchRejectsMixedLattices(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := randomProblem(rng, 4, 3)
	b := a.Clone()
	b.Actions[0].Set ^= 1 // different lattice
	if _, err := SolveBatch([]*Problem{a, b}, 1); err == nil {
		t.Fatal("mixed-lattice batch accepted")
	}
	c := a.Clone()
	c.Actions[0].Treatment = !c.Actions[0].Treatment
	if _, err := SolveBatch([]*Problem{a, c}, 1); err == nil {
		t.Fatal("mixed treatment-flag batch accepted")
	}
	if _, err := SolveBatch(nil, 1); err == nil {
		t.Fatal("empty batch accepted")
	}
	if !SameLattice(a, repriced(rng, a)) {
		t.Fatal("repriced variant must share the lattice")
	}
	if SameLattice(a, b) {
		t.Fatal("SameLattice missed a Set difference")
	}
}

// TestSolveBatchCancellation: cancellation mid-sweep surfaces the context
// error instead of a partial result.
func TestSolveBatchCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := randomProblem(rng, 14, 8)
	group := []*Problem{base, repriced(rng, base), repriced(rng, base)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveBatchCtx(ctx, group, 2, nil); err == nil {
		t.Fatal("cancelled batch returned a result")
	}
}

// FuzzSolveBatch cross-checks batched re-pricing against solo solves on
// arbitrary lattices and group sizes.
func FuzzSolveBatch(f *testing.F) {
	f.Add(int64(3), uint8(4), uint8(2))
	f.Add(int64(77), uint8(6), uint8(4))
	f.Fuzz(func(t *testing.T, seed int64, kb, gb uint8) {
		k := int(kb)%7 + 1
		G := int(gb)%4 + 1
		rng := rand.New(rand.NewSource(seed))
		base := randomProblem(rng, k, rng.Intn(4)+1)
		if seed%3 == 0 {
			base.Actions = base.Actions[:len(base.Actions)-1] // allow inadequate
		}
		group := make([]*Problem, G)
		group[0] = base
		for g := 1; g < G; g++ {
			group[g] = repriced(rng, base)
		}
		sols, err := SolveBatchCtx(context.Background(), group, int(seed%3)+1, nil)
		if err != nil {
			t.Skip()
		}
		for g, p := range group {
			want, err := Solve(p)
			if err != nil {
				t.Fatal(err)
			}
			for s := range want.C {
				if sols[g].C[s] != want.C[s] {
					t.Fatalf("instance %d: C[%b] batch %d, solo %d", g, s, sols[g].C[s], want.C[s])
				}
			}
		}
	})
}
