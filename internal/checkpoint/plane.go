package checkpoint

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
)

// This file extends the checkpoint format into a wire format: the
// distributed solve plane (internal/cluster) exchanges level slices of the
// DP lattice between a coordinator and its workers using the same defensive
// CRC framing that checkpoint files use on disk. A Plane is one such slice —
// a contiguous Gosper rank range of one popcount level's (C, Choice) values
// — plus the checksums the receiver verifies it against: the FNV-1a running
// checksum of the frozen frontier the sender computed from, and the FNV-1a
// checksum of the sender's p(S) values over the slice. Like the file format,
// every defect in a received image (framing, CRC, version, geometry) yields
// an error wrapping ErrCorrupt, never a wrong frontier.

// planeMagic distinguishes plane frames from checkpoint files sharing a
// buffer or a byte stream.
var planeMagic = [4]byte{'T', 'T', 'P', 'L'}

// MaxPlaneCells bounds how many cells one plane may carry — C(26,13), the
// widest level of the largest admissible universe — so a corrupt or hostile
// length field cannot make the receiver allocate unbounded memory.
const MaxPlaneCells = 10400600

// FNV-1a, the frozen-plane checksum of the PR 5 ABFT layer, reused here so
// a coordinator and a worker can agree on an entire frontier with eight
// bytes on the wire.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// FNVInit is the FNV-1a offset basis, the seed of every running checksum.
func FNVInit() uint64 { return fnvOffset }

// FNVAdd extends running checksum h with one 64-bit value, byte by byte.
func FNVAdd(h, v uint64) uint64 {
	for b := 0; b < 8; b++ {
		h = (h ^ (v >> uint(8*b) & 0xff)) * fnvPrime
	}
	return h
}

// AppendFrame appends one length+payload+CRC32-C frame to dst — the framing
// unit shared by checkpoint files and the cluster wire protocol.
func AppendFrame(dst, payload []byte) []byte { return appendFrame(dst, payload) }

// NextFrame slices one frame off data, verifying length and CRC. Every
// defect yields an error wrapping ErrCorrupt.
func NextFrame(data []byte) (payload, rest []byte, err error) { return nextFrame(data) }

// Plane is one level slice on the wire: the (C, Choice) values of the
// subsets with Gosper ranks [Lo, Hi) within level Level, in rank order.
type Plane struct {
	Level int    // popcount level the values belong to
	Lo    uint64 // first Gosper rank covered (inclusive)
	Hi    uint64 // one past the last rank covered

	// FrozenSum is the sender's FNV-1a running checksum over the C values of
	// every subset with popcount < Level, in (level, Gosper) order starting
	// from C(∅) — proof of which frontier the slice was computed from.
	FrozenSum uint64
	// WeightSum is the sender's FNV-1a checksum over p(S) for the slice's
	// subsets in rank order — the probability-conservation invariant reduced
	// to eight bytes: the receiver derives the same sums from the problem
	// weights, so any divergence is corruption.
	WeightSum uint64

	C      []uint64 // len Hi-Lo
	Choice []int32  // len Hi-Lo, or nil for cost-only planes
}

// planeMeta is the JSON header frame of an encoded plane.
type planeMeta struct {
	Level     int    `json:"level"`
	Lo        uint64 `json:"lo"`
	Hi        uint64 `json:"hi"`
	FrozenSum uint64 `json:"frozen_sum"`
	WeightSum uint64 `json:"weight_sum"`
	HasChoice bool   `json:"has_choice"`
}

// EncodePlane serializes one level slice with the checkpoint framing: magic,
// version, then a JSON meta frame, a cost frame, and (when choices are
// carried) a choice frame, each CRC32-C protected.
func EncodePlane(p *Plane) ([]byte, error) {
	n := p.Hi - p.Lo
	if p.Level < 0 || p.Lo > p.Hi || n > MaxPlaneCells {
		return nil, fmt.Errorf("checkpoint: plane geometry level=%d lo=%d hi=%d", p.Level, p.Lo, p.Hi)
	}
	if uint64(len(p.C)) != n {
		return nil, fmt.Errorf("checkpoint: plane holds %d costs for %d ranks", len(p.C), n)
	}
	if p.Choice != nil && uint64(len(p.Choice)) != n {
		return nil, fmt.Errorf("checkpoint: plane holds %d choices for %d ranks", len(p.Choice), n)
	}
	metaJSON, err := json.Marshal(&planeMeta{
		Level: p.Level, Lo: p.Lo, Hi: p.Hi,
		FrozenSum: p.FrozenSum, WeightSum: p.WeightSum,
		HasChoice: p.Choice != nil,
	})
	if err != nil {
		return nil, err
	}
	costs := make([]byte, 0, 8*n)
	for _, c := range p.C {
		costs = binary.LittleEndian.AppendUint64(costs, c)
	}
	out := append([]byte(nil), planeMagic[:]...)
	out = binary.LittleEndian.AppendUint32(out, Version)
	out = appendFrame(out, metaJSON)
	out = appendFrame(out, costs)
	if p.Choice != nil {
		choices := make([]byte, 0, 4*n)
		for _, ch := range p.Choice {
			choices = binary.LittleEndian.AppendUint32(choices, uint32(ch))
		}
		out = appendFrame(out, choices)
	}
	return out, nil
}

// DecodePlane parses and validates a plane image. Every defect — magic,
// version, framing, CRC, geometry, or trailing bytes — yields an error
// wrapping ErrCorrupt; a successful decode carries exactly the values the
// sender framed. Semantic verification (checksums, monotonicity, audits)
// is the receiver's job; this layer only guarantees transport integrity.
func DecodePlane(data []byte) (*Plane, error) {
	if len(data) < 8 || !bytes.Equal(data[:4], planeMagic[:]) {
		return nil, fmt.Errorf("%w: bad plane magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != Version {
		return nil, fmt.Errorf("%w: plane format version %d, want %d", ErrCorrupt, v, Version)
	}
	metaJSON, rest, err := nextFrame(data[8:])
	if err != nil {
		return nil, err
	}
	var m planeMeta
	if err := json.Unmarshal(metaJSON, &m); err != nil {
		return nil, fmt.Errorf("%w: plane meta: %v", ErrCorrupt, err)
	}
	n := m.Hi - m.Lo
	if m.Level < 0 || m.Lo > m.Hi || n > MaxPlaneCells {
		return nil, fmt.Errorf("%w: plane geometry level=%d lo=%d hi=%d", ErrCorrupt, m.Level, m.Lo, m.Hi)
	}
	costs, rest, err := nextFrame(rest)
	if err != nil {
		return nil, err
	}
	if uint64(len(costs)) != 8*n {
		return nil, fmt.Errorf("%w: plane cost frame holds %d bytes, want %d", ErrCorrupt, len(costs), 8*n)
	}
	p := &Plane{
		Level: m.Level, Lo: m.Lo, Hi: m.Hi,
		FrozenSum: m.FrozenSum, WeightSum: m.WeightSum,
		C: make([]uint64, n),
	}
	for i := range p.C {
		p.C[i] = binary.LittleEndian.Uint64(costs[8*i:])
	}
	if m.HasChoice {
		choices, r2, err := nextFrame(rest)
		if err != nil {
			return nil, err
		}
		rest = r2
		if uint64(len(choices)) != 4*n {
			return nil, fmt.Errorf("%w: plane choice frame holds %d bytes, want %d", ErrCorrupt, len(choices), 4*n)
		}
		p.Choice = make([]int32, n)
		for i := range p.Choice {
			p.Choice[i] = int32(binary.LittleEndian.Uint32(choices[4*i:]))
		}
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after plane", ErrCorrupt, len(rest))
	}
	return p, nil
}
