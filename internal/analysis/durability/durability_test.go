package durability_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/durability"
)

func TestDurability(t *testing.T) {
	analysistest.Run(t, "testdata", durability.Analyzer, "durable")
}
