package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestRouteMillionSessionLoad is the route plane's acceptance load test:
// ~10^6 concurrent sessions driven through the HTTP handler to completion,
// with zero sessions ending on a leaf that does not treat their object, and
// no goroutine left behind. Sessions live entirely in client-held cursors,
// so a million of them cost the server nothing but the steps themselves —
// which is the property this test exists to hold. Scaled down under the
// race detector (the same walk, ~8× fewer sessions) and skipped in -short.
func TestRouteMillionSessionLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping million-session load test in -short mode")
	}
	sessions := 1 << 20
	if raceEnabled {
		sessions = 1 << 17
	}
	const chunk = 4096
	s := New(Config{Logger: testLogger()})
	defer s.Close()
	h := s.Handler()
	baseGoroutines := runtime.NumGoroutine()

	p := routeProblem()
	post := func(path string, body []byte) (*httptest.ResponseRecorder, error) {
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec, nil
	}
	rec, _ := post("/v1/policy", instanceJSON(t, p))
	if rec.Code != http.StatusOK {
		t.Fatalf("publish: status %d: %s", rec.Code, rec.Body)
	}
	var pr PolicyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &pr); err != nil {
		t.Fatal(err)
	}

	nChunks := sessions / chunk
	work := make(chan int, nChunks)
	for i := 0; i < nChunks; i++ {
		work <- i
	}
	close(work)
	var completed, wrongLeaves, steps atomic.Int64
	var wg sync.WaitGroup
	workers := runtime.GOMAXPROCS(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range work {
				// Start one chunk of sessions.
				body, _ := json.Marshal(RouteBatchRequest{Policy: pr.Policy, Sessions: chunk})
				rec, _ := post("/v1/route/batch", body)
				if rec.Code != http.StatusOK {
					t.Errorf("batch start: status %d: %s", rec.Code, rec.Body)
					return
				}
				var br RouteBatchResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &br); err != nil {
					t.Error(err)
					return
				}
				// Walk every session to completion; session sid diagnoses
				// object sid % K, outcomes simulated from the action sets.
				type live struct {
					cursor string
					action int32
					obj    int
				}
				cur := make([]live, 0, chunk)
				for i := 0; i < chunk; i++ {
					cur = append(cur, live{br.Cursors[i], br.Actions[i], int(br.Sessions[i]) % p.K})
				}
				for round := 0; len(cur) > 0; round++ {
					if round > pr.Nodes {
						t.Errorf("chunk did not converge after %d rounds", round)
						return
					}
					req := RouteBatchRequest{
						Cursors:  make([]string, len(cur)),
						Outcomes: make([]bool, len(cur)),
					}
					for i, l := range cur {
						req.Cursors[i] = l.cursor
						req.Outcomes[i] = outcomeFor(&pr, l.action, l.obj)
					}
					body, _ := json.Marshal(req)
					rec, _ := post("/v1/route/batch", body)
					if rec.Code != http.StatusOK {
						t.Errorf("batch step: status %d: %s", rec.Code, rec.Body)
						return
					}
					var sr RouteBatchResponse
					if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
						t.Error(err)
						return
					}
					if len(sr.Errors) != 0 {
						for _, e := range sr.Errors {
							if e != "" {
								t.Errorf("batch member error: %s", e)
								return
							}
						}
					}
					steps.Add(int64(len(cur)))
					next := cur[:0]
					for i, l := range cur {
						if sr.Done[i] {
							// The session ended on the action it just
							// reported; a correct leaf treats its object.
							if !pr.Actions[l.action].Treatment || !outcomeFor(&pr, l.action, l.obj) {
								wrongLeaves.Add(1)
							}
							completed.Add(1)
							continue
						}
						next = append(next, live{sr.Cursors[i], sr.Actions[i], l.obj})
					}
					cur = next
				}
			}
		}()
	}
	wg.Wait()
	if got := completed.Load(); got != int64(sessions) {
		t.Fatalf("completed %d of %d sessions", got, sessions)
	}
	if wl := wrongLeaves.Load(); wl != 0 {
		t.Fatalf("%d sessions ended on a wrong leaf", wl)
	}
	if got := s.Metrics().RouteDone.Load(); got != int64(sessions) {
		t.Fatalf("route_done %d, want %d", got, sessions)
	}
	t.Logf("routed %d sessions (%d steps) across %d workers", sessions, steps.Load(), workers)

	// Goroutine-leak check: stateless stepping must not have spawned
	// anything that outlives its request.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseGoroutines+2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d now vs %d at start", runtime.NumGoroutine(), baseGoroutines)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
