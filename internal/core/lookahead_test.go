package core

import (
	"math/rand"
	"testing"
)

func TestLookaheadBracketsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng, rng.Intn(3)+3, rng.Intn(6)+3)
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range []int{0, 1, 2} {
			c, err := LookaheadCost(p, d)
			if err != nil {
				t.Fatalf("trial %d depth %d: %v", trial, d, err)
			}
			if c < sol.Cost {
				t.Fatalf("trial %d depth %d: lookahead %d beats optimum %d", trial, d, c, sol.Cost)
			}
		}
	}
}

// TestLookaheadDeepIsExact: with depth >= k every branch is expanded to
// empty sets (each applicable action strictly shrinks S), so the policy is
// the exact DP.
func TestLookaheadDeepIsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for trial := 0; trial < 25; trial++ {
		k := rng.Intn(3) + 3
		p := randomProblem(rng, k, rng.Intn(6)+3)
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		c, err := LookaheadCost(p, k)
		if err != nil {
			t.Fatal(err)
		}
		if c != sol.Cost {
			t.Fatalf("trial %d: depth-%d lookahead %d != optimum %d", trial, k, c, sol.Cost)
		}
	}
}

// TestLookaheadImprovesOnHardGreedyInstance constructs a trap: a cheap but
// useless-looking probe unlocks a very cheap treatment, which the myopic
// score cannot see but one step of lookahead can.
func TestLookaheadImprovesOnHardGreedyInstance(t *testing.T) {
	p := &Problem{
		K:       4,
		Weights: []uint64{10, 10, 1, 1},
		Actions: []Action{
			// The trap: treating everything at once looks efficient.
			{Name: "blanket", Set: SetOf(0, 1, 2, 3), Cost: 9, Treatment: true},
			// The right play: split heavy from light, then cheap treatments.
			{Name: "split", Set: SetOf(0, 1), Cost: 1},
			{Name: "fix-heavy", Set: SetOf(0, 1), Cost: 2, Treatment: true},
			{Name: "fix-light", Set: SetOf(2, 3), Cost: 2, Treatment: true},
		},
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	deep, err := LookaheadCost(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if deep != sol.Cost {
		t.Fatalf("deep lookahead %d != optimum %d", deep, sol.Cost)
	}
	shallow, err := LookaheadCost(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if shallow < sol.Cost {
		t.Fatalf("depth-0 cost %d below optimum %d", shallow, sol.Cost)
	}
}

func TestLookaheadErrors(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(57)), 3, 3)
	if _, err := LookaheadTree(p, -1); err == nil {
		t.Error("negative depth accepted")
	}
	if _, err := LookaheadTree(&Problem{K: 0}, 1); err == nil {
		t.Error("invalid problem accepted")
	}
	inadequate := &Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []Action{{Set: SetOf(0), Cost: 1, Treatment: true}, {Set: SetOf(0), Cost: 1}},
	}
	if _, err := LookaheadTree(inadequate, 1); err == nil {
		t.Error("inadequate instance accepted")
	}
}

// TestLookaheadTreeIsValid: the produced tree passes the independent
// evaluator on every workload-style instance.
func TestLookaheadTreeIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	for trial := 0; trial < 20; trial++ {
		p := randomProblem(rng, 5, 6)
		tree, err := LookaheadTree(p, 2)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := TreeCost(p, tree); err != nil {
			t.Fatalf("trial %d: invalid tree: %v", trial, err)
		}
	}
}

func BenchmarkLookaheadDepth2K12(b *testing.B) {
	p := randomProblem(rand.New(rand.NewSource(59)), 12, 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LookaheadCost(p, 2); err != nil {
			b.Fatal(err)
		}
	}
}
