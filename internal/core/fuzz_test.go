package core

import "testing"

// FuzzSolveAgreement drives the three independent solvers (bottom-up DP,
// memoized recursion, exhaustive enumeration) plus tree extraction with
// fuzzer-shaped instances and requires exact agreement everywhere.
func FuzzSolveAgreement(f *testing.F) {
	f.Add(uint8(2), uint16(0b01), uint16(0b10), uint8(1), uint8(1), uint8(7), uint8(3))
	f.Add(uint8(3), uint16(0b101), uint16(0b011), uint8(5), uint8(2), uint8(1), uint8(9))
	f.Add(uint8(4), uint16(0b1111), uint16(0b0001), uint8(0), uint8(4), uint8(2), uint8(2))
	f.Fuzz(func(t *testing.T, kSeed uint8, set1, set2 uint16, c1, c2, w1, w2 uint8) {
		k := int(kSeed)%3 + 2 // 2..4
		u := Universe(k)
		p := &Problem{K: k, Weights: make([]uint64, k)}
		for j := range p.Weights {
			if j%2 == 0 {
				p.Weights[j] = uint64(w1)%20 + 1
			} else {
				p.Weights[j] = uint64(w2)%20 + 1
			}
		}
		a1 := Set(set1) & u
		a2 := Set(set2) & u
		if a1 == 0 {
			a1 = SetOf(0)
		}
		if a2 == 0 {
			a2 = SetOf(k - 1)
		}
		p.Actions = []Action{
			{Name: "x", Set: a1, Cost: uint64(c1) % 40},
			{Name: "y", Set: a2, Cost: uint64(c2)%40 + 1, Treatment: true},
			{Name: "all", Set: u, Cost: 90, Treatment: true},
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		memo, err := SolveMemo(p)
		if err != nil {
			t.Fatalf("SolveMemo: %v", err)
		}
		if memo != sol.Cost {
			t.Fatalf("Solve %d != SolveMemo %d", sol.Cost, memo)
		}
		exh, err := SolveExhaustive(p)
		if err != nil {
			t.Fatalf("SolveExhaustive: %v", err)
		}
		if exh != sol.Cost {
			t.Fatalf("Solve %d != SolveExhaustive %d", sol.Cost, exh)
		}
		if !sol.Adequate() {
			t.Fatal("instance with universal treatment reported inadequate")
		}
		tree, err := sol.Tree(p)
		if err != nil {
			t.Fatalf("Tree: %v", err)
		}
		tc, err := TreeCost(p, tree)
		if err != nil {
			t.Fatalf("TreeCost: %v", err)
		}
		if tc != sol.Cost {
			t.Fatalf("TreeCost %d != C(U) %d", tc, sol.Cost)
		}
	})
}
