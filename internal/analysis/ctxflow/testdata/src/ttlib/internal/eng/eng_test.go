// Negative file: tests root contexts by design; ctxflow must skip _test.go
// files entirely, so none of these lines carry want comments.
package eng

import "context"

func testHarnessRoot() (*Result, error) {
	return SolveCtx(context.Background(), 4)
}

func testTODO() context.Context {
	return context.TODO()
}
