package bvmalg

import (
	"repro/internal/bitvec"
	"repro/internal/bvm"
	"repro/internal/hypercube"
)

// RoutePermutation routes each PE's word to an arbitrary destination PE on
// the BVM — the paper's §2 Benes claim executed at instruction level. The
// control bits are precalculated host-side by the looping algorithm
// (hypercube.BenesControlBits) and streamed into one register plane per
// stage through the input chain, exactly the paper's "if the control bits
// are precalculated"; the 2q-1 exchange stages then run as FetchPartner +
// one conditional select per bit plane.
//
// ctrlBase..ctrlBase+2q-2 hold the streamed control planes; shadow mirrors
// val; scratchBase supplies Width registers. Returns the total instruction
// count of the routing (excluding the host-side control-bit computation).
func RoutePermutation(m *bvm.Machine, val, shadow Word, dest []int, ctrlBase, scratchBase int) (int64, error) {
	stages, err := hypercube.BenesControlBits(m.Top.AddrBits, dest)
	if err != nil {
		return 0, err
	}
	start := m.InstrCount
	// Stream the precalculated control bits in.
	for si, st := range stages {
		pattern := bitvecFromBools(m, st.Swap)
		m.LoadViaInput(bvm.R(ctrlBase+si), pattern)
	}
	// Execute the exchange stages.
	for si, st := range stages {
		FetchPartner(m, st.Dim, WordPairs(val, shadow), scratchBase)
		m.MovB(bvm.Loc(bvm.R(ctrlBase + si)))
		for b := 0; b < val.Width; b++ {
			m.MuxB(val.Bit(b), val.Bit(b), bvm.Loc(shadow.Bit(b)))
		}
	}
	return m.InstrCount - start, nil
}

// bitvecFromBools builds an n-PE bit pattern from a bool slice.
func bitvecFromBools(m *bvm.Machine, bits []bool) *bitvec.Vector {
	v := bitvec.New(m.N())
	for i, b := range bits {
		v.Set(i, b)
	}
	return v
}
