package checkpoint

import (
	"os"
	"path/filepath"
)

// FS abstracts the handful of filesystem operations the checkpoint layer
// performs, so the chaos harness (internal/chaos) can inject ENOSPC, short
// writes, torn writes, and rename failures without touching a real disk.
// Implementations must return errors that wrap the underlying os sentinel
// errors (fs.ErrNotExist in particular), as the real filesystem does.
type FS interface {
	// WriteFile creates or truncates name with data, durably (the real
	// implementation fsyncs before returning).
	WriteFile(name string, data []byte) error
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// ReadFile returns the whole content of name.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists the file names (not paths) in dir.
	ReadDir(dir string) ([]string, error)
	// Remove deletes name.
	Remove(name string) error
	// MkdirAll creates dir and its parents.
	MkdirAll(dir string) error
}

// OS is the real filesystem. WriteFile syncs file contents and Rename syncs
// the containing directory, so a published checkpoint survives power loss —
// the durability the whole subsystem exists to provide.
type OS struct{}

func (OS) WriteFile(name string, data []byte) error {
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (OS) Rename(oldname, newname string) error {
	if err := os.Rename(oldname, newname); err != nil {
		return err
	}
	// Sync the directory so the rename itself is durable; best-effort on
	// filesystems that refuse directory fsync.
	if d, err := os.Open(filepath.Dir(newname)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

func (OS) Remove(name string) error  { return os.Remove(name) }
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }
