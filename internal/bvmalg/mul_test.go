package bvmalg

import (
	"math/rand"
	"testing"
)

func TestMulSatWordExhaustiveSmall(t *testing.T) {
	// 4-bit words on 64 PEs: sweep many (x, y) pairs including saturating
	// ones, verifying exact saturated products.
	m := newMachine(t, 2)
	x, y, dst := Word{0, 4}, Word{4, 4}, Word{8, 4}
	const scratch = 20
	for base := 0; base < 256; base += m.N() {
		xs := make([]uint64, m.N())
		ys := make([]uint64, m.N())
		for pe := 0; pe < m.N(); pe++ {
			v := base + pe
			xs[pe] = uint64(v >> 4 & 0xf)
			ys[pe] = uint64(v & 0xf)
		}
		loadWords(m, x, xs)
		loadWords(m, y, ys)
		MulSatWord(m, dst, x, y, scratch)
		for pe, got := range readWords(m, dst) {
			want := xs[pe] * ys[pe]
			if want > 15 {
				want = 15
			}
			if got != want {
				t.Fatalf("%d*%d = %d, want %d", xs[pe], ys[pe], got, want)
			}
		}
	}
}

func TestMulSatWordRandomWide(t *testing.T) {
	m := newMachine(t, 2)
	const w = 12
	x, y, dst := Word{0, w}, Word{w, w}, Word{2 * w, w}
	const scratch = 40
	rng := rand.New(rand.NewSource(9))
	xs, ys := randWords(rng, m.N(), 1<<w), randWords(rng, m.N(), 1<<w)
	// Mix in guaranteed-saturating and infinity operands.
	xs[0], ys[0] = 1<<w-1, 1<<w-1
	xs[1], ys[1] = 1<<w-1, 1 // INF·1 = INF
	xs[2], ys[2] = 0, 1<<w-1
	loadWords(m, x, xs)
	loadWords(m, y, ys)
	MulSatWord(m, dst, x, y, scratch)
	for pe, got := range readWords(m, dst) {
		want := xs[pe] * ys[pe]
		if want > 1<<w-1 {
			want = 1<<w - 1
		}
		if got != want {
			t.Fatalf("PE %d: %d*%d = %d, want %d", pe, xs[pe], ys[pe], got, want)
		}
	}
	// Operands must be intact.
	for pe, v := range readWords(m, x) {
		if v != xs[pe] {
			t.Fatal("x clobbered")
		}
	}
	for pe, v := range readWords(m, y) {
		if v != ys[pe] {
			t.Fatal("y clobbered")
		}
	}
}

func BenchmarkMulSatWord(b *testing.B) {
	m := newMachine(b, 2)
	x, y, dst := Word{0, 16}, Word{16, 16}, Word{32, 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulSatWord(m, dst, x, y, 60)
	}
}
