// Package hypercube implements the hypercube SIMD machine abstraction and the
// ASCEND/DESCEND algorithm scheme of Preparata and Vuillemin, which the paper
// (§3) uses as the design vehicle for its parallel test-and-treatment
// algorithm: one designs a hypercube ASCEND/DESCEND algorithm and then maps
// it onto the cube-connected-cycles machine (internal/cccsim) at a constant
// slowdown.
//
// A Machine[T] holds one state value of type T per PE; an ASCEND pass applies
// a combining operation across PE pairs whose addresses differ in bit 0, then
// bit 1, ..., then bit Dim-1 (DESCEND runs the dimensions in the opposite
// order). Two executors are provided: a deterministic lockstep executor that
// also counts steps and exchanges (the basis for the paper's step-count
// claims) and a goroutine-per-PE executor in which the PEs genuinely run
// concurrently and exchange values over channels — the "goroutines simulate
// PEs" realization used to validate that the algorithms are correct under
// true asynchrony.
package hypercube

import (
	"fmt"
	"sync"
)

// Op is one dimension step of an ASCEND/DESCEND algorithm. At dimension dim,
// PE self (with address selfAddr) receives the state of its partner PE
// (address selfAddr XOR 1<<dim) and returns its new state. All PEs apply the
// op synchronously: every partner value passed in is the pre-step state.
type Op[T any] func(dim, selfAddr int, self, partner T) T

// Machine is a lockstep simulation of a 2^Dim-PE hypercube.
type Machine[T any] struct {
	Dim int
	N   int

	state   []T
	scratch []T

	// Steps counts dimension steps executed (one per dimension per pass).
	Steps int
	// Exchanges counts total pairwise values transferred (N per step).
	Exchanges int64
}

// New returns a machine of 2^dim PEs with zero-valued state.
func New[T any](dim int) *Machine[T] {
	if dim < 0 || dim > 30 {
		panic(fmt.Sprintf("hypercube: dim %d out of range [0,30]", dim))
	}
	n := 1 << dim
	return &Machine[T]{Dim: dim, N: n, state: make([]T, n), scratch: make([]T, n)}
}

// State returns the live state slice; callers may initialize or inspect it.
func (m *Machine[T]) State() []T { return m.state }

// Step applies op across one dimension, synchronously over all PEs.
func (m *Machine[T]) Step(dim int, op Op[T]) {
	if dim < 0 || dim >= m.Dim {
		panic(fmt.Sprintf("hypercube: dimension %d out of range [0,%d)", dim, m.Dim))
	}
	bit := 1 << dim
	for x := 0; x < m.N; x++ {
		m.scratch[x] = op(dim, x, m.state[x], m.state[x^bit])
	}
	m.state, m.scratch = m.scratch, m.state
	m.Steps++
	m.Exchanges += int64(m.N)
}

// Ascend applies op over dimensions 0, 1, ..., Dim-1.
func (m *Machine[T]) Ascend(op Op[T]) { m.AscendRange(0, m.Dim, op) }

// Descend applies op over dimensions Dim-1, ..., 1, 0.
func (m *Machine[T]) Descend(op Op[T]) { m.DescendRange(0, m.Dim, op) }

// AscendRange applies op over dimensions lo, lo+1, ..., hi-1. The paper's TT
// algorithm uses partial ranges: its minimization ascends only the action
// index bits while its broadcast loops ascend only the set bits.
func (m *Machine[T]) AscendRange(lo, hi int, op Op[T]) {
	m.checkRange(lo, hi)
	for t := lo; t < hi; t++ {
		m.Step(t, op)
	}
}

// DescendRange applies op over dimensions hi-1, ..., lo.
func (m *Machine[T]) DescendRange(lo, hi int, op Op[T]) {
	m.checkRange(lo, hi)
	for t := hi - 1; t >= lo; t-- {
		m.Step(t, op)
	}
}

func (m *Machine[T]) checkRange(lo, hi int) {
	if lo < 0 || hi > m.Dim || lo > hi {
		panic(fmt.Sprintf("hypercube: range [%d,%d) invalid for dim %d", lo, hi, m.Dim))
	}
}

// ResetCounters zeroes the step and exchange counters.
func (m *Machine[T]) ResetCounters() {
	m.Steps = 0
	m.Exchanges = 0
}

// AscendGoroutines runs an ASCEND pass over dimensions lo..hi-1 with one
// goroutine per PE. Each PE sends its current value to its dimension partner
// and receives the partner's over buffered channels, so the pass is correct
// without any global barrier: a PE cannot emit its dimension-t+1 value before
// consuming its partner's dimension-t value. init is not modified; the
// returned slice holds the final states.
func AscendGoroutines[T any](dim, lo, hi int, init []T, op Op[T]) []T {
	return goroutinePass(dim, lo, hi, init, op, false)
}

// DescendGoroutines is AscendGoroutines with dimensions in descending order.
func DescendGoroutines[T any](dim, lo, hi int, init []T, op Op[T]) []T {
	return goroutinePass(dim, lo, hi, init, op, true)
}

func goroutinePass[T any](dim, lo, hi int, init []T, op Op[T], descending bool) []T {
	n := 1 << dim
	if len(init) != n {
		panic(fmt.Sprintf("hypercube: init length %d != 2^%d", len(init), dim))
	}
	if lo < 0 || hi > dim || lo > hi {
		panic(fmt.Sprintf("hypercube: range [%d,%d) invalid for dim %d", lo, hi, dim))
	}
	out := make([]T, n)
	// One channel per (PE, dimension): a PE that races ahead to a later
	// dimension cannot have its message consumed by a slower partner that is
	// still waiting on an earlier dimension.
	inbox := make([][]chan T, n)
	for i := range inbox {
		inbox[i] = make([]chan T, dim)
		for t := range inbox[i] {
			inbox[i][t] = make(chan T, 1)
		}
	}
	// A panic in op must not kill the process (no recover can cross a
	// goroutine boundary) or strand partner PEs mid-exchange: the first
	// panicking PE records its value and aborts every pending exchange, and
	// the pass re-panics in the caller's frame once all PEs have exited.
	var (
		wg        sync.WaitGroup
		panicOnce sync.Once
		panicVal  any
		abort     = make(chan struct{})
	)
	fail := func(r any) {
		panicOnce.Do(func() {
			panicVal = r
			close(abort)
		})
	}
	wg.Add(n)
	for x := 0; x < n; x++ {
		go func(x int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					fail(r)
				}
			}()
			v := init[x]
			step := func(t int) bool {
				partner := x ^ 1<<t
				select {
				case inbox[partner][t] <- v:
				case <-abort:
					return false
				}
				select {
				case pv := <-inbox[x][t]:
					v = op(t, x, v, pv)
				case <-abort:
					return false
				}
				return true
			}
			if descending {
				for t := hi - 1; t >= lo; t-- {
					if !step(t) {
						return
					}
				}
			} else {
				for t := lo; t < hi; t++ {
					if !step(t) {
						return
					}
				}
			}
			out[x] = v
		}(x)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return out
}
