package bvm_test

import (
	"testing"

	"repro/internal/bvm"
	"repro/internal/bvmcheck"
)

// FuzzParseProgramRoundTrip checks, for any input the assembler accepts, that
// disassembly is a canonical fixpoint — parse(disassemble(p)) disassembles to
// the same text — and that the static checker never panics on parser output,
// while Verify-clean programs replay without panicking.
func FuzzParseProgramRoundTrip(f *testing.F) {
	seeds := []string{
		"A, B = D, B (A, R[3], B);",
		"R[5], B = F&D, B (R[3], R[2].L, B) IF {0,2};",
		"A, B = D, maj(F,D,B) (A, A.I, B);",
		"E, B = 1, B (A, A, B);",
		"R[0], B = tt:8e, F^D^B (R[1], B.XS, B) NF {3};",
		"; comment\n  12  A, B = 0, B (A, A.S, B)\nR[1], B = ~F, B?D:F (R[2], R[3].XP, B) IF {1,2,3};",
		"R[300], B = D, B (A, R[1], B);",
		"A, B = D, B (A, R[0], B) IF {9};",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	cfg, err := bvmcheck.DefaultConfig(2)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, src string) {
		p, err := bvm.ParseProgram("fuzz", src)
		if err != nil {
			return // rejected input is fine; we check what the parser accepts
		}

		// Canonical fixpoint: one disassemble/parse cycle must be identity
		// on the text from then on.
		d1 := p.Disassemble()
		p2, err := bvm.ParseProgram("fuzz", d1)
		if err != nil {
			t.Fatalf("disassembly does not re-parse: %v\n%s", err, d1)
		}
		if p2.Len() != p.Len() {
			t.Fatalf("round trip changed length %d -> %d\n%s", p.Len(), p2.Len(), d1)
		}
		d2 := p2.Disassemble()
		if d1 != d2 {
			t.Fatalf("disassembly is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", d1, d2)
		}

		// The checker must handle anything the parser accepts without
		// panicking, and its verdict must be stable across the round trip.
		rep := bvmcheck.Lint(p, cfg)
		if rep.Instructions != p.Len() {
			t.Fatalf("lint saw %d instructions, program has %d", rep.Instructions, p.Len())
		}
		err1 := bvmcheck.Verify(p, cfg)
		err2 := bvmcheck.Verify(p2, cfg)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Verify verdict changed across round trip: %v vs %v", err1, err2)
		}

		// Verify-clean programs are exactly those that replay panic-free.
		if err1 == nil && p.Len() <= 64 {
			m, merr := bvm.New(2, bvm.DefaultRegisters)
			if merr != nil {
				t.Fatal(merr)
			}
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Verify passed but Replay panicked: %v\n%s", r, d1)
				}
			}()
			p.Replay(m)
		}
	})
}
