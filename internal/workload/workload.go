// Package workload generates synthetic test-and-treatment instances for the
// application domains the paper's introduction motivates: medical diagnosis,
// machine fault location, systematic biology, and the classical binary
// testing problem, plus unstructured random instances. The paper supplies no
// datasets (its applications are described qualitatively), so these
// generators are the documented substitution: each produces instances with
// the cost/weight/set structure characteristic of its domain, deterministic
// in the seed so every experiment is reproducible.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
)

// Random returns an unstructured instance: uniform weights and action sets,
// with singleton treatments for every object appended so the instance is
// always adequate.
func Random(seed int64, k, nTests, nTreatments int) *core.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &core.Problem{K: k, Weights: make([]uint64, k)}
	for j := range p.Weights {
		p.Weights[j] = uint64(rng.Intn(50) + 1)
	}
	u := uint32(core.Universe(k))
	for i := 0; i < nTests; i++ {
		p.Actions = append(p.Actions, core.Action{
			Name: fmt.Sprintf("test-%d", i),
			Set:  core.Set(rng.Intn(int(u)-1) + 1),
			Cost: uint64(rng.Intn(40) + 1),
		})
	}
	for i := 0; i < nTreatments; i++ {
		p.Actions = append(p.Actions, core.Action{
			Name:      fmt.Sprintf("treatment-%d", i),
			Set:       core.Set(rng.Intn(int(u)-1) + 1),
			Cost:      uint64(rng.Intn(60) + 10),
			Treatment: true,
		})
	}
	for j := 0; j < k; j++ {
		p.Actions = append(p.Actions, core.Action{
			Name:      fmt.Sprintf("last-resort-%d", j),
			Set:       core.SetOf(j),
			Cost:      uint64(150 + rng.Intn(50)),
			Treatment: true,
		})
	}
	return p
}

// MedicalDiagnosis models the paper's flagship example. Objects are
// candidate diseases with sharply skewed prevalence (Zipf-like weights:
// common colds vastly outnumber rare conditions). Tests are cheap bedside
// symptom checks (broad, unspecific sets) and pricier laboratory assays
// (small, specific sets). Treatments are specific drugs covering one or two
// diseases at moderate cost, plus an expensive broad-spectrum intervention.
// Trying a cheap likely treatment before finishing the workup is often
// optimal here — the behaviour that distinguishes test-and-treatment from
// pure binary testing.
func MedicalDiagnosis(seed int64, k int) *core.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &core.Problem{K: k, Weights: zipf(k)}
	u := core.Universe(k)

	nSymptoms := max(2, k/2)
	for i := 0; i < nSymptoms; i++ {
		p.Actions = append(p.Actions, core.Action{
			Name: fmt.Sprintf("symptom-%d", i),
			Set:  randomSubset(rng, k, k/2+1) & u,
			Cost: uint64(rng.Intn(3) + 1), // bedside check: cheap
		})
	}
	nLabs := max(1, k/3)
	for i := 0; i < nLabs; i++ {
		p.Actions = append(p.Actions, core.Action{
			Name: fmt.Sprintf("lab-%d", i),
			Set:  randomSubset(rng, k, 2) & u,
			Cost: uint64(rng.Intn(15) + 10), // assay: specific but pricey
		})
	}
	for j := 0; j < k; j++ {
		set := core.SetOf(j)
		if rng.Intn(3) == 0 && k > 1 {
			set |= core.SetOf(rng.Intn(k)) // some drugs treat two conditions
		}
		p.Actions = append(p.Actions, core.Action{
			Name:      fmt.Sprintf("drug-%d", j),
			Set:       set,
			Cost:      uint64(rng.Intn(12) + 4),
			Treatment: true,
		})
	}
	p.Actions = append(p.Actions, core.Action{
		Name:      "broad-spectrum",
		Set:       u,
		Cost:      80,
		Treatment: true,
	})
	return p
}

// FaultLocation models computer-system fault location and correction: k
// field-replaceable components grouped into boards. Tests probe subsystems
// hierarchically — coarse probes (half the machine) are cheap, fine probes
// cost more. Treatments replace a single component (cheap part, but any
// replacement carries labor cost) or swap a whole board (expensive, covers
// everything on it). Weights model per-component failure rates.
func FaultLocation(seed int64, k, boardSize int) *core.Problem {
	rng := rand.New(rand.NewSource(seed))
	if boardSize < 1 {
		boardSize = 1
	}
	p := &core.Problem{K: k, Weights: make([]uint64, k)}
	for j := range p.Weights {
		p.Weights[j] = uint64(rng.Intn(9) + 1)
	}
	u := core.Universe(k)

	// Hierarchical probes: split the component range at every granularity.
	for span := k; span >= 2; span = (span + 1) / 2 {
		for lo := 0; lo < k; lo += span {
			hi := min(lo+span/2, k)
			var set core.Set
			for j := lo; j < hi; j++ {
				set |= core.SetOf(j)
			}
			if set == 0 || set == u {
				continue
			}
			cost := uint64(2 + (k/span)*2) // finer probes cost more
			p.Actions = append(p.Actions, core.Action{
				Name: fmt.Sprintf("probe-%d-%d", lo, hi),
				Set:  set,
				Cost: cost,
			})
		}
		if span == 2 {
			break
		}
	}
	for j := 0; j < k; j++ {
		p.Actions = append(p.Actions, core.Action{
			Name:      fmt.Sprintf("replace-part-%d", j),
			Set:       core.SetOf(j),
			Cost:      uint64(10 + rng.Intn(10)),
			Treatment: true,
		})
	}
	for lo := 0; lo < k; lo += boardSize {
		var set core.Set
		for j := lo; j < min(lo+boardSize, k); j++ {
			set |= core.SetOf(j)
		}
		p.Actions = append(p.Actions, core.Action{
			Name:      fmt.Sprintf("swap-board-%d", lo/boardSize),
			Set:       set,
			Cost:      uint64(25 + boardSize*5),
			Treatment: true,
		})
	}
	return p
}

// SystematicBiology models taxonomic identification keys: k taxa with
// near-uniform weights, dichotomous characters (tests that split the
// remaining taxa roughly in half, all at unit-like cost), and an
// "identify + curate" terminal action per taxon — the closest TT analogue of
// a classical identification key, and essentially a binary testing instance.
func SystematicBiology(seed int64, k int) *core.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &core.Problem{K: k, Weights: make([]uint64, k)}
	for j := range p.Weights {
		p.Weights[j] = uint64(3 + rng.Intn(3)) // near-uniform
	}
	u := core.Universe(k)
	nChars := max(3, 2*bitsFor(k))
	for i := 0; i < nChars; i++ {
		set := balancedSubset(rng, k)
		if set == 0 || set == u {
			continue
		}
		p.Actions = append(p.Actions, core.Action{
			Name: fmt.Sprintf("character-%d", i),
			Set:  set,
			Cost: uint64(1 + rng.Intn(2)),
		})
	}
	for j := 0; j < k; j++ {
		p.Actions = append(p.Actions, core.Action{
			Name:      fmt.Sprintf("identify-%d", j),
			Set:       core.SetOf(j),
			Cost:      30,
			Treatment: true,
		})
	}
	return p
}

// BinaryTestingUniform is the canonical binary testing instance the paper
// generalizes: k objects (k a power of two works best), uniform weights, one
// unit-cost test per address bit, and uniform expensive singleton
// treatments. Its optimum is the perfectly balanced key: every object pays
// log2(k) tests plus one treatment.
func BinaryTestingUniform(k int, treatCost uint64) *core.Problem {
	weights := make([]uint64, k)
	for j := range weights {
		weights[j] = 1
	}
	var tests []core.Action
	for b := 0; b < bitsFor(k); b++ {
		var set core.Set
		for j := 0; j < k; j++ {
			if j>>uint(b)&1 == 1 {
				set |= core.SetOf(j)
			}
		}
		tests = append(tests, core.Action{Name: fmt.Sprintf("bit-%d", b), Set: set, Cost: 1})
	}
	return core.BinaryTesting(weights, tests, treatCost)
}

// Oversized returns an instance deliberately past the exact-DP comfort zone:
// k objects (callers pass k above any serving K-cap, up to core.MaxK) with
// skewed weights, address-bit tests for balanced splits, a spread of mid-size
// random tests and treatments, and full treatment coverage so the instance is
// adequate. It is the workload for the bounded-suboptimality plane — exact
// engines refuse it or drown in the 2^k lattice; the anytime solvers must
// still produce a gap-certified tree. Deterministic in the seed.
func Oversized(seed int64, k int) *core.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &core.Problem{K: k, Weights: make([]uint64, k)}
	for j := range p.Weights {
		p.Weights[j] = uint64(1 + 200/(j+2) + rng.Intn(5))
	}
	for b := 0; b < bitsFor(k); b++ {
		var set core.Set
		for j := 0; j < k; j++ {
			if j>>uint(b)&1 == 1 {
				set |= core.SetOf(j)
			}
		}
		p.Actions = append(p.Actions, core.Action{
			Name: fmt.Sprintf("addr-%d", b), Set: set, Cost: uint64(2 + rng.Intn(3))})
	}
	u := uint32(core.Universe(k))
	for i := 0; i < k; i++ {
		p.Actions = append(p.Actions, core.Action{
			Name: fmt.Sprintf("probe-%d", i),
			Set:  core.Set(rng.Intn(int(u)-1) + 1),
			Cost: uint64(1 + rng.Intn(10)),
		})
	}
	// Paired treatments cover neighbouring objects; a final catch-all keeps
	// the instance adequate whatever k is.
	for j := 0; j < k; j += 2 {
		set := core.SetOf(j)
		if j+1 < k {
			set |= core.SetOf(j + 1)
		}
		p.Actions = append(p.Actions, core.Action{
			Name: fmt.Sprintf("fix-%d", j), Set: set, Cost: uint64(20 + rng.Intn(20)), Treatment: true})
	}
	p.Actions = append(p.Actions, core.Action{
		Name: "overhaul", Set: core.Universe(k), Cost: 400, Treatment: true})
	return p
}

// zipf returns k weights proportional to 1/rank, scaled to small integers.
func zipf(k int) []uint64 {
	w := make([]uint64, k)
	for j := range w {
		w[j] = uint64(max(1, 60/(j+1)))
	}
	return w
}

// randomSubset returns a set with approximately want members.
func randomSubset(rng *rand.Rand, k, want int) core.Set {
	var s core.Set
	for j := 0; j < k; j++ {
		if rng.Intn(k) < want {
			s |= core.SetOf(j)
		}
	}
	if s == 0 {
		s = core.SetOf(rng.Intn(k))
	}
	return s
}

// balancedSubset returns a set holding roughly half the universe.
func balancedSubset(rng *rand.Rand, k int) core.Set {
	perm := rng.Perm(k)
	var s core.Set
	for _, j := range perm[:k/2] {
		s |= core.SetOf(j)
	}
	return s
}

func bitsFor(k int) int {
	b := 0
	for 1<<uint(b) < k {
		b++
	}
	return b
}
