// Command ttserve runs the test-and-treatment solver as a long-lived HTTP
// service (internal/serve): instances are POSTed in the instio JSON wire
// format and solved by a selectable engine, with an order-normalized LRU
// solution cache, singleflight collapsing of identical concurrent requests,
// admission control (solver semaphore, bounded queue, K/action budget),
// per-request deadlines that genuinely cancel the O(N·2^K) sweep, and
// graceful drain on SIGINT/SIGTERM. Solves self-heal (retries, per-engine
// circuit breakers, fallback chains) and, with -checkpoint-dir, write durable
// mid-sweep checkpoints that a restarted process finishes from disk before
// serving (docs/RESILIENCE.md).
//
// Usage:
//
//	ttserve [-addr :8080] [-engine seq] [-timeout 10s] [-checkpoint-dir /var/lib/ttserve] [-cluster host:port,...] ...
//
// Endpoints:
//
//	POST /v1/solve?engine=seq|parallel|lockstep|goroutine|ccc|bvm|cluster&certify=off|fast|audit&timeout_ms=...&tree=1&greedy=1&approx=off|RATIO|DEADLINE
//	POST /v1/solve/batch?certify=...&timeout_ms=...&tree=1 — solve related instances together, amortizing shared-lattice enumeration (docs/SERVING.md)
//	POST /v1/eval                     — price a stored policy under a weight vector
//	POST /v1/policy                   — solve, certify, and publish a compiled route policy
//	GET  /v1/policies                 — list resident policy versions
//	POST /v1/route, /v1/route/batch   — stateless per-session policy traversal via signed cursors
//	GET  /healthz                     — liveness (503 while draining)
//	GET  /v1/stats                    — per-server counters and latency histograms
//	GET  /debug/vars, /debug/pprof/*  — expvar and profiling
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/bvm"
	"repro/internal/bvmtt"
	"repro/internal/chaos"
	"repro/internal/serve"
)

// run boots the service and blocks until a shutdown signal (or a closed
// stop channel, the test hook), then drains. When ready is non-nil it
// receives the bound address once the listener is up.
func run(args []string, stderr io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("ttserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	engine := fs.String("engine", "seq", "default solver engine: seq, parallel, lockstep, goroutine, ccc, bvm, or cluster")
	maxConcurrent := fs.Int("max-concurrent", 0, "simultaneous solver runs (0 = GOMAXPROCS)")
	maxPending := fs.Int("max-pending", 0, "queued+running solves before shedding with 503 (0 = 4x max-concurrent)")
	cacheEntries := fs.Int("cache", 0, "LRU capacity in solved instances (0 = 1024, negative disables)")
	timeout := fs.Duration("timeout", 0, "default per-request solve budget (0 = 10s)")
	maxTimeout := fs.Duration("max-timeout", 0, "ceiling on client-requested timeouts (0 = 60s)")
	maxK := fs.Int("max-k", 0, "largest universe accepted; larger instances get 422 (0 = 20)")
	maxActions := fs.Int("max-actions", 0, "most actions accepted (0 = 64)")
	workers := fs.Int("workers", 0, "worker goroutines per parallel solve (0 = GOMAXPROCS)")
	stripeWorkers := fs.Int("stripe-workers", 0, "dedicated stripe-pool workers for striped/batched sweeps (0 = share the process-wide pool)")
	maxBatch := fs.Int("max-batch", 0, "most instances accepted per /v1/solve/batch request (0 = 16)")
	policyBytes := fs.Int64("policy-bytes", 0, "byte budget across published route policies (0 = 64MiB, negative unbounded)")
	routeMaxBatch := fs.Int("route-max-batch", 0, "most sessions accepted per /v1/route/batch request (0 = 4096)")
	drain := fs.Duration("drain", 15*time.Second, "graceful-shutdown drain budget")
	cacheBytes := fs.Int64("cache-bytes", 0, "LRU byte budget across cached solutions (0 = entry count only)")
	checkpointDir := fs.String("checkpoint-dir", "", "directory for durable mid-solve checkpoints; crashes resume from here (empty disables)")
	recoverTimeout := fs.Duration("recover-timeout", 0, "budget for the startup checkpoint-recovery scan and resumes (0 = drain budget)")
	clusterWorkers := fs.String("cluster", "", "comma-separated ttworker addresses enabling the cluster engine (host:port,...)")
	clusterDeadline := fs.Duration("cluster-deadline", 0, "plane deadline before an assigned worker counts as a straggler (0 = 30s)")
	clusterQuorum := fs.Int("cluster-quorum", 0, "minimum live workers for a distributed solve to keep going (0 = 1)")
	clusterAudit := fs.Float64("cluster-audit", 0, "fraction of each received plane's cells the coordinator recomputes (0 = 0.125)")
	clusterDialTimeout := fs.Duration("cluster-dial-timeout", 0, "per-worker dial budget when a solve assembles its fleet (0 = 2s)")
	breakerThreshold := fs.Int("breaker-threshold", 0, "consecutive failures opening an engine's circuit breaker (0 = 3, negative disables)")
	breakerCooldown := fs.Duration("breaker-cooldown", 0, "open breaker's half-open probe delay (0 = 5s)")
	retries := fs.Int("retries", 0, "extra attempts per engine before falling back (0 = 1, negative disables)")
	noFallback := fs.Bool("no-fallback", false, "fail requests instead of degrading to the next engine in the chain")
	certifyMode := fs.String("certify", "", "answer certification before caching/serving: off, fast, or audit (empty = fast); a failure counts as an engine fault")
	approxDefault := fs.String("approx", "", "approx knob for requests that send none: off, a gap ratio >= 1, or a deadline like 200ms (empty = off)")
	approxMaxK := fs.Int("approx-max-k", 0, "largest universe the approx plane accepts (0 = 26, the Set-type maximum)")
	approxMaxActions := fs.Int("approx-max-actions", 0, "most actions the approx plane accepts (0 = 256)")
	approxNodes := fs.Int64("approx-nodes", 0, "branch-and-bound node budget per approx solve (0 = 1<<20, negative = greedy only)")
	chaosLevelDelay := fs.Duration("chaos-level-delay", 0, "TESTING: artificial pause at every DP level barrier")
	chaosFailEngine := fs.String("chaos-fail-engine", "", "TESTING: inject solve faults, as engine[:count] (count omitted = every attempt)")
	chaosCorruptEngine := fs.String("chaos-corrupt-engine", "", "TESTING: silently corrupt finished answers, as engine[:count] (count omitted = every attempt)")
	chaosBVMFault := fs.String("chaos-bvm-fault", "", "TESTING: inject a hardware fault kernel into every BVM machine: stuck-bit[:pe], stuck-e[:pe], or broken-lateral[:pe]")
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	engineFault, err := parseChaosFail(*chaosFailEngine)
	if err != nil {
		return fmt.Errorf("ttserve: %w", err)
	}
	resultFault, err := parseChaosCorrupt(*chaosCorruptEngine)
	if err != nil {
		return fmt.Errorf("ttserve: %w", err)
	}
	if *chaosBVMFault != "" {
		hook, err := parseBVMFault(*chaosBVMFault)
		if err != nil {
			return fmt.Errorf("ttserve: %w", err)
		}
		restore := bvmtt.SetMachineHook(hook)
		defer restore()
	}

	fleet := splitWorkers(*clusterWorkers)
	if *engine == "cluster" && len(fleet) == 0 {
		return errors.New("ttserve: -engine cluster needs a worker fleet (-cluster host:port,...)")
	}
	// The recovery budget defaults to the drain budget: both bound "how long
	// may this process do something other than serve".
	if *recoverTimeout == 0 {
		*recoverTimeout = *drain
	}

	logger := slog.New(slog.NewTextHandler(stderr, nil))
	srv := serve.New(serve.Config{
		MaxConcurrent:      *maxConcurrent,
		MaxPending:         *maxPending,
		CacheEntries:       *cacheEntries,
		CacheBytes:         *cacheBytes,
		DefaultTimeout:     *timeout,
		MaxTimeout:         *maxTimeout,
		MaxK:               *maxK,
		MaxActions:         *maxActions,
		Workers:            *workers,
		StripeWorkers:      *stripeWorkers,
		MaxBatch:           *maxBatch,
		PolicyBytes:        *policyBytes,
		RouteMaxBatch:      *routeMaxBatch,
		DefaultEngine:      *engine,
		Logger:             logger,
		BreakerThreshold:   *breakerThreshold,
		BreakerCooldown:    *breakerCooldown,
		Retries:            *retries,
		DisableFallback:    *noFallback,
		CheckpointDir:      *checkpointDir,
		RecoverTimeout:     *recoverTimeout,
		ClusterWorkers:     fleet,
		ClusterDeadline:    *clusterDeadline,
		ClusterQuorum:      *clusterQuorum,
		ClusterAudit:       *clusterAudit,
		ClusterDialTimeout: *clusterDialTimeout,
		CertifyMode:        *certifyMode,
		DefaultApprox:      *approxDefault,
		ApproxMaxK:         *approxMaxK,
		ApproxMaxActions:   *approxMaxActions,
		ApproxNodes:        *approxNodes,
		EngineFault:        engineFault,
		ResultFault:        resultFault,
		LevelDelay:         *chaosLevelDelay,
	})

	// Before accepting traffic, finish any solve a previous process died in
	// the middle of: their durable level frontiers are on disk, and resuming
	// them now means the requests that triggered them hit the cache on retry.
	if *checkpointDir != "" {
		// RecoverTimeout bounds the scan and resumes inside the server; on
		// expiry recovery stops gracefully and the leftovers stay on disk.
		resumed, discarded, err := srv.RecoverCheckpoints(context.Background())
		if err != nil {
			return fmt.Errorf("ttserve: recovering checkpoints: %w", err)
		}
		if resumed > 0 || discarded > 0 {
			logger.Info("checkpoint recovery", "resumed", resumed, "discarded", discarded)
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("ttserve: %w", err)
	}
	hs := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	logger.Info("ttserve listening", "addr", ln.Addr().String(), "engine", *engine)
	if ready != nil {
		ready <- ln.Addr().String()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case err := <-serveErr:
		return fmt.Errorf("ttserve: %w", err)
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
	case <-stop:
		logger.Info("shutting down", "signal", "stop")
	}

	// Drain: stop routing (healthz 503), finish accepted requests, then
	// cancel whatever is still running past the budget.
	srv.SetDraining(true)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	err = hs.Shutdown(ctx)
	srv.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("ttserve: drain: %w", err)
	}
	logger.Info("drained cleanly")
	return nil
}

// splitWorkers parses the -cluster flag: comma-separated worker addresses,
// whitespace tolerated, empties dropped.
func splitWorkers(spec string) []string {
	var out []string
	for _, a := range strings.Split(spec, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// parseChaosSpec splits an "engine[:count]" chaos spec (count omitted =
// every attempt).
func parseChaosSpec(flagName, spec string) (engine string, n int64, err error) {
	engine, countStr, hasCount := strings.Cut(spec, ":")
	n = 1<<62 - 1
	if hasCount {
		v, err := strconv.ParseInt(countStr, 10, 64)
		if err != nil || v < 0 {
			return "", 0, fmt.Errorf("bad %s count %q", flagName, countStr)
		}
		n = v
	}
	return engine, n, nil
}

// parseChaosFail turns "-chaos-fail-engine engine[:count]" into the serve
// fault hook: the named engine's first count attempts fail. Empty spec means
// no injection.
func parseChaosFail(spec string) (func(string) error, error) {
	if spec == "" {
		return nil, nil
	}
	engine, n, err := parseChaosSpec("-chaos-fail-engine", spec)
	if err != nil {
		return nil, err
	}
	return chaos.FailFirst(engine, n, errors.New("injected chaos fault")), nil
}

// parseChaosCorrupt turns "-chaos-corrupt-engine engine[:count]" into the
// serve result-corruption hook: the named engine's first count answers are
// silently wrong, exercising the certify-before-cache gate. Empty spec means
// no injection.
func parseChaosCorrupt(spec string) (func(string) bool, error) {
	if spec == "" {
		return nil, nil
	}
	engine, n, err := parseChaosSpec("-chaos-corrupt-engine", spec)
	if err != nil {
		return nil, err
	}
	return chaos.CorruptFirst(engine, n), nil
}

// parseBVMFault turns "-chaos-bvm-fault kind[:pe]" into a machine hook that
// injects one of internal/bvm's hardware fault kernels into every BVM the
// server builds — the live-fire test of the ABFT layer: with -certify=fast
// the faulted machine must repair or refuse, never answer wrong.
func parseBVMFault(spec string) (func(*bvm.Machine), error) {
	kind, peStr, hasPE := strings.Cut(spec, ":")
	pe := 0
	if hasPE {
		v, err := strconv.Atoi(peStr)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad -chaos-bvm-fault PE %q", peStr)
		}
		pe = v
	}
	switch kind {
	case "stuck-bit":
		return func(m *bvm.Machine) { m.InjectStuckBit(bvm.R(0), pe%m.N(), true) }, nil
	case "stuck-e":
		return func(m *bvm.Machine) { m.InjectStuckBit(bvm.E, pe%m.N(), false) }, nil
	case "broken-lateral":
		return func(m *bvm.Machine) { m.InjectBrokenLateral(pe % m.N()) }, nil
	default:
		return nil, fmt.Errorf("unknown -chaos-bvm-fault kind %q (want stuck-bit, stuck-e, or broken-lateral)", kind)
	}
}

func main() {
	if err := run(os.Args[1:], os.Stderr, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
