package bvmtt

import (
	"context"
	"errors"
	"math/bits"
	"math/rand"
	"testing"

	"repro/internal/bvm"
	"repro/internal/ccc"
	"repro/internal/certify"
	"repro/internal/core"
)

// testGeometry recomputes the machine geometry and register layout solve()
// will pick for p, so tests can aim pokes and fault injections at specific
// planes.
func testGeometry(t *testing.T, p *core.Problem) (lay layout, width, q, logN int) {
	t.Helper()
	width = SuggestWidth(p)
	minLogN := 1
	for 1<<uint(minLogN) < len(p.Actions) {
		minLogN++
	}
	top, err := ccc.ForPEs(1 << uint(p.K+minLogN))
	if err != nil {
		t.Fatal(err)
	}
	q = top.AddrBits
	logN = q - p.K
	lay, err = planLayout(q, p.K, width)
	if err != nil {
		t.Fatal(err)
	}
	return lay, width, q, logN
}

// TestBVMABFTHealthyBitIdentical: with Verify on and a healthy machine the
// BVM engine still matches the sequential DP bit for bit, with no repairs.
func TestBVMABFTHealthyBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 3; trial++ {
		p := randomProblem(rng, 4, 3+rng.Intn(3))
		want, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := SolveOpts(context.Background(), p, Options{Verify: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cost != want.Cost {
			t.Fatalf("cost %d, want %d", res.Cost, want.Cost)
		}
		if res.Repairs != 0 {
			t.Fatalf("healthy run performed %d repairs", res.Repairs)
		}
		for s := range want.C {
			if res.C[s] != want.C[s] {
				t.Fatalf("C plane mismatch at %v", core.Set(s))
			}
		}
	}
}

// TestBVMABFTRepairsTransientCorruption: a one-shot silent flip of a machine
// word is detected at the next barrier, the machine is rebuilt by host pokes,
// and the solve completes with the right answer and Repairs = 1.
func TestBVMABFTRepairsTransientCorruption(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(82)), 4, 5)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	lay, width, _, _ := testGeometry(t, p)
	for name, corrupt := range map[string]func(m *bvm.Machine){
		// PE 0 is (S=∅, i=0): its M word is frozen at 0 from round 1 on, so
		// this lands in the checksummed region.
		"frozen-m-plane": func(m *bvm.Machine) { m.SetUint(lay.m.Base, width, 0, 1) },
		"ps-plane":       func(m *bvm.Machine) { m.SetUint(lay.ps.Base, width, 3, m.Uint(lay.ps.Base, width, 3)^1) },
		"tp-plane":       func(m *bvm.Machine) { m.SetUint(lay.tp.Base, width, 5, m.Uint(lay.tp.Base, width, 5)^1) },
	} {
		fired := false
		abftCorruptHook = func(round int, m *bvm.Machine) {
			if round == 2 && !fired {
				fired = true
				corrupt(m)
			}
		}
		res, err := SolveOpts(context.Background(), p, Options{Verify: true})
		abftCorruptHook = nil
		if err != nil {
			t.Fatalf("%s: transient corruption was not repaired: %v", name, err)
		}
		if !fired {
			t.Fatalf("%s: corruption hook never fired", name)
		}
		if res.Cost != want.Cost {
			t.Fatalf("%s: cost %d, want %d", name, res.Cost, want.Cost)
		}
		if res.Repairs != 1 {
			t.Fatalf("%s: Repairs = %d, want 1", name, res.Repairs)
		}
	}
}

// TestBVMABFTRefusesPersistentCorruption: corruption that re-asserts itself
// on the repair re-run ends the solve with a typed certify.LevelError.
func TestBVMABFTRefusesPersistentCorruption(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(83)), 4, 5)
	lay, width, _, _ := testGeometry(t, p)
	abftCorruptHook = func(round int, m *bvm.Machine) {
		if round == 2 {
			m.SetUint(lay.m.Base, width, 0, 1) // every attempt, including the re-run
		}
	}
	defer func() { abftCorruptHook = nil }()
	_, err := SolveOpts(context.Background(), p, Options{Verify: true})
	var lerr *certify.LevelError
	if !errors.As(err, &lerr) {
		t.Fatalf("err = %v, want *certify.LevelError", err)
	}
	if lerr.Engine != "bvm" || lerr.Level != 2 {
		t.Fatalf("LevelError = %+v, want engine bvm at level 2", lerr)
	}
	if len(lerr.Report.Violations) == 0 {
		t.Fatal("LevelError carries no violations")
	}
}

// TestBVMABFTFaultKernelsCaught is the chaos acceptance test for the fault
// kernels in internal/bvm/fault.go: a stuck register bit, a stuck E (enable)
// bit, and a broken lateral link are injected into real verified solves via
// the machine hook. The contract is that no fault ever yields a silent wrong
// answer — each solve either refuses with a certify.LevelError or returns the
// bit-identical correct cost plane — and that across the sweep the faults are
// actually detected at least once per kernel (the test would be vacuous if
// every injection happened to be harmless).
func TestBVMABFTFaultKernelsCaught(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	p := randomProblem(rng, 4, 5)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	lay, _, _, _ := testGeometry(t, p)
	kernels := map[string]func(m *bvm.Machine, pe int){
		"stuck-bit-m-plane": func(m *bvm.Machine, pe int) {
			m.InjectStuckBit(bvm.R(lay.m.Base), pe, true)
		},
		"stuck-bit-ps-plane": func(m *bvm.Machine, pe int) {
			m.InjectStuckBit(bvm.R(lay.ps.Base+1), pe, true)
		},
		"stuck-e-bit": func(m *bvm.Machine, pe int) {
			m.InjectStuckBit(bvm.E, pe, false)
		},
		"broken-lateral": func(m *bvm.Machine, pe int) {
			m.InjectBrokenLateral(pe)
		},
	}
	for name, inject := range kernels {
		detected := 0
		for _, pe := range []int{1, 7, 42, 100} {
			pe := pe
			restore := SetMachineHook(func(m *bvm.Machine) {
				inject(m, pe%m.N())
			})
			res, err := SolveOpts(context.Background(), p, Options{Verify: true})
			restore()
			if err != nil {
				var lerr *certify.LevelError
				if !errors.As(err, &lerr) {
					t.Fatalf("%s@pe%d: err = %v, want *certify.LevelError", name, pe, err)
				}
				detected++
				continue
			}
			// The solve went through (possibly after repairs): the answer
			// must be exactly right — a wrong answer escaping is the one
			// outcome the layer exists to prevent.
			if res.Cost != want.Cost {
				t.Fatalf("%s@pe%d: silent wrong answer %d, want %d", name, pe, res.Cost, want.Cost)
			}
			for s := range want.C {
				if res.C[s] != want.C[s] {
					t.Fatalf("%s@pe%d: silent C plane corruption at %v", name, pe, core.Set(s))
				}
			}
			if res.Repairs > 0 {
				detected++
			}
		}
		if detected == 0 {
			t.Errorf("%s: no injection was ever detected — test is vacuous", name)
		}
	}
}

// TestBVMABFTUnverifiedFaultEscapes documents the threat: the same stuck-bit
// kernel without Options.Verify flows straight into the answer.
func TestBVMABFTUnverifiedFaultEscapes(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(85)), 4, 5)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	lay, _, _, _ := testGeometry(t, p)
	restore := SetMachineHook(func(m *bvm.Machine) {
		m.InjectStuckBit(bvm.R(lay.m.Base), m.N()-1, true)
	})
	defer restore()
	res, err := Solve(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost == want.Cost {
		t.Skip("fault did not change the answer on this instance")
	}
	// The wrong answer sailed through: exactly what Options.Verify and the
	// serve-side certifier exist to stop.
}

// TestBVMABFTVerifiedResume: a verified solve resumed from a mid-sweep
// frontier seeds its mirror from the checkpoint and still matches the DP.
func TestBVMABFTVerifiedResume(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(86)), 4, 5)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	f := &core.Frontier{Level: 2, C: make([]uint64, len(want.C)), Choice: make([]int32, len(want.C))}
	for s := range want.C {
		if bits.OnesCount(uint(s)) <= 2 {
			f.C[s], f.Choice[s] = want.C[s], want.Choice[s]
		} else {
			f.C[s], f.Choice[s] = core.Inf, -1
		}
	}
	res, err := SolveOpts(context.Background(), p, Options{Frontier: f, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != want.Cost || res.Repairs != 0 {
		t.Fatalf("resumed verified solve: cost %d (want %d), repairs %d", res.Cost, want.Cost, res.Repairs)
	}
}
