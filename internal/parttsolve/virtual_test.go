package parttsolve

import (
	"math/rand"
	"testing"
)

func TestFoldFactor(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(1)), 5, 6)
	res, err := Solve(p, Lockstep)
	if err != nil {
		t.Fatal(err)
	}
	// DimBits = 5 + 3 = 8.
	if res.DimBits != 8 {
		t.Fatalf("DimBits = %d", res.DimBits)
	}
	cases := map[int]int{8: 1, 9: 1, 6: 4, 3: 32}
	for phys, want := range cases {
		f, err := res.FoldFactor(phys)
		if err != nil {
			t.Fatalf("phys %d: %v", phys, err)
		}
		if f != want {
			t.Errorf("FoldFactor(%d) = %d, want %d", phys, f, want)
		}
	}
	if _, err := res.FoldFactor(0); err == nil {
		t.Error("FoldFactor(0) accepted")
	}
}

func TestVirtualizedStepsScaleExactly(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(2)), 4, 5)
	res, err := Solve(p, Lockstep)
	if err != nil {
		t.Fatal(err)
	}
	full, err := res.VirtualizedSteps(res.DimBits)
	if err != nil {
		t.Fatal(err)
	}
	if full != res.Steps() {
		t.Fatalf("unfolded steps %d != %d", full, res.Steps())
	}
	half, err := res.VirtualizedSteps(res.DimBits - 1)
	if err != nil {
		t.Fatal(err)
	}
	if half != 2*res.Steps() {
		t.Fatalf("half machine steps %d, want %d", half, 2*res.Steps())
	}
}

func TestVirtualizedSpeedupMonotone(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(3)), 6, 7)
	res, err := Solve(p, Lockstep)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	const t1 = 1e6
	for phys := 2; phys <= res.DimBits; phys++ {
		s, err := res.VirtualizedSpeedup(t1, phys)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev {
			t.Fatalf("speedup not monotone in machine size at 2^%d", phys)
		}
		prev = s
	}
}
