// Package approx is the bounded-suboptimality plane: anytime solvers for TT
// instances past the exact-DP budget, every answer shipped with a defensible
// quality claim. Where internal/core's solvers enumerate the 2^K lattice,
// this package builds valid procedure trees in polynomial time and space —
//
//   - a greedy portfolio (the classic cost/probability-ratio rule and an
//     information-gain variant from the sequential-testing literature) that
//     always produces an incumbent in O(K²·N) with no 2^K state;
//   - an AND/OR branch-and-bound over candidate sets that uses the best
//     greedy tree as its incumbent upper bound and the certifiable
//     treatment/information lower bound (certify.LowerBound's per-set form)
//     for pruning, memoizing subproblem bounds so they are reusable;
//
// under an anytime contract: Solve never fails because time ran out. A
// deadline or node-budget expiry returns the best incumbent found so far,
// together with the lower bound that prices its optimality gap. The caller
// (internal/serve) then has the certifier independently re-price the tree
// and re-derive the bound before the answer can reach a cache or a client.
package approx

import (
	"context"
	"fmt"
	"time"

	"repro/internal/certify"
	"repro/internal/core"
)

// Options tunes one Solve call; the zero value runs the greedy portfolio
// plus a default-budget branch-and-bound with no deadline.
type Options struct {
	// Deadline bounds the branch-and-bound improvement phase; 0 means no
	// wall-clock bound beyond the context. The greedy incumbent is always
	// computed first, so a tight deadline degrades quality, not success.
	Deadline time.Duration
	// TargetMilli stops work as soon as the certified gap reaches the
	// target (certify.GapScale = demand proven optimality); 0 means improve
	// until the budget runs out.
	TargetMilli uint64
	// NodeBudget caps branch-and-bound node expansions. 0 selects the
	// default (1<<20); negative disables the branch-and-bound entirely,
	// leaving the greedy portfolio answer.
	NodeBudget int64
	// MemoLimit caps the branch-and-bound's memoized subproblem count.
	// 0 selects the default (1<<20).
	MemoLimit int
}

func (o Options) withDefaults() Options {
	if o.NodeBudget == 0 {
		o.NodeBudget = 1 << 20
	}
	if o.MemoLimit <= 0 {
		o.MemoLimit = 1 << 20
	}
	return o
}

// Result is one anytime answer: a valid procedure tree (nil only for
// certifiably inadequate instances), its exact re-priceable cost, and the
// instance-level lower bound that prices the optimality gap.
type Result struct {
	Tree       *core.Node
	Cost       uint64 // exact cost of Tree (core.Inf when inadequate)
	LowerBound uint64 // certifiable lower bound on the optimum
	GapMilli   uint64 // certify.GapFor(Cost, LowerBound): proven Cost ≤ gap·OPT
	Exact      bool   // branch-and-bound ran to completion: Cost is the optimum
	Adequate   bool   // false: no successful procedure exists (Uncovered is the witness)
	Uncovered  int    // an object no treatment covers, when !Adequate
	Policy     string // which solver produced Tree: greedy-ratio, greedy-gain, bb
	Nodes      int64  // branch-and-bound nodes expanded
}

// Solve runs the anytime pipeline: adequacy witness, greedy portfolio,
// then branch-and-bound improvement within the budgets. The only errors are
// an invalid instance and a context that ends before any incumbent exists;
// once the portfolio has produced a tree, budget expiry (including the
// context deadline) returns that incumbent rather than failing — the
// anytime contract that lets a serving layer degrade instead of 5xx-ing.
func Solve(ctx context.Context, p *core.Problem, opts Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	st := newState(p)
	st.memoCap = opts.MemoLimit
	if j := st.uncovered(); j >= 0 {
		// Certifiably inadequate: object j can never be cured, so no
		// successful procedure exists at any cost.
		return &Result{Cost: core.Inf, LowerBound: core.Inf, GapMilli: certify.GapScale,
			Adequate: false, Exact: true, Uncovered: j, Policy: "coverage"}, nil
	}

	u := core.Universe(p.K)
	lb := st.lower(u)
	res := &Result{LowerBound: lb, Adequate: true, Uncovered: -1, Cost: core.Inf}

	// Greedy portfolio: both policies are cheap relative to any exact or
	// branch-and-bound work, and neither dominates the other across
	// workloads; keep the better tree as the incumbent.
	type attempt struct {
		policy string
		build  func() (*core.Node, error)
	}
	for _, at := range []attempt{
		{"greedy-ratio", func() (*core.Node, error) { return core.GreedyTree(p) }},
		{"greedy-gain", func() (*core.Node, error) { return st.greedyGain() }},
	} {
		tree, err := at.build()
		if err != nil {
			continue // the other policy or the B&B may still succeed
		}
		cost, err := core.TreeCostCtx(ctx, p, tree)
		if err != nil {
			if ctx.Err() != nil && res.Tree != nil {
				break // budget gone mid-portfolio: keep what we have
			}
			if ctx.Err() != nil {
				return nil, err
			}
			continue
		}
		if cost < res.Cost {
			res.Tree, res.Cost, res.Policy = tree, cost, at.policy
		}
	}
	if res.Tree == nil {
		// Both greedy policies failed on an adequate, validated instance;
		// nothing below can run without an incumbent.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("approx: no greedy incumbent for adequate instance")
	}
	res.GapMilli = certify.GapFor(res.Cost, res.LowerBound)
	if res.Cost == res.LowerBound {
		res.Exact = true // the bound is tight; no search needed
	}
	if res.Exact || opts.NodeBudget < 0 ||
		(opts.TargetMilli > 0 && res.GapMilli <= opts.TargetMilli) {
		return res, nil
	}

	// Branch-and-bound improvement phase, bounded by context, deadline, and
	// node budget. A completed search proves optimality; an interrupted one
	// leaves the incumbent standing.
	b := &bb{
		st:        st,
		memo:      make(map[core.Set]bbEntry),
		memoLimit: opts.MemoLimit,
		budget:    opts.NodeBudget,
		ctx:       ctx,
	}
	if opts.Deadline > 0 {
		b.deadline = time.Now().Add(opts.Deadline)
	}
	val, exact := b.solve(u, core.SatAdd(res.Cost, 1))
	res.Nodes = b.nodes
	if exact && val <= res.Cost {
		if tree, err := b.extract(u); err == nil {
			res.Tree, res.Cost, res.Policy, res.Exact = tree, val, "bb", true
			res.GapMilli = certify.GapFor(res.Cost, res.LowerBound)
		}
		// An extraction failure leaves the greedy incumbent standing: the
		// anytime contract never trades a valid tree for a proof.
	}
	if err := ctx.Err(); err != nil && res.Tree == nil {
		return nil, err
	}
	return res, nil
}
