// Package certorder proves the certify-before-cache discipline from PR 5: in
// the serving layer, no solver answer reaches the cache or a client response
// until it has passed through the certify package. The check is a dominance
// argument over each function's statement structure — every cache-insert and
// solve-response-write site must be preceded on all paths by a certifying
// call (a call that reaches certify.Check*, directly or through the
// package-local call graph) or by an explicit certify.ModeOff/Off reference,
// the documented opt-out annotation.
//
// Without x/tools the repo has no SSA, so dominance is computed on the AST:
// a forward walk through each function body that tracks a "certified" flag,
// meeting at if/else joins (both arms must certify for the join to be
// certified) and resetting at loop entry. That is conservative — a site the
// walk cannot prove dominated is reported even if some exotic control flow
// would certify it dynamically — which is the right polarity for this
// invariant: the PR 5 incident class is silently serving unverified answers.
//
// The bounded-suboptimality plane (PR 10) tightens the rule: inside any
// function whose name mentions approx, the certify.ModeOff/Off annotation is
// NOT an accepted opt-out — gap certification has no off switch, because an
// approximate answer's quality claim is only knowledge at all once it has
// been independently verified. Such functions must be dominated by a real
// certifying call (certify.CertifyGap, certify.CheckInadequate, ...) before
// any sink.
package certorder

import (
	"go/ast"
	"go/types"
	"regexp"

	"repro/internal/analysis"
)

// Analyzer is the certorder pass.
var Analyzer = &analysis.Analyzer{
	Name: "certorder",
	Doc: "every cache-insert and solve-response-write site in a package that " +
		"imports certify must be dominated by a certify call or an explicit " +
		"certify.Off annotation (certify-before-cache, PR 5); inside approx-path " +
		"functions the Off annotation is not accepted — gap certification has no " +
		"off switch (PR 10)",
	Run: run,
}

// cacheTypeRE matches named types that act as answer caches.
var cacheTypeRE = regexp.MustCompile(`(?i)(cache|lru)`)

// responseTypeRE matches the response struct whose write is the serve
// boundary.
var responseTypeRE = regexp.MustCompile(`SolveResponse$`)

// approxFuncRE marks functions on the bounded-suboptimality path, where the
// ModeOff opt-out is disallowed: approximate answers are certified always.
var approxFuncRE = regexp.MustCompile(`(?i)approx`)

func run(pass *analysis.Pass) error {
	certifyPkg := importedCertify(pass)
	if certifyPkg == nil {
		return nil // no certify import: the discipline does not apply here
	}

	// Fixpoint: which package-level functions certify (transitively reach a
	// certify.Check* call on some path)?
	certifying := certifyingFuncs(pass, certifyPkg)

	for _, file := range pass.Files {
		if pass.TestFiles[file] {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if recvIsCache(pass, fd) {
				continue // the cache's own methods are below the boundary
			}
			w := &walker{pass: pass, certifyPkg: certifyPkg, certifying: certifying,
				noOptOut: approxFuncRE.MatchString(fd.Name.Name)}
			w.block(fd.Body, false)
		}
	}
	return nil
}

// importedCertify returns the imported package named "certify", or nil.
// Matching by package name keeps analyzer testdata honest: a fake certify
// package exercises exactly the paths the real one does.
func importedCertify(pass *analysis.Pass) *types.Package {
	for _, imp := range pass.Pkg.Imports() {
		if imp.Name() == "certify" {
			return imp
		}
	}
	return nil
}

// certifyingFuncs computes the set of package-level functions and methods
// that contain a certifying call, transitively through the package-local
// call graph.
func certifyingFuncs(pass *analysis.Pass, certifyPkg *types.Package) map[types.Object]bool {
	// bodies maps each function object to its syntax.
	bodies := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.ObjectOf(fd.Name); obj != nil {
					bodies[obj] = fd
				}
			}
		}
	}
	certifying := map[types.Object]bool{}
	for changed := true; changed; {
		changed = false
		for obj, fd := range bodies {
			if certifying[obj] {
				continue
			}
			found := false
			analysis.CallsInExecutedCode(fd.Body, func(call *ast.CallExpr) {
				if found {
					return
				}
				if isCertifyCheck(pass, call, certifyPkg) || certifying[analysis.CalleeObj(pass.TypesInfo, call)] {
					found = true
				}
			})
			if found {
				certifying[obj] = true
				changed = true
			}
		}
	}
	return certifying
}

// isCertifyCheck reports whether call invokes a checking entry point of the
// certify package (Check*, Certify*, or Verify*); parsing helpers like
// certify.ParseMode do not count.
func isCertifyCheck(pass *analysis.Pass, call *ast.CallExpr, certifyPkg *types.Package) bool {
	obj := analysis.CalleeObj(pass.TypesInfo, call)
	if obj == nil || obj.Pkg() != certifyPkg {
		return false
	}
	name := obj.Name()
	for _, prefix := range []string{"Check", "Certify", "Verify"} {
		if len(name) >= len(prefix) && name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// recvIsCache reports whether fd is a method on a cache-named type.
func recvIsCache(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	return namedMatches(t, cacheTypeRE)
}

func namedMatches(t types.Type, re *regexp.Regexp) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return re.MatchString(named.Obj().Name())
}

// walker performs the forward certified-dominance walk.
type walker struct {
	pass       *analysis.Pass
	certifyPkg *types.Package
	certifying map[types.Object]bool
	noOptOut   bool // approx-path function: ModeOff mentions do not certify
}

// block walks stmts sequentially, threading the certified flag, and returns
// the flag's state at the end of the straight-line path.
func (w *walker) block(b *ast.BlockStmt, certified bool) bool {
	for _, stmt := range b.List {
		certified = w.stmt(stmt, certified)
	}
	return certified
}

func (w *walker) stmt(s ast.Stmt, certified bool) bool {
	switch st := s.(type) {
	case *ast.IfStmt:
		if st.Init != nil {
			certified = w.stmt(st.Init, certified)
		}
		condCertifies := w.exprCertifies(st.Cond, certified)
		thenOut := w.block(st.Body, condCertifies)
		elseOut := condCertifies
		if st.Else != nil {
			elseOut = w.stmt(st.Else, condCertifies)
		}
		return thenOut && elseOut
	case *ast.BlockStmt:
		return w.block(st, certified)
	case *ast.ForStmt:
		if st.Init != nil {
			certified = w.stmt(st.Init, certified)
		}
		if st.Cond != nil {
			certified = w.exprCertifies(st.Cond, certified)
		}
		w.block(st.Body, certified)
		return certified // body may run zero times
	case *ast.RangeStmt:
		w.block(st.Body, certified)
		return certified
	case *ast.SwitchStmt:
		if st.Init != nil {
			certified = w.stmt(st.Init, certified)
		}
		allOut := true
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			out := certified
			for _, bs := range cc.Body {
				out = w.stmt(bs, out)
			}
			allOut = allOut && out
		}
		if !certified && allOut && hasDefault(st.Body) {
			return true // every arm certifies and one always runs
		}
		return certified
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			out := certified
			for _, bs := range cc.Body {
				out = w.stmt(bs, out)
			}
		}
		return certified
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			out := certified
			for _, bs := range cc.Body {
				out = w.stmt(bs, out)
			}
		}
		return certified
	case *ast.DeferStmt:
		// A deferred closure runs at exit; walk it with the current state
		// (conservative: sites inside it need certification before the defer
		// is declared).
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.block(lit.Body, certified)
		}
		w.checkSinks(st, certified)
		return certified || w.stmtCertifies(st)
	case *ast.LabeledStmt:
		return w.stmt(st.Stmt, certified)
	case *ast.ExprStmt:
		// An immediately-invoked literal is straight-line code: walk it
		// inline so certification established inside it carries through.
		if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
			if lit, ok := call.Fun.(*ast.FuncLit); ok {
				return w.block(lit.Body, certified)
			}
		}
		w.checkSinks(st, certified)
		return certified || w.stmtCertifies(st)
	case *ast.GoStmt:
		// A goroutine body is walked with the launch-time state; ordering
		// against the launcher's later statements is not assumed.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			w.block(lit.Body, certified)
			return certified
		}
		w.checkSinks(st, certified)
		return certified || w.stmtCertifies(st)
	default:
		w.checkSinks(s, certified)
		return certified || w.stmtCertifies(s)
	}
}

// exprCertifies evaluates an expression for certifying calls or the explicit
// ModeOff annotation and returns the updated flag.
func (w *walker) exprCertifies(e ast.Expr, certified bool) bool {
	if certified {
		return true
	}
	found := false
	analysis.CallsInExecutedCode(e, func(call *ast.CallExpr) {
		if w.callCertifies(call) {
			found = true
		}
	})
	if !found && !w.noOptOut && mentionsModeOff(w.pass, e, w.certifyPkg) {
		found = true
	}
	return found
}

// stmtCertifies reports whether executing s certifies subsequent statements:
// it contains a certifying call in executed position, or the explicit
// certify.ModeOff / certify.Off annotation.
func (w *walker) stmtCertifies(s ast.Stmt) bool {
	found := false
	analysis.CallsInExecutedCode(s, func(call *ast.CallExpr) {
		if w.callCertifies(call) {
			found = true
		}
	})
	if !found && !w.noOptOut && mentionsModeOff(w.pass, s, w.certifyPkg) {
		found = true
	}
	return found
}

// callCertifies: a direct certify.Check* call, or a call (including go/defer
// launches) of a package-local function that transitively certifies.
func (w *walker) callCertifies(call *ast.CallExpr) bool {
	if isCertifyCheck(w.pass, call, w.certifyPkg) {
		return true
	}
	return w.certifying[analysis.CalleeObj(w.pass.TypesInfo, call)]
}

// mentionsModeOff detects the explicit opt-out: a reference to the certify
// package's ModeOff or Off identifier.
func mentionsModeOff(pass *analysis.Pass, n ast.Node, certifyPkg *types.Package) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		id, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(id)
		if obj != nil && obj.Pkg() == certifyPkg && (obj.Name() == "ModeOff" || obj.Name() == "Off") {
			found = true
		}
		return !found
	})
	return found
}

// checkSinks reports cache-insert and response-write sites inside s when the
// walk has not established certification.
func (w *walker) checkSinks(s ast.Stmt, certified bool) {
	if certified {
		return
	}
	analysis.CallsInExecutedCode(s, func(call *ast.CallExpr) {
		if w.isCacheInsert(call) {
			w.pass.Reportf(call.Pos(), "cache insert is not dominated by a certify call: an uncertified answer can be served from here forever (certify-before-cache, PR 5)")
		}
		if w.isResponseWrite(call) {
			w.pass.Reportf(call.Pos(), "solve response is written before any certify call on this path: an uncertified answer reaches the client")
		}
	})
}

// isCacheInsert matches calls to add/Add/insert/Insert/put/Put methods on
// cache-named types.
func (w *walker) isCacheInsert(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "add", "Add", "insert", "Insert", "put", "Put", "set", "Set":
	default:
		return false
	}
	return namedMatches(w.pass.TypeOf(sel.X), cacheTypeRE)
}

// isResponseWrite matches calls passing a *SolveResponse-typed value to a
// JSON/HTTP writer helper.
func (w *walker) isResponseWrite(call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if namedMatches(w.pass.TypeOf(arg), responseTypeRE) {
			return true
		}
	}
	return false
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}
