package bvmalg

import "repro/internal/bvm"

// MulSatWord computes dst = x·y with saturation at all-ones, by bit-serial
// shift-and-add: for each bit b of y, conditionally accumulate x<<b. Bits of
// x shifted out of the word, and carries out of the accumulator, raise a
// sticky overflow flag that forces the all-ones (infinity) result. This is
// the initialization step TP[S,i] = t_i·p(S) of the paper's TT program.
//
// dst must not alias x or y. scratch supplies 2·Width+2 registers: two words
// (the running shift of x and the trial sum) and two flag bits. O(Width^2)
// instructions.
func MulSatWord(m *bvm.Machine, dst, x, y Word, scratchBase int) {
	sameWidth(dst, x)
	sameWidth(dst, y)
	w := dst.Width
	shifted := Word{Base: scratchBase, Width: w}
	sum := Word{Base: scratchBase + w, Width: w}
	lost := bvm.R(scratchBase + 2*w) // sticky: a set bit of x has been shifted out
	ovf := bvm.R(scratchBase + 2*w + 1)

	SetWordConst(m, dst, 0)
	m.SetConst(lost, false)
	m.SetConst(ovf, false)
	CopyWord(m, shifted, x)

	for b := 0; b < w; b++ {
		if b > 0 {
			// shifted <<= 1, folding the dropped top bit into lost.
			m.Or(lost, lost, bvm.Loc(shifted.Bit(w-1)))
			for i := w - 1; i >= 1; i-- {
				m.Mov(shifted.Bit(i), bvm.Loc(shifted.Bit(i-1)))
			}
			m.SetConst(shifted.Bit(0), false)
		}
		// sum = dst + shifted; carry-out remains in B.
		AddWord(m, sum, dst, shifted)
		// ovf |= y_b AND (carry OR lost), in two instructions:
		// first B |= lost, then fold B gated by y_b into ovf.
		m.Exec(bvm.Instr{
			Dst: bvm.A, FTT: bvm.TTF,
			GTT: bvm.TT(func(f, d, b_ bool) bool { return b_ || d }),
			F:   bvm.A, D: bvm.Loc(lost),
		})
		m.Exec(bvm.Instr{
			Dst: ovf,
			FTT: bvm.TT(func(f, d, b_ bool) bool { return f || (d && b_) }),
			GTT: bvm.TTB,
			F:   ovf, D: bvm.Loc(y.Bit(b)),
		})
		// dst = y_b ? sum : dst.
		m.MovB(bvm.Loc(y.Bit(b)))
		for i := 0; i < w; i++ {
			m.MuxB(dst.Bit(i), dst.Bit(i), bvm.Loc(sum.Bit(i)))
		}
	}
	// Saturate where overflowed.
	orOvf := bvm.TT(func(f, d, b bool) bool { return f || d })
	for i := 0; i < w; i++ {
		m.Exec(bvm.Instr{Dst: dst.Bit(i), FTT: orOvf, GTT: bvm.TTB, F: dst.Bit(i), D: bvm.Loc(ovf)})
	}
}
