package parttsolve

import (
	"math/bits"

	"repro/internal/certify"
	"repro/internal/core"
)

// This file is the engines' algorithm-based fault tolerance (ABFT) layer
// (docs/RESILIENCE.md, "Silent data corruption"). The simulated machine is
// several orders of magnitude slower than the host, so a host-side shadow of
// the DP — one sequential sweep's worth of arithmetic spread across the level
// barriers — is nearly free relative to the simulation it guards. At every
// barrier j the shadow knows the true (C, Choice) frontier, and the machine's
// entire architectural state is a function of it: the frozen groups must hold
// the mirror values, the #S = j group must hold the recurrence's level-j
// values, not-yet-active groups must still be at infinity, the mark plane
// must equal the #S = j predicate, and the PS/TP planes must match the host
// weights (the probability-conservation invariant p(S∩T)+p(S−T) = p(S) holds
// by construction for the host's sums, so any machine deviation is
// corruption). A violation triggers one localized repair — the machine is
// rebuilt from the trusted mirror exactly like a frontier restore — and a
// re-run of the damaged round; a second violation means the fault is
// persistent (a stuck PE bit, a broken route) and the solve refuses with a
// typed certify.LevelError instead of returning a wrong answer.

// abftCorruptHook, when non-nil (tests only), runs after every completed
// round with the live machine state, so tests can model transient and
// persistent silent corruption.
var abftCorruptHook func(round int, state []Cell)

// abft is the host-side trusted shadow of a verified parallel solve.
type abft struct {
	actions []core.Action // the real (unpadded) actions
	paddedA []core.Action // the padded table the machine runs
	psum    []uint64      // host p(S)
	c       []uint64      // trusted mirror of C, final for popcount <= level
	choice  []int32       // trusted mirror of Choice
	k       int
	logN    int
}

func newABFT(p *core.Problem, paddedA []core.Action, logN int) *abft {
	size := 1 << uint(p.K)
	a := &abft{
		actions: p.Actions,
		paddedA: paddedA,
		psum:    make([]uint64, size),
		c:       make([]uint64, size),
		choice:  make([]int32, size),
		k:       p.K,
		logN:    logN,
	}
	for s := 1; s < size; s++ {
		low := s & -s
		a.psum[s] = core.SatAdd(a.psum[s&(s-1)], p.Weights[bits.TrailingZeros(uint(low))])
	}
	for s := 1; s < size; s++ {
		a.c[s] = core.Inf
	}
	for s := range a.choice {
		a.choice[s] = -1
	}
	return a
}

// seed absorbs a restored frontier into the mirror: resume trusts the
// checkpoint layer's own validation (checkpoint.Decode re-derives every
// frontier entry from the recurrence before handing it out).
func (a *abft) seed(f *core.Frontier) {
	for s := range a.c {
		if bits.OnesCount(uint(s)) <= f.Level {
			a.c[s] = f.C[s]
			a.choice[s] = f.Choice[s]
		}
	}
}

// advance computes the true level-j values into the mirror from the
// recurrence over the already-trusted lower levels — the host's half of the
// barrier handshake, run before the machine's round is inspected.
func (a *abft) advance(j int) {
	size := 1 << uint(a.k)
	v := uint32(1)<<uint(j) - 1
	for v < uint32(size) {
		s := core.Set(v)
		best, bestIdx := core.Inf, int32(-1)
		for i, act := range a.actions {
			inter := s & act.Set
			diff := s &^ act.Set
			cost := core.SatMul(act.Cost, a.psum[s])
			if act.Treatment {
				if inter == 0 {
					cost = core.Inf
				} else {
					cost = core.SatAdd(cost, a.c[diff])
				}
			} else {
				if inter == 0 || diff == 0 {
					cost = core.Inf
				} else {
					cost = core.SatAdd(cost, core.SatAdd(a.c[inter], a.c[diff]))
				}
			}
			if cost < best {
				best, bestIdx = cost, int32(i)
			}
		}
		a.c[v], a.choice[v] = best, bestIdx
		c := v & -v
		r := v + c
		v = (r^v)>>2/c | r
	}
}

// verify checks the whole machine against the mirror at barrier j and
// reports every deviation (capped at 8 — one is already fatal).
func (a *abft) verify(state []Cell, j int) *certify.Report {
	r := &certify.Report{}
	iMask := 1<<uint(a.logN) - 1
	for addr := range state {
		cell := &state[addr]
		s := addr >> uint(a.logN)
		pc := bits.OnesCount(uint(s))
		i := addr & iMask
		set := core.Set(s)
		if cell.Mark != (pc == j) {
			r.Violations = append(r.Violations, certify.Violation{
				Kind: certify.BadStructure, Set: set, Action: i,
				Detail: "group mark off the #S=j wavefront"})
		}
		if cell.PS != a.psum[s] {
			r.Violations = append(r.Violations, certify.Violation{
				Kind: certify.BadConservation, Set: set, Action: i, Got: cell.PS, Want: a.psum[s],
				Detail: "machine p(S) plane disagrees with the host weights"})
		}
		if wantTP := core.SatMul(a.paddedA[i].Cost, a.psum[s]); cell.TP != wantTP {
			r.Violations = append(r.Violations, certify.Violation{
				Kind: certify.BadCell, Set: set, Action: i, Got: cell.TP, Want: wantTP,
				Detail: "machine t_i·p(S) plane disagrees with the host recomputation"})
		}
		if pc > j {
			if cell.M != core.Inf || cell.MI != -1 {
				r.Violations = append(r.Violations, certify.Violation{
					Kind: certify.BadCell, Set: set, Action: i, Got: cell.M, Want: core.Inf,
					Detail: "not-yet-active cell disturbed"})
			}
		} else if cell.M != a.c[s] {
			r.Violations = append(r.Violations, certify.Violation{
				Kind: certify.BadCell, Set: set, Action: i, Got: cell.M, Want: a.c[s],
				Detail: "cell disagrees with the trusted mirror"})
		} else if cell.MI != a.choice[s] {
			r.Violations = append(r.Violations, certify.Violation{
				Kind: certify.BadChoice, Set: set, Action: i,
				Got: uint64(cell.MI), Want: uint64(a.choice[s]),
				Detail: "argmin disagrees with the lowest-index minimizer"})
		}
		if len(r.Violations) >= 8 {
			return r
		}
	}
	return r
}
