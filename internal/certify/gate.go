package certify

import (
	"fmt"

	"repro/internal/core"
)

// Certificate is an unforgeable witness that a (problem, tree, cost) triple
// passed full tree certification: the tree is a structurally valid,
// successful TT procedure for the problem and its bottom-up price equals the
// claimed optimum. Only this package can mint one (the fields are
// unexported and the only constructor is Certify), which makes the
// certificate a capability: code that demands a *Certificate — the policy
// compiler — can only ever be handed certify-passing answers. This is the
// compile-after-certify discipline, the same shape as serve's
// certify-before-cache contract.
//
// A Certificate pins the exact values it checked; accessors return them so
// the consumer cannot be handed a certificate for one tree and bytes of
// another.
type Certificate struct {
	problem *core.Problem
	root    *core.Node
	cost    uint64
}

// Certify checks the triple and mints a certificate, or reports why not.
// The problem must be Validate()-clean and the tree must pass Tree against
// the claimed cost.
func Certify(p *core.Problem, root *core.Node, cost uint64) (*Certificate, error) {
	if p == nil {
		return nil, fmt.Errorf("certify: nil problem")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rep := Tree(p, root, cost); !rep.OK() {
		return nil, rep.Err()
	}
	return &Certificate{problem: p, root: root, cost: cost}, nil
}

// Problem returns the certified problem.
func (c *Certificate) Problem() *core.Problem { return c.problem }

// Root returns the certified procedure tree.
func (c *Certificate) Root() *core.Node { return c.root }

// Cost returns the certified optimum C(U).
func (c *Certificate) Cost() uint64 { return c.cost }
