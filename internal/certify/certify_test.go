package certify

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
)

// randomProblem builds a random, usually adequate instance (same construction
// as the core tests: a catch-all treatment guarantees adequacy).
func randomProblem(rng *rand.Rand, k, nActions int) *core.Problem {
	p := &core.Problem{K: k, Weights: make([]uint64, k)}
	for j := range p.Weights {
		p.Weights[j] = uint64(rng.Intn(20) + 1)
	}
	u := uint32(core.Universe(k))
	for i := 0; i < nActions; i++ {
		p.Actions = append(p.Actions, core.Action{
			Set:       core.Set(rng.Intn(int(u))+1) & core.Set(u),
			Cost:      uint64(rng.Intn(30) + 1),
			Treatment: rng.Intn(2) == 0,
		})
	}
	p.Actions = append(p.Actions, core.Action{Name: "catch-all", Set: core.Universe(k), Cost: 500, Treatment: true})
	return p
}

func solveTree(t *testing.T, p *core.Problem) (*core.Solution, *core.Node) {
	t.Helper()
	sol, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if !sol.Adequate() {
		t.Fatal("expected adequate instance")
	}
	root, err := sol.Tree(p)
	if err != nil {
		t.Fatal(err)
	}
	return sol, root
}

func TestParseMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mode
		ok   bool
	}{
		{"off", ModeOff, true},
		{"fast", ModeFast, true},
		{"", ModeFast, true},
		{"audit", ModeAudit, true},
		{"paranoid", ModeOff, false},
	} {
		got, err := ParseMode(tc.in)
		if (err == nil) != tc.ok || (tc.ok && got != tc.want) {
			t.Errorf("ParseMode(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && tc.in != "" && got.String() != tc.in {
			t.Errorf("Mode(%q).String() = %q", tc.in, got.String())
		}
	}
}

// TestHonestAnswersCertify: every check passes on genuine solver output, over
// many random instances — certification must never reject a correct answer.
func TestHonestAnswersCertify(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 60; trial++ {
		k := 2 + rng.Intn(5)
		p := randomProblem(rng, k, 1+rng.Intn(6))
		sol, root := solveTree(t, p)
		if r := Tree(p, root, sol.Cost); !r.OK() {
			t.Fatalf("trial %d: Tree rejected an honest answer: %v", trial, r.Violations)
		}
		if r := Table(p, sol.C); !r.OK() {
			t.Fatalf("trial %d: Table rejected an honest answer: %v", trial, r.Violations)
		}
		if r := Monotone(p, sol.C); !r.OK() {
			t.Fatalf("trial %d: Monotone rejected an honest answer: %v", trial, r.Violations)
		}
		if r := Cells(p, sol.C, sol.Choice, 64, int64(trial)); !r.OK() {
			t.Fatalf("trial %d: Cells rejected an honest answer: %v", trial, r.Violations)
		}
		for _, mode := range []Mode{ModeOff, ModeFast, ModeAudit} {
			if r := Check(p, sol.Cost, root, sol.C, sol.Choice, mode, int64(trial)); !r.OK() {
				t.Fatalf("trial %d: Check(%v) rejected an honest answer: %v", trial, mode, r.Violations)
			}
		}
	}
}

// TestInadequateCertifies: an inadequate instance (cost Inf, no tree) must
// certify cleanly from its table.
func TestInadequateCertifies(t *testing.T) {
	p := &core.Problem{
		K:       2,
		Weights: []uint64{1, 1},
		Actions: []core.Action{{Set: core.SetOf(0), Cost: 1, Treatment: true}},
	}
	sol, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Adequate() {
		t.Fatal("instance should be inadequate")
	}
	if r := Check(p, sol.Cost, nil, sol.C, sol.Choice, ModeAudit, 1); !r.OK() {
		t.Fatalf("inadequate answer rejected: %v", r.Violations)
	}
}

func TestTreeDetectsWrongReportedCost(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(2)), 4, 5)
	sol, root := solveTree(t, p)
	r := Tree(p, root, sol.Cost+1)
	if r.OK() {
		t.Fatal("perturbed reported cost not detected")
	}
	if r.Violations[0].Kind != BadPrice {
		t.Fatalf("kind = %v, want %v", r.Violations[0].Kind, BadPrice)
	}
	var cerr *Error
	if err := r.Err(); !errors.As(err, &cerr) {
		t.Fatalf("Err() = %v, want *Error", err)
	}
}

func TestTableDetectsCorruptTopCell(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(3)), 4, 5)
	sol, _ := solveTree(t, p)
	c := append([]uint64(nil), sol.C...)
	c[len(c)-1]++
	if r := Table(p, c); r.OK() {
		t.Fatal("corrupt top cell not detected")
	}
	c = append([]uint64(nil), sol.C...)
	c[0] = 7
	if r := Table(p, c); r.OK() {
		t.Fatal("nonzero C(∅) not detected")
	}
	if r := Table(p, c[:4]); r.OK() || r.Violations[0].Kind != BadShape {
		t.Fatal("wrong geometry not detected")
	}
}

// TestCellsDetectsCorruptSampledCell corrupts exactly the subset the seeded
// sampler draws first, so detection is deterministic.
func TestCellsDetectsCorruptSampledCell(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(4)), 5, 6)
	sol, _ := solveTree(t, p)
	size := len(sol.C)
	const seed = 99
	first := 1 + rand.New(rand.NewSource(seed)).Intn(size-1)
	c := append([]uint64(nil), sol.C...)
	if c[first] == core.Inf {
		c[first] = 5
	} else {
		c[first]++
	}
	r := Cells(p, c, nil, 1, seed)
	if r.OK() {
		t.Fatalf("corrupt cell %v not detected", core.Set(first))
	}
	if r.Violations[0].Kind != BadCell {
		t.Fatalf("kind = %v, want %v", r.Violations[0].Kind, BadCell)
	}
	if r.Checked != len(p.Actions) {
		t.Fatalf("Checked = %d, want %d", r.Checked, len(p.Actions))
	}
}

func TestCellsDetectsWrongArgmin(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(5)), 4, 5)
	sol, _ := solveTree(t, p)
	size := len(sol.C)
	const seed = 42
	first := 1 + rand.New(rand.NewSource(seed)).Intn(size-1)
	choice := append([]int32(nil), sol.Choice...)
	choice[first] = (choice[first] + 1) % int32(len(p.Actions))
	// The perturbed index may happen to be an equal-cost minimizer only if it
	// prices identically; the lowest-index tie-break still makes it wrong
	// unless it *is* the recorded one — which the +1 rotation rules out.
	r := Cells(p, sol.C, choice, 1, seed)
	if r.OK() {
		t.Fatalf("wrong argmin at %v not detected", core.Set(first))
	}
	if r.Violations[0].Kind != BadChoice {
		t.Fatalf("kind = %v, want %v", r.Violations[0].Kind, BadChoice)
	}
}

func TestMonotoneDetectsInversion(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(6)), 4, 5)
	sol, _ := solveTree(t, p)
	c := append([]uint64(nil), sol.C...)
	u := len(c) - 1
	c[u&^1] = c[u] + 100 // subset costs more than its superset: impossible
	r := Monotone(p, c)
	if r.OK() {
		t.Fatal("monotonicity inversion not detected")
	}
	if r.Violations[0].Kind != BadMonotone {
		t.Fatalf("kind = %v, want %v", r.Violations[0].Kind, BadMonotone)
	}
}

func TestCheckRefusesUnverifiableFiniteCost(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(7)), 3, 4)
	if r := Check(p, 123, nil, nil, nil, ModeFast, 0); r.OK() {
		t.Fatal("finite cost with no evidence must not certify")
	}
	if r := Check(p, core.Inf, nil, nil, nil, ModeFast, 0); !r.OK() {
		t.Fatalf("Inf with no evidence should pass (nothing claimed): %v", r.Violations)
	}
	if r := Check(p, 123, nil, nil, nil, ModeOff, 0); !r.OK() {
		t.Fatal("ModeOff must not reject anything")
	}
}

// cloneTree deep-copies a procedure tree so mutations don't alias.
func cloneTree(n *core.Node) *core.Node {
	if n == nil {
		return nil
	}
	return &core.Node{Action: n.Action, Set: n.Set, Pos: cloneTree(n.Pos), Neg: cloneTree(n.Neg)}
}

// collect returns every node in the tree, root first.
func collect(n *core.Node) []*core.Node {
	if n == nil {
		return nil
	}
	out := []*core.Node{n}
	out = append(out, collect(n.Pos)...)
	return append(out, collect(n.Neg)...)
}
