// Command ttworker runs one cluster solve worker (internal/cluster): it
// listens for coordinator sessions, computes assigned level slices of the DP
// lattice with the exact sequential recurrence, and exchanges CRC-framed
// planes over the cluster wire protocol. A ttserve started with -cluster
// dials a fleet of these per solve.
//
// Usage:
//
//	ttworker [-addr 127.0.0.1:0] [-id name] [-fault honest|offline|malicious|slow|corrupt-plane]
//
// The -fault flag wraps the honest machine in one of the fault-matrix
// behaviors (internal/cluster/faults.go) so the multi-process smoke harness
// and chaos drills can stand up byzantine fleets from the command line. The
// bound address is printed to stderr as "ttworker listening addr=..." once
// the listener is up.
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/cluster"
)

// run boots the worker and blocks until a shutdown signal (or a closed stop
// channel, the test hook). When ready is non-nil it receives the bound
// address once the listener is up.
func run(args []string, stderr io.Writer, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("ttworker", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address")
	id := fs.String("id", "", "worker ID announced to coordinators (default host:port)")
	fault := fs.String("fault", "honest", "TESTING: machine behavior: honest, offline, malicious, slow, or corrupt-plane")
	fs.SetOutput(stderr)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mt, err := cluster.ParseMachineType(*fault)
	if err != nil {
		return err
	}
	log := slog.New(slog.NewTextHandler(stderr, nil))

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return fmt.Errorf("listen %s: %w", *addr, err)
	}
	bound := ln.Addr().String()
	name := *id
	if name == "" {
		name = bound
	}
	if mt != cluster.Honest {
		log.Warn("ttworker running with an injected fault", "fault", mt.String())
	}
	log.Info("ttworker listening", "addr", bound, "id", name, "fault", mt.String())
	if ready != nil {
		ready <- bound
	}

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- cluster.Serve(ln, func() cluster.Machine { return cluster.NewMachine(mt, name) }, log)
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case s := <-sig:
		log.Info("shutting down", "signal", s.String())
	case <-stop:
	case err := <-serveErr:
		return err
	}
	_ = ln.Close()
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stderr, nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "ttworker:", err)
		os.Exit(1)
	}
}
