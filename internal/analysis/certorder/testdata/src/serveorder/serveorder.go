// Seeded true positives and near-miss negatives for the certorder analyzer,
// shaped like the repo's serving layer.
package serveorder

import (
	"errors"

	"certify"
)

type entry struct {
	key  string
	cost uint64
}

type lruCache struct{ m map[string]*entry }

// add is the cache's own method: below the boundary, exempt.
func (c *lruCache) add(e *entry) { c.m[e.key] = e }

// SolveResponse is the wire answer.
type SolveResponse struct{ Cost uint64 }

func writeJSON(v any) {}

type server struct {
	cache *lruCache
	mode  certify.Mode
}

// True positive: insert first, certify after — the PR 5 incident shape.
func (s *server) badOrder(e *entry) {
	s.cache.add(e) // want "cache insert is not dominated by a certify call"
	_ = certify.Check(e.cost)
}

// True positive: a response written with no certify anywhere on the path.
func (s *server) badResponse(e *entry) {
	writeJSON(&SolveResponse{Cost: e.cost}) // want "written before any certify"
}

// True positive: certify runs on only one branch; the insert below the join
// is reachable uncertified.
func (s *server) halfCertified(e *entry, fast bool) {
	if fast {
		if !certify.Check(e.cost).OK() {
			return
		}
	}
	s.cache.add(e) // want "cache insert is not dominated by a certify call"
}

// True positive: certify inside a loop body does not dominate code after the
// loop — the body may run zero times.
func (s *server) loopCertified(es []*entry, e *entry) {
	for _, x := range es {
		_ = certify.Check(x.cost)
	}
	s.cache.add(e) // want "cache insert is not dominated by a certify call"
}

// True positive: ParseMode is a parsing helper, not a certifying call.
func (s *server) parseIsNotCertify(e *entry, name string) {
	s.mode = certify.ParseMode(name)
	s.cache.add(e) // want "cache insert is not dominated by a certify call"
}

// Negative: the canonical shape — certify dominates both sinks.
func (s *server) goodOrder(e *entry) {
	if !certify.Check(e.cost).OK() {
		return
	}
	s.cache.add(e)
	writeJSON(&SolveResponse{Cost: e.cost})
}

// Negative: both branches of the if certify, so the join is certified.
func (s *server) bothBranches(e *entry, audit bool) {
	if audit {
		_ = certify.VerifyEntry(e.cost, e.key)
	} else {
		_ = certify.Check(e.cost)
	}
	s.cache.add(e)
}

// Near-miss negative: the explicit opt-out annotation — referencing
// certify.ModeOff is the documented way to bypass the gate.
func (s *server) offMode(e *entry) {
	if s.mode == certify.ModeOff {
		s.cache.add(e)
	}
}

// Near-miss negative: certification through a package-local helper; the
// fixpoint marks certifyEntry as certifying.
func (s *server) viaHelper(e *entry) error {
	if err := s.certifyEntry(e); err != nil {
		return err
	}
	s.cache.add(e)
	return nil
}

func (s *server) certifyEntry(e *entry) error {
	if !certify.VerifyEntry(e.cost, e.key).OK() {
		return errors.New("certification refused")
	}
	return nil
}

// Near-miss negative: the real runSolve shape — the certify call lives in an
// immediately-invoked literal, which is straight-line code.
func (s *server) viaClosure(e *entry) {
	func() {
		if !certify.Check(e.cost).OK() {
			e = nil
		}
	}()
	if e != nil {
		s.cache.add(e)
	}
}

// Near-miss negative: the solveShared shape — the response is written after
// launching a goroutine that certifies (and itself inserts post-certify).
func (s *server) viaGoroutine(e *entry, done chan struct{}) *SolveResponse {
	go s.runSolve(e, done)
	<-done
	resp := &SolveResponse{Cost: e.cost}
	writeJSON(resp)
	return resp
}

func (s *server) runSolve(e *entry, done chan struct{}) {
	defer close(done)
	func() {
		if !certify.Check(e.cost).OK() {
			e = nil
		}
	}()
	if e != nil {
		s.cache.add(e)
	}
}

// PR 10 cases: inside approx-path functions (name mentions approx) the
// ModeOff opt-out is disallowed — gap certification has no off switch.

// True positive: the opt-out annotation that excuses offMode above does NOT
// excuse an approx-path function.
func (s *server) approxOffMode(e *entry) {
	if s.mode == certify.ModeOff {
		s.cache.add(e) // want "cache insert is not dominated by a certify call"
	}
}

// True positive: insert before the gap certification — the same incident
// shape as badOrder, on the approx path.
func (s *server) solveApproxBadOrder(e *entry) {
	s.cache.add(e) // want "cache insert is not dominated by a certify call"
	_ = certify.CertifyGap(e.cost, 1500, 10)
}

// True positive: deriving a lower bound is arithmetic, not certification.
func (s *server) approxBoundIsNotCertify(e *entry) {
	e.cost = certify.LowerBound(4)
	s.cache.add(e) // want "cache insert is not dominated by a certify call"
}

// Negative: the real solveApproxAttempt shape — gap certification (or the
// inadequacy witness check) dominates the insert and the response write.
func (s *server) solveApproxGoodOrder(e *entry, adequate bool) {
	if adequate {
		if !certify.CertifyGap(e.cost, 1500, 10).OK() {
			return
		}
	} else {
		if !certify.CheckInadequate(3).OK() {
			return
		}
	}
	s.cache.add(e)
	writeJSON(&SolveResponse{Cost: e.cost})
}

// Negative: gap certification through a package-local helper; the fixpoint
// marks certifyApprox as certifying, and no ModeOff mention is involved.
func (s *server) approxViaHelper(e *entry) error {
	if err := s.certifyApprox(e); err != nil {
		return err
	}
	s.cache.add(e)
	return nil
}

func (s *server) certifyApprox(e *entry) error {
	if !certify.CertifyGap(e.cost, 2000, 5).OK() {
		return errors.New("gap claim refused")
	}
	return nil
}
