// Package policy compiles certified procedure trees into immutable,
// versioned policy artifacts and serves per-step traversals over them — the
// deployed-procedure plane of ROADMAP item 1. The paper's output is a
// test-and-treatment *procedure*; the million-user workload is not solving
// fresh instances but walking an already-certified tree one response at a
// time (a patient answering tests, a device under diagnosis). This package
// supplies the substrate for that workload:
//
//   - Compile flattens a certified tree into an array-of-nodes Artifact: no
//     pointers, index-linked children in preorder (every child index is
//     strictly greater than its parent's, so traversals and decoders
//     terminate by construction), fixed-width 16-byte node records. A step
//     is a bounds-checked array read.
//   - Compile demands a *certify.Certificate — the unforgeable witness that
//     the tree passed the engine-independent certifier. Compile-after-certify
//     mirrors serve's certify-before-cache discipline: there is no code path
//     that turns an unverified tree into a routable artifact.
//   - Artifacts serialize into an instio artifact frame (CRC-gated) whose
//     payload embeds the full pricing context (weights, actions, certified
//     optimum) and is sealed with SHA-256. Decode re-derives the tree from
//     the records and re-certifies it against the embedded problem, so a
//     tampered-but-CRC-valid artifact is rejected at load.
//   - Store (store.go) keeps published artifacts in a versioned in-memory
//     registry with lock-free lookups and LRU byte budgeting; Cursor
//     (cursor.go) is the tamper-evident session token that makes the serving
//     endpoints stateless.
package policy

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/instio"
)

// Child-index sentinels. Non-negative values index Artifact.Nodes.
const (
	// Done ends the procedure: the faulty object has been treated.
	Done int32 = -1
	// None marks an impossible outcome (the negative branch of a treatment
	// that covers its whole candidate set). Reporting it is a client error.
	None int32 = -2
)

// Node is one flattened tree vertex: the action to perform there and the
// node to move to for each outcome. The wire record is 16 bytes (action,
// pos, neg, pad), so a mapped artifact can be walked in place.
type Node struct {
	Action int32 // index into Artifact.Actions
	Pos    int32 // next node on a positive outcome (test positive / treated)
	Neg    int32 // next node on a negative outcome
}

// Action mirrors core.Action in a form the route plane can hand out.
type Action struct {
	Name      string
	Set       core.Set
	Cost      uint64
	Treatment bool
}

// Artifact is one compiled, immutable policy. After Store.Publish assigns a
// version and seals it, nothing mutates it again; every reader shares it.
type Artifact struct {
	ID      string // canonical instance hash of the certified solve
	Version uint32 // assigned by the store at publish; 0 = unpublished
	K       int
	Cost    uint64 // certified optimum C(U)
	Weights []uint64
	Actions []Action
	Nodes   []Node
	Root    int32

	sum   [32]byte // SHA-256 seal over the encoded payload; zero until sealed
	bytes int64    // resident size estimate, for the store's byte budget
}

// Compile flattens a certified procedure tree into an artifact. The
// *certify.Certificate parameter is the compile gate: only certify can mint
// one, so only certify-passing (problem, tree, cost) triples are compilable.
// id names the policy — serve passes the canonical instance hash, so a
// policy and the solve cache agree on identity.
func Compile(cert *certify.Certificate, id string) (*Artifact, error) {
	if cert == nil {
		return nil, fmt.Errorf("policy: compile requires a certificate (compile-after-certify)")
	}
	if id == "" {
		return nil, fmt.Errorf("policy: compile requires a policy id")
	}
	p, root := cert.Problem(), cert.Root()
	art := &Artifact{
		ID:      id,
		K:       p.K,
		Cost:    cert.Cost(),
		Weights: append([]uint64(nil), p.Weights...),
	}
	for _, a := range p.Actions {
		art.Actions = append(art.Actions, Action{Name: a.Name, Set: a.Set, Cost: a.Cost, Treatment: a.Treatment})
	}
	var flatten func(n *core.Node) (int32, error)
	flatten = func(n *core.Node) (int32, error) {
		idx := int32(len(art.Nodes))
		art.Nodes = append(art.Nodes, Node{Action: int32(n.Action)})
		a := p.Actions[n.Action]
		if a.Treatment {
			art.Nodes[idx].Pos = Done
			if n.Neg == nil {
				art.Nodes[idx].Neg = None
			} else {
				neg, err := flatten(n.Neg)
				if err != nil {
					return 0, err
				}
				art.Nodes[idx].Neg = neg
			}
			return idx, nil
		}
		if n.Pos == nil || n.Neg == nil {
			// Unreachable for a certified tree; refuse rather than emit a
			// broken artifact if the invariant is ever violated.
			return 0, fmt.Errorf("policy: test node missing a branch")
		}
		pos, err := flatten(n.Pos)
		if err != nil {
			return 0, err
		}
		art.Nodes[idx].Pos = pos
		neg, err := flatten(n.Neg)
		if err != nil {
			return 0, err
		}
		art.Nodes[idx].Neg = neg
		return idx, nil
	}
	r, err := flatten(root)
	if err != nil {
		return nil, err
	}
	art.Root = r
	return art, nil
}

// Step advances one session: from node, with a positive or negative
// outcome, to the next node index — Done, None, or a valid index. ok is
// false when node itself is not a valid index. This is the route plane's
// innermost operation: two bounds checks and an array read, no locks, no
// allocation.
func (a *Artifact) Step(node int32, positive bool) (next int32, ok bool) {
	if node < 0 || int(node) >= len(a.Nodes) {
		return 0, false
	}
	n := a.Nodes[node]
	if positive {
		return n.Pos, true
	}
	return n.Neg, true
}

// ActionAt returns the action to perform at a node.
func (a *Artifact) ActionAt(node int32) (Action, bool) {
	if node < 0 || int(node) >= len(a.Nodes) {
		return Action{}, false
	}
	idx := a.Nodes[node].Action
	if idx < 0 || int(idx) >= len(a.Actions) {
		return Action{}, false
	}
	return a.Actions[idx], true
}

// Key is the 64-bit cursor-binding key: the first 8 bytes of the seal.
// Cursors carry it, so a cursor is bound to the exact sealed bytes of one
// artifact version — not to a name that could be re-published.
func (a *Artifact) Key() uint64 {
	return binary.LittleEndian.Uint64(a.sum[:8])
}

// Bytes is the artifact's resident size estimate.
func (a *Artifact) Bytes() int64 { return a.bytes }

// Sealed reports whether the artifact has been sealed (published or loaded).
func (a *Artifact) Sealed() bool { return a.sum != [32]byte{} }

// --- encoding ---
//
// Payload layout (little-endian, sections in order, 8-byte-aligned records):
//
//	header   40 B: format u32, K u32, actions u32, nodes u32, root u32,
//	              version u32, cost u64, idLen u32, nameBlobLen u32
//	weights  K × 8 B
//	actions  actions × 24 B: set u32, flags u32, cost u64, nameOff u32, nameLen u32
//	nodes    nodes × 16 B: action i32, pos i32, neg i32, pad u32
//	id       idLen B (policy id, UTF-8)
//	names    nameBlobLen B (action names, referenced by off/len)
//	pad      to an 8-byte boundary
//	seal     32 B: SHA-256 over everything above
//
// The whole payload travels inside an instio artifact frame (kind
// FramePolicy), which adds the CRC gate for torn or bit-flipped files.

const (
	payloadFormat  = 1
	payloadHdrLen  = 40
	actionRecLen   = 24
	nodeRecLen     = 16
	sealLen        = sha256.Size
	maxArtActions  = 1 << 12
	maxArtNodes    = 1 << 22
	maxArtNameBlob = 1 << 20
)

// encode renders the sealable payload (seal included) for the artifact's
// current contents. Deterministic: equal artifacts encode to equal bytes.
func (a *Artifact) encode() ([]byte, error) {
	if a.K < 1 || a.K > core.MaxK || len(a.Weights) != a.K {
		return nil, fmt.Errorf("policy: artifact has %d weights for K=%d", len(a.Weights), a.K)
	}
	if len(a.Actions) == 0 || len(a.Actions) > maxArtActions {
		return nil, fmt.Errorf("policy: artifact has %d actions", len(a.Actions))
	}
	if len(a.Nodes) == 0 || len(a.Nodes) > maxArtNodes {
		return nil, fmt.Errorf("policy: artifact has %d nodes", len(a.Nodes))
	}
	var names bytes.Buffer
	type nameRef struct{ off, n int }
	refs := make([]nameRef, len(a.Actions))
	for i, act := range a.Actions {
		refs[i] = nameRef{off: names.Len(), n: len(act.Name)}
		names.WriteString(act.Name)
	}
	if names.Len() > maxArtNameBlob {
		return nil, fmt.Errorf("policy: action names total %d bytes", names.Len())
	}
	fixed := payloadHdrLen + 8*a.K + actionRecLen*len(a.Actions) + nodeRecLen*len(a.Nodes)
	varLen := len(a.ID) + names.Len()
	pad := (8 - (fixed+varLen)%8) % 8
	buf := make([]byte, fixed+varLen+pad+sealLen)

	le := binary.LittleEndian
	le.PutUint32(buf[0:], payloadFormat)
	le.PutUint32(buf[4:], uint32(a.K))
	le.PutUint32(buf[8:], uint32(len(a.Actions)))
	le.PutUint32(buf[12:], uint32(len(a.Nodes)))
	le.PutUint32(buf[16:], uint32(a.Root))
	le.PutUint32(buf[20:], a.Version)
	le.PutUint64(buf[24:], a.Cost)
	le.PutUint32(buf[32:], uint32(len(a.ID)))
	le.PutUint32(buf[36:], uint32(names.Len()))
	off := payloadHdrLen
	for _, w := range a.Weights {
		le.PutUint64(buf[off:], w)
		off += 8
	}
	for i, act := range a.Actions {
		le.PutUint32(buf[off:], uint32(act.Set))
		var flags uint32
		if act.Treatment {
			flags = 1
		}
		le.PutUint32(buf[off+4:], flags)
		le.PutUint64(buf[off+8:], act.Cost)
		le.PutUint32(buf[off+16:], uint32(refs[i].off))
		le.PutUint32(buf[off+20:], uint32(refs[i].n))
		off += actionRecLen
	}
	for _, n := range a.Nodes {
		le.PutUint32(buf[off:], uint32(n.Action))
		le.PutUint32(buf[off+4:], uint32(n.Pos))
		le.PutUint32(buf[off+8:], uint32(n.Neg))
		off += nodeRecLen
	}
	off += copy(buf[off:], a.ID)
	off += copy(buf[off:], names.Bytes())
	off += pad
	sum := sha256.Sum256(buf[:off])
	copy(buf[off:], sum[:])
	return buf, nil
}

// seal encodes the artifact, records its seal hash and resident size, and
// returns the sealed payload. Store.Publish calls it after assigning the
// version; an artifact's Key is undefined before sealing.
func (a *Artifact) seal() ([]byte, error) {
	payload, err := a.encode()
	if err != nil {
		return nil, err
	}
	copy(a.sum[:], payload[len(payload)-sealLen:])
	a.bytes = int64(len(payload)) + 256 // struct, slice headers, map slot
	return payload, nil
}

// WriteTo serializes the sealed artifact as an instio policy frame.
func (a *Artifact) WriteTo(w io.Writer) (int64, error) {
	payload, err := a.encode()
	if err != nil {
		return 0, err
	}
	if !a.Sealed() {
		return 0, fmt.Errorf("policy: artifact is unsealed; publish it first")
	}
	if !bytes.Equal(payload[len(payload)-sealLen:], a.sum[:]) {
		return 0, fmt.Errorf("policy: artifact mutated after sealing")
	}
	if err := instio.WriteFrame(w, instio.FramePolicy, payload); err != nil {
		return 0, err
	}
	return int64(instio.FrameHeaderLen + len(payload)), nil
}

// Read loads one artifact from an instio policy frame and fully re-verifies
// it: frame CRC (instio), payload geometry and index bounds, the SHA-256
// seal, and finally a re-certification of the decoded tree against the
// embedded problem and optimum. A tampered artifact — even one whose CRC
// and seal were recomputed consistently — must still encode a valid,
// correctly priced procedure to load.
func Read(r io.Reader) (*Artifact, error) {
	kind, payload, err := instio.ReadFrame(r)
	if err != nil {
		return nil, err
	}
	if kind != instio.FramePolicy {
		return nil, fmt.Errorf("policy: frame kind %d is not a policy artifact", kind)
	}
	return decode(payload)
}

func decode(payload []byte) (*Artifact, error) {
	le := binary.LittleEndian
	if len(payload) < payloadHdrLen+sealLen {
		return nil, fmt.Errorf("policy: artifact payload truncated (%d bytes)", len(payload))
	}
	if f := le.Uint32(payload[0:]); f != payloadFormat {
		return nil, fmt.Errorf("policy: unsupported artifact format %d", f)
	}
	k := int(le.Uint32(payload[4:]))
	nActions := int(le.Uint32(payload[8:]))
	nNodes := int(le.Uint32(payload[12:]))
	root := int32(le.Uint32(payload[16:]))
	version := le.Uint32(payload[20:])
	cost := le.Uint64(payload[24:])
	idLen := int(le.Uint32(payload[32:]))
	nameLen := int(le.Uint32(payload[36:]))
	if k < 1 || k > core.MaxK || nActions < 1 || nActions > maxArtActions ||
		nNodes < 1 || nNodes > maxArtNodes || nameLen > maxArtNameBlob || idLen > 1<<10 {
		return nil, fmt.Errorf("policy: artifact header out of bounds (k=%d actions=%d nodes=%d)", k, nActions, nNodes)
	}
	fixed := payloadHdrLen + 8*k + actionRecLen*nActions + nodeRecLen*nNodes
	varLen := idLen + nameLen
	pad := (8 - (fixed+varLen)%8) % 8
	if len(payload) != fixed+varLen+pad+sealLen {
		return nil, fmt.Errorf("policy: artifact payload is %d bytes, want %d", len(payload), fixed+varLen+pad+sealLen)
	}
	sealOff := len(payload) - sealLen
	if sum := sha256.Sum256(payload[:sealOff]); !bytes.Equal(sum[:], payload[sealOff:]) {
		return nil, fmt.Errorf("policy: artifact seal mismatch — content was altered after sealing")
	}
	art := &Artifact{K: k, Cost: cost, Root: root, Version: version}
	copy(art.sum[:], payload[sealOff:])
	off := payloadHdrLen
	art.Weights = make([]uint64, k)
	for i := range art.Weights {
		art.Weights[i] = le.Uint64(payload[off:])
		off += 8
	}
	id := payload[fixed : fixed+idLen]
	names := payload[fixed+idLen : fixed+idLen+nameLen]
	art.ID = string(id)
	u := core.Universe(k)
	art.Actions = make([]Action, nActions)
	for i := range art.Actions {
		set := core.Set(le.Uint32(payload[off:]))
		flags := le.Uint32(payload[off+4:])
		acost := le.Uint64(payload[off+8:])
		nOff := int(le.Uint32(payload[off+16:]))
		nLen := int(le.Uint32(payload[off+20:]))
		off += actionRecLen
		if set&^u != 0 || flags > 1 || nOff < 0 || nLen < 0 || nOff+nLen > len(names) {
			return nil, fmt.Errorf("policy: artifact action %d record out of bounds", i)
		}
		art.Actions[i] = Action{Name: string(names[nOff : nOff+nLen]), Set: set, Cost: acost, Treatment: flags == 1}
	}
	art.Nodes = make([]Node, nNodes)
	for i := range art.Nodes {
		n := Node{
			Action: int32(le.Uint32(payload[off:])),
			Pos:    int32(le.Uint32(payload[off+4:])),
			Neg:    int32(le.Uint32(payload[off+8:])),
		}
		off += nodeRecLen
		if n.Action < 0 || int(n.Action) >= nActions {
			return nil, fmt.Errorf("policy: node %d action index out of range", i)
		}
		// Preorder invariant: children strictly follow their parent, so any
		// walk of the records terminates (no cycles representable).
		for _, c := range [2]int32{n.Pos, n.Neg} {
			if c != Done && c != None && (c <= int32(i) || int(c) >= nNodes) {
				return nil, fmt.Errorf("policy: node %d child %d breaks the preorder invariant", i, c)
			}
		}
		art.Nodes[i] = n
	}
	if int(root) >= nNodes || root != 0 {
		return nil, fmt.Errorf("policy: artifact root %d is not the first preorder node", root)
	}
	// Semantic gate: rebuild the procedure tree and re-certify it against
	// the embedded problem and optimum. Loading is re-certification.
	p := art.problem()
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("policy: artifact problem invalid: %w", err)
	}
	tree, err := art.tree(root, u)
	if err != nil {
		return nil, err
	}
	if rep := certify.Tree(p, tree, cost); !rep.OK() {
		return nil, fmt.Errorf("policy: artifact failed load re-certification: %w", rep.Err())
	}
	return art, nil
}

// problem reconstructs the embedded pricing problem.
func (a *Artifact) problem() *core.Problem {
	p := &core.Problem{K: a.K, Weights: a.Weights}
	for _, act := range a.Actions {
		p.Actions = append(p.Actions, core.Action{Name: act.Name, Set: act.Set, Cost: act.Cost, Treatment: act.Treatment})
	}
	return p
}

// tree rebuilds the core procedure tree rooted at node idx with candidate
// set s. Terminates on any decodable artifact thanks to the preorder
// invariant; structural sanity is certify's job afterwards.
func (a *Artifact) tree(idx int32, s core.Set) (*core.Node, error) {
	nd := a.Nodes[idx]
	act := a.Actions[nd.Action]
	n := &core.Node{Action: int(nd.Action), Set: s}
	pos, neg := s&act.Set, s&^act.Set
	var err error
	if act.Treatment {
		if nd.Pos != Done {
			return nil, fmt.Errorf("policy: treatment node %d does not terminate on success", idx)
		}
	} else {
		if nd.Pos == Done || nd.Pos == None {
			return nil, fmt.Errorf("policy: test node %d has no positive branch", idx)
		}
		if n.Pos, err = a.tree(nd.Pos, pos); err != nil {
			return nil, err
		}
	}
	switch nd.Neg {
	case None:
		// no negative subtree (full-cover treatment)
	case Done:
		return nil, fmt.Errorf("policy: node %d ends the procedure on a negative outcome", idx)
	default:
		if n.Neg, err = a.tree(nd.Neg, neg); err != nil {
			return nil, err
		}
	}
	return n, nil
}
