package approx

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"repro/internal/certify"
	"repro/internal/core"
	"repro/internal/workload"
)

// randomProblem builds a random instance; with a catch-all treatment it is
// always adequate, without one it may be inadequate.
func randomProblem(rng *rand.Rand, k, nActions int, catchAll bool) *core.Problem {
	p := &core.Problem{K: k, Weights: make([]uint64, k)}
	for j := range p.Weights {
		p.Weights[j] = uint64(rng.Intn(20) + 1)
	}
	u := uint32(core.Universe(k))
	for i := 0; i < nActions; i++ {
		p.Actions = append(p.Actions, core.Action{
			Set:       core.Set(rng.Intn(int(u))+1) & core.Set(u),
			Cost:      uint64(rng.Intn(30) + 1),
			Treatment: rng.Intn(2) == 0,
		})
	}
	if catchAll {
		p.Actions = append(p.Actions, core.Action{Name: "catch-all", Set: core.Universe(k), Cost: 500, Treatment: true})
	} else {
		// Validation requires at least one treatment; a strict-subset one
		// keeps inadequate instances possible.
		p.Actions = append(p.Actions, core.Action{
			Set: core.Set(rng.Intn(int(u)) + 1), Cost: uint64(rng.Intn(50) + 1), Treatment: true})
	}
	return p
}

// TestDifferentialExhaustive is the satellite-3 sweep: for instances across
// k = 2..10 — random, and every named workload family — the greedy portfolio
// must never beat the exact optimum, branch-and-bound run to completion must
// hit it exactly, the anytime lower bound must agree with the certifier's and
// never exceed the optimum, and every emitted result must pass independent
// gap certification.
func TestDifferentialExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(1986))
	var problems []*core.Problem
	for k := 2; k <= 10; k++ {
		for trial := 0; trial < 12; trial++ {
			problems = append(problems, randomProblem(rng, k, 2+rng.Intn(2*k), trial%3 != 0))
		}
		problems = append(problems,
			workload.Random(int64(k), k, k, k),
			workload.MedicalDiagnosis(int64(k), k),
			workload.SystematicBiology(int64(k), k),
			workload.BinaryTestingUniform(k, 7),
		)
	}

	ctx := context.Background()
	solved := 0
	for _, p := range problems {
		sol, err := core.Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(ctx, p, Options{})
		if err != nil {
			t.Fatalf("approx.Solve failed on k=%d: %v", p.K, err)
		}

		if !sol.Adequate() {
			if res.Adequate {
				t.Fatalf("k=%d: exact says inadequate, approx claims adequate", p.K)
			}
			if res.Cost != core.Inf || res.Tree != nil || res.Uncovered < 0 {
				t.Fatalf("k=%d: malformed inadequate result %+v", p.K, res)
			}
			if rep := certify.CheckInadequate(p); !rep.OK() {
				t.Fatalf("k=%d: inadequacy witness fails certification: %v", p.K, rep.Err())
			}
			continue
		}
		solved++

		// The anytime bound must match the certifier's independent derivation
		// and bound the true optimum from below.
		if res.LowerBound != certify.LowerBound(p) {
			t.Fatalf("k=%d: approx bound %d != certify bound %d", p.K, res.LowerBound, certify.LowerBound(p))
		}
		if res.LowerBound > sol.Cost {
			t.Fatalf("k=%d: lower bound %d exceeds optimum %d", p.K, res.LowerBound, sol.Cost)
		}

		// Default options give the B&B a generous budget; at k ≤ 10 it always
		// completes, so the answer must be the exact optimum.
		if !res.Exact {
			t.Fatalf("k=%d: branch-and-bound did not complete within default budget (nodes=%d)", p.K, res.Nodes)
		}
		if res.Cost != sol.Cost {
			t.Fatalf("k=%d: converged cost %d != optimum %d (policy %s)", p.K, res.Cost, sol.Cost, res.Policy)
		}

		// The emitted quadruple must survive independent re-pricing.
		if _, err := certify.CertifyGap(p, res.Tree, res.Cost, res.GapMilli); err != nil {
			t.Fatalf("k=%d: emitted result fails gap certification: %v", p.K, err)
		}

		// The greedy-only answer (B&B disabled) must be valid and ≥ optimum,
		// and must certify at its own gap.
		g, err := Solve(ctx, p, Options{NodeBudget: -1})
		if err != nil {
			t.Fatalf("k=%d: greedy-only solve failed: %v", p.K, err)
		}
		if g.Cost < sol.Cost {
			t.Fatalf("k=%d: greedy cost %d beats optimum %d — re-pricing is broken", p.K, g.Cost, sol.Cost)
		}
		if _, err := certify.CertifyGap(p, g.Tree, g.Cost, g.GapMilli); err != nil {
			t.Fatalf("k=%d: greedy result fails gap certification: %v", p.K, err)
		}
	}
	if solved < 60 {
		t.Fatalf("sweep exercised only %d adequate instances; want >= 60", solved)
	}
}

func TestSolveInadequate(t *testing.T) {
	p := &core.Problem{
		K:       3,
		Weights: []uint64{1, 2, 3},
		Actions: []core.Action{
			{Set: core.SetOf(0, 1), Cost: 1, Treatment: true},
			{Set: core.SetOf(2), Cost: 1, Treatment: false},
		},
	}
	res, err := Solve(context.Background(), p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Adequate || res.Uncovered != 2 || res.Cost != core.Inf || !res.Exact {
		t.Fatalf("want inadequate witness for object 2, got %+v", res)
	}
}

func TestAnytimeDeadline(t *testing.T) {
	// A hard instance with an immediate deadline must still return a valid
	// certified incumbent — the anytime contract: degrade, never fail.
	p := workload.Random(11, 14, 14, 10)
	res, err := Solve(context.Background(), p, Options{Deadline: time.Nanosecond, NodeBudget: 1 << 40})
	if err != nil {
		t.Fatalf("deadline expiry must not fail: %v", err)
	}
	if res.Tree == nil || res.Cost == core.Inf {
		t.Fatalf("no incumbent under deadline: %+v", res)
	}
	if _, err := certify.CertifyGap(p, res.Tree, res.Cost, res.GapMilli); err != nil {
		t.Fatalf("deadline incumbent fails certification: %v", err)
	}
}

func TestAnytimeNodeBudget(t *testing.T) {
	p := workload.Random(5, 13, 13, 9)
	res, err := Solve(context.Background(), p, Options{NodeBudget: 8})
	if err != nil {
		t.Fatalf("node-budget expiry must not fail: %v", err)
	}
	if res.Tree == nil {
		t.Fatal("no incumbent under node budget")
	}
	if res.Nodes > 8+1 {
		t.Fatalf("expanded %d nodes past budget 8", res.Nodes)
	}
	if _, err := certify.CertifyGap(p, res.Tree, res.Cost, res.GapMilli); err != nil {
		t.Fatalf("budgeted incumbent fails certification: %v", err)
	}
}

func TestTargetGapStopsEarly(t *testing.T) {
	// A very loose target is met by the greedy incumbent alone, so no
	// branch-and-bound nodes should be expanded.
	p := workload.MedicalDiagnosis(3, 9)
	res, err := Solve(context.Background(), p, Options{TargetMilli: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != 0 {
		t.Fatalf("loose target still expanded %d B&B nodes", res.Nodes)
	}
	if res.GapMilli > 1_000_000 {
		t.Fatalf("gap %d exceeds the requested target", res.GapMilli)
	}
}

func TestCancelledBeforeIncumbent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Solve(ctx, workload.Random(1, 6, 4, 4), Options{}); err == nil {
		t.Fatal("pre-incumbent cancellation must surface the context error")
	}
}

// TestBeyondCoreK exercises the solvers past core.Solve's practical range
// shape-wise: a k=22 instance must produce a certified greedy answer quickly.
func TestBeyondCoreK(t *testing.T) {
	p := workload.Oversized(9, 22)
	start := time.Now()
	res, err := Solve(context.Background(), p, Options{NodeBudget: -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree == nil || !res.Adequate {
		t.Fatalf("oversized instance got no tree: %+v", res)
	}
	if _, err := certify.CertifyGap(p, res.Tree, res.Cost, res.GapMilli); err != nil {
		t.Fatalf("oversized answer fails certification: %v", err)
	}
	if d := time.Since(start); d > 30*time.Second {
		t.Fatalf("greedy at k=22 took %v; the anytime path must stay polynomial", d)
	}
}
