package bvmcheck

import (
	"fmt"

	"repro/internal/bvm"
)

// Def-use and liveness analysis. BVM programs are straight-line code (there
// is no branch instruction; control flow lives on the host), so dataflow is
// exact — no joins, no fixpoints.
//
// The analysis is truth-table aware: an instruction reads its F, D, or B
// input only if the f or g truth table actually depends on that input. A
// SetConst (f = 0 or 1) reads nothing even though its operand fields name A;
// a Mov (f = D) reads only D. The g half with GTT = TTB assigns B its own
// value, which is the ISA's "leave B alone" idiom, so it neither reads nor
// writes B for dataflow purposes.
//
// Masked writes (an IF/NF activation clause) preserve the old value on
// inactive PEs, so they count as a read plus a may-write: they never kill a
// value. Writes are also gated by the enable register E; the analysis
// assumes E is all-ones at program entry (the machine's reset state) and,
// after the first instruction that writes E, conservatively treats every
// subsequent write as masked.

// Liveness is the register-usage summary of a program.
type Liveness struct {
	// Footprint is the number of distinct general registers the program
	// effectively reads or writes (truth-table aware).
	Footprint int `json:"footprint"`
	// PeakLive is the maximum number of general registers simultaneously
	// live at any program point (values written earlier and still needed by
	// a later instruction of the program itself).
	PeakLive int `json:"peak_live"`
	// PeakLiveIndex is the instruction index before which the peak occurs.
	PeakLiveIndex int `json:"peak_live_index"`
	// HighestRegister is the largest general-register index used, -1 if the
	// program uses only the special registers.
	HighestRegister int `json:"highest_register"`
}

// ttDeps reports which of the three inputs (F, D, B) the truth table
// actually depends on. Minterm order is F<<2 | D<<1 | B.
func ttDeps(tt uint8) (f, d, b bool) {
	for m := 0; m < 8; m++ {
		v := tt >> uint(m) & 1
		if tt>>uint(m^4)&1 != v {
			f = true
		}
		if tt>>uint(m^2)&1 != v {
			d = true
		}
		if tt>>uint(m^1)&1 != v {
			b = true
		}
	}
	return
}

// effects is the exact dataflow footprint of one instruction.
type effects struct {
	reads   []int // effective register reads (ids; E excluded)
	dstID   int   // destination id, -1 when the destination is E
	dstFull bool  // unconditional, unmasked write (kills the old value)
	writesB bool  // the g half writes B (GTT != TTB)
	bFull   bool  // ... unconditionally
	// exemptRead is the id of a register whose read is exempt from the
	// read-before-write check, -1 if none. Two idioms qualify: the
	// input-chain / rotation self-move "X = D (X.route)", which streams new
	// contents through X so the pre-program value is discarded rather than
	// consumed, and the identity f half "X = F (X, ...)" used when the
	// instruction's payload is the g half, which merely preserves X.
	exemptRead int
	// gInactive marks GTT == TTB: the instruction exists only for its f
	// half, so a dead f-half store means the instruction does nothing.
	gInactive bool
}

type analysis struct {
	cfg   Config
	nRegs int // general registers + A, B (E excluded from tracking)
	idA   int
	idB   int
}

func newAnalysis(cfg Config) *analysis {
	return &analysis{cfg: cfg, nRegs: cfg.Registers + 2, idA: cfg.Registers, idB: cfg.Registers + 1}
}

// id maps a register to its dense index; E maps to -1 (untracked).
func (a *analysis) id(r bvm.RegRef) int {
	switch r.Kind {
	case bvm.KindR:
		return r.Index
	case bvm.KindA:
		return a.idA
	case bvm.KindB:
		return a.idB
	default:
		return -1
	}
}

func (a *analysis) name(id int) string {
	switch id {
	case a.idA:
		return "A"
	case a.idB:
		return "B"
	default:
		return fmt.Sprintf("R[%d]", id)
	}
}

func (a *analysis) instrEffects(in bvm.Instr, eGated bool) effects {
	eff := effects{dstID: a.id(in.Dst), exemptRead: -1}
	fF, fD, fB := ttDeps(in.FTT)
	gActive := in.GTT != bvm.TTB
	eff.gInactive = !gActive
	var gF, gD, gB bool
	if gActive {
		gF, gD, gB = ttDeps(in.GTT)
	}
	masked := in.Cond != nil || eGated

	addRead := func(id int) {
		if id < 0 {
			return
		}
		for _, r := range eff.reads {
			if r == id {
				return
			}
		}
		eff.reads = append(eff.reads, id)
	}
	if fF || gF {
		addRead(a.id(in.F))
	}
	if fD || gD {
		addRead(a.id(in.D.Reg))
	}
	if fB || gB {
		addRead(a.idB)
	}

	if in.Dst.Kind == bvm.KindE {
		// E ignores activation masks and its own gating: always a full write.
		eff.dstID = -1
	} else {
		eff.dstFull = !masked
		if masked {
			// Inactive PEs keep the old destination value: a read.
			addRead(eff.dstID)
		}
	}
	eff.writesB = gActive
	eff.bFull = gActive && !masked

	// The self-move streaming idiom: X = D (X.route). The old value of X is
	// shifted through and discarded, never consumed as data.
	if in.D.Via != bvm.Local && in.Dst == in.D.Reg && in.FTT == bvm.TTD && !gActive {
		eff.exemptRead = a.id(in.D.Reg)
	}
	// The identity f half: X = F (X, ...) with the payload in g. The value
	// of X is preserved, not consumed (unless g itself reads F).
	if in.Dst == in.F && in.FTT == bvm.TTF && !gF {
		eff.exemptRead = a.id(in.F)
	}
	return eff
}

// firstEWrite returns the index of the first instruction writing E, or
// p.Len() if none.
func firstEWrite(p *bvm.Program) int {
	for i, in := range p.Instrs {
		if in.Dst.Kind == bvm.KindE {
			return i
		}
	}
	return p.Len()
}

// analyzeLiveness runs the forward read-before-write scan and the backward
// dead-store and pressure scans. Assumes the program is well-formed.
func analyzeLiveness(p *bvm.Program, cfg Config) ([]Diag, Liveness) {
	a := newAnalysis(cfg)
	n := p.Len()
	eIdx := firstEWrite(p)
	effs := make([]effects, n)
	for i, in := range p.Instrs {
		effs[i] = a.instrEffects(in, i > eIdx)
	}

	var diags []Diag
	emit := func(i int, sev Severity, cat, format string, args ...any) {
		d := Diag{Index: i, Severity: sev, Category: cat, Message: fmt.Sprintf(format, args...)}
		if i >= 0 && i < n {
			d.Instr = p.Instrs[i].String()
		}
		diags = append(diags, d)
	}

	// Forward: read-before-write + footprint.
	written := make([]bool, a.nRegs)
	warned := make([]bool, a.nRegs)
	touched := make([]bool, a.nRegs)
	highest := -1
	for i := range effs {
		eff := &effs[i]
		for _, r := range eff.reads {
			touched[r] = true
			if r < cfg.Registers && r > highest {
				highest = r
			}
			if !written[r] && !warned[r] && r != eff.exemptRead {
				warned[r] = true
				emit(i, SevWarning, CatReadBeforeWrite,
					"%s read before any write; the program relies on pre-program machine state", a.name(r))
			}
		}
		if eff.dstID >= 0 {
			written[eff.dstID] = true
			touched[eff.dstID] = true
			if eff.dstID < cfg.Registers && eff.dstID > highest {
				highest = eff.dstID
			}
		}
		if eff.writesB {
			written[a.idB] = true
			touched[a.idB] = true
		}
	}
	footprint := 0
	for r := 0; r < cfg.Registers; r++ {
		if touched[r] {
			footprint++
		}
	}

	// Backward: dead stores (everything live at exit — program results are
	// unknown, so only an overwrite with no intervening read proves a store
	// dead) and pressure (nothing live at exit — only values the program
	// itself still needs count).
	liveDead := make([]bool, a.nRegs)
	for r := range liveDead {
		liveDead[r] = true
	}
	livePress := make([]bool, a.nRegs)
	pressCount := 0
	peak, peakIdx := 0, 0
	nextKill := make([]int, a.nRegs)
	for r := range nextKill {
		nextKill[r] = -1
	}
	var deadDiags []Diag
	for i := n - 1; i >= 0; i-- {
		eff := &effs[i]
		if eff.dstID >= 0 && eff.dstFull {
			// Only instructions whose g half is inactive are flagged: the
			// ISA forces every instruction to name an f destination, so a
			// discarded f result beside a live g half (B as the payload,
			// A as the conventional scrap destination) is idiom, not a bug.
			if !liveDead[eff.dstID] && eff.gInactive {
				d := Diag{Index: i, Severity: SevWarning, Category: CatDeadStore,
					Message: fmt.Sprintf("value stored to %s is overwritten at instruction %d without being read",
						a.name(eff.dstID), nextKill[eff.dstID]),
					Instr: p.Instrs[i].String()}
				deadDiags = append(deadDiags, d)
			}
			liveDead[eff.dstID] = false
			if livePress[eff.dstID] {
				livePress[eff.dstID] = false
				if eff.dstID < cfg.Registers {
					pressCount--
				}
			}
			nextKill[eff.dstID] = i
		}
		if eff.writesB && eff.bFull {
			liveDead[a.idB] = false
			livePress[a.idB] = false
		}
		for _, r := range eff.reads {
			liveDead[r] = true
			if !livePress[r] {
				livePress[r] = true
				if r < cfg.Registers {
					pressCount++
				}
			}
		}
		if pressCount > peak {
			peak, peakIdx = pressCount, i
		}
	}
	// Backward scan discovers dead stores last-first; report in program order.
	for i := len(deadDiags) - 1; i >= 0; i-- {
		diags = append(diags, deadDiags[i])
	}

	live := Liveness{Footprint: footprint, PeakLive: peak, PeakLiveIndex: peakIdx, HighestRegister: highest}
	highStr := "-"
	if highest >= 0 {
		highStr = fmt.Sprintf("R[%d]", highest)
	}
	emit(-1, SevInfo, CatPressure,
		"register footprint %d, peak live %d (before instruction %d), highest %s, machine L=%d",
		live.Footprint, live.PeakLive, live.PeakLiveIndex, highStr, cfg.Registers)
	return diags, live
}
