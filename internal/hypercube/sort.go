package hypercube

// Bitonic sorting — the flagship member of the ASCEND/DESCEND algorithm
// class the paper builds on (§3; Preparata and Vuillemin introduce the
// scheme with merging/sorting networks). Batcher's bitonic sorter on a
// 2^dim-PE hypercube runs dim stages; stage s merges bitonic sequences of
// length 2^(s+1) with one DESCEND pass over dimensions s..0, where each
// compare-exchange keeps the minimum at the 0-end or the maximum, depending
// on bit s+1 of the PE address (the merge direction). Because each stage is
// a DESCEND pass, the whole sorter runs unchanged on the CCC simulator —
// sorting on a 3-links-per-PE machine.

// BitonicOp returns the compare-exchange op for merge stage s; exported so
// internal/cccsim can run the identical sorter on the CCC.
func BitonicOp(s int) Op[uint64] {
	return func(t, addr int, self, partner uint64) uint64 {
		ascending := addr>>(uint(s)+1)&1 == 0
		amLow := addr>>uint(t)&1 == 0
		keepMin := ascending == amLow
		if keepMin {
			return min(self, partner)
		}
		return max(self, partner)
	}
}

// BitonicSort sorts the machine's values in place into ascending address
// order, using dim·(dim+1)/2 dimension steps.
func BitonicSort(m *Machine[uint64]) {
	for s := 0; s < m.Dim; s++ {
		m.DescendRange(0, s+1, BitonicOp(s))
	}
}
