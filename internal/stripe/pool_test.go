package stripe

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRunExecutesEveryShardExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		p := New(workers)
		for _, shards := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]atomic.Int32, max(shards, 1))
			p.Run(shards, func(i int) { hits[i].Add(1) })
			for i := 0; i < shards; i++ {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d shards=%d: shard %d ran %d times", workers, shards, i, got)
				}
			}
		}
	}
}

func TestRunIsABarrier(t *testing.T) {
	p := New(4)
	var done atomic.Int32
	p.Run(100, func(int) { done.Add(1) })
	if got := done.Load(); got != 100 {
		t.Fatalf("Run returned with %d/100 shards complete", got)
	}
}

func TestShardPanicReRaisedAfterBarrier(t *testing.T) {
	p := New(2)
	var completed atomic.Int32
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("shard panic did not propagate to the caller")
			}
			if fmt.Sprint(r) != "boom 3" {
				t.Fatalf("unexpected panic value %v", r)
			}
		}()
		p.Run(8, func(i int) {
			if i == 3 {
				panic(fmt.Sprintf("boom %d", i))
			}
			completed.Add(1)
		})
	}()
	// The barrier held: every non-panicking shard finished before the
	// panic was re-raised.
	if got := completed.Load(); got != 7 {
		t.Fatalf("%d/7 non-panicking shards completed before re-raise", got)
	}
	// The pool survives a panicking job.
	var n atomic.Int32
	p.Run(16, func(int) { n.Add(1) })
	if n.Load() != 16 {
		t.Fatal("pool unusable after a shard panic")
	}
}

// TestConcurrentRuns drives many simultaneous jobs through one small pool:
// the overflow-runs-inline rule must keep every job completing even when the
// jobs outnumber the workers many times over.
func TestConcurrentRuns(t *testing.T) {
	p := New(2)
	var wg sync.WaitGroup
	for j := 0; j < 32; j++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sum atomic.Int64
			p.Run(50, func(i int) { sum.Add(int64(i)) })
			if got := sum.Load(); got != 50*49/2 {
				t.Errorf("concurrent Run summed %d", got)
			}
		}()
	}
	wg.Wait()
}

// TestNestedRun proves a shard may itself call Run without deadlocking the
// pool (the inner job overflows inline when no worker is free).
func TestNestedRun(t *testing.T) {
	p := New(2)
	var inner atomic.Int32
	p.Run(4, func(int) {
		p.Run(4, func(int) { inner.Add(1) })
	})
	if got := inner.Load(); got != 16 {
		t.Fatalf("nested runs completed %d/16 inner shards", got)
	}
}

func TestSharedPoolSizedToHost(t *testing.T) {
	p := Shared()
	if p != Shared() {
		t.Fatal("Shared returned distinct pools")
	}
	if got, want := p.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("shared pool has %d workers, want %d", got, want)
	}
}

func TestRangePartition(t *testing.T) {
	for _, n := range []int{0, 1, 5, 64, 100, 1 << 14} {
		for _, shards := range []int{1, 2, 3, 7, 16} {
			prev := 0
			for i := 0; i < shards; i++ {
				lo, hi := Range(n, shards, i)
				if lo != prev {
					t.Fatalf("Range(%d,%d,%d) = [%d,%d): gap after %d", n, shards, i, lo, hi, prev)
				}
				if hi < lo {
					t.Fatalf("Range(%d,%d,%d) inverted", n, shards, i)
				}
				prev = hi
			}
			if prev != n {
				t.Fatalf("Range(%d,%d,·) covers %d units", n, shards, prev)
			}
		}
	}
}
