// Package cluster is the distributed solve plane: the level-synchronous DP
// over the 2^K subset lattice sharded across worker processes. The paper's
// structure maps directly onto a coordinator/worker wire protocol — subsets
// of one popcount level are independent and synchronize only at level
// barriers — so the coordinator assigns contiguous Gosper rank ranges
// ("slices") of each level to workers, collects the computed (C, Choice)
// planes, and broadcasts the merged level back before advancing. Transport
// reuses the CRC-framed internal/checkpoint encoding (checkpoint.Plane), so
// the wire format inherits the file format's defensive decoding: every
// framing defect lands in checkpoint.ErrCorrupt, never in a wrong frontier.
//
// The plane is fault-tolerant by construction, extending the chaos + certify
// layers from in-process faults to node-level failures:
//
//   - Verification before merge. Every received plane must carry the FNV-1a
//     running checksum of the frozen frontier it was computed from and the
//     checksum of its p(S) values (the PR 5 ABFT checksums), and must pass
//     per-cell monotonicity plus a seeded spot-audit that recomputes sampled
//     cells from the recurrence over the coordinator's own trusted frontier.
//     A failing plane is refused, its violations are attributed to the
//     worker (certify.Violation.Node), and the slice is reassigned.
//   - Strikes and reassignment. A worker whose plane fails verification is
//     suspect: it is deprioritized for new work and removed entirely after
//     MaxStrikes. Reassigned slices retry with bounded jittered backoff.
//   - Deadlines and heartbeats. Each assignment carries a plane deadline
//     (stragglers are struck and their slices reassigned; late planes are
//     discarded as stale), and idle workers are pinged so a silent partition
//     is detected even between assignments. A worker whose connection
//     errors is removed immediately.
//   - Quorum and graceful degradation. The solve continues as long as at
//     least Quorum workers remain — down to a single worker — and fails
//     closed with ErrQuorumLost otherwise. The serving layer runs the
//     cluster engine inside the same breaker/retry/fallback chain as every
//     other engine, so quorum loss degrades to the in-process parallel and
//     sequential DPs, and every cluster answer still passes the
//     engine-independent certifier before it is cached or served.
//
// Worker logic is a pure protocol state machine (Machine, modeled on the
// ID/Handle player abstraction of mpc inversion-network tests) pumped over a
// net.Conn by RunWorker, so the same fault matrix — Honest, Offline,
// Malicious, Slow, Corrupt-plane — drives both the in-process unit tests
// (net.Pipe) and the real ttworker processes of the multi-process smoke
// harness. See docs/CLUSTER.md for the protocol and the fault matrix.
package cluster

import (
	"errors"
	"fmt"
	"log/slog"
	"time"

	"repro/internal/certify"
	"repro/internal/core"
)

// ErrQuorumLost is the sentinel for a solve that ran out of workers: fewer
// than Options.Quorum remain alive. The solve fails closed — no partial or
// unverified answer is returned — and the serving layer's fallback chain
// takes over in-process.
var ErrQuorumLost = errors.New("cluster: quorum lost")

// ErrNoWorkers is returned by Dial when no configured worker could be
// reached at all.
var ErrNoWorkers = errors.New("cluster: no workers reachable")

// QuorumError carries the context of a quorum loss: where the solve was and
// how many workers survived. errors.Is(err, ErrQuorumLost) matches it.
type QuorumError struct {
	Level  int // level the solve was computing when the quorum broke
	Live   int // workers still alive
	Quorum int // minimum required
}

func (e *QuorumError) Error() string {
	return fmt.Sprintf("cluster: quorum lost at level %d: %d worker(s) alive, need %d", e.Level, e.Live, e.Quorum)
}

func (e *QuorumError) Unwrap() error { return ErrQuorumLost }

// Options tunes a distributed solve; zero values select the defaults noted
// per field.
type Options struct {
	Slices           int           // level slices dispatched per level (default 2× workers)
	PlaneDeadline    time.Duration // per-assignment compute+return budget (default 30s)
	HandshakeTimeout time.Duration // hello → hello-ok budget per worker (default 5s)
	HeartbeatEvery   time.Duration // ping cadence to idle workers (default 1s)
	HeartbeatMiss    int           // silent heartbeat intervals before a worker is dead (default 3)
	MaxStrikes       int           // verify failures / straggles before a worker is removed (default 2)
	SliceRetries     int           // reassignments per slice beyond the first attempt (default 8)
	Quorum           int           // minimum live workers to continue (default 1)
	AuditFraction    float64       // share of each plane's cells spot-recomputed (default 0.125; >= 1 audits every cell)
	Seed             int64         // audit sampling seed (deterministic per level slice)

	Hash         string            // canonical instance hash; computed when empty
	Frontier     *core.Frontier    // resume from a restored level frontier (requires choices)
	Checkpointer core.Checkpointer // fired at every merged level barrier j < K
	Logger       *slog.Logger      // default slog.Default()
}

func (o Options) withDefaults(workers int) Options {
	if o.Slices <= 0 {
		o.Slices = 2 * workers
	}
	if o.PlaneDeadline <= 0 {
		o.PlaneDeadline = 30 * time.Second
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 5 * time.Second
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = time.Second
	}
	if o.HeartbeatMiss <= 0 {
		o.HeartbeatMiss = 3
	}
	if o.MaxStrikes <= 0 {
		o.MaxStrikes = 2
	}
	if o.SliceRetries <= 0 {
		o.SliceRetries = 8
	}
	if o.Quorum <= 0 {
		o.Quorum = 1
	}
	if o.AuditFraction == 0 {
		o.AuditFraction = 0.125
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	return o
}

// Stats summarizes one distributed solve for the serving layer's counters
// and for the fault-matrix assertions in tests.
type Stats struct {
	Workers        int   // workers that completed the handshake
	Planes         int64 // planes verified and merged
	PlanesRejected int64 // planes refused: framing corruption or failed verification
	Reassigned     int64 // slice reassignments, any cause
	Stragglers     int64 // assignments expired by the plane deadline
	StalePlanes    int64 // late, duplicate, or unsolicited planes discarded
	WorkersLost    int64 // workers removed: dead conn, heartbeat silence, or strikes
	AuditedCells   int64 // cells recomputed by the spot audit

	// Violations is the node-attributed evidence gathered from refused
	// planes, capped like a certify report.
	Violations []certify.Violation
}
