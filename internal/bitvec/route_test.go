package bitvec

import (
	"math/rand"
	"testing"
)

// gatherRef builds the Gather-reference result for perm[i] = f(i).
func gatherRef(src *Vector, f func(int) int) *Vector {
	perm := make([]int32, src.Len())
	for i := range perm {
		perm[i] = int32(f(i))
	}
	v := New(src.Len())
	v.Gather(src, perm)
	return v
}

func TestRotateWithinBlocksMatchesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, block := range []int{2, 4, 8, 16, 32, 64} {
		for _, nBlocks := range []int{1, 3, 7, 40} {
			n := block * nBlocks
			src := randVec(rng, n)
			for shift := -block; shift <= block; shift++ {
				want := gatherRef(src, func(i int) int {
					base := i - i%block
					return base + ((i%block+shift)%block+block)%block
				})
				got := New(n)
				got.RotateWithinBlocks(src, block, shift)
				if !got.Equal(want) {
					t.Fatalf("RotateWithinBlocks(block=%d, shift=%d, n=%d) mismatch", block, shift, n)
				}
			}
		}
	}
}

func TestRotateWithinBlocksAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	src := randVec(rng, 128)
	want := New(128)
	want.RotateWithinBlocks(src, 8, 3)
	got := src.Clone()
	got.RotateWithinBlocks(got, 8, 3)
	if !got.Equal(want) {
		t.Fatal("in-place RotateWithinBlocks differs from out-of-place")
	}
}

func TestRotateWithinBlocksMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	src := randVec(rng, 192)
	old := randVec(rng, 192)
	sel := uint64(0xAAAA_AAAA_AAAA_AAAA)
	got := old.Clone()
	got.RotateWithinBlocksMasked(src, 16, 5, sel)
	full := New(192)
	full.RotateWithinBlocks(src, 16, 5)
	for i := 0; i < 192; i++ {
		want := old.Get(i)
		if sel>>(uint(i)%64)&1 == 1 {
			want = full.Get(i)
		}
		if got.Get(i) != want {
			t.Fatalf("masked rotate bit %d: got %v want %v", i, got.Get(i), want)
		}
	}
}

func TestStrideSwapMatchesGather(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, stride := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		for _, n := range []int{2 * stride, 8 * stride, 512 * stride} {
			src := randVec(rng, n)
			want := gatherRef(src, func(i int) int { return i ^ stride })
			got := New(n)
			got.StrideSwap(src, stride)
			if !got.Equal(want) {
				t.Fatalf("StrideSwap(stride=%d, n=%d) mismatch", stride, n)
			}
		}
	}
}

func TestStrideSwapMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	const n = 1024
	src := randVec(rng, n)
	old := randVec(rng, n)
	sel := uint64(0x0F0F_0F0F_0F0F_0F0F)
	for _, stride := range []int{4, 64, 256} {
		got := old.Clone()
		got.StrideSwapMasked(src, stride, sel)
		for i := 0; i < n; i++ {
			want := old.Get(i)
			if sel>>(uint(i)%64)&1 == 1 {
				want = src.Get(i ^ stride)
			}
			if got.Get(i) != want {
				t.Fatalf("masked swap stride %d bit %d: got %v want %v", stride, i, got.Get(i), want)
			}
		}
	}
}

func TestShiftUp1(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	for _, n := range []int{1, 8, 63, 64, 65, 200, 2048} {
		src := randVec(rng, n)
		for _, in := range []bool{false, true} {
			got := New(n)
			out := got.ShiftUp1(src, in)
			if out != src.Get(n-1) {
				t.Fatalf("n=%d: shifted-out bit %v, want %v", n, out, src.Get(n-1))
			}
			if got.Get(0) != in {
				t.Fatalf("n=%d: input bit not inserted", n)
			}
			for i := 1; i < n; i++ {
				if got.Get(i) != src.Get(i-1) {
					t.Fatalf("n=%d: bit %d = %v, want src[%d] = %v", n, i, got.Get(i), i-1, src.Get(i-1))
				}
			}
			// In-place operation must agree.
			inPlace := src.Clone()
			if out2 := inPlace.ShiftUp1(inPlace, in); out2 != out || !inPlace.Equal(got) {
				t.Fatalf("n=%d: in-place ShiftUp1 differs", n)
			}
		}
	}
}

func TestFillWordAndAllOnes(t *testing.T) {
	for _, n := range []int{1, 5, 64, 70, 130} {
		v := New(n)
		v.FillWord(^uint64(0))
		if !v.AllOnes() {
			t.Fatalf("n=%d: FillWord(ones) not AllOnes", n)
		}
		if v.Count() != n {
			t.Fatalf("n=%d: FillWord set %d bits (tail invariant broken)", n, v.Count())
		}
		v.Set(n-1, false)
		if v.AllOnes() {
			t.Fatalf("n=%d: AllOnes after clearing a bit", n)
		}
		v.FillWord(0x5555_5555_5555_5555)
		for i := 0; i < n; i++ {
			if v.Get(i) != (i%2 == 0) {
				t.Fatalf("n=%d: FillWord pattern bit %d wrong", n, i)
			}
		}
	}
	if !New(0).AllOnes() {
		t.Fatal("empty vector should be vacuously AllOnes")
	}
}

func TestKernelPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	v, src := New(128), New(128)
	expectPanic("bad block", func() { v.RotateWithinBlocks(src, 48, 1) })
	expectPanic("unaligned length", func() { New(96).RotateWithinBlocks(New(96), 64, 1) })
	expectPanic("bad stride", func() { v.StrideSwap(src, 3) })
	expectPanic("stride alias", func() { v.StrideSwap(v, 2) })
	expectPanic("masked rotate alias", func() { v.RotateWithinBlocksMasked(v, 8, 1, 1) })
}

// TestApply3AllTables cross-checks every one of the 256 truth tables —
// specialized fast paths and the generic mux network alike — against direct
// per-bit evaluation.
func TestApply3AllTables(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 131 // odd length exercises the tail invariant
	a, b, c := randVec(rng, n), randVec(rng, n), randVec(rng, n)
	v := New(n)
	for tt := 0; tt < 256; tt++ {
		v.Apply3(uint8(tt), a, b, c)
		for i := 0; i < n; i++ {
			m := 0
			if a.Get(i) {
				m |= 4
			}
			if b.Get(i) {
				m |= 2
			}
			if c.Get(i) {
				m |= 1
			}
			if want := tt>>uint(m)&1 == 1; v.Get(i) != want {
				t.Fatalf("tt=%#02x bit %d: got %v want %v", tt, i, v.Get(i), want)
			}
		}
		inv := New(n)
		inv.Not(v) // Not masks its own tail, so garbage in v's tail shows up
		if v.Count()+inv.Count() != n {
			t.Fatalf("tt=%#02x: tail invariant broken", tt)
		}
	}
}
