package core

import (
	"context"
	"fmt"
	"math/bits"
)

// This file is the solver side of the durable-checkpoint subsystem
// (internal/checkpoint holds the on-disk format, internal/serve the service
// integration). The backward-induction sweep is naturally checkpointable at
// level barriers: once every subset of popcount <= j is final, the entire
// resumable state of the solve is the (C, Choice) frontier plus the cursor j
// — everything else (PSum, per-engine machine planes) is deterministically
// recomputable from the problem. Checkpointer receives those frontiers;
// Frontier carries a restored one back into a solve.

// Checkpointer receives level-frontier snapshots of a DP sweep. Engines call
// CheckpointLevel after every completed level barrier j < K with a Solution
// whose C (and, for argmin-tracking engines, Choice) entries are final for
// every subset of popcount <= j; entries above the frontier are untrusted.
// The Solution is the engine's live table — implementations must copy what
// they keep and must not mutate it. Returning an error aborts the solve with
// that error (wrap persistence failures in a swallowing adapter if the solve
// should outlive them).
type Checkpointer interface {
	CheckpointLevel(level int, sol *Solution) error
}

// Frontier is a restored level frontier: C (and optionally Choice) are full
// 2^K tables whose entries are final for every subset of popcount <= Level.
// Entries above the frontier carry no information and are recomputed by the
// resuming engine. Choice may be nil for cost-only frontiers (the bvm engine
// reports costs but no argmins); such frontiers can seed only engines that do
// not need stored choices.
type Frontier struct {
	Level  int
	C      []uint64
	Choice []int32
}

// Validate checks the frontier's geometry against a universe of k objects.
func (f *Frontier) Validate(k int) error {
	if f == nil {
		return fmt.Errorf("core: nil frontier")
	}
	if k < 1 || k > MaxK {
		return fmt.Errorf("core: frontier universe size %d outside [1,%d]", k, MaxK)
	}
	if f.Level < 0 || f.Level > k {
		return fmt.Errorf("core: frontier level %d outside [0,%d]", f.Level, k)
	}
	size := 1 << uint(k)
	if len(f.C) != size {
		return fmt.Errorf("core: frontier has %d costs for a %d-object universe", len(f.C), k)
	}
	if f.Choice != nil && len(f.Choice) != size {
		return fmt.Errorf("core: frontier has %d choices for a %d-object universe", len(f.Choice), k)
	}
	if f.C[0] != 0 {
		return fmt.Errorf("core: frontier C(∅) = %d, want 0", f.C[0])
	}
	return nil
}

// HasChoice reports whether the frontier carries argmins and can therefore
// seed a choice-producing resume.
func (f *Frontier) HasChoice() bool { return f != nil && f.Choice != nil }

// completedOps returns the Ops count a sequential sweep accrues over all
// non-empty subsets of popcount <= level, so a resumed solve reports the same
// final Ops as an uninterrupted one.
func completedOps(k, level, actions int) int64 {
	var subsets uint64
	for l := 1; l <= level; l++ {
		subsets += binomial(k, l)
	}
	return int64(subsets) * int64(actions+1)
}

// SolveCheckpointedCtx runs the sequential DP level by level (popcount
// order), optionally resuming from a frontier and firing ck at every
// completed level barrier j < K. Results — Cost, C, Choice, and the final
// Ops count — are bit-identical to Solve: both orders evaluate every subset
// from already-final proper subsets with the same recurrence and the same
// lowest-index tie-breaking. A nil frontier starts from scratch; a nil ck
// records no checkpoints. Resuming requires a frontier with choices, so the
// rebuilt Solution can still yield the optimal procedure tree.
func SolveCheckpointedCtx(ctx context.Context, p *Problem, f *Frontier, ck Checkpointer) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	size := 1 << uint(p.K)
	sol := &Solution{
		C:      make([]uint64, size),
		Choice: make([]int32, size),
		PSum:   make([]uint64, size),
	}
	for s := 1; s < size; s++ {
		low := s & -s
		sol.PSum[s] = satAdd(sol.PSum[s&(s-1)], p.Weights[bits.TrailingZeros(uint(low))])
	}
	sol.Choice[0] = -1
	start := 1
	if f != nil {
		if err := f.Validate(p.K); err != nil {
			return nil, err
		}
		if !f.HasChoice() {
			return nil, fmt.Errorf("core: cost-only frontier cannot seed a choice-producing resume")
		}
		copy(sol.C, f.C)
		copy(sol.Choice, f.Choice)
		sol.C[0], sol.Choice[0] = 0, -1
		start = f.Level + 1
		sol.Ops = completedOps(p.K, f.Level, len(p.Actions))
	}
	var visited int64
	for level := start; level <= p.K; level++ {
		v := uint32(1)<<uint(level) - 1
		for v < uint32(size) {
			if visited&(ctxStride-1) == ctxStride-1 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			visited++
			s := Set(v)
			best, bestIdx := Inf, int32(-1)
			for i, a := range p.Actions {
				inter := s & a.Set
				diff := s &^ a.Set
				cost := satMul(a.Cost, sol.PSum[s])
				if a.Treatment {
					if inter == 0 {
						cost = Inf // treatment treats nothing: S−T_i = S
					} else {
						cost = satAdd(cost, sol.C[diff])
					}
				} else {
					if inter == 0 || diff == 0 {
						cost = Inf // test does not split S
					} else {
						cost = satAdd(cost, satAdd(sol.C[inter], sol.C[diff]))
					}
				}
				sol.Ops++
				if cost < best {
					best, bestIdx = cost, int32(i)
				}
			}
			sol.Ops++
			sol.C[s], sol.Choice[s] = best, bestIdx
			// Gosper: next higher number with the same popcount.
			c := v & -v
			r := v + c
			v = (r^v)>>2/c | r
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if ck != nil && level < p.K {
			if err := ck.CheckpointLevel(level, sol); err != nil {
				return nil, fmt.Errorf("core: checkpoint at level %d: %w", level, err)
			}
		}
	}
	sol.Cost = sol.C[size-1]
	return sol, nil
}
