package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/instio"
	"repro/internal/serve"
	"repro/internal/workload"
)

// TestCertifySmoke is the `make certify-smoke` drill: the real ttserve binary
// runs with -certify=fast while chaos hooks silently corrupt every answer the
// lockstep engine produces and inject a stuck-bit hardware fault into every
// BVM machine. The contract under fire: zero wrong answers escape — every
// served cost is the true optimum, certification failures show up in the
// stats, and the cache holds only certified answers.
func TestCertifySmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and drives a real server process")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "ttserve")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building ttserve: %v\n%s", err, out)
	}

	p := workload.MedicalDiagnosis(5, 6)
	want, err := core.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	if err := instio.Write(&body, p, ""); err != nil {
		t.Fatal(err)
	}

	srv, url := startServer(t, bin,
		"-certify", "fast",
		"-chaos-corrupt-engine", "lockstep",
		"-chaos-bvm-fault", "stuck-bit:3")
	defer func() {
		srv.Process.Signal(os.Interrupt)
		srv.Wait()
	}()

	// Lockstep's every answer is corrupted: certification must refuse each
	// one and the fallback chain must deliver the true cost.
	sr := postSolveEngine(t, url, "lockstep", body.Bytes())
	if sr.SolvedBy == "lockstep" {
		t.Fatalf("corrupted lockstep answer was served: %+v", sr)
	}
	if sr.Cost == nil || *sr.Cost != want.Cost {
		t.Fatalf("lockstep request served cost %v, want %d", sr.Cost, want.Cost)
	}

	// The BVM engine runs on faulty hardware. Its ABFT layer either repairs
	// around the fault (bit-identical answer) or refuses, in which case the
	// fallback chain answers — a wrong cost is the only failure.
	sr = postSolveEngine(t, url, "bvm", body.Bytes())
	if sr.Cost == nil || *sr.Cost != want.Cost {
		t.Fatalf("bvm request served cost %v (by %s), want %d", sr.Cost, sr.SolvedBy, want.Cost)
	}

	stats := getStats(t, url)
	if n, _ := stats["certify_fail"].(float64); n < 1 {
		t.Fatalf("certify_fail = %v, want >= 1 (stats: %v)", stats["certify_fail"], stats)
	}
	if n, _ := stats["certify_pass"].(float64); n < 1 {
		t.Fatalf("certify_pass = %v, want >= 1 (stats: %v)", stats["certify_pass"], stats)
	}

	// The cache must hold only certified answers: the re-ask is a hit and
	// still carries the true cost.
	sr = postSolveEngine(t, url, "lockstep", body.Bytes())
	if !sr.Cached || sr.Cost == nil || *sr.Cost != want.Cost {
		t.Fatalf("re-ask: cached=%v cost=%v, want cached hit of %d", sr.Cached, sr.Cost, want.Cost)
	}
}

// postSolveEngine posts an instance to /v1/solve?engine=... and decodes the
// 200 response.
func postSolveEngine(t *testing.T, url, engine string, body []byte) *serve.SolveResponse {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve?engine="+engine, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("engine %s: status %d: %s", engine, resp.StatusCode, msg)
	}
	var sr serve.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return &sr
}
