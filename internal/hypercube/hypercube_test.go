package hypercube

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func minOp(t, addr int, self, partner uint64) uint64 {
	if partner < self {
		return partner
	}
	return self
}

func sumOp(t, addr int, self, partner uint64) uint64 { return self + partner }

func TestNewZeroState(t *testing.T) {
	m := New[int](4)
	if m.N != 16 || m.Dim != 4 {
		t.Fatalf("machine geometry: N=%d Dim=%d", m.N, m.Dim)
	}
	for i, v := range m.State() {
		if v != 0 {
			t.Fatalf("state[%d] = %d, want 0", i, v)
		}
	}
}

func TestNewPanicsOnBadDim(t *testing.T) {
	for _, d := range []int{-1, 31} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d) did not panic", d)
				}
			}()
			New[int](d)
		}()
	}
}

// TestAscendMinFigure7 reproduces the paper's Figure 7 example: the ASCEND
// minimization with p = 3 (8 lanes). After dimension q, every aligned block
// of 2^(q+1) lanes whose base index j has j/2^(q+1) even... in the paper's
// statement: M[j] = min of its aligned 2^(q+1) block. After the full pass all
// lanes hold the global minimum.
func TestAscendMinFigure7(t *testing.T) {
	vals := []uint64{5, 3, 9, 7, 2, 8, 6, 4}
	m := New[uint64](3)
	copy(m.State(), vals)

	m.Step(0, minOp)
	want0 := []uint64{3, 3, 7, 7, 2, 2, 4, 4}
	if !reflect.DeepEqual(m.State(), want0) {
		t.Fatalf("after dim 0: %v, want %v", m.State(), want0)
	}
	m.Step(1, minOp)
	want1 := []uint64{3, 3, 3, 3, 2, 2, 2, 2}
	if !reflect.DeepEqual(m.State(), want1) {
		t.Fatalf("after dim 1: %v, want %v", m.State(), want1)
	}
	m.Step(2, minOp)
	for i, v := range m.State() {
		if v != 2 {
			t.Fatalf("after dim 2: lane %d = %d, want global min 2", i, v)
		}
	}
	if m.Steps != 3 {
		t.Fatalf("Steps = %d, want 3", m.Steps)
	}
	if m.Exchanges != 24 {
		t.Fatalf("Exchanges = %d, want 24", m.Exchanges)
	}
}

func TestAscendSumComputesTotal(t *testing.T) {
	// ASCEND with addition makes every lane the total sum.
	m := New[uint64](5)
	var total uint64
	for i := range m.State() {
		m.State()[i] = uint64(i * i)
		total += uint64(i * i)
	}
	m.Ascend(sumOp)
	for i, v := range m.State() {
		if v != total {
			t.Fatalf("lane %d = %d, want %d", i, v, total)
		}
	}
}

func TestDescendEqualsAscendForCommutativeOp(t *testing.T) {
	// For min, pass order doesn't matter: both reach the global min.
	a := New[uint64](4)
	d := New[uint64](4)
	rng := rand.New(rand.NewSource(7))
	for i := range a.State() {
		v := uint64(rng.Intn(1000))
		a.State()[i] = v
		d.State()[i] = v
	}
	a.Ascend(minOp)
	d.Descend(minOp)
	if !reflect.DeepEqual(a.State(), d.State()) {
		t.Fatal("ascend and descend min disagree")
	}
}

func TestAscendRangePartial(t *testing.T) {
	// Ascending only dims [1,3) reduces within groups of addresses equal
	// outside bits 1-2.
	m := New[uint64](4)
	for i := range m.State() {
		m.State()[i] = uint64(100 - i)
	}
	m.AscendRange(1, 3, minOp)
	for x := 0; x < m.N; x++ {
		want := uint64(1<<63 - 1)
		for y := 0; y < m.N; y++ {
			if y&^0b0110 == x&^0b0110 {
				if v := uint64(100 - y); v < want {
					want = v
				}
			}
		}
		if m.State()[x] != want {
			t.Fatalf("lane %d = %d, want %d", x, m.State()[x], want)
		}
	}
}

func TestStepPanicsOnBadDim(t *testing.T) {
	m := New[uint64](3)
	defer func() {
		if recover() == nil {
			t.Fatal("Step(3) did not panic on a dim-3 machine")
		}
	}()
	m.Step(3, minOp)
}

func TestResetCounters(t *testing.T) {
	m := New[uint64](3)
	m.Ascend(minOp)
	m.ResetCounters()
	if m.Steps != 0 || m.Exchanges != 0 {
		t.Fatal("counters not reset")
	}
}

// TestGoroutinesMatchLockstep drives both executors with an order-sensitive
// but deterministic op over random data and checks exact agreement.
func TestGoroutinesMatchLockstep(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	op := func(tt, addr int, self, partner uint64) uint64 {
		// Deliberately non-commutative in (self, partner) and dim-dependent.
		return self*3 + partner*5 + uint64(tt) + uint64(addr&1)
	}
	for _, dim := range []int{1, 3, 6, 9} {
		init := make([]uint64, 1<<dim)
		for i := range init {
			init[i] = uint64(rng.Intn(1 << 20))
		}
		m := New[uint64](dim)
		copy(m.State(), init)
		m.Ascend(op)
		got := AscendGoroutines(dim, 0, dim, init, op)
		if !reflect.DeepEqual(got, m.State()) {
			t.Fatalf("dim %d: goroutine ascend disagrees with lockstep", dim)
		}

		m2 := New[uint64](dim)
		copy(m2.State(), init)
		m2.Descend(op)
		gotD := DescendGoroutines(dim, 0, dim, init, op)
		if !reflect.DeepEqual(gotD, m2.State()) {
			t.Fatalf("dim %d: goroutine descend disagrees with lockstep", dim)
		}
	}
}

// TestGoroutinesPanicPropagates: a panic in op used to kill the whole process
// (no recover can cross a goroutine boundary) or deadlock partner PEs waiting
// mid-exchange; now it aborts the pass and re-panics in the caller's frame,
// where this test — like the serving layer — can recover it.
func TestGoroutinesPanicPropagates(t *testing.T) {
	dim := 4
	init := make([]uint64, 1<<dim)
	op := func(tt, addr int, self, partner uint64) uint64 {
		if tt == 2 && addr == 5 {
			panic("op exploded")
		}
		return self + partner
	}
	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		AscendGoroutines(dim, 0, dim, init, op)
	}()
	select {
	case r := <-done:
		if r == nil {
			t.Fatal("panicking op completed without panicking")
		}
		if s, ok := r.(string); !ok || s != "op exploded" {
			t.Fatalf("recovered %v, want the op's panic value", r)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pass deadlocked instead of propagating the panic")
	}
}

func TestGoroutinesPartialRange(t *testing.T) {
	dim := 5
	init := make([]uint64, 1<<dim)
	for i := range init {
		init[i] = uint64(i)
	}
	m := New[uint64](dim)
	copy(m.State(), init)
	m.AscendRange(2, 4, sumOp)
	got := AscendGoroutines(dim, 2, 4, init, sumOp)
	if !reflect.DeepEqual(got, m.State()) {
		t.Fatal("partial-range goroutine ascend disagrees with lockstep")
	}
}

// TestBroadcastFigure6 reproduces the paper's Figure 6: the transmission
// schedule for broadcasting from PE 0000 on a 16-PE machine.
func TestBroadcastFigure6(t *testing.T) {
	vals := make([]string, 16)
	vals[0] = "payload"
	out, sched := Broadcast(4, vals, 0)
	for i, v := range out {
		if v != "payload" {
			t.Fatalf("PE %04b did not receive payload: %q", i, v)
		}
	}
	want := []Transmission{
		{0, 0b0000, 0b0001},
		{1, 0b0000, 0b0010}, {1, 0b0001, 0b0011},
		{2, 0b0000, 0b0100}, {2, 0b0001, 0b0101}, {2, 0b0010, 0b0110}, {2, 0b0011, 0b0111},
		{3, 0b0000, 0b1000}, {3, 0b0001, 0b1001}, {3, 0b0010, 0b1010}, {3, 0b0011, 0b1011},
		{3, 0b0100, 0b1100}, {3, 0b0101, 0b1101}, {3, 0b0110, 0b1110}, {3, 0b0111, 0b1111},
	}
	if !reflect.DeepEqual(sched, want) {
		t.Fatalf("schedule:\n got %v\nwant %v", sched, want)
	}
}

func TestBroadcastFromNonzeroSource(t *testing.T) {
	vals := make([]int, 8)
	vals[5] = 42
	out, sched := Broadcast(3, vals, 5)
	for i, v := range out {
		if v != 42 {
			t.Fatalf("PE %d = %d, want 42", i, v)
		}
	}
	if len(sched) != 7 {
		t.Fatalf("schedule length %d, want 7", len(sched))
	}
}

func TestTransmissionString(t *testing.T) {
	tr := Transmission{Dim: 2, From: 0b0011, To: 0b0111}
	if got := tr.String(); got != "0011 -> 0111" {
		t.Fatalf("String = %q", got)
	}
}

// TestPropagation1PaperExample checks the paper's example: dim 4, from the
// 2-PE group; PE 0111 receives data from PEs 0110, 0101 and 0011.
func TestPropagation1PaperExample(t *testing.T) {
	vals := make([][]int, 16)
	for i := range vals {
		if popcount(i) == 2 {
			vals[i] = []int{i}
		}
	}
	out := Propagation1(4, vals, 2, func(self, in []int) []int {
		merged := append(append([]int{}, self...), in...)
		return merged
	})
	got := map[int]bool{}
	for _, v := range out[0b0111] {
		got[v] = true
	}
	want := []int{0b0110, 0b0101, 0b0011}
	if len(got) != len(want) {
		t.Fatalf("PE 0111 received %v, want %v", out[0b0111], want)
	}
	for _, w := range want {
		if !got[w] {
			t.Fatalf("PE 0111 missing sender %04b (got %v)", w, out[0b0111])
		}
	}
	// A 2-group PE must not have received anything (one-group hop only).
	if len(out[0b0011]) != 1 || out[0b0011][0] != 0b0011 {
		t.Fatalf("sender PE 0011 was modified: %v", out[0b0011])
	}
}

// TestPropagation1AllReceivers verifies the general contract on every
// (g+1)-group PE: it combines exactly its g-subsets.
func TestPropagation1AllReceivers(t *testing.T) {
	const dim = 5
	for g := 0; g < dim-1; g++ {
		vals := make([]uint64, 1<<dim)
		for i := range vals {
			if popcount(i) == g {
				vals[i] = 1 << uint(i%60)
			}
		}
		out := Propagation1(dim, vals, g, func(self, in uint64) uint64 { return self | in })
		for j := 0; j < 1<<dim; j++ {
			if popcount(j) != g+1 {
				continue
			}
			var want uint64
			for k := 0; k < 1<<dim; k++ {
				if popcount(k) == g && k&^j == 0 {
					want |= 1 << uint(k%60)
				}
			}
			if out[j] != want {
				t.Fatalf("g=%d PE %05b: got %#x want %#x", g, j, out[j], want)
			}
		}
	}
}

// TestPropagation2PaperExample checks the paper's second example: dim 4 from
// the 1-PE group; PE 1111 ends with data from 0001, 0010, 0100, 1000, and
// PE 0111 with data from 0001, 0010, 0100.
func TestPropagation2PaperExample(t *testing.T) {
	vals := make([]uint64, 16)
	for i := range vals {
		if popcount(i) == 1 {
			vals[i] = uint64(i) << 8 // distinct tag per sender
		}
	}
	or := func(self, in uint64) uint64 { return self | in }
	out := Propagation2(4, vals, 1, or)
	if want := uint64(0b0001|0b0010|0b0100|0b1000) << 8; out[0b1111] != want {
		t.Fatalf("PE 1111 = %#x, want %#x", out[0b1111], want)
	}
	if want := uint64(0b0001|0b0010|0b0100) << 8; out[0b0111] != want {
		t.Fatalf("PE 0111 = %#x, want %#x", out[0b0111], want)
	}
}

// Property: Propagation2 gives every PE j the OR of all g-group subsets of j.
func TestPropertyPropagation2Contract(t *testing.T) {
	const dim = 4
	f := func(g8 uint8) bool {
		g := int(g8) % dim
		vals := make([]uint64, 1<<dim)
		for i := range vals {
			if popcount(i) == g {
				vals[i] = 1 << uint(i)
			}
		}
		out := Propagation2(dim, vals, g, func(a, b uint64) uint64 { return a | b })
		for j := 0; j < 1<<dim; j++ {
			var want uint64
			for k := 0; k < 1<<dim; k++ {
				if popcount(k) == g && k&^j == 0 {
					want |= 1 << uint(k)
				}
			}
			if popcount(j) < g {
				want = vals[j]
			}
			if out[j] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAscendMinLockstep(b *testing.B) {
	m := New[uint64](14)
	for i := range m.State() {
		m.State()[i] = uint64(i * 2654435761)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Ascend(minOp)
	}
}

func BenchmarkAscendMinGoroutines(b *testing.B) {
	const dim = 10
	init := make([]uint64, 1<<dim)
	for i := range init {
		init[i] = uint64(i * 2654435761)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AscendGoroutines(dim, 0, dim, init, minOp)
	}
}
