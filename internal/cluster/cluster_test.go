package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/instio"
)

func randomProblem(rng *rand.Rand, k, nActions int) *core.Problem {
	p := &core.Problem{K: k, Weights: make([]uint64, k)}
	for j := range p.Weights {
		p.Weights[j] = uint64(rng.Intn(20) + 1)
	}
	u := uint32(core.Universe(k))
	for i := 0; i < nActions; i++ {
		p.Actions = append(p.Actions, core.Action{
			Set:       core.Set(rng.Intn(int(u))+1) & core.Set(u),
			Cost:      uint64(rng.Intn(30) + 1),
			Treatment: rng.Intn(2) == 0,
		})
	}
	p.Actions = append(p.Actions, core.Action{Set: core.Universe(k), Cost: 400, Treatment: true})
	return p
}

// startWorkers runs one in-process worker session per machine over loopback
// TCP — real conns, real deadlines — and returns the coordinator-side conns.
// wrap[i], when set, wraps the worker-side conn (fault injection on the
// worker's writes). Cleanup waits for every session goroutine, so a leaked
// session fails the test by hanging it.
func startWorkers(t *testing.T, machines []Machine, wrap []func(net.Conn) net.Conn) []net.Conn {
	t.Helper()
	conns := make([]net.Conn, len(machines))
	for i, m := range machines {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		done := make(chan struct{})
		w := func(c net.Conn) net.Conn { return c }
		if wrap != nil && wrap[i] != nil {
			w = wrap[i]
		}
		go func(m Machine, w func(net.Conn) net.Conn) {
			defer close(done)
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			_ = RunWorker(w(conn), m)
		}(m, w)
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		t.Cleanup(func() {
			_ = ln.Close()
			_ = conn.Close()
			<-done
		})
		conns[i] = conn
	}
	return conns
}

// fastOptions keeps the fault machinery on test timescales.
func fastOptions() Options {
	return Options{
		Slices:           4,
		PlaneDeadline:    300 * time.Millisecond,
		HandshakeTimeout: 2 * time.Second,
		HeartbeatEvery:   50 * time.Millisecond,
		HeartbeatMiss:    2,
		MaxStrikes:       2,
		AuditFraction:    1, // audit every cell: malicious planes are always caught
		Seed:             42,
	}
}

func assertIdentical(t *testing.T, seq, got *core.Solution) {
	t.Helper()
	if got == nil {
		t.Fatalf("no solution")
	}
	if got.Cost != seq.Cost {
		t.Fatalf("cost %d, sequential reference %d", got.Cost, seq.Cost)
	}
	for s := range seq.C {
		if got.C[s] != seq.C[s] {
			t.Fatalf("C[%d] = %d, sequential reference %d", s, got.C[s], seq.C[s])
		}
		if got.Choice[s] != seq.Choice[s] {
			t.Fatalf("Choice[%d] = %d, sequential reference %d", s, got.Choice[s], seq.Choice[s])
		}
	}
}

// TestSolveMatchesSequential is the distributed plane's ground truth: across
// random instances, three honest workers must reproduce the sequential DP's
// tables bit for bit.
func TestSolveMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		k := rng.Intn(5) + 2 // 2..6
		p := randomProblem(rng, k, rng.Intn(8)+2)
		seq, err := core.Solve(p)
		if err != nil {
			t.Fatalf("sequential: %v", err)
		}
		conns := startWorkers(t, []Machine{
			NewHonestMachine("w0"), NewHonestMachine("w1"), NewHonestMachine("w2"),
		}, nil)
		got, stats, err := Solve(context.Background(), p, conns, fastOptions())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertIdentical(t, seq, got)
		if stats.Planes == 0 {
			t.Fatalf("trial %d: no planes merged", trial)
		}
		if len(stats.Violations) != 0 {
			t.Fatalf("trial %d: honest workers produced violations: %v", trial, stats.Violations)
		}
	}
}

// TestFaultMatrix drives every worker fault through the same assertions: the
// solve survives, the answer is bit-identical to the sequential reference,
// and the stats prove the fault was detected — not silently absorbed.
func TestFaultMatrix(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(11)), 6, 8)
	seq, err := core.Solve(p)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}

	cases := []struct {
		name     string
		machines func() []Machine
		wrap     []func(net.Conn) net.Conn
		opts     func(*Options)
		check    func(t *testing.T, s Stats)
	}{
		{
			name: "offline",
			machines: func() []Machine {
				return []Machine{
					NewHonestMachine("w0"), NewHonestMachine("w1"),
					&OfflineMachine{Inner: NewHonestMachine("w2"), FailAfter: 1},
				}
			},
			check: func(t *testing.T, s Stats) {
				if s.WorkersLost == 0 {
					t.Errorf("offline worker not detected: %+v", s)
				}
				if s.Reassigned == 0 {
					t.Errorf("no slice reassigned after the crash: %+v", s)
				}
			},
		},
		{
			name: "malicious",
			machines: func() []Machine {
				return []Machine{
					NewHonestMachine("w0"), NewHonestMachine("w1"),
					&MaliciousMachine{Inner: NewHonestMachine("evil")},
				}
			},
			check: func(t *testing.T, s Stats) {
				if s.PlanesRejected == 0 {
					t.Errorf("malicious plane was not rejected: %+v", s)
				}
				if len(s.Violations) == 0 {
					t.Errorf("no violation evidence recorded")
				}
				for _, v := range s.Violations {
					if v.Node != "evil" {
						t.Errorf("violation attributed to %q, want evil: %v", v.Node, v)
					}
				}
			},
		},
		{
			name: "corrupt-plane",
			machines: func() []Machine {
				return []Machine{
					NewHonestMachine("w0"), NewHonestMachine("w1"),
					&CorruptPlaneMachine{Inner: NewHonestMachine("bitrot")},
				}
			},
			check: func(t *testing.T, s Stats) {
				if s.PlanesRejected == 0 {
					t.Errorf("corrupt plane was not rejected: %+v", s)
				}
				found := false
				for _, v := range s.Violations {
					if v.Node == "bitrot" && strings.Contains(v.Detail, "plane image rejected") {
						found = true
					}
				}
				if !found {
					t.Errorf("no corruption violation attributed to bitrot: %v", s.Violations)
				}
			},
		},
		{
			name: "slow",
			machines: func() []Machine {
				return []Machine{
					NewHonestMachine("w0"), NewHonestMachine("w1"),
					&SlowMachine{Inner: NewHonestMachine("laggard"), Delay: 2 * time.Second},
				}
			},
			opts: func(o *Options) {
				// Let the plane deadline, not the heartbeat reaper, be the
				// detector: a straggler is slow, not silent.
				o.HeartbeatEvery = 500 * time.Millisecond
				o.HeartbeatMiss = 10
			},
			check: func(t *testing.T, s Stats) {
				if s.Stragglers == 0 {
					t.Errorf("straggler deadline never fired: %+v", s)
				}
			},
		},
		{
			name: "partition",
			machines: func() []Machine {
				return []Machine{
					NewHonestMachine("w0"), NewHonestMachine("w1"), NewHonestMachine("ghost"),
				}
			},
			wrap: []func(net.Conn) net.Conn{
				nil, nil,
				// The partitioned worker gets its hello-ok out, then every
				// write silently vanishes: only deadlines and heartbeats can
				// tell it apart from a slow worker.
				func(c net.Conn) net.Conn { return chaos.PartitionConn(c, 1) },
			},
			check: func(t *testing.T, s Stats) {
				if s.WorkersLost == 0 {
					t.Errorf("partitioned worker never declared dead: %+v", s)
				}
			},
		},
		{
			name: "duplicate-frame",
			machines: func() []Machine {
				return []Machine{
					NewHonestMachine("w0"), NewHonestMachine("stutter"),
				}
			},
			wrap: []func(net.Conn) net.Conn{
				nil,
				// Write 2 is this worker's first plane; the duplicate must be
				// discarded as stale, not merged twice.
				func(c net.Conn) net.Conn { return &chaos.FaultyConn{Conn: c, DuplicateAt: 2} },
			},
			check: func(t *testing.T, s Stats) {
				if s.StalePlanes == 0 {
					t.Errorf("duplicated plane not discarded as stale: %+v", s)
				}
			},
		},
		{
			name: "truncate-mid-frame",
			machines: func() []Machine {
				return []Machine{
					NewHonestMachine("w0"), NewHonestMachine("torn"),
				}
			},
			wrap: []func(net.Conn) net.Conn{
				nil,
				// Write 2 (the first plane) is cut mid-frame and the conn goes
				// silent — the coordinator must reassign and reap, and must
				// never merge the half frame.
				func(c net.Conn) net.Conn { return &chaos.FaultyConn{Conn: c, TruncateAt: 2} },
			},
			check: func(t *testing.T, s Stats) {
				if s.WorkersLost == 0 && s.Stragglers == 0 {
					t.Errorf("torn-frame worker neither reaped nor struck: %+v", s)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			conns := startWorkers(t, tc.machines(), tc.wrap)
			opts := fastOptions()
			if tc.opts != nil {
				tc.opts(&opts)
			}
			got, stats, err := Solve(context.Background(), p, conns, opts)
			if err != nil {
				t.Fatalf("solve: %v (stats %+v)", err, stats)
			}
			assertIdentical(t, seq, got)
			tc.check(t, stats)
		})
	}
}

// TestQuorumLost: when every worker dies the solve must fail closed with
// ErrQuorumLost — no partial or unverified answer.
func TestQuorumLost(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(3)), 5, 6)
	conns := startWorkers(t, []Machine{
		&OfflineMachine{Inner: NewHonestMachine("w0"), FailAfter: 0},
		&OfflineMachine{Inner: NewHonestMachine("w1"), FailAfter: 0},
	}, nil)
	got, _, err := Solve(context.Background(), p, conns, fastOptions())
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("err = %v, want ErrQuorumLost", err)
	}
	var qe *QuorumError
	if !errors.As(err, &qe) {
		t.Fatalf("err = %v, want *QuorumError", err)
	}
	if got != nil {
		t.Fatalf("quorum loss still returned a solution")
	}
}

// TestSingleWorkerDegradation: the fleet shrinks to one survivor and the
// solve still completes, bit-identically.
func TestSingleWorkerDegradation(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(5)), 6, 7)
	seq, err := core.Solve(p)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	conns := startWorkers(t, []Machine{
		NewHonestMachine("survivor"),
		&OfflineMachine{Inner: NewHonestMachine("w1"), FailAfter: 1},
		&OfflineMachine{Inner: NewHonestMachine("w2"), FailAfter: 1},
	}, nil)
	got, stats, err := Solve(context.Background(), p, conns, fastOptions())
	if err != nil {
		t.Fatalf("solve: %v (stats %+v)", err, stats)
	}
	assertIdentical(t, seq, got)
	if stats.WorkersLost != 2 {
		t.Fatalf("WorkersLost = %d, want 2", stats.WorkersLost)
	}
}

// TestResumeFromFrontier: a restored checkpoint frontier seeds both the
// coordinator and the workers, and the finished solve matches the reference.
func TestResumeFromFrontier(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(9)), 6, 7)
	seq, err := core.Solve(p)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	f := &core.Frontier{Level: 2, C: seq.C, Choice: seq.Choice}
	conns := startWorkers(t, []Machine{
		NewHonestMachine("w0"), NewHonestMachine("w1"),
	}, nil)
	opts := fastOptions()
	opts.Frontier = f
	got, _, err := Solve(context.Background(), p, conns, opts)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	assertIdentical(t, seq, got)
}

// TestCheckpointerFiresAtBarriers: every merged level j < K reaches the
// checkpointer, in order.
func TestCheckpointerFiresAtBarriers(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(13)), 5, 6)
	conns := startWorkers(t, []Machine{NewHonestMachine("w0")}, nil)
	var levels []int
	opts := fastOptions()
	opts.Checkpointer = ckFunc(func(level int, sol *core.Solution) error {
		levels = append(levels, level)
		return nil
	})
	if _, _, err := Solve(context.Background(), p, conns, opts); err != nil {
		t.Fatalf("solve: %v", err)
	}
	if len(levels) != p.K-1 {
		t.Fatalf("checkpointed levels %v, want 1..%d", levels, p.K-1)
	}
	for i, l := range levels {
		if l != i+1 {
			t.Fatalf("checkpointed levels %v, want 1..%d", levels, p.K-1)
		}
	}
}

type ckFunc func(level int, sol *core.Solution) error

func (f ckFunc) CheckpointLevel(level int, sol *core.Solution) error { return f(level, sol) }

// TestSolveNoGoroutineLeaks: a solve — including one that loses workers —
// leaves no coordinator goroutines behind.
func TestSolveNoGoroutineLeaks(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(17)), 5, 6)
	before := runtime.NumGoroutine()
	for trial := 0; trial < 3; trial++ {
		conns := startWorkers(t, []Machine{
			NewHonestMachine("w0"),
			&OfflineMachine{Inner: NewHonestMachine("w1"), FailAfter: 1},
		}, nil)
		if _, _, err := Solve(context.Background(), p, conns, fastOptions()); err != nil {
			t.Fatalf("solve: %v", err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after", before, runtime.NumGoroutine())
}

// TestHonestMachineProtocol pins the worker state machine's refusals: wrong
// hashes, out-of-order levels, and diverged merges all end the session.
func TestHonestMachineProtocol(t *testing.T) {
	p := randomProblem(rand.New(rand.NewSource(21)), 4, 5)
	hello := func(t *testing.T) (*HonestMachine, string) {
		t.Helper()
		m := NewHonestMachine("w")
		body, hash := helloFor(t, p)
		replies, err := m.Handle(Message{Type: msgHello, Body: body})
		if err != nil {
			t.Fatalf("hello: %v", err)
		}
		if len(replies) != 1 || replies[0].Type != msgHelloOK {
			t.Fatalf("hello replies: %+v", replies)
		}
		return m, hash
	}

	t.Run("assign-before-hello", func(t *testing.T) {
		m := NewHonestMachine("w")
		if _, err := m.Handle(Message{Type: msgAssign, Body: []byte(`{}`)}); err == nil {
			t.Fatal("assign before hello accepted")
		}
	})
	t.Run("wrong-hash", func(t *testing.T) {
		m := NewHonestMachine("w")
		body, _ := helloFor(t, p)
		bad := strings.Replace(string(body), `"hash":"`, `"hash":"ffff`, 1)
		if _, err := m.Handle(Message{Type: msgHello, Body: []byte(bad)}); err == nil {
			t.Fatal("hello with a wrong hash accepted")
		}
	})
	t.Run("wrong-level", func(t *testing.T) {
		m, _ := hello(t)
		if _, err := m.Handle(Message{Type: msgAssign, Body: []byte(`{"id":1,"level":3,"lo":0,"hi":1}`)}); err == nil {
			t.Fatal("assign for level 3 on a level-0 frontier accepted")
		}
	})
	t.Run("diverged-merge", func(t *testing.T) {
		m, _ := hello(t)
		plane := &checkpoint.Plane{
			Level: 1, Lo: 0, Hi: core.Binomial(p.K, 1),
			FrozenSum: 12345, // not this worker's frontier
			C:         make([]uint64, p.K),
			Choice:    make([]int32, p.K),
		}
		img, err := checkpoint.EncodePlane(plane)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Handle(Message{Type: msgMerged, Body: img}); err == nil {
			t.Fatal("diverged merge accepted")
		}
	})
}

func helloFor(t *testing.T, p *core.Problem) ([]byte, string) {
	t.Helper()
	var pbuf bytes.Buffer
	if err := instio.Write(&pbuf, p, ""); err != nil {
		t.Fatal(err)
	}
	hash, err := checkpoint.ProblemHash(p)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(&helloBody{Hash: hash, Problem: pbuf.Bytes()})
	if err != nil {
		t.Fatal(err)
	}
	return body, hash
}
