package bvmalg

import (
	"fmt"

	"repro/internal/bvm"
)

// This file implements the hypercube-dimension partner fetch on the BVM: the
// machine-level primitive behind every ASCEND/DESCEND step. After
// FetchPartner(m, dim, pairs, scratch), each PE's Shadow registers hold the
// register values of its hypercube partner — the PE whose flat address
// differs in exactly bit dim — with all data back at home positions, so the
// caller can combine shadow and local values with arbitrary local predicates
// (the paper's control bits).
//
// Low dimensions (dim < r) pair PEs 2^dim apart inside a cycle and are served
// by rotating copies of the data both ways and selecting by position bit
// (host-known, so the selection is a free IF mask). High dimensions
// (dim >= r) pair cycles across lateral links that exist only at in-cycle
// position u = dim - r; a copy of the data makes one full turn around the
// cycle and grabs the lateral value as it passes position u. This is the
// unpipelined schedule (ablation A2): simple, correct, O(Q) instructions per
// high dimension. The pipelined wavefront that overlaps all high dimensions
// in one turn is modeled at word level in internal/cccsim.

// Pair maps a traveling source register to the shadow register that receives
// the partner's bit.
type Pair struct {
	Src    bvm.RegRef
	Shadow bvm.RegRef
}

// WordPairs builds the bit-plane pairs for a whole word.
func WordPairs(src, shadow Word) []Pair {
	sameWidth(src, shadow)
	ps := make([]Pair, src.Width)
	for b := 0; b < src.Width; b++ {
		ps[b] = Pair{Src: src.Bit(b), Shadow: shadow.Bit(b)}
	}
	return ps
}

// FetchPartner fills every Shadow register with the hypercube-dim partner's
// Src value. scratchBase..scratchBase+len(pairs)-1 are clobbered. Costs
// len(pairs)·(2^(dim+1)+3) instructions for low dims and
// len(pairs)·(3Q+1) for high dims.
func FetchPartner(m *bvm.Machine, dim int, pairs []Pair, scratchBase int) {
	Q, r := m.Top.Q, m.Top.R
	if dim < 0 || dim >= m.Top.AddrBits {
		panic(fmt.Sprintf("bvmalg: dim %d out of range [0,%d)", dim, m.Top.AddrBits))
	}
	if dim < r {
		fetchLow(m, dim, pairs, scratchBase)
		return
	}
	u := dim - r
	// Copy payload into scratch and send it around the cycle; grab the
	// lateral value into the shadow as the datum passes position u. The
	// shadow travels with its datum, so after Q rotations both are home.
	for i, p := range pairs {
		m.Mov(bvm.R(scratchBase+i), bvm.Loc(p.Src))
	}
	for step := 1; step <= Q; step++ {
		for i := range pairs {
			m.Mov(bvm.R(scratchBase+i), bvm.Via(bvm.R(scratchBase+i), bvm.RouteP))
		}
		for _, p := range pairs {
			m.Mov(p.Shadow, bvm.Via(p.Shadow, bvm.RouteP))
		}
		for i, p := range pairs {
			m.Mov(p.Shadow, bvm.Via(bvm.R(scratchBase+i), bvm.RouteL), bvm.IF(u))
		}
	}
}

func fetchLow(m *bvm.Machine, dim int, pairs []Pair, scratchBase int) {
	Q := m.Top.Q
	d := 1 << dim
	// shadow carries the forward-rotated copy (value from position p-d),
	// scratch the backward-rotated one (value from p+d).
	for i, p := range pairs {
		m.Mov(p.Shadow, bvm.Loc(p.Src))
		m.Mov(bvm.R(scratchBase+i), bvm.Loc(p.Src))
	}
	for step := 0; step < d; step++ {
		for _, p := range pairs {
			m.Mov(p.Shadow, bvm.Via(p.Shadow, bvm.RouteP))
		}
		for i := range pairs {
			m.Mov(bvm.R(scratchBase+i), bvm.Via(bvm.R(scratchBase+i), bvm.RouteS))
		}
	}
	// Positions with bit dim clear have their partner ahead of them: take
	// the backward-rotated copy there.
	clear := make([]int, 0, Q/2)
	for p := 0; p < Q; p++ {
		if p>>uint(dim)&1 == 0 {
			clear = append(clear, p)
		}
	}
	for i, p := range pairs {
		m.Mov(p.Shadow, bvm.Loc(bvm.R(scratchBase+i)), bvm.IF(clear...))
	}
}
