package main

import (
	"strings"
	"testing"
)

func TestDemos(t *testing.T) {
	cases := map[string]string{
		"layout":       "Reg. A",
		"cycle-id":     "cycle\\pos",
		"processor-id": "processor-ID planes",
		"broadcast":    "0000 -> 0001",
		"disasm":       "program cycle-ID",
		"trace":        "register A after each instruction",
		"info":         "links",
	}
	for demo, want := range cases {
		var out strings.Builder
		if err := run([]string{demo}, &out); err != nil {
			t.Fatalf("%s: %v", demo, err)
		}
		if !strings.Contains(out.String(), want) {
			t.Errorf("%s: output missing %q", demo, want)
		}
	}
}

func TestInfoWithR(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-r", "3", "info"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n=2048") {
		t.Errorf("info -r 3 output: %s", out.String())
	}
}

func TestErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Error("no demo accepted")
	}
	if err := run([]string{"bogus"}, &out); err == nil {
		t.Error("unknown demo accepted")
	}
	if err := run([]string{"-r", "9", "info"}, &out); err == nil {
		t.Error("bad r accepted")
	}
}
