package bvm

import (
	"strings"
	"testing"

	"repro/internal/bitvec"
)

func TestRecordAndReplay(t *testing.T) {
	m := newMachine(t, 1)
	m.Poke(R(0), bitvec.MustFromString("10110100"))
	m.StartRecording("demo")
	m.Mov(R(1), Via(R(0), RouteS))
	m.Xor(R(2), R(1), Loc(R(0)))
	m.SetConst(R(3), true, IF(1))
	prog := m.StopRecording()
	if prog.Len() != 3 {
		t.Fatalf("recorded %d instructions, want 3", prog.Len())
	}

	// Replay on a fresh machine with the same input state: identical output.
	m2 := newMachine(t, 1)
	m2.Poke(R(0), bitvec.MustFromString("10110100"))
	prog.Replay(m2)
	for _, r := range []RegRef{R(1), R(2), R(3)} {
		if !m2.Peek(r).Equal(m.Peek(r)) {
			t.Fatalf("replay diverged at %v", r)
		}
	}
}

func TestRecordingGuards(t *testing.T) {
	m := newMachine(t, 1)
	m.StartRecording("a")
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nested StartRecording did not panic")
			}
		}()
		m.StartRecording("b")
	}()
	m.StopRecording()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("StopRecording without recording did not panic")
			}
		}()
		m.StopRecording()
	}()
}

func TestInstrString(t *testing.T) {
	in := Instr{Dst: R(5), FTT: TTAndFD, GTT: TTB, F: R(3), D: Via(R(2), RouteL),
		Cond: &Activation{Positions: []int{2, 0}}}
	got := in.String()
	want := "R[5], B = F&D, B (R[3], R[2].L, B) IF {0,2};"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	nf := Instr{Dst: A, FTT: TTOne, GTT: TTZero, F: A, D: Loc(B),
		Cond: &Activation{Negate: true, Positions: []int{1}}}
	if !strings.Contains(nf.String(), "NF {1}") {
		t.Fatalf("NF render: %q", nf.String())
	}
	odd := Instr{Dst: E, FTT: 0x5B, GTT: TTD, F: B, D: Via(A, RouteI)}
	if !strings.Contains(odd.String(), "tt:5b") || !strings.Contains(odd.String(), "A.I") {
		t.Fatalf("odd render: %q", odd.String())
	}
}

func TestDisassembleAndProfile(t *testing.T) {
	m := newMachine(t, 1)
	m.StartRecording("p")
	m.Mov(R(0), Via(R(1), RouteL))
	m.Mov(R(0), Via(R(1), RouteL))
	m.Mov(R(0), Loc(R(1)))
	m.Mov(R(0), Via(R(1), RouteI))
	prog := m.StopRecording()

	dis := prog.Disassemble()
	if !strings.Contains(dis, "program p — 4 instructions") {
		t.Errorf("disassembly header: %s", dis)
	}
	if strings.Count(dis, "R[1].L") != 2 {
		t.Errorf("disassembly routes wrong:\n%s", dis)
	}

	prof := prog.RouteProfile()
	if prof[RouteL] != 2 || prof[Local] != 1 || prof[RouteI] != 1 {
		t.Errorf("profile = %v", prof)
	}
	ps := prog.ProfileString()
	if !strings.Contains(ps, "local:1") || !strings.Contains(ps, "L:2") || !strings.Contains(ps, "I:1") {
		t.Errorf("ProfileString = %q", ps)
	}
}

func TestTTNames(t *testing.T) {
	names := map[uint8]string{
		TTZero: "0", TTOne: "1", TTF: "F", TTD: "D", TTB: "B",
		TTOrFD: "F|D", TTXorFD: "F^D", TTNotF: "~F", TTMuxB: "B?D:F",
		TTParity: "F^D^B", TTMajority: "maj(F,D,B)",
	}
	for tt, want := range names {
		if got := ttName(tt); got != want {
			t.Errorf("ttName(%#x) = %q, want %q", tt, got, want)
		}
	}
}
